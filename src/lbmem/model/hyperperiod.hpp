#pragma once
/// \file hyperperiod.hpp
/// \brief Instance timing helpers on the hyper-period circle.
///
/// The analysis window is [0, H) with H = lcm of all periods (paper
/// Section 3.1, ref [13]); the whole schedule repeats with period H, so two
/// scheduled instances never collide on a processor iff their occupation
/// intervals are disjoint on the circle of circumference H. These helpers
/// implement that circular-interval arithmetic exactly.

#include "lbmem/model/types.hpp"

namespace lbmem {

/// Start time of instance \p k of a task whose first instance starts at
/// \p first_start with period \p period (strict periodicity).
constexpr Time instance_start(Time first_start, Time period, InstanceIdx k) {
  return first_start + period * static_cast<Time>(k);
}

/// Do the half-open occupation intervals [s1, s1+e1) and [s2, s2+e2),
/// each repeated with period \p h, intersect?  Requires 0 < e <= h.
bool circular_overlap(Time s1, Time e1, Time s2, Time e2, Time h);

/// Earliest delta >= 0 such that shifting interval [s1, s1+e1) right by
/// delta removes its circular overlap with [s2, s2+e2) (both repeat with
/// period h). Returns 0 when they do not overlap.
Time clearance_shift(Time s1, Time e1, Time s2, Time e2, Time h);

}  // namespace lbmem
