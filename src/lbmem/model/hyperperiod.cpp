#include "lbmem/model/hyperperiod.hpp"

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

bool circular_overlap(Time s1, Time e1, Time s2, Time e2, Time h) {
  LBMEM_REQUIRE(h > 0 && e1 > 0 && e2 > 0 && e1 <= h && e2 <= h,
                "circular_overlap: lengths must be in (0, h]");
  // Reduce to the relative offset d = (s2 - s1) mod h. The intervals are
  // disjoint iff [0, e1) and [d, d+e2) are disjoint on the circle, i.e.
  // iff e1 <= d and d + e2 <= h.
  const Time d = mod_floor(s2 - s1, h);
  return !(e1 <= d && d + e2 <= h);
}

Time clearance_shift(Time s1, Time e1, Time s2, Time e2, Time h) {
  LBMEM_REQUIRE(h > 0 && e1 > 0 && e2 > 0 && e1 <= h && e2 <= h,
                "clearance_shift: lengths must be in (0, h]");
  if (!circular_overlap(s1, e1, s2, e2, h)) {
    return 0;
  }
  // Shift interval 1 right until its start coincides with the end of
  // interval 2 on the circle: new offset of s2 relative to s1 becomes
  // h - e2... Equivalently, the smallest delta with
  // (s2 - (s1 + delta)) mod h == h - e2 is impossible to express directly;
  // we need e1 <= d' and d' + e2 <= h for d' = (s2 - s1 - delta) mod h.
  // The earliest clearing position places the shifted interval right at the
  // end of interval 2: s1 + delta == s2 + e2 (mod h), i.e.
  // delta == (s2 + e2 - s1) mod h. That position is valid only if the gap
  // after interval 2 is at least e1; callers iterate over all intervals, so
  // we return this candidate and let the caller re-check the rest.
  const Time delta = mod_floor(s2 + e2 - s1, h);
  return delta == 0 ? h : delta;
}

}  // namespace lbmem
