#pragma once
/// \file task_graph.hpp
/// \brief The validated multi-rate task graph (paper Figure 2 and
/// Section 3.1).
///
/// A TaskGraph owns the tasks and dependences of one application. It is
/// immutable after freeze(): validation establishes the invariants every
/// other module relies on (acyclicity, harmonic dependent periods,
/// positive WCETs bounded by periods), computes the hyper-period and a
/// topological order, and builds adjacency indexes.

#include <span>
#include <string>
#include <vector>

#include "lbmem/model/task.hpp"
#include "lbmem/model/types.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem {

/// Contiguous run of producer instance indices consumed by one consumer
/// instance (see TaskGraph::consumed_range).
struct ConsumedRange {
  InstanceIdx first = 0;
  InstanceIdx count = 0;
};

/// Multi-rate application graph with strict-periodic tasks.
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Add a task; returns its dense id. Throws ModelError on duplicate name
  /// or non-positive period/WCET, wcet > period, or negative memory.
  TaskId add_task(Task task);

  /// Convenience overload.
  TaskId add_task(std::string name, Time period, Time wcet, Mem memory);

  /// Add a dependence edge. Ids must exist; periods must be harmonic
  /// (one divides the other); self-loops and duplicate edges rejected.
  void add_dependence(TaskId producer, TaskId consumer, Mem data_size = 1);

  /// Validate global invariants (DAG) and build derived data. Must be
  /// called once after construction; mutating calls afterwards throw.
  void freeze();

  /// Update a task's WCET after freeze() — the one structural mutation the
  /// online engine needs (WcetChange events). Legal because nothing derived
  /// at freeze time depends on WCETs (hyper-period, instance counts,
  /// adjacency and topological order all come from periods and edges).
  /// Revalidates 0 < wcet <= period. Schedules referencing this graph keep
  /// incrementally-maintained busy aggregates; callers must invoke
  /// Schedule::refresh_aggregates() on them afterwards.
  void set_wcet(TaskId id, Time wcet);

  /// True once freeze() has completed successfully.
  bool frozen() const { return frozen_; }

  // ---- introspection (valid after freeze) --------------------------------

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t dependence_count() const { return deps_.size(); }

  /// Inline with a bounds check only: the balancer reads task shapes tens
  /// of millions of times per run.
  const Task& task(TaskId id) const {
    LBMEM_REQUIRE(id >= 0 && id < static_cast<TaskId>(tasks_.size()),
                  "task id out of range");
    return tasks_[static_cast<std::size_t>(id)];
  }
  std::span<const Task> tasks() const { return tasks_; }
  std::span<const Dependence> dependences() const { return deps_; }

  /// Find a task id by name; throws ModelError if absent.
  TaskId find(const std::string& name) const;

  /// Hyper-period H = lcm of all task periods (paper Section 3.1, ref [13]).
  Time hyperperiod() const {
    require_frozen("hyperperiod");
    return hyperperiod_;
  }

  /// Number of instances of \p id within one hyper-period (H / period).
  /// Cached at freeze() — no division on the hot path.
  InstanceIdx instance_count(TaskId id) const {
    require_frozen("instance_count");
    LBMEM_REQUIRE(id >= 0 && id < static_cast<TaskId>(tasks_.size()),
                  "task id out of range");
    return instance_count_[static_cast<std::size_t>(id)];
  }

  /// Total instances across all tasks within one hyper-period.
  std::size_t total_instances() const {
    require_frozen("total_instances");
    return total_instances_;
  }

  /// Offset of task \p id's instances in the dense (CSR) instance
  /// enumeration: instance (t, k) has dense index instance_base(t) + k, and
  /// task t's slice is [instance_base(t), instance_base(t+1)). Cached at
  /// freeze(); the single source of the mapping used by Schedule and the
  /// balancer's flat per-instance tables.
  std::size_t instance_base(TaskId id) const {
    require_frozen("instance_base");
    LBMEM_REQUIRE(id >= 0 && id <= static_cast<TaskId>(tasks_.size()),
                  "task id out of range");
    return instance_base_[static_cast<std::size_t>(id)];
  }

  /// Dense index of instance (t, k), bounds-checked.
  std::size_t dense_index(TaskInstance inst) const {
    require_frozen("dense_index");
    LBMEM_REQUIRE(inst.task >= 0 &&
                      inst.task < static_cast<TaskId>(tasks_.size()),
                  "task id out of range");
    LBMEM_REQUIRE(
        inst.k >= 0 &&
            inst.k < instance_count_[static_cast<std::size_t>(inst.task)],
        "instance index out of range");
    return instance_base_[static_cast<std::size_t>(inst.task)] +
           static_cast<std::size_t>(inst.k);
  }

  /// Dependences entering \p consumer (indices into dependences()).
  std::span<const std::int32_t> deps_in(TaskId consumer) const {
    require_frozen("deps_in");
    LBMEM_REQUIRE(consumer >= 0 &&
                      consumer < static_cast<TaskId>(tasks_.size()),
                  "task id out of range");
    return in_edges_[static_cast<std::size_t>(consumer)];
  }

  /// Dependences leaving \p producer (indices into dependences()).
  std::span<const std::int32_t> deps_out(TaskId producer) const {
    require_frozen("deps_out");
    LBMEM_REQUIRE(producer >= 0 &&
                      producer < static_cast<TaskId>(tasks_.size()),
                  "task id out of range");
    return out_edges_[static_cast<std::size_t>(producer)];
  }

  /// A topological order of task ids (producers before consumers).
  std::span<const TaskId> topological_order() const;

  /// Producer instances consumed by instance \p k of the consumer of
  /// dependence \p dep_index (paper Section 3.1):
  ///  * T_c = n*T_p: instance k consumes producer instances k*n .. k*n+n-1
  ///    (the slow consumer gathers n data, Figure 1);
  ///  * T_p = n*T_c: instance k consumes producer instance floor(k/n)
  ///    (the fast consumer re-reads the latest datum).
  std::vector<InstanceIdx> consumed_instances(std::int32_t dep_index,
                                              InstanceIdx k) const;

  /// The same producer instances as a contiguous range {first, count}
  /// (both harmonic cases consume consecutive indices). Allocation-free and
  /// inline; preferred on hot paths.
  ConsumedRange consumed_range(std::int32_t dep_index, InstanceIdx k) const {
    require_frozen("consumed_range");
    LBMEM_REQUIRE(dep_index >= 0 &&
                      dep_index < static_cast<std::int32_t>(deps_.size()),
                  "dependence index out of range");
    const Dependence& d = deps_[static_cast<std::size_t>(dep_index)];
    LBMEM_REQUIRE(k >= 0 && k < instance_count(d.consumer),
                  "consumer instance out of range");
    const Time tp = task(d.producer).period;
    const Time tc = task(d.consumer).period;
    if (tc >= tp) {
      // Slow consumer gathers n = tc/tp data (paper Figure 1).
      const auto n = static_cast<InstanceIdx>(tc / tp);
      return ConsumedRange{k * n, n};
    }
    // Fast consumer samples the latest completed producer instance.
    return ConsumedRange{k / static_cast<InstanceIdx>(tp / tc), 1};
  }

  /// Inverse of consumed_range: the consumer instances that consume
  /// producer instance \p j of dependence \p dep_index. Contiguous in both
  /// harmonic cases (slow consumer: j/n gathers j; fast consumer: the n
  /// instances j*n .. j*n+n-1 each re-read j). Allocation-free; used by the
  /// online engine's dirty-set cascade and the partial block builder.
  ConsumedRange consumer_range(std::int32_t dep_index, InstanceIdx j) const {
    require_frozen("consumer_range");
    LBMEM_REQUIRE(dep_index >= 0 &&
                      dep_index < static_cast<std::int32_t>(deps_.size()),
                  "dependence index out of range");
    const Dependence& d = deps_[static_cast<std::size_t>(dep_index)];
    LBMEM_REQUIRE(j >= 0 && j < instance_count(d.producer),
                  "producer instance out of range");
    const Time tp = task(d.producer).period;
    const Time tc = task(d.consumer).period;
    if (tc >= tp) {
      // Slow consumer: j belongs to the gather window of consumer j/n.
      const auto n = static_cast<InstanceIdx>(tc / tp);
      return ConsumedRange{j / n, 1};
    }
    // Fast consumer: the n consumers within j's production period re-read j.
    const auto n = static_cast<InstanceIdx>(tp / tc);
    return ConsumedRange{j * n, n};
  }

  /// Sum over tasks of wcet/period (fraction of one processor the whole
  /// application needs; schedulability requires utilization() <= M).
  double utilization() const;

 private:
  void require_frozen(const char* what) const {
    if (!frozen_) throw_not_frozen(what);
  }
  [[noreturn]] static void throw_not_frozen(const char* what);
  void require_mutable(const char* what) const;

  std::vector<Task> tasks_;
  std::vector<Dependence> deps_;
  bool frozen_ = false;

  // Derived by freeze():
  Time hyperperiod_ = 0;
  std::size_t total_instances_ = 0;
  std::vector<TaskId> topo_order_;
  std::vector<InstanceIdx> instance_count_;  // per task: H / period
  std::vector<std::size_t> instance_base_;   // CSR offsets, size tasks+1
  std::vector<std::vector<std::int32_t>> in_edges_;
  std::vector<std::vector<std::int32_t>> out_edges_;
};

}  // namespace lbmem
