#pragma once
/// \file task_graph.hpp
/// \brief The validated multi-rate task graph (paper Figure 2 and
/// Section 3.1).
///
/// A TaskGraph owns the tasks and dependences of one application. It is
/// immutable after freeze(): validation establishes the invariants every
/// other module relies on (acyclicity, harmonic dependent periods,
/// positive WCETs bounded by periods), computes the hyper-period and a
/// topological order, and builds adjacency indexes.

#include <span>
#include <string>
#include <vector>

#include "lbmem/model/task.hpp"
#include "lbmem/model/types.hpp"

namespace lbmem {

/// Multi-rate application graph with strict-periodic tasks.
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Add a task; returns its dense id. Throws ModelError on duplicate name
  /// or non-positive period/WCET, wcet > period, or negative memory.
  TaskId add_task(Task task);

  /// Convenience overload.
  TaskId add_task(std::string name, Time period, Time wcet, Mem memory);

  /// Add a dependence edge. Ids must exist; periods must be harmonic
  /// (one divides the other); self-loops and duplicate edges rejected.
  void add_dependence(TaskId producer, TaskId consumer, Mem data_size = 1);

  /// Validate global invariants (DAG) and build derived data. Must be
  /// called once after construction; mutating calls afterwards throw.
  void freeze();

  /// True once freeze() has completed successfully.
  bool frozen() const { return frozen_; }

  // ---- introspection (valid after freeze) --------------------------------

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t dependence_count() const { return deps_.size(); }

  const Task& task(TaskId id) const;
  std::span<const Task> tasks() const { return tasks_; }
  std::span<const Dependence> dependences() const { return deps_; }

  /// Find a task id by name; throws ModelError if absent.
  TaskId find(const std::string& name) const;

  /// Hyper-period H = lcm of all task periods (paper Section 3.1, ref [13]).
  Time hyperperiod() const;

  /// Number of instances of \p id within one hyper-period (H / period).
  InstanceIdx instance_count(TaskId id) const;

  /// Total instances across all tasks within one hyper-period.
  std::size_t total_instances() const;

  /// Dependences entering \p consumer (indices into dependences()).
  std::span<const std::int32_t> deps_in(TaskId consumer) const;

  /// Dependences leaving \p producer (indices into dependences()).
  std::span<const std::int32_t> deps_out(TaskId producer) const;

  /// A topological order of task ids (producers before consumers).
  std::span<const TaskId> topological_order() const;

  /// Producer instances consumed by instance \p k of the consumer of
  /// dependence \p dep_index (paper Section 3.1):
  ///  * T_c = n*T_p: instance k consumes producer instances k*n .. k*n+n-1
  ///    (the slow consumer gathers n data, Figure 1);
  ///  * T_p = n*T_c: instance k consumes producer instance floor(k/n)
  ///    (the fast consumer re-reads the latest datum).
  std::vector<InstanceIdx> consumed_instances(std::int32_t dep_index,
                                              InstanceIdx k) const;

  /// Sum over tasks of wcet/period (fraction of one processor the whole
  /// application needs; schedulability requires utilization() <= M).
  double utilization() const;

 private:
  void require_frozen(const char* what) const;
  void require_mutable(const char* what) const;

  std::vector<Task> tasks_;
  std::vector<Dependence> deps_;
  bool frozen_ = false;

  // Derived by freeze():
  Time hyperperiod_ = 0;
  std::vector<TaskId> topo_order_;
  std::vector<std::vector<std::int32_t>> in_edges_;
  std::vector<std::vector<std::int32_t>> out_edges_;
};

}  // namespace lbmem
