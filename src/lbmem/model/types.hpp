#pragma once
/// \file types.hpp
/// \brief Fundamental value types shared across the library.
///
/// All quantities in the paper (WCETs, periods, start times, communication
/// times, memory amounts) are small integers; we keep them as exact 64-bit
/// integers so the worked example of Section 3.3 reproduces bit-exactly and
/// theorem checks never suffer floating-point noise.

#include <cstdint>
#include <functional>

namespace lbmem {

/// Discrete time in ticks (the paper's "units").
using Time = std::int64_t;

/// Memory amount in abstract units (the paper's "required memory amount").
using Mem = std::int64_t;

/// Index of a task in its TaskGraph (dense, 0-based).
using TaskId = std::int32_t;

/// Index of a processor in the Architecture (dense, 0-based).
using ProcId = std::int32_t;

/// Index of a periodic instance of a task within one hyper-period
/// (0-based; task t has hyperperiod/period(t) instances).
using InstanceIdx = std::int32_t;

/// Sentinel for "no processor assigned".
inline constexpr ProcId kNoProc = -1;

/// One periodic instance of a task within the hyper-period window.
struct TaskInstance {
  TaskId task = -1;
  InstanceIdx k = -1;

  friend bool operator==(const TaskInstance&, const TaskInstance&) = default;
  friend auto operator<=>(const TaskInstance&, const TaskInstance&) = default;
};

}  // namespace lbmem

template <>
struct std::hash<lbmem::TaskInstance> {
  std::size_t operator()(const lbmem::TaskInstance& inst) const noexcept {
    const auto a = static_cast<std::uint64_t>(static_cast<std::uint32_t>(inst.task));
    const auto b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(inst.k));
    return std::hash<std::uint64_t>{}((a << 32) | b);
  }
};
