#include "lbmem/model/task_graph.hpp"

#include <algorithm>
#include <queue>

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

TaskId TaskGraph::add_task(Task task) {
  require_mutable("add_task");
  if (task.name.empty()) {
    throw ModelError("task name must not be empty");
  }
  for (const auto& existing : tasks_) {
    if (existing.name == task.name) {
      throw ModelError("duplicate task name: " + task.name);
    }
  }
  if (task.period <= 0) {
    throw ModelError("task " + task.name + ": period must be positive");
  }
  if (task.wcet <= 0) {
    throw ModelError("task " + task.name + ": wcet must be positive");
  }
  if (task.wcet > task.period) {
    throw ModelError("task " + task.name +
                     ": wcet exceeds period (non-preemptive strict "
                     "periodicity requires E <= T)");
  }
  if (task.memory < 0) {
    throw ModelError("task " + task.name + ": memory must be non-negative");
  }
  tasks_.push_back(std::move(task));
  return static_cast<TaskId>(tasks_.size() - 1);
}

TaskId TaskGraph::add_task(std::string name, Time period, Time wcet,
                           Mem memory) {
  return add_task(Task{std::move(name), period, wcet, memory});
}

void TaskGraph::set_wcet(TaskId id, Time wcet) {
  LBMEM_REQUIRE(id >= 0 && id < static_cast<TaskId>(tasks_.size()),
                "task id out of range");
  Task& task = tasks_[static_cast<std::size_t>(id)];
  if (wcet <= 0) {
    throw ModelError("task " + task.name + ": wcet must be positive");
  }
  if (wcet > task.period) {
    throw ModelError("task " + task.name +
                     ": wcet must not exceed the period");
  }
  task.wcet = wcet;
}

void TaskGraph::add_dependence(TaskId producer, TaskId consumer,
                               Mem data_size) {
  require_mutable("add_dependence");
  const auto n = static_cast<TaskId>(tasks_.size());
  if (producer < 0 || producer >= n || consumer < 0 || consumer >= n) {
    throw ModelError("dependence references unknown task id");
  }
  if (producer == consumer) {
    throw ModelError("self-dependence on task " + tasks_[static_cast<std::size_t>(producer)].name);
  }
  if (data_size <= 0) {
    throw ModelError("dependence data_size must be positive");
  }
  for (const auto& d : deps_) {
    if (d.producer == producer && d.consumer == consumer) {
      throw ModelError("duplicate dependence " +
                       tasks_[static_cast<std::size_t>(producer)].name + " -> " +
                       tasks_[static_cast<std::size_t>(consumer)].name);
    }
  }
  const Time tp = tasks_[static_cast<std::size_t>(producer)].period;
  const Time tc = tasks_[static_cast<std::size_t>(consumer)].period;
  if (tp % tc != 0 && tc % tp != 0) {
    throw ModelError("dependent tasks must have harmonic periods (paper "
                     "Sections 3.1/4): " +
                     tasks_[static_cast<std::size_t>(producer)].name + " (T=" +
                     std::to_string(tp) + ") -> " +
                     tasks_[static_cast<std::size_t>(consumer)].name + " (T=" +
                     std::to_string(tc) + ")");
  }
  deps_.push_back(Dependence{producer, consumer, data_size});
}

void TaskGraph::freeze() {
  require_mutable("freeze");
  if (tasks_.empty()) {
    throw ModelError("task graph has no tasks");
  }

  // Hyper-period.
  std::vector<std::int64_t> periods;
  periods.reserve(tasks_.size());
  for (const auto& t : tasks_) periods.push_back(t.period);
  hyperperiod_ = lcm_all(periods);

  // Adjacency.
  in_edges_.assign(tasks_.size(), {});
  out_edges_.assign(tasks_.size(), {});
  for (std::size_t e = 0; e < deps_.size(); ++e) {
    out_edges_[static_cast<std::size_t>(deps_[e].producer)].push_back(
        static_cast<std::int32_t>(e));
    in_edges_[static_cast<std::size_t>(deps_[e].consumer)].push_back(
        static_cast<std::int32_t>(e));
  }

  // Kahn topological sort; detects cycles.
  std::vector<std::int32_t> indegree(tasks_.size(), 0);
  for (const auto& d : deps_) {
    ++indegree[static_cast<std::size_t>(d.consumer)];
  }
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId t = 0; t < static_cast<TaskId>(tasks_.size()); ++t) {
    if (indegree[static_cast<std::size_t>(t)] == 0) ready.push(t);
  }
  topo_order_.clear();
  topo_order_.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    topo_order_.push_back(t);
    for (const std::int32_t e : out_edges_[static_cast<std::size_t>(t)]) {
      const TaskId c = deps_[static_cast<std::size_t>(e)].consumer;
      if (--indegree[static_cast<std::size_t>(c)] == 0) ready.push(c);
    }
  }
  if (topo_order_.size() != tasks_.size()) {
    throw ModelError("task graph contains a dependence cycle");
  }

  // Instance counts (H / period) and CSR offsets, cached so hot paths
  // never divide or re-derive the dense instance enumeration.
  instance_count_.resize(tasks_.size());
  instance_base_.resize(tasks_.size() + 1);
  instance_base_[0] = 0;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    instance_count_[t] = static_cast<InstanceIdx>(hyperperiod_ / tasks_[t].period);
    instance_base_[t + 1] =
        instance_base_[t] + static_cast<std::size_t>(instance_count_[t]);
  }
  total_instances_ = instance_base_.back();
  frozen_ = true;
}

TaskId TaskGraph::find(const std::string& name) const {
  for (TaskId t = 0; t < static_cast<TaskId>(tasks_.size()); ++t) {
    if (tasks_[static_cast<std::size_t>(t)].name == name) return t;
  }
  throw ModelError("no task named " + name);
}

std::span<const TaskId> TaskGraph::topological_order() const {
  require_frozen("topological_order");
  return topo_order_;
}

std::vector<InstanceIdx> TaskGraph::consumed_instances(std::int32_t dep_index,
                                                       InstanceIdx k) const {
  const ConsumedRange range = consumed_range(dep_index, k);
  std::vector<InstanceIdx> result;
  result.reserve(static_cast<std::size_t>(range.count));
  for (InstanceIdx i = 0; i < range.count; ++i) {
    result.push_back(range.first + i);
  }
  return result;
}

double TaskGraph::utilization() const {
  double u = 0.0;
  for (const auto& t : tasks_) {
    u += static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  return u;
}

void TaskGraph::throw_not_frozen(const char* what) {
  throw PreconditionError(std::string(what) +
                          " requires a frozen TaskGraph (call freeze())");
}

void TaskGraph::require_mutable(const char* what) const {
  if (frozen_) {
    throw PreconditionError(std::string(what) +
                            " not allowed after freeze()");
  }
}

}  // namespace lbmem
