#pragma once
/// \file task.hpp
/// \brief Task and dependence descriptions (paper Section 3.1).

#include <string>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// A strictly periodic, non-preemptive task.
///
/// Strict periodicity (paper Section 1): if the first instance starts at S,
/// instance k starts exactly at S + k*period — the scheduler chooses S once
/// and every instance is pinned relative to it.
struct Task {
  /// Human-readable name (unique within a TaskGraph).
  std::string name;
  /// Strict period T (ticks), > 0.
  Time period = 0;
  /// Worst-case execution time E (ticks), 0 < wcet <= period.
  Time wcet = 0;
  /// Required memory amount m: data space the task needs on whichever
  /// processor executes it (per instance; see DESIGN.md Section 6).
  Mem memory = 0;
};

/// A data dependence "producer ≺ consumer" (paper: a ≺ b).
///
/// Dependent tasks must have harmonic periods (one divides the other,
/// paper Sections 3.1/4). The multi-rate consumption rule is implemented in
/// TaskGraph::consumed_instances().
struct Dependence {
  TaskId producer = -1;
  TaskId consumer = -1;
  /// Size of the datum transferred per producer instance; feeds the
  /// communication-time model ("the larger the task, the longer the
  /// transfer time", paper Section 3.1).
  Mem data_size = 1;
};

}  // namespace lbmem
