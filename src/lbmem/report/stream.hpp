#pragma once
/// \file stream.hpp
/// \brief Human-readable and JSON renderings of streaming-service reports.

#include <string>

#include "lbmem/stream/service.hpp"

namespace lbmem {

/// Traffic totals, coalescing breakdown, queueing/batching distributions
/// and final system state of one serve() run. Under \p include_timing the
/// wall-clock lines (throughput, queue-delay and batch-repair percentiles)
/// are added; with timing off the output is deterministic for a fixed
/// trace and configuration.
std::string summarize_stream(const StreamReport& report,
                             bool include_timing = true);

/// JSON object with `traffic`, `coalescing`, `latency` and `final`
/// sections. Set \p include_timing to false for byte-stable (golden/diff)
/// output — the wall-clock fields and the microsecond histograms are the
/// only nondeterministic content.
std::string stream_report_to_json(const StreamReport& report,
                                  bool include_timing = true);

/// One periodic stats line for the serve loop ("cycle 1200 t=76800
/// in=9800 ..."); deterministic fields only unless \p include_timing.
std::string progress_line(const StreamProgress& progress,
                          bool include_timing = true);

}  // namespace lbmem
