#include "lbmem/report/summary.hpp"

#include <sstream>

namespace lbmem {

std::string summarize(const BalanceStats& stats) {
  std::ostringstream out;
  out << "makespan: " << stats.makespan_before << " -> "
      << stats.makespan_after << "  (Gtotal = " << stats.gain_total << ")\n";
  out << "max memory: " << stats.max_memory_before << " -> "
      << stats.max_memory_after << "\n";
  out << "memory per processor: [";
  for (std::size_t p = 0; p < stats.memory_before.size(); ++p) {
    if (p) out << ", ";
    out << stats.memory_before[p];
  }
  out << "] -> [";
  for (std::size_t p = 0; p < stats.memory_after.size(); ++p) {
    if (p) out << ", ";
    out << stats.memory_after[p];
  }
  out << "]\n";
  out << "blocks: " << stats.blocks_total << " (" << stats.blocks_category1
      << " category-1), moves off home: " << stats.moves_off_home
      << ", gains applied: " << stats.gains_applied << "\n";
  out << "attempts: " << stats.attempts_used
      << ", forced stays: " << stats.forced_stays
      << (stats.fell_back ? ", FELL BACK to input schedule" : "") << "\n";
  // Bound-and-prune observability: printed only when pruning did real
  // work, so exhaustive (trace-recording) runs keep their historic output.
  if (stats.dest_skipped_by_bound + stats.dest_cut_by_incumbent > 0) {
    out << "destinations: " << stats.dest_evaluated << " evaluated, "
        << stats.dest_skipped_by_bound << " skipped by bound, "
        << stats.dest_cut_by_incumbent << " cut by incumbent\n";
  }
  return out.str();
}

namespace {

std::string block_name(const Schedule& sched, const Block& block) {
  std::string name = "[";
  bool first = true;
  for (const TaskInstance& inst : block.members) {
    if (!first) name += "-";
    first = false;
    name += sched.graph().task(inst.task).name;
    // The paper writes b1, b2 for instances but plain d, e for
    // single-instance tasks.
    if (sched.graph().instance_count(inst.task) > 1) {
      name += std::to_string(inst.k + 1);
    }
  }
  name += "]";
  return name;
}

}  // namespace

std::string describe_step(const Schedule& sched, const StepRecord& step,
                          const BlockDecomposition& dec) {
  std::ostringstream out;
  const Block& block = dec.blocks[static_cast<std::size_t>(step.block)];
  out << "block " << block_name(sched, block) << " (cat " << block.category
      << ", start " << step.start_before << "): ";
  for (const DestinationScore& cand : step.candidates) {
    out << sched.architecture().processor_name(cand.proc) << ": ";
    if (cand.feasible) {
      out << "G=" << cand.gain << " lam=" << cand.lambda.num << "/"
          << cand.lambda.den;
    } else {
      out << "infeasible (" << cand.reject_reason << ")";
    }
    out << "  ";
  }
  out << "=> "
      << (step.chosen == kNoProc
              ? std::string("stay")
              : sched.architecture().processor_name(step.chosen));
  if (step.forced_stay) out << " (forced)";
  if (step.applied_gain > 0) out << ", gain " << step.applied_gain;
  return out.str();
}

}  // namespace lbmem
