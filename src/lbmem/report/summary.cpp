#include "lbmem/report/summary.hpp"

#include <sstream>

#include "lbmem/api/solvers.hpp"
#include "lbmem/report/solve.hpp"

namespace lbmem {

std::string summarize(const BalanceStats& stats) {
  // The facade's superset renderer is the single source of the format;
  // heuristic stats are a projection of it (see report/solve.hpp).
  return summarize_solve(to_solve_stats(stats));
}

namespace {

std::string block_name(const Schedule& sched, const Block& block) {
  std::string name = "[";
  bool first = true;
  for (const TaskInstance& inst : block.members) {
    if (!first) name += "-";
    first = false;
    name += sched.graph().task(inst.task).name;
    // The paper writes b1, b2 for instances but plain d, e for
    // single-instance tasks.
    if (sched.graph().instance_count(inst.task) > 1) {
      name += std::to_string(inst.k + 1);
    }
  }
  name += "]";
  return name;
}

}  // namespace

std::string describe_step(const Schedule& sched, const StepRecord& step,
                          const BlockDecomposition& dec) {
  std::ostringstream out;
  const Block& block = dec.blocks[static_cast<std::size_t>(step.block)];
  out << "block " << block_name(sched, block) << " (cat " << block.category
      << ", start " << step.start_before << "): ";
  for (const DestinationScore& cand : step.candidates) {
    out << sched.architecture().processor_name(cand.proc) << ": ";
    if (cand.feasible) {
      out << "G=" << cand.gain << " lam=" << cand.lambda.num << "/"
          << cand.lambda.den;
    } else {
      out << "infeasible (" << cand.reject_reason << ")";
    }
    out << "  ";
  }
  out << "=> "
      << (step.chosen == kNoProc
              ? std::string("stay")
              : sched.architecture().processor_name(step.chosen));
  if (step.forced_stay) out << " (forced)";
  if (step.applied_gain > 0) out << ", gain " << step.applied_gain;
  return out.str();
}

}  // namespace lbmem
