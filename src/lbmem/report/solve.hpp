#pragma once
/// \file solve.hpp
/// \brief Renderings of the solver facade's results: SolveStats summaries
/// and JSON, and the ScenarioRunner comparison table/JSON.
///
/// summarize_solve is the superset renderer behind summarize(BalanceStats)
/// (summary.cpp converts and delegates), so the heuristic's historic
/// output format is a projection of this one and the two can never drift.

#include <string>

#include "lbmem/api/scenario.hpp"
#include "lbmem/api/solver.hpp"

namespace lbmem {

/// Multi-line summary of one solve: makespans, gain, memory distribution,
/// plus whichever stats family (heuristic / GA / partition) is present.
/// For heuristic stats the output is byte-identical to
/// summarize(BalanceStats).
std::string summarize_solve(const SolveStats& stats);

/// JSON object for one solve's statistics. The common and balance-family
/// keys match stats_to_json (existing consumers keep parsing); GA and
/// partition families appear only when present.
std::string solve_stats_to_json(const SolveStats& stats);

/// Comparison table of a scenario sweep: one row per solver with solved
/// counts and mean makespan / max-memory / gain (and mean wall time when
/// \p include_timing). Deterministic for a fixed spec when timing is off.
std::string summarize_scenario(const ScenarioReport& report,
                               bool include_timing = true);

/// JSON object with the spec-independent sweep data: instance counts, the
/// per-solver summary and the per-instance cells. \p include_timing=false
/// omits every wall-clock field (byte-stable output for goldens/diffing).
std::string scenario_report_to_json(const ScenarioReport& report,
                                    bool include_timing = true);

}  // namespace lbmem
