#pragma once
/// \file stats.hpp
/// \brief Renderings of a metrics-registry snapshot: the `--metrics-out`
/// JSON artifact and the human-readable stats block.
///
/// JSON schema (stable; validated in CI):
///   {
///     "build":   { version, git_sha, compiler, build_type },
///     "metrics": { "<name>": {kind, value | histogram fields}, ... },
///     "timing":  { same shape, Timing-class metrics only }
///   }
/// "metrics" holds the Deterministic class only, so stripping (or
/// omitting, via include_timing=false) the "timing" subtree leaves a
/// byte-identical artifact for every `--threads` value — the same
/// discipline as PR 5's `--timing=off` (DESIGN.md F25).

#include <string>

#include "lbmem/obs/metrics.hpp"

namespace lbmem {

/// One histogram as a JSON object: {"kind": "histogram", "count", "sum",
/// "min", "max", "p50", "p90", "p99", "buckets": [[upper_edge, count]...]}.
/// Every field is integral and run-deterministic for deterministic inputs.
std::string histogram_to_json(const obs::LatencyHistogram& hist);

/// The full snapshot artifact (see the file comment). With
/// \p include_timing false, the "timing" key is omitted entirely.
std::string metrics_to_json(const obs::Snapshot& snapshot,
                            bool include_timing = true);

/// Human-readable stats block: one table row per metric (histograms show
/// count/p50/p99/max). Timing-class rows are marked and can be suppressed
/// with \p include_timing = false.
std::string summarize_stats(const obs::Snapshot& snapshot,
                            bool include_timing = true);

}  // namespace lbmem
