#pragma once
/// \file gantt.hpp
/// \brief ASCII Gantt rendering of distributed schedules — regenerates the
/// paper's Figures 3 and 4 in text form.

#include <string>

#include "lbmem/sched/schedule.hpp"

namespace lbmem {

/// Rendering options.
struct GanttOptions {
  /// Maximum chart width in columns; longer schedules are scaled down.
  int max_width = 120;
  /// Show instance indices (a0, a1, ...) when cell width permits.
  bool label_instances = true;
};

/// Render \p sched as one row per processor over [0, makespan].
/// Each occupied tick shows the first letter of the running task; idle
/// ticks show '.'. A header row carries time marks.
std::string render_gantt(const Schedule& sched, const GanttOptions& options = {});

}  // namespace lbmem
