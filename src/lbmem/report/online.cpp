#include "lbmem/report/online.hpp"

#include <sstream>

#include "lbmem/report/stats.hpp"
#include "lbmem/util/json.hpp"
#include "lbmem/util/table.hpp"

namespace lbmem {

namespace {

/// Compact event target for table cells ("dyn3", "P2", "imu -> E=4").
std::string event_target(const Event& event) {
  switch (event.kind()) {
    case EventKind::TaskArrival:
      return std::get<TaskArrival>(event.payload).spec.name;
    case EventKind::TaskRemoval:
      return std::get<TaskRemoval>(event.payload).task;
    case EventKind::WcetChange: {
      const WcetChange& change = std::get<WcetChange>(event.payload);
      return change.task + " -> E=" + std::to_string(change.wcet);
    }
    case EventKind::ProcessorFailure: {
      // Built in two steps: GCC 12's -O2 restrict checker reports a false
      // positive on `"P" + std::to_string(...)`.
      std::string name = "P";
      name += std::to_string(
          std::get<ProcessorFailure>(event.payload).proc + 1);
      return name;
    }
  }
  return "?";
}

}  // namespace

std::string summarize_online(const OnlineReport& report,
                             bool include_timing) {
  Table table({"#", "t", "event", "target", "outcome", "repaired", "blocks",
               "migr", "gain", "makespan", "maxmem", "viol"});
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const EventOutcome& outcome = report.events[i];
    std::string result;
    if (!outcome.applied) {
      result = "rejected";
    } else if (outcome.full_replace) {
      result = "replaced";
    } else if (outcome.balance_fell_back) {
      result = "repaired";
    } else {
      result = "ok";
    }
    const int violations =
        i < report.violations.size() ? report.violations[i] : -1;
    table.add_row({std::to_string(i + 1), std::to_string(outcome.event.at),
                   to_string(outcome.event.kind()),
                   event_target(outcome.event), result,
                   std::to_string(outcome.repaired_tasks),
                   std::to_string(outcome.dirty_blocks),
                   std::to_string(outcome.migrated_instances),
                   std::to_string(outcome.balance_gain),
                   std::to_string(outcome.makespan),
                   std::to_string(outcome.max_memory),
                   violations < 0 ? std::string("-")
                                  : std::to_string(violations)});
  }

  std::ostringstream out;
  out << table.to_string() << "\n"
      << "events: " << report.events.size() << " (" << report.applied
      << " applied, " << report.rejected << " rejected), violations: "
      << report.total_violations << "\n"
      << "migrations: " << report.total_migrations << " instances, repairs: "
      << report.total_repaired << " tasks, balance moves: "
      << report.total_balance_moves << " (Gtotal " << report.total_balance_gain
      << ")\n";
  // Printed only when it happened, so non-resolver replays (and their
  // goldens) keep their historic output.
  if (report.total_resolver_discards > 0) {
    out << "resolver discards: " << report.total_resolver_discards
        << " (full-resolve outcome re-populated a failed processor)\n";
  }
  out << "final makespan: " << report.final_makespan << ", final max memory: "
      << report.final_max_memory << " (peak " << report.peak_max_memory
      << ")\n";
  // Wall clock — kept out of golden/diff renderings via --timing=off.
  if (include_timing && report.repair_latency_us.count() > 0) {
    const obs::LatencyHistogram& lat = report.repair_latency_us;
    out << "repair latency (us): p50 " << lat.percentile(50) << ", p99 "
        << lat.percentile(99) << ", max " << lat.max() << " over "
        << lat.count() << " events\n";
  }
  return out.str();
}

std::string online_report_to_json(const OnlineReport& report,
                                  bool include_timing) {
  std::ostringstream out;
  out << "{\n  \"events\": [\n";
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const EventOutcome& outcome = report.events[i];
    out << "    {\"at\": " << outcome.event.at << ", \"kind\": \""
        << to_string(outcome.event.kind()) << "\", \"target\": \""
        << json_escape(event_target(outcome.event)) << "\", \"applied\": "
        << (outcome.applied ? "true" : "false");
    if (!outcome.applied) {
      out << ", \"reject_reason\": \"" << json_escape(outcome.reject_reason)
          << "\"";
    }
    out << ", \"graph_rebuilt\": " << (outcome.graph_rebuilt ? "true" : "false")
        << ", \"full_replace\": " << (outcome.full_replace ? "true" : "false")
        << ", \"repaired_tasks\": " << outcome.repaired_tasks
        << ", \"dirty_blocks\": " << outcome.dirty_blocks
        << ", \"migrated_instances\": " << outcome.migrated_instances
        << ", \"resolver_discarded\": "
        << (outcome.resolver_discarded ? "true" : "false")
        << ", \"balance_moves\": " << outcome.balance_moves
        << ", \"balance_gain\": " << outcome.balance_gain
        << ", \"makespan\": " << outcome.makespan
        << ", \"max_memory\": " << outcome.max_memory
        << ", \"alive_tasks\": " << outcome.alive_tasks
        << ", \"alive_procs\": " << outcome.alive_procs
        << ", \"violations\": "
        << (i < report.violations.size() ? report.violations[i] : -1);
    if (include_timing) {
      out << ", \"wall_seconds\": " << outcome.wall_seconds;
    }
    out << "}";
    if (i + 1 < report.events.size()) out << ",";
    out << "\n";
  }
  out << "  ],\n  \"summary\": {\"applied\": " << report.applied
      << ", \"rejected\": " << report.rejected
      << ", \"total_violations\": " << report.total_violations
      << ", \"total_migrations\": " << report.total_migrations
      << ", \"total_repaired\": " << report.total_repaired
      << ", \"total_balance_moves\": " << report.total_balance_moves
      << ", \"total_balance_gain\": " << report.total_balance_gain
      << ", \"total_resolver_discards\": " << report.total_resolver_discards
      << ", \"peak_max_memory\": " << report.peak_max_memory
      << ", \"final_makespan\": " << report.final_makespan
      << ", \"final_max_memory\": " << report.final_max_memory
      << ", \"dirty_blocks\": " << histogram_to_json(report.dirty_blocks);
  if (include_timing) {
    out << ", \"total_wall_seconds\": " << report.total_wall_seconds
        << ", \"max_wall_seconds\": " << report.max_wall_seconds
        << ", \"repair_latency_us\": "
        << histogram_to_json(report.repair_latency_us);
  }
  out << "}\n}\n";
  return out.str();
}

}  // namespace lbmem
