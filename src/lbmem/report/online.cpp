#include "lbmem/report/online.hpp"

#include <sstream>

#include "lbmem/report/stats.hpp"
#include "lbmem/util/json.hpp"
#include "lbmem/util/table.hpp"

namespace lbmem {

namespace {

/// Compact event target for table cells ("dyn3", "P2", "imu -> E=4").
std::string event_target(const Event& event) {
  switch (event.kind()) {
    case EventKind::TaskArrival:
      return std::get<TaskArrival>(event.payload).spec.name;
    case EventKind::TaskRemoval:
      return std::get<TaskRemoval>(event.payload).task;
    case EventKind::WcetChange: {
      const WcetChange& change = std::get<WcetChange>(event.payload);
      return change.task + " -> E=" + std::to_string(change.wcet);
    }
    case EventKind::ProcessorFailure: {
      // Built in two steps: GCC 12's -O2 restrict checker reports a false
      // positive on `"P" + std::to_string(...)`.
      std::string name = "P";
      name += std::to_string(
          std::get<ProcessorFailure>(event.payload).proc + 1);
      return name;
    }
  }
  return "?";
}

}  // namespace

namespace {

/// Table outcome label. The degraded-mode states ("deferred", "retried",
/// "resolved", "shed") only occur with the ladder on, so historic replays
/// keep their historic labels.
std::string outcome_label(const EventOutcome& outcome) {
  if (!outcome.applied) return outcome.deferred ? "deferred" : "rejected";
  switch (outcome.degraded_rung) {
    case 1: return "retried";
    case 3: return "resolved";
    case 4: return "shed";
    default: break;
  }
  if (outcome.full_replace) return "replaced";
  if (outcome.balance_fell_back) return "repaired";
  return "ok";
}

void add_event_row(Table& table, const std::string& index,
                   const EventOutcome& outcome, int violations) {
  table.add_row({index, std::to_string(outcome.event.at),
                 to_string(outcome.event.kind()),
                 event_target(outcome.event), outcome_label(outcome),
                 std::to_string(outcome.repaired_tasks),
                 std::to_string(outcome.dirty_blocks),
                 std::to_string(outcome.migrated_instances),
                 std::to_string(outcome.balance_gain),
                 std::to_string(outcome.makespan),
                 std::to_string(outcome.max_memory),
                 violations < 0 ? std::string("-")
                                : std::to_string(violations)});
}

}  // namespace

std::string summarize_online(const OnlineReport& report,
                             bool include_timing) {
  Table table({"#", "t", "event", "target", "outcome", "repaired", "blocks",
               "migr", "gain", "makespan", "maxmem", "viol"});
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const EventOutcome& outcome = report.events[i];
    const int violations =
        i < report.violations.size() ? report.violations[i] : -1;
    add_event_row(table, std::to_string(i + 1), outcome, violations);
    // Backoff re-attempts resolved at this tick ride under their trigger,
    // marked with an "r" suffix ("7r" = resolved while applying event 7).
    for (const EventOutcome& resolved : outcome.resolved_pending) {
      add_event_row(table, std::to_string(i + 1) + "r", resolved, -1);
    }
  }

  std::ostringstream out;
  out << table.to_string() << "\n"
      << "events: " << report.events.size() << " (" << report.applied
      << " applied, " << report.rejected << " rejected";
  if (report.deferred > 0) out << ", " << report.deferred << " deferred";
  out << "), violations: " << report.total_violations << "\n"
      << "migrations: " << report.total_migrations << " instances, repairs: "
      << report.total_repaired << " tasks, balance moves: "
      << report.total_balance_moves << " (Gtotal " << report.total_balance_gain
      << ")\n";
  // Printed only when it happened, so non-resolver replays (and their
  // goldens) keep their historic output.
  if (report.total_resolver_discards > 0) {
    out << "resolver discards: " << report.total_resolver_discards
        << " (full-resolve outcome re-populated a failed processor)\n";
  }
  // Degraded-mode ladder summary — printed only when a rung past the
  // plain repair was ever needed (DESIGN.md F28).
  if (report.degraded_mode > 0 || report.total_retries > 0 ||
      report.deferred > 0) {
    out << "degraded ladder: deepest rung " << report.degraded_mode
        << ", retries " << report.total_retries << ", recoveries [retry "
        << report.recovered_retry << ", replace " << report.recovered_replace
        << ", resolve " << report.recovered_resolve << ", shed "
        << report.recovered_shed << "]\n";
    if (!report.shed.empty()) {
      out << "shed tasks:";
      for (const std::string& name : report.shed) out << " " << name;
      out << "\n";
    }
  }
  out << "final makespan: " << report.final_makespan << ", final max memory: "
      << report.final_max_memory << " (peak " << report.peak_max_memory
      << ")\n";
  // Wall clock — kept out of golden/diff renderings via --timing=off.
  if (include_timing && report.repair_latency_us.count() > 0) {
    const obs::LatencyHistogram& lat = report.repair_latency_us;
    out << "repair latency (us): p50 " << lat.percentile(50) << ", p99 "
        << lat.percentile(99) << ", max " << lat.max() << " over "
        << lat.count() << " events\n";
  }
  return out.str();
}

namespace {

/// One event object. Degraded-mode fields (deferred flag, ladder rung,
/// retry count, shed set, resolved re-attempts) are emitted only when
/// they carry information, so pre-ladder replay JSON is byte-identical.
void event_to_json(std::ostringstream& out, const EventOutcome& outcome,
                   int violations, bool include_timing,
                   const std::string& indent) {
  out << indent << "{\"at\": " << outcome.event.at << ", \"kind\": \""
      << to_string(outcome.event.kind()) << "\", \"target\": \""
      << json_escape(event_target(outcome.event)) << "\", \"applied\": "
      << (outcome.applied ? "true" : "false");
  if (!outcome.applied) {
    out << ", \"reject_reason\": \"" << json_escape(outcome.reject_reason)
        << "\"";
  }
  if (outcome.deferred) out << ", \"deferred\": true";
  out << ", \"graph_rebuilt\": " << (outcome.graph_rebuilt ? "true" : "false")
      << ", \"full_replace\": " << (outcome.full_replace ? "true" : "false")
      << ", \"repaired_tasks\": " << outcome.repaired_tasks
      << ", \"dirty_blocks\": " << outcome.dirty_blocks
      << ", \"migrated_instances\": " << outcome.migrated_instances
      << ", \"resolver_discarded\": "
      << (outcome.resolver_discarded ? "true" : "false")
      << ", \"balance_moves\": " << outcome.balance_moves
      << ", \"balance_gain\": " << outcome.balance_gain;
  if (outcome.degraded_rung > 0 || outcome.degraded_retries > 0) {
    out << ", \"degraded_rung\": " << outcome.degraded_rung
        << ", \"degraded_retries\": " << outcome.degraded_retries;
  }
  if (!outcome.shed.empty()) {
    out << ", \"shed\": [";
    for (std::size_t s = 0; s < outcome.shed.size(); ++s) {
      if (s > 0) out << ", ";
      out << "\"" << json_escape(outcome.shed[s]) << "\"";
    }
    out << "]";
  }
  out << ", \"makespan\": " << outcome.makespan
      << ", \"max_memory\": " << outcome.max_memory
      << ", \"alive_tasks\": " << outcome.alive_tasks
      << ", \"alive_procs\": " << outcome.alive_procs
      << ", \"violations\": " << violations;
  if (include_timing) {
    out << ", \"wall_seconds\": " << outcome.wall_seconds;
  }
  if (!outcome.resolved_pending.empty()) {
    out << ", \"resolved_pending\": [\n";
    for (std::size_t r = 0; r < outcome.resolved_pending.size(); ++r) {
      event_to_json(out, outcome.resolved_pending[r], -1, include_timing,
                    indent + "  ");
      if (r + 1 < outcome.resolved_pending.size()) out << ",";
      out << "\n";
    }
    out << indent << "]";
  }
  out << "}";
}

}  // namespace

std::string online_report_to_json(const OnlineReport& report,
                                  bool include_timing) {
  std::ostringstream out;
  out << "{\n  \"events\": [\n";
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    event_to_json(out, report.events[i],
                  i < report.violations.size() ? report.violations[i] : -1,
                  include_timing, "    ");
    if (i + 1 < report.events.size()) out << ",";
    out << "\n";
  }
  out << "  ],\n  \"summary\": {\"applied\": " << report.applied
      << ", \"rejected\": " << report.rejected;
  if (report.deferred > 0) out << ", \"deferred\": " << report.deferred;
  out << ", \"total_violations\": " << report.total_violations
      << ", \"total_migrations\": " << report.total_migrations
      << ", \"total_repaired\": " << report.total_repaired
      << ", \"total_balance_moves\": " << report.total_balance_moves
      << ", \"total_balance_gain\": " << report.total_balance_gain
      << ", \"total_resolver_discards\": " << report.total_resolver_discards;
  // Per-rung ladder counts (DESIGN.md F28), only once the ladder acted.
  if (report.degraded_mode > 0 || report.total_retries > 0 ||
      report.deferred > 0) {
    out << ", \"degraded_mode\": " << report.degraded_mode
        << ", \"total_retries\": " << report.total_retries
        << ", \"recovered_retry\": " << report.recovered_retry
        << ", \"recovered_replace\": " << report.recovered_replace
        << ", \"recovered_resolve\": " << report.recovered_resolve
        << ", \"recovered_shed\": " << report.recovered_shed
        << ", \"shed\": [";
    for (std::size_t s = 0; s < report.shed.size(); ++s) {
      if (s > 0) out << ", ";
      out << "\"" << json_escape(report.shed[s]) << "\"";
    }
    out << "]";
  }
  out << ", \"peak_max_memory\": " << report.peak_max_memory
      << ", \"final_makespan\": " << report.final_makespan
      << ", \"final_max_memory\": " << report.final_max_memory
      << ", \"dirty_blocks\": " << histogram_to_json(report.dirty_blocks);
  if (include_timing) {
    out << ", \"total_wall_seconds\": " << report.total_wall_seconds
        << ", \"max_wall_seconds\": " << report.max_wall_seconds
        << ", \"repair_latency_us\": "
        << histogram_to_json(report.repair_latency_us);
  }
  out << "}\n}\n";
  return out.str();
}

}  // namespace lbmem
