#include "lbmem/report/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "lbmem/util/check.hpp"

namespace lbmem {

std::string render_gantt(const Schedule& sched, const GanttOptions& options) {
  LBMEM_REQUIRE(sched.complete(), "render_gantt requires a complete schedule");
  LBMEM_REQUIRE(options.max_width >= 20, "chart too narrow");

  const Time span = std::max<Time>(sched.makespan(), 1);
  const Time scale =
      (span + options.max_width - 1) / options.max_width;  // ticks per column
  const int width = static_cast<int>((span + scale - 1) / scale);

  std::ostringstream out;

  // Header: time marks every 5 columns.
  out << "time ";
  for (int col = 0; col < width; col += 5) {
    const std::string mark = std::to_string(col * scale);
    out << mark;
    const int pad = 5 - static_cast<int>(mark.size());
    for (int i = 0; i < pad && col + 5 <= width; ++i) out << ' ';
  }
  out << "  (1 col = " << scale << " tick" << (scale > 1 ? "s" : "") << ")\n";

  const Architecture& arch = sched.architecture();
  for (ProcId p = 0; p < arch.processor_count(); ++p) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const TaskInstance inst : sched.instances_on(p)) {
      const Time s = sched.start(inst);
      const Time e = sched.end(inst);
      const char label = sched.graph().task(inst.task).name.empty()
                             ? '?'
                             : sched.graph().task(inst.task).name.front();
      for (Time tick = s; tick < e; ++tick) {
        const auto col = static_cast<std::size_t>(tick / scale);
        if (col < row.size()) row[col] = label;
      }
    }
    out << arch.processor_name(p) << "   " << row << '\n';
  }

  // Legend: instance list per processor for exact starts.
  if (options.label_instances) {
    for (ProcId p = 0; p < arch.processor_count(); ++p) {
      out << arch.processor_name(p) << ": ";
      bool first = true;
      for (const TaskInstance inst : sched.instances_on(p)) {
        if (!first) out << ", ";
        first = false;
        out << sched.graph().task(inst.task).name << inst.k << "@"
            << sched.start(inst);
      }
      out << "  [mem " << sched.memory_on(p) << "]\n";
    }
  }
  return out.str();
}

}  // namespace lbmem
