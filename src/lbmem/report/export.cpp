#include "lbmem/report/export.hpp"

#include <sstream>

namespace lbmem {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}

}  // namespace

std::string graph_to_dot(const TaskGraph& graph) {
  std::ostringstream out;
  out << "digraph application {\n";
  out << "  rankdir=LR;\n  node [shape=box];\n";
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    const Task& task = graph.task(t);
    out << "  t" << t << " [label=\"" << dot_escape(task.name) << "\\nT="
        << task.period << " E=" << task.wcet << " m=" << task.memory
        << "\"];\n";
  }
  for (const Dependence& dep : graph.dependences()) {
    out << "  t" << dep.producer << " -> t" << dep.consumer << " [label=\""
        << dep.data_size << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string schedule_to_dot(const Schedule& sched) {
  const TaskGraph& graph = sched.graph();
  std::ostringstream out;
  out << "digraph schedule {\n  rankdir=LR;\n  node [shape=record];\n";
  for (ProcId p = 0; p < sched.architecture().processor_count(); ++p) {
    out << "  subgraph cluster_p" << p << " {\n    label=\""
        << sched.architecture().processor_name(p) << " (mem "
        << sched.memory_on(p) << ")\";\n";
    for (const TaskInstance inst : sched.instances_on(p)) {
      out << "    i" << inst.task << "_" << inst.k << " [label=\""
          << dot_escape(graph.task(inst.task).name) << inst.k << " @"
          << sched.start(inst) << "\"];\n";
    }
    out << "  }\n";
  }
  for (std::int32_t e = 0;
       e < static_cast<std::int32_t>(graph.dependence_count()); ++e) {
    const Dependence& dep = graph.dependences()[static_cast<std::size_t>(e)];
    const InstanceIdx nc = graph.instance_count(dep.consumer);
    for (InstanceIdx k = 0; k < nc; ++k) {
      for (const InstanceIdx pk : graph.consumed_instances(e, k)) {
        const bool remote = sched.proc(TaskInstance{dep.producer, pk}) !=
                            sched.proc(TaskInstance{dep.consumer, k});
        out << "  i" << dep.producer << "_" << pk << " -> i" << dep.consumer
            << "_" << k;
        if (remote) out << " [color=red,label=\"C\"]";
        out << ";\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

std::string schedule_to_json(const Schedule& sched) {
  const TaskGraph& graph = sched.graph();
  std::ostringstream out;
  out << "{\n  \"hyperperiod\": " << graph.hyperperiod()
      << ",\n  \"makespan\": " << sched.makespan() << ",\n  \"tasks\": [\n";
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    const Task& task = graph.task(t);
    out << "    {\"name\": \"" << task.name << "\", \"period\": "
        << task.period << ", \"wcet\": " << task.wcet << ", \"memory\": "
        << task.memory << ", \"first_start\": " << sched.first_start(t)
        << ", \"instances\": [";
    const InstanceIdx n = graph.instance_count(t);
    for (InstanceIdx k = 0; k < n; ++k) {
      if (k) out << ", ";
      const TaskInstance inst{t, k};
      out << "{\"k\": " << k << ", \"proc\": " << sched.proc(inst)
          << ", \"start\": " << sched.start(inst) << "}";
    }
    out << "]}";
    if (t + 1 < static_cast<TaskId>(graph.task_count())) out << ",";
    out << "\n";
  }
  out << "  ],\n  \"memory_per_processor\": [";
  for (ProcId p = 0; p < sched.architecture().processor_count(); ++p) {
    if (p) out << ", ";
    out << sched.memory_on(p);
  }
  out << "]\n}\n";
  return out.str();
}

std::string stats_to_json(const BalanceStats& stats) {
  std::ostringstream out;
  out << "{\"makespan_before\": " << stats.makespan_before
      << ", \"makespan_after\": " << stats.makespan_after
      << ", \"gain_total\": " << stats.gain_total
      << ", \"max_memory_before\": " << stats.max_memory_before
      << ", \"max_memory_after\": " << stats.max_memory_after
      << ", \"blocks_total\": " << stats.blocks_total
      << ", \"blocks_category1\": " << stats.blocks_category1
      << ", \"moves_off_home\": " << stats.moves_off_home
      << ", \"gains_applied\": " << stats.gains_applied
      << ", \"forced_stays\": " << stats.forced_stays
      << ", \"attempts_used\": " << stats.attempts_used
      << ", \"fell_back\": " << (stats.fell_back ? "true" : "false")
      << ", \"wall_seconds\": " << stats.wall_seconds << "}\n";
  return out.str();
}

}  // namespace lbmem
