#include "lbmem/report/solve.hpp"

#include <sstream>

#include "lbmem/util/json.hpp"
#include "lbmem/util/table.hpp"

namespace lbmem {

namespace {

void append_mem_list(std::ostringstream& out, const std::vector<Mem>& mems) {
  out << "[";
  for (std::size_t p = 0; p < mems.size(); ++p) {
    if (p) out << ", ";
    out << mems[p];
  }
  out << "]";
}

}  // namespace

std::string summarize_solve(const SolveStats& stats) {
  std::ostringstream out;
  out << "makespan: " << stats.makespan_before << " -> "
      << stats.makespan_after << "  (Gtotal = " << stats.gain_total << ")\n";
  out << "max memory: " << stats.max_memory_before << " -> "
      << stats.max_memory_after << "\n";
  out << "memory per processor: ";
  append_mem_list(out, stats.memory_before);
  out << " -> ";
  append_mem_list(out, stats.memory_after);
  out << "\n";
  if (stats.has_balance) {
    out << "blocks: " << stats.blocks_total << " (" << stats.blocks_category1
        << " category-1), moves off home: " << stats.moves_off_home
        << ", gains applied: " << stats.gains_applied << "\n";
    out << "attempts: " << stats.attempts_used
        << ", forced stays: " << stats.forced_stays
        << (stats.fell_back ? ", FELL BACK to input schedule" : "") << "\n";
    // Bound-and-prune observability: printed only when pruning did real
    // work, so exhaustive (trace-recording) runs keep their historic
    // output.
    if (stats.dest_skipped_by_bound + stats.dest_cut_by_incumbent > 0) {
      out << "destinations: " << stats.dest_evaluated << " evaluated, "
          << stats.dest_skipped_by_bound << " skipped by bound, "
          << stats.dest_cut_by_incumbent << " cut by incumbent\n";
    }
  }
  if (stats.has_ga) {
    out << "ga: fitness " << stats.fitness << ", evaluations "
        << stats.evaluations << " (" << stats.infeasible_evaluations
        << " infeasible)\n";
  }
  if (stats.has_partition) {
    out << "partition: max load " << stats.partition_max_load
        << " (lower bound " << stats.partition_lower_bound << ", "
        << (stats.partition_proven_optimal ? "optimal proven"
                                           : "budget-bounded")
        << ", nodes " << stats.partition_nodes << ")\n";
  }
  return out.str();
}

std::string solve_stats_to_json(const SolveStats& stats) {
  std::ostringstream out;
  out << "{\"makespan_before\": " << stats.makespan_before
      << ", \"makespan_after\": " << stats.makespan_after
      << ", \"gain_total\": " << stats.gain_total
      << ", \"max_memory_before\": " << stats.max_memory_before
      << ", \"max_memory_after\": " << stats.max_memory_after;
  if (stats.has_balance) {
    out << ", \"blocks_total\": " << stats.blocks_total
        << ", \"blocks_category1\": " << stats.blocks_category1
        << ", \"moves_off_home\": " << stats.moves_off_home
        << ", \"gains_applied\": " << stats.gains_applied
        << ", \"forced_stays\": " << stats.forced_stays
        << ", \"attempts_used\": " << stats.attempts_used
        << ", \"fell_back\": " << (stats.fell_back ? "true" : "false");
  }
  if (stats.has_ga) {
    out << ", \"fitness\": " << stats.fitness
        << ", \"evaluations\": " << stats.evaluations
        << ", \"infeasible_evaluations\": " << stats.infeasible_evaluations;
  }
  if (stats.has_partition) {
    out << ", \"partition_max_load\": " << stats.partition_max_load
        << ", \"partition_lower_bound\": " << stats.partition_lower_bound
        << ", \"partition_proven_optimal\": "
        << (stats.partition_proven_optimal ? "true" : "false")
        << ", \"partition_nodes\": " << stats.partition_nodes;
  }
  out << ", \"wall_seconds\": " << stats.wall_seconds << "}\n";
  return out.str();
}

std::string summarize_scenario(const ScenarioReport& report,
                               bool include_timing) {
  std::ostringstream out;
  out << "instances: " << report.instances << " (" << report.skipped_seeds
      << " unschedulable seeds skipped)\n";
  const bool robustness = report.replications > 0;
  std::vector<std::string> headers = {"solver", "solved", "mean makespan",
                                      "mean max-mem", "mean gain"};
  if (robustness) {
    headers.push_back("miss p50/p99");
    headers.push_back("span infl");
  }
  if (include_timing) headers.push_back("mean wall (ms)");
  Table table(std::move(headers));
  const auto add_summary_row = [&](const ScenarioSolverSummary& row) {
    std::vector<std::string> cells;
    cells.push_back(row.solver);
    cells.push_back(std::to_string(row.solved) + "/" +
                    std::to_string(report.instances));
    if (row.solved > 0) {
      cells.push_back(format_double(row.mean_makespan, 1));
      cells.push_back(format_double(row.mean_max_memory, 1));
      cells.push_back(format_double(row.mean_gain, 1));
    } else {
      cells.insert(cells.end(), 3, "-");
    }
    if (robustness) {
      if (row.solved > 0) {
        cells.push_back(format_double(row.miss_p50, 3) + "/" +
                        format_double(row.miss_p99, 3));
        cells.push_back(format_double(row.mean_span_inflation, 3));
      } else {
        cells.insert(cells.end(), 2, "-");
      }
    }
    if (include_timing) {
      // Wall time averages over *all* instances, so it is meaningful (and
      // shown) even for a solver that never produced a feasible outcome.
      cells.push_back(format_double(1e3 * row.mean_wall_seconds, 3));
    }
    table.add_row(std::move(cells));
  };
  for (const ScenarioSolverSummary& row : report.summary) {
    add_summary_row(row);
  }
  // The miss-rate-driven virtual policy (DESIGN.md F30) rides as one more
  // summary row plus its per-instance picks — only in adaptive mode, so
  // historic compare output is untouched.
  if (report.adaptive) add_summary_row(report.adaptive_summary);
  out << table.to_string();
  if (report.adaptive) {
    out << "adaptive picks:";
    for (const std::string& pick : report.adaptive_picks) out << " " << pick;
    out << "\n";
  }
  return out.str();
}

std::string scenario_report_to_json(const ScenarioReport& report,
                                    bool include_timing) {
  const bool robustness = report.replications > 0;
  std::ostringstream out;
  out << "{\n  \"instances\": " << report.instances
      << ",\n  \"skipped_seeds\": " << report.skipped_seeds;
  if (robustness) {
    out << ",\n  \"replications\": " << report.replications;
  }
  out << ",\n  \"summary\": [\n";
  for (std::size_t i = 0; i < report.summary.size(); ++i) {
    const ScenarioSolverSummary& row = report.summary[i];
    out << "    {\"solver\": \"" << json_escape(row.solver)
        << "\", \"solved\": " << row.solved
        << ", \"mean_makespan\": " << row.mean_makespan
        << ", \"mean_max_memory\": " << row.mean_max_memory
        << ", \"mean_gain\": " << row.mean_gain;
    if (robustness) {
      out << ", \"miss_p50\": " << row.miss_p50
          << ", \"miss_p99\": " << row.miss_p99
          << ", \"mean_span_inflation\": " << row.mean_span_inflation;
    }
    if (include_timing) {
      out << ", \"mean_wall_seconds\": " << row.mean_wall_seconds;
    }
    out << "}" << (i + 1 < report.summary.size() ? "," : "") << "\n";
  }
  out << "  ]";
  // Adaptive mode only (DESIGN.md F30): the virtual policy's aggregates
  // and its per-instance picks, so historic JSON is byte-identical.
  if (report.adaptive) {
    const ScenarioSolverSummary& row = report.adaptive_summary;
    out << ",\n  \"adaptive\": {\"solved\": " << row.solved
        << ", \"mean_makespan\": " << row.mean_makespan
        << ", \"mean_max_memory\": " << row.mean_max_memory
        << ", \"mean_gain\": " << row.mean_gain
        << ", \"miss_p50\": " << row.miss_p50
        << ", \"miss_p99\": " << row.miss_p99
        << ", \"mean_span_inflation\": " << row.mean_span_inflation;
    if (include_timing) {
      out << ", \"mean_wall_seconds\": " << row.mean_wall_seconds;
    }
    out << ", \"picks\": [";
    for (std::size_t p = 0; p < report.adaptive_picks.size(); ++p) {
      out << (p ? ", " : "") << "\"" << json_escape(report.adaptive_picks[p])
          << "\"";
    }
    out << "]}";
  }
  out << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const ScenarioCell& cell = report.cells[i];
    out << "    {\"solver\": \"" << json_escape(cell.solver)
        << "\", \"seed\": " << cell.seed
        << ", \"feasible\": " << (cell.feasible ? "true" : "false")
        << ", \"makespan\": " << cell.makespan
        << ", \"max_memory\": " << cell.max_memory
        << ", \"gain\": " << cell.gain;
    if (robustness && cell.perturbed) {
      out << ", \"miss_p50\": " << cell.miss_p50
          << ", \"miss_p99\": " << cell.miss_p99
          << ", \"mean_span_inflation\": " << cell.mean_span_inflation
          << ", \"sim_violations\": " << cell.sim_violations
          << ", \"rep_miss_rates\": [";
      for (std::size_t r = 0; r < cell.rep_miss_rates.size(); ++r) {
        out << (r ? ", " : "") << cell.rep_miss_rates[r];
      }
      out << "]";
    }
    if (include_timing) {
      out << ", \"wall_seconds\": " << cell.wall_seconds;
    }
    out << ", \"detail\": \"" << json_escape(cell.detail) << "\"}"
        << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace lbmem
