#pragma once
/// \file sim.hpp
/// \brief Renderings of the discrete-event executor's results: the
/// `simulate` subcommand's text summary and `*_sim.json` artifact, for
/// both the plain run (SimMetrics) and the perturbed robustness harness
/// (RobustnessReport). Deterministic for a fixed seed — no wall-clock
/// figures — so the CLI transcript can be a golden file.

#include <string>

#include "lbmem/sim/robustness.hpp"

namespace lbmem {

/// Text summary of one unperturbed execution: the span/violation headline,
/// miss accounting, and the per-processor idle/memory lines.
std::string summarize_sim(const SimMetrics& metrics, int hyperperiods);

/// JSON object for one unperturbed execution, including the structured
/// violation records (task ids + instance indices).
std::string sim_report_to_json(const SimMetrics& metrics, int hyperperiods);

/// Text summary of a robustness run: the perturbation echo, aggregate
/// miss-rate percentiles, per-replication lines, and the failure ->
/// recovery outcome when one was injected.
std::string summarize_robustness(const RobustnessReport& report,
                                 const RobustnessOptions& options);

/// JSON object for a robustness run (aggregates + per-replication rows +
/// the failure block when one was injected).
std::string robustness_report_to_json(const RobustnessReport& report,
                                      const RobustnessOptions& options);

}  // namespace lbmem
