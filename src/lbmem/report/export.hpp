#pragma once
/// \file export.hpp
/// \brief Machine-readable exports: Graphviz DOT for task graphs and
/// schedules, JSON for schedules and balancing stats.
///
/// DOT output renders the paper's Figure-2 style application graphs
/// (nodes annotated with period/WCET/memory, edges with data sizes);
/// JSON output carries complete schedules for external tooling
/// (plotting, regression diffing). Both are plain strings — callers
/// decide where to write them.

#include <string>

#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/sched/schedule.hpp"

namespace lbmem {

/// Graphviz DOT of the application graph. Nodes carry
/// "name\nT=..,E=..,m=.."; edges carry the data size.
std::string graph_to_dot(const TaskGraph& graph);

/// Graphviz DOT of a schedule: tasks clustered per processor, instance
/// nodes annotated with start times, dependence edges marked local/remote.
std::string schedule_to_dot(const Schedule& sched);

/// JSON object with tasks, per-instance placements/starts, per-processor
/// memory, and the makespan. Stable key order (diff-friendly).
std::string schedule_to_json(const Schedule& sched);

/// JSON object for a balancing run's statistics.
std::string stats_to_json(const BalanceStats& stats);

}  // namespace lbmem
