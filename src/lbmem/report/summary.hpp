#pragma once
/// \file summary.hpp
/// \brief Human-readable summaries of balancing runs for examples/benches.

#include <string>

#include "lbmem/lb/load_balancer.hpp"

namespace lbmem {

/// Multi-line summary of a balancing run: makespans, Gtotal, per-processor
/// memory before/after, move counts and robustness counters.
std::string summarize(const BalanceStats& stats);

/// One decision step in the format of the paper's Section 3.3 walkthrough:
/// block id, per-processor λ / feasibility, and the chosen processor.
std::string describe_step(const Schedule& sched, const StepRecord& step,
                          const BlockDecomposition& dec);

}  // namespace lbmem
