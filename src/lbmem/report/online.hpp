#pragma once
/// \file online.hpp
/// \brief Human-readable and JSON renderings of online replay reports.

#include <string>

#include "lbmem/online/runner.hpp"

namespace lbmem {

/// Per-event table (kind, target, outcome, migrations, makespan, memory)
/// plus trajectory totals and — under \p include_timing — the per-event
/// repair-latency p50/p99 line (from OnlineReport::repair_latency_us).
/// With timing off the output is deterministic for a fixed trace.
std::string summarize_online(const OnlineReport& report,
                             bool include_timing = true);

/// JSON object with an `events` array and a `summary` object (including
/// the repair-latency and dirty-set histograms via histogram_to_json).
/// Set \p include_timing to false for byte-stable (golden/diff) output —
/// wall_seconds fields and the latency histogram are the only
/// nondeterministic content.
std::string online_report_to_json(const OnlineReport& report,
                                  bool include_timing = true);

}  // namespace lbmem
