#pragma once
/// \file online.hpp
/// \brief Human-readable and JSON renderings of online replay reports.

#include <string>

#include "lbmem/online/runner.hpp"

namespace lbmem {

/// Per-event table (kind, target, outcome, migrations, makespan, memory)
/// plus trajectory totals. Deterministic for a fixed trace: no wall-clock
/// figures are included (they live in the JSON rendering only).
std::string summarize_online(const OnlineReport& report);

/// JSON object with an `events` array and a `summary` object. Set
/// \p include_timing to false for byte-stable (golden/diff) output —
/// wall_seconds fields are the only nondeterministic content.
std::string online_report_to_json(const OnlineReport& report,
                                  bool include_timing = true);

}  // namespace lbmem
