#include "lbmem/report/sim.hpp"

#include <sstream>

#include "lbmem/util/json.hpp"
#include "lbmem/util/table.hpp"

namespace lbmem {

namespace {

const char* kind_name(SimViolation::Kind kind) {
  return kind == SimViolation::Kind::Overlap ? "overlap" : "data-not-ready";
}

void append_violation_breakdown(std::ostringstream& out,
                                const SimMetrics& metrics) {
  out << metrics.violations << " violations (" << metrics.overlap_violations
      << " overlap, " << metrics.data_violations << " data-not-ready)";
}

}  // namespace

std::string summarize_sim(const SimMetrics& metrics, int hyperperiods) {
  std::ostringstream out;
  out << "simulated " << hyperperiods << " hyper-periods (" << metrics.span
      << " ticks): ";
  append_violation_breakdown(out, metrics);
  out << "\n";
  out << "deadline misses: " << metrics.deadline_misses << "/"
      << metrics.total_instances << " (miss rate "
      << format_double(metrics.miss_rate(), 3) << "), lost instances: "
      << metrics.lost_instances << "\n";
  out << "span: " << metrics.predicted_span << " predicted, " << metrics.span
      << " simulated (inflation " << format_double(metrics.span_inflation(), 3)
      << ")\n";
  for (std::size_t i = 0; i < metrics.procs.size(); ++i) {
    const ProcMetrics& pm = metrics.procs[i];
    out << "  P" << i + 1 << ": idle "
        << static_cast<int>(100 * pm.idle_fraction) << "%, static mem "
        << pm.static_memory << ", peak buffers " << pm.peak_buffer
        << ", peak total " << pm.peak_total << "\n";
  }
  return out.str();
}

std::string sim_report_to_json(const SimMetrics& metrics, int hyperperiods) {
  std::ostringstream out;
  out << "{\n  \"hyperperiods\": " << hyperperiods
      << ",\n  \"span\": " << metrics.span
      << ",\n  \"predicted_span\": " << metrics.predicted_span
      << ",\n  \"span_inflation\": " << metrics.span_inflation()
      << ",\n  \"violations\": " << metrics.violations
      << ",\n  \"overlap_violations\": " << metrics.overlap_violations
      << ",\n  \"data_violations\": " << metrics.data_violations
      << ",\n  \"deadline_misses\": " << metrics.deadline_misses
      << ",\n  \"lost_instances\": " << metrics.lost_instances
      << ",\n  \"total_instances\": " << metrics.total_instances
      << ",\n  \"miss_rate\": " << metrics.miss_rate()
      << ",\n  \"procs\": [\n";
  for (std::size_t i = 0; i < metrics.procs.size(); ++i) {
    const ProcMetrics& pm = metrics.procs[i];
    out << "    {\"busy\": " << pm.busy
        << ", \"idle_fraction\": " << pm.idle_fraction
        << ", \"static_memory\": " << pm.static_memory
        << ", \"peak_buffer\": " << pm.peak_buffer
        << ", \"peak_total\": " << pm.peak_total << "}"
        << (i + 1 < metrics.procs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"violation_records\": [\n";
  for (std::size_t i = 0; i < metrics.violation_records.size(); ++i) {
    const SimViolation& v = metrics.violation_records[i];
    out << "    {\"kind\": \"" << kind_name(v.kind)
        << "\", \"blocker_task\": " << v.blocker.task
        << ", \"blocker_k\": " << v.blocker.k
        << ", \"victim_task\": " << v.victim.task
        << ", \"victim_k\": " << v.victim.k << ", \"at\": " << v.at
        << ", \"ready_at\": " << v.ready_at << "}"
        << (i + 1 < metrics.violation_records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string summarize_robustness(const RobustnessReport& report,
                                 const RobustnessOptions& options) {
  const PerturbSpec& p = options.perturb;
  std::ostringstream out;
  out << "perturbed execution: " << report.replications.size()
      << " replications x " << options.sim.hyperperiods
      << " hyper-periods (seed " << p.seed << ")\n";
  out << "noise: wcet jitter " << format_double(p.wcet_jitter, 3)
      << ", comm jitter " << format_double(p.comm_jitter, 3) << ", stall p="
      << format_double(p.stall_prob, 3) << " x " << p.stall_ticks
      << ", bus fifo " << (p.bus_fifo ? "on" : "off") << "\n";
  // Correlated-burst line (DESIGN.md F27) — only when a chain is active,
  // so historic output is unchanged. The CLI configures the channels
  // uniformly; report whichever chain is live.
  if (p.any_burst()) {
    const GilbertElliott& chain = p.wcet_burst.active()
                                      ? p.wcet_burst
                                      : (p.comm_burst.active() ? p.comm_burst
                                                               : p.stall_burst);
    out << "burst: storm entry p=" << format_double(chain.p, 3) << ", exit q="
        << format_double(chain.q, 3) << ", intensity x"
        << format_double(chain.factor, 3) << "\n";
  }
  out << "miss rate p50 " << format_double(report.miss_p50, 3) << " / p99 "
      << format_double(report.miss_p99, 3) << ", mean span inflation "
      << format_double(report.mean_span_inflation, 3) << "\n";
  std::int64_t overlap = 0;
  std::int64_t data = 0;
  for (const RobustnessReplication& rep : report.replications) {
    overlap += rep.metrics.overlap_violations;
    data += rep.metrics.data_violations;
  }
  out << "violations: " << report.total_violations << " (" << overlap
      << " overlap, " << data << " data-not-ready), deadline misses: "
      << report.total_deadline_misses << ", lost instances: "
      << report.total_lost_instances << "\n";
  for (std::size_t r = 0; r < report.replications.size(); ++r) {
    const RobustnessReplication& rep = report.replications[r];
    out << "  rep " << r + 1 << ": miss rate "
        << format_double(rep.miss_rate, 3) << ", span inflation "
        << format_double(rep.span_inflation, 3) << ", violations "
        << rep.metrics.violations << "\n";
  }
  for (const FailureOutcome& fo : report.failures) {
    out << "failure: P" << fo.proc + 1 << " at t=" << fo.at << " -> ";
    if (fo.repaired) {
      out << "recovered, latency " << fo.recovery_latency << " ticks ("
          << fo.detail << ")";
      // Degraded-mode ladder annotations (DESIGN.md F28/F30) — printed
      // only when a rung past the plain repair produced the table, so
      // historic single-failure output is unchanged.
      if (fo.degraded_rung > 0) out << ", rung " << fo.degraded_rung;
      if (!fo.resolver.empty()) out << ", resolver " << fo.resolver;
      if (!fo.shed.empty()) {
        out << ", shed";
        for (const std::string& name : fo.shed) out << " " << name;
      }
      out << "\n";
    } else {
      out << "NOT recovered: " << fo.detail << "\n";
    }
  }
  if (report.failure_injected) {
    out << "miss rate before recovery "
        << format_double(report.mean_miss_before, 3) << ", after "
        << format_double(report.mean_miss_after, 3) << "\n";
  }
  return out.str();
}

std::string robustness_report_to_json(const RobustnessReport& report,
                                      const RobustnessOptions& options) {
  const PerturbSpec& p = options.perturb;
  std::ostringstream out;
  out << "{\n  \"replications\": " << report.replications.size()
      << ",\n  \"hyperperiods\": " << options.sim.hyperperiods
      << ",\n  \"perturb\": {\"seed\": " << p.seed
      << ", \"wcet_jitter\": " << p.wcet_jitter
      << ", \"comm_jitter\": " << p.comm_jitter
      << ", \"stall_prob\": " << p.stall_prob
      << ", \"stall_ticks\": " << p.stall_ticks << ", \"bus_fifo\": "
      << (p.bus_fifo ? "true" : "false");
  if (p.any_burst()) {
    const GilbertElliott& chain = p.wcet_burst.active()
                                      ? p.wcet_burst
                                      : (p.comm_burst.active() ? p.comm_burst
                                                               : p.stall_burst);
    out << ", \"burst_p\": " << chain.p << ", \"burst_q\": " << chain.q
        << ", \"burst_factor\": " << chain.factor;
  }
  out << "}"
      << ",\n  \"miss_p50\": " << report.miss_p50
      << ",\n  \"miss_p99\": " << report.miss_p99
      << ",\n  \"mean_span_inflation\": " << report.mean_span_inflation
      << ",\n  \"total_violations\": " << report.total_violations
      << ",\n  \"total_deadline_misses\": " << report.total_deadline_misses
      << ",\n  \"total_lost_instances\": " << report.total_lost_instances;
  if (report.failure_injected) {
    // Report-level roll-up (kept for single-failure consumers) plus the
    // per-failure outcomes, in injection order.
    out << ",\n  \"failure\": {\"recovered\": "
        << (report.recovered ? "true" : "false")
        << ", \"recovery_latency\": " << report.recovery_latency
        << ", \"miss_before\": " << report.mean_miss_before
        << ", \"miss_after\": " << report.mean_miss_after
        << ", \"detail\": \"" << json_escape(report.repair_detail) << "\"}"
        << ",\n  \"failures\": [\n";
    for (std::size_t f = 0; f < report.failures.size(); ++f) {
      const FailureOutcome& fo = report.failures[f];
      out << "    {\"proc\": " << fo.proc << ", \"at\": " << fo.at
          << ", \"recovered\": " << (fo.repaired ? "true" : "false")
          << ", \"recovery_latency\": " << fo.recovery_latency
          << ", \"degraded_rung\": " << fo.degraded_rung;
      if (!fo.resolver.empty()) {
        out << ", \"resolver\": \"" << json_escape(fo.resolver) << "\"";
      }
      if (!fo.shed.empty()) {
        out << ", \"shed\": [";
        for (std::size_t s = 0; s < fo.shed.size(); ++s) {
          out << (s ? ", " : "") << "\"" << json_escape(fo.shed[s]) << "\"";
        }
        out << "]";
      }
      out << ", \"detail\": \"" << json_escape(fo.detail) << "\"}"
          << (f + 1 < report.failures.size() ? "," : "") << "\n";
    }
    out << "  ]";
  }
  out << ",\n  \"reps\": [\n";
  for (std::size_t r = 0; r < report.replications.size(); ++r) {
    const RobustnessReplication& rep = report.replications[r];
    out << "    {\"miss_rate\": " << rep.miss_rate
        << ", \"span_inflation\": " << rep.span_inflation
        << ", \"violations\": " << rep.metrics.violations
        << ", \"deadline_misses\": " << rep.metrics.deadline_misses
        << ", \"lost_instances\": " << rep.metrics.lost_instances << "}"
        << (r + 1 < report.replications.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace lbmem
