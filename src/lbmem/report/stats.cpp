#include "lbmem/report/stats.hpp"

#include <sstream>

#include "lbmem/util/build_info.hpp"
#include "lbmem/util/json.hpp"
#include "lbmem/util/table.hpp"

namespace lbmem {

std::string histogram_to_json(const obs::LatencyHistogram& hist) {
  std::ostringstream out;
  out << "{\"kind\": \"histogram\", \"count\": " << hist.count()
      << ", \"sum\": " << hist.sum() << ", \"min\": " << hist.min()
      << ", \"max\": " << hist.max() << ", \"p50\": " << hist.percentile(50)
      << ", \"p90\": " << hist.percentile(90)
      << ", \"p99\": " << hist.percentile(99) << ", \"buckets\": [";
  const auto buckets = hist.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (i != 0) out << ", ";
    out << "[" << buckets[i].first << ", " << buckets[i].second << "]";
  }
  out << "]}";
  return out.str();
}

namespace {

std::string entry_to_json(const obs::SnapshotEntry& entry) {
  if (entry.kind == obs::MetricKind::Histogram) {
    return histogram_to_json(entry.histogram);
  }
  return std::string("{\"kind\": \"") + obs::to_string(entry.kind) +
         "\", \"value\": " + std::to_string(entry.value) + "}";
}

void emit_class(std::ostringstream& out, const obs::Snapshot& snapshot,
                obs::MetricClass cls) {
  bool first = true;
  for (const obs::SnapshotEntry& entry : snapshot.entries) {
    if (entry.cls != cls) continue;
    if (!first) out << ",";
    out << "\n    \"" << json_escape(entry.name) << "\": "
        << entry_to_json(entry);
    first = false;
  }
  if (!first) out << "\n  ";
}

}  // namespace

std::string metrics_to_json(const obs::Snapshot& snapshot,
                            bool include_timing) {
  std::ostringstream out;
  out << "{\n  \"build\": {" << build_info_json_members() << "},\n"
      << "  \"metrics\": {";
  emit_class(out, snapshot, obs::MetricClass::Deterministic);
  out << "}";
  if (include_timing) {
    out << ",\n  \"timing\": {";
    emit_class(out, snapshot, obs::MetricClass::Timing);
    out << "}";
  }
  out << "\n}\n";
  return out.str();
}

std::string summarize_stats(const obs::Snapshot& snapshot,
                            bool include_timing) {
  Table table({"metric", "kind", "value", "p50", "p99", "max"});
  int shown = 0;
  int timing_hidden = 0;
  for (const obs::SnapshotEntry& entry : snapshot.entries) {
    if (entry.cls == obs::MetricClass::Timing && !include_timing) {
      ++timing_hidden;
      continue;
    }
    ++shown;
    const std::string name = entry.cls == obs::MetricClass::Timing
                                 ? entry.name + " (timing)"
                                 : entry.name;
    if (entry.kind == obs::MetricKind::Histogram) {
      const obs::LatencyHistogram& h = entry.histogram;
      table.add_row({name, "histogram", std::to_string(h.count()),
                     std::to_string(h.percentile(50)),
                     std::to_string(h.percentile(99)),
                     std::to_string(h.max())});
    } else {
      table.add_row({name, obs::to_string(entry.kind),
                     std::to_string(entry.value), "-", "-", "-"});
    }
  }
  std::ostringstream out;
  out << "--- stats (" << shown << " metrics";
  if (timing_hidden > 0) out << ", " << timing_hidden << " timing hidden";
  out << ") ---\n" << table.to_string();
  return out.str();
}

}  // namespace lbmem
