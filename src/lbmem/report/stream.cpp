#include "lbmem/report/stream.hpp"

#include <sstream>

#include "lbmem/report/stats.hpp"
#include "lbmem/util/json.hpp"

namespace lbmem {

namespace {

/// "p50 12, p99 340, max 512 over 9800" — the one-line histogram summary
/// used by the human-readable rendering.
std::string hist_line(const obs::LatencyHistogram& hist) {
  std::ostringstream out;
  out << "p50 " << hist.percentile(50) << ", p99 " << hist.percentile(99)
      << ", max " << hist.max() << " over " << hist.count();
  return out.str();
}

}  // namespace

std::string summarize_stream(const StreamReport& report,
                             bool include_timing) {
  std::ostringstream out;
  out << "traffic: " << report.events_in << " events in, " << report.admitted
      << " admitted, " << report.shed_overflow << " shed on overflow\n"
      << "drained: " << report.applied << " applied, " << report.rejected
      << " rejected";
  if (report.deferred > 0) out << ", " << report.deferred << " deferred";
  out << " over " << report.batches << " batches in " << report.cycles
      << " cycles (horizon " << report.horizon << " ticks)\n"
      << "coalescing: " << report.coalesced << " events dropped [lww "
      << report.coalesce_detail.last_write_wins << ", folded "
      << report.coalesce_detail.folded << ", annihilated "
      << report.coalesce_detail.annihilated << ", subsumed "
      << report.coalesce_detail.subsumed << "]\n";
  if (report.escalations > 0 || report.budget_exhausted > 0) {
    out << "pressure: " << report.escalations << " overload escalations, "
        << report.budget_exhausted << " budget-cut cycles\n";
  }
  out << "batch size: " << hist_line(report.batch_events) << "\n"
      << "queue delay (cycles): " << hist_line(report.queue_delay_cycles)
      << "\n";
  if (include_timing) {
    out << "queue delay (us): " << hist_line(report.queue_delay_us) << "\n"
        << "batch repair (us): " << hist_line(report.batch_repair_us) << "\n"
        << "throughput: " << report.events_per_second << " events/s over "
        << report.wall_seconds << " s\n";
  }
  out << "final makespan: " << report.final_makespan
      << ", final max memory: " << report.final_max_memory << ", alive: "
      << report.alive_tasks << " tasks on " << report.alive_procs
      << " procs\n";
  if (!report.shed_tasks.empty()) {
    out << "shed tasks:";
    for (const std::string& name : report.shed_tasks) out << " " << name;
    out << "\n";
  }
  if (report.final_violations >= 0) {
    out << "final violations: " << report.final_violations << "\n";
  }
  return out.str();
}

std::string stream_report_to_json(const StreamReport& report,
                                  bool include_timing) {
  std::ostringstream out;
  out << "{\n  \"traffic\": {\"events_in\": " << report.events_in
      << ", \"admitted\": " << report.admitted
      << ", \"shed_overflow\": " << report.shed_overflow
      << ", \"applied\": " << report.applied
      << ", \"rejected\": " << report.rejected;
  if (report.deferred > 0) out << ", \"deferred\": " << report.deferred;
  out << ", \"batches\": " << report.batches
      << ", \"cycles\": " << report.cycles
      << ", \"horizon\": " << report.horizon
      << ", \"escalations\": " << report.escalations
      << ", \"budget_exhausted\": " << report.budget_exhausted << "},\n"
      << "  \"coalescing\": {\"dropped\": " << report.coalesced
      << ", \"last_write_wins\": " << report.coalesce_detail.last_write_wins
      << ", \"folded\": " << report.coalesce_detail.folded
      << ", \"annihilated\": " << report.coalesce_detail.annihilated
      << ", \"subsumed\": " << report.coalesce_detail.subsumed << "},\n"
      << "  \"latency\": {\"batch_events\": "
      << histogram_to_json(report.batch_events)
      << ", \"queue_delay_cycles\": "
      << histogram_to_json(report.queue_delay_cycles);
  if (include_timing) {
    out << ", \"queue_delay_us\": " << histogram_to_json(report.queue_delay_us)
        << ", \"batch_repair_us\": "
        << histogram_to_json(report.batch_repair_us)
        << ", \"wall_seconds\": " << report.wall_seconds
        << ", \"events_per_second\": " << report.events_per_second;
  }
  out << "},\n  \"final\": {\"makespan\": " << report.final_makespan
      << ", \"max_memory\": " << report.final_max_memory
      << ", \"alive_tasks\": " << report.alive_tasks
      << ", \"alive_procs\": " << report.alive_procs
      << ", \"shed\": [";
  for (std::size_t s = 0; s < report.shed_tasks.size(); ++s) {
    if (s > 0) out << ", ";
    out << "\"" << json_escape(report.shed_tasks[s]) << "\"";
  }
  out << "], \"violations\": " << report.final_violations << "}\n}\n";
  return out.str();
}

std::string progress_line(const StreamProgress& progress,
                          bool include_timing) {
  std::ostringstream out;
  out << "cycle " << progress.cycle << " t=" << progress.now
      << " in=" << progress.events_in << " applied=" << progress.applied
      << " rejected=" << progress.rejected
      << " coalesced=" << progress.coalesced
      << " shed=" << progress.shed_overflow
      << " backlog=" << progress.backlog;
  if (progress.degraded_armed) out << " degraded=armed";
  if (include_timing) {
    out << " qdelay_p50=" << progress.queue_delay_p50_us
        << "us qdelay_p99=" << progress.queue_delay_p99_us << "us";
  }
  return out.str();
}

}  // namespace lbmem
