#pragma once
/// \file cost_policy.hpp
/// \brief Destination-selection policies for the load balancer.
///
/// The paper's Eq. (5) cost function is internally inconsistent with its
/// own worked example (DESIGN.md finding F1), so the policy is pluggable:
///
///  * Lexicographic — maximize gain G; among equal gains minimize the
///    memory already moved to the candidate processor; prefer the block's
///    current processor, then the lowest index. This is the only rule that
///    reproduces all seven steps of the paper's Section 3.3 example; it is
///    the library default.
///  * PaperFormula — maximize λ = (G+1) / max(Σm, 1), the smoothed reading
///    of Eq. (5) matching the arithmetic the example prints in steps 2-7.
///  * PaperLiteral — Eq. (5) verbatim: λ = G when no block has been moved
///    to the processor yet, else λ = (G+1)/Σm.
///  * GainOnly — maximize G, ignore memory (ablation).
///  * MemoryOnly — minimize Σm among feasible destinations, ignore G (the
///    configuration analysed by Theorem 2).
///
/// λ values are exact integer fractions; comparisons never use floating
/// point.

#include <string>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// Selectable decision rule.
enum class CostPolicy {
  Lexicographic,
  PaperFormula,
  PaperLiteral,
  GainOnly,
  MemoryOnly,
};

/// Printable policy name.
std::string to_string(CostPolicy policy);

/// λ as an exact fraction num/den (den > 0).
struct Lambda {
  Time num = 0;
  Mem den = 1;
};

/// λ of a feasible candidate under \p policy, given gain \p gain >= 0 and
/// the total memory \p moved_mem of blocks already moved to the processor.
/// (For Lexicographic/GainOnly/MemoryOnly the fraction is informational;
/// selection uses their own orderings.)
Lambda lambda_value(CostPolicy policy, Time gain, Mem moved_mem);

/// One evaluated destination.
struct DestinationScore {
  ProcId proc = kNoProc;
  bool feasible = false;
  Time gain = 0;       ///< achievable start-time gain (0 for pinned blocks)
  Mem moved_mem = 0;   ///< Σ memory of blocks already moved to proc
  bool is_home = false;
  Lambda lambda;       ///< filled for feasible candidates
  /// Set when !feasible. Always a string literal (static storage) so that
  /// evaluating a candidate never allocates on the balancer hot path.
  const char* reject_reason = "";
};

/// Is candidate \p a strictly better than \p b under \p policy?
/// Pre: both feasible. Deterministic total order (ties broken by
/// home-processor preference, then lower processor index).
bool better_candidate(CostPolicy policy, const DestinationScore& a,
                      const DestinationScore& b);

}  // namespace lbmem
