#pragma once
/// \file cost_policy.hpp
/// \brief Destination-selection policies for the load balancer.
///
/// The paper's Eq. (5) cost function is internally inconsistent with its
/// own worked example (DESIGN.md finding F1), so the policy is pluggable:
///
///  * Lexicographic — maximize gain G; among equal gains minimize the
///    memory already moved to the candidate processor; prefer the block's
///    current processor, then the lowest index. This is the only rule that
///    reproduces all seven steps of the paper's Section 3.3 example; it is
///    the library default.
///  * PaperFormula — maximize λ = (G+1) / max(Σm, 1), the smoothed reading
///    of Eq. (5) matching the arithmetic the example prints in steps 2-7.
///  * PaperLiteral — Eq. (5) verbatim: λ = G when no block has been moved
///    to the processor yet, else λ = (G+1)/Σm.
///  * GainOnly — maximize G, ignore memory (ablation).
///  * MemoryOnly — minimize Σm among feasible destinations, ignore G (the
///    configuration analysed by Theorem 2).
///
/// λ values are exact integer fractions; comparisons never use floating
/// point.

#include <string>

#include "lbmem/model/types.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

/// Selectable decision rule.
enum class CostPolicy {
  Lexicographic,
  PaperFormula,
  PaperLiteral,
  GainOnly,
  MemoryOnly,
};

/// Printable policy name.
std::string to_string(CostPolicy policy);

/// λ as an exact fraction num/den (den > 0).
struct Lambda {
  Time num = 0;
  Mem den = 1;
};

/// λ of a feasible candidate under \p policy, given gain \p gain >= 0 and
/// the total memory \p moved_mem of blocks already moved to the processor.
/// (For Lexicographic/GainOnly/MemoryOnly the fraction is informational;
/// selection uses their own orderings.)
inline Lambda lambda_value(CostPolicy policy, Time gain, Mem moved_mem) {
  LBMEM_REQUIRE(gain >= 0 && moved_mem >= 0, "bad lambda inputs");
  switch (policy) {
    case CostPolicy::PaperLiteral:
      if (moved_mem == 0) {
        return Lambda{gain, 1};  // Eq. (5), first case
      }
      return Lambda{gain + 1, moved_mem};
    case CostPolicy::Lexicographic:
    case CostPolicy::PaperFormula:
    case CostPolicy::GainOnly:
    case CostPolicy::MemoryOnly:
      return Lambda{gain + 1, moved_mem > 0 ? moved_mem : 1};
  }
  return Lambda{};
}

/// λ of the *best score a destination could possibly achieve* when its
/// gain is bounded above by \p gain_upper_bound and its moved memory is
/// known exactly. Admissibility rests on a dominance property every policy
/// satisfies: with the moved memory, home flag and processor index fixed,
/// the candidate ordering is monotone non-decreasing in the gain
/// (Lexicographic/GainOnly order by the gain itself, MemoryOnly ignores
/// it, and both paper fractions — (G+1)/max(Σm,1) and the literal first
/// case λ=G — grow with G). A bound score built from this λ therefore
/// dominates every candidate whose true gain is at most the bound: if the
/// bound score cannot beat an incumbent under better_candidate, the exact
/// score cannot either, so the destination can be skipped without being
/// evaluated. Any future policy must preserve this monotonicity (or stop
/// using bound-based pruning).
inline Lambda upper_bound_lambda(CostPolicy policy, Time gain_upper_bound,
                                 Mem moved_mem) {
  // The bound λ is the exact λ evaluated at the gain ceiling; the
  // admissibility argument (monotonicity in the gain) is above.
  return lambda_value(policy, gain_upper_bound, moved_mem);
}

/// One evaluated destination.
struct DestinationScore {
  ProcId proc = kNoProc;
  bool feasible = false;
  Time gain = 0;       ///< achievable start-time gain (0 for pinned blocks)
  Mem moved_mem = 0;   ///< Σ memory of blocks already moved to proc
  bool is_home = false;
  Lambda lambda;       ///< filled for feasible candidates
  /// Set (with !feasible) when the evaluation was cut short because the
  /// remaining achievable gain could no longer beat the incumbent — the
  /// destination may or may not have been feasible, but it cannot win.
  bool cut_by_incumbent = false;
  /// Set when !feasible. Always a string literal (static storage) so that
  /// evaluating a candidate never allocates on the balancer hot path.
  const char* reject_reason = "";
};

namespace detail {

/// Tie-break shared by all policies: prefer staying home, then low index.
inline bool candidate_tie_break(const DestinationScore& a,
                                const DestinationScore& b) {
  if (a.is_home != b.is_home) return a.is_home;
  return a.proc < b.proc;
}

}  // namespace detail

/// Is candidate \p a strictly better than \p b under \p policy?
/// Pre: both feasible. Deterministic total order (ties broken by
/// home-processor preference, then lower processor index). Inline: the
/// bound-and-prune selection loop compares up to M bounds per block pop,
/// so the comparison must not cost a function call.
inline bool better_candidate(CostPolicy policy, const DestinationScore& a,
                             const DestinationScore& b) {
  LBMEM_REQUIRE(a.feasible && b.feasible,
                "better_candidate compares feasible candidates only");
  switch (policy) {
    case CostPolicy::Lexicographic: {
      if (a.gain != b.gain) return a.gain > b.gain;
      if (a.moved_mem != b.moved_mem) return a.moved_mem < b.moved_mem;
      return detail::candidate_tie_break(a, b);
    }
    case CostPolicy::GainOnly: {
      if (a.gain != b.gain) return a.gain > b.gain;
      return detail::candidate_tie_break(a, b);
    }
    case CostPolicy::MemoryOnly: {
      if (a.moved_mem != b.moved_mem) return a.moved_mem < b.moved_mem;
      return detail::candidate_tie_break(a, b);
    }
    case CostPolicy::PaperFormula:
    case CostPolicy::PaperLiteral: {
      const int cmp = compare_fractions(a.lambda.num, a.lambda.den,
                                        b.lambda.num, b.lambda.den);
      if (cmp != 0) return cmp > 0;
      return detail::candidate_tie_break(a, b);
    }
  }
  return false;
}

}  // namespace lbmem
