#pragma once
/// \file block.hpp
/// \brief Blocks: the move unit of the load-balancing heuristic (paper
/// Section 3.1).
///
/// A block groups task instances scheduled on the same processor whose
/// separation would create an inter-processor communication that the
/// current timing cannot absorb. Formally (paper Eqs. 1-2): a valid block
/// boundary between dependent instances u -> v on one processor requires
/// slack start(v) - end(u) >= C(edge); tighter dependences force u and v
/// into the same block so they move together.
///
/// Categories (paper Section 3.1):
///  * category 1 — every member is the first instance (k == 0) of its task;
///    such blocks may start earlier when moved (gain G > 0);
///  * category 2 — any member is a later instance; the block's start is
///    pinned by strict periodicity and only shifts when the category-1
///    block holding the first instances gains time.

#include <vector>

#include "lbmem/model/types.hpp"
#include "lbmem/sched/schedule.hpp"

namespace lbmem {

/// Identifier of a block within one balancing run.
using BlockId = std::int32_t;

/// A group of task instances moved as a unit.
struct Block {
  BlockId id = -1;
  /// Processor hosting the block in the input schedule.
  ProcId home = kNoProc;
  /// 1 or 2 (see file comment).
  int category = 2;
  /// Member instances, sorted by start time in the input schedule.
  std::vector<TaskInstance> members;
  /// Distinct member tasks, sorted (used for gain propagation).
  std::vector<TaskId> tasks;
  /// Sum of member WCETs — the paper's block execution time E_B.
  Time exec_sum = 0;
  /// Sum of member memory amounts — the paper's block memory m_B.
  Mem mem_sum = 0;

  /// Current start time: the earliest member start in \p sched (member
  /// starts move when the schedule's first starts shift).
  Time start(const Schedule& sched) const;

  /// Current end time of the latest member.
  Time end(const Schedule& sched) const;

  /// Does the block contain any instance of \p t?
  bool contains_task(TaskId t) const;

  /// Does the block contain exactly this instance?
  bool contains(TaskInstance inst) const;
};

}  // namespace lbmem
