#include "lbmem/lb/load_balancer.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <queue>

#include "lbmem/model/hyperperiod.hpp"
#include "lbmem/obs/metrics.hpp"
#include "lbmem/obs/trace.hpp"
#include "lbmem/sched/timeline.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"
#include "lbmem/util/stopwatch.hpp"
#include "lbmem/util/thread_pool.hpp"
#include "lbmem/validate/validator.hpp"

namespace lbmem {

LoadBalancer::LoadBalancer(BalanceOptions options)
    : options_(std::move(options)) {
  LBMEM_REQUIRE(options_.max_attempts >= 1, "max_attempts must be >= 1");
}

namespace {

/// One balancing attempt over a working copy of the schedule.
///
/// Occupancy covers *moved* instances only: the paper's heuristic treats
/// already-moved blocks as a committed prefix, while not-yet-moved blocks
/// are invisible to overlap checks (their placement is fixed when their
/// turn comes — step 3 of the worked example moves a block onto P1 slots
/// that still "hold" the unmoved a3).
///
/// Hot-path layout: every per-destination evaluation (M of them per block)
/// works exclusively off scratch state prepared once per block pop by
/// prepare_block() — the tentative instance layout, the destination-
/// invariant split of each member's external data-readiness, and the gain
/// cap imposed by the block's pinned later instances. evaluate() therefore
/// performs no heap allocation and never rewalks the dependence graph.
class Attempt {
 public:
  Attempt(const Schedule& input, const BalanceOptions& opts,
          Time max_gain_override, const BlockDecomposition& dec,
          const std::vector<ProcTimeline>* warm_all_occ, ThreadPool* pool)
      : opts_(opts),
        pool_(pool),
        max_gain_(max_gain_override),
        sched_(input),
        dec_(dec),
        h_(input.graph().hyperperiod()),
        procs_(input.architecture().processor_count()),
        all_occ_(static_cast<std::size_t>(procs_), ProcTimeline(h_)),
        moved_mem_(static_cast<std::size_t>(procs_), Mem{0}),
        last_moved_end_(static_cast<std::size_t>(procs_), Time{0}),
        first_moved_start_(static_cast<std::size_t>(procs_), Time{-1}),
        resident_mem_(static_cast<std::size_t>(procs_), Mem{0}),
        processed_(dec_.blocks.size(), false) {
    for (ProcId p = 0; p < procs_; ++p) {
      resident_mem_[static_cast<std::size_t>(p)] = input.memory_on(p);
    }
    const std::size_t total = input.graph().total_instances();
    instance_processed_.assign(total, 0);
    affected_epoch_.assign(total, 0);
    if (opts_.overlap_rule == OverlapRule::MovedOnly) {
      // The moved-prefix timelines exist only under MovedOnly; see commit().
      occupancy_.assign(static_cast<std::size_t>(procs_), ProcTimeline(h_));
    }
    if (opts_.overlap_rule == OverlapRule::AllInstances) {
      if (warm_all_occ != nullptr) {
        // Warm start: the caller hands over an occupancy that already
        // mirrors the input schedule — copied wholesale instead of
        // re-adding every instance (DESIGN.md F12).
        LBMEM_REQUIRE(warm_all_occ->size() == all_occ_.size() &&
                          (warm_all_occ->empty() ||
                           warm_all_occ->front().hyperperiod() == h_),
                      "warm occupancy does not match the input schedule");
        all_occ_ = *warm_all_occ;
      } else {
        // The input schedule is valid by contract, so its footprints are
        // disjoint; debug builds still verify each insertion.
        for (const TaskInstance inst : input.all_instances()) {
          all_occ_[static_cast<std::size_t>(input.proc(inst))].add_unchecked(
              input.start(inst), input.graph().task(inst.task).wcet, inst);
        }
      }
    }
  }

  /// Run the heuristic; returns true when the final schedule validates.
  bool run(std::vector<StepRecord>* trace, BalanceStats& stats);

  Schedule& schedule() { return sched_; }

  /// Final all-instances occupancy (mirrors schedule() after a successful
  /// run under OverlapRule::AllInstances); movable out for warm-state reuse.
  std::vector<ProcTimeline>& all_occupancy() { return all_occ_; }

 private:
  struct QueueEntry {
    Time start;
    BlockId block;
    bool operator>(const QueueEntry& other) const {
      if (start != other.start) return start > other.start;
      return block > other.block;
    }
  };
  using RequeueQueue =
      std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

  /// One instance a tentative move relocates, frozen at pop time: members
  /// land on the candidate destination; for a positive category-1 gain the
  /// later instances of the block's tasks shift in place on their own
  /// processor. Tentative start = base_start - gain.
  struct LayoutEntry {
    TaskInstance inst;
    ProcId proc;  // shifting siblings: own processor; members: the candidate
    Time base_start;
    Time wcet;
  };

  /// Destination-invariant split of one member's external data-readiness
  /// (paper Eq. 1): over external producers, the arrival is end + C unless
  /// the producer sits on the candidate destination (then C = 0). So
  /// ready(dest) = max over producer procs q != dest of A[q], maxed with
  /// the colocated term B[dest], where A[q] is the per-proc max of
  /// end + C and B[q] the per-proc max of plain end. We cache the top two
  /// A values on distinct procs plus the (proc, end) pairs for B.
  struct MemberReady {
    Time remote_top1 = 0;
    ProcId remote_top1_proc = kNoProc;
    Time remote_top2 = 0;
    std::uint32_t local_begin = 0;
    std::uint32_t local_end = 0;  // slice of local_arrivals_
  };

  const TaskGraph& graph() const { return sched_.graph(); }

  std::size_t dense(TaskInstance inst) const {
    return graph().dense_index(inst);
  }

  void prepare_block(const Block& block);
  Time member_ready(std::size_t member_idx, ProcId dest) const;
  Time gain_upper_bound(const Block& block, ProcId dest) const;
  DestinationScore make_bound(const Block& block, ProcId dest) const;
  DestinationScore evaluate(const Block& block, ProcId dest,
                            const DestinationScore* incumbent) const;
  /// Select and commit the destination of one popped block. \p requeue
  /// receives the blocks a positive gain shifted (null on the queue-free
  /// gain-disabled path, where gains cannot occur).
  void decide_block(BlockId id, std::vector<StepRecord>* trace,
                    BalanceStats& stats, RequeueQueue* requeue);
  void commit(const Block& block, ProcId dest, Time gain, bool forced,
              BalanceStats& stats);

  /// Closed (failed) processors are never destinations.
  bool closed(ProcId p) const {
    return !opts_.closed_procs.empty() &&
           opts_.closed_procs[static_cast<std::size_t>(p)] != 0;
  }

  /// The migration-penalty gate (DESIGN.md F9), applied *after* the policy
  /// has picked its preferred destination: if that pick is a migration and
  /// the (feasible) home candidate exists, the migration only stands when
  /// its net gain — gain minus the penalty — strictly beats the home's
  /// gain; otherwise the block stays home. A post-selection gate rather
  /// than a pairwise comparator keeps the choice transitive and
  /// independent of processor iteration order, and leaves the policy full
  /// authority among migrations; the committed gain stays the full
  /// achievable one. Gain-disabled runs (max_gain_ == 0: the validation-
  /// failure retry, or a pure memory-spreading configuration) are exempt —
  /// there are no gains to price, and gating would silently forfeit the
  /// memory spreading those runs exist for.
  DestinationScore apply_migration_gate(const DestinationScore& best,
                                        const DestinationScore& home,
                                        bool home_feasible) const {
    if (opts_.migration_penalty <= 0 || max_gain_ == 0 || best.is_home ||
        !home_feasible) {
      return best;
    }
    return (best.gain - opts_.migration_penalty > home.gain) ? best : home;
  }

  /// An instance this pop's tentative move would relocate (its existing
  /// footprint must not block its own placement).
  bool is_affected(TaskInstance inst) const {
    return affected_epoch_[dense(inst)] == epoch_;
  }

  /// Occupancy filter for overlap checks: skip only affected instances
  /// that are still unprocessed. A processed sibling is a committed
  /// placement (it also pins the gain to zero), so its footprint must keep
  /// blocking candidates — under MovedOnly it is the only record of the
  /// committed prefix the old unfiltered scan consulted.
  bool ignore_in_occupancy(TaskInstance inst) const {
    return is_affected(inst) && !instance_processed_[dense(inst)];
  }

  /// Update the all-instances occupancy after a commit. Only instances
  /// whose placement actually changed are touched: a zero-gain stay-at-home
  /// (the common case at scale) costs nothing.
  void update_all_occ(ProcId dest, ProcId home, Time gain) {
    if (opts_.overlap_rule != OverlapRule::AllInstances) return;
    if (gain <= 0 && dest == home) return;  // nothing moved
    // gain > 0: every affected instance shifted; gain == 0 with an
    // off-home destination: only the members changed processor. layout_ is
    // parallel to affected_ and still records the pre-commit processors
    // (members lived on the block's home).
    const std::size_t count = (gain > 0) ? affected_.size() : member_count_;
    for (std::size_t i = 0; i < count; ++i) {
      const ProcId before = (i < member_count_) ? home : layout_[i].proc;
      all_occ_[static_cast<std::size_t>(before)].remove(affected_[i]);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const TaskInstance inst = affected_[i];
      auto& occ = all_occ_[static_cast<std::size_t>(sched_.proc(inst))];
      const Time start = sched_.start(inst);
      const Time wcet = graph().task(inst.task).wcet;
      // Every committed placement should fit (evaluate() checked it), but
      // if one ever does not, drop the footprint rather than throw: the
      // schedule itself then carries the overlap, the end-of-run validation
      // rejects it, and the gain-disabled retry takes over gracefully.
      // The fits() probe doubles as add_unchecked's safety proof.
      if (occ.fits(start, wcet)) occ.add_unchecked(start, wcet, inst);
    }
  }

  /// Occupancy consulted by overlap checks, per the configured rule.
  const ProcTimeline& blocking_occ(ProcId p) const {
    return opts_.overlap_rule == OverlapRule::AllInstances
               ? all_occ_[static_cast<std::size_t>(p)]
               : occupancy_[static_cast<std::size_t>(p)];
  }
  ProcTimeline& occupancy(ProcId p) {
    return occupancy_[static_cast<std::size_t>(p)];
  }

  const BalanceOptions& opts_;
  ThreadPool* pool_;  // non-null => parallel candidate evaluation (F19)
  Time max_gain_;  // -1 = unlimited, otherwise a cap on per-block gains
  Schedule sched_;
  // Blocks depend only on the (shared) input schedule, so the
  // decomposition is built once per balance() and reused across attempts.
  const BlockDecomposition& dec_;
  Time h_;
  int procs_;
  std::vector<ProcTimeline> occupancy_;  // moved prefix only
  std::vector<ProcTimeline> all_occ_;    // every instance (AllInstances rule)
  std::vector<Mem> moved_mem_;
  std::vector<Time> last_moved_end_;
  std::vector<Time> first_moved_start_;
  std::vector<Mem> resident_mem_;
  std::vector<bool> processed_;
  std::vector<std::uint8_t> instance_processed_; // flat, by graph dense index
  // Epoch-stamped membership of the current pop's affected set: stamping is
  // O(|affected|) per pop with no clearing pass.
  std::vector<std::uint32_t> affected_epoch_;
  std::uint32_t epoch_ = 0;

  // ---- scratch prepared by prepare_block(), read-only in evaluate() ------
  // (capacities persist across pops, so steady-state pops do not allocate)
  std::vector<TaskInstance> affected_;  // members + shifting siblings
  std::vector<LayoutEntry> layout_;     // members prefix, then siblings
  std::size_t member_count_ = 0;
  std::vector<MemberReady> member_ready_;  // parallel to block.members
  std::vector<std::pair<ProcId, Time>> local_arrivals_;  // B terms, sliced
  Time pinned_cap_ = 0;  // gain cap from pinned later instances
  // Destination-invariant gain cap from member data-readiness: for every
  // member, base_start minus the smallest arrival any destination could
  // see (DESIGN.md F15). Combined with the per-destination O(1) terms this
  // yields the admissible upper bound gain_upper_bound() screens with.
  Time member_cap_ = 0;
  Time block_start_ = 0;
  std::vector<DestinationScore> bounds_;  // per-pop candidate bounds
  // Pre-sized result slots of the parallel pipeline, parallel to bounds_
  // (DESIGN.md F20): each worker writes exactly its own slot, the
  // reduction reads them on this thread in processor order.
  std::vector<DestinationScore> par_results_;
};

void Attempt::prepare_block(const Block& block) {
  affected_.clear();
  layout_.clear();
  member_ready_.clear();
  local_arrivals_.clear();
  pinned_cap_ = std::numeric_limits<Time>::max();
  member_cap_ = std::numeric_limits<Time>::max();
  block_start_ = block.start(sched_);
  ++epoch_;

  for (const TaskInstance& inst : block.members) {
    affected_.push_back(inst);
    affected_epoch_[dense(inst)] = epoch_;
    layout_.push_back(LayoutEntry{inst, kNoProc, sched_.start(inst),
                                  graph().task(inst.task).wcet});
  }
  member_count_ = layout_.size();
  if (block.category == 1) {
    for (const TaskId t : block.tasks) {
      const InstanceIdx n = graph().instance_count(t);
      for (InstanceIdx k = 1; k < n; ++k) {
        const TaskInstance inst{t, k};
        affected_.push_back(inst);
        affected_epoch_[dense(inst)] = epoch_;
        layout_.push_back(LayoutEntry{inst, sched_.proc(inst),
                                      sched_.start(inst),
                                      graph().task(inst.task).wcet});
      }
    }
  }

  // Member data-readiness, split into the dest-invariant remote part and
  // the per-producer-proc colocated corrections.
  for (const TaskInstance& inst : block.members) {
    MemberReady mr;
    mr.local_begin = static_cast<std::uint32_t>(local_arrivals_.size());
    for (const std::int32_t e : graph().deps_in(inst.task)) {
      const Dependence& dep =
          graph().dependences()[static_cast<std::size_t>(e)];
      // Producers whose task belongs to the block either move along
      // (members) or shift along (later instances of a member task); in
      // both cases the constraint is invariant under the move — DESIGN.md §6.
      if (block.contains_task(dep.producer)) continue;
      const Time comm = sched_.comm().transfer_time(dep.data_size);
      const ConsumedRange range = graph().consumed_range(e, inst.k);
      for (InstanceIdx i = 0; i < range.count; ++i) {
        const TaskInstance producer{dep.producer, range.first + i};
        const ProcId pp = sched_.proc(producer);
        const Time end = sched_.end(producer);
        const Time remote = end + comm;
        if (pp == mr.remote_top1_proc) {
          mr.remote_top1 = std::max(mr.remote_top1, remote);
        } else if (remote > mr.remote_top1) {
          mr.remote_top2 = mr.remote_top1;
          mr.remote_top1 = remote;
          mr.remote_top1_proc = pp;
        } else {
          mr.remote_top2 = std::max(mr.remote_top2, remote);
        }
        // Fold the colocated term to one per-proc max so member_ready
        // rescans at most min(#procs, #producers) pairs per destination.
        bool merged = false;
        for (std::size_t j = mr.local_begin; j < local_arrivals_.size();
             ++j) {
          if (local_arrivals_[j].first == pp) {
            local_arrivals_[j].second =
                std::max(local_arrivals_[j].second, end);
            merged = true;
            break;
          }
        }
        if (!merged) local_arrivals_.emplace_back(pp, end);
      }
    }
    mr.local_end = static_cast<std::uint32_t>(local_arrivals_.size());
    member_ready_.push_back(mr);

    // Best-case arrival over *all* destinations: hosting the top remote
    // producer converts its arrival into the colocated term, so the
    // smallest achievable readiness is min(max(remote_top2, colocated term
    // of the top producer's processor), remote_top1) — a lower bound on
    // member_ready(m, dest) for every dest, hence an admissible cap.
    if (block.category == 1) {
      Time local_at_top1 = 0;
      for (std::uint32_t j = mr.local_begin; j < mr.local_end; ++j) {
        if (local_arrivals_[j].first == mr.remote_top1_proc) {
          local_at_top1 = local_arrivals_[j].second;
          break;
        }
      }
      const Time min_ready =
          std::min(std::max(mr.remote_top2, local_at_top1), mr.remote_top1);
      member_cap_ = std::min(
          member_cap_, layout_[member_ready_.size() - 1].base_start - min_ready);
    }
  }

  // Gain cap from the pinned later instances of the block's tasks
  // (DESIGN.md F5): their strict-periodic starts shift along, so even the
  // best possible data arrival (co-location with the producer) must not
  // exceed the shifted start; an already-committed later instance pins the
  // gain to zero outright.
  if (block.category == 1) {
    for (const TaskId t : block.tasks) {
      const InstanceIdx n = graph().instance_count(t);
      for (InstanceIdx k = 1; k < n; ++k) {
        const TaskInstance later{t, k};
        if (instance_processed_[dense(later)]) {
          pinned_cap_ = 0;  // committed placements must not move retroactively
          continue;
        }
        const Time later_start = sched_.start(later);
        for (const std::int32_t e : graph().deps_in(t)) {
          const Dependence& dep =
              graph().dependences()[static_cast<std::size_t>(e)];
          if (block.contains_task(dep.producer)) continue;
          const ConsumedRange range = graph().consumed_range(e, later.k);
          for (InstanceIdx i = 0; i < range.count; ++i) {
            const Time best_arrival =
                sched_.end(TaskInstance{dep.producer, range.first + i});
            pinned_cap_ = std::min(pinned_cap_, later_start - best_arrival);
          }
        }
      }
    }
  }
}

Time Attempt::member_ready(std::size_t member_idx, ProcId dest) const {
  const MemberReady& mr = member_ready_[member_idx];
  Time ready =
      (dest == mr.remote_top1_proc) ? mr.remote_top2 : mr.remote_top1;
  for (std::uint32_t i = mr.local_begin; i < mr.local_end; ++i) {
    if (local_arrivals_[i].first == dest) {
      ready = std::max(ready, local_arrivals_[i].second);
    }
  }
  return ready;
}

/// Admissible O(1) screen (DESIGN.md F15): the largest gain evaluate()
/// could possibly return for \p dest, or -1 when the destination is
/// certainly infeasible. Mirrors evaluate()'s clamp sequence with the
/// destination-dependent data term replaced by its invariant lower bound
/// (member_cap_); everything evaluate() does beyond this point — exact
/// data arrivals, conflict-driven reduction, the Block Condition — only
/// lowers the gain or rejects, never raises it.
Time Attempt::gain_upper_bound(const Block& block, ProcId dest) const {
  const Time avail = last_moved_end_[static_cast<std::size_t>(dest)];
  if (avail > block_start_) return -1;  // ineligible, exactly as evaluate()
  if (opts_.enforce_memory_capacity &&
      sched_.architecture().has_memory_limit() && dest != block.home &&
      resident_mem_[static_cast<std::size_t>(dest)] + block.mem_sum >
          sched_.architecture().memory_capacity()) {
    return -1;  // capacity screen, exactly as evaluate()
  }
  if (block.category != 1) return 0;  // pinned blocks never gain
  Time gain = std::min(block_start_ - avail, member_cap_);
  if (gain < 0) return -1;  // no destination can receive the data in time
  gain = std::min(gain, pinned_cap_);
  gain = std::max<Time>(gain, 0);
  if (max_gain_ >= 0) gain = std::min(gain, max_gain_);
  return gain;
}

/// The best score \p dest could possibly achieve: exact O(1) fields
/// (moved memory, home flag, processor) plus the gain upper bound. A
/// feasible==false bound marks a destination the screen already rejects.
DestinationScore Attempt::make_bound(const Block& block, ProcId dest) const {
  DestinationScore bound;
  bound.proc = dest;
  bound.is_home = (dest == block.home);
  bound.moved_mem = moved_mem_[static_cast<std::size_t>(dest)];
  const Time ub = gain_upper_bound(block, dest);
  if (ub < 0) return bound;
  bound.feasible = true;
  bound.gain = ub;
  bound.lambda = upper_bound_lambda(opts_.policy, ub, bound.moved_mem);
  return bound;
}

DestinationScore Attempt::evaluate(const Block& block, ProcId dest,
                                   const DestinationScore* incumbent) const {
  DestinationScore score;
  score.proc = dest;
  score.is_home = (dest == block.home);
  score.moved_mem = moved_mem_[static_cast<std::size_t>(dest)];

  const Time block_start = block_start_;

  // Eligibility (paper Section 3.2): the processor's moved prefix must end
  // no later than the block starts.
  const Time avail = last_moved_end_[static_cast<std::size_t>(dest)];
  if (avail > block_start) {
    score.reject_reason = "not eligible (moved prefix ends after block start)";
    return score;
  }

  // Memory capacity (optional extension).
  if (opts_.enforce_memory_capacity &&
      sched_.architecture().has_memory_limit() && dest != block.home &&
      resident_mem_[static_cast<std::size_t>(dest)] + block.mem_sum >
          sched_.architecture().memory_capacity()) {
    score.reject_reason = "memory capacity exceeded";
    return score;
  }

  // A member landing on a processor that also hosts a shifting sibling
  // collides independently of the gain (both move by the same amount, so
  // their relative offset is fixed).
  if (block.category == 1 && dest != block.home) {
    for (std::size_t s = member_count_; s < layout_.size(); ++s) {
      const LayoutEntry& sibling = layout_[s];
      if (sibling.proc != dest) continue;
      for (std::size_t m = 0; m < member_count_; ++m) {
        const LayoutEntry& member = layout_[m];
        if (circular_overlap(member.base_start, member.wcet,
                             sibling.base_start, sibling.wcet, h_)) {
          score.reject_reason = "member collides with shifting sibling";
          return score;
        }
      }
    }
  }

  Time gain = 0;
  if (block.category == 1) {
    // Largest shift allowed by processor availability…
    gain = block_start - avail;
    // …by every member's external data (paper Eq. 1 semantics)…
    for (std::size_t m = 0; m < member_count_; ++m) {
      gain = std::min(gain, layout_[m].base_start - member_ready(m, dest));
    }
    if (gain < 0) {
      score.reject_reason = "data arrives after the required start";
      return score;
    }
    // …and by the pinned later instances of the block's tasks.
    gain = std::min(gain, pinned_cap_);
    gain = std::max<Time>(gain, 0);
    if (max_gain_ >= 0) gain = std::min(gain, max_gain_);

    // Incumbent cutoff (DESIGN.md F15): the conflict-reduction scan below
    // only ever lowers the gain, and with the moved memory and tie-break
    // fields fixed every policy's ordering is monotone in the gain — so
    // the moment the current gain cannot beat the incumbent, no outcome of
    // the scan can, and the evaluation may abort. Cut candidates report
    // infeasible; they could not have been selected either way.
    const auto cannot_beat = [&](Time g) {
      if (incumbent == nullptr) return false;
      DestinationScore hypo;
      hypo.feasible = true;
      hypo.proc = dest;
      hypo.is_home = score.is_home;
      hypo.moved_mem = score.moved_mem;
      hypo.gain = g;
      hypo.lambda = lambda_value(opts_.policy, g, score.moved_mem);
      return !better_candidate(opts_.policy, hypo, *incumbent);
    };
    if (cannot_beat(gain)) {
      score.cut_by_incumbent = true;
      score.reject_reason = "cut off: cannot beat the incumbent";
      return score;
    }

    // Conflict-driven reduction against the moved prefix: every affected
    // instance must avoid the committed occupation on its target processor.
    // Reducing the gain slides positions later; each step clears the
    // current conflict at the end of the conflicting piece. The scan
    // resumes from the conflicting entry (re-checking it at the reduced
    // gain) and terminates once a full circular pass stays conflict-free —
    // committed pieces never move, so any gain skipped over is infeasible
    // for the instance that conflicted, making the result order-independent.
    const std::size_t total = layout_.size();
    std::size_t idx = 0;
    std::size_t cleared = 0;
    std::size_t guard = 0;
    while (cleared < total) {
      const LayoutEntry& le = layout_[idx];
      // Shifting siblings only move while the gain is positive; at zero
      // gain they stay put and impose no constraint.
      const bool active = idx < member_count_ || gain > 0;
      if (active) {
        const ProcId where = idx < member_count_ ? dest : le.proc;
        const Time tentative = le.base_start - gain;
        if (const auto conflict = blocking_occ(where).conflicting_owner_if(
                tentative, le.wcet, [this](TaskInstance owner) {
                  return ignore_in_occupancy(owner);
                })) {
          if (++guard > 10000) {
            score.reject_reason = "no conflict-free gain";
            return score;
          }
          const Time conflict_end =
              sched_.end(*conflict);  // committed positions never move later
          Time delta = mod_floor(conflict_end - tentative, h_);
          if (delta == 0) delta = h_;
          gain -= delta;
          if (gain < 0) {
            score.reject_reason = "overlap with moved blocks";
            return score;
          }
          if (cannot_beat(gain)) {
            score.cut_by_incumbent = true;
            score.reject_reason = "cut off: cannot beat the incumbent";
            return score;
          }
          cleared = 0;
          continue;  // re-check this entry at the reduced gain
        }
      }
      ++cleared;
      idx = (idx + 1 == total) ? 0 : idx + 1;
    }
  } else {
    // Category 2: pinned by strict periodicity; the move must work at the
    // current start times.
    for (std::size_t m = 0; m < member_count_; ++m) {
      if (member_ready(m, dest) > layout_[m].base_start) {
        score.reject_reason = "data arrives after the pinned start";
        return score;
      }
    }
    for (std::size_t m = 0; m < member_count_; ++m) {
      if (blocking_occ(dest)
              .conflicting_owner_if(layout_[m].base_start, layout_[m].wcet,
                                    [this](TaskInstance owner) {
                                      return ignore_in_occupancy(owner);
                                    })
              .has_value()) {
        score.reject_reason = "overlap with moved blocks";
        return score;
      }
    }
  }

  // Block Condition (paper Eq. 4): the block must not overrun the
  // hyper-period window anchored at the first block moved to dest.
  if (opts_.enforce_block_condition) {
    const Time anchor = first_moved_start_[static_cast<std::size_t>(dest)];
    if (anchor >= 0 && (block_start - gain) + block.exec_sum > anchor + h_) {
      score.reject_reason = "Block Condition (LCM) violated";
      return score;
    }
  }

  score.feasible = true;
  score.gain = gain;
  score.lambda = lambda_value(opts_.policy, gain, score.moved_mem);
  return score;
}

void Attempt::commit(const Block& block, ProcId dest, Time gain, bool forced,
                     BalanceStats& stats) {
  // Apply the gain first: shifting the first starts of the block's tasks
  // also shifts their later instances (strict periodicity) — the paper's
  // "update the start times of the blocks containing tasks whose instances
  // are in A".
  if (gain > 0) {
    for (const TaskId t : block.tasks) {
      sched_.set_first_start(t, sched_.first_start(t) - gain);
    }
    ++stats.gains_applied;
  }

  for (const TaskInstance& inst : block.members) {
    sched_.assign(inst, dest);
    // The moved-prefix occupancy is only ever read under MovedOnly
    // (blocking_occ); under AllInstances every committed footprint already
    // lands in all_occ_ via update_all_occ, so maintaining a second,
    // write-only timeline per processor would be pure overhead.
    if (opts_.overlap_rule == OverlapRule::MovedOnly) {
      const Time wcet = graph().task(inst.task).wcet;
      const Time start = sched_.start(inst);
      if (occupancy(dest).fits(start, wcet)) {
        occupancy(dest).add_unchecked(start, wcet, inst);
      } else {
        // Only reachable on a forced stay; the final validation reports it.
        LBMEM_REQUIRE(forced, "unexpected occupancy conflict on commit");
      }
    }
    instance_processed_[dense(inst)] = 1;
  }

  if (dest != block.home) {
    resident_mem_[static_cast<std::size_t>(block.home)] -= block.mem_sum;
    resident_mem_[static_cast<std::size_t>(dest)] += block.mem_sum;
    ++stats.moves_off_home;
  }
  moved_mem_[static_cast<std::size_t>(dest)] += block.mem_sum;
  last_moved_end_[static_cast<std::size_t>(dest)] = std::max(
      last_moved_end_[static_cast<std::size_t>(dest)], block.end(sched_));
  if (first_moved_start_[static_cast<std::size_t>(dest)] < 0) {
    first_moved_start_[static_cast<std::size_t>(dest)] = block.start(sched_);
  }
  processed_[static_cast<std::size_t>(block.id)] = true;
}

bool Attempt::run(std::vector<StepRecord>* trace, BalanceStats& stats) {
  stats.blocks_total = static_cast<int>(dec_.blocks.size());
  stats.blocks_category1 = static_cast<int>(
      std::count_if(dec_.blocks.begin(), dec_.blocks.end(),
                    [](const Block& b) { return b.category == 1; }));

  if (max_gain_ == 0) {
    // Gains disabled: no commit ever shifts a start, so the pop order is
    // fully known up front — one sort replaces the priority queue, its
    // re-queues and its stale-entry filtering. The order is identical to
    // the queue's pop order (ascending start, then block id).
    std::vector<QueueEntry> order;
    order.reserve(dec_.blocks.size());
    for (const Block& b : dec_.blocks) {
      order.push_back(QueueEntry{b.start(sched_), b.id});
    }
    std::sort(order.begin(), order.end(),
              [](const QueueEntry& a, const QueueEntry& b) { return b > a; });
    for (const QueueEntry& entry : order) {
      decide_block(entry.block, trace, stats, nullptr);
    }
    return is_valid(sched_);
  }

  RequeueQueue queue;
  for (const Block& b : dec_.blocks) {
    queue.push(QueueEntry{b.start(sched_), b.id});
  }

  while (!queue.empty()) {
    const QueueEntry entry = queue.top();
    queue.pop();
    if (processed_[static_cast<std::size_t>(entry.block)]) continue;
    const Block& block = dec_.blocks[static_cast<std::size_t>(entry.block)];
    if (block.start(sched_) != entry.start) {
      continue;  // stale key; the shifted re-queue entry will handle it
    }
    decide_block(entry.block, trace, stats, &queue);
  }

  // Verdict-only validation: the retry gate needs no diagnostics, and the
  // failing first attempt would otherwise pay for a full violation report
  // it immediately discards.
  LBMEM_TRACE_SPAN("lb.validate");
  return is_valid(sched_);
}

/// Fold one run's BalanceStats into the registry (DESIGN.md F25): called
/// once at the end of run_attempts(), never from the hot loop. Every
/// metric is registered unconditionally so the emitted name set is the
/// same whatever the run did. The three prune counters and the wall-clock
/// histogram are Timing class — the prune split depends on the scan
/// schedule (see the BalanceStats comment), everything else is identical
/// for every thread count.
void fold_stats(obs::Registry& reg, const BalanceStats& stats) {
  using obs::MetricClass;
  reg.add(reg.counter("lb.balance_runs"), 1);
  reg.add(reg.counter("lb.fallbacks"), stats.fell_back ? 1 : 0);
  reg.add(reg.counter("lb.attempts_used"), stats.attempts_used);
  reg.add(reg.counter("lb.blocks_total"), stats.blocks_total);
  reg.add(reg.counter("lb.blocks_category1"), stats.blocks_category1);
  reg.add(reg.counter("lb.moves_off_home"), stats.moves_off_home);
  reg.add(reg.counter("lb.gains_applied"), stats.gains_applied);
  reg.add(reg.counter("lb.forced_stays"), stats.forced_stays);
  reg.add(reg.counter("lb.gain_total"), stats.gain_total);
  reg.record(reg.histogram("lb.gain_per_run"), stats.gain_total);
  reg.add(reg.counter("lb.dest_evaluated", MetricClass::Timing),
          stats.dest_evaluated);
  reg.add(reg.counter("lb.dest_skipped_by_bound", MetricClass::Timing),
          stats.dest_skipped_by_bound);
  reg.add(reg.counter("lb.dest_cut_by_incumbent", MetricClass::Timing),
          stats.dest_cut_by_incumbent);
  reg.record(reg.histogram("lb.balance_wall_us", MetricClass::Timing),
             static_cast<std::int64_t>(stats.wall_seconds * 1e6));
}

void Attempt::decide_block(BlockId id, std::vector<StepRecord>* trace,
                           BalanceStats& stats, RequeueQueue* requeue) {
  const Block& block = dec_.blocks[static_cast<std::size_t>(id)];
  LBMEM_REQUIRE(!closed(block.home),
                "blocks homed on a closed processor must be evacuated "
                "before balancing");

  // Freeze this block's layout, data-readiness split and gain cap for
  // the M evaluations below. Overlap checks ignore the affected set (its
  // footprints must not block their own relocation), so nothing is
  // detached from the occupancy here.
  obs::ScopedSpan decide_span("lb.decide_block");
  {
    LBMEM_TRACE_SPAN("lb.prepare_block");
    prepare_block(block);
  }

  StepRecord record;
  record.block = block.id;
  record.start_before = block_start_;
  if (trace) record.candidates.reserve(static_cast<std::size_t>(procs_));

  DestinationScore best;
  bool have_best = false;
  DestinationScore home_score;
  bool home_feasible = false;
  {
  LBMEM_TRACE_SPAN("lb.evaluate_candidates");
  if (trace != nullptr) {
    // Exhaustive evaluation in processor order: the trace is the full
    // decision record, one candidate entry per processor.
    for (ProcId p = 0; p < procs_; ++p) {
      if (closed(p)) {
        DestinationScore cand;
        cand.proc = p;
        cand.reject_reason = "processor closed";
        record.candidates.push_back(cand);
        continue;
      }
      const DestinationScore cand = evaluate(block, p, nullptr);
      ++stats.dest_evaluated;
      record.candidates.push_back(cand);
      if (cand.feasible && cand.is_home) {
        home_score = cand;
        home_feasible = true;
      }
      if (cand.feasible &&
          (!have_best || better_candidate(opts_.policy, cand, best))) {
        best = cand;
        have_best = true;
      }
    }
  } else {
    // Bound-and-prune selection (DESIGN.md F15). The selected maximum of
    // a strict total order does not depend on visit order, so candidates
    // are visited best-bound-first and the loop stops as soon as the
    // remaining bounds cannot beat the incumbent. The home destination
    // is always evaluated first: it seeds the incumbent with the
    // tie-break favorite and the migration gate needs its exact score.
    if (!closed(block.home)) {
      const DestinationScore cand = evaluate(block, block.home, nullptr);
      ++stats.dest_evaluated;
      if (cand.feasible) {
        home_score = cand;
        home_feasible = true;
        best = cand;
        have_best = true;
      }
    }
    if (pool_ != nullptr) {
      // Deterministic parallel pipeline (DESIGN.md F19). Every decision
      // the scan schedule could influence is taken against *fixed* state:
      // destinations are screened by their admissible bound and by a
      // bound-vs-home test (never against each other), the survivors are
      // evaluated concurrently — each against the same home incumbent, on
      // scratch that is read-only for the duration (F20), into its own
      // pre-sized slot — and the winner is reduced on this thread in
      // processor order under the strict total order better_candidate.
      // A candidate the home incumbent cuts cannot be the overall winner
      // (the winner must beat the feasible home), so the selected
      // destination and gain are bit-identical to the sequential scan;
      // only the pruning counters differ (the sequential scan's improving
      // incumbent prunes harder), and they are identical for every thread
      // count >= 2 because nothing here depends on execution order.
      bounds_.clear();
      for (ProcId p = 0; p < procs_; ++p) {
        if (p == block.home || closed(p)) continue;
        DestinationScore bound = make_bound(block, p);
        if (!bound.feasible ||
            (have_best && !better_candidate(opts_.policy, bound, best))) {
          ++stats.dest_skipped_by_bound;
          continue;
        }
        bounds_.push_back(bound);
      }
      par_results_.assign(bounds_.size(), DestinationScore{});
      const DestinationScore* incumbent = home_feasible ? &home_score : nullptr;
      pool_->parallel_for(bounds_.size(), [&](std::size_t i) {
        par_results_[i] = evaluate(block, bounds_[i].proc, incumbent);
      });
      for (const DestinationScore& cand : par_results_) {
        ++stats.dest_evaluated;
        if (cand.cut_by_incumbent) ++stats.dest_cut_by_incumbent;
        if (cand.feasible &&
            (!have_best || better_candidate(opts_.policy, cand, best))) {
          best = cand;
          have_best = true;
        }
      }
    } else {
      // Screen every destination with the admissible O(1) bound; keep
      // only bounds that survive. The screen itself is exact (an
      // infeasible bound proves the destination infeasible), so
      // screened-out destinations count as skipped without being
      // evaluated.
      bounds_.clear();
      std::size_t strongest = 0;
      for (ProcId p = 0; p < procs_; ++p) {
        if (p == block.home || closed(p)) continue;
        DestinationScore bound = make_bound(block, p);
        if (!bound.feasible) {
          ++stats.dest_skipped_by_bound;
          continue;
        }
        if (!bounds_.empty() &&
            better_candidate(opts_.policy, bound, bounds_[strongest])) {
          strongest = bounds_.size();
        }
        bounds_.push_back(bound);
      }
      // Visit the strongest bound first: it is the likeliest winner, and
      // evaluating it early gives the incumbent maximum pruning power
      // over the single pass below. The selected maximum of the strict
      // total order does not depend on visit order, so the remaining
      // candidates can then be taken in processor order, each behind an
      // exact bound-vs-incumbent test (a skipped candidate's exact score
      // is dominated by its bound, which already failed to beat the
      // incumbent).
      for (std::size_t n = 0; n < bounds_.size(); ++n) {
        const std::size_t i = (n == 0) ? strongest
                              : (n <= strongest ? n - 1 : n);
        const DestinationScore& bound = bounds_[i];
        if (have_best && !better_candidate(opts_.policy, bound, best)) {
          ++stats.dest_skipped_by_bound;
          continue;
        }
        const DestinationScore cand =
            evaluate(block, bound.proc, have_best ? &best : nullptr);
        ++stats.dest_evaluated;
        if (cand.cut_by_incumbent) ++stats.dest_cut_by_incumbent;
        if (cand.feasible &&
            (!have_best || better_candidate(opts_.policy, cand, best))) {
          best = cand;
          have_best = true;
        }
      }
    }
  }
  }
  if (have_best) {
    best = apply_migration_gate(best, home_score, home_feasible);
  }

  obs::ScopedSpan commit_span("lb.commit");
  if (have_best) {
    record.chosen = best.proc;
    record.applied_gain = best.gain;
    commit(block, best.proc, best.gain, /*forced=*/false, stats);
    update_all_occ(best.proc, block.home, best.gain);
    if (best.gain > 0) {
      // Re-queue the blocks whose pinned instances shifted along. A
      // positive gain is impossible on the queue-free max_gain_ == 0
      // path, so the requeue sink is always present here.
      LBMEM_REQUIRE(requeue != nullptr,
                    "positive gain committed without a re-queue sink");
      for (const TaskId t : block.tasks) {
        const InstanceIdx n = graph().instance_count(t);
        for (InstanceIdx k = 1; k < n; ++k) {
          const BlockId other = dec_.block_of[static_cast<std::size_t>(t)]
                                             [static_cast<std::size_t>(k)];
          // Partial decompositions leave undiscovered instances at -1;
          // their blocks are out of scope and never popped, so there is
          // nothing to re-queue (the shifted footprints are already
          // maintained by update_all_occ).
          if (other < 0) continue;
          if (!processed_[static_cast<std::size_t>(other)]) {
            const Block& ob = dec_.blocks[static_cast<std::size_t>(other)];
            requeue->push(QueueEntry{ob.start(sched_), other});
          }
        }
      }
    }
  } else {
    record.forced_stay = true;
    record.chosen = block.home;
    ++stats.forced_stays;
    commit(block, block.home, 0, /*forced=*/true, stats);
    // Forced stay: nothing moved, the occupancy already matches.
  }
  if (trace) trace->push_back(std::move(record));
}

}  // namespace

BalanceResult LoadBalancer::balance(const Schedule& input) const {
  LBMEM_REQUIRE(input.complete(), "balance requires a complete schedule");
  const BlockDecomposition dec = [&] {
    LBMEM_TRACE_SPAN("lb.build_blocks");
    return build_blocks(input);
  }();
  return run_attempts(input, dec, /*warm_occupancy=*/nullptr,
                      /*return_occupancy=*/false);
}

BalanceResult LoadBalancer::rebalance(const Schedule& input,
                                      const RebalanceScope& scope) const {
  LBMEM_REQUIRE(input.complete(), "rebalance requires a complete schedule");
  LBMEM_REQUIRE(scope.blocks != nullptr,
                "rebalance requires a block decomposition");
  // Under MovedOnly, instances outside the scope would be invisible to
  // overlap checks — the opposite of the RebalanceScope contract (unscoped
  // instances constrain every placement). Scoped rebalancing is therefore
  // defined for the AllInstances rule only.
  LBMEM_REQUIRE(options_.overlap_rule == OverlapRule::AllInstances,
                "rebalance requires OverlapRule::AllInstances");
  return run_attempts(input, *scope.blocks, scope.occupancy,
                      scope.return_occupancy);
}

BalanceResult LoadBalancer::run_attempts(
    const Schedule& input, const BlockDecomposition& dec,
    const std::vector<ProcTimeline>* warm_occupancy,
    bool return_occupancy) const {
  obs::ScopedSpan balance_span("lb.balance");
  Stopwatch watch;

  BalanceStats base;
  base.makespan_before = input.makespan();
  base.max_memory_before = input.max_memory();
  for (ProcId p = 0; p < input.architecture().processor_count(); ++p) {
    base.memory_before.push_back(input.memory_on(p));
  }

  // Build the all-instances occupancy once per balance() and hand it to
  // every attempt as warm state: the Attempt constructor then copies the
  // built structures instead of re-inserting every instance per attempt.
  std::vector<ProcTimeline> pristine;
  if (warm_occupancy == nullptr &&
      options_.overlap_rule == OverlapRule::AllInstances) {
    pristine.assign(
        static_cast<std::size_t>(input.architecture().processor_count()),
        ProcTimeline(input.graph().hyperperiod()));
    for (const TaskInstance inst : input.all_instances()) {
      pristine[static_cast<std::size_t>(input.proc(inst))].add_unchecked(
          input.start(inst), input.graph().task(inst.task).wcet, inst);
    }
    warm_occupancy = &pristine;
  }

  // One pool for every attempt (spawning threads per attempt would waste
  // the warm workers). Trace-recording runs evaluate exhaustively on the
  // calling thread and never consult the pool, so none is built for them.
  std::unique_ptr<ThreadPool> pool;
  if (!options_.record_trace && ThreadPool::resolve(options_.threads) > 1) {
    pool = std::make_unique<ThreadPool>(options_.threads);
  }

  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    // The first attempt honours options_.max_gain; later attempts disable
    // gains entirely (pure memory spreading — every move is individually
    // checked, no optimistic shift propagation remains).
    const Time gain_override = (attempt == 1) ? options_.max_gain : 0;
    LBMEM_TRACE_SPAN("lb.attempt");
    Attempt run(input, options_, gain_override, dec, warm_occupancy,
                pool.get());
    BalanceStats stats = base;
    stats.attempts_used = attempt;
    std::vector<StepRecord> trace;
    const bool ok = run.run(options_.record_trace ? &trace : nullptr, stats);
    if (!ok) continue;

    Schedule& result = run.schedule();
    stats.makespan_after = result.makespan();
    stats.gain_total = stats.makespan_before - stats.makespan_after;
    stats.max_memory_after = result.max_memory();
    for (ProcId p = 0; p < result.architecture().processor_count(); ++p) {
      stats.memory_after.push_back(result.memory_on(p));
    }
    stats.wall_seconds = watch.seconds();
    if (options_.metrics != nullptr) fold_stats(*options_.metrics, stats);
    BalanceResult out{std::move(result), std::move(stats), std::move(trace),
                      {}};
    if (return_occupancy &&
        options_.overlap_rule == OverlapRule::AllInstances) {
      out.occupancy = std::move(run.all_occupancy());
    }
    return out;
  }

  // Fall back: the input schedule is valid and Gtotal = 0, so Theorem 1's
  // lower bound holds unconditionally.
  BalanceStats stats = base;
  stats.attempts_used = options_.max_attempts;
  stats.fell_back = true;
  stats.makespan_after = base.makespan_before;
  stats.gain_total = 0;
  stats.max_memory_after = base.max_memory_before;
  stats.memory_after = base.memory_before;
  stats.wall_seconds = watch.seconds();
  if (options_.metrics != nullptr) fold_stats(*options_.metrics, stats);
  return BalanceResult{input, std::move(stats), {}, {}};
}

}  // namespace lbmem
