#include "lbmem/lb/load_balancer.hpp"

#include <algorithm>
#include <queue>

#include "lbmem/model/hyperperiod.hpp"
#include "lbmem/sched/timeline.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"
#include "lbmem/util/stopwatch.hpp"
#include "lbmem/validate/validator.hpp"

namespace lbmem {

LoadBalancer::LoadBalancer(BalanceOptions options)
    : options_(std::move(options)) {
  LBMEM_REQUIRE(options_.max_attempts >= 1, "max_attempts must be >= 1");
}

namespace {

/// One balancing attempt over a working copy of the schedule.
///
/// Occupancy covers *moved* instances only: the paper's heuristic treats
/// already-moved blocks as a committed prefix, while not-yet-moved blocks
/// are invisible to overlap checks (their placement is fixed when their
/// turn comes — step 3 of the worked example moves a block onto P1 slots
/// that still "hold" the unmoved a3).
class Attempt {
 public:
  Attempt(const Schedule& input, const BalanceOptions& opts,
          Time max_gain_override)
      : opts_(opts),
        max_gain_(max_gain_override),
        sched_(input),
        dec_(build_blocks(input)),
        h_(input.graph().hyperperiod()),
        procs_(input.architecture().processor_count()),
        occupancy_(static_cast<std::size_t>(procs_), ProcTimeline(h_)),
        all_occ_(static_cast<std::size_t>(procs_), ProcTimeline(h_)),
        moved_mem_(static_cast<std::size_t>(procs_), Mem{0}),
        last_moved_end_(static_cast<std::size_t>(procs_), Time{0}),
        first_moved_start_(static_cast<std::size_t>(procs_), Time{-1}),
        resident_mem_(static_cast<std::size_t>(procs_), Mem{0}),
        processed_(dec_.blocks.size(), false) {
    for (ProcId p = 0; p < procs_; ++p) {
      resident_mem_[static_cast<std::size_t>(p)] = input.memory_on(p);
    }
    instance_processed_.resize(input.graph().task_count());
    for (TaskId t = 0; t < static_cast<TaskId>(input.graph().task_count());
         ++t) {
      instance_processed_[static_cast<std::size_t>(t)].assign(
          static_cast<std::size_t>(input.graph().instance_count(t)), false);
    }
    if (opts_.overlap_rule == OverlapRule::AllInstances) {
      for (const TaskInstance inst : input.all_instances()) {
        all_occ_[static_cast<std::size_t>(input.proc(inst))].add(
            input.start(inst), input.graph().task(inst.task).wcet, inst);
      }
    }
  }

  /// Run the heuristic; returns true when the final schedule validates.
  bool run(std::vector<StepRecord>* trace, BalanceStats& stats);

  Schedule& schedule() { return sched_; }

 private:
  struct QueueEntry {
    Time start;
    BlockId block;
    bool operator>(const QueueEntry& other) const {
      if (start != other.start) return start > other.start;
      return block > other.block;
    }
  };

  /// Target position of one instance affected by a tentative move: members
  /// land on the destination; for a positive category-1 gain the later
  /// instances of the block's tasks shift in place on their own processor.
  struct ShiftedInstance {
    TaskInstance inst;
    ProcId proc;
    Time new_start;
  };

  const TaskGraph& graph() const { return sched_.graph(); }

  std::vector<ShiftedInstance> shifted_layout(const Block& block, ProcId dest,
                                              Time gain) const;
  Time external_data_ready(const Block& block, TaskInstance inst,
                           ProcId dest) const;
  DestinationScore evaluate(const Block& block, ProcId dest) const;
  void commit(const Block& block, ProcId dest, Time gain, bool forced,
              BalanceStats& stats);

  /// Re-insert detached instances into the all-instances occupancy at
  /// their (post-commit) positions.
  void reattach(const std::vector<TaskInstance>& affected) {
    if (opts_.overlap_rule != OverlapRule::AllInstances) return;
    for (const TaskInstance& inst : affected) {
      auto& occ = all_occ_[static_cast<std::size_t>(sched_.proc(inst))];
      const Time start = sched_.start(inst);
      const Time wcet = graph().task(inst.task).wcet;
      // A forced stay can leave a genuine conflict; the final validation
      // reports it, so tolerate the missing footprint here.
      if (occ.fits(start, wcet)) occ.add(start, wcet, inst);
    }
  }

  /// Occupancy consulted by overlap checks, per the configured rule.
  const ProcTimeline& blocking_occ(ProcId p) const {
    return opts_.overlap_rule == OverlapRule::AllInstances
               ? all_occ_[static_cast<std::size_t>(p)]
               : occupancy_[static_cast<std::size_t>(p)];
  }
  ProcTimeline& occupancy(ProcId p) {
    return occupancy_[static_cast<std::size_t>(p)];
  }

  /// Instances whose positions this block's processing may change:
  /// the members, plus — for category-1 blocks — the later (pinned)
  /// instances of the block's tasks, which shift with any gain.
  std::vector<TaskInstance> affected_instances(const Block& block) const {
    std::vector<TaskInstance> out = block.members;
    if (block.category == 1) {
      for (const TaskId t : block.tasks) {
        const InstanceIdx n = graph().instance_count(t);
        for (InstanceIdx k = 1; k < n; ++k) {
          out.push_back(TaskInstance{t, k});
        }
      }
    }
    return out;
  }

  const BalanceOptions& opts_;
  Time max_gain_;  // -1 = unlimited, otherwise a cap on per-block gains
  Schedule sched_;
  BlockDecomposition dec_;
  Time h_;
  int procs_;
  std::vector<ProcTimeline> occupancy_;  // moved prefix only
  std::vector<ProcTimeline> all_occ_;    // every instance (AllInstances rule)
  std::vector<Mem> moved_mem_;
  std::vector<Time> last_moved_end_;
  std::vector<Time> first_moved_start_;
  std::vector<Mem> resident_mem_;
  std::vector<bool> processed_;
  std::vector<std::vector<bool>> instance_processed_;
};

std::vector<Attempt::ShiftedInstance> Attempt::shifted_layout(
    const Block& block, ProcId dest, Time gain) const {
  std::vector<ShiftedInstance> layout;
  for (const TaskInstance& inst : block.members) {
    layout.push_back(ShiftedInstance{inst, dest, sched_.start(inst) - gain});
  }
  if (block.category == 1 && gain > 0) {
    for (const TaskId t : block.tasks) {
      const InstanceIdx n = graph().instance_count(t);
      for (InstanceIdx k = 1; k < n; ++k) {
        const TaskInstance inst{t, k};
        layout.push_back(ShiftedInstance{inst, sched_.proc(inst),
                                         sched_.start(inst) - gain});
      }
    }
  }
  return layout;
}

Time Attempt::external_data_ready(const Block& block, TaskInstance inst,
                                  ProcId dest) const {
  Time ready = 0;
  for (const std::int32_t e : graph().deps_in(inst.task)) {
    const Dependence& dep = graph().dependences()[static_cast<std::size_t>(e)];
    // Producers whose task belongs to the block either move along (members)
    // or shift along (later instances of a member task); in both cases the
    // constraint is invariant under the move — see DESIGN.md §6.
    if (block.contains_task(dep.producer)) continue;
    const Time comm = sched_.comm().transfer_time(dep.data_size);
    for (const InstanceIdx pk : graph().consumed_instances(e, inst.k)) {
      const TaskInstance producer{dep.producer, pk};
      const Time arrival = sched_.end(producer) +
                           (sched_.proc(producer) == dest ? Time{0} : comm);
      ready = std::max(ready, arrival);
    }
  }
  return ready;
}

DestinationScore Attempt::evaluate(const Block& block, ProcId dest) const {
  DestinationScore score;
  score.proc = dest;
  score.is_home = (dest == block.home);
  score.moved_mem = moved_mem_[static_cast<std::size_t>(dest)];

  const Time block_start = block.start(sched_);

  // Eligibility (paper Section 3.2): the processor's moved prefix must end
  // no later than the block starts.
  const Time avail = last_moved_end_[static_cast<std::size_t>(dest)];
  if (avail > block_start) {
    score.reject_reason = "not eligible (moved prefix ends after block start)";
    return score;
  }

  // Memory capacity (optional extension).
  if (opts_.enforce_memory_capacity &&
      sched_.architecture().has_memory_limit() && dest != block.home &&
      resident_mem_[static_cast<std::size_t>(dest)] + block.mem_sum >
          sched_.architecture().memory_capacity()) {
    score.reject_reason = "memory capacity exceeded";
    return score;
  }

  // A member landing on a processor that also hosts a shifting sibling
  // collides independently of the gain (both move by the same amount, so
  // their relative offset is fixed).
  if (block.category == 1 && dest != block.home) {
    for (const TaskId t : block.tasks) {
      const InstanceIdx n = graph().instance_count(t);
      for (InstanceIdx k = 1; k < n; ++k) {
        const TaskInstance sibling{t, k};
        if (sched_.proc(sibling) != dest) continue;
        for (const TaskInstance& member : block.members) {
          if (circular_overlap(sched_.start(member),
                               graph().task(member.task).wcet,
                               sched_.start(sibling),
                               graph().task(sibling.task).wcet, h_)) {
            score.reject_reason = "member collides with shifting sibling";
            return score;
          }
        }
      }
    }
  }

  Time gain = 0;
  if (block.category == 1) {
    // Largest shift allowed by processor availability…
    gain = block_start - avail;
    // …by every member's external data (paper Eq. 1 semantics)…
    for (const TaskInstance& inst : block.members) {
      gain = std::min(gain,
                      sched_.start(inst) - external_data_ready(block, inst, dest));
    }
    if (gain < 0) {
      score.reject_reason = "data arrives after the required start";
      return score;
    }
    // …and by the pinned later instances of the block's tasks (DESIGN.md
    // F5): their strict-periodic starts shift along, so even the best
    // possible data arrival (co-location with the producer) must not
    // exceed the shifted start.
    for (const TaskId t : block.tasks) {
      const InstanceIdx n = graph().instance_count(t);
      for (InstanceIdx k = 1; k < n && gain > 0; ++k) {
        const TaskInstance later{t, k};
        if (instance_processed_[static_cast<std::size_t>(t)]
                               [static_cast<std::size_t>(k)]) {
          gain = 0;  // committed placements must not move retroactively
          break;
        }
        for (const std::int32_t e : graph().deps_in(t)) {
          const Dependence& dep =
              graph().dependences()[static_cast<std::size_t>(e)];
          if (block.contains_task(dep.producer)) continue;
          for (const InstanceIdx pk :
               graph().consumed_instances(e, later.k)) {
            const Time best_arrival =
                sched_.end(TaskInstance{dep.producer, pk});
            gain = std::min(gain, sched_.start(later) - best_arrival);
          }
        }
      }
    }
    gain = std::max<Time>(gain, 0);
    if (max_gain_ >= 0) gain = std::min(gain, max_gain_);

    // Conflict-driven reduction against the moved prefix: every affected
    // instance must avoid the committed occupation on its target processor.
    // Reducing the gain slides positions later; each step clears the
    // current conflict at the end of the conflicting piece.
    std::size_t guard = 0;
    for (bool reduced = true; reduced;) {
      if (++guard > 10000) {
        score.reject_reason = "no conflict-free gain";
        return score;
      }
      reduced = false;
      for (const ShiftedInstance& si : shifted_layout(block, dest, gain)) {
        const Time wcet = graph().task(si.inst.task).wcet;
        const auto conflict =
            blocking_occ(si.proc).conflicting_owner(si.new_start, wcet);
        if (!conflict) continue;
        const Time conflict_end =
            sched_.end(*conflict);  // committed positions never move later
        Time delta = mod_floor(conflict_end - si.new_start, h_);
        if (delta == 0) delta = h_;
        gain -= delta;
        if (gain < 0) {
          score.reject_reason = "overlap with moved blocks";
          return score;
        }
        reduced = true;
        break;
      }
    }
  } else {
    // Category 2: pinned by strict periodicity; the move must work at the
    // current start times.
    for (const TaskInstance& inst : block.members) {
      if (external_data_ready(block, inst, dest) > sched_.start(inst)) {
        score.reject_reason = "data arrives after the pinned start";
        return score;
      }
    }
    for (const TaskInstance& inst : block.members) {
      const Time wcet = graph().task(inst.task).wcet;
      if (!blocking_occ(dest).fits(sched_.start(inst), wcet)) {
        score.reject_reason = "overlap with moved blocks";
        return score;
      }
    }
  }

  // Block Condition (paper Eq. 4): the block must not overrun the
  // hyper-period window anchored at the first block moved to dest.
  if (opts_.enforce_block_condition) {
    const Time anchor = first_moved_start_[static_cast<std::size_t>(dest)];
    if (anchor >= 0 && (block_start - gain) + block.exec_sum > anchor + h_) {
      score.reject_reason = "Block Condition (LCM) violated";
      return score;
    }
  }

  score.feasible = true;
  score.gain = gain;
  score.lambda = lambda_value(opts_.policy, gain, score.moved_mem);
  return score;
}

void Attempt::commit(const Block& block, ProcId dest, Time gain, bool forced,
                     BalanceStats& stats) {
  // Apply the gain first: shifting the first starts of the block's tasks
  // also shifts their later instances (strict periodicity) — the paper's
  // "update the start times of the blocks containing tasks whose instances
  // are in A".
  if (gain > 0) {
    for (const TaskId t : block.tasks) {
      sched_.set_first_start(t, sched_.first_start(t) - gain);
    }
    ++stats.gains_applied;
  }

  for (const TaskInstance& inst : block.members) {
    sched_.assign(inst, dest);
    const Time wcet = graph().task(inst.task).wcet;
    const Time start = sched_.start(inst);
    if (occupancy(dest).fits(start, wcet)) {
      occupancy(dest).add(start, wcet, inst);
    } else {
      // Only reachable on a forced stay; the final validation reports it.
      LBMEM_REQUIRE(forced, "unexpected occupancy conflict on commit");
    }
    instance_processed_[static_cast<std::size_t>(inst.task)]
                       [static_cast<std::size_t>(inst.k)] = true;
  }

  if (dest != block.home) {
    resident_mem_[static_cast<std::size_t>(block.home)] -= block.mem_sum;
    resident_mem_[static_cast<std::size_t>(dest)] += block.mem_sum;
    ++stats.moves_off_home;
  }
  moved_mem_[static_cast<std::size_t>(dest)] += block.mem_sum;
  last_moved_end_[static_cast<std::size_t>(dest)] = std::max(
      last_moved_end_[static_cast<std::size_t>(dest)], block.end(sched_));
  if (first_moved_start_[static_cast<std::size_t>(dest)] < 0) {
    first_moved_start_[static_cast<std::size_t>(dest)] = block.start(sched_);
  }
  processed_[static_cast<std::size_t>(block.id)] = true;
}

bool Attempt::run(std::vector<StepRecord>* trace, BalanceStats& stats) {
  stats.blocks_total = static_cast<int>(dec_.blocks.size());
  stats.blocks_category1 = static_cast<int>(
      std::count_if(dec_.blocks.begin(), dec_.blocks.end(),
                    [](const Block& b) { return b.category == 1; }));

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  for (const Block& b : dec_.blocks) {
    queue.push(QueueEntry{b.start(sched_), b.id});
  }

  while (!queue.empty()) {
    const QueueEntry entry = queue.top();
    queue.pop();
    if (processed_[static_cast<std::size_t>(entry.block)]) continue;
    const Block& block = dec_.blocks[static_cast<std::size_t>(entry.block)];
    if (block.start(sched_) != entry.start) {
      continue;  // stale key; the shifted re-queue entry will handle it
    }

    // Detach the instances this decision may relocate from the
    // all-instances occupancy, so they do not block their own placement;
    // commit() re-attaches them at their final positions.
    const std::vector<TaskInstance> affected = affected_instances(block);
    if (opts_.overlap_rule == OverlapRule::AllInstances) {
      for (const TaskInstance& inst : affected) {
        all_occ_[static_cast<std::size_t>(sched_.proc(inst))].remove(inst);
      }
    }

    StepRecord record;
    record.block = block.id;
    record.start_before = block.start(sched_);
    record.candidates.reserve(static_cast<std::size_t>(procs_));
    for (ProcId p = 0; p < procs_; ++p) {
      record.candidates.push_back(evaluate(block, p));
    }

    const DestinationScore* best = nullptr;
    for (const DestinationScore& cand : record.candidates) {
      if (!cand.feasible) continue;
      if (!best || better_candidate(opts_.policy, cand, *best)) {
        best = &cand;
      }
    }

    if (best) {
      record.chosen = best->proc;
      record.applied_gain = best->gain;
      commit(block, best->proc, best->gain, /*forced=*/false, stats);
      reattach(affected);
      if (best->gain > 0) {
        // Re-queue the blocks whose pinned instances shifted along.
        for (const TaskId t : block.tasks) {
          const InstanceIdx n = graph().instance_count(t);
          for (InstanceIdx k = 1; k < n; ++k) {
            const BlockId other = dec_.block_of[static_cast<std::size_t>(t)]
                                               [static_cast<std::size_t>(k)];
            if (!processed_[static_cast<std::size_t>(other)]) {
              const Block& ob = dec_.blocks[static_cast<std::size_t>(other)];
              queue.push(QueueEntry{ob.start(sched_), other});
            }
          }
        }
      }
    } else {
      record.forced_stay = true;
      record.chosen = block.home;
      ++stats.forced_stays;
      commit(block, block.home, 0, /*forced=*/true, stats);
      reattach(affected);
    }
    if (trace) trace->push_back(std::move(record));
  }

  return validate(sched_).ok();
}

}  // namespace

BalanceResult LoadBalancer::balance(const Schedule& input) const {
  LBMEM_REQUIRE(input.complete(), "balance requires a complete schedule");
  Stopwatch watch;

  BalanceStats base;
  base.makespan_before = input.makespan();
  base.max_memory_before = input.max_memory();
  for (ProcId p = 0; p < input.architecture().processor_count(); ++p) {
    base.memory_before.push_back(input.memory_on(p));
  }

  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    // The first attempt honours options_.max_gain; later attempts disable
    // gains entirely (pure memory spreading — every move is individually
    // checked, no optimistic shift propagation remains).
    const Time gain_override = (attempt == 1) ? options_.max_gain : 0;
    Attempt run(input, options_, gain_override);
    BalanceStats stats = base;
    stats.attempts_used = attempt;
    std::vector<StepRecord> trace;
    const bool ok = run.run(options_.record_trace ? &trace : nullptr, stats);
    if (!ok) continue;

    Schedule& result = run.schedule();
    stats.makespan_after = result.makespan();
    stats.gain_total = stats.makespan_before - stats.makespan_after;
    stats.max_memory_after = result.max_memory();
    for (ProcId p = 0; p < result.architecture().processor_count(); ++p) {
      stats.memory_after.push_back(result.memory_on(p));
    }
    stats.wall_seconds = watch.seconds();
    return BalanceResult{std::move(result), std::move(stats),
                         std::move(trace)};
  }

  // Fall back: the input schedule is valid and Gtotal = 0, so Theorem 1's
  // lower bound holds unconditionally.
  BalanceStats stats = base;
  stats.attempts_used = options_.max_attempts;
  stats.fell_back = true;
  stats.makespan_after = base.makespan_before;
  stats.gain_total = 0;
  stats.max_memory_after = base.max_memory_before;
  stats.memory_after = base.memory_before;
  stats.wall_seconds = watch.seconds();
  return BalanceResult{input, std::move(stats), {}};
}

}  // namespace lbmem
