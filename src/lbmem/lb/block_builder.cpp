#include "lbmem/lb/block_builder.hpp"

#include <algorithm>
#include <numeric>

#include "lbmem/util/check.hpp"

namespace lbmem {

const Block& BlockDecomposition::block_containing(TaskInstance inst) const {
  LBMEM_REQUIRE(inst.task >= 0 &&
                    inst.task < static_cast<TaskId>(block_of.size()),
                "task id out of range");
  const auto& per_task = block_of[static_cast<std::size_t>(inst.task)];
  LBMEM_REQUIRE(inst.k >= 0 && inst.k < static_cast<InstanceIdx>(per_task.size()),
                "instance index out of range");
  return blocks[static_cast<std::size_t>(
      per_task[static_cast<std::size_t>(inst.k)])];
}

namespace {

/// Plain union-find over dense instance indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    parent_[find(a)] = find(b);
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

BlockDecomposition build_blocks(const Schedule& sched) {
  LBMEM_REQUIRE(sched.complete(), "build_blocks requires a complete schedule");
  const TaskGraph& graph = sched.graph();

  // Dense index over all instances (the graph's CSR enumeration).
  const std::size_t total = graph.total_instances();
  const auto dense = [&](TaskInstance inst) { return graph.dense_index(inst); };

  UnionFind uf(total);

  // Unite tight same-processor dependences.
  for (std::int32_t e = 0;
       e < static_cast<std::int32_t>(graph.dependence_count()); ++e) {
    const Dependence& dep = graph.dependences()[static_cast<std::size_t>(e)];
    const Time comm = sched.comm().transfer_time(dep.data_size);
    const InstanceIdx nc = graph.instance_count(dep.consumer);
    for (InstanceIdx k = 0; k < nc; ++k) {
      const TaskInstance consumer{dep.consumer, k};
      const ConsumedRange range = graph.consumed_range(e, k);
      for (InstanceIdx i = 0; i < range.count; ++i) {
        const TaskInstance producer{dep.producer, range.first + i};
        if (sched.proc(producer) != sched.proc(consumer)) continue;
        const Time slack = sched.start(consumer) - sched.end(producer);
        if (slack < comm) {
          uf.unite(dense(producer), dense(consumer));
        }
      }
    }
  }

  // Collect classes into blocks.
  BlockDecomposition out;
  out.block_of.resize(graph.task_count());
  std::vector<BlockId> root_to_block(total, BlockId{-1});

  std::vector<TaskInstance> instances = sched.all_instances();
  std::sort(instances.begin(), instances.end(),
            [&](const TaskInstance& a, const TaskInstance& b) {
              const Time sa = sched.start(a);
              const Time sb = sched.start(b);
              if (sa != sb) return sa < sb;
              return a < b;
            });

  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    out.block_of[static_cast<std::size_t>(t)].assign(
        static_cast<std::size_t>(graph.instance_count(t)), BlockId{-1});
  }

  for (const TaskInstance inst : instances) {
    const std::size_t root = uf.find(dense(inst));
    BlockId bid = root_to_block[root];
    if (bid < 0) {
      bid = static_cast<BlockId>(out.blocks.size());
      root_to_block[root] = bid;
      Block block;
      block.id = bid;
      block.home = sched.proc(inst);
      out.blocks.push_back(std::move(block));
    }
    Block& block = out.blocks[static_cast<std::size_t>(bid)];
    LBMEM_REQUIRE(block.home == sched.proc(inst),
                  "block members must share a processor");
    block.members.push_back(inst);
    block.exec_sum += graph.task(inst.task).wcet;
    block.mem_sum += graph.task(inst.task).memory;
    out.block_of[static_cast<std::size_t>(inst.task)]
                [static_cast<std::size_t>(inst.k)] = bid;
  }

  for (Block& block : out.blocks) {
    // Members were appended in global start order, so they are sorted.
    block.tasks.clear();
    bool all_first = true;
    for (const TaskInstance& inst : block.members) {
      if (inst.k != 0) all_first = false;
      block.tasks.push_back(inst.task);
    }
    std::sort(block.tasks.begin(), block.tasks.end());
    block.tasks.erase(std::unique(block.tasks.begin(), block.tasks.end()),
                      block.tasks.end());
    block.category = all_first ? 1 : 2;
  }
  return out;
}

}  // namespace lbmem
