#include "lbmem/lb/block_builder.hpp"

#include <algorithm>
#include <numeric>

#include "lbmem/util/check.hpp"

namespace lbmem {

const Block& BlockDecomposition::block_containing(TaskInstance inst) const {
  LBMEM_REQUIRE(inst.task >= 0 &&
                    inst.task < static_cast<TaskId>(block_of.size()),
                "task id out of range");
  const auto& per_task = block_of[static_cast<std::size_t>(inst.task)];
  LBMEM_REQUIRE(inst.k >= 0 && inst.k < static_cast<InstanceIdx>(per_task.size()),
                "instance index out of range");
  return blocks[static_cast<std::size_t>(
      per_task[static_cast<std::size_t>(inst.k)])];
}

namespace {

/// Plain union-find over dense instance indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    parent_[find(a)] = find(b);
  }

 private:
  std::vector<std::size_t> parent_;
};

/// Shared materialization tail of build_blocks and build_blocks_around:
/// turn instance equivalence classes into Block records, numbered in
/// global start order, with block_of filled for the given instances and
/// -1 elsewhere. \p class_of maps an instance to its class id in
/// [0, class_count); one Block is emitted per class that occurs.
template <typename ClassOf>
BlockDecomposition materialize_blocks(const Schedule& sched,
                                      std::vector<TaskInstance> instances,
                                      std::size_t class_count,
                                      ClassOf&& class_of) {
  const TaskGraph& graph = sched.graph();
  std::sort(instances.begin(), instances.end(),
            [&](const TaskInstance& a, const TaskInstance& b) {
              const Time sa = sched.start(a);
              const Time sb = sched.start(b);
              if (sa != sb) return sa < sb;
              return a < b;
            });

  BlockDecomposition out;
  out.block_of.resize(graph.task_count());
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    out.block_of[static_cast<std::size_t>(t)].assign(
        static_cast<std::size_t>(graph.instance_count(t)), BlockId{-1});
  }
  std::vector<BlockId> class_to_block(class_count, BlockId{-1});

  for (const TaskInstance inst : instances) {
    const std::size_t cls = class_of(inst);
    BlockId bid = class_to_block[cls];
    if (bid < 0) {
      bid = static_cast<BlockId>(out.blocks.size());
      class_to_block[cls] = bid;
      Block block;
      block.id = bid;
      block.home = sched.proc(inst);
      out.blocks.push_back(std::move(block));
    }
    Block& block = out.blocks[static_cast<std::size_t>(bid)];
    LBMEM_REQUIRE(block.home == sched.proc(inst),
                  "block members must share a processor");
    block.members.push_back(inst);
    block.exec_sum += graph.task(inst.task).wcet;
    block.mem_sum += graph.task(inst.task).memory;
    out.block_of[static_cast<std::size_t>(inst.task)]
                [static_cast<std::size_t>(inst.k)] = bid;
  }

  for (Block& block : out.blocks) {
    // Members were appended in global start order, so they are sorted.
    block.tasks.clear();
    bool all_first = true;
    for (const TaskInstance& inst : block.members) {
      if (inst.k != 0) all_first = false;
      block.tasks.push_back(inst.task);
    }
    std::sort(block.tasks.begin(), block.tasks.end());
    block.tasks.erase(std::unique(block.tasks.begin(), block.tasks.end()),
                      block.tasks.end());
    block.category = all_first ? 1 : 2;
  }
  return out;
}

}  // namespace

BlockDecomposition build_blocks(const Schedule& sched) {
  LBMEM_REQUIRE(sched.complete(), "build_blocks requires a complete schedule");
  const TaskGraph& graph = sched.graph();

  // Dense index over all instances (the graph's CSR enumeration).
  const std::size_t total = graph.total_instances();
  const auto dense = [&](TaskInstance inst) { return graph.dense_index(inst); };

  UnionFind uf(total);

  // Unite tight same-processor dependences.
  for (std::int32_t e = 0;
       e < static_cast<std::int32_t>(graph.dependence_count()); ++e) {
    const Dependence& dep = graph.dependences()[static_cast<std::size_t>(e)];
    const Time comm = sched.comm().transfer_time(dep.data_size);
    const InstanceIdx nc = graph.instance_count(dep.consumer);
    for (InstanceIdx k = 0; k < nc; ++k) {
      const TaskInstance consumer{dep.consumer, k};
      const ConsumedRange range = graph.consumed_range(e, k);
      for (InstanceIdx i = 0; i < range.count; ++i) {
        const TaskInstance producer{dep.producer, range.first + i};
        if (sched.proc(producer) != sched.proc(consumer)) continue;
        const Time slack = sched.start(consumer) - sched.end(producer);
        if (slack < comm) {
          uf.unite(dense(producer), dense(consumer));
        }
      }
    }
  }

  // Classes are union-find roots over the dense index space.
  return materialize_blocks(
      sched, sched.all_instances(), total,
      [&](TaskInstance inst) { return uf.find(dense(inst)); });
}

BlockDecomposition build_blocks_around(const Schedule& sched,
                                       std::span<const TaskId> seed_tasks) {
  LBMEM_REQUIRE(sched.complete(),
                "build_blocks_around requires a complete schedule");
  const TaskGraph& graph = sched.graph();
  const std::size_t total = graph.total_instances();
  const auto dense = [&](TaskInstance inst) { return graph.dense_index(inst); };

  // Two instances are neighbors when separating them would create a
  // communication the current timing cannot absorb — the exact merge rule
  // of build_blocks, applied as an adjacency instead of a global sweep.
  const auto tight = [&](TaskInstance producer, TaskInstance consumer,
                         Mem data_size) {
    if (sched.proc(producer) != sched.proc(consumer)) return false;
    const Time slack = sched.start(consumer) - sched.end(producer);
    return slack < sched.comm().transfer_time(data_size);
  };

  // Flood-fill components from every instance of every seed task.
  std::vector<std::int32_t> component(total, -1);
  std::vector<TaskInstance> frontier;
  std::vector<TaskInstance> visited;
  std::int32_t components = 0;
  for (const TaskId seed : seed_tasks) {
    LBMEM_REQUIRE(seed >= 0 && seed < static_cast<TaskId>(graph.task_count()),
                  "seed task id out of range");
    const InstanceIdx n = graph.instance_count(seed);
    for (InstanceIdx k = 0; k < n; ++k) {
      const TaskInstance root{seed, k};
      if (component[dense(root)] >= 0) continue;
      const std::int32_t id = components++;
      component[dense(root)] = id;
      frontier.assign(1, root);
      while (!frontier.empty()) {
        const TaskInstance inst = frontier.back();
        frontier.pop_back();
        visited.push_back(inst);
        const auto visit = [&](TaskInstance next) {
          std::int32_t& slot = component[dense(next)];
          if (slot >= 0) return;  // same component by construction (BFS)
          slot = id;
          frontier.push_back(next);
        };
        for (const std::int32_t e : graph.deps_in(inst.task)) {
          const Dependence& dep =
              graph.dependences()[static_cast<std::size_t>(e)];
          const ConsumedRange range = graph.consumed_range(e, inst.k);
          for (InstanceIdx i = 0; i < range.count; ++i) {
            const TaskInstance producer{dep.producer, range.first + i};
            if (tight(producer, inst, dep.data_size)) visit(producer);
          }
        }
        for (const std::int32_t e : graph.deps_out(inst.task)) {
          const Dependence& dep =
              graph.dependences()[static_cast<std::size_t>(e)];
          const ConsumedRange range = graph.consumer_range(e, inst.k);
          for (InstanceIdx i = 0; i < range.count; ++i) {
            const TaskInstance consumer{dep.consumer, range.first + i};
            if (tight(inst, consumer, dep.data_size)) visit(consumer);
          }
        }
      }
    }
  }

  // Materialize the discovered components in global start order through
  // the exact same tail build_blocks uses.
  return materialize_blocks(
      sched, std::move(visited), static_cast<std::size_t>(components),
      [&](TaskInstance inst) {
        return static_cast<std::size_t>(component[dense(inst)]);
      });
}

}  // namespace lbmem
