#pragma once
/// \file load_balancer.hpp
/// \brief The paper's load-balancing / memory-usage heuristic
/// (Section 3.2, Algorithm "Load Balancing heuristic").
///
/// Given a valid distributed strict-periodic schedule, the balancer:
///  1. groups instances into blocks (block_builder.hpp);
///  2. visits blocks in increasing start-time order;
///  3. for each block evaluates every processor: eligibility (end of the
///     last block moved there <= block start), achievable gain G
///     (category-1 blocks may shift earlier; category-2 blocks are pinned),
///     data-readiness of every member, overlap against already-moved
///     instances, the Block Condition (Eq. 4) and — optionally — the
///     memory capacity;
///  4. commits the block to the destination chosen by the CostPolicy;
///     a positive gain shifts the first starts of the block's tasks, which
///     by strict periodicity also shifts their later instances (the paper's
///     step-3 start-time update);
///  5. validates the result; because the paper's gain propagation is
///     optimistic (DESIGN.md F5), a failed validation triggers a bounded
///     retry with gains disabled, and ultimately falls back to the input
///     schedule — so the returned schedule is always valid and the total
///     gain is never negative (Theorem 1's lower bound by construction).

#include <cstdint>
#include <vector>

#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/cost_policy.hpp"
#include "lbmem/sched/schedule.hpp"
#include "lbmem/sched/timeline.hpp"

namespace lbmem::obs {
class Registry;
}

namespace lbmem {

/// Which instances constrain a move's placement (DESIGN.md F8).
enum class OverlapRule {
  /// A move must avoid every instance at its current position (robust
  /// default; reproduces the paper example's decisions and keeps the
  /// working schedule conflict-free at every step).
  AllInstances,
  /// The paper's literal reading: only already-moved blocks constrain a
  /// move; unmoved blocks are expected to vacate later. Collapses to the
  /// fallback schedule on most non-trivial workloads — kept for
  /// paper-literal exploration and the ablation bench.
  MovedOnly,
};

/// Balancer configuration.
struct BalanceOptions {
  /// Destination selection rule (DESIGN.md F1). Lexicographic reproduces
  /// the paper's worked example.
  CostPolicy policy = CostPolicy::Lexicographic;
  /// Overlap semantics (DESIGN.md F8).
  OverlapRule overlap_rule = OverlapRule::AllInstances;
  /// Enforce the paper's Block Condition (Eq. 4). On by default.
  bool enforce_block_condition = true;
  /// Reject moves that would exceed the architecture's finite memory
  /// capacity (no effect when the capacity is unlimited).
  bool enforce_memory_capacity = false;
  /// Cap on any single block's gain; -1 means unlimited. 0 disables
  /// start-time gains entirely (pure memory spreading).
  Time max_gain = -1;
  /// Validation-failure retries before falling back to the input schedule.
  int max_attempts = 3;
  /// Record a per-block decision trace (costs memory; used by tests and
  /// the example bench). A trace is the *full* decision record — one
  /// candidate entry per processor — so tracing runs evaluate every
  /// destination exhaustively instead of using bound-and-prune selection.
  /// Decisions are identical either way (the pruning is exact; enforced by
  /// tests/test_prune_equivalence.cpp), tracing just pays for the evidence.
  bool record_trace = false;
  /// Price of moving a block off its current processor (DESIGN.md F9).
  /// When positive, the policy first picks its preferred destination as
  /// usual; if that pick is a migration while staying home is feasible,
  /// the migration only stands when its gain beats the home's gain by
  /// more than this penalty — otherwise the block stays home. The gain
  /// committed for the winner is still the full achievable one. The
  /// online engine sets this to damp migration churn; 0 (the default)
  /// preserves the paper's offline behavior exactly.
  Time migration_penalty = 0;
  /// Per-processor "closed" flags, size M (empty = all open). Closed
  /// processors are never evaluated as destinations; the online engine
  /// closes failed processors. Blocks homed on a closed processor must be
  /// evacuated by the caller before balancing.
  std::vector<std::uint8_t> closed_procs;
  /// Observability sink (DESIGN.md F25): when set, each balance() /
  /// rebalance() run folds its BalanceStats into this registry once at
  /// the end of the run — the candidate-evaluation hot loop records
  /// nothing, so the zero-allocation and determinism guarantees are
  /// untouched. Deterministic figures land in the registry's
  /// Deterministic class; the three scan-schedule-dependent prune
  /// counters (see the BalanceStats comment) and the wall-clock
  /// histogram land in Timing. The registry must outlive the balancer.
  obs::Registry* metrics = nullptr;
  /// Worker threads for destination-candidate evaluation (DESIGN.md F19).
  /// 1 (the default) keeps the classic sequential bound-and-prune scan
  /// byte-for-byte; 0 resolves to the hardware concurrency; >= 2 engages
  /// the deterministic parallel pipeline — same schedules, gains and
  /// moves as the sequential scan for every thread count, and the
  /// pruning-observability counters identical for every thread count
  /// >= 2 (they differ from the threads=1 scan, whose improving incumbent
  /// prunes harder; see BalanceStats). Trace-recording runs evaluate
  /// exhaustively and ignore this knob.
  int threads = 1;
};

/// Scope of an incremental warm-start rebalance (DESIGN.md F12). Scoped
/// rebalancing is defined for OverlapRule::AllInstances only: under
/// MovedOnly the unscoped instances would be invisible to overlap checks,
/// the opposite of this contract.
struct RebalanceScope {
  /// Blocks to re-evaluate — typically build_blocks_around() of the tasks
  /// an event dirtied. Instances outside the decomposition are never moved
  /// but still constrain every placement through the occupancy. Required.
  const BlockDecomposition* blocks = nullptr;
  /// Warm per-processor all-instances occupancy mirroring the input
  /// schedule, copied instead of being rebuilt from scratch. Optional.
  const std::vector<ProcTimeline>* occupancy = nullptr;
  /// Return the final all-instances occupancy in BalanceResult::occupancy
  /// (empty on fallback) so the caller can keep its warm state in sync.
  bool return_occupancy = false;
};

/// Per-block decision record (mirrors the paper's step-by-step example).
struct StepRecord {
  BlockId block = -1;
  /// Block start when the decision was taken (after earlier shifts).
  Time start_before = 0;
  /// One entry per processor, in processor order.
  std::vector<DestinationScore> candidates;
  /// Chosen destination (kNoProc for a forced stay).
  ProcId chosen = kNoProc;
  /// True when no destination was feasible and the block stayed home
  /// without the usual checks.
  bool forced_stay = false;
  /// Gain actually applied (0 for category-2 blocks).
  Time applied_gain = 0;
};

/// Outcome metrics of one balancing run.
struct BalanceStats {
  Time makespan_before = 0;
  Time makespan_after = 0;
  /// Gtotal = makespan_before - makespan_after (>= 0; Theorem 1).
  Time gain_total = 0;
  Mem max_memory_before = 0;
  Mem max_memory_after = 0;
  std::vector<Mem> memory_before;  ///< per processor
  std::vector<Mem> memory_after;   ///< per processor
  int blocks_total = 0;
  int blocks_category1 = 0;
  int moves_off_home = 0;   ///< blocks that changed processor
  int gains_applied = 0;    ///< category-1 blocks with positive gain
  int forced_stays = 0;
  int attempts_used = 0;
  bool fell_back = false;   ///< returned the input schedule unchanged
  // Bound-and-prune observability (DESIGN.md F15). Destination selection
  // screens every candidate with an admissible O(1) upper bound before
  // paying for the exact evaluation; per open destination per block exactly
  // one of the first two counters increments, so their sum equals
  // blocks * open processors. Trace-recording runs evaluate exhaustively
  // (the trace is the full decision record), leaving both prune counters 0.
  // The invariant holds for every BalanceOptions::threads value, but the
  // split between the three counters is a property of the scan schedule:
  // the threads=1 scan prunes against an improving incumbent, the parallel
  // pipeline (threads >= 2) against the fixed home incumbent (DESIGN.md
  // F19) — so counters match across parallel thread counts, not between
  // sequential and parallel runs. Everything else in this struct is
  // identical for every thread count.
  std::int64_t dest_evaluated = 0;        ///< exact evaluations started
  std::int64_t dest_skipped_by_bound = 0; ///< skipped: bound cannot win
  std::int64_t dest_cut_by_incumbent = 0; ///< evaluations aborted mid-scan
  double wall_seconds = 0.0;
};

/// Balancing result: a valid schedule plus metrics and optional trace.
struct BalanceResult {
  Schedule schedule;
  BalanceStats stats;
  std::vector<StepRecord> trace;
  /// All-instances occupancy of `schedule`, filled only when a
  /// RebalanceScope asked for it (warm-state handover; empty otherwise).
  std::vector<ProcTimeline> occupancy;
};

/// The load-balancing heuristic.
class LoadBalancer {
 public:
  explicit LoadBalancer(BalanceOptions options = {});

  /// Balance \p input (which must be complete and valid).
  /// The returned schedule is always valid; on unrecoverable conflicts it
  /// equals the input (stats.fell_back).
  BalanceResult balance(const Schedule& input) const;

  /// Incremental warm-start balance: identical decision machinery, but only
  /// the blocks of \p scope are popped — everything else stays put and acts
  /// as committed occupancy. Eligibility and the Block Condition anchor are
  /// local to this run, mirroring one balancing "round" over the scoped
  /// blocks. Same validity contract as balance(): on validation failure the
  /// gain-disabled retry runs, and ultimately the input is returned.
  BalanceResult rebalance(const Schedule& input,
                          const RebalanceScope& scope) const;

  const BalanceOptions& options() const { return options_; }

 private:
  BalanceResult run_attempts(const Schedule& input,
                             const BlockDecomposition& dec,
                             const std::vector<ProcTimeline>* warm_occupancy,
                             bool return_occupancy) const;

  BalanceOptions options_;
};

}  // namespace lbmem
