#include "lbmem/lb/block.hpp"

#include <algorithm>

#include "lbmem/util/check.hpp"

namespace lbmem {

Time Block::start(const Schedule& sched) const {
  LBMEM_REQUIRE(!members.empty(), "block has no members");
  Time s = sched.start(members.front());
  for (const TaskInstance& inst : members) {
    s = std::min(s, sched.start(inst));
  }
  return s;
}

Time Block::end(const Schedule& sched) const {
  LBMEM_REQUIRE(!members.empty(), "block has no members");
  Time e = sched.end(members.front());
  for (const TaskInstance& inst : members) {
    e = std::max(e, sched.end(inst));
  }
  return e;
}

bool Block::contains_task(TaskId t) const {
  return std::binary_search(tasks.begin(), tasks.end(), t);
}

bool Block::contains(TaskInstance inst) const {
  return std::find(members.begin(), members.end(), inst) != members.end();
}

}  // namespace lbmem
