#pragma once
/// \file block_builder.hpp
/// \brief Builds the block decomposition of a schedule (paper Section 3.1).

#include <vector>

#include "lbmem/lb/block.hpp"

namespace lbmem {

/// The block decomposition plus an instance -> block index.
struct BlockDecomposition {
  std::vector<Block> blocks;
  /// block_of[task][k] = BlockId of instance (task, k).
  std::vector<std::vector<BlockId>> block_of;

  /// Block holding \p inst.
  const Block& block_containing(TaskInstance inst) const;
};

/// Group the instances of \p sched into blocks.
///
/// Rule (from Eqs. 1-2 of the paper): two instances u -> v connected by a
/// direct dependence, placed on the same processor, belong to the same
/// block whenever the timing slack start(v) - end(u) is smaller than the
/// communication time of the edge — separating them would create a
/// communication the schedule cannot absorb. The relation is closed
/// transitively (union-find), so a consumer tight against producers in two
/// distinct groups merges them into one block.
///
/// Requires a complete schedule.
BlockDecomposition build_blocks(const Schedule& sched);

}  // namespace lbmem
