#pragma once
/// \file block_builder.hpp
/// \brief Builds the block decomposition of a schedule (paper Section 3.1).

#include <span>
#include <vector>

#include "lbmem/lb/block.hpp"

namespace lbmem {

/// The block decomposition plus an instance -> block index.
struct BlockDecomposition {
  std::vector<Block> blocks;
  /// block_of[task][k] = BlockId of instance (task, k).
  std::vector<std::vector<BlockId>> block_of;

  /// Block holding \p inst.
  const Block& block_containing(TaskInstance inst) const;
};

/// Group the instances of \p sched into blocks.
///
/// Rule (from Eqs. 1-2 of the paper): two instances u -> v connected by a
/// direct dependence, placed on the same processor, belong to the same
/// block whenever the timing slack start(v) - end(u) is smaller than the
/// communication time of the edge — separating them would create a
/// communication the schedule cannot absorb. The relation is closed
/// transitively (union-find), so a consumer tight against producers in two
/// distinct groups merges them into one block.
///
/// Requires a complete schedule.
BlockDecomposition build_blocks(const Schedule& sched);

/// Partial decomposition for the online engine (DESIGN.md F12): only the
/// blocks reachable from any instance of a seed task through chains of
/// tight same-processor dependences (the same merge rule as build_blocks)
/// are materialized, by BFS from the seeds instead of a global edge sweep.
/// block_of entries of undiscovered instances stay -1; blocks are numbered
/// in the same global start order build_blocks uses, so a pass over the
/// result behaves like the corresponding slice of the full decomposition.
/// Cost is proportional to the discovered neighborhood, not the system.
BlockDecomposition build_blocks_around(const Schedule& sched,
                                       std::span<const TaskId> seed_tasks);

}  // namespace lbmem
