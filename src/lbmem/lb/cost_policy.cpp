#include "lbmem/lb/cost_policy.hpp"

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

std::string to_string(CostPolicy policy) {
  switch (policy) {
    case CostPolicy::Lexicographic: return "Lexicographic";
    case CostPolicy::PaperFormula: return "PaperFormula";
    case CostPolicy::PaperLiteral: return "PaperLiteral";
    case CostPolicy::GainOnly: return "GainOnly";
    case CostPolicy::MemoryOnly: return "MemoryOnly";
  }
  return "?";
}

}  // namespace lbmem
