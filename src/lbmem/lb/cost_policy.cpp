#include "lbmem/lb/cost_policy.hpp"

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

std::string to_string(CostPolicy policy) {
  switch (policy) {
    case CostPolicy::Lexicographic: return "Lexicographic";
    case CostPolicy::PaperFormula: return "PaperFormula";
    case CostPolicy::PaperLiteral: return "PaperLiteral";
    case CostPolicy::GainOnly: return "GainOnly";
    case CostPolicy::MemoryOnly: return "MemoryOnly";
  }
  return "?";
}

Lambda lambda_value(CostPolicy policy, Time gain, Mem moved_mem) {
  LBMEM_REQUIRE(gain >= 0 && moved_mem >= 0, "bad lambda inputs");
  switch (policy) {
    case CostPolicy::PaperLiteral:
      if (moved_mem == 0) {
        return Lambda{gain, 1};  // Eq. (5), first case
      }
      return Lambda{gain + 1, moved_mem};
    case CostPolicy::Lexicographic:
    case CostPolicy::PaperFormula:
    case CostPolicy::GainOnly:
    case CostPolicy::MemoryOnly:
      return Lambda{gain + 1, moved_mem > 0 ? moved_mem : 1};
  }
  return Lambda{};
}

namespace {

/// Tie-break shared by all policies: prefer staying home, then low index.
bool tie_break(const DestinationScore& a, const DestinationScore& b) {
  if (a.is_home != b.is_home) return a.is_home;
  return a.proc < b.proc;
}

}  // namespace

bool better_candidate(CostPolicy policy, const DestinationScore& a,
                      const DestinationScore& b) {
  LBMEM_REQUIRE(a.feasible && b.feasible,
                "better_candidate compares feasible candidates only");
  switch (policy) {
    case CostPolicy::Lexicographic: {
      if (a.gain != b.gain) return a.gain > b.gain;
      if (a.moved_mem != b.moved_mem) return a.moved_mem < b.moved_mem;
      return tie_break(a, b);
    }
    case CostPolicy::GainOnly: {
      if (a.gain != b.gain) return a.gain > b.gain;
      return tie_break(a, b);
    }
    case CostPolicy::MemoryOnly: {
      if (a.moved_mem != b.moved_mem) return a.moved_mem < b.moved_mem;
      return tie_break(a, b);
    }
    case CostPolicy::PaperFormula:
    case CostPolicy::PaperLiteral: {
      const int cmp = compare_fractions(a.lambda.num, a.lambda.den,
                                        b.lambda.num, b.lambda.den);
      if (cmp != 0) return cmp > 0;
      return tie_break(a, b);
    }
  }
  return false;
}

}  // namespace lbmem
