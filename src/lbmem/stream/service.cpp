#include "lbmem/stream/service.hpp"

#include <algorithm>
#include <utility>

#include "lbmem/util/check.hpp"
#include "lbmem/util/stopwatch.hpp"
#include "lbmem/validate/validator.hpp"

namespace lbmem {

namespace {

/// A queued event plus its admission metadata (for the queueing-delay
/// histograms). Carried through coalescing via coalesce_events' `kept`
/// index map.
struct Pending {
  Event event;
  double admit_wall_us = 0.0;
  std::int64_t admit_cycle = 0;
};

/// The stream.* metric ids, registered idempotently against the caller's
/// registry (DESIGN.md F25 naming + class split).
struct StreamMetrics {
  explicit StreamMetrics(obs::Registry& reg)
      : events_in(reg.counter("stream.events_in")),
        admitted(reg.counter("stream.admitted")),
        coalesced(reg.counter("stream.coalesced")),
        batches(reg.counter("stream.batches")),
        shed_on_overflow(reg.counter("stream.shed_on_overflow")),
        cycles(reg.counter("stream.cycles")),
        escalations(reg.counter("stream.escalations")),
        batch_events(reg.histogram("stream.batch_events")),
        queue_delay_cycles(reg.histogram("stream.queue_delay_cycles")),
        queue_delay_us(reg.histogram("stream.queue_delay_us",
                                     obs::MetricClass::Timing)),
        batch_repair_us(reg.histogram("stream.batch_repair_us",
                                      obs::MetricClass::Timing)) {}

  obs::MetricId events_in, admitted, coalesced, batches, shed_on_overflow,
      cycles, escalations, batch_events, queue_delay_cycles, queue_delay_us,
      batch_repair_us;
};

/// Fold one engine outcome (and the deferred re-attempts it resolved) into
/// the report's traffic counters — same recursion as OnlineRunner.
void fold_outcome(StreamReport& report, const EventOutcome& outcome) {
  if (outcome.applied) {
    ++report.applied;
  } else if (outcome.deferred) {
    ++report.deferred;
  } else {
    ++report.rejected;
  }
  report.shed_tasks.insert(report.shed_tasks.end(), outcome.shed.begin(),
                           outcome.shed.end());
  for (const EventOutcome& resolved : outcome.resolved_pending) {
    fold_outcome(report, resolved);
  }
}

void accumulate(CoalesceStats& total, const CoalesceStats& pass) {
  // `in`/`out` describe one pass over a queue that persists across passes;
  // summing them would double-count survivors. Only the drop rules — which
  // fire at most once per dropped event — accumulate meaningfully.
  total.last_write_wins += pass.last_write_wins;
  total.folded += pass.folded;
  total.annihilated += pass.annihilated;
  total.subsumed += pass.subsumed;
}

}  // namespace

StreamService::StreamService(StreamOptions options)
    : options_(options) {
  LBMEM_REQUIRE(options_.cycle_ticks > 0, "cycle_ticks must be positive");
  LBMEM_REQUIRE(options_.batch_max > 0, "batch_max must be positive");
  LBMEM_REQUIRE(options_.budget_us >= 0, "budget_us must be >= 0");
  LBMEM_REQUIRE(options_.overload_backlog >= 0,
                "overload_backlog must be >= 0");
}

StreamReport StreamService::serve(Rebalancer& system, const EventTrace& trace,
                                  const ProgressFn& progress,
                                  std::int64_t progress_every) const {
  for (std::size_t i = 1; i < trace.size(); ++i) {
    LBMEM_REQUIRE(trace[i].at >= trace[i - 1].at,
                  "trace arrival ticks must be non-decreasing");
  }

  StreamReport report;
  std::unique_ptr<StreamMetrics> metrics;
  if (options_.metrics != nullptr) {
    metrics = std::make_unique<StreamMetrics>(*options_.metrics);
  }

  const std::size_t shed_before = system.shed_tasks().size();
  const bool degraded_configured = system.degraded_enabled();
  bool degraded_armed = false;

  std::vector<Pending> pending;
  std::int64_t failures_pending = 0;
  std::size_t next = 0;  // next trace event to admit
  Stopwatch wall;

  // Start the virtual clock at the window containing the first arrival.
  Time window_start = trace.empty()
                          ? 0
                          : (trace.front().at / options_.cycle_ticks) *
                                options_.cycle_ticks;

  while (next < trace.size() || !pending.empty()) {
    // Fast-forward over empty windows: virtual time is free.
    if (pending.empty() && next < trace.size() &&
        trace[next].at >= window_start + options_.cycle_ticks) {
      window_start =
          (trace[next].at / options_.cycle_ticks) * options_.cycle_ticks;
    }
    const Time window_end = window_start + options_.cycle_ticks;

    // ---- admission ------------------------------------------------------
    while (next < trace.size() && trace[next].at < window_end) {
      const Event& event = trace[next];
      ++next;
      ++report.events_in;
      if (metrics) options_.metrics->add(metrics->events_in);
      const bool is_failure = event.kind() == EventKind::ProcessorFailure;
      if (options_.queue_capacity > 0 &&
          static_cast<int>(pending.size()) >= options_.queue_capacity &&
          !is_failure) {
        // Bounded queue: shed the incoming event (drop-newest never
        // reorders the queue, so shedding is deterministic). Failures are
        // exempt — a hardware fault cannot be dropped.
        ++report.shed_overflow;
        if (metrics) options_.metrics->add(metrics->shed_on_overflow);
        continue;
      }
      if (is_failure) ++failures_pending;
      pending.push_back(Pending{event, wall.micros(), report.cycles});
      ++report.admitted;
      if (metrics) options_.metrics->add(metrics->admitted);
    }

    // ---- overload escalation (DESIGN.md F33) ----------------------------
    const int backlog_in = static_cast<int>(pending.size());
    if (options_.overload_backlog > 0 && !degraded_armed &&
        backlog_in >= options_.overload_backlog) {
      system.set_degraded_enabled(true);
      degraded_armed = true;
      ++report.escalations;
      if (metrics) options_.metrics->add(metrics->escalations);
    }

    // ---- coalescing -----------------------------------------------------
    if (options_.coalesce && pending.size() > 1) {
      std::vector<Event> events;
      events.reserve(pending.size());
      for (const Pending& p : pending) events.push_back(p.event);
      CoalesceStats pass;
      std::vector<std::size_t> kept;
      std::vector<Event> survivors =
          coalesce_events(std::move(events), &pass, &kept);
      if (pass.dropped() > 0) {
        std::vector<Pending> compacted;
        compacted.reserve(survivors.size());
        for (std::size_t s = 0; s < survivors.size(); ++s) {
          Pending& origin = pending[kept[s]];
          compacted.push_back(Pending{std::move(survivors[s]),
                                      origin.admit_wall_us,
                                      origin.admit_cycle});
        }
        pending = std::move(compacted);
        report.coalesced += pass.dropped();
        accumulate(report.coalesce_detail, pass);
        if (metrics) {
          options_.metrics->add(metrics->coalesced, pass.dropped());
        }
        // Coalescing never drops failures (barrier rule), so
        // failures_pending is unchanged.
      }
    }

    // ---- budget-bounded drain (DESIGN.md F32) ---------------------------
    std::int64_t drained = 0;
    double batch_us = 0.0;
    bool budget_cut = false;
    std::size_t head = 0;  // drained prefix; compacted once after the loop
    while (head < pending.size()) {
      // A queued ProcessorFailure always flushes: the drain must run
      // through the last pending failure regardless of caps.
      if (failures_pending == 0) {
        if (drained >= options_.batch_max) break;
        if (options_.budget_us > 0 && drained >= 1 &&
            static_cast<std::int64_t>(batch_us) >= options_.budget_us) {
          budget_cut = true;
          break;
        }
      }
      Pending front = std::move(pending[head]);
      ++head;
      if (front.event.kind() == EventKind::ProcessorFailure) {
        --failures_pending;
      }

      Stopwatch repair;
      const EventOutcome outcome = system.apply(front.event);
      const double repair_us = repair.micros();
      batch_us += repair_us;
      ++drained;
      fold_outcome(report, outcome);

      const std::int64_t delay_us =
          static_cast<std::int64_t>(wall.micros() - front.admit_wall_us);
      const std::int64_t delay_cycles = report.cycles - front.admit_cycle;
      report.queue_delay_us.record(delay_us);
      report.queue_delay_cycles.record(delay_cycles);
      if (metrics) {
        options_.metrics->record(metrics->queue_delay_us, delay_us);
        options_.metrics->record(metrics->queue_delay_cycles, delay_cycles);
      }
    }
    if (head > 0) {
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(head));
    }
    if (drained > 0) {
      ++report.batches;
      report.batch_events.record(drained);
      report.batch_repair_us.record(static_cast<std::int64_t>(batch_us));
      if (metrics) {
        options_.metrics->add(metrics->batches);
        options_.metrics->record(metrics->batch_events, drained);
        options_.metrics->record(metrics->batch_repair_us,
                                 static_cast<std::int64_t>(batch_us));
      }
    }
    if (budget_cut) ++report.budget_exhausted;

    // ---- overload hysteresis: disarm at half the mark -------------------
    if (degraded_armed &&
        static_cast<int>(pending.size()) <= options_.overload_backlog / 2) {
      system.set_degraded_enabled(degraded_configured);
      degraded_armed = false;
    }

    ++report.cycles;
    if (metrics) options_.metrics->add(metrics->cycles);
    report.horizon = window_end;
    window_start = window_end;

    if (progress && progress_every > 0 &&
        report.cycles % progress_every == 0) {
      StreamProgress snap;
      snap.cycle = report.cycles;
      snap.now = window_end;
      snap.events_in = report.events_in;
      snap.applied = report.applied;
      snap.rejected = report.rejected;
      snap.coalesced = report.coalesced;
      snap.shed_overflow = report.shed_overflow;
      snap.backlog = static_cast<int>(pending.size());
      snap.degraded_armed = degraded_armed;
      snap.queue_delay_p50_us = report.queue_delay_us.percentile(50.0);
      snap.queue_delay_p99_us = report.queue_delay_us.percentile(99.0);
      progress(snap);
    }
  }

  // Restore the engine's configured ladder setting no matter where the
  // backlog ended.
  if (degraded_armed) system.set_degraded_enabled(degraded_configured);

  report.wall_seconds = wall.seconds();
  const std::int64_t drained_total =
      report.applied + report.rejected + report.deferred;
  report.events_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(drained_total) / report.wall_seconds
          : 0.0;

  report.final_makespan = system.schedule().makespan();
  report.final_max_memory = system.schedule().max_memory();
  report.alive_tasks = static_cast<int>(system.graph().task_count());
  report.alive_procs = system.alive_processor_count();
  report.shed_tasks.assign(system.shed_tasks().begin() +
                               static_cast<std::ptrdiff_t>(shed_before),
                           system.shed_tasks().end());

  if (options_.validate_final) {
    int violations =
        static_cast<int>(validate(system.schedule()).violations.size());
    // A failed processor must host nothing — a rule the validator cannot
    // know about (same check as OnlineRunner's per-event validation).
    const auto& failed = system.failed_procs();
    for (ProcId p = 0; p < static_cast<ProcId>(failed.size()); ++p) {
      if (failed[static_cast<std::size_t>(p)] &&
          !system.schedule().instances_on(p).empty()) {
        ++violations;
      }
    }
    report.final_violations = violations;
  }
  return report;
}

}  // namespace lbmem
