#pragma once
/// \file coalescer.hpp
/// \brief Deterministic event coalescing for the streaming service.
///
/// Under sustained traffic many pending events are redundant by the time
/// the repair queue drains them: a task whose WCET was re-estimated five
/// times only needs its *last* estimate applied, and a task that arrived
/// and was removed while queued never needs to exist at all. The coalescer
/// collapses a pending batch to the surviving events (DESIGN.md F31):
///
///  * **Last-write-wins** — of N WcetChanges to the same task only the
///    last survives, at its own position in the batch.
///  * **Fold** — a WcetChange on a task whose TaskArrival is still queued
///    folds into the arrival's spec (the task is born with its newest
///    WCET) and the change event disappears.
///  * **Annihilation** — a TaskArrival whose matching TaskRemoval is also
///    queued cancels against it: both disappear (the folded WcetChanges
///    with them) *unless* a surviving event between them references the
///    task (a later arrival naming it as producer) — then both stay, in
///    order, so the dependent admission still sees its producer alive.
///  * **Subsumption** — a TaskRemoval of a pre-existing task drops any
///    queued WcetChange on it (the task leaves anyway).
///  * **Failure barrier** — ProcessorFailure events are never coalesced
///    and never crossed: they split the batch into independent segments,
///    so coalescing can never reorder work relative to a failure.
///
/// Coalescing is semantics-preserving with respect to the *surviving*
/// sequence: applying the coalesced batch one event at a time produces a
/// schedule identical to applying those surviving events one at a time
/// (trivially — they are the same sequence; the property test pins the
/// service's drain to that contract). It intentionally does NOT promise
/// the same final schedule as applying the original uncoalesced sequence:
/// every apply() runs a history-dependent repair, so dropping a redundant
/// intermediate event can change which equally-valid schedule the system
/// settles in. The point of coalescing is to not pay for that redundant
/// intermediate repair at all.

#include <vector>

#include "lbmem/online/event.hpp"

namespace lbmem {

/// What one coalescing pass did (counts of *dropped* events by rule;
/// `in - out` = total dropped).
struct CoalesceStats {
  std::int64_t in = 0;
  std::int64_t out = 0;
  std::int64_t last_write_wins = 0;  ///< stale WcetChanges dropped
  std::int64_t folded = 0;           ///< WcetChanges folded into arrivals
  std::int64_t annihilated = 0;      ///< arrival/removal pairs cancelled
  std::int64_t subsumed = 0;         ///< WcetChanges dropped by a removal

  std::int64_t dropped() const { return in - out; }
};

/// Coalesce \p pending into its surviving subsequence (original order
/// preserved; deterministic — a pure function of the batch). \p stats, when
/// non-null, receives the per-rule drop counts. \p kept, when non-null, is
/// filled with the original index of each survivor (ascending) — the
/// streaming service uses it to carry per-event admission metadata
/// (enqueue time, admission cycle) across a coalescing pass.
std::vector<Event> coalesce_events(std::vector<Event> pending,
                                   CoalesceStats* stats = nullptr,
                                   std::vector<std::size_t>* kept = nullptr);

}  // namespace lbmem
