#include "lbmem/stream/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "lbmem/util/check.hpp"

namespace lbmem {

namespace {

/// Names travel as bare tokens; whitespace or ':' would corrupt the line.
void require_writable_name(const std::string& name) {
  if (name.empty() ||
      name.find_first_of(" \t\r\n:") != std::string::npos) {
    throw ModelError("task name not representable in trace format: '" +
                     name + "'");
  }
}

[[noreturn]] void malformed(std::size_t line_no, const std::string& why,
                            const std::string& line) {
  throw ModelError("trace line " + std::to_string(line_no) + ": " + why +
                   " — '" + line + "'");
}

std::int64_t parse_int(const std::string& token, std::size_t line_no,
                       const std::string& line) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(token, &used);
    if (used != token.size()) malformed(line_no, "bad integer", line);
    return value;
  } catch (const std::invalid_argument&) {
    malformed(line_no, "bad integer '" + token + "'", line);
  } catch (const std::out_of_range&) {
    malformed(line_no, "integer out of range '" + token + "'", line);
  }
}

}  // namespace

void write_trace(std::ostream& out, const EventTrace& trace) {
  out << "# lbmem-trace v1\n";
  for (const Event& event : trace) {
    out << event.at << " ";
    switch (event.kind()) {
      case EventKind::WcetChange: {
        const WcetChange& change = std::get<WcetChange>(event.payload);
        require_writable_name(change.task);
        out << "wcet " << change.task << " " << change.wcet;
        break;
      }
      case EventKind::TaskArrival: {
        const NewTaskSpec& spec = std::get<TaskArrival>(event.payload).spec;
        require_writable_name(spec.name);
        out << "arrival " << spec.name << " " << spec.period << " "
            << spec.wcet << " " << spec.memory;
        for (const NewTaskSpec::Producer& producer : spec.producers) {
          require_writable_name(producer.task);
          out << " " << producer.task << ":" << producer.data_size;
        }
        break;
      }
      case EventKind::TaskRemoval:
        require_writable_name(std::get<TaskRemoval>(event.payload).task);
        out << "removal " << std::get<TaskRemoval>(event.payload).task;
        break;
      case EventKind::ProcessorFailure:
        out << "failure "
            << std::get<ProcessorFailure>(event.payload).proc;
        break;
    }
    out << "\n";
  }
}

std::string trace_to_string(const EventTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

EventTrace parse_trace(std::istream& in) {
  EventTrace trace;
  std::string line;
  std::size_t line_no = 0;
  Time last_at = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Tokenize; skip blanks and comments.
    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) tokens.push_back(token);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens.size() < 2) malformed(line_no, "missing event kind", line);

    Event event;
    event.at = parse_int(tokens[0], line_no, line);
    if (event.at < 0) malformed(line_no, "negative arrival tick", line);
    if (event.at < last_at) {
      malformed(line_no, "arrival ticks must be non-decreasing", line);
    }
    last_at = event.at;

    const std::string& kind = tokens[1];
    if (kind == "wcet") {
      if (tokens.size() != 4) malformed(line_no, "wcet takes 2 fields", line);
      event.payload =
          WcetChange{tokens[2], parse_int(tokens[3], line_no, line)};
    } else if (kind == "arrival") {
      if (tokens.size() < 6) {
        malformed(line_no, "arrival takes at least 4 fields", line);
      }
      NewTaskSpec spec;
      spec.name = tokens[2];
      spec.period = parse_int(tokens[3], line_no, line);
      spec.wcet = parse_int(tokens[4], line_no, line);
      spec.memory = parse_int(tokens[5], line_no, line);
      for (std::size_t t = 6; t < tokens.size(); ++t) {
        const std::size_t colon = tokens[t].find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= tokens[t].size()) {
          malformed(line_no, "bad producer '" + tokens[t] + "'", line);
        }
        spec.producers.push_back(NewTaskSpec::Producer{
            tokens[t].substr(0, colon),
            parse_int(tokens[t].substr(colon + 1), line_no, line)});
      }
      event.payload = TaskArrival{std::move(spec)};
    } else if (kind == "removal") {
      if (tokens.size() != 3) {
        malformed(line_no, "removal takes 1 field", line);
      }
      event.payload = TaskRemoval{tokens[2]};
    } else if (kind == "failure") {
      if (tokens.size() != 3) {
        malformed(line_no, "failure takes 1 field", line);
      }
      const std::int64_t proc = parse_int(tokens[2], line_no, line);
      if (proc < 0) malformed(line_no, "negative processor id", line);
      event.payload = ProcessorFailure{static_cast<ProcId>(proc)};
    } else {
      malformed(line_no, "unknown event kind '" + kind + "'", line);
    }
    trace.push_back(std::move(event));
  }
  return trace;
}

EventTrace parse_trace(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

}  // namespace lbmem
