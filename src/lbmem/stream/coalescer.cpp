#include "lbmem/stream/coalescer.hpp"

#include <string>
#include <unordered_map>
#include <utility>

namespace lbmem {

namespace {

/// Last surviving event for a task inside the current failure-free
/// segment.
struct TaskState {
  EventKind kind = EventKind::WcetChange;
  std::size_t index = 0;
};

}  // namespace

std::vector<Event> coalesce_events(std::vector<Event> pending,
                                   CoalesceStats* stats,
                                   std::vector<std::size_t>* kept) {
  CoalesceStats local;
  local.in = static_cast<std::int64_t>(pending.size());

  std::vector<std::uint8_t> alive(pending.size(), 1);
  // Per-segment tracking, cleared at every failure barrier.
  std::unordered_map<std::string, TaskState> state;
  // Producer name -> indices of queued arrivals that depend on it (used to
  // veto annihilation that would orphan a queued admission).
  std::unordered_map<std::string, std::vector<std::size_t>> refs;

  for (std::size_t i = 0; i < pending.size(); ++i) {
    Event& event = pending[i];
    switch (event.kind()) {
      case EventKind::WcetChange: {
        const WcetChange& change = std::get<WcetChange>(event.payload);
        auto it = state.find(change.task);
        if (it != state.end() && it->second.kind == EventKind::TaskArrival) {
          // Fold: the task is born with its newest WCET.
          std::get<TaskArrival>(pending[it->second.index].payload)
              .spec.wcet = change.wcet;
          alive[i] = 0;
          ++local.folded;
          break;
        }
        if (it != state.end() && it->second.kind == EventKind::WcetChange) {
          // Last-write-wins: the stale estimate never runs a repair.
          alive[it->second.index] = 0;
          ++local.last_write_wins;
        }
        state[change.task] = TaskState{EventKind::WcetChange, i};
        break;
      }
      case EventKind::TaskArrival: {
        const NewTaskSpec& spec = std::get<TaskArrival>(event.payload).spec;
        for (const NewTaskSpec::Producer& producer : spec.producers) {
          refs[producer.task].push_back(i);
        }
        state[spec.name] = TaskState{EventKind::TaskArrival, i};
        break;
      }
      case EventKind::TaskRemoval: {
        const std::string& task =
            std::get<TaskRemoval>(event.payload).task;
        auto it = state.find(task);
        if (it != state.end() && it->second.kind == EventKind::TaskArrival) {
          // Annihilate the queued arrival against this removal — unless a
          // surviving admission between them names the task as producer,
          // in which case both must still run in order.
          bool referenced = false;
          auto ref_it = refs.find(task);
          if (ref_it != refs.end()) {
            for (const std::size_t ref : ref_it->second) {
              if (ref > it->second.index && alive[ref]) {
                referenced = true;
                break;
              }
            }
          }
          if (!referenced) {
            alive[it->second.index] = 0;
            alive[i] = 0;
            local.annihilated += 2;
            state.erase(it);
            break;
          }
        } else if (it != state.end() &&
                   it->second.kind == EventKind::WcetChange) {
          // Subsume: the task leaves anyway; its queued re-estimate is
          // dead weight.
          alive[it->second.index] = 0;
          ++local.subsumed;
        }
        state[task] = TaskState{EventKind::TaskRemoval, i};
        break;
      }
      case EventKind::ProcessorFailure:
        // Barrier: failures are never coalesced and never crossed.
        state.clear();
        refs.clear();
        break;
    }
  }

  std::vector<Event> survivors;
  survivors.reserve(pending.size());
  if (kept != nullptr) kept->clear();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!alive[i]) continue;
    survivors.push_back(std::move(pending[i]));
    if (kept != nullptr) kept->push_back(i);
  }
  local.out = static_cast<std::int64_t>(survivors.size());
  if (stats != nullptr) *stats = local;
  return survivors;
}

}  // namespace lbmem
