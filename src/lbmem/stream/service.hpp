#pragma once
/// \file service.hpp
/// \brief The streaming event service: a sustained-traffic front end over
/// the online Rebalancer.
///
/// The replay harness (online/runner.hpp) applies one event at a time —
/// a debugging tool, not a server. The StreamService models what a
/// production deployment actually faces: events *arrive* on a clock
/// (Event::at ticks, stamped by gen/event_trace's arrival models), queue
/// while the repair engine is busy, and must be admitted, coalesced and
/// drained under an explicit latency budget (DESIGN.md F32):
///
///  1. **Admission** — the service advances through virtual time in
///     fixed-width cycles (`cycle_ticks`). Every event whose arrival tick
///     falls inside the current window is admitted into a *bounded*
///     pending queue; when the queue is full, the newest non-failure
///     event is shed — deterministically (drop-newest never reorders the
///     queue) and observably (`shed_on_overflow` counter, per-event
///     accounting in the report). ProcessorFailures are never shed:
///     ignoring a hardware fault does not make it go away.
///  2. **Coalescing** — the pending queue is collapsed by the
///     deterministic coalescer (stream/coalescer.hpp) before repair, so
///     redundant events (stale WCET estimates, arrive-then-leave tasks)
///     never pay for a repair at all.
///  3. **Budget-bounded drain** — up to `batch_max` surviving events are
///     applied through the Rebalancer, stopping early once the cycle has
///     spent `budget_us` of measured repair wall time. At least one event
///     always drains per non-empty cycle (guaranteed progress), and a
///     pending ProcessorFailure always flushes the batch: the drain runs
///     through the last queued failure regardless of budget, because a
///     failed processor must never keep hosting work across a cycle.
///  4. **Overload escalation** — when the backlog crosses
///     `overload_backlog`, the service arms the PR 9 degraded-mode repair
///     ladder on the engine (widened retries → re-place → resolve →
///     shed) and restores the engine's configured setting once the
///     backlog falls to half the mark (hysteresis, DESIGN.md F33).
///
/// Queueing delay and repair latency are reported *separately*: tail
/// responsiveness is dominated by time spent waiting, which a
/// repair-latency histogram alone would hide. Both wall-clock histograms
/// are Timing-class; the deterministic counterparts (queue delay in
/// cycles, batch sizes, all counters) are byte-identical across thread
/// counts (DESIGN.md F25).

#include <functional>

#include "lbmem/obs/metrics.hpp"
#include "lbmem/online/rebalancer.hpp"
#include "lbmem/stream/coalescer.hpp"

namespace lbmem {

/// Streaming-service configuration.
struct StreamOptions {
  /// Width of one admission window in virtual ticks (> 0). Everything
  /// arriving inside a window is eligible for the same coalescing pass.
  Time cycle_ticks = 64;
  /// Bound of the pending queue; admission past it sheds the incoming
  /// event (failures exempt). <= 0 means unbounded.
  int queue_capacity = 4096;
  /// Most events drained (applied) in one cycle (> 0).
  int batch_max = 256;
  /// Per-cycle repair budget in microseconds of measured wall time; the
  /// drain stops once the cycle has spent it (min one event, and a queued
  /// failure always flushes). 0 = unbounded.
  std::int64_t budget_us = 0;
  /// Collapse the pending queue with the coalescer before each drain.
  bool coalesce = true;
  /// Backlog high-water mark that arms the degraded-mode repair ladder on
  /// the engine; disarmed again at half the mark. 0 = never escalate.
  int overload_backlog = 0;
  /// Validate the final schedule (validate/ + failed-processor emptiness).
  bool validate_final = true;
  /// Observability sink (DESIGN.md F25): stream.* counters and the
  /// queue-delay / batch-repair histograms. Must outlive the call.
  obs::Registry* metrics = nullptr;
};

/// Periodic progress snapshot handed to the serve loop's stats callback.
struct StreamProgress {
  std::int64_t cycle = 0;     ///< cycles completed so far
  Time now = 0;               ///< virtual clock (end of current window)
  std::int64_t events_in = 0;
  std::int64_t applied = 0;
  std::int64_t rejected = 0;
  std::int64_t coalesced = 0;
  std::int64_t shed_overflow = 0;
  int backlog = 0;            ///< pending events after this cycle
  bool degraded_armed = false;
  std::int64_t queue_delay_p50_us = 0;
  std::int64_t queue_delay_p99_us = 0;
};

/// Aggregates of one serve() run.
struct StreamReport {
  // Traffic accounting (Deterministic).
  std::int64_t events_in = 0;       ///< events offered by the trace
  std::int64_t admitted = 0;        ///< entered the pending queue
  std::int64_t shed_overflow = 0;   ///< dropped at admission (queue full)
  std::int64_t coalesced = 0;       ///< removed by coalescing before repair
  CoalesceStats coalesce_detail;    ///< per-rule drop totals
  std::int64_t batches = 0;         ///< drain batches executed
  std::int64_t cycles = 0;          ///< admission windows processed
  std::int64_t applied = 0;         ///< events the engine accepted
  std::int64_t rejected = 0;        ///< events the engine rejected
  std::int64_t deferred = 0;        ///< parked by the backoff rung
  std::int64_t escalations = 0;     ///< overload -> ladder armed flips
  std::int64_t budget_exhausted = 0;  ///< cycles cut short by the budget
  /// Deterministic latency/size distributions.
  obs::LatencyHistogram queue_delay_cycles;  ///< cycles waited before drain
  obs::LatencyHistogram batch_events;        ///< batch size after coalescing
  /// Wall-clock distributions (Timing class; stripped by --timing=off).
  obs::LatencyHistogram queue_delay_us;   ///< admission -> repair complete
  obs::LatencyHistogram batch_repair_us;  ///< repair time per batch
  double wall_seconds = 0.0;
  /// Drained events (applied + rejected + deferred) per wall second.
  double events_per_second = 0.0;
  // Final system state.
  Time horizon = 0;  ///< virtual tick of the last processed window
  Time final_makespan = 0;
  Mem final_max_memory = 0;
  int alive_tasks = 0;
  int alive_procs = 0;
  /// Tasks dropped by the ladder's shed rung during the run.
  std::vector<std::string> shed_tasks;
  /// Validator violations of the final schedule (0 for a correct engine;
  /// -1 when validation was disabled).
  int final_violations = -1;
};

/// The streaming service. Owns nothing: it drives a caller-provided
/// Rebalancer (whose configuration decides repair policy) and restores
/// the engine's degraded-ladder setting before returning.
class StreamService {
 public:
  explicit StreamService(StreamOptions options = {});

  using ProgressFn = std::function<void(const StreamProgress&)>;

  /// Serve \p trace (arrival ticks must be non-decreasing) against
  /// \p system until both the trace and the pending queue are empty.
  /// \p progress, when set, is invoked with `progress_every > 0` cycle
  /// granularity — see serve()'s second overload.
  StreamReport serve(Rebalancer& system, const EventTrace& trace,
                     const ProgressFn& progress = {},
                     std::int64_t progress_every = 0) const;

  const StreamOptions& options() const { return options_; }

 private:
  StreamOptions options_;
};

}  // namespace lbmem
