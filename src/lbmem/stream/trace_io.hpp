#pragma once
/// \file trace_io.hpp
/// \brief Text serialization of event traces — the wire format of the
/// `serve` subcommand.
///
/// A trace file is line-oriented: one event per line, `#` comments and
/// blank lines ignored, fields separated by single spaces. The first
/// field is the arrival tick (`at_tick`), the second the event kind:
///
///     # lbmem-trace v1
///     17 wcet t4 3
///     33 arrival dyn0 32 3 5 t4:2 t9:1
///     40 removal dyn0
///     52 failure 2
///
///  * `wcet <task> <new_wcet>`
///  * `arrival <name> <period> <wcet> <memory> [<producer>:<data> ...]`
///  * `removal <task>`
///  * `failure <proc>`  (0-based processor id)
///
/// Task names must not contain whitespace or ':' (the generator never
/// emits such names; the writer rejects them). Arrival ticks must be
/// non-decreasing — a trace is an ordered stream, and the streaming
/// service's admission clock depends on it. parse_trace throws
/// lbmem::ModelError with a line number on any malformed input, so a
/// truncated pipe fails loudly instead of serving half a trace.

#include <iosfwd>
#include <string>

#include "lbmem/online/event.hpp"

namespace lbmem {

/// Serialize \p trace (header comment + one line per event). Throws
/// ModelError when a task name cannot be represented in the format.
void write_trace(std::ostream& out, const EventTrace& trace);

/// Convenience: the serialized trace as one string.
std::string trace_to_string(const EventTrace& trace);

/// Parse a trace. Throws ModelError (with a 1-based line number) on
/// malformed lines, unknown kinds, negative or decreasing ticks.
EventTrace parse_trace(std::istream& in);

/// Convenience: parse from a string.
EventTrace parse_trace(const std::string& text);

}  // namespace lbmem
