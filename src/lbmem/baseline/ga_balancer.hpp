#pragma once
/// \file ga_balancer.hpp
/// \brief Genetic-algorithm load balancer (comparison baseline in the
/// spirit of Greene, ICTAI'01 — the paper's ref [9]).
///
/// Chromosome: a whole-task processor assignment. Fitness combines the
/// makespan of the earliest-start schedule induced by the assignment with
/// the maximum per-processor memory; unschedulable assignments receive a
/// large penalty. Selection is tournament-based with elitism, uniform
/// crossover and per-gene mutation. Deterministic per seed.

#include <cstdint>
#include <optional>

#include "lbmem/sched/scheduler.hpp"

namespace lbmem {

/// GA configuration.
struct GaOptions {
  int population = 40;
  int generations = 60;
  int tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.05;
  int elite = 2;
  /// Weight of max memory in the fitness (makespan + weight * max_mem).
  double memory_weight = 0.5;
  std::uint64_t seed = 42;
};

/// GA outcome.
struct GaResult {
  Schedule schedule;
  std::vector<ProcId> assignment;
  double fitness = 0.0;
  int evaluations = 0;
  int infeasible_evaluations = 0;
};

/// Run the GA; returns std::nullopt when no feasible assignment was found
/// in the whole run (rare; the initial population is seeded with the
/// natural topological placement).
std::optional<GaResult> ga_balance(const TaskGraph& graph,
                                   const Architecture& arch,
                                   const CommModel& comm,
                                   const GaOptions& options = {});

}  // namespace lbmem
