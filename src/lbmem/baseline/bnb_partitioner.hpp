#pragma once
/// \file bnb_partitioner.hpp
/// \brief Exact min-max partitioning by branch and bound (Korf-style),
/// providing the ωopt reference of Theorem 2.
///
/// DFS over items in decreasing weight order; prunes on
///   * the incumbent (current max load >= best found),
///   * the global lower bound max(ceil(remaining/M'), largest item), and
///   * machine-load symmetry (never branch into two machines with equal
///     current load).
/// Exact for the instance sizes used in the Theorem-2 bench (tens of
/// items); a node budget guards against pathological inputs, falling back
/// to the best incumbent with `proven_optimal = false`.

#include <cstdint>

#include "lbmem/baseline/partition.hpp"

namespace lbmem {

/// Exact (or budget-bounded) min-max partition.
struct BnbResult {
  PartitionResult partition;
  bool proven_optimal = true;
  std::uint64_t nodes_explored = 0;
};

/// Solve min-max partition of \p weights over \p machines.
/// \p node_budget bounds the search (0 = unlimited).
BnbResult bnb_partition(const std::vector<Mem>& weights, int machines,
                        std::uint64_t node_budget = 50'000'000);

}  // namespace lbmem
