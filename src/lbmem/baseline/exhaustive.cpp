#include "lbmem/baseline/exhaustive.hpp"

#include <limits>

#include "lbmem/util/check.hpp"

namespace lbmem {

std::optional<ExhaustiveResult> exhaustive_optimal(
    const TaskGraph& graph, const Architecture& arch, const CommModel& comm,
    const ExhaustiveOptions& options) {
  const auto n = graph.task_count();
  const auto m = static_cast<std::uint64_t>(arch.processor_count());

  std::uint64_t total = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (total > options.max_assignments / m) {
      throw PreconditionError("exhaustive_optimal: M^N exceeds the budget (" +
                              std::to_string(options.max_assignments) + ")");
    }
    total *= m;
  }

  std::vector<ProcId> assignment(n, ProcId{0});
  Time best_makespan = std::numeric_limits<Time>::max();
  Mem best_memory = std::numeric_limits<Mem>::max();
  double best_combined = std::numeric_limits<double>::infinity();
  std::optional<Schedule> best_schedule;
  std::uint64_t feasible = 0;
  std::uint64_t enumerated = 0;

  while (true) {
    ++enumerated;
    try {
      const Schedule sched = build_forced_schedule(graph, arch, comm,
                                                   assignment);
      ++feasible;
      const Time makespan = sched.makespan();
      const Mem memory = sched.max_memory();
      best_makespan = std::min(best_makespan, makespan);
      best_memory = std::min(best_memory, memory);
      const double combined = static_cast<double>(makespan) +
                              options.memory_weight *
                                  static_cast<double>(memory);
      if (combined < best_combined) {
        best_combined = combined;
        best_schedule = sched;
      }
    } catch (const ScheduleError&) {
      // infeasible assignment
    }

    // Mixed-radix increment.
    std::size_t pos = 0;
    while (pos < n) {
      assignment[pos] = static_cast<ProcId>(assignment[pos] + 1);
      if (assignment[pos] < arch.processor_count()) break;
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }

  if (!best_schedule) return std::nullopt;
  ExhaustiveResult result{best_makespan, best_memory,
                          std::move(*best_schedule), best_combined, feasible,
                          enumerated};
  return result;
}

}  // namespace lbmem
