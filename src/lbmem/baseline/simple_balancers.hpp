#pragma once
/// \file simple_balancers.hpp
/// \brief Non-learning comparison baselines at whole-task granularity.

#include <optional>

#include "lbmem/sched/scheduler.hpp"

namespace lbmem {

/// Round-robin: task i (in topological order) on processor i mod M.
/// Returns std::nullopt when the forced assignment is unschedulable.
std::optional<Schedule> round_robin_schedule(const TaskGraph& graph,
                                             const Architecture& arch,
                                             const CommModel& comm);

/// Memory-greedy: tasks in decreasing memory order, each on the processor
/// with the least memory assigned so far (pure "memory balancing" in the
/// sense of the paper's ref [12]); returns std::nullopt when
/// unschedulable.
std::optional<Schedule> memory_greedy_schedule(const TaskGraph& graph,
                                               const Architecture& arch,
                                               const CommModel& comm);

}  // namespace lbmem
