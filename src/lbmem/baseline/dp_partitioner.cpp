#include "lbmem/baseline/dp_partitioner.hpp"

#include <algorithm>

#include "lbmem/util/check.hpp"

namespace lbmem {

PartitionResult dp_partition_two(const std::vector<Mem>& weights) {
  Mem total = 0;
  for (const Mem w : weights) {
    LBMEM_REQUIRE(w >= 0, "weights must be non-negative");
    total += w;
  }
  LBMEM_REQUIRE(total <= (Mem{1} << 22), "total weight too large for DP");

  // reachable[i][s] via rolling bitset; track choices for reconstruction.
  const auto size = static_cast<std::size_t>(total) + 1;
  std::vector<char> reachable(size, 0);
  reachable[0] = 1;
  // choice[i] = bitset snapshot before adding item i (for reconstruction).
  std::vector<std::vector<char>> snapshots;
  snapshots.reserve(weights.size());
  for (const Mem w : weights) {
    snapshots.push_back(reachable);
    const auto wu = static_cast<std::size_t>(w);
    for (std::size_t s = size; s-- > wu;) {
      if (reachable[s - wu]) reachable[s] = 1;
    }
  }

  // Best split: subset sum closest to total/2 from below or equal above.
  Mem best_high = total;
  for (std::size_t s = 0; s < size; ++s) {
    if (!reachable[s]) continue;
    const Mem high = std::max<Mem>(static_cast<Mem>(s),
                                   total - static_cast<Mem>(s));
    best_high = std::min(best_high, high);
  }

  // Reconstruct a subset with max load == best_high.
  Mem target = -1;
  for (std::size_t s = 0; s < size; ++s) {
    if (reachable[s] &&
        std::max<Mem>(static_cast<Mem>(s), total - static_cast<Mem>(s)) ==
            best_high) {
      target = static_cast<Mem>(s);
      break;
    }
  }
  LBMEM_REQUIRE(target >= 0, "reconstruction failed");

  PartitionResult result;
  result.assignment.assign(weights.size(), 1);
  Mem remaining = target;
  for (std::size_t i = weights.size(); i-- > 0;) {
    const auto& before = snapshots[i];
    const Mem w = weights[i];
    // Item i was used iff remaining-w was reachable before adding it and
    // remaining was not necessarily reachable without it; prefer using it
    // when possible.
    if (w <= remaining &&
        before[static_cast<std::size_t>(remaining - w)]) {
      result.assignment[i] = 0;
      remaining -= w;
    } else {
      LBMEM_REQUIRE(before[static_cast<std::size_t>(remaining)],
                    "reconstruction failed");
    }
  }
  LBMEM_REQUIRE(remaining == 0, "reconstruction failed");

  result.loads.assign(2, Mem{0});
  for (std::size_t i = 0; i < weights.size(); ++i) {
    result.loads[static_cast<std::size_t>(result.assignment[i])] +=
        weights[i];
  }
  result.max_load = std::max(result.loads[0], result.loads[1]);
  return result;
}

}  // namespace lbmem
