#include "lbmem/baseline/bnb_partitioner.hpp"

#include <algorithm>
#include <numeric>

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

namespace {

class Solver {
 public:
  Solver(const std::vector<Mem>& weights, int machines,
         std::uint64_t node_budget)
      : machines_(machines), budget_(node_budget) {
    order_.resize(weights.size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    std::sort(order_.begin(), order_.end(),
              [&](std::size_t a, std::size_t b) {
                if (weights[a] != weights[b]) return weights[a] > weights[b];
                return a < b;
              });
    sorted_.reserve(weights.size());
    for (const std::size_t i : order_) sorted_.push_back(weights[i]);
    suffix_total_.assign(weights.size() + 1, 0);
    for (std::size_t i = weights.size(); i-- > 0;) {
      suffix_total_[i] = suffix_total_[i + 1] + sorted_[i];
    }
    lower_bound_ = partition_lower_bound(weights, machines);
  }

  BnbResult solve(const std::vector<Mem>& weights) {
    // Incumbent: LPT solution (already in sorted order here).
    const PartitionResult seed = greedy_min_load(sorted_, machines_);
    best_assignment_ = seed.assignment;
    best_ = seed.max_load;

    loads_.assign(static_cast<std::size_t>(machines_), Mem{0});
    current_.assign(sorted_.size(), 0);
    exhausted_ = false;
    if (best_ > lower_bound_) {
      dfs(0, 0);
    }

    BnbResult out;
    out.nodes_explored = nodes_;
    out.proven_optimal = !exhausted_;
    out.partition.assignment.resize(weights.size());
    for (std::size_t rank = 0; rank < order_.size(); ++rank) {
      out.partition.assignment[order_[rank]] = best_assignment_[rank];
    }
    out.partition.loads.assign(static_cast<std::size_t>(machines_), Mem{0});
    for (std::size_t i = 0; i < weights.size(); ++i) {
      out.partition.loads[static_cast<std::size_t>(
          out.partition.assignment[i])] += weights[i];
    }
    out.partition.max_load =
        *std::max_element(out.partition.loads.begin(),
                          out.partition.loads.end());
    return out;
  }

 private:
  void dfs(std::size_t item, Mem current_max) {
    if (best_ == lower_bound_) return;  // provably optimal already
    if (budget_ != 0 && nodes_ >= budget_) {
      exhausted_ = true;
      return;
    }
    ++nodes_;
    if (item == sorted_.size()) {
      if (current_max < best_) {
        best_ = current_max;
        best_assignment_ = current_;
      }
      return;
    }
    // Bounds. Whatever machine receives the next (largest remaining) item
    // ends with at least min_load + weight; and the global average bound
    // lower_bound_ always applies.
    Mem min_load = loads_[0];
    for (const Mem l : loads_) min_load = std::min(min_load, l);
    const Mem optimistic = std::max(
        {current_max, lower_bound_, min_load + sorted_[item]});
    if (optimistic >= best_) return;

    // Branch; skip machines with a load equal to an earlier one
    // (symmetry) and prune on the incumbent.
    Mem seen_load = -1;
    bool seen_any = false;
    for (int m = 0; m < machines_; ++m) {
      const Mem load = loads_[static_cast<std::size_t>(m)];
      if (seen_any && load == seen_load) continue;  // symmetric branch
      if (load + sorted_[item] >= best_) continue;  // cannot improve
      seen_any = true;
      seen_load = load;
      loads_[static_cast<std::size_t>(m)] += sorted_[item];
      current_[item] = m;
      dfs(item + 1,
          std::max(current_max, loads_[static_cast<std::size_t>(m)]));
      loads_[static_cast<std::size_t>(m)] -= sorted_[item];
      if (exhausted_ || best_ == lower_bound_) return;
    }
  }

  int machines_;
  std::uint64_t budget_;
  std::vector<std::size_t> order_;
  std::vector<Mem> sorted_;
  std::vector<Mem> suffix_total_;
  Mem lower_bound_ = 0;

  std::vector<Mem> loads_;
  std::vector<int> current_;
  std::vector<int> best_assignment_;
  Mem best_ = 0;
  std::uint64_t nodes_ = 0;
  bool exhausted_ = false;
};

}  // namespace

BnbResult bnb_partition(const std::vector<Mem>& weights, int machines,
                        std::uint64_t node_budget) {
  LBMEM_REQUIRE(machines >= 1, "need at least one machine");
  for (const Mem w : weights) {
    LBMEM_REQUIRE(w >= 0, "weights must be non-negative");
  }
  if (weights.empty()) {
    BnbResult out;
    out.partition.loads.assign(static_cast<std::size_t>(machines), Mem{0});
    return out;
  }
  Solver solver(weights, machines, node_budget);
  return solver.solve(weights);
}

}  // namespace lbmem
