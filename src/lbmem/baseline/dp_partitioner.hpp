#pragma once
/// \file dp_partitioner.hpp
/// \brief Exact two-machine min-max partition via subset-sum DP — an
/// independent cross-check of the branch-and-bound solver for M = 2.

#include "lbmem/baseline/partition.hpp"

namespace lbmem {

/// Exact min-max partition over exactly two machines.
/// Runs in O(n * total_weight / 64); requires total weight <= 2^22 to keep
/// memory bounded (throws PreconditionError beyond).
PartitionResult dp_partition_two(const std::vector<Mem>& weights);

}  // namespace lbmem
