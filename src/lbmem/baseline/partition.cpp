#include "lbmem/baseline/partition.hpp"

#include <algorithm>
#include <numeric>

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

PartitionResult greedy_min_load(const std::vector<Mem>& weights,
                                int machines) {
  LBMEM_REQUIRE(machines >= 1, "need at least one machine");
  PartitionResult result;
  result.assignment.resize(weights.size());
  result.loads.assign(static_cast<std::size_t>(machines), Mem{0});
  for (std::size_t i = 0; i < weights.size(); ++i) {
    LBMEM_REQUIRE(weights[i] >= 0, "weights must be non-negative");
    const auto it = std::min_element(result.loads.begin(), result.loads.end());
    const auto m = static_cast<int>(it - result.loads.begin());
    result.assignment[i] = m;
    *it += weights[i];
  }
  result.max_load =
      *std::max_element(result.loads.begin(), result.loads.end());
  return result;
}

PartitionResult lpt(const std::vector<Mem>& weights, int machines) {
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  std::vector<Mem> sorted;
  sorted.reserve(weights.size());
  for (const std::size_t i : order) sorted.push_back(weights[i]);

  const PartitionResult on_sorted = greedy_min_load(sorted, machines);
  PartitionResult result;
  result.assignment.resize(weights.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    result.assignment[order[rank]] = on_sorted.assignment[rank];
  }
  result.loads = on_sorted.loads;
  result.max_load = on_sorted.max_load;
  return result;
}

Mem partition_lower_bound(const std::vector<Mem>& weights, int machines) {
  LBMEM_REQUIRE(machines >= 1, "need at least one machine");
  Mem total = 0;
  Mem largest = 0;
  for (const Mem w : weights) {
    total += w;
    largest = std::max(largest, w);
  }
  return std::max(largest, ceil_div(total, machines));
}

}  // namespace lbmem
