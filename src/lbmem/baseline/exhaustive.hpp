#pragma once
/// \file exhaustive.hpp
/// \brief Exhaustive optimal task placement for small systems.
///
/// The paper evaluates its heuristic only against theoretical bounds and
/// explicitly notes it "was not yet applied on a realistic application".
/// This module provides the missing ground truth for small instances: it
/// enumerates every whole-task processor assignment, builds the
/// earliest-start schedule for each, and reports the optima of both
/// objectives (minimum makespan and minimum max-memory) plus the best
/// weighted combination. bench_optimality measures the heuristic's gap
/// against these optima.

#include <optional>

#include "lbmem/sched/scheduler.hpp"

namespace lbmem {

/// Exhaustive search configuration.
struct ExhaustiveOptions {
  /// Refuse instances with more than this many assignments (M^N).
  std::uint64_t max_assignments = 2'000'000;
  /// Weight of max-memory in the combined objective
  /// makespan + memory_weight * max_memory.
  double memory_weight = 0.5;
};

/// Optima over all feasible whole-task assignments.
struct ExhaustiveResult {
  /// Minimum makespan over all feasible assignments.
  Time opt_makespan = 0;
  /// Minimum max-memory over all feasible assignments.
  Mem opt_max_memory = 0;
  /// Schedule minimizing the combined objective.
  Schedule best_combined;
  double best_combined_value = 0.0;
  std::uint64_t feasible = 0;    ///< feasible assignments found
  std::uint64_t enumerated = 0;  ///< assignments tried
};

/// Enumerate all assignments. Returns std::nullopt when no assignment is
/// feasible. Throws PreconditionError when M^N exceeds the budget.
std::optional<ExhaustiveResult> exhaustive_optimal(
    const TaskGraph& graph, const Architecture& arch, const CommModel& comm,
    const ExhaustiveOptions& options = {});

}  // namespace lbmem
