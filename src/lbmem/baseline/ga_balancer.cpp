#include "lbmem/baseline/ga_balancer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lbmem/util/check.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {

namespace {

struct Individual {
  std::vector<ProcId> genes;
  double fitness = std::numeric_limits<double>::infinity();
  bool feasible = false;
};

}  // namespace

std::optional<GaResult> ga_balance(const TaskGraph& graph,
                                   const Architecture& arch,
                                   const CommModel& comm,
                                   const GaOptions& options) {
  LBMEM_REQUIRE(options.population >= 4, "population too small");
  LBMEM_REQUIRE(options.elite >= 0 && options.elite < options.population,
                "bad elite count");
  Rng rng(options.seed);
  const auto n_tasks = graph.task_count();
  const int m = arch.processor_count();

  int evaluations = 0;
  int infeasible = 0;
  auto evaluate = [&](Individual& ind) {
    ++evaluations;
    try {
      const Schedule sched =
          build_forced_schedule(graph, arch, comm, ind.genes);
      ind.feasible = true;
      ind.fitness = static_cast<double>(sched.makespan()) +
                    options.memory_weight *
                        static_cast<double>(sched.max_memory());
    } catch (const ScheduleError&) {
      ++infeasible;
      ind.feasible = false;
      ind.fitness = std::numeric_limits<double>::infinity();
    }
  };

  // Initial population: one "cluster by period order" individual plus
  // random assignments.
  std::vector<Individual> population(
      static_cast<std::size_t>(options.population));
  {
    Individual& seeded = population[0];
    seeded.genes.resize(n_tasks);
    int index = 0;
    for (const TaskId t : graph.topological_order()) {
      seeded.genes[static_cast<std::size_t>(t)] =
          static_cast<ProcId>(index++ % m);
    }
  }
  for (std::size_t i = 1; i < population.size(); ++i) {
    population[i].genes.resize(n_tasks);
    for (auto& g : population[i].genes) {
      g = static_cast<ProcId>(rng.uniform(0, m - 1));
    }
  }
  for (Individual& ind : population) evaluate(ind);

  auto by_fitness = [](const Individual& a, const Individual& b) {
    return a.fitness < b.fitness;
  };

  for (int gen = 0; gen < options.generations; ++gen) {
    std::sort(population.begin(), population.end(), by_fitness);
    std::vector<Individual> next;
    next.reserve(population.size());
    for (int e = 0; e < options.elite; ++e) {
      next.push_back(population[static_cast<std::size_t>(e)]);
    }
    auto tournament_pick = [&]() -> const Individual& {
      const Individual* best = nullptr;
      for (int t = 0; t < options.tournament; ++t) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform(0, options.population - 1));
        if (!best || population[idx].fitness < best->fitness) {
          best = &population[idx];
        }
      }
      return *best;
    };
    while (static_cast<int>(next.size()) < options.population) {
      Individual child;
      const Individual& a = tournament_pick();
      const Individual& b = tournament_pick();
      child.genes.resize(n_tasks);
      const bool crossover = rng.chance(options.crossover_rate);
      for (std::size_t g = 0; g < n_tasks; ++g) {
        child.genes[g] = crossover
                             ? (rng.chance(0.5) ? a.genes[g] : b.genes[g])
                             : a.genes[g];
        if (rng.chance(options.mutation_rate)) {
          child.genes[g] = static_cast<ProcId>(rng.uniform(0, m - 1));
        }
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  std::sort(population.begin(), population.end(), by_fitness);
  const Individual& best = population.front();
  if (!best.feasible) return std::nullopt;

  GaResult result{build_forced_schedule(graph, arch, comm, best.genes),
                  best.genes, best.fitness, evaluations, infeasible};
  return result;
}

}  // namespace lbmem
