#pragma once
/// \file partition.hpp
/// \brief The abstract min-max partition problem underlying the paper's
/// Theorem 2 (memory-only balancing).
///
/// When the heuristic "only considers memory" (paper Section 5.2), it
/// assigns each block to the processor with the least memory already
/// moved — list scheduling on identical machines with the blocks' memory
/// amounts as weights. Theorem 2's (2 - 1/M) bound is exactly Graham's
/// bound for that greedy. This module provides the greedy, the LPT variant,
/// and helpers shared with the exact solvers.

#include <vector>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// A partition of weighted items over \p machines machines.
struct PartitionResult {
  /// assignment[i] = machine of item i.
  std::vector<int> assignment;
  /// Load per machine.
  std::vector<Mem> loads;
  /// max(loads) — the paper's ω.
  Mem max_load = 0;
};

/// Greedy list assignment in the given item order: each item goes to the
/// currently least-loaded machine (the paper's memory-only heuristic).
PartitionResult greedy_min_load(const std::vector<Mem>& weights,
                                int machines);

/// Longest-processing-time greedy: items sorted by decreasing weight, then
/// greedy_min_load (classical 4/3 - 1/(3M) heuristic; ablation baseline).
PartitionResult lpt(const std::vector<Mem>& weights, int machines);

/// Lower bound on the optimal max load: max(ceil(total/M), max weight).
Mem partition_lower_bound(const std::vector<Mem>& weights, int machines);

}  // namespace lbmem
