#include "lbmem/baseline/simple_balancers.hpp"

#include <algorithm>
#include <numeric>

#include "lbmem/util/check.hpp"

namespace lbmem {

std::optional<Schedule> round_robin_schedule(const TaskGraph& graph,
                                             const Architecture& arch,
                                             const CommModel& comm) {
  std::vector<ProcId> assignment(graph.task_count(), ProcId{0});
  int index = 0;
  for (const TaskId t : graph.topological_order()) {
    assignment[static_cast<std::size_t>(t)] =
        static_cast<ProcId>(index++ % arch.processor_count());
  }
  try {
    return build_forced_schedule(graph, arch, comm, assignment);
  } catch (const ScheduleError&) {
    return std::nullopt;
  }
}

std::optional<Schedule> memory_greedy_schedule(const TaskGraph& graph,
                                               const Architecture& arch,
                                               const CommModel& comm) {
  std::vector<TaskId> order(graph.task_count());
  std::iota(order.begin(), order.end(), TaskId{0});
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const Mem ma = graph.task(a).memory * graph.instance_count(a);
    const Mem mb = graph.task(b).memory * graph.instance_count(b);
    if (ma != mb) return ma > mb;
    return a < b;
  });

  std::vector<Mem> load(static_cast<std::size_t>(arch.processor_count()),
                        Mem{0});
  std::vector<ProcId> assignment(graph.task_count(), ProcId{0});
  for (const TaskId t : order) {
    const auto it = std::min_element(load.begin(), load.end());
    const auto p = static_cast<ProcId>(it - load.begin());
    assignment[static_cast<std::size_t>(t)] = p;
    *it += graph.task(t).memory * graph.instance_count(t);
  }
  try {
    return build_forced_schedule(graph, arch, comm, assignment);
  } catch (const ScheduleError&) {
    return std::nullopt;
  }
}

}  // namespace lbmem
