#pragma once
/// \file event_trace.hpp
/// \brief Seeded random event-trace generator for the online engine.
///
/// Produces plausible runtime histories over a base application: mode
/// changes (WCET re-estimates) dominate, task arrivals/removals model
/// software updates, and rare processor failures model hardware faults.
/// The generator tracks the alive task set and the failed processor set so
/// every emitted event is *structurally* well-formed (arrival producers
/// are alive and harmonic, removals never empty the system, failures never
/// kill the last processor). Whether an event is *schedulable* is decided
/// by the Rebalancer at replay time — traces may contain events the system
/// rightfully rejects.
///
/// Generation is deterministic per (params, seed) across platforms
/// (lbmem::Rng), so replays are reproducible.

#include <cstdint>

#include "lbmem/arch/architecture.hpp"
#include "lbmem/model/task_graph.hpp"
#include "lbmem/online/event.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {

/// How inter-arrival times between consecutive events are drawn. The
/// timestamps give a trace a *rate*, not just an order — the streaming
/// service (stream/service.hpp) admits events by arrival tick, so the
/// distribution decides how bursty the offered load is.
enum class ArrivalModel {
  /// Legacy default: one uniform draw in [min_gap, max_gap] per event.
  /// This is byte-identical to the pre-stream generator (same single Rng
  /// draw at the same stream position), so existing seeded traces and the
  /// replay goldens are unchanged.
  UniformGap,
  /// Memoryless (Poisson process): exponential inter-arrival times with
  /// mean `mean_gap` ticks, rounded to the tick grid (minimum gap 0 —
  /// simultaneous arrivals are legal and exercise the coalescer).
  Poisson,
  /// Two-state bursty traffic: runs of `burst_len_min..burst_len_max`
  /// events spaced `burst_gap` ticks apart, separated by idle gaps drawn
  /// uniformly from [idle_gap_min, idle_gap_max] — the arrival-side
  /// analogue of the Gilbert–Elliott noise bursts (DESIGN.md F27).
  Bursty,
};

/// Tunable trace-generator parameters.
struct EventTraceParams {
  /// Number of events to emit.
  int events = 16;
  /// Relative weights of the four event kinds (need not sum to 1).
  double arrival_weight = 0.25;
  double removal_weight = 0.15;
  double wcet_weight = 0.5;
  double failure_weight = 0.1;
  /// Cap on processor failures over the whole trace; additionally at least
  /// one processor always stays alive.
  int max_failures = 1;
  /// Maximum producers wired to an arriving task.
  int max_producers = 2;
  /// Memory range of arriving tasks.
  Mem mem_min = 1;
  Mem mem_max = 12;
  /// Data-size range of arriving tasks' dependences.
  Mem data_min = 1;
  Mem data_max = 6;
  /// Inter-arrival model for the `at` tick stamped on every event (the
  /// streaming service's arrival clock). UniformGap reproduces the legacy
  /// generator byte for byte.
  ArrivalModel arrival = ArrivalModel::UniformGap;
  /// UniformGap: inter-arrival gap range.
  Time min_gap = 1;
  Time max_gap = 64;
  /// Poisson: mean inter-arrival gap in ticks (> 0).
  double mean_gap = 16.0;
  /// Bursty: events per burst, intra-burst gap, and the idle gap range
  /// between bursts.
  int burst_len_min = 4;
  int burst_len_max = 16;
  Time burst_gap = 1;
  Time idle_gap_min = 64;
  Time idle_gap_max = 256;
};

/// Generate a trace over \p base running on \p arch. Deterministic in
/// (params, seed). Arriving tasks reuse periods already present in the
/// base application (the paper's Section-4 observation that realistic
/// systems draw from a small sensor-imposed period set), which also keeps
/// the hyper-period stable along typical traces.
EventTrace random_event_trace(const TaskGraph& base, const Architecture& arch,
                              const EventTraceParams& params,
                              std::uint64_t seed);

}  // namespace lbmem
