#pragma once
/// \file paper_example.hpp
/// \brief The worked example of the paper (Figure 2 and Section 3.3).
///
/// System: tasks a, b, c, d, e with periods Ta=3, Tb=Tc=6, Td=Te=12; all
/// WCETs 1; communication time C=1; memory ma=4, mb=mc=1, md=me=2; three
/// identical processors connected by one medium.
///
/// The dependence structure is not printed in the paper (Figure 2 is an
/// image); it is reconstructed from the example's numbers (DESIGN.md F4):
/// a->b, b->c, b->d, c->e, d->e. With the PeriodCluster placement policy
/// this reproduces Figure 3 exactly (makespan 15, memory [16,4,4]), and
/// the load balancer then reproduces Figure 4 (makespan 14, memory
/// [10,6,8]) step by step.

#include "lbmem/arch/architecture.hpp"
#include "lbmem/arch/comm_model.hpp"
#include "lbmem/model/task_graph.hpp"
#include "lbmem/sched/schedule.hpp"

namespace lbmem {

/// The Figure-2 application (frozen).
TaskGraph paper_example_graph();

/// The Figure-2 architecture: three processors, unlimited memory.
Architecture paper_example_architecture();

/// The Figure-2 communication model: flat C = 1.
CommModel paper_example_comm();

/// The Figure-3 input schedule: paper_example_graph() scheduled with the
/// PeriodCluster policy ({a}->P1, {b,c}->P2, {d,e}->P3).
Schedule paper_example_schedule(const TaskGraph& graph);

}  // namespace lbmem
