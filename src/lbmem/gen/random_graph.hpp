#pragma once
/// \file random_graph.hpp
/// \brief Seeded random multi-rate application generator.
///
/// Workload shape follows the paper's own claims about realistic systems:
///  * the number of distinct periods is small because sensors/actuators
///    impose them (Section 4, ref [15]) — periods are drawn from a small
///    harmonic set (base period times powers of two), which also satisfies
///    the harmonic-dependence model requirement;
///  * applications are layered signal-processing/control pipelines —
///    dependences go from faster (sensor-side) to slower (fusion-side)
///    layers or within a layer, forming a DAG;
///  * per-task WCET and memory amounts vary independently.
///
/// Generation is deterministic per seed across platforms (lbmem::Rng).

#include <vector>

#include "lbmem/model/task_graph.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {

/// Tunable generator parameters.
struct RandomGraphParams {
  /// Number of tasks.
  int tasks = 50;
  /// Base (smallest) period in ticks.
  Time base_period = 16;
  /// Number of distinct periods: base * 2^0 .. base * 2^(period_levels-1).
  int period_levels = 3;
  /// Probability that a task depends on a candidate earlier task.
  double edge_probability = 0.25;
  /// Maximum number of producers per task (keeps fan-in realistic).
  int max_in_degree = 3;
  /// WCET range as a fraction of the base period: wcet in
  /// [1, max(1, base_period * wcet_fraction)].
  double wcet_fraction = 0.25;
  /// Memory amount range [mem_min, mem_max].
  Mem mem_min = 1;
  Mem mem_max = 16;
  /// Data size range for dependences (drives affine comm models).
  Mem data_min = 1;
  Mem data_max = 8;
  /// Target total utilization per processor (sum of wcet/period divided by
  /// the processor count the caller plans to use). The generator scales
  /// task count shaping only; callers should check TaskGraph::utilization.
  double target_utilization_per_proc = 0.45;
  /// Processors the workload is intended for (used by the utilization
  /// shaping above).
  int intended_processors = 4;
};

/// Generate a frozen random task graph. Deterministic in (params, seed).
///
/// The generator assigns each task a period level, sorts tasks so that
/// dependences can only point from earlier to later tasks (acyclic by
/// construction), and only links tasks with harmonic periods (always true
/// for the power-of-two period set). WCETs are rescaled downwards when the
/// drawn utilization exceeds the target, keeping workloads schedulable
/// with high probability.
TaskGraph random_task_graph(const RandomGraphParams& params,
                            std::uint64_t seed);

}  // namespace lbmem
