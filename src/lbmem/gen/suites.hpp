#pragma once
/// \file suites.hpp
/// \brief Reusable benchmark workload suites: random systems scheduled and
/// ready for balancing.
///
/// A suite instance owns its task graph (schedules hold a reference) and
/// the initial schedule built by the scheduler substrate. Generation skips
/// seeds that produce unschedulable systems and reports how many were
/// skipped, so benches can state their effective sample counts.

#include <memory>
#include <vector>

#include "lbmem/gen/random_graph.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/sim/perturb.hpp"

namespace lbmem {

/// One generated-and-scheduled workload.
struct SuiteInstance {
  std::shared_ptr<const TaskGraph> graph;
  Schedule schedule;
  std::uint64_t seed = 0;
};

/// Suite specification.
struct SuiteSpec {
  RandomGraphParams params;
  int processors = 4;
  Time comm_cost = 2;          ///< flat communication time C
  Mem memory_capacity = kUnlimitedMemory;
  int count = 20;              ///< instances wanted
  std::uint64_t base_seed = 1; ///< seeds base_seed, base_seed+1, ...
  PlacementPolicy policy = PlacementPolicy::PeriodCluster;
  int max_seed_attempts = 200; ///< give up after this many seeds
  /// Perturbation model for robustness sweeps over this suite (inert by
  /// default). Generation ignores it — it rides along so one SuiteSpec
  /// fully describes a perturbed scenario (ScenarioSpec::replications
  /// turns it on; each instance derives its noise seed from perturb.seed
  /// and its own workload seed).
  PerturbSpec perturb;
};

/// Build a suite. Fewer than spec.count instances are returned when too
/// many seeds were unschedulable; \p skipped (optional) receives the count
/// of rejected seeds.
std::vector<SuiteInstance> make_suite(const SuiteSpec& spec,
                                      int* skipped = nullptr);

}  // namespace lbmem
