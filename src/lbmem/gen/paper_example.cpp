#include "lbmem/gen/paper_example.hpp"

#include "lbmem/sched/scheduler.hpp"

namespace lbmem {

TaskGraph paper_example_graph() {
  TaskGraph g;
  const TaskId a = g.add_task("a", /*period=*/3, /*wcet=*/1, /*memory=*/4);
  const TaskId b = g.add_task("b", 6, 1, 1);
  const TaskId c = g.add_task("c", 6, 1, 1);
  const TaskId d = g.add_task("d", 12, 1, 2);
  const TaskId e = g.add_task("e", 12, 1, 2);
  g.add_dependence(a, b);
  g.add_dependence(b, c);
  g.add_dependence(b, d);
  g.add_dependence(c, e);
  g.add_dependence(d, e);
  g.freeze();
  return g;
}

Architecture paper_example_architecture() {
  return Architecture(/*processors=*/3);
}

CommModel paper_example_comm() {
  return CommModel::flat(/*cost=*/1);
}

Schedule paper_example_schedule(const TaskGraph& graph) {
  SchedulerOptions options;
  options.policy = PlacementPolicy::PeriodCluster;
  return build_initial_schedule(graph, paper_example_architecture(),
                                paper_example_comm(), options);
}

}  // namespace lbmem
