#include "lbmem/gen/event_trace.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "lbmem/util/check.hpp"

namespace lbmem {

namespace {

/// The generator's view of one alive task (enough to produce well-formed
/// removals, WCET changes and harmonic arrival dependences).
struct AliveTask {
  std::string name;
  Time period;
};

bool harmonic(Time a, Time b) { return a % b == 0 || b % a == 0; }

/// Stateful inter-arrival clock for the configured ArrivalModel. The
/// UniformGap path makes exactly the one rng.uniform(min_gap, max_gap)
/// draw per event the legacy generator made, at the same position in the
/// Rng stream, so default-parameter traces are byte-identical.
class ArrivalClock {
 public:
  ArrivalClock(const EventTraceParams& params, Rng& rng)
      : params_(params), rng_(rng) {}

  /// Gap between the previous event and the next one (>= 0 ticks).
  Time next_gap() {
    switch (params_.arrival) {
      case ArrivalModel::UniformGap:
        return rng_.uniform(params_.min_gap, params_.max_gap);
      case ArrivalModel::Poisson: {
        // Exponential inter-arrival with mean mean_gap, rounded to the
        // tick grid. uniform01() < 1, so the log argument stays positive.
        const double u = rng_.uniform01();
        return static_cast<Time>(
            std::llround(-params_.mean_gap * std::log(1.0 - u)));
      }
      case ArrivalModel::Bursty: {
        if (burst_left_ <= 0) {
          // Start a new burst after an idle gap.
          burst_left_ = static_cast<int>(rng_.uniform(
              params_.burst_len_min, params_.burst_len_max));
          --burst_left_;
          return rng_.uniform(params_.idle_gap_min, params_.idle_gap_max);
        }
        --burst_left_;
        return params_.burst_gap;
      }
    }
    return 0;
  }

 private:
  const EventTraceParams& params_;
  Rng& rng_;
  int burst_left_ = 0;  ///< events remaining in the current burst
};

}  // namespace

EventTrace random_event_trace(const TaskGraph& base, const Architecture& arch,
                              const EventTraceParams& params,
                              std::uint64_t seed) {
  LBMEM_REQUIRE(params.events >= 0, "event count must be non-negative");
  LBMEM_REQUIRE(params.mem_min >= 0 && params.mem_min <= params.mem_max,
                "invalid memory range");
  LBMEM_REQUIRE(params.data_min > 0 && params.data_min <= params.data_max,
                "invalid data-size range");
  LBMEM_REQUIRE(params.min_gap >= 0 && params.min_gap <= params.max_gap,
                "invalid gap range");
  LBMEM_REQUIRE(params.mean_gap > 0.0, "mean_gap must be positive");
  LBMEM_REQUIRE(params.burst_len_min >= 1 &&
                    params.burst_len_min <= params.burst_len_max,
                "invalid burst length range");
  LBMEM_REQUIRE(params.burst_gap >= 0, "burst_gap must be non-negative");
  LBMEM_REQUIRE(params.idle_gap_min >= 0 &&
                    params.idle_gap_min <= params.idle_gap_max,
                "invalid idle gap range");
  Rng rng(seed);
  ArrivalClock clock(params, rng);

  std::vector<AliveTask> alive;
  alive.reserve(base.task_count());
  for (const Task& task : base.tasks()) {
    alive.push_back(AliveTask{task.name, task.period});
  }
  // Periods the base application uses (the arrival pool), deduplicated.
  std::vector<Time> periods;
  for (const Task& task : base.tasks()) periods.push_back(task.period);
  std::sort(periods.begin(), periods.end());
  periods.erase(std::unique(periods.begin(), periods.end()), periods.end());

  std::vector<std::uint8_t> failed(
      static_cast<std::size_t>(arch.processor_count()), 0);
  int failures = 0;
  int next_dyn = 0;

  EventTrace trace;
  trace.reserve(static_cast<std::size_t>(params.events));
  Time now = 0;

  const std::array<double, 4> weights = {
      params.arrival_weight, params.removal_weight, params.wcet_weight,
      params.failure_weight};

  for (int i = 0; i < params.events; ++i) {
    now += clock.next_gap();
    std::size_t kind = rng.pick_weighted(weights);

    // Degrade structurally impossible picks to a WCET change, the one kind
    // that is always available (the alive set is never empty).
    if (kind == 1 && alive.size() <= 1) kind = 2;
    if (kind == 3 &&
        (failures >= params.max_failures ||
         failures + 1 >= arch.processor_count())) {
      kind = 2;
    }

    Event event;
    event.at = now;
    switch (kind) {
      case 0: {  // arrival
        NewTaskSpec spec;
        spec.name = "dyn" + std::to_string(next_dyn++);
        spec.period = periods[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(periods.size()) - 1))];
        spec.wcet = rng.uniform(1, std::max<Time>(1, spec.period / 4));
        spec.memory = rng.uniform(params.mem_min, params.mem_max);
        // Wire up to max_producers harmonic producers from the alive set.
        std::vector<std::size_t> candidates;
        for (std::size_t a = 0; a < alive.size(); ++a) {
          if (harmonic(alive[a].period, spec.period)) candidates.push_back(a);
        }
        rng.shuffle(candidates);
        const std::size_t wanted = static_cast<std::size_t>(rng.uniform(
            0, std::min<std::int64_t>(params.max_producers,
                                      static_cast<std::int64_t>(
                                          candidates.size()))));
        for (std::size_t c = 0; c < wanted; ++c) {
          spec.producers.push_back(NewTaskSpec::Producer{
              alive[candidates[c]].name,
              rng.uniform(params.data_min, params.data_max)});
        }
        alive.push_back(AliveTask{spec.name, spec.period});
        event.payload = TaskArrival{std::move(spec)};
        break;
      }
      case 1: {  // removal
        const std::size_t victim = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(alive.size()) - 1));
        event.payload = TaskRemoval{alive[victim].name};
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(victim));
        break;
      }
      case 2: {  // wcet change
        const AliveTask& task = alive[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(alive.size()) - 1))];
        const Time wcet =
            rng.uniform(1, std::max<Time>(1, task.period / 4));
        event.payload = WcetChange{task.name, wcet};
        break;
      }
      default: {  // failure
        std::vector<ProcId> up;
        for (ProcId p = 0; p < arch.processor_count(); ++p) {
          if (!failed[static_cast<std::size_t>(p)]) up.push_back(p);
        }
        const ProcId victim = up[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(up.size()) - 1))];
        failed[static_cast<std::size_t>(victim)] = 1;
        ++failures;
        event.payload = ProcessorFailure{victim};
        break;
      }
    }
    trace.push_back(std::move(event));
  }
  return trace;
}

}  // namespace lbmem
