#include "lbmem/gen/random_graph.hpp"

#include <algorithm>
#include <string>

#include "lbmem/util/check.hpp"

namespace lbmem {

TaskGraph random_task_graph(const RandomGraphParams& params,
                            std::uint64_t seed) {
  LBMEM_REQUIRE(params.tasks >= 1, "need at least one task");
  LBMEM_REQUIRE(params.period_levels >= 1 && params.period_levels <= 16,
                "period_levels out of range");
  LBMEM_REQUIRE(params.base_period >= 2, "base period too small");
  LBMEM_REQUIRE(params.mem_min >= 0 && params.mem_min <= params.mem_max,
                "bad memory range");
  LBMEM_REQUIRE(params.data_min >= 1 && params.data_min <= params.data_max,
                "bad data size range");
  Rng rng(seed);

  // Periods: base * 2^level. Level weights favour fast (sensor) tasks.
  std::vector<Time> periods;
  for (int level = 0; level < params.period_levels; ++level) {
    periods.push_back(params.base_period * (Time{1} << level));
  }

  // Draw per-task period levels and raw WCETs.
  struct Draft {
    Time period;
    Time wcet;
    Mem memory;
  };
  std::vector<Draft> drafts;
  drafts.reserve(static_cast<std::size_t>(params.tasks));
  const Time wcet_cap = std::max<Time>(
      1, static_cast<Time>(static_cast<double>(params.base_period) *
                           params.wcet_fraction));
  for (int i = 0; i < params.tasks; ++i) {
    Draft d;
    d.period =
        periods[static_cast<std::size_t>(rng.uniform(0, params.period_levels - 1))];
    d.wcet = rng.uniform(1, wcet_cap);
    d.memory = rng.uniform(params.mem_min, params.mem_max);
    drafts.push_back(d);
  }

  // Utilization shaping: scale the hyper-period load to the target by
  // stretching periods (doubling preserves harmony) when overloaded.
  const double target =
      params.target_utilization_per_proc * params.intended_processors;
  auto utilization = [&]() {
    double u = 0;
    for (const Draft& d : drafts) {
      u += static_cast<double>(d.wcet) / static_cast<double>(d.period);
    }
    return u;
  };
  int stretch_guard = 0;
  while (utilization() > target && stretch_guard++ < 8) {
    for (Draft& d : drafts) d.period *= 2;
  }

  // Sort by period ascending (then stable): dependences flow fast -> slow
  // or within a period class, mirroring sensor -> fusion pipelines; edges
  // only point forward in this order, so the graph is acyclic.
  std::stable_sort(drafts.begin(), drafts.end(),
                   [](const Draft& x, const Draft& y) {
                     return x.period < y.period;
                   });

  TaskGraph g;
  for (int i = 0; i < params.tasks; ++i) {
    const Draft& d = drafts[static_cast<std::size_t>(i)];
    std::string name = "t";
    name += std::to_string(i);
    g.add_task(std::move(name), d.period, d.wcet, d.memory);
  }

  for (int i = 1; i < params.tasks; ++i) {
    int in_degree = 0;
    // Scan earlier tasks in random order, linking with edge_probability.
    std::vector<int> earlier(static_cast<std::size_t>(i));
    for (int j = 0; j < i; ++j) earlier[static_cast<std::size_t>(j)] = j;
    rng.shuffle(earlier);
    for (const int j : earlier) {
      if (in_degree >= params.max_in_degree) break;
      if (!rng.chance(params.edge_probability)) continue;
      // Harmonic by construction (power-of-two periods), but guard anyway.
      const Time tp = g.task(static_cast<TaskId>(j)).period;
      const Time tc = g.task(static_cast<TaskId>(i)).period;
      if (tp % tc != 0 && tc % tp != 0) continue;
      g.add_dependence(static_cast<TaskId>(j), static_cast<TaskId>(i),
                       rng.uniform(params.data_min, params.data_max));
      ++in_degree;
    }
  }

  g.freeze();
  return g;
}

}  // namespace lbmem
