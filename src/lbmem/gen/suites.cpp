#include "lbmem/gen/suites.hpp"

#include "lbmem/util/check.hpp"

namespace lbmem {

std::vector<SuiteInstance> make_suite(const SuiteSpec& spec, int* skipped) {
  std::vector<SuiteInstance> out;
  int rejected = 0;
  std::uint64_t seed = spec.base_seed;
  int attempts = 0;
  RandomGraphParams params = spec.params;
  params.intended_processors = spec.processors;

  while (static_cast<int>(out.size()) < spec.count &&
         attempts < spec.max_seed_attempts) {
    ++attempts;
    const std::uint64_t this_seed = seed++;
    auto graph = std::make_shared<const TaskGraph>(
        random_task_graph(params, this_seed));
    try {
      SchedulerOptions options;
      options.policy = spec.policy;
      Schedule sched = build_initial_schedule(
          *graph, Architecture(spec.processors, spec.memory_capacity),
          CommModel::flat(spec.comm_cost), options);
      out.push_back(SuiteInstance{graph, std::move(sched), this_seed});
    } catch (const ScheduleError&) {
      ++rejected;  // unschedulable seed; try the next one
    }
  }
  if (skipped) *skipped = rejected;
  return out;
}

}  // namespace lbmem
