#include "lbmem/sched/timeline.hpp"

#include <algorithm>

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

ProcTimeline::ProcTimeline(Time hyperperiod) : h_(hyperperiod) {
  LBMEM_REQUIRE(hyperperiod > 0, "hyper-period must be positive");
}

bool ProcTimeline::range_occupied(Time a, Time b) const {
  return find_conflict(a, b) != nullptr;
}

const ProcTimeline::Piece* ProcTimeline::find_conflict(Time a, Time b) const {
  if (a >= b) return nullptr;
  // First piece with start >= a; the predecessor may still reach past a.
  auto it = std::lower_bound(
      pieces_.begin(), pieces_.end(), a,
      [](const Piece& p, Time value) { return p.start < value; });
  if (it != pieces_.begin()) {
    const Piece& prev = *(it - 1);
    if (prev.start + prev.len > a) return &prev;
  }
  if (it != pieces_.end() && it->start < b) return &*it;
  return nullptr;
}

std::optional<TaskInstance> ProcTimeline::conflicting_owner(Time start,
                                                            Time len) const {
  LBMEM_REQUIRE(len > 0 && len <= h_, "interval length must be in (0, H]");
  const Time s = mod_floor(start, h_);
  if (s + len <= h_) {
    if (const Piece* p = find_conflict(s, s + len)) return p->owner;
    return std::nullopt;
  }
  if (const Piece* p = find_conflict(s, h_)) return p->owner;
  if (const Piece* p = find_conflict(0, s + len - h_)) return p->owner;
  return std::nullopt;
}

bool ProcTimeline::fits(Time start, Time len) const {
  return !conflicting_owner(start, len).has_value();
}

void ProcTimeline::insert_piece(Piece piece) {
  auto it = std::lower_bound(
      pieces_.begin(), pieces_.end(), piece.start,
      [](const Piece& p, Time value) { return p.start < value; });
  pieces_.insert(it, piece);
}

void ProcTimeline::add(Time start, Time len, TaskInstance owner) {
  LBMEM_REQUIRE(fits(start, len), "ProcTimeline::add would overlap");
  const Time s = mod_floor(start, h_);
  if (s + len <= h_) {
    insert_piece(Piece{s, len, owner});
  } else {
    insert_piece(Piece{s, h_ - s, owner});
    insert_piece(Piece{0, s + len - h_, owner});
  }
}

void ProcTimeline::remove(TaskInstance owner) {
  std::erase_if(pieces_, [&](const Piece& p) { return p.owner == owner; });
}

std::optional<Time> ProcTimeline::earliest_fit(Time lb, Time period, Time wcet,
                                               InstanceIdx n) const {
  LBMEM_REQUIRE(period > 0 && wcet > 0 && wcet <= period && n > 0,
                "earliest_fit: bad task shape");
  LBMEM_REQUIRE(static_cast<Time>(n) * period == h_ ||
                    static_cast<Time>(n) * period <= h_,
                "earliest_fit: instances exceed hyper-period");
  Time s = lb;
  const Time limit = lb + period;  // feasibility is periodic in S with period T
  while (s < limit) {
    bool ok = true;
    Time jump = 0;
    for (InstanceIdx k = 0; k < n; ++k) {
      const Time inst_start = s + static_cast<Time>(k) * period;
      const Time pos = mod_floor(inst_start, h_);
      const Piece* conflict = nullptr;
      if (pos + wcet <= h_) {
        conflict = find_conflict(pos, pos + wcet);
      } else {
        conflict = find_conflict(pos, h_);
        if (!conflict) conflict = find_conflict(0, pos + wcet - h_);
      }
      if (conflict) {
        ok = false;
        // Shift so that this instance lands exactly at the conflicting
        // piece's end (circularly). Strictly positive because they overlap.
        Time delta = mod_floor(conflict->start + conflict->len - inst_start, h_);
        if (delta == 0) delta = h_;
        jump = delta;
        break;
      }
    }
    if (ok) return s;
    s += jump;
  }
  return std::nullopt;
}

Time ProcTimeline::busy_time() const {
  Time total = 0;
  for (const Piece& p : pieces_) total += p.len;
  return total;
}

}  // namespace lbmem
