#include "lbmem/sched/timeline.hpp"

#include <algorithm>

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

ProcTimeline::ProcTimeline(Time hyperperiod) : h_(hyperperiod) {
  LBMEM_REQUIRE(hyperperiod > 0, "hyper-period must be positive");
  // Power-of-two bucket width so bucket lookup is a shift: the smallest
  // width that keeps the bucket count at or below kMaxBuckets.
  while (((h_ - 1) >> bucket_shift_) >= kMaxBuckets) ++bucket_shift_;
  buckets_.resize(static_cast<std::size_t>(((h_ - 1) >> bucket_shift_) + 1));
}

std::optional<TaskInstance> ProcTimeline::conflicting_owner(Time start,
                                                            Time len) const {
  return conflicting_owner_if(start, len, NoIgnore{});
}

bool ProcTimeline::fits(Time start, Time len) const {
  return !conflicting_owner(start, len).has_value();
}

void ProcTimeline::insert_piece(Piece piece) {
  const std::size_t b = bucket_of(piece.start);
  std::vector<Piece>& v = buckets_[b];
  auto it = std::lower_bound(
      v.begin(), v.end(), piece.start,
      [](const Piece& p, Time value) { return p.start < value; });
  v.insert(it, piece);
  nonempty_[b >> 6] |= std::uint64_t{1} << (b & 63);
  ++piece_count_;
}

ProcTimeline::OwnerPieces* ProcTimeline::OwnerIndex::find(TaskInstance key) {
  if (table_.empty()) return nullptr;
  const std::size_t mask = table_.size() - 1;
  for (std::size_t i = probe(key);; i = (i + 1) & mask) {
    Entry& e = table_[i];
    if (empty_slot(e)) return nullptr;
    if (!tombstone(e) && e.key == key) return &e.val;
  }
}

ProcTimeline::OwnerPieces& ProcTimeline::OwnerIndex::insert(TaskInstance key) {
  // Rehash at 3/4 load (live + tombstones) so probe chains stay short.
  if (table_.empty() || (used_ + 1) * 4 > table_.size() * 3) grow();
  const std::size_t mask = table_.size() - 1;
  std::size_t first_tombstone = table_.size();
  for (std::size_t i = probe(key);; i = (i + 1) & mask) {
    Entry& e = table_[i];
    if (empty_slot(e)) {
      Entry& dest =
          (first_tombstone < table_.size()) ? table_[first_tombstone] : e;
      if (&dest == &e) ++used_;  // tombstone reuse keeps `used_` unchanged
      dest.key = key;
      dest.val = OwnerPieces{};
      ++live_;
      return dest.val;
    }
    if (tombstone(e)) {
      if (first_tombstone == table_.size()) first_tombstone = i;
    } else if (e.key == key) {
      return e.val;
    }
  }
}

void ProcTimeline::OwnerIndex::erase(TaskInstance key) {
  if (table_.empty()) return;
  const std::size_t mask = table_.size() - 1;
  for (std::size_t i = probe(key);; i = (i + 1) & mask) {
    Entry& e = table_[i];
    if (empty_slot(e)) return;
    if (!tombstone(e) && e.key == key) {
      e.key = TaskInstance{-2, -2};  // tombstone keeps probe chains intact
      --live_;
      return;
    }
  }
}

void ProcTimeline::OwnerIndex::grow() {
  std::vector<Entry> old = std::move(table_);
  std::size_t cap = 16;
  while (cap < live_ * 4) cap <<= 1;  // rehash also purges tombstones
  table_.assign(cap, Entry{});
  used_ = live_;
  const std::size_t mask = cap - 1;
  for (const Entry& e : old) {
    if (empty_slot(e) || tombstone(e)) continue;
    std::size_t i = probe(e.key);
    while (!empty_slot(table_[i])) i = (i + 1) & mask;
    table_[i] = e;
  }
}

void ProcTimeline::add(Time start, Time len, TaskInstance owner) {
  LBMEM_REQUIRE(fits(start, len), "ProcTimeline::add would overlap");
  add_impl(start, len, owner);
}

void ProcTimeline::add_unchecked(Time start, Time len, TaskInstance owner) {
#if LBMEM_TIMELINE_VERIFY
  LBMEM_REQUIRE(fits(start, len), "ProcTimeline::add_unchecked would overlap");
#else
  LBMEM_REQUIRE(len > 0 && len <= h_, "interval length must be in (0, H]");
#endif
  add_impl(start, len, owner);
}

void ProcTimeline::add_impl(Time start, Time len, TaskInstance owner) {
  const Time s = mod_floor(start, h_);
  const bool wraps = s + len > h_;
  OwnerPieces& slots = owner_index_.insert(owner);
  // Validate capacity before mutating anything: a rejected add must leave
  // both the index and the pieces consistent (remove() stays a no-op).
  // (A fresh owner always has two free slots, so a throw here never leaves
  // behind a newly inserted index entry with pieces.)
  const int free_slots = (slots.first < 0 ? 1 : 0) + (slots.second < 0 ? 1 : 0);
  LBMEM_REQUIRE(free_slots >= (wraps ? 2 : 1),
                "ProcTimeline: an owner may hold at most two pieces");
  const auto record = [&](Time piece_start) {
    (slots.first < 0 ? slots.first : slots.second) = piece_start;
  };
  if (!wraps) {
    record(s);
    insert_piece(Piece{s, len, owner});
  } else {
    record(s);
    record(Time{0});
    insert_piece(Piece{s, h_ - s, owner});
    insert_piece(Piece{0, s + len - h_, owner});
  }
}

void ProcTimeline::erase_piece_at(Time start, TaskInstance owner) {
  // Pieces are disjoint with positive length, so starts are unique keys.
  const std::size_t b = bucket_of(start);
  std::vector<Piece>& v = buckets_[b];
  auto it = std::lower_bound(
      v.begin(), v.end(), start,
      [](const Piece& p, Time value) { return p.start < value; });
  LBMEM_REQUIRE(it != v.end() && it->start == start && it->owner == owner,
                "ProcTimeline owner index out of sync");
  v.erase(it);
  if (v.empty()) nonempty_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  --piece_count_;
}

void ProcTimeline::remove(TaskInstance owner) {
  const OwnerPieces* found = owner_index_.find(owner);
  if (!found) return;
  const OwnerPieces slots = *found;
  owner_index_.erase(owner);
  if (slots.first >= 0) erase_piece_at(slots.first, owner);
  if (slots.second >= 0) erase_piece_at(slots.second, owner);
}

std::optional<Time> ProcTimeline::earliest_fit(Time lb, Time period, Time wcet,
                                               InstanceIdx n) const {
  LBMEM_REQUIRE(period > 0 && wcet > 0 && wcet <= period && n > 0,
                "earliest_fit: bad task shape");
  LBMEM_REQUIRE(static_cast<Time>(n) * period == h_ ||
                    static_cast<Time>(n) * period <= h_,
                "earliest_fit: instances exceed hyper-period");
  Time s = lb;
  const Time limit = lb + period;  // feasibility is periodic in S with period T
  while (s < limit) {
    bool ok = true;
    Time jump = 0;
    for (InstanceIdx k = 0; k < n; ++k) {
      const Time inst_start = s + static_cast<Time>(k) * period;
      const Time pos = mod_floor(inst_start, h_);
      if (const Piece* conflict = find_conflict_circular(pos, wcet)) {
        ok = false;
        // Shift so that this instance lands exactly at the conflicting
        // piece's end (circularly). Strictly positive because they overlap.
        Time delta = mod_floor(conflict->start + conflict->len - inst_start, h_);
        if (delta == 0) delta = h_;
        jump = delta;
        break;
      }
    }
    if (ok) return s;
    s += jump;
  }
  return std::nullopt;
}

Time ProcTimeline::busy_time() const {
  Time total = 0;
  for (const std::vector<Piece>& v : buckets_) {
    for (const Piece& p : v) total += p.len;
  }
  return total;
}

bool ProcTimeline::check_index_integrity() const {
  const auto expected_buckets =
      static_cast<std::size_t>(((h_ - 1) >> bucket_shift_) + 1);
  if (buckets_.size() != expected_buckets) return false;
  std::size_t count = 0;
  const Piece* prev = nullptr;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::vector<Piece>& v = buckets_[b];
    const bool bit =
        (nonempty_[b >> 6] >> (b & 63)) & 1;
    if (bit != !v.empty()) return false;
    for (const Piece& p : v) {
      // Inside [0, H), in the right bucket, disjoint from its predecessor.
      if (p.start < 0 || p.len <= 0 || p.start + p.len > h_) return false;
      if (bucket_of(p.start) != b) return false;
      if (prev != nullptr && prev->start + prev->len > p.start) return false;
      prev = &p;
      ++count;
    }
  }
  return count == piece_count_;
}

}  // namespace lbmem
