#include "lbmem/sched/schedule.hpp"

#include <algorithm>
#include <limits>

#include "lbmem/util/check.hpp"

namespace lbmem {

Schedule::Schedule(const TaskGraph& graph, Architecture arch, CommModel comm)
    : graph_(&graph), arch_(arch), comm_(comm) {
  LBMEM_REQUIRE(graph.frozen(), "Schedule requires a frozen TaskGraph");
  first_start_.assign(graph.task_count(), Time{-1});
  unset_starts_ = graph.task_count();
  instance_proc_.assign(graph.total_instances(), kNoProc);
  unassigned_instances_ = instance_proc_.size();
  mem_on_.assign(static_cast<std::size_t>(arch_.processor_count()), Mem{0});
  busy_time_on_.assign(static_cast<std::size_t>(arch_.processor_count()),
                       Time{0});
}

void Schedule::set_first_start(TaskId t, Time start) {
  LBMEM_REQUIRE(t >= 0 && t < static_cast<TaskId>(graph_->task_count()),
                "task id out of range");
  LBMEM_REQUIRE(start >= 0, "start times must be non-negative");
  Time& slot = first_start_[static_cast<std::size_t>(t)];
  if (slot < 0) --unset_starts_;
  slot = start;
}

void Schedule::assign(TaskInstance inst, ProcId p) {
  const std::size_t i = slot(inst);
  LBMEM_REQUIRE(p >= 0 && p < arch_.processor_count(),
                "processor id out of range");
  const ProcId old = instance_proc_[i];
  if (old == p) return;
  const Task& task = graph_->task(inst.task);
  if (old == kNoProc) {
    --unassigned_instances_;
  } else {
    mem_on_[static_cast<std::size_t>(old)] -= task.memory;
    busy_time_on_[static_cast<std::size_t>(old)] -= task.wcet;
  }
  mem_on_[static_cast<std::size_t>(p)] += task.memory;
  busy_time_on_[static_cast<std::size_t>(p)] += task.wcet;
  instance_proc_[i] = p;
}

void Schedule::assign_all(TaskId t, ProcId p) {
  const InstanceIdx n = graph_->instance_count(t);
  for (InstanceIdx k = 0; k < n; ++k) {
    assign(TaskInstance{t, k}, p);
  }
}

void Schedule::refresh_aggregates() {
  std::fill(mem_on_.begin(), mem_on_.end(), Mem{0});
  std::fill(busy_time_on_.begin(), busy_time_on_.end(), Time{0});
  for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count()); ++t) {
    const Task& task = graph_->task(t);
    const std::size_t base = graph_->instance_base(t);
    const std::size_t limit = graph_->instance_base(t + 1);
    for (std::size_t i = base; i < limit; ++i) {
      const ProcId p = instance_proc_[i];
      if (p == kNoProc) continue;
      mem_on_[static_cast<std::size_t>(p)] += task.memory;
      busy_time_on_[static_cast<std::size_t>(p)] += task.wcet;
    }
  }
}

Time Schedule::makespan() const {
  Time m = 0;
  for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count()); ++t) {
    const InstanceIdx n = graph_->instance_count(t);
    // The latest instance of a task is its last one.
    m = std::max(m, end(TaskInstance{t, n - 1}));
  }
  return m;
}

Time Schedule::data_ready(TaskInstance inst, ProcId p) const {
  Time ready = 0;
  for (const std::int32_t e : graph_->deps_in(inst.task)) {
    const Dependence& dep =
        graph_->dependences()[static_cast<std::size_t>(e)];
    const ConsumedRange range = graph_->consumed_range(e, inst.k);
    for (InstanceIdx i = 0; i < range.count; ++i) {
      const TaskInstance producer{dep.producer, range.first + i};
      const ProcId pp = proc(producer);
      LBMEM_REQUIRE(pp != kNoProc, "producer instance not yet placed");
      const Time comm =
          (pp == p) ? Time{0} : comm_.transfer_time(dep.data_size);
      ready = std::max(ready, end(producer) + comm);
    }
  }
  return ready;
}

Time Schedule::min_data_ready(TaskInstance inst) const {
  Time best = std::numeric_limits<Time>::max();
  for (ProcId p = 0; p < arch_.processor_count(); ++p) {
    best = std::min(best, data_ready(inst, p));
  }
  return best;
}

std::vector<TaskInstance> Schedule::instances_on(ProcId p) const {
  std::vector<TaskInstance> result;
  for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count()); ++t) {
    const std::size_t base = graph_->instance_base(t);
    const std::size_t limit = graph_->instance_base(t + 1);
    for (std::size_t i = base; i < limit; ++i) {
      if (instance_proc_[i] == p) {
        result.push_back(TaskInstance{t, static_cast<InstanceIdx>(i - base)});
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [this](const TaskInstance& a, const TaskInstance& b) {
              const Time sa = start(a);
              const Time sb = start(b);
              if (sa != sb) return sa < sb;
              return a < b;
            });
  return result;
}

std::vector<TaskInstance> Schedule::all_instances() const {
  std::vector<TaskInstance> result;
  result.reserve(graph_->total_instances());
  for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count()); ++t) {
    const InstanceIdx n = graph_->instance_count(t);
    for (InstanceIdx k = 0; k < n; ++k) {
      result.push_back(TaskInstance{t, k});
    }
  }
  return result;
}

double Schedule::idle_fraction(ProcId p) const {
  return 1.0 - static_cast<double>(busy_on(p)) /
                   static_cast<double>(graph_->hyperperiod());
}

Mem Schedule::max_memory() const {
  Mem worst = 0;
  for (const Mem m : mem_on_) worst = std::max(worst, m);
  return worst;
}

}  // namespace lbmem
