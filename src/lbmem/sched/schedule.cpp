#include "lbmem/sched/schedule.hpp"

#include <algorithm>
#include <limits>

#include "lbmem/util/check.hpp"

namespace lbmem {

Schedule::Schedule(const TaskGraph& graph, Architecture arch, CommModel comm)
    : graph_(&graph), arch_(arch), comm_(comm) {
  LBMEM_REQUIRE(graph.frozen(), "Schedule requires a frozen TaskGraph");
  first_start_.assign(graph.task_count(), Time{-1});
  instance_proc_.resize(graph.task_count());
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    instance_proc_[static_cast<std::size_t>(t)].assign(
        static_cast<std::size_t>(graph.instance_count(t)), kNoProc);
  }
}

void Schedule::set_first_start(TaskId t, Time start) {
  LBMEM_REQUIRE(t >= 0 && t < static_cast<TaskId>(graph_->task_count()),
                "task id out of range");
  LBMEM_REQUIRE(start >= 0, "start times must be non-negative");
  first_start_[static_cast<std::size_t>(t)] = start;
}

void Schedule::assign(TaskInstance inst, ProcId p) {
  LBMEM_REQUIRE(inst.task >= 0 &&
                    inst.task < static_cast<TaskId>(graph_->task_count()),
                "task id out of range");
  auto& procs = instance_proc_[static_cast<std::size_t>(inst.task)];
  LBMEM_REQUIRE(inst.k >= 0 &&
                    inst.k < static_cast<InstanceIdx>(procs.size()),
                "instance index out of range");
  LBMEM_REQUIRE(p >= 0 && p < arch_.processor_count(),
                "processor id out of range");
  procs[static_cast<std::size_t>(inst.k)] = p;
}

void Schedule::assign_all(TaskId t, ProcId p) {
  const InstanceIdx n = graph_->instance_count(t);
  for (InstanceIdx k = 0; k < n; ++k) {
    assign(TaskInstance{t, k}, p);
  }
}

bool Schedule::complete() const {
  for (std::size_t t = 0; t < first_start_.size(); ++t) {
    if (first_start_[t] < 0) return false;
    for (const ProcId p : instance_proc_[t]) {
      if (p == kNoProc) return false;
    }
  }
  return true;
}

Time Schedule::first_start(TaskId t) const {
  LBMEM_REQUIRE(t >= 0 && t < static_cast<TaskId>(graph_->task_count()),
                "task id out of range");
  const Time s = first_start_[static_cast<std::size_t>(t)];
  LBMEM_REQUIRE(s >= 0, "task has no start time yet");
  return s;
}

Time Schedule::start(TaskInstance inst) const {
  return first_start(inst.task) +
         graph_->task(inst.task).period * static_cast<Time>(inst.k);
}

Time Schedule::end(TaskInstance inst) const {
  return start(inst) + graph_->task(inst.task).wcet;
}

ProcId Schedule::proc(TaskInstance inst) const {
  LBMEM_REQUIRE(inst.task >= 0 &&
                    inst.task < static_cast<TaskId>(graph_->task_count()),
                "task id out of range");
  const auto& procs = instance_proc_[static_cast<std::size_t>(inst.task)];
  LBMEM_REQUIRE(inst.k >= 0 &&
                    inst.k < static_cast<InstanceIdx>(procs.size()),
                "instance index out of range");
  return procs[static_cast<std::size_t>(inst.k)];
}

Time Schedule::makespan() const {
  Time m = 0;
  for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count()); ++t) {
    const InstanceIdx n = graph_->instance_count(t);
    // The latest instance of a task is its last one.
    m = std::max(m, end(TaskInstance{t, n - 1}));
  }
  return m;
}

Time Schedule::data_ready(TaskInstance inst, ProcId p) const {
  Time ready = 0;
  for (const std::int32_t e : graph_->deps_in(inst.task)) {
    const Dependence& dep =
        graph_->dependences()[static_cast<std::size_t>(e)];
    for (const InstanceIdx pk : graph_->consumed_instances(e, inst.k)) {
      const TaskInstance producer{dep.producer, pk};
      const ProcId pp = proc(producer);
      LBMEM_REQUIRE(pp != kNoProc, "producer instance not yet placed");
      const Time comm =
          (pp == p) ? Time{0} : comm_.transfer_time(dep.data_size);
      ready = std::max(ready, end(producer) + comm);
    }
  }
  return ready;
}

Time Schedule::min_data_ready(TaskInstance inst) const {
  Time best = std::numeric_limits<Time>::max();
  for (ProcId p = 0; p < arch_.processor_count(); ++p) {
    best = std::min(best, data_ready(inst, p));
  }
  return best;
}

Mem Schedule::memory_on(ProcId p) const {
  Mem total = 0;
  for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count()); ++t) {
    const Mem m = graph_->task(t).memory;
    for (const ProcId q : instance_proc_[static_cast<std::size_t>(t)]) {
      if (q == p) total += m;
    }
  }
  return total;
}

std::vector<TaskInstance> Schedule::instances_on(ProcId p) const {
  std::vector<TaskInstance> result;
  for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count()); ++t) {
    const auto& procs = instance_proc_[static_cast<std::size_t>(t)];
    for (InstanceIdx k = 0; k < static_cast<InstanceIdx>(procs.size()); ++k) {
      if (procs[static_cast<std::size_t>(k)] == p) {
        result.push_back(TaskInstance{t, k});
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [this](const TaskInstance& a, const TaskInstance& b) {
              const Time sa = start(a);
              const Time sb = start(b);
              if (sa != sb) return sa < sb;
              return a < b;
            });
  return result;
}

std::vector<TaskInstance> Schedule::all_instances() const {
  std::vector<TaskInstance> result;
  result.reserve(graph_->total_instances());
  for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count()); ++t) {
    const InstanceIdx n = graph_->instance_count(t);
    for (InstanceIdx k = 0; k < n; ++k) {
      result.push_back(TaskInstance{t, k});
    }
  }
  return result;
}

Time Schedule::busy_on(ProcId p) const {
  Time busy = 0;
  for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count()); ++t) {
    const Time e = graph_->task(t).wcet;
    for (const ProcId q : instance_proc_[static_cast<std::size_t>(t)]) {
      if (q == p) busy += e;
    }
  }
  return busy;
}

double Schedule::idle_fraction(ProcId p) const {
  return 1.0 - static_cast<double>(busy_on(p)) /
                   static_cast<double>(graph_->hyperperiod());
}

Mem Schedule::max_memory() const {
  Mem worst = 0;
  for (ProcId p = 0; p < arch_.processor_count(); ++p) {
    worst = std::max(worst, memory_on(p));
  }
  return worst;
}

}  // namespace lbmem
