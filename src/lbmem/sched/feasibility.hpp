#pragma once
/// \file feasibility.hpp
/// \brief Analytic feasibility conditions for non-preemptive strict-
/// periodic tasks sharing one processor (the theory behind the paper's
/// ref [1], Cucu & Sorel).
///
/// Two strictly periodic non-preemptive tasks i and j with start times
/// S_i, S_j, WCETs E_i, E_j and periods T_i, T_j never overlap (over the
/// infinite schedule) iff, with g = gcd(T_i, T_j) and
/// d = (S_j - S_i) mod g:
///
///     E_i <= d   and   d + E_j <= g                      (Korst et al.)
///
/// i.e. the relative offset modulo the gcd leaves room for both
/// executions. This is the task-level (whole-task) condition; the
/// library's ProcTimeline works at instance granularity (instances may sit
/// on different processors), so these predicates serve as
///  * a fast necessary-and-sufficient test for whole-task co-residence,
///  * a schedulability pre-check for generators and tools, and
///  * an independent cross-check of ProcTimeline in property tests.

#include <optional>
#include <span>
#include <vector>

#include "lbmem/model/task_graph.hpp"
#include "lbmem/model/types.hpp"

namespace lbmem {

/// A placed strict-periodic task: start of the first instance + shape.
struct PlacedTask {
  Time start = 0;
  Time wcet = 0;
  Time period = 0;
};

/// Korst's condition: do tasks \p a and \p b (placed on one processor,
/// repeating forever) never overlap?
bool pairwise_compatible(const PlacedTask& a, const PlacedTask& b);

/// Are all \p tasks pairwise compatible on one processor?
/// O(n^2) pairwise checks — exact for whole-task placements.
bool all_compatible(std::span<const PlacedTask> tasks);

/// Given already-placed tasks, the earliest start >= \p lower_bound at
/// which a new task (wcet, period) is pairwise-compatible with all of
/// them; std::nullopt if none exists (search spans one period, by
/// periodicity of the condition in the start time).
std::optional<Time> earliest_compatible_start(
    std::span<const PlacedTask> placed, Time wcet, Time period,
    Time lower_bound);

/// Necessary utilization-style bound: strict-periodic tasks sharing one
/// processor need sum(E_i / gcd-weighted densities) <= 1 in the weak form
/// sum(E_i / T_i) <= 1. Returns the utilization sum.
double processor_utilization(std::span<const PlacedTask> tasks);

/// Necessary condition from the pairwise theory: for every pair,
/// E_i + E_j <= gcd(T_i, T_j). Violating any pair makes co-residence
/// impossible at any offsets. (Sufficient only for n = 2.)
bool pairwise_gcd_capacity(std::span<const PlacedTask> tasks);

/// Convenience: whole-task feasibility report for hosting a set of tasks
/// from \p graph on one processor, used by tools and the generator.
struct CoResidenceReport {
  bool gcd_capacity_ok = true;   ///< necessary condition
  double utilization = 0.0;      ///< sum E/T (must be <= 1)
  bool utilization_ok = true;
};
CoResidenceReport co_residence_report(const TaskGraph& graph,
                                      std::span<const TaskId> tasks);

}  // namespace lbmem
