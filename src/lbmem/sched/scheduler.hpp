#pragma once
/// \file scheduler.hpp
/// \brief The initial distributed scheduling heuristic (substitute for the
/// paper's ref [4], Kermia & Sorel PDCS'07).
///
/// The paper's load balancer runs on the output of a separate scheduler
/// that "seeks only to satisfy the dependence and strict periodicity
/// constraints". Since that scheduler is not public, we implement a
/// non-preemptive strict-periodic multiprocessor scheduler with two
/// placement policies:
///
///  * PeriodCluster — tasks are grouped by period ("the dependent tasks
///    which are at the same or multiple periods are scheduled onto the same
///    processor", paper Section 4); period groups are assigned round-robin
///    to processors in increasing period order. This policy reproduces the
///    paper's Figure 3 input schedule exactly.
///  * MinStartTime — each task (whole, all instances) is placed on the
///    processor giving its earliest feasible first start.
///
/// Both policies process tasks in topological order, compute the
/// precedence/communication lower bound for the first-instance start, and
/// find the earliest strict-periodically feasible start on the candidate
/// processor's hyper-period circle.

#include "lbmem/sched/schedule.hpp"
#include "lbmem/sched/timeline.hpp"

namespace lbmem {

/// Initial placement policy.
enum class PlacementPolicy {
  PeriodCluster,
  MinStartTime,
};

/// Scheduler configuration.
struct SchedulerOptions {
  PlacementPolicy policy = PlacementPolicy::PeriodCluster;
  /// When a PeriodCluster task does not fit on its cluster's processor,
  /// fall back to the earliest feasible processor instead of failing.
  bool cluster_fallback = true;
};

/// Build a complete initial schedule. Throws ScheduleError when no feasible
/// placement exists for some task under the policy.
Schedule build_initial_schedule(const TaskGraph& graph,
                                const Architecture& arch,
                                const CommModel& comm,
                                const SchedulerOptions& options = {});

/// Lower bound on the first-instance start of \p t on processor \p p given
/// producers already placed in \p sched: max over instances k of
/// (data_ready(t_k, p) - k*T). Exposed for tests.
Time precedence_lower_bound(const Schedule& sched, TaskId t, ProcId p);

/// Place whole task \p t on \p p with first start \p start: set the start,
/// assign every instance, and occupy the strict-periodic slots on the
/// processor's timeline. The single definition of the whole-task commit
/// sequence, shared by the initial schedulers and the online engine's
/// dirty-set repair.
void commit_whole_task(Schedule& sched, std::vector<ProcTimeline>& timelines,
                       TaskId t, ProcId p, Time start);

/// Build a schedule with a fixed whole-task processor assignment
/// (assignment[t] = processor of every instance of t); start times are the
/// earliest feasible under dependences and strict periodicity. Used by the
/// GA/round-robin baselines, which operate at task granularity.
/// Throws ScheduleError when the forced assignment is unschedulable.
Schedule build_forced_schedule(const TaskGraph& graph,
                               const Architecture& arch, const CommModel& comm,
                               const std::vector<ProcId>& assignment);

}  // namespace lbmem
