#include "lbmem/sched/feasibility.hpp"

#include <algorithm>

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

bool pairwise_compatible(const PlacedTask& a, const PlacedTask& b) {
  LBMEM_REQUIRE(a.wcet > 0 && b.wcet > 0 && a.period > 0 && b.period > 0,
                "tasks must have positive wcet and period");
  LBMEM_REQUIRE(a.wcet <= a.period && b.wcet <= b.period,
                "non-preemptive strict periodicity requires E <= T");
  const Time g = gcd64(a.period, b.period);
  const Time d = mod_floor(b.start - a.start, g);
  return a.wcet <= d && d + b.wcet <= g;
}

bool all_compatible(std::span<const PlacedTask> tasks) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t j = i + 1; j < tasks.size(); ++j) {
      if (!pairwise_compatible(tasks[i], tasks[j])) return false;
    }
  }
  return true;
}

std::optional<Time> earliest_compatible_start(
    std::span<const PlacedTask> placed, Time wcet, Time period,
    Time lower_bound) {
  LBMEM_REQUIRE(wcet > 0 && period > 0 && wcet <= period,
                "candidate must have 0 < wcet <= period");
  Time s = lower_bound;
  const Time limit = lower_bound + period;
  while (s < limit) {
    bool ok = true;
    Time jump = 1;
    for (const PlacedTask& other : placed) {
      const PlacedTask candidate{s, wcet, period};
      if (pairwise_compatible(other, candidate)) continue;
      ok = false;
      // The valid offsets (mod g = gcd of the periods) form the window
      // [other.wcet, g - wcet]; an empty window makes the pair impossible
      // at any start. Otherwise jump to the window's beginning — every
      // offset in between stays inside the contiguous invalid arc, so no
      // feasible start is skipped.
      const Time g = gcd64(period, other.period);
      if (other.wcet + wcet > g) return std::nullopt;
      const Time d = mod_floor(s - other.start, g);
      Time delta = mod_floor(other.wcet - d, g);
      if (delta == 0) delta = g;
      jump = delta;
      break;
    }
    if (ok) return s;
    s += jump;
  }
  return std::nullopt;
}

double processor_utilization(std::span<const PlacedTask> tasks) {
  double u = 0.0;
  for (const PlacedTask& t : tasks) {
    u += static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  return u;
}

bool pairwise_gcd_capacity(std::span<const PlacedTask> tasks) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t j = i + 1; j < tasks.size(); ++j) {
      const Time g = gcd64(tasks[i].period, tasks[j].period);
      if (tasks[i].wcet + tasks[j].wcet > g) return false;
    }
  }
  return true;
}

CoResidenceReport co_residence_report(const TaskGraph& graph,
                                      std::span<const TaskId> tasks) {
  std::vector<PlacedTask> placed;
  placed.reserve(tasks.size());
  for (const TaskId t : tasks) {
    const Task& task = graph.task(t);
    placed.push_back(PlacedTask{0, task.wcet, task.period});
  }
  CoResidenceReport report;
  report.gcd_capacity_ok = pairwise_gcd_capacity(placed);
  report.utilization = processor_utilization(placed);
  report.utilization_ok = report.utilization <= 1.0 + 1e-12;
  return report;
}

}  // namespace lbmem
