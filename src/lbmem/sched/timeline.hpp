#pragma once
/// \file timeline.hpp
/// \brief Per-processor occupancy on the hyper-period circle.
///
/// A strict-periodic schedule repeats with period H, so processor
/// exclusivity is equivalent to: the occupation intervals of all instances
/// placed on the processor are pairwise disjoint modulo H. ProcTimeline
/// maintains that circular occupancy and answers two questions:
///   * does an instance interval fit? (used by the validator and the load
///     balancer's overlap checks)
///   * what is the earliest start >= lb at which a whole strict-periodic
///     task (n instances spaced T apart) fits? (used by the scheduler)
///
/// Feasibility of a first-instance start S is periodic in S with period T:
/// shifting S by T reproduces the same occupied positions modulo H, so the
/// earliest-fit search only ever scans [lb, lb+T).
///
/// The balancer churns add/remove heavily (it re-attaches the instances of
/// every block it relocates), so the storage is organised for cheap
/// mutation (DESIGN.md F16): [0, H) is divided into at most kMaxBuckets
/// coarse time buckets of power-of-two width, and each bucket holds the
/// (sorted) pieces starting inside it. An add or remove then shifts only
/// one bucket's few pieces instead of memmoving a processor-wide sorted
/// array, and a conflict probe touches one bucket plus the global
/// predecessor. Pieces are pairwise disjoint, so only the immediate
/// predecessor of a query point can reach into it; a bitmap of non-empty
/// buckets finds that predecessor (and skips empty regions of sparse
/// timelines) with a couple of word scans. Removal stays indexed: an
/// owner -> piece-start table (open addressing, one flat backing array)
/// locates an owner's pieces in O(1) without a predicate scan.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "lbmem/model/types.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

/// When 1, add_unchecked() still performs the full fits() verification.
/// Defaults to on for debug/sanitizer builds and off for optimized builds;
/// override with -DLBMEM_TIMELINE_VERIFY=0/1.
#ifndef LBMEM_TIMELINE_VERIFY
#ifdef NDEBUG
#define LBMEM_TIMELINE_VERIFY 0
#else
#define LBMEM_TIMELINE_VERIFY 1
#endif
#endif

namespace lbmem {

/// Circular occupancy of one processor over the hyper-period [0, H).
class ProcTimeline {
 public:
  /// \param hyperperiod circle circumference H (> 0)
  explicit ProcTimeline(Time hyperperiod);

  /// Would interval [start, start+len) (repeated mod H) be free?
  bool fits(Time start, Time len) const;

  /// Occupy [start, start+len) for \p owner; throws PreconditionError if it
  /// does not fit. An owner may hold at most two pieces (one wrapping
  /// interval, or two separate adds).
  void add(Time start, Time len, TaskInstance owner);

  /// add() without the redundant conflict query, for callers that have
  /// already proven the interval free (a successful fits()/earliest_fit()
  /// probe, or insertion from a validated schedule). The contract is the
  /// caller's to uphold: adding an overlapping interval through this path
  /// corrupts the timeline in optimized builds. Under LBMEM_TIMELINE_VERIFY
  /// (debug/sanitizer builds) the full fits() check still runs and throws.
  void add_unchecked(Time start, Time len, TaskInstance owner);

  /// Release all intervals owned by \p owner (no-op if absent).
  void remove(TaskInstance owner);

  /// The owner of some interval overlapping [start, start+len), if any.
  std::optional<TaskInstance> conflicting_owner(Time start, Time len) const;

  /// Like conflicting_owner, but skips pieces whose owner satisfies
  /// \p ignore (a callable TaskInstance -> bool). Lets the balancer test a
  /// tentative placement against a timeline that still contains the very
  /// instances the move would relocate, without detaching them first.
  template <typename Ignore>
  std::optional<TaskInstance> conflicting_owner_if(Time start, Time len,
                                                   Ignore&& ignore) const {
    LBMEM_REQUIRE(len > 0 && len <= h_, "interval length must be in (0, H]");
    if (const Piece* p = find_conflict_circular(mod_floor(start, h_), len,
                                                ignore)) {
      return p->owner;
    }
    return std::nullopt;
  }

  /// Earliest S in [lb, lb+period) such that every instance interval
  /// [S + k*period, +wcet), k in [0, n), fits. std::nullopt if none exists.
  std::optional<Time> earliest_fit(Time lb, Time period, Time wcet,
                                   InstanceIdx n) const;

  /// Total occupied time within one hyper-period.
  Time busy_time() const;

  /// Hyper-period this timeline was built for.
  Time hyperperiod() const { return h_; }

  /// Number of stored (possibly split) interval pieces. Always equals the
  /// number of starts recorded in the owner index.
  std::size_t piece_count() const { return piece_count_; }

  /// Exhaustive structural audit for tests: every piece inside [0, H) and
  /// in its start's bucket, buckets sorted and globally disjoint, the
  /// non-empty bitmap and the piece counter consistent.
  bool check_index_integrity() const;

 private:
  struct Piece {
    Time start;  // in [0, H)
    Time len;    // start + len <= H (wrapping intervals are split)
    TaskInstance owner;
  };
  struct OwnerPieces {
    Time first = -1;
    Time second = -1;  // -1 = unused slot
  };

  /// Linear-probing owner -> OwnerPieces table with tombstone deletion and
  /// amortized rehashing. One backing vector: no allocation per insert.
  class OwnerIndex {
   public:
    OwnerPieces* find(TaskInstance key);
    /// Slot for \p key, inserting an empty record if absent.
    OwnerPieces& insert(TaskInstance key);
    void erase(TaskInstance key);

   private:
    struct Entry {
      TaskInstance key{-1, -1};  // task -1: empty; task -2: tombstone
      OwnerPieces val;
    };
    static bool empty_slot(const Entry& e) { return e.key.task == -1; }
    static bool tombstone(const Entry& e) { return e.key.task == -2; }
    std::size_t probe(TaskInstance key) const {
      // std::hash on integers is typically the identity; with a
      // power-of-two mask that would key every owner on its low (instance
      // index) bits and collapse the table into one cluster. Fibonacci
      // mixing spreads the packed (task, k) pair across the word first.
      const auto packed =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.task))
           << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.k));
      const std::uint64_t mixed = packed * 0x9e3779b97f4a7c15ULL;
      return static_cast<std::size_t>(mixed >> 32) & (table_.size() - 1);
    }
    void grow();

    std::vector<Entry> table_;  // power-of-two size
    std::size_t used_ = 0;      // live + tombstones
    std::size_t live_ = 0;
  };

  /// Never-ignore predicate: the default for unfiltered queries.
  struct NoIgnore {
    bool operator()(TaskInstance) const { return false; }
  };

  /// Bucket-count ceiling: wide enough to keep per-bucket populations
  /// small for realistic timelines, small enough that the bitmap stays in
  /// four words and per-timeline overhead stays a few KB.
  static constexpr Time kMaxBuckets = 256;

  std::size_t bucket_of(Time t) const {
    return static_cast<std::size_t>(t >> bucket_shift_);
  }

  /// Index of the last non-empty bucket <= \p b, or npos. One masked word
  /// scan per bitmap word, most-significant bit first.
  std::size_t prev_nonempty(std::size_t b) const {
    std::size_t word = b >> 6;
    std::uint64_t bits =
        nonempty_[word] & (~std::uint64_t{0} >> (63 - (b & 63)));
    while (true) {
      if (bits != 0) {
        return (word << 6) + 63 -
               static_cast<std::size_t>(__builtin_clzll(bits));
      }
      if (word == 0) return npos;
      bits = nonempty_[--word];
    }
  }

  /// Index of the first non-empty bucket >= \p b, or npos.
  std::size_t next_nonempty(std::size_t b) const {
    if (b >= buckets_.size()) return npos;
    std::size_t word = b >> 6;
    std::uint64_t bits = nonempty_[word] & (~std::uint64_t{0} << (b & 63));
    while (true) {
      if (bits != 0) {
        return (word << 6) +
               static_cast<std::size_t>(__builtin_ctzll(bits));
      }
      if (++word >= kWords) return npos;
      bits = nonempty_[word];
    }
  }

  /// The piece preceding position \p a (largest start < a), or nullptr.
  /// Pieces are disjoint, so it is the only piece that can reach past a.
  const Piece* predecessor(Time a) const {
    const std::size_t ba = bucket_of(a);
    const std::vector<Piece>& v = buckets_[ba];
    // Last piece in a's own bucket with start < a …
    auto it = std::lower_bound(
        v.begin(), v.end(), a,
        [](const Piece& p, Time value) { return p.start < value; });
    if (it != v.begin()) return &*(it - 1);
    if (ba == 0) return nullptr;
    // … else the last piece of the previous non-empty bucket.
    const std::size_t bp = prev_nonempty(ba - 1);
    if (bp == npos) return nullptr;
    return &buckets_[bp].back();
  }

  /// First piece intersecting the non-wrapping range [a, b) whose owner is
  /// not skipped by \p ignore — the single overlap scan every query shares.
  /// Priority order matches the historic flat-array scan: the predecessor
  /// reaching past a first, then pieces starting in [a, b) by start.
  template <typename Ignore = NoIgnore>
  const Piece* find_conflict(Time a, Time b, Ignore&& ignore = {}) const {
    if (a >= b || piece_count_ == 0) return nullptr;
    if (const Piece* prev = predecessor(a)) {
      if (prev->start + prev->len > a && !ignore(prev->owner)) return prev;
    }
    const std::size_t last = bucket_of(b - 1);
    for (std::size_t bi = next_nonempty(bucket_of(a));
         bi != npos && bi <= last; bi = next_nonempty(bi + 1)) {
      const std::vector<Piece>& v = buckets_[bi];
      std::size_t i = 0;
      if (bi == bucket_of(a)) {
        i = static_cast<std::size_t>(
            std::lower_bound(v.begin(), v.end(), a,
                             [](const Piece& p, Time value) {
                               return p.start < value;
                             }) -
            v.begin());
      }
      for (; i < v.size() && v[i].start < b; ++i) {
        if (!ignore(v[i].owner)) return &v[i];
      }
    }
    return nullptr;
  }

  /// Conflict lookup for [pos, pos+len) with pos in [0, H), splitting the
  /// wrap-around at H — the circular-interval primitive behind
  /// fits/conflicting_owner/conflicting_owner_if/earliest_fit.
  template <typename Ignore = NoIgnore>
  const Piece* find_conflict_circular(Time pos, Time len,
                                      Ignore&& ignore = {}) const {
    if (pos + len <= h_) return find_conflict(pos, pos + len, ignore);
    if (const Piece* p = find_conflict(pos, h_, ignore)) return p;
    return find_conflict(0, pos + len - h_, ignore);
  }

  void add_impl(Time start, Time len, TaskInstance owner);
  void insert_piece(Piece piece);
  void erase_piece_at(Time start, TaskInstance owner);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kWords =
      static_cast<std::size_t>(kMaxBuckets) / 64;

  Time h_;
  int bucket_shift_ = 0;  // bucket width 2^bucket_shift_
  // Pieces starting inside each bucket, sorted by start; globally pairwise
  // disjoint across buckets.
  std::vector<std::vector<Piece>> buckets_;
  std::uint64_t nonempty_[kWords] = {};  // bitmap of non-empty buckets
  std::size_t piece_count_ = 0;
  // Records the start(s) of each owner's pieces for indexed removal.
  OwnerIndex owner_index_;
};

}  // namespace lbmem
