#pragma once
/// \file timeline.hpp
/// \brief Per-processor occupancy on the hyper-period circle.
///
/// A strict-periodic schedule repeats with period H, so processor
/// exclusivity is equivalent to: the occupation intervals of all instances
/// placed on the processor are pairwise disjoint modulo H. ProcTimeline
/// maintains that circular occupancy and answers two questions:
///   * does an instance interval fit? (used by the validator and the load
///     balancer's overlap checks)
///   * what is the earliest start >= lb at which a whole strict-periodic
///     task (n instances spaced T apart) fits? (used by the scheduler)
///
/// Feasibility of a first-instance start S is periodic in S with period T:
/// shifting S by T reproduces the same occupied positions modulo H, so the
/// earliest-fit search only ever scans [lb, lb+T).

#include <optional>
#include <vector>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// Circular occupancy of one processor over the hyper-period [0, H).
class ProcTimeline {
 public:
  /// \param hyperperiod circle circumference H (> 0)
  explicit ProcTimeline(Time hyperperiod);

  /// Would interval [start, start+len) (repeated mod H) be free?
  bool fits(Time start, Time len) const;

  /// Occupy [start, start+len) for \p owner; throws PreconditionError if it
  /// does not fit.
  void add(Time start, Time len, TaskInstance owner);

  /// Release all intervals owned by \p owner (no-op if absent).
  void remove(TaskInstance owner);

  /// The owner of some interval overlapping [start, start+len), if any.
  std::optional<TaskInstance> conflicting_owner(Time start, Time len) const;

  /// Earliest S in [lb, lb+period) such that every instance interval
  /// [S + k*period, +wcet), k in [0, n), fits. std::nullopt if none exists.
  std::optional<Time> earliest_fit(Time lb, Time period, Time wcet,
                                   InstanceIdx n) const;

  /// Total occupied time within one hyper-period.
  Time busy_time() const;

  /// Hyper-period this timeline was built for.
  Time hyperperiod() const { return h_; }

  /// Number of stored (possibly split) interval pieces.
  std::size_t piece_count() const { return pieces_.size(); }

 private:
  struct Piece {
    Time start;  // in [0, H)
    Time len;    // start + len <= H (wrapping intervals are split)
    TaskInstance owner;
  };

  /// True if any piece intersects the non-wrapping range [a, b).
  bool range_occupied(Time a, Time b) const;
  const Piece* find_conflict(Time a, Time b) const;
  void insert_piece(Piece piece);

  Time h_;
  std::vector<Piece> pieces_;  // sorted by start, pairwise disjoint
};

}  // namespace lbmem
