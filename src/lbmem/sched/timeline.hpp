#pragma once
/// \file timeline.hpp
/// \brief Per-processor occupancy on the hyper-period circle.
///
/// A strict-periodic schedule repeats with period H, so processor
/// exclusivity is equivalent to: the occupation intervals of all instances
/// placed on the processor are pairwise disjoint modulo H. ProcTimeline
/// maintains that circular occupancy and answers two questions:
///   * does an instance interval fit? (used by the validator and the load
///     balancer's overlap checks)
///   * what is the earliest start >= lb at which a whole strict-periodic
///     task (n instances spaced T apart) fits? (used by the scheduler)
///
/// Feasibility of a first-instance start S is periodic in S with period T:
/// shifting S by T reproduces the same occupied positions modulo H, so the
/// earliest-fit search only ever scans [lb, lb+T).
///
/// The balancer churns add/remove heavily (it re-attaches the instances of
/// every block it relocates), so removal is indexed: an owner -> piece-start
/// index locates an owner's pieces in O(1) and each is erased after an
/// O(log n) binary search, instead of a full predicate scan over all
/// pieces. The index is a small open-addressing hash table backed by one
/// flat array, so steady-state churn performs no per-node heap allocation.

#include <algorithm>
#include <optional>
#include <vector>

#include "lbmem/model/types.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

/// Circular occupancy of one processor over the hyper-period [0, H).
class ProcTimeline {
 public:
  /// \param hyperperiod circle circumference H (> 0)
  explicit ProcTimeline(Time hyperperiod);

  /// Would interval [start, start+len) (repeated mod H) be free?
  bool fits(Time start, Time len) const;

  /// Occupy [start, start+len) for \p owner; throws PreconditionError if it
  /// does not fit. An owner may hold at most two pieces (one wrapping
  /// interval, or two separate adds).
  void add(Time start, Time len, TaskInstance owner);

  /// Release all intervals owned by \p owner (no-op if absent).
  void remove(TaskInstance owner);

  /// The owner of some interval overlapping [start, start+len), if any.
  std::optional<TaskInstance> conflicting_owner(Time start, Time len) const;

  /// Like conflicting_owner, but skips pieces whose owner satisfies
  /// \p ignore (a callable TaskInstance -> bool). Lets the balancer test a
  /// tentative placement against a timeline that still contains the very
  /// instances the move would relocate, without detaching them first.
  template <typename Ignore>
  std::optional<TaskInstance> conflicting_owner_if(Time start, Time len,
                                                   Ignore&& ignore) const {
    LBMEM_REQUIRE(len > 0 && len <= h_, "interval length must be in (0, H]");
    if (const Piece* p = find_conflict_circular(mod_floor(start, h_), len,
                                                ignore)) {
      return p->owner;
    }
    return std::nullopt;
  }

  /// Earliest S in [lb, lb+period) such that every instance interval
  /// [S + k*period, +wcet), k in [0, n), fits. std::nullopt if none exists.
  std::optional<Time> earliest_fit(Time lb, Time period, Time wcet,
                                   InstanceIdx n) const;

  /// Total occupied time within one hyper-period.
  Time busy_time() const;

  /// Hyper-period this timeline was built for.
  Time hyperperiod() const { return h_; }

  /// Number of stored (possibly split) interval pieces. Always equals the
  /// number of starts recorded in the owner index.
  std::size_t piece_count() const { return pieces_.size(); }

 private:
  struct Piece {
    Time start;  // in [0, H)
    Time len;    // start + len <= H (wrapping intervals are split)
    TaskInstance owner;
  };
  struct OwnerPieces {
    Time first = -1;
    Time second = -1;  // -1 = unused slot
  };

  /// Linear-probing owner -> OwnerPieces table with tombstone deletion and
  /// amortized rehashing. One backing vector: no allocation per insert.
  class OwnerIndex {
   public:
    OwnerPieces* find(TaskInstance key);
    /// Slot for \p key, inserting an empty record if absent.
    OwnerPieces& insert(TaskInstance key);
    void erase(TaskInstance key);

   private:
    struct Entry {
      TaskInstance key{-1, -1};  // task -1: empty; task -2: tombstone
      OwnerPieces val;
    };
    static bool empty_slot(const Entry& e) { return e.key.task == -1; }
    static bool tombstone(const Entry& e) { return e.key.task == -2; }
    std::size_t probe(TaskInstance key) const {
      // std::hash on integers is typically the identity; with a
      // power-of-two mask that would key every owner on its low (instance
      // index) bits and collapse the table into one cluster. Fibonacci
      // mixing spreads the packed (task, k) pair across the word first.
      const auto packed =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.task))
           << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.k));
      const std::uint64_t mixed = packed * 0x9e3779b97f4a7c15ULL;
      return static_cast<std::size_t>(mixed >> 32) & (table_.size() - 1);
    }
    void grow();

    std::vector<Entry> table_;  // power-of-two size
    std::size_t used_ = 0;      // live + tombstones
    std::size_t live_ = 0;
  };

  /// Never-ignore predicate: the default for unfiltered queries.
  struct NoIgnore {
    bool operator()(TaskInstance) const { return false; }
  };

  /// First piece intersecting the non-wrapping range [a, b) whose owner is
  /// not skipped by \p ignore — the single overlap scan every query shares.
  template <typename Ignore = NoIgnore>
  const Piece* find_conflict(Time a, Time b, Ignore&& ignore = {}) const {
    if (a >= b) return nullptr;
    // First piece with start >= a; the predecessor may still reach past a.
    auto it = std::lower_bound(
        pieces_.begin(), pieces_.end(), a,
        [](const Piece& p, Time value) { return p.start < value; });
    if (it != pieces_.begin()) {
      const Piece& prev = *(it - 1);
      if (prev.start + prev.len > a && !ignore(prev.owner)) return &prev;
    }
    for (; it != pieces_.end() && it->start < b; ++it) {
      if (!ignore(it->owner)) return &*it;
    }
    return nullptr;
  }

  /// Conflict lookup for [pos, pos+len) with pos in [0, H), splitting the
  /// wrap-around at H — the circular-interval primitive behind
  /// fits/conflicting_owner/conflicting_owner_if/earliest_fit.
  template <typename Ignore = NoIgnore>
  const Piece* find_conflict_circular(Time pos, Time len,
                                      Ignore&& ignore = {}) const {
    if (pos + len <= h_) return find_conflict(pos, pos + len, ignore);
    if (const Piece* p = find_conflict(pos, h_, ignore)) return p;
    return find_conflict(0, pos + len - h_, ignore);
  }

  void insert_piece(Piece piece);
  void erase_piece_at(Time start, TaskInstance owner);

  Time h_;
  std::vector<Piece> pieces_;  // sorted by start, pairwise disjoint
  // Records the start(s) of each owner's pieces for indexed removal.
  OwnerIndex owner_index_;
};

}  // namespace lbmem
