#include "lbmem/sched/scheduler.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "lbmem/util/check.hpp"

namespace lbmem {

Time precedence_lower_bound(const Schedule& sched, TaskId t, ProcId p) {
  const TaskGraph& graph = sched.graph();
  const Time period = graph.task(t).period;
  const InstanceIdx n = graph.instance_count(t);
  Time lb = 0;
  for (InstanceIdx k = 0; k < n; ++k) {
    const Time ready = sched.data_ready(TaskInstance{t, k}, p);
    lb = std::max(lb, ready - period * static_cast<Time>(k));
  }
  return std::max<Time>(lb, 0);
}

void commit_whole_task(Schedule& sched, std::vector<ProcTimeline>& timelines,
                       TaskId t, ProcId p, Time start) {
  const TaskGraph& graph = sched.graph();
  const Task& task = graph.task(t);
  sched.set_first_start(t, start);
  sched.assign_all(t, p);
  const InstanceIdx n = graph.instance_count(t);
  // Every caller commits a start that earliest_fit() just proved free, so
  // the conflict re-query inside a checked add would be pure overhead on
  // the scheduler and online-repair hot paths; debug builds still verify.
  for (InstanceIdx k = 0; k < n; ++k) {
    timelines[static_cast<std::size_t>(p)].add_unchecked(
        start + task.period * static_cast<Time>(k), task.wcet,
        TaskInstance{t, k});
  }
}

namespace {

struct Candidate {
  ProcId proc;
  Time start;
};

/// Earliest feasible placement of whole task \p t on processor \p p.
std::optional<Time> earliest_on(const Schedule& sched,
                                const ProcTimeline& timeline, TaskId t,
                                ProcId p) {
  const TaskGraph& graph = sched.graph();
  const Task& task = graph.task(t);
  const Time lb = precedence_lower_bound(sched, t, p);
  return timeline.earliest_fit(lb, task.period, task.wcet,
                               graph.instance_count(t));
}

/// Round-robin processor per period class, in increasing period order
/// (reproduces the paper's Figure 3 grouping: {a}->P1, {b,c}->P2,
/// {d,e}->P3).
std::map<Time, ProcId> cluster_assignment(const TaskGraph& graph,
                                          const Architecture& arch) {
  std::map<Time, ProcId> cluster_of_period;
  for (const auto& task : graph.tasks()) {
    cluster_of_period.emplace(task.period, kNoProc);
  }
  ProcId next = 0;
  for (auto& [period, proc] : cluster_of_period) {
    proc = next;
    next = static_cast<ProcId>((next + 1) % arch.processor_count());
  }
  return cluster_of_period;
}

}  // namespace

Schedule build_initial_schedule(const TaskGraph& graph,
                                const Architecture& arch,
                                const CommModel& comm,
                                const SchedulerOptions& options) {
  LBMEM_REQUIRE(graph.frozen(), "graph must be frozen");
  Schedule sched(graph, arch, comm);
  std::vector<ProcTimeline> timelines(
      static_cast<std::size_t>(arch.processor_count()),
      ProcTimeline(graph.hyperperiod()));

  const std::map<Time, ProcId> clusters =
      options.policy == PlacementPolicy::PeriodCluster
          ? cluster_assignment(graph, arch)
          : std::map<Time, ProcId>{};

  for (const TaskId t : graph.topological_order()) {
    std::optional<Candidate> chosen;

    if (options.policy == PlacementPolicy::PeriodCluster) {
      const ProcId home = clusters.at(graph.task(t).period);
      if (const auto s = earliest_on(
              sched, timelines[static_cast<std::size_t>(home)], t, home)) {
        chosen = Candidate{home, *s};
      } else if (!options.cluster_fallback) {
        throw ScheduleError("task " + graph.task(t).name +
                            " does not fit on its period-cluster processor");
      }
    }

    if (!chosen) {
      // MinStartTime policy, or cluster fallback: earliest over all
      // processors; ties broken by lower memory load, then index.
      for (ProcId p = 0; p < arch.processor_count(); ++p) {
        const auto s =
            earliest_on(sched, timelines[static_cast<std::size_t>(p)], t, p);
        if (!s) continue;
        if (!chosen || *s < chosen->start ||
            (*s == chosen->start &&
             sched.memory_on(p) < sched.memory_on(chosen->proc))) {
          chosen = Candidate{p, *s};
        }
      }
    }

    if (!chosen) {
      throw ScheduleError(
          "unschedulable: no feasible strict-periodic start for task " +
          graph.task(t).name);
    }
    commit_whole_task(sched, timelines, t, chosen->proc, chosen->start);
  }
  return sched;
}

Schedule build_forced_schedule(const TaskGraph& graph,
                               const Architecture& arch, const CommModel& comm,
                               const std::vector<ProcId>& assignment) {
  LBMEM_REQUIRE(graph.frozen(), "graph must be frozen");
  LBMEM_REQUIRE(assignment.size() == graph.task_count(),
                "assignment must cover every task");
  Schedule sched(graph, arch, comm);
  std::vector<ProcTimeline> timelines(
      static_cast<std::size_t>(arch.processor_count()),
      ProcTimeline(graph.hyperperiod()));
  for (const TaskId t : graph.topological_order()) {
    const ProcId p = assignment[static_cast<std::size_t>(t)];
    LBMEM_REQUIRE(p >= 0 && p < arch.processor_count(),
                  "assignment references an unknown processor");
    const auto s =
        earliest_on(sched, timelines[static_cast<std::size_t>(p)], t, p);
    if (!s) {
      throw ScheduleError("forced assignment unschedulable at task " +
                          graph.task(t).name);
    }
    commit_whole_task(sched, timelines, t, p, *s);
  }
  return sched;
}

}  // namespace lbmem
