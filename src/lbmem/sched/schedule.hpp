#pragma once
/// \file schedule.hpp
/// \brief A distributed strict-periodic schedule: first-instance start time
/// per task plus a processor assignment per instance.
///
/// Strict periodicity is global (DESIGN.md Section 6): instance k of task t
/// starts at first_start(t) + k*T(t) no matter which processor executes it —
/// the paper's worked example moves instance a2 to P2 while keeping its
/// start time 3. The load balancer therefore mutates two things only:
/// per-instance processor assignments, and (when a first-category block
/// gains time) a task's first-instance start.

#include <span>
#include <vector>

#include "lbmem/arch/architecture.hpp"
#include "lbmem/arch/comm_model.hpp"
#include "lbmem/model/task_graph.hpp"
#include "lbmem/model/types.hpp"

namespace lbmem {

/// Placement and timing of every task instance over one hyper-period.
///
/// The referenced TaskGraph must outlive the Schedule. Schedules are
/// value types (copyable) so the load balancer can work on a copy and fall
/// back to the original.
class Schedule {
 public:
  /// Create an empty schedule (no starts, no assignments).
  Schedule(const TaskGraph& graph, Architecture arch, CommModel comm);

  const TaskGraph& graph() const { return *graph_; }
  const Architecture& architecture() const { return arch_; }
  const CommModel& comm() const { return comm_; }

  // ---- mutation -----------------------------------------------------------

  /// Set the start time of the first instance of \p t (>= 0).
  void set_first_start(TaskId t, Time start);

  /// Assign instance (t, k) to processor \p p.
  void assign(TaskInstance inst, ProcId p);

  /// Assign every instance of \p t to \p p (initial whole-task placement).
  void assign_all(TaskId t, ProcId p);

  // ---- timing queries ----------------------------------------------------

  /// True once every task has a start and every instance a processor.
  bool complete() const;

  Time first_start(TaskId t) const;
  Time start(TaskInstance inst) const;
  Time end(TaskInstance inst) const;
  ProcId proc(TaskInstance inst) const;

  /// Completion time of the last instance — the paper's "total execution
  /// time" (makespan). Requires a complete schedule.
  Time makespan() const;

  /// Earliest time instance \p inst could begin on processor \p p given the
  /// current placement of its producers: max over dependences and consumed
  /// producer instances of end(producer) + C (C = 0 when the producer runs
  /// on \p p, else CommModel::transfer_time of the edge's data size).
  Time data_ready(TaskInstance inst, ProcId p) const;

  /// data_ready minimized over all processors — a lower bound no placement
  /// can beat (used for the F5 gain cap).
  Time min_data_ready(TaskInstance inst) const;

  // ---- memory & distribution queries --------------------------------------

  /// Sum of required memory of instances assigned to \p p (paper counts
  /// each resident instance: P1 holding four instances of a costs 4*m_a).
  Mem memory_on(ProcId p) const;

  /// Instances currently assigned to \p p, sorted by start time.
  std::vector<TaskInstance> instances_on(ProcId p) const;

  /// All instances of all tasks (every k of every task).
  std::vector<TaskInstance> all_instances() const;

  /// Busy time on \p p within one hyper-period (sum of instance WCETs).
  Time busy_on(ProcId p) const;

  /// Fraction of [0, H) processor \p p is idle in steady state.
  double idle_fraction(ProcId p) const;

  /// Largest per-processor memory (the paper's ω for Theorem 2).
  Mem max_memory() const;

 private:
  const TaskGraph* graph_;
  Architecture arch_;
  CommModel comm_;
  std::vector<Time> first_start_;                  // per task; -1 = unset
  std::vector<std::vector<ProcId>> instance_proc_; // per task, per instance
};

}  // namespace lbmem
