#pragma once
/// \file schedule.hpp
/// \brief A distributed strict-periodic schedule: first-instance start time
/// per task plus a processor assignment per instance.
///
/// Strict periodicity is global (DESIGN.md Section 6): instance k of task t
/// starts at first_start(t) + k*T(t) no matter which processor executes it —
/// the paper's worked example moves instance a2 to P2 while keeping its
/// start time 3. The load balancer therefore mutates two things only:
/// per-instance processor assignments, and (when a first-category block
/// gains time) a task's first-instance start.

#include <span>
#include <vector>

#include "lbmem/arch/architecture.hpp"
#include "lbmem/arch/comm_model.hpp"
#include "lbmem/model/task_graph.hpp"
#include "lbmem/model/types.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem {

/// Placement and timing of every task instance over one hyper-period.
///
/// The referenced TaskGraph must outlive the Schedule. Schedules are
/// value types (copyable) so the load balancer can work on a copy and fall
/// back to the original.
class Schedule {
 public:
  /// Create an empty schedule (no starts, no assignments).
  Schedule(const TaskGraph& graph, Architecture arch, CommModel comm);

  const TaskGraph& graph() const { return *graph_; }
  const Architecture& architecture() const { return arch_; }
  const CommModel& comm() const { return comm_; }

  // ---- mutation -----------------------------------------------------------

  /// Set the start time of the first instance of \p t (>= 0).
  void set_first_start(TaskId t, Time start);

  /// Assign instance (t, k) to processor \p p.
  void assign(TaskInstance inst, ProcId p);

  /// Assign every instance of \p t to \p p (initial whole-task placement).
  void assign_all(TaskId t, ProcId p);

  /// Recompute the per-processor memory/busy aggregates from the stored
  /// placements. assign() accumulates them with the task shapes current at
  /// assignment time, so a post-freeze TaskGraph::set_wcet leaves busy_on
  /// stale; the online engine calls this once per WcetChange event. O(I).
  void refresh_aggregates();

  // ---- timing queries (inline: the balancer's innermost reads) -----------

  /// True once every task has a start and every instance a processor. O(1).
  bool complete() const {
    return unset_starts_ == 0 && unassigned_instances_ == 0;
  }

  Time first_start(TaskId t) const {
    LBMEM_REQUIRE(t >= 0 && t < static_cast<TaskId>(graph_->task_count()),
                  "task id out of range");
    const Time s = first_start_[static_cast<std::size_t>(t)];
    LBMEM_REQUIRE(s >= 0, "task has no start time yet");
    return s;
  }
  Time start(TaskInstance inst) const {
    return first_start(inst.task) +
           graph_->task(inst.task).period * static_cast<Time>(inst.k);
  }
  Time end(TaskInstance inst) const {
    return start(inst) + graph_->task(inst.task).wcet;
  }
  ProcId proc(TaskInstance inst) const { return instance_proc_[slot(inst)]; }

  /// Completion time of the last instance — the paper's "total execution
  /// time" (makespan). Requires a complete schedule.
  Time makespan() const;

  /// Earliest time instance \p inst could begin on processor \p p given the
  /// current placement of its producers: max over dependences and consumed
  /// producer instances of end(producer) + C (C = 0 when the producer runs
  /// on \p p, else CommModel::transfer_time of the edge's data size).
  Time data_ready(TaskInstance inst, ProcId p) const;

  /// data_ready minimized over all processors — a lower bound no placement
  /// can beat (used for the F5 gain cap).
  Time min_data_ready(TaskInstance inst) const;

  // ---- memory & distribution queries --------------------------------------

  /// Sum of required memory of instances assigned to \p p (paper counts
  /// each resident instance: P1 holding four instances of a costs 4*m_a).
  /// O(1): maintained incrementally by assign().
  Mem memory_on(ProcId p) const {
    LBMEM_REQUIRE(p >= 0 && p < arch_.processor_count(),
                  "processor id out of range");
    return mem_on_[static_cast<std::size_t>(p)];
  }

  /// Instances currently assigned to \p p, sorted by start time.
  std::vector<TaskInstance> instances_on(ProcId p) const;

  /// All instances of all tasks (every k of every task).
  std::vector<TaskInstance> all_instances() const;

  /// Busy time on \p p within one hyper-period (sum of instance WCETs).
  /// O(1): maintained incrementally by assign().
  Time busy_on(ProcId p) const {
    LBMEM_REQUIRE(p >= 0 && p < arch_.processor_count(),
                  "processor id out of range");
    return busy_time_on_[static_cast<std::size_t>(p)];
  }

  /// Fraction of [0, H) processor \p p is idle in steady state.
  double idle_fraction(ProcId p) const;

  /// Largest per-processor memory (the paper's ω for Theorem 2). O(M).
  Mem max_memory() const;

 private:
  /// Dense index of (t, k) into instance_proc_, with bounds checks.
  std::size_t slot(TaskInstance inst) const {
    return graph_->dense_index(inst);
  }

  const TaskGraph* graph_;
  Architecture arch_;
  CommModel comm_;
  std::vector<Time> first_start_;  // per task; -1 = unset
  // CSR-style flat placement: instance (t, k) lives at
  // instance_proc_[graph_->dense_index({t, k})].
  std::vector<ProcId> instance_proc_;
  // Per-processor aggregates, kept in sync by assign(); unassigned
  // instances (kNoProc) contribute nowhere.
  std::vector<Mem> mem_on_;
  std::vector<Time> busy_time_on_;
  std::size_t unassigned_instances_ = 0;
  std::size_t unset_starts_ = 0;
};

}  // namespace lbmem
