#include "lbmem/arch/architecture.hpp"

#include <limits>

#include "lbmem/util/check.hpp"

namespace lbmem {

Architecture::Architecture(int processors, Mem memory_capacity)
    : processors_(processors), capacity_(memory_capacity) {
  if (processors < 1) {
    throw ModelError("architecture needs at least one processor");
  }
  if (memory_capacity != kUnlimitedMemory && memory_capacity < 0) {
    throw ModelError("memory capacity must be non-negative or unlimited");
  }
}

std::string Architecture::processor_name(ProcId p) const {
  LBMEM_REQUIRE(p >= 0 && p < processors_, "processor id out of range");
  std::string name = "P";
  name += std::to_string(p + 1);
  return name;
}

std::int64_t Architecture::processor_pairs() const {
  const auto m = static_cast<std::int64_t>(processors_);
  return m * (m - 1) / 2;
}

std::int64_t Architecture::paper_pair_count() const {
  std::int64_t f = 1;
  for (int i = 2; i <= processors_ - 1; ++i) {
    if (f > std::numeric_limits<std::int64_t>::max() / i) {
      return std::numeric_limits<std::int64_t>::max();
    }
    f *= i;
  }
  return f;
}

}  // namespace lbmem
