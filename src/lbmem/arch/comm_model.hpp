#pragma once
/// \file comm_model.hpp
/// \brief Inter-processor communication-time model.
///
/// The paper (Section 3.1) defines the communication time C as "the time
/// elapsed between the start time of the sending task and the completion
/// time of the receiving task" and notes it depends on the transferred data
/// size. The worked example uses a flat C = 1. We support both a flat cost
/// and an affine latency + size/bandwidth model; media are homogeneous and
/// contention-free (each processor pair has its own medium, the assumption
/// of Theorem 1).

#include "lbmem/model/types.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

/// Homogeneous communication-cost model.
class CommModel {
 public:
  /// Flat model: every transfer takes \p cost ticks (the paper's C).
  static CommModel flat(Time cost);

  /// Affine model: transfer of s units takes latency + ceil(s / bandwidth).
  static CommModel affine(Time latency, Mem bandwidth_units_per_tick);

  /// Time for transferring \p data_size units between two distinct
  /// processors. Returns 0 for a local (same-processor) "transfer".
  /// Inline: evaluated once per dependence on the balancer hot path.
  Time transfer_time(Mem data_size) const {
    LBMEM_REQUIRE(data_size >= 0, "negative data size");
    if (flat_cost_ >= 0) {
      return flat_cost_;
    }
    return latency_ + ceil_div(data_size, bandwidth_);
  }

  /// Largest transfer time over the given data sizes — the paper's γ
  /// (longest communication), used by the Theorem-1 bound.
  Time gamma(Mem max_data_size) const { return transfer_time(max_data_size); }

 private:
  CommModel(Time flat_cost, Time latency, Mem bandwidth);

  Time flat_cost_;   // < 0 when affine
  Time latency_;
  Mem bandwidth_;
};

}  // namespace lbmem
