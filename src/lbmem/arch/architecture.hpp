#pragma once
/// \file architecture.hpp
/// \brief Homogeneous distributed architecture description (paper
/// Section 1: identical processors, identical media, identical memory
/// capacity).

#include <string>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// Sentinel meaning "memory capacity not enforced".
inline constexpr Mem kUnlimitedMemory = -1;

/// A homogeneous multiprocessor: M identical processors, each with the same
/// (optionally bounded) data-memory capacity, fully interconnected
/// ("each two processors are connected by a communication medium",
/// paper Section 5.1).
class Architecture {
 public:
  /// \param processors number of processors M (>= 1)
  /// \param memory_capacity per-processor data memory, or kUnlimitedMemory
  explicit Architecture(int processors, Mem memory_capacity = kUnlimitedMemory);

  /// Number of processors M.
  int processor_count() const { return processors_; }

  /// Per-processor memory capacity, or kUnlimitedMemory.
  Mem memory_capacity() const { return capacity_; }

  /// True when a finite memory capacity must be respected.
  bool has_memory_limit() const { return capacity_ != kUnlimitedMemory; }

  /// Display name of processor \p p ("P1".."PM", matching the paper).
  std::string processor_name(ProcId p) const;

  /// Number of unordered processor pairs M(M-1)/2 (correct combinatorial
  /// count; contrast with the paper's (M-1)!, see DESIGN.md F3).
  std::int64_t processor_pairs() const;

  /// The paper's Theorem-1 pair count (M-1)! — kept so the Theorem-1 bench
  /// can report the bound exactly as printed in the paper. Saturates at
  /// INT64_MAX for M > 21.
  std::int64_t paper_pair_count() const;

 private:
  int processors_;
  Mem capacity_;
};

}  // namespace lbmem
