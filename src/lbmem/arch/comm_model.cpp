#include "lbmem/arch/comm_model.hpp"

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {

CommModel::CommModel(Time flat_cost, Time latency, Mem bandwidth)
    : flat_cost_(flat_cost), latency_(latency), bandwidth_(bandwidth) {}

CommModel CommModel::flat(Time cost) {
  if (cost < 0) {
    throw ModelError("flat communication cost must be non-negative");
  }
  return CommModel(cost, 0, 0);
}

CommModel CommModel::affine(Time latency, Mem bandwidth_units_per_tick) {
  if (latency < 0 || bandwidth_units_per_tick <= 0) {
    throw ModelError("affine comm model needs latency >= 0, bandwidth > 0");
  }
  return CommModel(-1, latency, bandwidth_units_per_tick);
}

}  // namespace lbmem
