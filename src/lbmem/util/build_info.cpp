#include "lbmem/util/build_info.hpp"

#include "lbmem/util/json.hpp"

#ifndef LBMEM_GIT_SHA
#define LBMEM_GIT_SHA "unknown"
#endif
#ifndef LBMEM_BUILD_TYPE
#define LBMEM_BUILD_TYPE "unknown"
#endif
#ifndef LBMEM_VERSION
#define LBMEM_VERSION "0.0.0"
#endif

namespace lbmem {

namespace {

std::string detect_compiler() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#elif defined(_MSC_VER)
  return "msvc " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{LBMEM_VERSION, LBMEM_GIT_SHA, detect_compiler(),
                              LBMEM_BUILD_TYPE};
  return info;
}

std::string build_info_json_members() {
  const BuildInfo& info = build_info();
  return "\"version\": \"" + json_escape(info.version) +
         "\", \"git_sha\": \"" + json_escape(info.git_sha) +
         "\", \"compiler\": \"" + json_escape(info.compiler) +
         "\", \"build_type\": \"" + json_escape(info.build_type) + "\"";
}

std::string build_info_line() {
  const BuildInfo& info = build_info();
  return "lbmem " + info.version + " (" + info.git_sha + ", " + info.compiler +
         ", " + info.build_type + ")";
}

}  // namespace lbmem
