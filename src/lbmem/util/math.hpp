#pragma once
/// \file math.hpp
/// \brief Exact integer helpers: gcd/lcm with overflow checking, ceiling
/// division, modular reduction into [0, m), and exact rational comparison.
///
/// All timing arithmetic in the library is exact 64-bit integer arithmetic;
/// hyper-period computations can overflow with adversarial period sets, so
/// lcm checks and throws instead of wrapping.

#include <cstdint>
#include <span>
#include <vector>

namespace lbmem {

/// Greatest common divisor of two non-negative values; gcd(0, x) == x.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Least common multiple; throws lbmem::ModelError on overflow or
/// non-positive input.
std::int64_t lcm64(std::int64_t a, std::int64_t b);

/// lcm over a sequence; throws lbmem::ModelError if empty or on overflow.
std::int64_t lcm_all(std::span<const std::int64_t> values);

/// ceil(a / b) for b > 0, exact for negative a as well.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// Reduce \p a into the canonical range [0, m) for m > 0 (true math modulo).
std::int64_t mod_floor(std::int64_t a, std::int64_t m);

/// Exact comparison of rationals a/b vs c/d with positive denominators,
/// without floating point. Returns -1, 0 or +1.
int compare_fractions(std::int64_t a, std::int64_t b, std::int64_t c,
                      std::int64_t d);

}  // namespace lbmem
