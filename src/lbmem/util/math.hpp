#pragma once
/// \file math.hpp
/// \brief Exact integer helpers: gcd/lcm with overflow checking, ceiling
/// division, modular reduction into [0, m), and exact rational comparison.
///
/// All timing arithmetic in the library is exact 64-bit integer arithmetic;
/// hyper-period computations can overflow with adversarial period sets, so
/// lcm checks and throws instead of wrapping.

#include <cstdint>
#include <span>
#include <vector>

#include "lbmem/util/check.hpp"

namespace lbmem {

/// Greatest common divisor of two non-negative values; gcd(0, x) == x.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Least common multiple; throws lbmem::ModelError on overflow or
/// non-positive input.
std::int64_t lcm64(std::int64_t a, std::int64_t b);

/// lcm over a sequence; throws lbmem::ModelError if empty or on overflow.
std::int64_t lcm_all(std::span<const std::int64_t> values);

/// ceil(a / b) for b > 0, exact for negative a as well. Inline: sits on the
/// balancer and scheduler hot paths.
inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  LBMEM_REQUIRE(b > 0, "ceil_div expects positive divisor");
  const std::int64_t q = a / b;
  const std::int64_t r = a % b;
  return q + (r > 0 ? 1 : 0);
}

/// Reduce \p a into the canonical range [0, m) for m > 0 (true math modulo).
/// Inline: called per overlap check on the hyper-period circle.
inline std::int64_t mod_floor(std::int64_t a, std::int64_t m) {
  LBMEM_REQUIRE(m > 0, "mod_floor expects positive modulus");
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

/// Exact comparison of rationals a/b vs c/d with positive denominators,
/// without floating point. Returns -1, 0 or +1. Inline: the fraction
/// policies compare candidate bounds with it on the balancer hot path.
inline int compare_fractions(std::int64_t a, std::int64_t b, std::int64_t c,
                             std::int64_t d) {
  LBMEM_REQUIRE(b > 0 && d > 0,
                "compare_fractions expects positive denominators");
  // 128-bit cross-multiplication avoids overflow; __int128 is a GCC/Clang
  // extension (hence __extension__ for -Wpedantic).
  __extension__ using Wide = __int128;
  const Wide lhs = static_cast<Wide>(a) * d;
  const Wide rhs = static_cast<Wide>(c) * b;
  if (lhs < rhs) return -1;
  if (lhs > rhs) return 1;
  return 0;
}

}  // namespace lbmem
