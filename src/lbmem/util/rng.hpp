#pragma once
/// \file rng.hpp
/// \brief Deterministic, seedable random number generation for workload
/// synthesis and the GA baseline.
///
/// We avoid std::mt19937/std::uniform_int_distribution because their output
/// is not guaranteed identical across standard libraries; benchmark suites
/// must generate bit-identical workloads everywhere. Xoshiro256** seeded via
/// SplitMix64, with explicit rejection-sampling range reduction.

#include <cstdint>
#include <span>
#include <vector>

namespace lbmem {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded through SplitMix64 so any 64-bit seed produces a good state.
class Rng {
 public:
  /// Construct from a 64-bit seed; equal seeds give equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi], inclusive; requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability \p p in [0, 1].
  bool chance(double p);

  /// Pick an index in [0, weights.size()) proportionally to weights;
  /// requires at least one strictly positive weight.
  std::size_t pick_weighted(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-instance streams).
  Rng split();

 private:
  std::uint64_t state_[4];
};

}  // namespace lbmem
