#pragma once
/// \file table.hpp
/// \brief Monospace table rendering for benchmark and example output.
///
/// The bench harness prints paper-versus-measured rows; Table keeps the
/// columns aligned without iostream manipulator noise at every call site.

#include <string>
#include <vector>

namespace lbmem {

/// A right-padded text table. Columns are sized to the widest cell.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append one row; pads or truncates to the header count.
  void add_row(std::vector<std::string> cells);

  /// Render with a header underline and two-space column gaps.
  std::string to_string() const;

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used throughout benches.
std::string format_double(double v, int precision = 3);

}  // namespace lbmem
