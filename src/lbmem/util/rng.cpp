#include "lbmem/util/rng.hpp"

#include <cmath>

#include "lbmem/util/check.hpp"

namespace lbmem {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  LBMEM_REQUIRE(lo <= hi, "uniform: empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r = next_u64();
  while (r >= limit) {
    r = next_u64();
  }
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  LBMEM_REQUIRE(!weights.empty(), "pick_weighted: no weights");
  double total = 0.0;
  for (const double w : weights) {
    LBMEM_REQUIRE(w >= 0.0 && std::isfinite(w), "pick_weighted: bad weight");
    total += w;
  }
  LBMEM_REQUIRE(total > 0.0, "pick_weighted: all weights zero");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace lbmem
