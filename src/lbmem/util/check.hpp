#pragma once
/// \file check.hpp
/// \brief Error-reporting helpers shared by all lbmem modules.
///
/// The library distinguishes two failure classes:
///  * programming errors (violated preconditions) -> LBMEM_REQUIRE, throws
///    lbmem::PreconditionError with file/line context;
///  * data errors (invalid models supplied by the user, unschedulable
///    systems) -> lbmem::ModelError / lbmem::ScheduleError.

#include <stdexcept>
#include <string>

namespace lbmem {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A violated API precondition (caller bug).
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// An invalid task graph or architecture description.
class ModelError : public Error {
 public:
  using Error::Error;
};

/// A scheduling failure (system unschedulable under the given policy).
class ScheduleError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace lbmem

/// Throw lbmem::PreconditionError unless \p expr holds.
#define LBMEM_REQUIRE(expr, msg)                                             \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::lbmem::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (false)
