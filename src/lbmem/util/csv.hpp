#pragma once
/// \file csv.hpp
/// \brief Minimal CSV writer so bench results can be post-processed
/// (plotting, regression tracking) without parsing log text.

#include <fstream>
#include <string>
#include <vector>

namespace lbmem {

/// Writes rows to a CSV file. Cells containing separators or quotes are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Open \p path for writing and emit the header row.
  /// Throws lbmem::Error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append a data row (padded to the header width).
  void add_row(const std::vector<std::string>& cells);

  ~CsvWriter();

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace lbmem
