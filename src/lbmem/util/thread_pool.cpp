#include "lbmem/util/thread_pool.hpp"

#include <algorithm>

#include "lbmem/util/check.hpp"

namespace lbmem {

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::resolve(int threads) {
  return threads <= 0 ? hardware_threads() : threads;
}

ThreadPool::ThreadPool(int threads) : thread_count_(resolve(threads)) {
  workers_.reserve(static_cast<std::size_t>(thread_count_ - 1));
  for (int i = 1; i < thread_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(const std::function<void(std::size_t)>& body,
                       std::size_t count) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || job_ != seen; });
      if (stop_) return;
      seen = job_;
      body = body_;
      count = count_;
    }
    drain(*body, count);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Serial fallback: no job setup, no synchronization.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    LBMEM_REQUIRE(body_ == nullptr,
                  "parallel_for is not reentrant on the same pool");
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++job_;
  }
  start_cv_.notify_all();
  drain(body, count);  // the caller is part of the team
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    body_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace lbmem
