#pragma once
/// \file stopwatch.hpp
/// \brief Wall-clock stopwatch used by the complexity study (Section 4 of
/// the paper) and the comparison benches.

#include <chrono>

namespace lbmem {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart timing from now.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction or last reset().
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lbmem
