#pragma once
/// \file build_info.hpp
/// \brief Build provenance (git SHA, compiler, build type, version) stamped
/// into every emitted artifact — `--metrics-out` / `--trace-spans` JSON,
/// the bench recorder context, and `lbmem_cli --version` — so a number can
/// always be traced back to the exact build that produced it.
///
/// The git SHA and build type are injected at configure time via per-file
/// compile definitions on build_info.cpp (see src/CMakeLists.txt); the
/// compiler string comes from predefined macros, so only the one .cpp
/// recompiles when the SHA changes.

#include <string>

namespace lbmem {

struct BuildInfo {
  std::string version;     ///< project version (CMake PROJECT_VERSION)
  std::string git_sha;     ///< short commit SHA, "+dirty" suffix, or "unknown"
  std::string compiler;    ///< e.g. "gcc 13.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE, or "unknown"
};

/// The process's build provenance (static data, always available).
const BuildInfo& build_info();

/// The provenance as JSON object *members* (no surrounding braces), e.g.
///   "version": "0.1.0", "git_sha": "abc1234", ...
/// so emitters can splice it under whatever key they use ("build" here,
/// "otherData" in the Chrome trace format).
std::string build_info_json_members();

/// One-line human rendering for `lbmem_cli --version`.
std::string build_info_line();

}  // namespace lbmem
