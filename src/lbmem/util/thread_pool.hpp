#pragma once
/// \file thread_pool.hpp
/// \brief Reusable work-queue thread pool behind the library's `threads`
/// knobs (DESIGN.md F19/F20): `parallel_for(count, body)` runs body(i)
/// for every i in [0, count) across the pool's workers plus the calling
/// thread, and blocks until every index completed.
///
/// The pool is an execution accelerator, never a semantics knob: callers
/// own determinism by construction — each index writes its own pre-sized
/// slot and reads only shared-immutable state, so any schedule of the
/// indices produces the same result, and every reduction over the slots
/// happens on the calling thread afterwards, in index order.
///
/// Indices are claimed from a single atomic counter (dynamic
/// load-balancing: a worker stuck on an expensive index never strands
/// cheap ones behind it). With `threads <= 1`, zero workers are spawned
/// and parallel_for degenerates to an inline loop on the caller — the
/// serial fallback costs no synchronization at all.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lbmem {

class ThreadPool {
 public:
  /// Spawns `resolve(threads) - 1` workers (the calling thread is the
  /// remaining member of the team).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Team size including the calling thread (>= 1).
  int thread_count() const { return thread_count_; }

  /// Run body(i) for every i in [0, count); returns once all completed.
  /// The first exception thrown by any invocation is rethrown here (the
  /// remaining indices still run — slots stay fully written). Must not be
  /// called from inside another parallel_for on the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency(), clamped to >= 1 (the standard
  /// allows 0 for "unknown").
  static int hardware_threads();

  /// The knob contract shared by every `threads` option: 0 (and any
  /// negative value) resolves to hardware_threads(), anything else is
  /// taken literally.
  static int resolve(int threads);

 private:
  void worker_loop();
  /// Claim and run indices of the current job; records the first error.
  void drain(const std::function<void(std::size_t)>& body, std::size_t count);

  int thread_count_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;  // workers wait here between jobs
  std::condition_variable done_cv_;   // the caller waits here per job
  std::uint64_t job_ = 0;             // generation counter; bumps per job
  bool stop_ = false;
  std::size_t count_ = 0;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t active_workers_ = 0;  // workers still inside the current job
  std::exception_ptr error_;
  std::atomic<std::size_t> next_{0};  // next unclaimed index
};

}  // namespace lbmem
