#pragma once
/// \file json.hpp
/// \brief The one JSON string escaper, shared by every JSON emitter
/// (report/ renderers, the bench recorders). Task names, reject reasons
/// and solver details are free-form — quotes, backslashes and control
/// characters (\u-escaped, newlines included) must never produce an
/// invalid artifact, and one definition keeps the emitters consistent.

#include <cstdio>
#include <string>

namespace lbmem {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(ch)));
      out += buffer;
    } else {
      out += ch;
    }
  }
  return out;
}

}  // namespace lbmem
