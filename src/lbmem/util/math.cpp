#include "lbmem/util/math.hpp"

#include <numeric>

#include "lbmem/util/check.hpp"

namespace lbmem {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  LBMEM_REQUIRE(a >= 0 && b >= 0, "gcd64 expects non-negative inputs");
  return std::gcd(a, b);
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  if (a <= 0 || b <= 0) {
    throw ModelError("lcm64 requires positive inputs");
  }
  const std::int64_t g = std::gcd(a, b);
  const std::int64_t a_red = a / g;
  // Overflow check: a_red * b must fit in int64.
  if (a_red != 0 && b > INT64_MAX / a_red) {
    throw ModelError("lcm64 overflow: hyper-period exceeds 2^63-1");
  }
  return a_red * b;
}

std::int64_t lcm_all(std::span<const std::int64_t> values) {
  if (values.empty()) {
    throw ModelError("lcm_all requires at least one value");
  }
  std::int64_t acc = 1;
  for (const std::int64_t v : values) {
    acc = lcm64(acc, v);
  }
  return acc;
}


}  // namespace lbmem
