#include "lbmem/util/csv.hpp"

#include "lbmem/util/check.hpp"

namespace lbmem {
namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw Error("CsvWriter: cannot open " + path);
  }
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  auto padded = cells;
  padded.resize(columns_);
  write_row(padded);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() {
  out_.flush();
}

}  // namespace lbmem
