#pragma once
/// \file runner.hpp
/// \brief Trace replay harness: applies an event trace to a Rebalancer,
/// validates the schedule after every event, and aggregates per-event
/// metrics into an OnlineReport (rendered by report/online.hpp).

#include <vector>

#include "lbmem/obs/metrics.hpp"
#include "lbmem/online/rebalancer.hpp"

namespace lbmem {

/// Replay configuration.
struct ReplayOptions {
  /// Run validate/ (plus a failed-processor-is-empty check) after every
  /// event and record the violation count. The acceptance bar for the
  /// subsystem is zero violations after every applied event.
  bool validate_each = true;
  /// Abort the replay at the first rejected event (default: keep going —
  /// a rejected event leaves the previous valid state in place).
  bool stop_on_reject = false;
};

/// Replay results: the per-event outcomes plus trajectory aggregates.
struct OnlineReport {
  std::vector<EventOutcome> events;
  /// Validator violations after each event (parallel to `events`; always 0
  /// for a correct engine; -1 when validation was disabled).
  std::vector<int> violations;

  int applied = 0;
  int rejected = 0;
  /// Events parked by the degraded backoff rung (neither applied nor
  /// rejected at their own tick; their re-attempt outcomes ride along in
  /// EventOutcome::resolved_pending and are aggregated here too).
  int deferred = 0;
  int total_violations = 0;
  int total_migrations = 0;
  int total_repaired = 0;
  int total_balance_moves = 0;
  /// Full-resolve outcomes discarded for re-populating a failed processor
  /// (see EventOutcome::resolver_discarded; 0 outside resolver mode).
  int total_resolver_discards = 0;
  /// Degraded-mode ladder totals (DESIGN.md F28; all 0 with the ladder
  /// off): widened-scope retry attempts, recoveries per rung, the deepest
  /// rung any event needed, and every shed task in shed order.
  int total_retries = 0;
  int recovered_retry = 0;
  int recovered_replace = 0;
  int recovered_resolve = 0;
  int recovered_shed = 0;
  int degraded_mode = 0;
  std::vector<std::string> shed;
  Time total_balance_gain = 0;
  /// Worst per-processor memory seen anywhere along the trajectory.
  Mem peak_max_memory = 0;
  Time final_makespan = 0;
  Mem final_max_memory = 0;
  double total_wall_seconds = 0.0;
  double max_wall_seconds = 0.0;
  /// Per-event repair latency in microseconds (one sample per event; the
  /// p50/p99 columns of report/online come from here). Wall clock — a
  /// timing figure, stripped by the report layer under --timing=off.
  obs::LatencyHistogram repair_latency_us;
  /// Per-applied-event dirty-set size (blocks re-evaluated by the balance
  /// stage). Deterministic: a property of the decision sequence.
  obs::LatencyHistogram dirty_blocks;
};

/// Replays traces against a Rebalancer.
class OnlineRunner {
 public:
  explicit OnlineRunner(ReplayOptions options = {});

  /// Apply every event of \p trace to \p system in order.
  OnlineReport replay(Rebalancer& system, const EventTrace& trace) const;

  const ReplayOptions& options() const { return options_; }

 private:
  ReplayOptions options_;
};

}  // namespace lbmem
