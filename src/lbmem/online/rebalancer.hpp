#pragma once
/// \file rebalancer.hpp
/// \brief Event-driven schedule repair with warm-start incremental
/// balancing — the online subsystem's core engine.
///
/// The Rebalancer owns a running system (task graph + valid schedule +
/// failed-processor set) and applies runtime events to it:
///
///  1. **Patch** — the event is turned into a *dirty task set* and the
///     schedule is repaired constructively: dirty tasks are re-placed
///     whole (earliest feasible strict-periodic start over the alive
///     processors, preferring their previous processor), in topological
///     order, cascading to consumers whose data-readiness the re-placement
///     broke (DESIGN.md F11). Task arrivals/removals rebuild the frozen
///     TaskGraph and migrate the surviving placements (DESIGN.md F10/F13).
///  2. **Warm-start incremental balance** — only the blocks around the
///     dirtied tasks are re-decomposed (build_blocks_around) and re-run
///     through the paper's heuristic (LoadBalancer::rebalance), reusing
///     the engine's persistently maintained all-instances occupancy
///     instead of rebuilding it, and pricing migrations through
///     BalanceOptions::migration_penalty (DESIGN.md F9/F12).
///
/// Every applied event leaves a schedule that passes validate/ — events
/// whose repair is infeasible are *rejected*: the pre-event state is kept
/// untouched (including un-marking a failed processor, DESIGN.md F14) and
/// the outcome reports the reason.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/online/event.hpp"
#include "lbmem/sched/timeline.hpp"

namespace lbmem {

class Solver;  // api/solver.hpp

/// Online-engine configuration.
struct RebalancerOptions {
  /// Policy of the balance stage (including migration_penalty and memory-
  /// capacity enforcement). closed_procs is managed by the engine.
  BalanceOptions balance;
  /// Warm-start incremental balance over the dirty neighborhood (true) or
  /// a from-scratch full resolve after every patch (false; the baseline
  /// the bench compares against).
  bool incremental = true;
  /// Skip the balance stage entirely (repair-only mode).
  bool rebalance = true;
  /// Solver-backed full-resolve mode (DESIGN.md F18): when set and
  /// incremental == false, the balance stage hands the whole post-repair
  /// schedule to this facade solver (via Problem::adopt) instead of
  /// running LoadBalancer::balance. The solver's valid outcome is adopted
  /// as-is — the caller picked its authority; an infeasible outcome keeps
  /// the repaired schedule (reported as balance_fell_back). The Problem
  /// spec carries no failed-processor set, so the engine guards the
  /// invariant itself: an outcome that places anything on a failed
  /// processor is discarded (EventOutcome::resolver_discarded, counted by
  /// OnlineReport) and the repaired schedule stands — from-scratch
  /// whole-task resolvers re-place everything and therefore degrade to
  /// repair-only once a processor has failed; instance-granular refiners
  /// (the heuristic adapters) are the intended resolvers on lossy
  /// architectures. The configured solver, not `balance`, decides policy
  /// and capacity handling in this mode.
  std::shared_ptr<const Solver> full_resolver;
  /// Observability sink (DESIGN.md F25): when set, every apply() folds
  /// its outcome into this registry — applied/rejected counters, the
  /// repaired-tasks / migration totals, the dirty-set-size histogram
  /// (Deterministic class) and the per-event repair-latency histogram
  /// (Timing class). The balance stage inherits the pointer through
  /// BalanceOptions::metrics unless `balance.metrics` was already set.
  /// The registry must outlive the engine.
  obs::Registry* metrics = nullptr;
};

/// What one event did to the system.
struct EventOutcome {
  Event event;
  /// False: the event was infeasible; the state was rolled back untouched.
  bool applied = false;
  std::string reject_reason;
  /// The event rebuilt the task graph (arrival/removal epoch).
  bool graph_rebuilt = false;
  /// The hyper-period changed and every task was re-placed (DESIGN.md F13).
  bool full_replace = false;
  /// Tasks re-placed by the dirty-set repair (cascade included).
  int repaired_tasks = 0;
  /// Blocks re-evaluated by the balance stage.
  int dirty_blocks = 0;
  /// Surviving instances whose processor changed across the event.
  int migrated_instances = 0;
  /// Balance-stage movement and gain (0 when the stage is off/fell back).
  int balance_moves = 0;
  Time balance_gain = 0;
  bool balance_fell_back = false;
  /// Full-resolve mode only: the configured solver produced a valid
  /// schedule, but it re-populated a failed processor and was discarded
  /// (the repaired schedule stands). Distinct from balance_fell_back's
  /// ordinary infeasibility so a from-scratch resolver that degrades to
  /// repair-only after a ProcessorFailure is visible, not silent.
  bool resolver_discarded = false;
  /// Post-event system state.
  Time makespan = 0;
  Mem max_memory = 0;
  int alive_tasks = 0;
  int alive_procs = 0;
  /// Patch + balance latency.
  double wall_seconds = 0.0;
};

/// The online engine. Construction takes ownership of the graph the
/// schedule references (arrival/removal events replace it).
class Rebalancer {
 public:
  /// \p schedule must be complete, valid, and reference \p graph.
  Rebalancer(std::unique_ptr<TaskGraph> graph, Schedule schedule,
             RebalancerOptions options = {});

  /// Convenience: deep-copies \p graph and rebinds a copy of \p schedule
  /// to the copy (callers keep their originals).
  static Rebalancer adopt(const TaskGraph& graph, const Schedule& schedule,
                          RebalancerOptions options = {});

  /// Apply one event: patch, repair, incrementally rebalance. Returns the
  /// outcome; on rejection the system is exactly as before the call.
  EventOutcome apply(const Event& event);

  /// Convenience for the robustness harness and failover tests: a
  /// ProcessorFailure observed at simulated tick \p at. Equivalent to
  /// apply(Event{at, ProcessorFailure{proc}}).
  EventOutcome fail_processor(ProcId proc, Time at = 0);

  const TaskGraph& graph() const { return *graph_; }
  const Schedule& schedule() const { return *sched_; }
  const RebalancerOptions& options() const { return options_; }

  /// Per-processor failed flags (size M).
  const std::vector<std::uint8_t>& failed_procs() const { return failed_; }
  int alive_processor_count() const;

 private:
  struct Patched;  // candidate post-patch state (rebalancer.cpp)

  static Patched full_replace_candidate(const TaskGraph& graph,
                                        const Schedule& pre);
  void commit(Patched&& candidate, std::unique_ptr<TaskGraph> new_graph);
  void run_balance_stage(const std::vector<TaskId>& seeds,
                         EventOutcome& out);
  void run_full_resolver(EventOutcome& out);

  RebalancerOptions options_;
  std::unique_ptr<TaskGraph> graph_;
  std::optional<Schedule> sched_;
  std::vector<std::uint8_t> failed_;
  /// Warm all-instances occupancy, always mirroring *sched_.
  std::vector<ProcTimeline> occ_;
};

}  // namespace lbmem
