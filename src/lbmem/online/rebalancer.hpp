#pragma once
/// \file rebalancer.hpp
/// \brief Event-driven schedule repair with warm-start incremental
/// balancing — the online subsystem's core engine.
///
/// The Rebalancer owns a running system (task graph + valid schedule +
/// failed-processor set) and applies runtime events to it:
///
///  1. **Patch** — the event is turned into a *dirty task set* and the
///     schedule is repaired constructively: dirty tasks are re-placed
///     whole (earliest feasible strict-periodic start over the alive
///     processors, preferring their previous processor), in topological
///     order, cascading to consumers whose data-readiness the re-placement
///     broke (DESIGN.md F11). Task arrivals/removals rebuild the frozen
///     TaskGraph and migrate the surviving placements (DESIGN.md F10/F13).
///  2. **Warm-start incremental balance** — only the blocks around the
///     dirtied tasks are re-decomposed (build_blocks_around) and re-run
///     through the paper's heuristic (LoadBalancer::rebalance), reusing
///     the engine's persistently maintained all-instances occupancy
///     instead of rebuilding it, and pricing migrations through
///     BalanceOptions::migration_penalty (DESIGN.md F9/F12).
///
/// Every applied event leaves a schedule that passes validate/ — events
/// whose repair is infeasible are *rejected*: the pre-event state is kept
/// untouched (including un-marking a failed processor, DESIGN.md F14) and
/// the outcome reports the reason.
///
/// With DegradedOptions::enabled the engine instead escalates through the
/// degraded-mode repair ladder (DESIGN.md F28) before giving up: widened-
/// scope retries (optionally after a backoff of K events), a constructive
/// re-place of every task, a Solver-backed full resolve, and finally
/// explicit load shedding — dropping the lowest-priority tasks into a
/// reported `shed` set instead of failing hard. Each rung preserves the
/// F14 contract: a rung that does not produce a valid schedule leaves the
/// system exactly as before.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/online/event.hpp"
#include "lbmem/sched/timeline.hpp"

namespace lbmem {

class Solver;  // api/solver.hpp

/// Degraded-mode repair ladder configuration (DESIGN.md F28). Disabled by
/// default, in which case a rejected dirty-set repair escalates once to a
/// full re-place (the historic F11 behavior) and then rejects.
struct DegradedOptions {
  /// Run the ladder when the dirty-set repair (and the historic full
  /// re-place escalation) would otherwise reject the event.
  bool enabled = false;
  /// Rung 1 bound: widened-scope repair retries. Each retry grows the
  /// dirty set by one dependency ring (producers and consumers of every
  /// dirty task); retries stop early once widening reaches a fixpoint.
  int max_retries = 2;
  /// Retry backoff: when > 0, a repair whose first attempt is rejected is
  /// *parked* instead of escalated — the event defers (state untouched,
  /// EventOutcome::deferred) and is re-attempted, ladder and all, after
  /// this many subsequent apply() calls. 0 runs the ladder inline.
  int backoff_events = 0;
  /// Rung 4 bound: the most tasks the shed rung may drop for one event.
  int max_shed = 4;
  /// Rung 3 solver (full resolve of the running system). Falls back to
  /// RebalancerOptions::full_resolver when null; the rung is skipped when
  /// neither is set or when the event rebuilt the task graph.
  std::shared_ptr<const Solver> resolver;
};

/// Online-engine configuration.
struct RebalancerOptions {
  /// Policy of the balance stage (including migration_penalty and memory-
  /// capacity enforcement). closed_procs is managed by the engine.
  BalanceOptions balance;
  /// Warm-start incremental balance over the dirty neighborhood (true) or
  /// a from-scratch full resolve after every patch (false; the baseline
  /// the bench compares against).
  bool incremental = true;
  /// Skip the balance stage entirely (repair-only mode).
  bool rebalance = true;
  /// Solver-backed full-resolve mode (DESIGN.md F18): when set and
  /// incremental == false, the balance stage hands the whole post-repair
  /// schedule to this facade solver (via Problem::adopt) instead of
  /// running LoadBalancer::balance. The solver's valid outcome is adopted
  /// as-is — the caller picked its authority; an infeasible outcome keeps
  /// the repaired schedule (reported as balance_fell_back). The Problem
  /// spec carries no failed-processor set, so the engine guards the
  /// invariant itself: an outcome that places anything on a failed
  /// processor is discarded (EventOutcome::resolver_discarded, counted by
  /// OnlineReport) and the repaired schedule stands — from-scratch
  /// whole-task resolvers re-place everything and therefore degrade to
  /// repair-only once a processor has failed; instance-granular refiners
  /// (the heuristic adapters) are the intended resolvers on lossy
  /// architectures. The configured solver, not `balance`, decides policy
  /// and capacity handling in this mode.
  std::shared_ptr<const Solver> full_resolver;
  /// Observability sink (DESIGN.md F25): when set, every apply() folds
  /// its outcome into this registry — applied/rejected counters, the
  /// repaired-tasks / migration totals, the dirty-set-size histogram
  /// (Deterministic class) and the per-event repair-latency histogram
  /// (Timing class). The balance stage inherits the pointer through
  /// BalanceOptions::metrics unless `balance.metrics` was already set.
  /// The registry must outlive the engine.
  obs::Registry* metrics = nullptr;
  /// Degraded-mode repair ladder (DESIGN.md F28).
  DegradedOptions degraded;
  /// Stale-load decisions (DESIGN.md F29): when > 0, the per-processor
  /// memory aggregate the repair's placement tie-break consults is frozen
  /// at event entry and only refreshed every K apply() calls — the
  /// stale-information failure mode of distributed load balancers.
  /// Staleness degrades placement *quality* only: capacity projections
  /// and occupancy timelines stay live, so feasibility is never decided
  /// on stale data. 0 consults the live aggregates.
  int staleness_events = 0;
};

/// What one event did to the system.
struct EventOutcome {
  Event event;
  /// False: the event was infeasible; the state was rolled back untouched.
  bool applied = false;
  std::string reject_reason;
  /// The event rebuilt the task graph (arrival/removal epoch).
  bool graph_rebuilt = false;
  /// The hyper-period changed and every task was re-placed (DESIGN.md F13).
  bool full_replace = false;
  /// Tasks re-placed by the dirty-set repair (cascade included).
  int repaired_tasks = 0;
  /// Blocks re-evaluated by the balance stage.
  int dirty_blocks = 0;
  /// Surviving instances whose processor changed across the event.
  int migrated_instances = 0;
  /// Balance-stage movement and gain (0 when the stage is off/fell back).
  int balance_moves = 0;
  Time balance_gain = 0;
  bool balance_fell_back = false;
  /// Full-resolve mode only: the configured solver produced a valid
  /// schedule, but it re-populated a failed processor and was discarded
  /// (the repaired schedule stands). Distinct from balance_fell_back's
  /// ordinary infeasibility so a from-scratch resolver that degrades to
  /// repair-only after a ProcessorFailure is visible, not silent.
  bool resolver_discarded = false;
  /// Degraded-mode ladder (DESIGN.md F28): the rung that produced the
  /// committed schedule. 0 = the plain dirty-set repair (or the historic
  /// full re-place escalation) sufficed; 1 = widened-scope retry;
  /// 2 = constructive re-place of every task; 3 = Solver-backed full
  /// resolve; 4 = load shedding.
  int degraded_rung = 0;
  /// Widened-scope retry attempts consumed (rung 1), whether or not one
  /// of them succeeded.
  int degraded_retries = 0;
  /// The event was parked for backoff (DegradedOptions::backoff_events):
  /// the system is untouched (like a reject — applied stays false,
  /// reject_reason carries the first attempt's failure) and the event
  /// will be re-attempted after the backoff expires.
  bool deferred = false;
  /// Tasks dropped by the shed rung (names, in shed order). The tasks are
  /// gone from the running graph; Rebalancer::shed_tasks() accumulates
  /// them across events.
  std::vector<std::string> shed;
  /// Outcomes of previously deferred events whose backoff expired during
  /// this apply() (re-attempted ladder-first, oldest first).
  std::vector<EventOutcome> resolved_pending;
  /// Post-event system state.
  Time makespan = 0;
  Mem max_memory = 0;
  int alive_tasks = 0;
  int alive_procs = 0;
  /// Patch + balance latency.
  double wall_seconds = 0.0;
};

/// The online engine. Construction takes ownership of the graph the
/// schedule references (arrival/removal events replace it).
class Rebalancer {
 public:
  /// \p schedule must be complete, valid, and reference \p graph.
  Rebalancer(std::unique_ptr<TaskGraph> graph, Schedule schedule,
             RebalancerOptions options = {});

  /// Convenience: deep-copies \p graph and rebinds a copy of \p schedule
  /// to the copy (callers keep their originals).
  static Rebalancer adopt(const TaskGraph& graph, const Schedule& schedule,
                          RebalancerOptions options = {});

  /// Apply one event: patch, repair, incrementally rebalance. Returns the
  /// outcome; on rejection the system is exactly as before the call.
  EventOutcome apply(const Event& event);

  /// Convenience for the robustness harness and failover tests: a
  /// ProcessorFailure observed at simulated tick \p at. Equivalent to
  /// apply(Event{at, ProcessorFailure{proc}}).
  EventOutcome fail_processor(ProcId proc, Time at = 0);

  const TaskGraph& graph() const { return *graph_; }
  const Schedule& schedule() const { return *sched_; }
  const RebalancerOptions& options() const { return options_; }

  /// Per-processor failed flags (size M).
  const std::vector<std::uint8_t>& failed_procs() const { return failed_; }
  int alive_processor_count() const;

  /// Tasks dropped by the shed rung so far (names, in shed order).
  const std::vector<std::string>& shed_tasks() const { return shed_; }
  /// Swap the rung-3 resolver between events — the adaptive harness's
  /// miss-rate-driven selection hook (DESIGN.md F30).
  void set_degraded_resolver(std::shared_ptr<const Solver> resolver) {
    options_.degraded.resolver = std::move(resolver);
  }
  /// Arm or disarm the degraded-mode repair ladder between events — the
  /// stream service's overload-escalation hook (DESIGN.md F33): under
  /// backlog pressure a hard reject is worse than a shed, so the service
  /// flips the ladder on past its high-water mark and restores the
  /// configured state once the backlog drains.
  void set_degraded_enabled(bool enabled) {
    options_.degraded.enabled = enabled;
  }
  bool degraded_enabled() const { return options_.degraded.enabled; }
  /// Events currently parked for retry backoff.
  int pending_retries() const { return static_cast<int>(pending_.size()); }

 private:
  struct Patched;  // candidate post-patch state (rebalancer.cpp)

  /// An event parked by the backoff rung, re-attempted when its countdown
  /// of apply() calls reaches zero.
  struct PendingRetry {
    Event event;
    int countdown = 0;
  };

  static Patched full_replace_candidate(const TaskGraph& graph,
                                        const Schedule& pre);
  EventOutcome apply_one(const Event& event, bool allow_defer);
  void commit(Patched&& candidate, std::unique_ptr<TaskGraph> new_graph);
  void run_balance_stage(const std::vector<TaskId>& seeds,
                         EventOutcome& out);
  void run_full_resolver(EventOutcome& out);
  /// The frozen per-processor memory view (F29), or nullptr for live.
  const std::vector<Mem>* stale_memory() const;

  RebalancerOptions options_;
  std::unique_ptr<TaskGraph> graph_;
  std::optional<Schedule> sched_;
  std::vector<std::uint8_t> failed_;
  /// Warm all-instances occupancy, always mirroring *sched_.
  std::vector<ProcTimeline> occ_;
  /// Shed-rung victims accumulated across events (DESIGN.md F28).
  std::vector<std::string> shed_;
  /// Backoff queue, oldest first.
  std::vector<PendingRetry> pending_;
  /// Stale-load snapshot (F29): per-processor memory, refreshed every
  /// staleness_events apply() calls.
  std::vector<Mem> stale_memory_;
  int staleness_tick_ = 0;
};

}  // namespace lbmem
