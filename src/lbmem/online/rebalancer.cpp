#include "lbmem/online/rebalancer.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <utility>

#include "lbmem/api/solver.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/obs/metrics.hpp"
#include "lbmem/obs/trace.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/util/stopwatch.hpp"

namespace lbmem {

namespace {

/// Task id by name, or -1 (events identify tasks by name; DESIGN.md F10).
TaskId maybe_find(const TaskGraph& graph, const std::string& name) {
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    if (graph.task(t).name == name) return t;
  }
  return -1;
}

/// All-instances occupancy of \p sched. Unassigned instances (a not-yet-
/// admitted arrival) simply have no footprint. instances_on() is sorted by
/// start, which keeps the sorted-vector inserts cheap.
std::vector<ProcTimeline> build_occupancy(const Schedule& sched) {
  const int m = sched.architecture().processor_count();
  std::vector<ProcTimeline> occ(static_cast<std::size_t>(m),
                                ProcTimeline(sched.graph().hyperperiod()));
  for (ProcId p = 0; p < m; ++p) {
    for (const TaskInstance inst : sched.instances_on(p)) {
      occ[static_cast<std::size_t>(p)].add(
          sched.start(inst), sched.graph().task(inst.task).wcet, inst);
    }
  }
  return occ;
}

/// Processor of each task's first instance (kNoProc when unassigned) —
/// the repair's migration-avoiding placement preference.
std::vector<ProcId> instance0_procs(const Schedule& sched) {
  const auto count = static_cast<TaskId>(sched.graph().task_count());
  std::vector<ProcId> preferred(static_cast<std::size_t>(count), kNoProc);
  for (TaskId t = 0; t < count; ++t) {
    preferred[static_cast<std::size_t>(t)] = sched.proc(TaskInstance{t, 0});
  }
  return preferred;
}

/// Surviving instances whose processor changed across the event, matched
/// by task name (ids are not stable across graph rebuilds).
int count_migrations(const Schedule& pre, const Schedule& post) {
  const TaskGraph& og = pre.graph();
  const TaskGraph& ng = post.graph();
  if (&og == &ng) {
    // No graph rebuild (the hot WcetChange/failure path): ids are the
    // identity — skip the name index and its per-event string hashing.
    int migrations = 0;
    for (TaskId t = 0; t < static_cast<TaskId>(og.task_count()); ++t) {
      const InstanceIdx n = og.instance_count(t);
      for (InstanceIdx k = 0; k < n; ++k) {
        const TaskInstance inst{t, k};
        if (pre.proc(inst) != post.proc(inst)) ++migrations;
      }
    }
    return migrations;
  }
  std::unordered_map<std::string, TaskId> new_ids;
  for (TaskId t = 0; t < static_cast<TaskId>(ng.task_count()); ++t) {
    new_ids.emplace(ng.task(t).name, t);
  }
  int migrations = 0;
  for (TaskId t = 0; t < static_cast<TaskId>(og.task_count()); ++t) {
    const auto it = new_ids.find(og.task(t).name);
    if (it == new_ids.end()) continue;  // removed
    const InstanceIdx n =
        std::min(og.instance_count(t), ng.instance_count(it->second));
    for (InstanceIdx k = 0; k < n; ++k) {
      if (pre.proc(TaskInstance{t, k}) !=
          post.proc(TaskInstance{it->second, k})) {
        ++migrations;
      }
    }
  }
  return migrations;
}

/// Direct consumers of \p t (balance seeds: their data timing changed).
void add_consumers(const TaskGraph& graph, TaskId t,
                   std::vector<TaskId>& seeds) {
  for (const std::int32_t e : graph.deps_out(t)) {
    seeds.push_back(graph.dependences()[static_cast<std::size_t>(e)].consumer);
  }
}

/// Grow \p dirty by one dependency ring: every producer or consumer of a
/// dirty task becomes dirty (the rung-1 scope widening, DESIGN.md F28).
/// Returns false when the ring added nothing (fixpoint — retrying would
/// repeat the identical repair).
bool widen_by_ring(const TaskGraph& graph, std::vector<std::uint8_t>& dirty) {
  std::vector<std::uint8_t> next = dirty;
  for (const Dependence& dep : graph.dependences()) {
    if (dirty[static_cast<std::size_t>(dep.producer)]) {
      next[static_cast<std::size_t>(dep.consumer)] = 1;
    }
    if (dirty[static_cast<std::size_t>(dep.consumer)]) {
      next[static_cast<std::size_t>(dep.producer)] = 1;
    }
  }
  const bool grew = next != dirty;
  dirty.swap(next);
  return grew;
}

/// Shed-rung victim order (DESIGN.md F28): longest period first (the
/// lowest rate-monotonic priority), heaviest memory among equals, name as
/// the deterministic last resort.
std::vector<TaskId> shed_order(const TaskGraph& graph) {
  std::vector<TaskId> order;
  order.reserve(graph.task_count());
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    order.push_back(t);
  }
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const Task& ta = graph.task(a);
    const Task& tb = graph.task(b);
    if (ta.period != tb.period) return ta.period > tb.period;
    if (ta.memory != tb.memory) return ta.memory > tb.memory;
    return ta.name < tb.name;
  });
  return order;
}

/// \p graph minus the tasks in \p victims (and every dependence touching
/// one) — the shed rung's shrunken system.
std::unique_ptr<TaskGraph> drop_tasks(const TaskGraph& graph,
                                      const std::vector<TaskId>& victims) {
  std::vector<std::uint8_t> gone(graph.task_count(), 0);
  for (const TaskId v : victims) gone[static_cast<std::size_t>(v)] = 1;
  std::vector<TaskId> remap(graph.task_count(), -1);
  auto shrunk = std::make_unique<TaskGraph>();
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    if (gone[static_cast<std::size_t>(t)]) continue;
    remap[static_cast<std::size_t>(t)] = shrunk->add_task(graph.task(t));
  }
  for (const Dependence& dep : graph.dependences()) {
    if (gone[static_cast<std::size_t>(dep.producer)] ||
        gone[static_cast<std::size_t>(dep.consumer)]) {
      continue;
    }
    shrunk->add_dependence(remap[static_cast<std::size_t>(dep.producer)],
                           remap[static_cast<std::size_t>(dep.consumer)],
                           dep.data_size);
  }
  shrunk->freeze();
  return shrunk;
}

/// Scope guard undoing a durable engine mutation (set_wcet, failed_ flag)
/// unless dismissed — keeps the "rejected events leave the system exactly
/// as before" promise even when patching throws (bad_alloc, precondition).
template <typename Undo>
class Rollback {
 public:
  explicit Rollback(Undo undo) : undo_(std::move(undo)) {}
  Rollback(const Rollback&) = delete;
  Rollback& operator=(const Rollback&) = delete;
  ~Rollback() {
    if (armed_) undo_();
  }
  void dismiss() { armed_ = false; }

 private:
  Undo undo_;
  bool armed_ = true;
};

}  // namespace

/// Candidate post-patch state, committed only when the repair succeeds
/// (rejected events must leave the system untouched; DESIGN.md F14).
struct Rebalancer::Patched {
  explicit Patched(Schedule s) : sched(std::move(s)) {}

  Schedule sched;
  std::vector<ProcTimeline> occ;
  std::vector<std::uint8_t> dirty;      ///< per (post-event) TaskId
  std::vector<ProcId> preferred;        ///< placement preference per task
  std::vector<TaskId> repaired;
  std::vector<TaskId> seeds;            ///< balance-stage seed tasks
  bool full_replace = false;
};

namespace {

/// The dirty-set repair (DESIGN.md F11): re-place every dirty task whole —
/// earliest feasible strict-periodic start over the alive processors,
/// preferring its previous processor — in topological order, cascading to
/// consumers whose data-readiness a re-placement broke (consumers are
/// always later in the order, so one pass suffices). Returns an empty
/// string on success, else the reason the repair is infeasible.
///
/// \p stale, when non-null, is a frozen per-processor memory view
/// (DESIGN.md F29) consulted *only* by the final placement tie-break —
/// capacity projections and the occupancy timelines stay live, so
/// staleness can cost balance quality but never feasibility.
std::string repair(Schedule& work, std::vector<ProcTimeline>& occ,
                   std::vector<std::uint8_t>& dirty,
                   const std::vector<ProcId>& preferred,
                   const std::vector<std::uint8_t>& failed,
                   std::vector<TaskId>& repaired,
                   const std::vector<Mem>* stale = nullptr) {
  const TaskGraph& graph = work.graph();
  const auto detach = [&](TaskId t) {
    const InstanceIdx n = graph.instance_count(t);
    for (InstanceIdx k = 0; k < n; ++k) {
      const TaskInstance inst{t, k};
      const ProcId p = work.proc(inst);
      if (p != kNoProc) occ[static_cast<std::size_t>(p)].remove(inst);
    }
  };
  // Detach the initial dirty set up front so it does not constrain its own
  // re-placement; cascade additions are detached when their turn comes
  // (remove() is a no-op on absent owners), which is merely conservative.
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    if (dirty[static_cast<std::size_t>(t)]) detach(t);
  }

  // Scratch hoisted out of the loop: a full-replace escalation re-places
  // every task, and a fresh allocation per task adds up.
  std::vector<Mem> resident;
  for (const TaskId t : graph.topological_order()) {
    if (!dirty[static_cast<std::size_t>(t)]) continue;
    detach(t);
    const Task& task = graph.task(t);
    const InstanceIdx n = graph.instance_count(t);

    // t's current residency per processor: the schedule still carries its
    // stale assignment, so a capacity projection must not double-count it.
    if (work.architecture().has_memory_limit()) {
      resident.assign(
          static_cast<std::size_t>(work.architecture().processor_count()), 0);
      for (InstanceIdx k = 0; k < n; ++k) {
        const ProcId p = work.proc(TaskInstance{t, k});
        if (p != kNoProc) resident[static_cast<std::size_t>(p)] += task.memory;
      }
    }

    ProcId best_proc = kNoProc;
    Time best_start = 0;
    for (ProcId p = 0;
         p < work.architecture().processor_count(); ++p) {
      if (failed[static_cast<std::size_t>(p)]) continue;
      if (work.architecture().has_memory_limit() &&
          work.memory_on(p) - resident[static_cast<std::size_t>(p)] +
                  task.memory * static_cast<Mem>(n) >
              work.architecture().memory_capacity()) {
        continue;  // admitting t whole on p would overrun the capacity
      }
      const Time lb = precedence_lower_bound(work, t, p);
      const auto start = occ[static_cast<std::size_t>(p)].earliest_fit(
          lb, task.period, task.wcet, n);
      if (!start) continue;
      bool better = false;
      if (best_proc == kNoProc) {
        better = true;
      } else if (*start != best_start) {
        better = *start < best_start;
      } else {
        const ProcId pref = preferred[static_cast<std::size_t>(t)];
        const bool cand_pref = (p == pref);
        const bool best_pref = (best_proc == pref);
        if (cand_pref != best_pref) {
          better = cand_pref;
        } else if (stale != nullptr) {
          better = (*stale)[static_cast<std::size_t>(p)] <
                   (*stale)[static_cast<std::size_t>(best_proc)];
        } else {
          better = work.memory_on(p) < work.memory_on(best_proc);
        }
      }
      if (better) {
        best_proc = p;
        best_start = *start;
      }
    }
    if (best_proc == kNoProc) {
      return "no feasible placement for task " + task.name;
    }

    commit_whole_task(work, occ, t, best_proc, best_start);
    repaired.push_back(t);

    // Cascade: a later start or a new processor can invalidate consumers.
    for (const std::int32_t e : graph.deps_out(t)) {
      const Dependence& dep =
          graph.dependences()[static_cast<std::size_t>(e)];
      if (dirty[static_cast<std::size_t>(dep.consumer)]) continue;
      const InstanceIdx nc = graph.instance_count(dep.consumer);
      for (InstanceIdx k = 0; k < nc; ++k) {
        const TaskInstance inst{dep.consumer, k};
        if (work.data_ready(inst, work.proc(inst)) > work.start(inst)) {
          dirty[static_cast<std::size_t>(dep.consumer)] = 1;
          break;
        }
      }
    }
  }
  return {};
}

}  // namespace

/// Fresh candidate that re-places *every* task (hyper-period changes and
/// the escalation path when a local repair is infeasible; DESIGN.md F13).
/// Placement preferences come from the pre-event schedule, matched by name.
Rebalancer::Patched Rebalancer::full_replace_candidate(const TaskGraph& graph,
                                                       const Schedule& pre) {
  Rebalancer::Patched candidate{
      Schedule(graph, pre.architecture(), pre.comm())};
  candidate.full_replace = true;
  candidate.occ.assign(
      static_cast<std::size_t>(pre.architecture().processor_count()),
      ProcTimeline(graph.hyperperiod()));
  candidate.dirty.assign(graph.task_count(), 1);
  candidate.preferred.assign(graph.task_count(), kNoProc);
  // One name index instead of a per-task linear scan: a full replace at
  // N tasks would otherwise cost O(N^2) string compares.
  std::unordered_map<std::string, TaskId> old_ids;
  for (TaskId t = 0; t < static_cast<TaskId>(pre.graph().task_count());
       ++t) {
    old_ids.emplace(pre.graph().task(t).name, t);
  }
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    const auto it = old_ids.find(graph.task(t).name);
    if (it != old_ids.end()) {
      candidate.preferred[static_cast<std::size_t>(t)] =
          pre.proc(TaskInstance{it->second, 0});
    }
  }
  return candidate;
}

Rebalancer::Rebalancer(std::unique_ptr<TaskGraph> graph, Schedule schedule,
                       RebalancerOptions options)
    : options_(std::move(options)),
      graph_(std::move(graph)),
      sched_(std::move(schedule)) {
  LBMEM_REQUIRE(graph_ != nullptr, "Rebalancer requires a graph");
  LBMEM_REQUIRE(&sched_->graph() == graph_.get(),
                "the schedule must reference the owned graph");
  LBMEM_REQUIRE(sched_->complete(),
                "Rebalancer requires a complete schedule");
  failed_.assign(
      static_cast<std::size_t>(sched_->architecture().processor_count()), 0);
  occ_ = build_occupancy(*sched_);
}

Rebalancer Rebalancer::adopt(const TaskGraph& graph, const Schedule& schedule,
                             RebalancerOptions options) {
  LBMEM_REQUIRE(&schedule.graph() == &graph,
                "the schedule must reference the given graph");
  auto copy = std::make_unique<TaskGraph>(graph);
  Schedule rebound(*copy, schedule.architecture(), schedule.comm());
  for (TaskId t = 0; t < static_cast<TaskId>(copy->task_count()); ++t) {
    rebound.set_first_start(t, schedule.first_start(t));
    const InstanceIdx n = copy->instance_count(t);
    for (InstanceIdx k = 0; k < n; ++k) {
      rebound.assign(TaskInstance{t, k}, schedule.proc(TaskInstance{t, k}));
    }
  }
  return Rebalancer(std::move(copy), std::move(rebound), std::move(options));
}

int Rebalancer::alive_processor_count() const {
  return static_cast<int>(failed_.size()) -
         static_cast<int>(std::count(failed_.begin(), failed_.end(), 1));
}

void Rebalancer::commit(Patched&& candidate,
                        std::unique_ptr<TaskGraph> new_graph) {
  if (new_graph) graph_ = std::move(new_graph);
  sched_ = std::move(candidate.sched);
  occ_ = std::move(candidate.occ);
}

void Rebalancer::run_full_resolver(EventOutcome& out) {
  const Problem problem = Problem::adopt(*sched_);
  Outcome outcome = options_.full_resolver->solve(problem);
  if (outcome.stats.has_balance) {
    out.dirty_blocks = outcome.stats.blocks_total;
  }
  if (!outcome.feasible()) {
    out.balance_fell_back = true;
    return;
  }
  // The Problem spec carries no failed-processor set (see
  // RebalancerOptions::full_resolver): an outcome that re-populates a
  // failed processor is discarded like an infeasible one.
  const Schedule& candidate = *outcome.schedule;
  for (ProcId p = 0; p < sched_->architecture().processor_count(); ++p) {
    if (failed_[static_cast<std::size_t>(p)] &&
        (candidate.busy_on(p) > 0 || candidate.memory_on(p) > 0)) {
      out.balance_fell_back = true;
      out.resolver_discarded = true;
      return;
    }
  }
  out.balance_moves = outcome.stats.has_balance
                          ? outcome.stats.moves_off_home
                          : count_migrations(*sched_, candidate);
  out.balance_gain = sched_->makespan() - candidate.makespan();
  sched_ = std::move(*outcome.schedule);
  occ_ = build_occupancy(*sched_);
}

void Rebalancer::run_balance_stage(const std::vector<TaskId>& seeds,
                                   EventOutcome& out) {
  if (!options_.rebalance) return;
  LBMEM_TRACE_SPAN("online.balance_stage");
  if (!options_.incremental && options_.full_resolver) {
    run_full_resolver(out);
    return;
  }
  BalanceOptions bopts = options_.balance;
  bopts.closed_procs = failed_;
  if (bopts.metrics == nullptr) bopts.metrics = options_.metrics;
  const LoadBalancer balancer(bopts);

  // Scoped rebalancing is only defined under AllInstances (see
  // RebalanceScope); a MovedOnly configuration degrades to a full balance.
  const bool scoped = options_.incremental &&
                      bopts.overlap_rule == OverlapRule::AllInstances;
  BalanceResult result = [&] {
    if (!scoped) return balancer.balance(*sched_);
    std::vector<TaskId> deduped(seeds);
    std::sort(deduped.begin(), deduped.end());
    deduped.erase(std::unique(deduped.begin(), deduped.end()),
                  deduped.end());
    const BlockDecomposition dec = build_blocks_around(*sched_, deduped);
    RebalanceScope scope;
    scope.blocks = &dec;
    scope.occupancy = &occ_;
    scope.return_occupancy = true;
    return balancer.rebalance(*sched_, scope);
  }();

  out.dirty_blocks = result.stats.blocks_total;
  out.balance_fell_back = result.stats.fell_back;
  if (result.stats.fell_back) return;  // keep the repaired schedule

  out.balance_moves = result.stats.moves_off_home;
  out.balance_gain = result.stats.gain_total;
  sched_ = std::move(result.schedule);
  occ_ = result.occupancy.empty() ? build_occupancy(*sched_)
                                  : std::move(result.occupancy);
}

EventOutcome Rebalancer::fail_processor(ProcId proc, Time at) {
  return apply(Event{at, ProcessorFailure{proc}});
}

const std::vector<Mem>* Rebalancer::stale_memory() const {
  return (options_.staleness_events > 0 && !stale_memory_.empty())
             ? &stale_memory_
             : nullptr;
}

EventOutcome Rebalancer::apply(const Event& event) {
  // Stale-load tick (DESIGN.md F29): the frozen per-processor memory view
  // is refreshed every staleness_events calls, before this event (and any
  // expired backoff retries below) consult it.
  if (options_.staleness_events > 0) {
    if (staleness_tick_ == 0) {
      const int m = sched_->architecture().processor_count();
      stale_memory_.assign(static_cast<std::size_t>(m), 0);
      for (ProcId p = 0; p < m; ++p) {
        stale_memory_[static_cast<std::size_t>(p)] = sched_->memory_on(p);
      }
    }
    staleness_tick_ = (staleness_tick_ + 1) % options_.staleness_events;
  }

  EventOutcome out = apply_one(event, /*allow_defer=*/true);

  // Age the backoff queue by one event and re-attempt every entry whose
  // countdown expired — oldest first, full ladder, no second deferral.
  // An event parked by *this* call joins the queue afterwards, so it
  // waits its full backoff.
  if (!pending_.empty()) {
    std::vector<PendingRetry> waiting;
    waiting.reserve(pending_.size());
    for (PendingRetry& p : pending_) {
      if (--p.countdown > 0) {
        waiting.push_back(std::move(p));
        continue;
      }
      out.resolved_pending.push_back(
          apply_one(p.event, /*allow_defer=*/false));
    }
    pending_ = std::move(waiting);
  }
  if (out.deferred) {
    pending_.push_back(PendingRetry{event, options_.degraded.backoff_events});
  }
  return out;
}

namespace {

// Span names must be static literals (the tracer stores the pointer).
const char* event_span_name(EventKind kind) {
  switch (kind) {
    case EventKind::TaskArrival: return "online.TaskArrival";
    case EventKind::TaskRemoval: return "online.TaskRemoval";
    case EventKind::WcetChange: return "online.WcetChange";
    case EventKind::ProcessorFailure: return "online.ProcessorFailure";
  }
  return "online.Event";
}

// One fold per apply(), at the shared epilogue. Every name is registered
// on every fold so the emitted name set never depends on event history.
// The dirty-set size is a property of the decision sequence (Deterministic);
// the per-event latency is wall clock (Timing).
void fold_event(obs::Registry& reg, const EventOutcome& out) {
  const auto applied =
      reg.counter("online.events_applied", obs::MetricClass::Deterministic);
  const auto rejected =
      reg.counter("online.events_rejected", obs::MetricClass::Deterministic);
  const auto deferred =
      reg.counter("online.events_deferred", obs::MetricClass::Deterministic);
  const auto repaired =
      reg.counter("online.repaired_tasks", obs::MetricClass::Deterministic);
  const auto migrated = reg.counter("online.migrated_instances",
                                    obs::MetricClass::Deterministic);
  const auto dirty =
      reg.histogram("online.dirty_blocks", obs::MetricClass::Deterministic);
  const auto latency =
      reg.histogram("online.repair_latency_us", obs::MetricClass::Timing);
  // Degraded-mode ladder (DESIGN.md F28): retry attempts, recoveries per
  // rung, shed victims, and the deepest rung ever needed as a gauge.
  const auto retries = reg.counter("online.degraded.retries",
                                   obs::MetricClass::Deterministic);
  const auto rec_retry = reg.counter("online.degraded.recovered_retry",
                                     obs::MetricClass::Deterministic);
  const auto rec_replace = reg.counter("online.degraded.recovered_replace",
                                       obs::MetricClass::Deterministic);
  const auto rec_resolve = reg.counter("online.degraded.recovered_resolve",
                                       obs::MetricClass::Deterministic);
  const auto rec_shed = reg.counter("online.degraded.recovered_shed",
                                    obs::MetricClass::Deterministic);
  const auto shed = reg.counter("online.degraded.shed_tasks",
                                obs::MetricClass::Deterministic);
  const auto mode =
      reg.gauge("online.degraded_mode", obs::MetricClass::Deterministic);
  reg.add(applied, out.applied ? 1 : 0);
  reg.add(rejected, (!out.applied && !out.deferred) ? 1 : 0);
  reg.add(deferred, out.deferred ? 1 : 0);
  reg.add(retries, out.degraded_retries);
  if (out.applied) {
    reg.add(repaired, out.repaired_tasks);
    reg.add(migrated, out.migrated_instances);
    reg.record(dirty, out.dirty_blocks);
    reg.add(rec_retry, out.degraded_rung == 1 ? 1 : 0);
    reg.add(rec_replace, out.degraded_rung == 2 ? 1 : 0);
    reg.add(rec_resolve, out.degraded_rung == 3 ? 1 : 0);
    reg.add(rec_shed, out.degraded_rung == 4 ? 1 : 0);
    reg.add(shed, static_cast<std::int64_t>(out.shed.size()));
  }
  reg.raise(mode, out.degraded_rung);
  reg.record(latency, static_cast<std::int64_t>(out.wall_seconds * 1e6));
}

}  // namespace

EventOutcome Rebalancer::apply_one(const Event& event, bool allow_defer) {
  obs::ScopedSpan event_span(event_span_name(event.kind()), "online");
  Stopwatch watch;
  EventOutcome out;
  out.event = event;
  // Shared epilogue: post-event system state + latency, filled once at
  // every exit (no-op, reject, success).
  const auto finish = [&] {
    out.makespan = sched_->makespan();
    out.max_memory = sched_->max_memory();
    out.alive_tasks = static_cast<int>(graph_->task_count());
    out.alive_procs = alive_processor_count();
    out.wall_seconds = watch.seconds();
    if (options_.metrics != nullptr) fold_event(*options_.metrics, out);
  };

  // Snapshot for the migration diff and (conceptually) the rollback: the
  // candidate-state patching below never mutates *sched_ in place, so a
  // rejected event only ever needs its explicit graph-level undo. Taken
  // lazily so cheap rejects and no-op events skip the O(instances) copy;
  // every applied path materializes it while building its candidate,
  // before anything commits. (A WcetChange materializes it after the
  // set_wcet graph mutation, which is safe: the snapshot copies only the
  // schedule's own vectors, untouched by the graph edit.)
  std::optional<Schedule> pre_snapshot;
  const auto pre = [&]() -> const Schedule& {
    if (!pre_snapshot) pre_snapshot.emplace(*sched_);
    return *pre_snapshot;
  };

  std::string reject;
  std::unique_ptr<TaskGraph> new_graph;   // null = graph kept
  std::unique_ptr<TaskGraph> shed_graph;  // rung 4 shrank the graph
  std::optional<Patched> patched;
  const std::vector<Mem>* stale = stale_memory();

  // The repair ladder. Rung 0 is the plain dirty-set repair; without
  // degraded mode a failure escalates once to a full re-place and then
  // rejects (the historic F11/F13 behavior). With degraded mode the
  // failure either defers for backoff or climbs: widened-scope retries,
  // the constructive full re-place, a Solver-backed full resolve of the
  // running system, and finally load shedding (DESIGN.md F28). Every rung
  // builds its candidate from pristine pre-event state via make_base /
  // full_replace_candidate, so a failed rung leaks nothing into the next
  // — and a rejected event leaks nothing at all (F14).
  const auto run_ladder = [&](const std::function<Patched()>& make_base,
                              const TaskGraph& graph,
                              bool same_graph) -> std::string {
    LBMEM_TRACE_SPAN("online.repair");
    Patched candidate = make_base();
    const std::vector<std::uint8_t> base_dirty = candidate.dirty;
    const bool base_full = candidate.full_replace;
    std::string err =
        repair(candidate.sched, candidate.occ, candidate.dirty,
               candidate.preferred, failed_, candidate.repaired, stale);
    if (err.empty()) {
      patched.emplace(std::move(candidate));
      return {};
    }
    const DegradedOptions& deg = options_.degraded;
    if (deg.enabled && allow_defer && deg.backoff_events > 0) {
      out.deferred = true;  // parked by apply(); re-attempted ladder-first
      return err;
    }
    if (!base_full) {
      // Rung 1 (degraded only): re-attempt with the dirty set widened by
      // one dependency ring per retry.
      if (deg.enabled) {
        std::vector<std::uint8_t> dirty = base_dirty;
        for (int r = 0; r < deg.max_retries; ++r) {
          if (!widen_by_ring(graph, dirty)) break;  // fixpoint: no new scope
          Patched retry = make_base();
          retry.dirty = dirty;
          ++out.degraded_retries;
          if (repair(retry.sched, retry.occ, retry.dirty, retry.preferred,
                     failed_, retry.repaired, stale)
                  .empty()) {
            out.degraded_rung = 1;
            patched.emplace(std::move(retry));
            return {};
          }
        }
      }
      // Rung 2 / the historic escalation: re-place every task.
      Patched full = full_replace_candidate(graph, pre());
      if (repair(full.sched, full.occ, full.dirty, full.preferred, failed_,
                 full.repaired, stale)
              .empty()) {
        full.seeds = full.repaired;
        if (deg.enabled) out.degraded_rung = 2;
        patched.emplace(std::move(full));
        return {};
      }
    }
    if (!deg.enabled) return err;  // historic behavior: reject
    // Rung 3: full resolve of the running system by a configured solver.
    // Same-graph events only — the Problem aliases the engine's graph. An
    // outcome that re-populates a failed processor is discarded (the
    // full_resolver invariant carries over).
    const Solver* resolver =
        deg.resolver ? deg.resolver.get() : options_.full_resolver.get();
    if (same_graph && resolver != nullptr) {
      const Problem problem = Problem::adopt(pre());
      Outcome outcome = resolver->solve(problem);
      if (outcome.feasible()) {
        bool on_failed = false;
        for (ProcId p = 0; p < sched_->architecture().processor_count();
             ++p) {
          if (failed_[static_cast<std::size_t>(p)] &&
              (outcome.schedule->busy_on(p) > 0 ||
               outcome.schedule->memory_on(p) > 0)) {
            on_failed = true;
            break;
          }
        }
        if (!on_failed) {
          Patched resolved{std::move(*outcome.schedule)};
          resolved.full_replace = true;
          resolved.occ = build_occupancy(resolved.sched);
          resolved.dirty.assign(graph.task_count(), 0);
          resolved.preferred = instance0_procs(resolved.sched);
          out.degraded_rung = 3;
          patched.emplace(std::move(resolved));
          return {};
        }
        out.resolver_discarded = true;
      }
    }
    // Rung 4: shed the lowest-priority tasks (longest period first) until
    // a full re-place of the survivors fits, bounded by max_shed.
    const std::vector<TaskId> order = shed_order(graph);
    const int cap =
        std::min(deg.max_shed, static_cast<int>(graph.task_count()) - 1);
    for (int s = 1; s <= cap; ++s) {
      const std::vector<TaskId> victims(order.begin(), order.begin() + s);
      auto shrunk = drop_tasks(graph, victims);
      Patched cand = full_replace_candidate(*shrunk, pre());
      if (!repair(cand.sched, cand.occ, cand.dirty, cand.preferred, failed_,
                  cand.repaired, stale)
               .empty()) {
        continue;
      }
      cand.seeds = cand.repaired;
      out.degraded_rung = 4;
      for (const TaskId v : victims) out.shed.push_back(graph.task(v).name);
      shed_graph = std::move(shrunk);
      patched.emplace(std::move(cand));
      return {};
    }
    return err;  // the whole ladder failed: report the rung-0 reason
  };

  switch (event.kind()) {
    case EventKind::WcetChange: {
      const WcetChange& change = std::get<WcetChange>(event.payload);
      const TaskId t = maybe_find(*graph_, change.task);
      if (t < 0) {
        reject = "wcet change for unknown task " + change.task;
        break;
      }
      const Time old_wcet = graph_->task(t).wcet;
      if (change.wcet == old_wcet) {
        // Nothing changed: apply as a no-op instead of paying for a
        // schedule copy, an aggregate refresh and a balance round.
        out.applied = true;
        finish();
        return out;
      }
      try {
        graph_->set_wcet(t, change.wcet);
      } catch (const ModelError& e) {
        reject = e.what();
        break;
      }
      // Guarded so the mutation unwinds on reject AND on any exception
      // thrown while patching (DESIGN.md F14).
      Rollback undo([this, t, old_wcet] { graph_->set_wcet(t, old_wcet); });
      const auto make_base = [&] {
        Patched candidate{pre()};
        candidate.sched.refresh_aggregates();
        // The occupancy copy holds old-length pieces for t; the repair
        // re-places t, so its pieces then carry the new WCET.
        candidate.occ = occ_;
        candidate.dirty.assign(graph_->task_count(), 0);
        candidate.dirty[static_cast<std::size_t>(t)] = 1;
        candidate.preferred = instance0_procs(pre());
        candidate.seeds.push_back(t);
        add_consumers(*graph_, t, candidate.seeds);
        return candidate;
      };
      reject = run_ladder(make_base, *graph_, /*same_graph=*/true);
      if (!reject.empty()) break;  // ~Rollback restores the old WCET
      undo.dismiss();
      break;
    }

    case EventKind::ProcessorFailure: {
      const ProcId p = std::get<ProcessorFailure>(event.payload).proc;
      if (p < 0 || p >= sched_->architecture().processor_count()) {
        reject = "failure of unknown processor";
        break;
      }
      if (failed_[static_cast<std::size_t>(p)]) {
        reject = "processor already failed";
        break;
      }
      if (alive_processor_count() <= 1) {
        reject = "cannot fail the last alive processor";
        break;
      }
      failed_[static_cast<std::size_t>(p)] = 1;
      // Un-fail on reject and on any exception while patching (F14).
      Rollback undo([this, p] { failed_[static_cast<std::size_t>(p)] = 0; });
      const auto make_base = [&] {
        Patched candidate{pre()};
        candidate.occ = occ_;
        candidate.dirty.assign(graph_->task_count(), 0);
        for (const TaskInstance inst : pre().instances_on(p)) {
          candidate.dirty[static_cast<std::size_t>(inst.task)] = 1;
        }
        candidate.preferred = instance0_procs(pre());
        return candidate;
      };
      reject = run_ladder(make_base, *graph_, /*same_graph=*/true);
      if (!reject.empty()) break;  // ~Rollback un-fails the processor
      undo.dismiss();
      break;
    }

    case EventKind::TaskArrival: {
      const NewTaskSpec& spec = std::get<TaskArrival>(event.payload).spec;
      try {
        auto rebuilt = std::make_unique<TaskGraph>();
        for (const Task& task : graph_->tasks()) rebuilt->add_task(task);
        const TaskId nid = rebuilt->add_task(
            Task{spec.name, spec.period, spec.wcet, spec.memory});
        for (const Dependence& dep : graph_->dependences()) {
          rebuilt->add_dependence(dep.producer, dep.consumer, dep.data_size);
        }
        for (const NewTaskSpec::Producer& producer : spec.producers) {
          const TaskId pid = maybe_find(*rebuilt, producer.task);
          if (pid < 0) {
            throw ModelError("arrival references unknown producer " +
                             producer.task);
          }
          rebuilt->add_dependence(pid, nid, producer.data_size);
        }
        rebuilt->freeze();

        // Existing ids are stable (tasks copied in id order, the new task
        // appended last), so placements migrate index-for-index. If the
        // hyper-period grew, the old pattern is replicated around the
        // larger circle, which preserves validity (DESIGN.md F13).
        const Time old_h = graph_->hyperperiod();
        const Time new_h = rebuilt->hyperperiod();
        const auto make_base = [&] {
          Patched candidate{
              Schedule(*rebuilt, pre().architecture(), pre().comm())};
          for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count());
               ++t) {
            candidate.sched.set_first_start(t, pre().first_start(t));
            const InstanceIdx n_old = graph_->instance_count(t);
            const InstanceIdx n_new = rebuilt->instance_count(t);
            for (InstanceIdx k = 0; k < n_new; ++k) {
              candidate.sched.assign(TaskInstance{t, k},
                                     pre().proc(TaskInstance{t, k % n_old}));
            }
          }
          candidate.occ =
              (new_h == old_h) ? occ_ : build_occupancy(candidate.sched);
          candidate.dirty.assign(rebuilt->task_count(), 0);
          candidate.dirty[static_cast<std::size_t>(nid)] = 1;
          candidate.preferred = instance0_procs(candidate.sched);
          candidate.seeds.push_back(nid);
          return candidate;
        };
        reject = run_ladder(make_base, *rebuilt, /*same_graph=*/false);
        if (reject.empty()) new_graph = std::move(rebuilt);
      } catch (const ModelError& e) {
        reject = e.what();
      }
      break;
    }

    case EventKind::TaskRemoval: {
      const std::string& name = std::get<TaskRemoval>(event.payload).task;
      const TaskId victim = maybe_find(*graph_, name);
      if (victim < 0) {
        reject = "removal of unknown task " + name;
        break;
      }
      if (graph_->task_count() == 1) {
        reject = "cannot remove the last task";
        break;
      }
      auto rebuilt = std::make_unique<TaskGraph>();
      const auto remap = [&](TaskId t) {
        return t - (t > victim ? 1 : 0);
      };
      for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count());
           ++t) {
        if (t != victim) rebuilt->add_task(graph_->task(t));
      }
      for (const Dependence& dep : graph_->dependences()) {
        if (dep.producer == victim || dep.consumer == victim) continue;
        rebuilt->add_dependence(remap(dep.producer), remap(dep.consumer),
                                dep.data_size);
      }
      rebuilt->freeze();

      const Time old_h = graph_->hyperperiod();
      const Time new_h = rebuilt->hyperperiod();
      const auto make_base = [&] {
        Patched candidate = [&] {
          if (new_h != old_h) {
            // The victim's period was load-bearing for the hyper-period;
            // folding the old circle onto the smaller one is not validity-
            // preserving, so every task is re-placed (DESIGN.md F13).
            return full_replace_candidate(*rebuilt, pre());
          }
          Patched migrated{
              Schedule(*rebuilt, pre().architecture(), pre().comm())};
          for (TaskId t = 0; t < static_cast<TaskId>(graph_->task_count());
               ++t) {
            if (t == victim) continue;
            const TaskId nt = remap(t);
            migrated.sched.set_first_start(nt, pre().first_start(t));
            const InstanceIdx n = graph_->instance_count(t);
            for (InstanceIdx k = 0; k < n; ++k) {
              migrated.sched.assign(TaskInstance{nt, k},
                                    pre().proc(TaskInstance{t, k}));
            }
          }
          // Ids shifted, so the occupancy owners must be rebuilt.
          migrated.occ = build_occupancy(migrated.sched);
          migrated.dirty.assign(rebuilt->task_count(), 0);
          migrated.preferred = instance0_procs(migrated.sched);
          return migrated;
        }();
        // Seed the balance around the hole the victim left.
        for (const Dependence& dep : graph_->dependences()) {
          if (dep.producer == victim) {
            candidate.seeds.push_back(remap(dep.consumer));
          }
          if (dep.consumer == victim) {
            candidate.seeds.push_back(remap(dep.producer));
          }
        }
        return candidate;
      };
      reject = run_ladder(make_base, *rebuilt, /*same_graph=*/false);
      if (reject.empty()) new_graph = std::move(rebuilt);
      break;
    }
  }

  if (!reject.empty() || !patched.has_value()) {
    out.applied = false;
    out.reject_reason =
        reject.empty() ? std::string("event produced no state") : reject;
    finish();
    return out;
  }

  // The shed rung shrank the task graph — even for events that normally
  // keep it (WcetChange, ProcessorFailure).
  if (shed_graph) new_graph = std::move(shed_graph);
  shed_.insert(shed_.end(), out.shed.begin(), out.shed.end());

  out.applied = true;
  out.graph_rebuilt = (new_graph != nullptr);
  out.full_replace = patched->full_replace;
  out.repaired_tasks = static_cast<int>(patched->repaired.size());

  std::vector<TaskId> seeds = patched->seeds;
  seeds.insert(seeds.end(), patched->repaired.begin(),
               patched->repaired.end());

  // Keep the pre-event graph alive until the migration diff below (the
  // `pre` snapshot references it).
  std::unique_ptr<TaskGraph> retired;
  if (new_graph) retired = std::move(graph_);
  commit(std::move(*patched), std::move(new_graph));

  // A rung-3 recovery *is* a full resolve — running the balance stage on
  // top would second-guess the solver the caller configured.
  if (out.degraded_rung != 3) run_balance_stage(seeds, out);

  out.migrated_instances = count_migrations(pre(), *sched_);
  finish();
  return out;
}

}  // namespace lbmem
