#pragma once
/// \file event.hpp
/// \brief Runtime events the online rebalancing engine reacts to.
///
/// The paper's heuristic is strictly offline: one balancing pass over a
/// fixed task set. Real deployments face runtime events — task admission,
/// mode changes (WCET updates), processor failure — and reacting
/// incrementally beats recomputing from scratch (see PAPERS.md on dynamic
/// load balancing). This file defines the event vocabulary; the engine
/// that applies events lives in rebalancer.hpp.
///
/// Tasks are identified by *name* across events (DESIGN.md F10): task
/// arrivals and removals rebuild the frozen TaskGraph, so dense TaskIds are
/// not stable identities at the trace level.

#include <string>
#include <variant>
#include <vector>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// Specification of a task admitted at runtime.
struct NewTaskSpec {
  std::string name;  ///< must be unique among alive tasks
  Time period = 0;
  Time wcet = 0;
  Mem memory = 0;
  /// Dependences of the new task; producers are named and must be alive
  /// when the event fires (runtime admission cannot add consumers to the
  /// new task — nothing depends on it yet).
  struct Producer {
    std::string task;
    Mem data_size = 1;
  };
  std::vector<Producer> producers;
};

/// A new task enters the system and must be admitted (earliest-fit) and
/// folded into the balance.
struct TaskArrival {
  NewTaskSpec spec;
};

/// An alive task leaves; its instances and dependences disappear.
struct TaskRemoval {
  std::string task;
};

/// A mode change: an alive task's WCET is re-estimated.
struct WcetChange {
  std::string task;
  Time wcet = 0;
};

/// A processor fails permanently: everything it hosts must be evacuated
/// and it must never receive work again.
struct ProcessorFailure {
  ProcId proc = kNoProc;
};

/// Discriminator mirroring the payload alternatives, in variant order.
enum class EventKind {
  TaskArrival,
  TaskRemoval,
  WcetChange,
  ProcessorFailure,
};

/// One runtime event. `at` is an informational timestamp used by traces
/// and reports; the replay order of the trace is authoritative.
struct Event {
  Time at = 0;
  std::variant<TaskArrival, TaskRemoval, WcetChange, ProcessorFailure>
      payload;

  EventKind kind() const { return static_cast<EventKind>(payload.index()); }
};

/// A replayable sequence of events.
using EventTrace = std::vector<Event>;

/// Printable kind name ("arrival", "removal", "wcet", "failure").
std::string to_string(EventKind kind);

/// One-line description, e.g. "t=12 arrival dyn3 (T=32 E=3 m=5, 2 deps)".
std::string to_string(const Event& event);

}  // namespace lbmem
