#include "lbmem/online/event.hpp"

#include <sstream>

namespace lbmem {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::TaskArrival:
      return "arrival";
    case EventKind::TaskRemoval:
      return "removal";
    case EventKind::WcetChange:
      return "wcet";
    case EventKind::ProcessorFailure:
      return "failure";
  }
  return "unknown";
}

std::string to_string(const Event& event) {
  std::ostringstream out;
  out << "t=" << event.at << " " << to_string(event.kind()) << " ";
  switch (event.kind()) {
    case EventKind::TaskArrival: {
      const NewTaskSpec& spec = std::get<TaskArrival>(event.payload).spec;
      out << spec.name << " (T=" << spec.period << " E=" << spec.wcet
          << " m=" << spec.memory << ", " << spec.producers.size()
          << " deps)";
      break;
    }
    case EventKind::TaskRemoval:
      out << std::get<TaskRemoval>(event.payload).task;
      break;
    case EventKind::WcetChange: {
      const WcetChange& change = std::get<WcetChange>(event.payload);
      out << change.task << " -> E=" << change.wcet;
      break;
    }
    case EventKind::ProcessorFailure:
      out << "P" << std::get<ProcessorFailure>(event.payload).proc + 1;
      break;
  }
  return out.str();
}

}  // namespace lbmem
