#include "lbmem/online/runner.hpp"

#include <algorithm>

#include "lbmem/validate/validator.hpp"

namespace lbmem {

OnlineRunner::OnlineRunner(ReplayOptions options)
    : options_(options) {}

namespace {

/// Fold one outcome (and, recursively, the deferred re-attempts it
/// resolved) into the trajectory aggregates.
void fold_outcome(OnlineReport& report, const EventOutcome& outcome) {
  if (outcome.applied) {
    ++report.applied;
    report.total_migrations += outcome.migrated_instances;
    report.total_repaired += outcome.repaired_tasks;
    report.total_balance_moves += outcome.balance_moves;
    report.total_balance_gain += outcome.balance_gain;
    report.dirty_blocks.record(outcome.dirty_blocks);
    switch (outcome.degraded_rung) {
      case 1: ++report.recovered_retry; break;
      case 2: ++report.recovered_replace; break;
      case 3: ++report.recovered_resolve; break;
      case 4: ++report.recovered_shed; break;
      default: break;
    }
  } else if (outcome.deferred) {
    ++report.deferred;
  } else {
    ++report.rejected;
  }
  report.total_resolver_discards += outcome.resolver_discarded ? 1 : 0;
  report.total_retries += outcome.degraded_retries;
  report.degraded_mode = std::max(report.degraded_mode, outcome.degraded_rung);
  report.shed.insert(report.shed.end(), outcome.shed.begin(),
                     outcome.shed.end());
  report.repair_latency_us.record(
      static_cast<std::int64_t>(outcome.wall_seconds * 1e6));
  report.peak_max_memory =
      std::max(report.peak_max_memory, outcome.max_memory);
  report.total_wall_seconds += outcome.wall_seconds;
  report.max_wall_seconds =
      std::max(report.max_wall_seconds, outcome.wall_seconds);
  for (const EventOutcome& resolved : outcome.resolved_pending) {
    fold_outcome(report, resolved);
  }
}

}  // namespace

OnlineReport OnlineRunner::replay(Rebalancer& system,
                                  const EventTrace& trace) const {
  OnlineReport report;
  report.events.reserve(trace.size());
  report.violations.reserve(trace.size());
  report.peak_max_memory = system.schedule().max_memory();

  for (const Event& event : trace) {
    EventOutcome outcome = system.apply(event);

    int violations = -1;
    if (options_.validate_each) {
      violations =
          static_cast<int>(validate(system.schedule()).violations.size());
      // A failed processor must host nothing — a rule the validator cannot
      // know about, so the runner enforces it.
      const auto& failed = system.failed_procs();
      for (ProcId p = 0; p < static_cast<ProcId>(failed.size()); ++p) {
        if (failed[static_cast<std::size_t>(p)] &&
            !system.schedule().instances_on(p).empty()) {
          ++violations;
        }
      }
      report.total_violations += violations;
    }

    fold_outcome(report, outcome);

    // A deferred event is not a rejection — the ladder still owns it.
    const bool stop =
        options_.stop_on_reject && !outcome.applied && !outcome.deferred;
    report.events.push_back(std::move(outcome));
    report.violations.push_back(violations);
    if (stop) break;
  }

  report.final_makespan = system.schedule().makespan();
  report.final_max_memory = system.schedule().max_memory();
  return report;
}

}  // namespace lbmem
