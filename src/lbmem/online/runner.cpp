#include "lbmem/online/runner.hpp"

#include <algorithm>

#include "lbmem/validate/validator.hpp"

namespace lbmem {

OnlineRunner::OnlineRunner(ReplayOptions options)
    : options_(options) {}

OnlineReport OnlineRunner::replay(Rebalancer& system,
                                  const EventTrace& trace) const {
  OnlineReport report;
  report.events.reserve(trace.size());
  report.violations.reserve(trace.size());
  report.peak_max_memory = system.schedule().max_memory();

  for (const Event& event : trace) {
    EventOutcome outcome = system.apply(event);

    int violations = -1;
    if (options_.validate_each) {
      violations =
          static_cast<int>(validate(system.schedule()).violations.size());
      // A failed processor must host nothing — a rule the validator cannot
      // know about, so the runner enforces it.
      const auto& failed = system.failed_procs();
      for (ProcId p = 0; p < static_cast<ProcId>(failed.size()); ++p) {
        if (failed[static_cast<std::size_t>(p)] &&
            !system.schedule().instances_on(p).empty()) {
          ++violations;
        }
      }
      report.total_violations += violations;
    }

    if (outcome.applied) {
      ++report.applied;
      report.total_migrations += outcome.migrated_instances;
      report.total_repaired += outcome.repaired_tasks;
      report.total_balance_moves += outcome.balance_moves;
      report.total_balance_gain += outcome.balance_gain;
      report.total_resolver_discards += outcome.resolver_discarded ? 1 : 0;
      report.dirty_blocks.record(outcome.dirty_blocks);
    } else {
      ++report.rejected;
    }
    report.repair_latency_us.record(
        static_cast<std::int64_t>(outcome.wall_seconds * 1e6));
    report.peak_max_memory =
        std::max(report.peak_max_memory, outcome.max_memory);
    report.total_wall_seconds += outcome.wall_seconds;
    report.max_wall_seconds =
        std::max(report.max_wall_seconds, outcome.wall_seconds);

    const bool stop = options_.stop_on_reject && !outcome.applied;
    report.events.push_back(std::move(outcome));
    report.violations.push_back(violations);
    if (stop) break;
  }

  report.final_makespan = system.schedule().makespan();
  report.final_max_memory = system.schedule().max_memory();
  return report;
}

}  // namespace lbmem
