#pragma once
/// \file validator.hpp
/// \brief Ground-truth checker for distributed strict-periodic schedules.
///
/// The load-balancing heuristic, the baselines and the scheduler all claim
/// to produce valid schedules; this module is the independent referee. It
/// checks, from first principles:
///
///  V1. completeness — every task has a start, every instance a processor;
///  V2. strict periodicity — implied by construction (starts derive from
///      the first instance), but re-checked via the instance timing API;
///  V3. processor exclusivity — occupation intervals of instances sharing a
///      processor are pairwise disjoint on the hyper-period circle (this is
///      exactly non-overlap of the infinitely repeated schedule and
///      subsumes the paper's Block Condition, Eq. 4);
///  V4. precedence + communication — every consumer instance starts at or
///      after the arrival of all consumed data (paper Eqs. 1-2 semantics);
///  V5. memory capacity — per-processor resident memory within capacity
///      (only when the architecture declares a finite capacity).

#include <string>
#include <vector>

#include "lbmem/sched/schedule.hpp"

namespace lbmem {

/// One rule violation, suitable for diffing in tests.
struct Violation {
  enum class Kind {
    Incomplete,
    Overlap,
    Precedence,
    MemoryCapacity,
    NegativeStart,
  };
  Kind kind;
  std::string detail;
};

/// Result of validating one schedule.
struct ValidationReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }

  /// All violation details joined by newlines (empty when ok()).
  std::string to_string() const;
};

/// Validate \p sched against V1-V5. Never throws on rule violations; they
/// are collected in the report.
ValidationReport validate(const Schedule& sched);

/// validate(sched).ok() without the diagnostics: stops at the first
/// violation and builds no report strings. The balancer's attempt gate sits
/// on the hot path and only needs the verdict; tests assert agreement with
/// validate() so the two can never drift silently.
bool is_valid(const Schedule& sched);

/// Convenience: throw ScheduleError with the full report when invalid.
void validate_or_throw(const Schedule& sched);

}  // namespace lbmem
