#include "lbmem/validate/validator.hpp"

#include <algorithm>

#include "lbmem/model/hyperperiod.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem {

std::string ValidationReport::to_string() const {
  std::string out;
  for (const auto& v : violations) {
    out += v.detail;
    out += '\n';
  }
  return out;
}

namespace {

std::string instance_name(const TaskGraph& graph, TaskInstance inst) {
  return graph.task(inst.task).name + "[" + std::to_string(inst.k) + "]";
}

/// Shared scratch for the exclusivity sweep, reused by is_valid()'s
/// early-exit path so a validation performs at most one allocation.
struct ExclusivityEntry {
  Time pos;
  Time len;
  TaskInstance inst;
};

void check_exclusivity(const Schedule& sched, ValidationReport& report) {
  const TaskGraph& graph = sched.graph();
  const Time h = graph.hyperperiod();
  for (ProcId p = 0; p < sched.architecture().processor_count(); ++p) {
    const auto instances = sched.instances_on(p);
    // Sort by start mod H and compare circular neighbours; with pairwise
    // checks against every later instance overlapping candidates, the
    // O(n^2) fallback is avoided by only comparing instances whose
    // mod-H windows can intersect. Instance windows are short (wcet <=
    // period <= H), so neighbour checks after sorting by mod-H start plus a
    // wrap-around check between last and first suffice when no interval
    // covers another's start; to stay exact we still do a local scan.
    std::vector<ExclusivityEntry> entries;
    entries.reserve(instances.size());
    for (const TaskInstance inst : instances) {
      const Time s = sched.start(inst);
      entries.push_back(ExclusivityEntry{((s % h) + h) % h,
                                         graph.task(inst.task).wcet, inst});
    }
    std::sort(entries.begin(), entries.end(),
              [](const ExclusivityEntry& a, const ExclusivityEntry& b) {
                return a.pos < b.pos;
              });
    const std::size_t n = entries.size();
    for (std::size_t i = 0; i < n; ++i) {
      // Compare with successors until the gap exceeds the longest interval;
      // all lengths are <= H so comparing each entry with its immediate
      // successor and the wrap pair is sufficient for disjoint validation:
      // if entries i and i+2 overlap, then i+1 (between them) overlaps one
      // of them too, so at least one violation is still reported.
      const std::size_t j = (i + 1) % n;
      if (n == 1) break;
      const ExclusivityEntry& a = entries[i];
      const ExclusivityEntry& b = entries[j];
      if (circular_overlap(a.pos, a.len, b.pos, b.len, h) &&
          !(a.inst == b.inst)) {
        report.violations.push_back(Violation{
            Violation::Kind::Overlap,
            "overlap on " + sched.architecture().processor_name(p) + ": " +
                instance_name(graph, a.inst) + " @" +
                std::to_string(sched.start(a.inst)) + " len " +
                std::to_string(a.len) + " vs " +
                instance_name(graph, b.inst) + " @" +
                std::to_string(sched.start(b.inst)) + " len " +
                std::to_string(b.len) + " (mod " + std::to_string(h) + ")"});
      }
    }
  }
}

void check_precedence(const Schedule& sched, ValidationReport& report) {
  const TaskGraph& graph = sched.graph();
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    const InstanceIdx n = graph.instance_count(t);
    for (InstanceIdx k = 0; k < n; ++k) {
      const TaskInstance inst{t, k};
      const ProcId p = sched.proc(inst);
      const Time ready = sched.data_ready(inst, p);
      if (sched.start(inst) < ready) {
        report.violations.push_back(Violation{
            Violation::Kind::Precedence,
            "precedence violation: " + instance_name(graph, inst) +
                " starts at " + std::to_string(sched.start(inst)) +
                " before its data is ready at " + std::to_string(ready)});
      }
    }
  }
}

void check_memory(const Schedule& sched, ValidationReport& report) {
  const Architecture& arch = sched.architecture();
  if (!arch.has_memory_limit()) return;
  for (ProcId p = 0; p < arch.processor_count(); ++p) {
    const Mem used = sched.memory_on(p);
    if (used > arch.memory_capacity()) {
      report.violations.push_back(Violation{
          Violation::Kind::MemoryCapacity,
          "memory capacity exceeded on " + arch.processor_name(p) + ": " +
              std::to_string(used) + " > " +
              std::to_string(arch.memory_capacity())});
    }
  }
}

}  // namespace

ValidationReport validate(const Schedule& sched) {
  ValidationReport report;
  const TaskGraph& graph = sched.graph();

  if (!sched.complete()) {
    report.violations.push_back(Violation{
        Violation::Kind::Incomplete,
        "schedule is incomplete (missing start times or assignments)"});
    return report;  // other checks require completeness
  }
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    if (sched.first_start(t) < 0) {
      report.violations.push_back(
          Violation{Violation::Kind::NegativeStart,
                    "negative start for task " + graph.task(t).name});
    }
  }
  check_exclusivity(sched, report);
  check_precedence(sched, report);
  check_memory(sched, report);
  return report;
}

bool is_valid(const Schedule& sched) {
  const TaskGraph& graph = sched.graph();
  if (!sched.complete()) return false;
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    if (sched.first_start(t) < 0) return false;
  }
  // V3 exclusivity: the same sorted neighbour sweep as check_exclusivity,
  // stopping at the first overlap and building no diagnostics. The scratch
  // vector is reused across processors, so the whole pass allocates once.
  const Time h = graph.hyperperiod();
  std::vector<ExclusivityEntry> entries;
  for (ProcId p = 0; p < sched.architecture().processor_count(); ++p) {
    const auto instances = sched.instances_on(p);
    entries.clear();
    entries.reserve(instances.size());
    for (const TaskInstance inst : instances) {
      const Time s = sched.start(inst);
      entries.push_back(ExclusivityEntry{((s % h) + h) % h,
                                         graph.task(inst.task).wcet, inst});
    }
    std::sort(entries.begin(), entries.end(),
              [](const ExclusivityEntry& a, const ExclusivityEntry& b) {
                return a.pos < b.pos;
              });
    const std::size_t n = entries.size();
    for (std::size_t i = 0; n > 1 && i < n; ++i) {
      const ExclusivityEntry& a = entries[i];
      const ExclusivityEntry& b = entries[(i + 1) % n];
      if (circular_overlap(a.pos, a.len, b.pos, b.len, h) &&
          !(a.inst == b.inst)) {
        return false;
      }
    }
  }
  // V4 precedence, V5 memory.
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    const InstanceIdx n = graph.instance_count(t);
    for (InstanceIdx k = 0; k < n; ++k) {
      const TaskInstance inst{t, k};
      if (sched.start(inst) < sched.data_ready(inst, sched.proc(inst))) {
        return false;
      }
    }
  }
  if (sched.architecture().has_memory_limit()) {
    for (ProcId p = 0; p < sched.architecture().processor_count(); ++p) {
      if (sched.memory_on(p) > sched.architecture().memory_capacity()) {
        return false;
      }
    }
  }
  return true;
}

void validate_or_throw(const Schedule& sched) {
  const ValidationReport report = validate(sched);
  if (!report.ok()) {
    throw ScheduleError("invalid schedule:\n" + report.to_string());
  }
}

}  // namespace lbmem
