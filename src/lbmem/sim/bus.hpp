#pragma once
/// \file bus.hpp
/// \brief Shared-medium (bus) contention analysis for a distributed
/// schedule.
///
/// The paper's architecture (Figure 2) connects all processors through a
/// single medium "Med", yet the heuristic's timing model charges every
/// remote dependence a fixed delay C, implicitly assuming transfers never
/// queue behind each other (contention-free, the Theorem-1 "a medium per
/// processor pair" reading). This module closes that gap: given a
/// schedule, it extracts every inter-processor transfer as a job with
///
///   release  = end(producer instance)
///   deadline = start(consumer instance)
///   length   = CommModel::transfer_time(edge data size)
///
/// and asks whether all jobs fit on one exclusive bus. Single-machine
/// scheduling with release times and deadlines is NP-hard in general; we
/// use the standard EDF-with-release-times heuristic (optimal for equal
/// lengths, strong in practice) plus a necessary interval-load bound, so
/// the analyzer returns one of: Fits (EDF schedule found), Overloaded
/// (load bound proves impossibility), or Unknown (EDF failed but no
/// witness). A per-consumer slack report shows how much later each datum
/// would arrive under the produced bus schedule.

#include <string>
#include <vector>

#include "lbmem/sched/schedule.hpp"

namespace lbmem {

/// One inter-processor transfer extracted from a schedule.
struct TransferJob {
  TaskInstance producer;
  TaskInstance consumer;
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  Time release = 0;   ///< producer completion
  Time deadline = 0;  ///< consumer start
  Time length = 0;    ///< bus occupancy
  Time scheduled_at = -1;  ///< filled by the analyzer when Fits
};

/// Analyzer verdict.
enum class BusVerdict {
  Fits,        ///< an explicit single-bus transfer schedule exists
  Overloaded,  ///< a time window demands more bus time than it has
  Unknown,     ///< EDF failed; no impossibility witness found
};

/// Full analysis result.
struct BusReport {
  BusVerdict verdict = BusVerdict::Fits;
  std::vector<TransferJob> jobs;  ///< with scheduled_at when Fits
  /// Total bus busy time over the hyper-period window.
  Time bus_busy = 0;
  /// bus_busy / makespan — how hot the single medium runs.
  double utilization = 0.0;
  /// The overloaded window [window_begin, window_end) when Overloaded.
  Time window_begin = 0;
  Time window_end = 0;
  std::string detail;
};

/// Analyze all transfers of \p sched against one shared bus.
/// Requires a complete schedule.
BusReport analyze_single_bus(const Schedule& sched);

/// Number of inter-processor transfers in the schedule (one per consumed
/// remote producer instance) — the quantity the load balancer reduces when
/// it co-locates communicating blocks.
std::size_t count_remote_transfers(const Schedule& sched);

/// One transfer through the FIFO contention model (the perturbed
/// executor's bus mode, DESIGN.md Section 11): transfers are served in
/// release order on one exclusive medium, each completing at
/// max(release, bus free time) + length. FIFO (not EDF) because a runtime
/// bus arbiter has no deadlines to sort by — this is the degradation an
/// unmanaged shared medium actually exhibits.
struct FifoTransfer {
  Time release = 0;
  Time length = 0;
  /// Caller's handle (e.g. an index into its own table); also the
  /// deterministic tie-break among equal releases.
  std::uint64_t key = 0;
  /// Filled by fifo_bus_schedule.
  Time completion = 0;
};

/// Serialize \p transfers through one FIFO bus: sorts them in place by
/// (release, key) and fills each completion time.
void fifo_bus_schedule(std::vector<FifoTransfer>& transfers);

}  // namespace lbmem
