#include "lbmem/sim/perturb.hpp"

#include <algorithm>

namespace lbmem {

namespace {

/// SplitMix64 finalizer (public-domain reference constants) — the same
/// scrambler util/rng.hpp seeds xoshiro through, used here as a pure
/// counter-based hash so draws need no generator state.
std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t perturb_hash(std::uint64_t seed, std::uint64_t channel,
                           std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t h = splitmix(seed ^ (channel * 0x9e3779b97f4a7c15ULL));
  h = splitmix(h ^ a);
  h = splitmix(h ^ b);
  h = splitmix(h ^ c);
  return h;
}

double perturb_unit(std::uint64_t seed, std::uint64_t channel, std::uint64_t a,
                    std::uint64_t b, std::uint64_t c) {
  // Top 53 bits -> [0, 1), the standard exact double mapping.
  return static_cast<double>(perturb_hash(seed, channel, a, b, c) >> 11) *
         0x1.0p-53;
}

bool burst_storm(std::uint64_t seed, std::uint64_t channel,
                 std::uint64_t window, const GilbertElliott& chain) {
  if (!(chain.p > 0.0)) return false;
  // The chain state is a prefix product of per-window transition draws,
  // each a pure function of (seed, channel, w): re-deriving it from
  // window 0 keeps the model stateless — any caller, for any window split,
  // computes the identical state — at O(window) cost, which is trivial at
  // hyper-period granularity.
  bool storm = false;
  for (std::uint64_t w = 0; w <= window; ++w) {
    const double u = perturb_unit(seed, kPerturbBurst, channel, w);
    storm = storm ? !(u < chain.q) : (u < chain.p);
  }
  return storm;
}

std::vector<ProcessorFault> PerturbSpec::all_failures() const {
  std::vector<ProcessorFault> all;
  if (fail_proc != kNoProc) all.push_back(ProcessorFault{fail_proc, fail_at});
  all.insert(all.end(), failures.begin(), failures.end());
  std::sort(all.begin(), all.end(),
            [](const ProcessorFault& a, const ProcessorFault& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.proc < b.proc;
            });
  // A processor only dies once: keep its earliest fail time (the sort
  // already put it first among duplicates).
  std::vector<ProcessorFault> deduped;
  deduped.reserve(all.size());
  for (const ProcessorFault& f : all) {
    const bool seen =
        std::any_of(deduped.begin(), deduped.end(),
                    [&](const ProcessorFault& d) { return d.proc == f.proc; });
    if (!seen) deduped.push_back(f);
  }
  return deduped;
}

PerturbSpec PerturbSpec::replication(int rep) const {
  PerturbSpec derived = *this;
  derived.seed = perturb_hash(seed, kPerturbReplication,
                              static_cast<std::uint64_t>(rep));
  return derived;
}

}  // namespace lbmem
