#include "lbmem/sim/perturb.hpp"

namespace lbmem {

namespace {

/// SplitMix64 finalizer (public-domain reference constants) — the same
/// scrambler util/rng.hpp seeds xoshiro through, used here as a pure
/// counter-based hash so draws need no generator state.
std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t perturb_hash(std::uint64_t seed, std::uint64_t channel,
                           std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t h = splitmix(seed ^ (channel * 0x9e3779b97f4a7c15ULL));
  h = splitmix(h ^ a);
  h = splitmix(h ^ b);
  h = splitmix(h ^ c);
  return h;
}

double perturb_unit(std::uint64_t seed, std::uint64_t channel, std::uint64_t a,
                    std::uint64_t b, std::uint64_t c) {
  // Top 53 bits -> [0, 1), the standard exact double mapping.
  return static_cast<double>(perturb_hash(seed, channel, a, b, c) >> 11) *
         0x1.0p-53;
}

PerturbSpec PerturbSpec::replication(int rep) const {
  PerturbSpec derived = *this;
  derived.seed = perturb_hash(seed, kPerturbReplication,
                              static_cast<std::uint64_t>(rep));
  return derived;
}

}  // namespace lbmem
