#pragma once
/// \file metrics.hpp
/// \brief Metrics produced by the discrete-event executor.

#include <string>
#include <vector>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// Per-processor simulation metrics.
struct ProcMetrics {
  /// Busy ticks over the simulated span.
  Time busy = 0;
  /// 1 - busy/span (the Section-1 motivation metric, ref [3]).
  double idle_fraction = 0.0;
  /// Static memory: sum of resident instances' required memory.
  Mem static_memory = 0;
  /// Peak simultaneous communication-buffer occupancy (Figure 1: a datum
  /// lives from its arrival on the consumer's processor until the
  /// consuming instance completes; multi-rate edges hold several data at
  /// once because memory reuse is impossible).
  Mem peak_buffer = 0;
  /// static_memory + peak_buffer: worst total demand.
  Mem peak_total = 0;
};

/// Whole-run simulation metrics.
struct SimMetrics {
  /// Simulated time span (hyperperiods * H plus the transient tail).
  Time span = 0;
  std::vector<ProcMetrics> procs;
  /// Executor invariant violations (0 for a valid schedule).
  int violations = 0;
  std::vector<std::string> violation_details;

  double mean_idle_fraction() const;
  Mem max_peak_buffer() const;
  Mem max_peak_total() const;
};

}  // namespace lbmem
