#pragma once
/// \file metrics.hpp
/// \brief Metrics produced by the discrete-event executor.

#include <string>
#include <vector>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// Per-processor simulation metrics.
struct ProcMetrics {
  /// Busy ticks over the simulated span.
  Time busy = 0;
  /// 1 - busy/span (the Section-1 motivation metric, ref [3]).
  double idle_fraction = 0.0;
  /// Static memory: sum of resident instances' required memory.
  Mem static_memory = 0;
  /// Peak simultaneous communication-buffer occupancy (Figure 1: a datum
  /// lives from its arrival on the consumer's processor until the
  /// consuming instance completes; multi-rate edges hold several data at
  /// once because memory reuse is impossible).
  Mem peak_buffer = 0;
  /// static_memory + peak_buffer: worst total demand.
  Mem peak_total = 0;
};

/// One executor invariant violation, as a structured record (the
/// violation_details strings render the same events for humans).
struct SimViolation {
  enum class Kind {
    Overlap,       ///< an instance dispatched on a busy processor
    DataNotReady,  ///< an instance dispatched before an input datum arrived
  };
  Kind kind = Kind::Overlap;
  /// Overlap: the instance still running. DataNotReady: the producer
  /// instance whose datum is late (or lost).
  TaskInstance blocker{};
  /// The instance dispatched into the violation.
  TaskInstance victim{};
  /// The victim's dispatch tick (absolute simulated time).
  Time at = 0;
  /// When the conflict clears: the blocker's completion (Overlap) or the
  /// datum's arrival (DataNotReady); -1 when the datum never arrives
  /// (producer lost to a processor failure).
  Time ready_at = 0;
};

/// Whole-run simulation metrics.
struct SimMetrics {
  /// Simulated time span (hyperperiods * H plus the transient tail).
  Time span = 0;
  /// The span the static schedule predicts for the same window; under
  /// perturbation span may exceed it (see span_inflation()).
  Time predicted_span = 0;
  std::vector<ProcMetrics> procs;
  /// Executor invariant violations (0 for a valid schedule executed
  /// without perturbation): overlap_violations + data_violations.
  int violations = 0;
  int overlap_violations = 0;
  int data_violations = 0;
  std::vector<std::string> violation_details;
  /// One structured record per violation, in detection order (overlap
  /// sweep first, then data arrivals in window/edge order).
  std::vector<SimViolation> violation_records;
  /// Executed instances completing after start + period (the strict-
  /// periodic slot an instance must vacate for its successor).
  int deadline_misses = 0;
  /// Instances never dispatched because their processor had failed.
  int lost_instances = 0;
  /// All instances the window scheduled (executed + lost).
  std::int64_t total_instances = 0;

  double mean_idle_fraction() const;
  Mem max_peak_buffer() const;
  Mem max_peak_total() const;
  /// (deadline_misses + lost_instances) / total_instances — a lost
  /// instance is the hardest possible miss.
  double miss_rate() const;
  /// span / predicted_span (>= 1 under pure overrun noise; 1 when the
  /// execution matched the static plan).
  double span_inflation() const;
};

}  // namespace lbmem
