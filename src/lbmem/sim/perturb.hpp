#pragma once
/// \file perturb.hpp
/// \brief Seeded, deterministic perturbation model for the discrete-event
/// executor (DESIGN.md Section 11).
///
/// A PerturbSpec describes how reality is allowed to deviate from the
/// static schedule: bounded multiplicative WCET overruns, message-delay
/// inflation and FIFO bus contention, transient processor stalls, and one
/// injected permanent ProcessorFailure. Dispatch stays time-triggered (the
/// strict-periodic starts are fixed by the schedule table), so every
/// deviation surfaces as a measured effect — overlap violations, late data,
/// deadline misses, span inflation — rather than a shifted timeline.
///
/// Determinism contract: every random draw is a *pure hash* of
/// (seed, channel, draw coordinates) — there is no stateful generator to
/// advance, so the value a given instance (or transfer) draws is
/// independent of evaluation order, thread count, and which other draws
/// happen at all. Replication r of a spec derives its seed the same way
/// (replication()), which makes perturbed sweeps bit-identical across
/// thread counts and replication order (the property
/// test_parallel_equivalence enforces for solving, extended to simulation
/// by test_perturb).

#include <cstdint>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// Independent draw channels: the same coordinates must yield unrelated
/// values for unrelated decisions (WCET overrun vs. stall trial).
enum : std::uint64_t {
  kPerturbWcet = 0x11,
  kPerturbStall = 0x22,
  kPerturbComm = 0x33,
  kPerturbReplication = 0x44,
  kPerturbScenario = 0x55,
};

/// Stateless mix of a seed, a channel, and up to three draw coordinates
/// into 64 uniform bits (SplitMix64 finalizer chain).
std::uint64_t perturb_hash(std::uint64_t seed, std::uint64_t channel,
                           std::uint64_t a, std::uint64_t b = 0,
                           std::uint64_t c = 0);

/// The same mix mapped to a uniform double in [0, 1).
double perturb_unit(std::uint64_t seed, std::uint64_t channel, std::uint64_t a,
                    std::uint64_t b = 0, std::uint64_t c = 0);

/// How to perturb a simulated execution. The default spec is inert:
/// simulate() uses it and performs zero random draws.
struct PerturbSpec {
  /// Root seed of every draw; equal seeds give equal executions.
  std::uint64_t seed = 1;
  /// Max multiplicative WCET overrun: an executed instance runs for
  /// wcet * (1 + jitter * u), u ~ U[0,1). WCETs are worst-case *declared*
  /// bounds, so only overruns (mis-declared bounds — the robustness
  /// question) are modeled; early completion can never add a violation.
  double wcet_jitter = 0.0;
  /// Max multiplicative message-delay inflation per remote transfer.
  double comm_jitter = 0.0;
  /// Per-instance probability of a transient stall of stall_ticks.
  double stall_prob = 0.0;
  Time stall_ticks = 0;
  /// Serialize remote transfers through one FIFO bus (sim/bus.hpp) instead
  /// of the contention-free fixed-delay model.
  bool bus_fifo = false;
  /// Permanent processor failure: instances placed on fail_proc whose
  /// dispatch is at or after fail_at are lost (no execution, no data).
  ProcId fail_proc = kNoProc;
  Time fail_at = 0;

  /// Any timing noise configured (jitter, stalls, or bus contention).
  bool any_noise() const {
    return wcet_jitter > 0.0 || comm_jitter > 0.0 ||
           (stall_prob > 0.0 && stall_ticks > 0) || bus_fifo;
  }
  /// Anything at all to inject (noise or a failure).
  bool active() const { return any_noise() || fail_proc != kNoProc; }

  /// The spec for replication \p rep: same knobs, a seed derived by value
  /// (not by advancing a stream), so replications are order-free.
  PerturbSpec replication(int rep) const;
};

}  // namespace lbmem
