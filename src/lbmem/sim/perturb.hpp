#pragma once
/// \file perturb.hpp
/// \brief Seeded, deterministic perturbation model for the discrete-event
/// executor (DESIGN.md Section 11, Section 13).
///
/// A PerturbSpec describes how reality is allowed to deviate from the
/// static schedule: bounded multiplicative WCET overruns, message-delay
/// inflation and FIFO bus contention, transient processor stalls,
/// correlated noise bursts (a per-channel Gilbert–Elliott process), and
/// permanent ProcessorFailures — one via the legacy fail_proc/fail_at
/// pair, any number via `failures`. Dispatch stays time-triggered (the
/// strict-periodic starts are fixed by the schedule table), so every
/// deviation surfaces as a measured effect — overlap violations, late data,
/// deadline misses, span inflation — rather than a shifted timeline.
///
/// Determinism contract: every random draw is a *pure hash* of
/// (seed, channel, draw coordinates) — there is no stateful generator to
/// advance, so the value a given instance (or transfer) draws is
/// independent of evaluation order, thread count, and which other draws
/// happen at all. Replication r of a spec derives its seed the same way
/// (replication()), which makes perturbed sweeps bit-identical across
/// thread counts and replication order (the property
/// test_parallel_equivalence enforces for solving, extended to simulation
/// by test_perturb).
///
/// The burst process keeps that contract: the chain state in absolute
/// hyper-period window w is a pure function of (seed, channel, w) — each
/// transition is drawn by value from perturb_hash over the window index,
/// so a run stitched from consecutive windows (the robustness harness's
/// table-swap discipline) sees exactly the storms an unsplit run sees.

#include <cstdint>
#include <vector>

#include "lbmem/model/types.hpp"

namespace lbmem {

/// Independent draw channels: the same coordinates must yield unrelated
/// values for unrelated decisions (WCET overrun vs. stall trial).
enum : std::uint64_t {
  kPerturbWcet = 0x11,
  kPerturbStall = 0x22,
  kPerturbComm = 0x33,
  kPerturbReplication = 0x44,
  kPerturbScenario = 0x55,
  kPerturbBurst = 0x66,
};

/// Stateless mix of a seed, a channel, and up to three draw coordinates
/// into 64 uniform bits (SplitMix64 finalizer chain).
std::uint64_t perturb_hash(std::uint64_t seed, std::uint64_t channel,
                           std::uint64_t a, std::uint64_t b = 0,
                           std::uint64_t c = 0);

/// The same mix mapped to a uniform double in [0, 1).
double perturb_unit(std::uint64_t seed, std::uint64_t channel, std::uint64_t a,
                    std::uint64_t b = 0, std::uint64_t c = 0);

/// Two-state Gilbert–Elliott burst chain for one noise channel: the
/// channel is *quiet* or in a *storm*, transitioning once per hyper-period
/// window with probability p (quiet -> storm) and q (storm -> quiet).
/// While a storm lasts, the channel's noise intensity is multiplied by
/// `factor` (probabilities clamp at 1). The stationary storm fraction is
/// p / (p + q), and storm lengths are geometric with mean 1/q windows —
/// the classic bursty-error model, replacing the i.i.d.-only draws.
struct GilbertElliott {
  double p = 0.0;      ///< quiet -> storm transition probability per window
  double q = 0.5;      ///< storm -> quiet transition probability per window
  double factor = 4.0; ///< noise-intensity multiplier while in a storm
  /// The chain does anything at all (p == 0 never leaves quiet).
  bool active() const { return p > 0.0 && factor != 1.0; }
};

/// The chain's state ("in a storm?") in absolute window \p window. Chains
/// start quiet in window 0 and each transition is drawn by value from
/// perturb_hash(seed, kPerturbBurst, channel, w) — a pure function of the
/// window coordinates, so stitched runs agree with unsplit ones per
/// channel, and distinct channels evolve independently.
bool burst_storm(std::uint64_t seed, std::uint64_t channel,
                 std::uint64_t window, const GilbertElliott& chain);

/// One injected permanent processor failure: dispatches placed on `proc`
/// at or after tick `at` are lost (no execution, no data).
struct ProcessorFault {
  ProcId proc = kNoProc;
  Time at = 0;
};

/// How to perturb a simulated execution. The default spec is inert:
/// simulate() uses it and performs zero random draws.
struct PerturbSpec {
  /// Root seed of every draw; equal seeds give equal executions.
  std::uint64_t seed = 1;
  /// Max multiplicative WCET overrun: an executed instance runs for
  /// wcet * (1 + jitter * u), u ~ U[0,1). WCETs are worst-case *declared*
  /// bounds, so only overruns (mis-declared bounds — the robustness
  /// question) are modeled; early completion can never add a violation.
  double wcet_jitter = 0.0;
  /// Max multiplicative message-delay inflation per remote transfer.
  double comm_jitter = 0.0;
  /// Per-instance probability of a transient stall of stall_ticks.
  double stall_prob = 0.0;
  Time stall_ticks = 0;
  /// Serialize remote transfers through one FIFO bus (sim/bus.hpp) instead
  /// of the contention-free fixed-delay model.
  bool bus_fifo = false;
  /// Correlated bursts (DESIGN.md F27): independent Gilbert–Elliott
  /// chains per noise channel scale that channel's base intensity while a
  /// storm lasts. A chain with p == 0 leaves its channel i.i.d.; a burst
  /// on a channel whose base intensity is zero still does nothing.
  GilbertElliott wcet_burst;
  GilbertElliott comm_burst;
  GilbertElliott stall_burst;
  /// Legacy single permanent failure: instances placed on fail_proc whose
  /// dispatch is at or after fail_at are lost (no execution, no data).
  ProcId fail_proc = kNoProc;
  Time fail_at = 0;
  /// Additional concurrent permanent failures with independent fail
  /// times. all_failures() merges these with the legacy pair.
  std::vector<ProcessorFault> failures;

  /// Any timing noise configured (jitter, stalls, or bus contention).
  bool any_noise() const {
    return wcet_jitter > 0.0 || comm_jitter > 0.0 ||
           (stall_prob > 0.0 && stall_ticks > 0) || bus_fifo;
  }
  /// Any correlated-burst chain configured on an active channel.
  bool any_burst() const {
    return (wcet_jitter > 0.0 && wcet_burst.active()) ||
           (comm_jitter > 0.0 && comm_burst.active()) ||
           (stall_prob > 0.0 && stall_ticks > 0 && stall_burst.active());
  }
  /// Any permanent processor failure configured.
  bool any_failure() const {
    return fail_proc != kNoProc || !failures.empty();
  }
  /// Anything at all to inject (noise or a failure).
  bool active() const { return any_noise() || any_failure(); }

  /// Every injected failure — the legacy fail_proc/fail_at pair plus
  /// `failures` — sorted by (at, proc) and deduplicated per processor
  /// (the earliest fail time wins; a processor only dies once).
  std::vector<ProcessorFault> all_failures() const;

  /// The spec for replication \p rep: same knobs, a seed derived by value
  /// (not by advancing a stream), so replications are order-free.
  PerturbSpec replication(int rep) const;
};

}  // namespace lbmem
