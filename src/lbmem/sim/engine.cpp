#include "lbmem/sim/engine.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "lbmem/util/check.hpp"

namespace lbmem {

namespace {

struct ExecEvent {
  Time at;
  enum class Kind { End = 0, Start = 1 } kind;  // ends before starts at a tick
  TaskInstance inst;
  ProcId proc;
};

struct BufferEvent {
  Time at;
  Mem delta;  // +size on arrival, -size on consumption
};

}  // namespace

SimMetrics simulate(const Schedule& sched, const SimOptions& options) {
  LBMEM_REQUIRE(sched.complete(), "simulate requires a complete schedule");
  LBMEM_REQUIRE(options.hyperperiods >= 1, "need at least one hyper-period");

  const TaskGraph& graph = sched.graph();
  const Architecture& arch = sched.architecture();
  const Time h = graph.hyperperiod();
  const int reps = options.hyperperiods;

  SimMetrics metrics;
  metrics.procs.resize(static_cast<std::size_t>(arch.processor_count()));

  // ---- execution events over all repetitions ------------------------------
  std::vector<ExecEvent> events;
  Time last_end = 0;
  for (int w = 0; w < reps; ++w) {
    const Time offset = h * static_cast<Time>(w);
    for (const TaskInstance inst : sched.all_instances()) {
      const ProcId p = sched.proc(inst);
      const Time s = sched.start(inst) + offset;
      const Time e = sched.end(inst) + offset;
      events.push_back(ExecEvent{s, ExecEvent::Kind::Start, inst, p});
      events.push_back(ExecEvent{e, ExecEvent::Kind::End, inst, p});
      last_end = std::max(last_end, e);
      metrics.procs[static_cast<std::size_t>(p)].busy +=
          graph.task(inst.task).wcet;
    }
  }
  metrics.span = last_end;
  std::sort(events.begin(), events.end(),
            [](const ExecEvent& a, const ExecEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });

  // Processor exclusivity check.
  std::vector<int> running(static_cast<std::size_t>(arch.processor_count()),
                           0);
  for (const ExecEvent& ev : events) {
    auto& r = running[static_cast<std::size_t>(ev.proc)];
    if (ev.kind == ExecEvent::Kind::Start) {
      if (r != 0) {
        ++metrics.violations;
        metrics.violation_details.push_back(
            "processor busy when " + graph.task(ev.inst.task).name + "[" +
            std::to_string(ev.inst.k) + "] starts at " +
            std::to_string(ev.at));
      }
      ++r;
    } else {
      --r;
    }
  }

  // ---- data arrivals and buffer occupancy ---------------------------------
  // Buffers per processor; also checks arrival <= consumer start.
  std::vector<std::vector<BufferEvent>> buffer_events(
      static_cast<std::size_t>(arch.processor_count()));

  for (int w = 0; w < reps; ++w) {
    const Time offset = h * static_cast<Time>(w);
    for (std::int32_t e = 0;
         e < static_cast<std::int32_t>(graph.dependence_count()); ++e) {
      const Dependence& dep =
          graph.dependences()[static_cast<std::size_t>(e)];
      const Time comm = sched.comm().transfer_time(dep.data_size);
      const InstanceIdx nc = graph.instance_count(dep.consumer);
      for (InstanceIdx k = 0; k < nc; ++k) {
        const TaskInstance consumer{dep.consumer, k};
        const ProcId cp = sched.proc(consumer);
        const Time consumer_start = sched.start(consumer) + offset;
        const Time consumer_end = sched.end(consumer) + offset;
        for (const InstanceIdx pk : graph.consumed_instances(e, k)) {
          const TaskInstance producer{dep.producer, pk};
          const ProcId pp = sched.proc(producer);
          const bool local = (pp == cp);
          const Time arrival =
              sched.end(producer) + offset + (local ? Time{0} : comm);
          if (arrival > consumer_start) {
            ++metrics.violations;
            metrics.violation_details.push_back(
                "datum " + graph.task(dep.producer).name + "[" +
                std::to_string(pk) + "] -> " +
                graph.task(dep.consumer).name + "[" + std::to_string(k) +
                "] arrives at " + std::to_string(arrival) +
                " after consumer start " + std::to_string(consumer_start));
          }
          if (local && !options.count_local_buffers) continue;
          auto& bucket = buffer_events[static_cast<std::size_t>(cp)];
          bucket.push_back(BufferEvent{arrival, dep.data_size});
          bucket.push_back(BufferEvent{consumer_end, -dep.data_size});
        }
      }
    }
  }

  for (ProcId p = 0; p < arch.processor_count(); ++p) {
    auto& metricsp = metrics.procs[static_cast<std::size_t>(p)];
    metricsp.idle_fraction =
        1.0 - static_cast<double>(metricsp.busy) /
                  static_cast<double>(h * static_cast<Time>(reps));
    metricsp.static_memory = sched.memory_on(p);

    auto& bucket = buffer_events[static_cast<std::size_t>(p)];
    std::sort(bucket.begin(), bucket.end(),
              [](const BufferEvent& a, const BufferEvent& b) {
                if (a.at != b.at) return a.at < b.at;
                return a.delta < b.delta;  // frees before allocations
              });
    Mem level = 0;
    for (const BufferEvent& ev : bucket) {
      level += ev.delta;
      metricsp.peak_buffer = std::max(metricsp.peak_buffer, level);
    }
    metricsp.peak_total = metricsp.static_memory + metricsp.peak_buffer;
  }

  return metrics;
}

}  // namespace lbmem
