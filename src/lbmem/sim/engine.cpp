#include "lbmem/sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "lbmem/obs/metrics.hpp"
#include "lbmem/obs/trace.hpp"
#include "lbmem/sim/bus.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem {

namespace {

struct ExecEvent {
  Time at;
  enum class Kind { End = 0, Start = 1 } kind;  // ends before starts at a tick
  TaskInstance inst;
  ProcId proc;
  Time end;  ///< the instance's (actual) completion, for overlap records
};

struct BufferEvent {
  Time at;
  Mem delta;  // +size on arrival, -size on consumption
};

/// An instance currently executing on a processor (overlap sweep state).
struct RunningInst {
  TaskInstance inst;
  Time end;
};

/// One consumed datum: producer -> consumer, with its (possibly perturbed)
/// arrival. Collected in window/edge order so violation records and buffer
/// events are emitted deterministically regardless of the bus mode.
struct PendingDatum {
  TaskInstance producer;
  TaskInstance consumer;
  ProcId consumer_proc = kNoProc;
  Time consumer_start = 0;
  Time consumer_end = 0;  ///< actual completion (buffer release point)
  Time arrival = 0;       ///< -1: never (producer lost)
  Mem size = 0;
  bool local = false;
  std::int64_t fifo_key = -1;  ///< index into the FIFO transfer table
};

std::uint64_t instance_key(TaskInstance inst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(inst.task))
          << 32) |
         static_cast<std::uint32_t>(inst.k);
}

// One fold per executor run (DESIGN.md F25). Counts only — Deterministic
// class: for a fixed spec they are identical however the run is threaded.
// Names are registered on every fold so the emitted set is run-independent.
void fold_sim(obs::Registry& reg, const SimMetrics& m) {
  const auto runs =
      reg.counter("sim.runs", obs::MetricClass::Deterministic);
  const auto instances =
      reg.counter("sim.instances", obs::MetricClass::Deterministic);
  const auto violations =
      reg.counter("sim.violations", obs::MetricClass::Deterministic);
  const auto misses =
      reg.counter("sim.deadline_misses", obs::MetricClass::Deterministic);
  const auto lost =
      reg.counter("sim.lost_instances", obs::MetricClass::Deterministic);
  reg.add(runs, 1);
  reg.add(instances, m.total_instances);
  reg.add(violations, m.violations);
  reg.add(misses, m.deadline_misses);
  reg.add(lost, m.lost_instances);
}

}  // namespace

SimMetrics simulate(const Schedule& sched, const SimOptions& options) {
  LBMEM_TRACE_SPAN("sim.execute");
  return simulate_perturbed(sched, options, PerturbSpec{}, 0);
}

SimMetrics simulate_perturbed(const Schedule& sched, const SimOptions& options,
                              const PerturbSpec& perturb,
                              int first_hyperperiod) {
  obs::ScopedSpan sim_span("sim.execute_perturbed", "sim");
  LBMEM_REQUIRE(sched.complete(), "simulate requires a complete schedule");
  LBMEM_REQUIRE(options.hyperperiods >= 1, "need at least one hyper-period");
  LBMEM_REQUIRE(first_hyperperiod >= 0, "window offset must be >= 0");

  const TaskGraph& graph = sched.graph();
  const Architecture& arch = sched.architecture();
  const Time h = graph.hyperperiod();
  const int reps = options.hyperperiods;

  const bool jitter_on = perturb.wcet_jitter > 0.0;
  const bool stall_on = perturb.stall_prob > 0.0 && perturb.stall_ticks > 0;

  // Permanent failures: per-processor first fail tick (sentinel: never).
  // all_failures() already merged the legacy pair with `failures`.
  constexpr Time kNever = std::numeric_limits<Time>::max();
  std::vector<Time> fail_time(
      static_cast<std::size_t>(arch.processor_count()), kNever);
  for (const ProcessorFault& f : perturb.all_failures()) {
    LBMEM_REQUIRE(f.proc >= 0 && f.proc < arch.processor_count(),
                  "injected failure names an unknown processor");
    fail_time[static_cast<std::size_t>(f.proc)] = f.at;
  }

  // Correlated bursts (DESIGN.md F27): each channel's Gilbert–Elliott
  // chain is evaluated once per absolute window; while it storms, the
  // channel's base intensity is scaled by its factor (probabilities clamp
  // at 1). The state is a pure function of (seed, channel, window), so a
  // stitched run sees the same storms as an unsplit one.
  const auto effective = [&perturb](std::uint64_t channel,
                                    const GilbertElliott& chain, double base,
                                    std::uint64_t abs_rep) {
    if (base <= 0.0 || !chain.active()) return base;
    if (!burst_storm(perturb.seed, channel, abs_rep, chain)) return base;
    return base * chain.factor;
  };

  SimMetrics metrics;
  metrics.procs.resize(static_cast<std::size_t>(arch.processor_count()));

  // ---- execution events over all repetitions ------------------------------
  // Actual completions are kept per (window, dense instance) so the data
  // pass can look up its producers' perturbed end times.
  const std::size_t dense = graph.total_instances();
  std::vector<Time> actual_end(static_cast<std::size_t>(reps) * dense, 0);
  std::vector<std::uint8_t> lost(static_cast<std::size_t>(reps) * dense, 0);

  std::vector<ExecEvent> events;
  const std::vector<TaskInstance> instances = sched.all_instances();
  Time last_end = 0;
  Time predicted_end = 0;
  for (int w = 0; w < reps; ++w) {
    const std::uint64_t abs_rep =
        static_cast<std::uint64_t>(first_hyperperiod + w);
    const Time offset = h * static_cast<Time>(first_hyperperiod + w);
    const double wcet_jitter_w =
        effective(kPerturbWcet, perturb.wcet_burst, perturb.wcet_jitter,
                  abs_rep);
    const double stall_prob_w = std::min(
        1.0, effective(kPerturbStall, perturb.stall_burst, perturb.stall_prob,
                       abs_rep));
    for (const TaskInstance inst : instances) {
      const Task& task = graph.task(inst.task);
      const ProcId p = sched.proc(inst);
      const Time s = sched.start(inst) + offset;
      const Time static_e = sched.end(inst) + offset;
      predicted_end = std::max(predicted_end, static_e);
      ++metrics.total_instances;
      const std::size_t slot =
          static_cast<std::size_t>(w) * dense + graph.dense_index(inst);
      if (s >= fail_time[static_cast<std::size_t>(p)]) {
        lost[slot] = 1;
        ++metrics.lost_instances;
        continue;
      }
      Time e = static_e;
      if (jitter_on) {
        const double u =
            perturb_unit(perturb.seed, kPerturbWcet, abs_rep,
                         instance_key(inst));
        e += static_cast<Time>(std::llround(
            static_cast<double>(task.wcet) * wcet_jitter_w * u));
      }
      if (stall_on && perturb_unit(perturb.seed, kPerturbStall, abs_rep,
                                   instance_key(inst)) < stall_prob_w) {
        e += perturb.stall_ticks;
      }
      actual_end[slot] = e;
      events.push_back(ExecEvent{s, ExecEvent::Kind::Start, inst, p, e});
      events.push_back(ExecEvent{e, ExecEvent::Kind::End, inst, p, e});
      last_end = std::max(last_end, e);
      metrics.procs[static_cast<std::size_t>(p)].busy += e - s;
      if (e > s + task.period) ++metrics.deadline_misses;
    }
  }
  metrics.span = last_end;
  metrics.predicted_span = predicted_end;
  // Fully deterministic order: ties among simultaneous events of the same
  // kind are broken by processor and instance, so violation records are
  // identical across platforms and library sort implementations.
  std::sort(events.begin(), events.end(),
            [](const ExecEvent& a, const ExecEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.kind != b.kind) {
                return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              }
              if (a.proc != b.proc) return a.proc < b.proc;
              if (a.inst.task != b.inst.task) return a.inst.task < b.inst.task;
              return a.inst.k < b.inst.k;
            });

  // Processor exclusivity check.
  std::vector<std::vector<RunningInst>> running(
      static_cast<std::size_t>(arch.processor_count()));
  for (const ExecEvent& ev : events) {
    auto& r = running[static_cast<std::size_t>(ev.proc)];
    if (ev.kind == ExecEvent::Kind::Start) {
      if (!r.empty()) {
        // Blocker: the running instance that occupies the processor
        // longest (latest end; ties broken by instance for determinism).
        const RunningInst* blocker = &r.front();
        for (const RunningInst& ri : r) {
          if (ri.end > blocker->end ||
              (ri.end == blocker->end &&
               (ri.inst.task < blocker->inst.task ||
                (ri.inst.task == blocker->inst.task &&
                 ri.inst.k < blocker->inst.k)))) {
            blocker = &ri;
          }
        }
        ++metrics.violations;
        ++metrics.overlap_violations;
        metrics.violation_records.push_back(
            SimViolation{SimViolation::Kind::Overlap, blocker->inst, ev.inst,
                         ev.at, blocker->end});
        metrics.violation_details.push_back(
            "processor busy when " + graph.task(ev.inst.task).name + "[" +
            std::to_string(ev.inst.k) + "] starts at " +
            std::to_string(ev.at));
      }
      r.push_back(RunningInst{ev.inst, ev.end});
    } else {
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (r[i].inst.task == ev.inst.task && r[i].inst.k == ev.inst.k) {
          r.erase(r.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }

  // ---- data arrivals and buffer occupancy ---------------------------------
  // Collect every consumed datum in window/edge order (the deterministic
  // emission order), then resolve remote arrivals — directly under the
  // fixed-delay model, or through the FIFO bus when contention is on.
  std::vector<PendingDatum> data;
  std::vector<FifoTransfer> fifo;
  for (int w = 0; w < reps; ++w) {
    const std::uint64_t abs_rep =
        static_cast<std::uint64_t>(first_hyperperiod + w);
    const Time offset = h * static_cast<Time>(first_hyperperiod + w);
    const double comm_jitter_w =
        effective(kPerturbComm, perturb.comm_burst, perturb.comm_jitter,
                  abs_rep);
    for (std::int32_t e = 0;
         e < static_cast<std::int32_t>(graph.dependence_count()); ++e) {
      const Dependence& dep =
          graph.dependences()[static_cast<std::size_t>(e)];
      const Time comm = sched.comm().transfer_time(dep.data_size);
      const InstanceIdx nc = graph.instance_count(dep.consumer);
      for (InstanceIdx k = 0; k < nc; ++k) {
        const TaskInstance consumer{dep.consumer, k};
        const std::size_t cslot = static_cast<std::size_t>(w) * dense +
                                  graph.dense_index(consumer);
        if (lost[cslot]) continue;  // never dispatched: no check, no buffer
        const ProcId cp = sched.proc(consumer);
        const Time consumer_start = sched.start(consumer) + offset;
        for (const InstanceIdx pk : graph.consumed_instances(e, k)) {
          const TaskInstance producer{dep.producer, pk};
          const std::size_t pslot = static_cast<std::size_t>(w) * dense +
                                    graph.dense_index(producer);
          PendingDatum datum;
          datum.producer = producer;
          datum.consumer = consumer;
          datum.consumer_proc = cp;
          datum.consumer_start = consumer_start;
          datum.consumer_end = actual_end[cslot];
          datum.size = dep.data_size;
          datum.local = (sched.proc(producer) == cp);
          if (lost[pslot]) {
            datum.arrival = -1;  // the datum is never produced
          } else if (datum.local) {
            datum.arrival = actual_end[pslot];
          } else {
            Time length = comm;
            if (perturb.comm_jitter > 0.0) {
              const double u = perturb_unit(
                  perturb.seed, kPerturbComm, abs_rep,
                  (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e))
                   << 32) |
                      static_cast<std::uint32_t>(k),
                  static_cast<std::uint64_t>(pk));
              length += static_cast<Time>(std::llround(
                  static_cast<double>(comm) * comm_jitter_w * u));
            }
            if (perturb.bus_fifo) {
              datum.fifo_key = static_cast<std::int64_t>(data.size());
              fifo.push_back(FifoTransfer{
                  actual_end[pslot], length,
                  static_cast<std::uint64_t>(data.size()), 0});
            } else {
              datum.arrival = actual_end[pslot] + length;
            }
          }
          data.push_back(datum);
        }
      }
    }
  }
  if (!fifo.empty()) {
    fifo_bus_schedule(fifo);
    for (const FifoTransfer& t : fifo) {
      data[static_cast<std::size_t>(t.key)].arrival = t.completion;
    }
  }

  // Buffers per processor; also checks arrival <= consumer start.
  std::vector<std::vector<BufferEvent>> buffer_events(
      static_cast<std::size_t>(arch.processor_count()));
  for (const PendingDatum& datum : data) {
    if (datum.arrival < 0 || datum.arrival > datum.consumer_start) {
      ++metrics.violations;
      ++metrics.data_violations;
      metrics.violation_records.push_back(
          SimViolation{SimViolation::Kind::DataNotReady, datum.producer,
                       datum.consumer, datum.consumer_start, datum.arrival});
      metrics.violation_details.push_back(
          "datum " + graph.task(datum.producer.task).name + "[" +
          std::to_string(datum.producer.k) + "] -> " +
          graph.task(datum.consumer.task).name + "[" +
          std::to_string(datum.consumer.k) + "]" +
          (datum.arrival < 0
               ? " never arrives (producer lost); consumer starts at " +
                     std::to_string(datum.consumer_start)
               : " arrives at " + std::to_string(datum.arrival) +
                     " after consumer start " +
                     std::to_string(datum.consumer_start)));
    }
    if (datum.arrival < 0) continue;  // never produced: occupies nothing
    if (datum.local && !options.count_local_buffers) continue;
    auto& bucket = buffer_events[static_cast<std::size_t>(datum.consumer_proc)];
    bucket.push_back(BufferEvent{datum.arrival, datum.size});
    bucket.push_back(BufferEvent{datum.consumer_end, -datum.size});
  }

  for (ProcId p = 0; p < arch.processor_count(); ++p) {
    auto& metricsp = metrics.procs[static_cast<std::size_t>(p)];
    metricsp.idle_fraction =
        1.0 - static_cast<double>(metricsp.busy) /
                  static_cast<double>(h * static_cast<Time>(reps));
    metricsp.static_memory = sched.memory_on(p);

    auto& bucket = buffer_events[static_cast<std::size_t>(p)];
    std::sort(bucket.begin(), bucket.end(),
              [](const BufferEvent& a, const BufferEvent& b) {
                if (a.at != b.at) return a.at < b.at;
                return a.delta < b.delta;  // frees before allocations
              });
    Mem level = 0;
    for (const BufferEvent& ev : bucket) {
      level += ev.delta;
      metricsp.peak_buffer = std::max(metricsp.peak_buffer, level);
    }
    metricsp.peak_total = metricsp.static_memory + metricsp.peak_buffer;
  }

  if (options.metrics != nullptr) fold_sim(*options.metrics, metrics);
  return metrics;
}

}  // namespace lbmem
