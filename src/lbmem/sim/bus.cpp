#include "lbmem/sim/bus.hpp"

#include <algorithm>
#include <queue>

#include "lbmem/util/check.hpp"

namespace lbmem {

namespace {

std::vector<TransferJob> extract_jobs(const Schedule& sched) {
  const TaskGraph& graph = sched.graph();
  std::vector<TransferJob> jobs;
  for (std::int32_t e = 0;
       e < static_cast<std::int32_t>(graph.dependence_count()); ++e) {
    const Dependence& dep = graph.dependences()[static_cast<std::size_t>(e)];
    const Time length = sched.comm().transfer_time(dep.data_size);
    const InstanceIdx nc = graph.instance_count(dep.consumer);
    for (InstanceIdx k = 0; k < nc; ++k) {
      const TaskInstance consumer{dep.consumer, k};
      for (const InstanceIdx pk : graph.consumed_instances(e, k)) {
        const TaskInstance producer{dep.producer, pk};
        if (sched.proc(producer) == sched.proc(consumer)) continue;
        TransferJob job;
        job.producer = producer;
        job.consumer = consumer;
        job.from = sched.proc(producer);
        job.to = sched.proc(consumer);
        job.release = sched.end(producer);
        job.deadline = sched.start(consumer);
        job.length = length;
        jobs.push_back(job);
      }
    }
  }
  return jobs;
}

/// Necessary condition: for any window [a, b) formed by a release and a
/// deadline, the total length of jobs entirely inside must fit.
bool find_overload_window(const std::vector<TransferJob>& jobs, Time* begin,
                          Time* end) {
  for (const TransferJob& outer : jobs) {
    for (const TransferJob& inner : jobs) {
      const Time a = outer.release;
      const Time b = inner.deadline;
      if (a >= b) continue;
      Time demand = 0;
      for (const TransferJob& job : jobs) {
        if (job.release >= a && job.deadline <= b) demand += job.length;
      }
      if (demand > b - a) {
        *begin = a;
        *end = b;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::size_t count_remote_transfers(const Schedule& sched) {
  return extract_jobs(sched).size();
}

void fifo_bus_schedule(std::vector<FifoTransfer>& transfers) {
  std::sort(transfers.begin(), transfers.end(),
            [](const FifoTransfer& a, const FifoTransfer& b) {
              if (a.release != b.release) return a.release < b.release;
              return a.key < b.key;
            });
  Time bus_free = 0;
  for (FifoTransfer& t : transfers) {
    const Time begin = std::max(t.release, bus_free);
    t.completion = begin + t.length;
    bus_free = t.completion;
  }
}

BusReport analyze_single_bus(const Schedule& sched) {
  LBMEM_REQUIRE(sched.complete(), "bus analysis requires a complete schedule");
  BusReport report;
  report.jobs = extract_jobs(sched);

  for (const TransferJob& job : report.jobs) {
    report.bus_busy += job.length;
  }
  const Time span = std::max<Time>(sched.makespan(), 1);
  report.utilization =
      static_cast<double>(report.bus_busy) / static_cast<double>(span);

  // Zero-length transfers (C = 0) always fit.
  std::vector<TransferJob*> pending;
  for (TransferJob& job : report.jobs) {
    if (job.length > 0) {
      pending.push_back(&job);
    } else {
      job.scheduled_at = job.release;
    }
  }

  // EDF with release times on one machine (non-preemptive).
  std::sort(pending.begin(), pending.end(),
            [](const TransferJob* a, const TransferJob* b) {
              if (a->release != b->release) return a->release < b->release;
              return a->deadline < b->deadline;
            });
  auto edf_order = [](const TransferJob* a, const TransferJob* b) {
    if (a->deadline != b->deadline) return a->deadline > b->deadline;
    return a->release > b->release;
  };
  std::priority_queue<TransferJob*, std::vector<TransferJob*>,
                      decltype(edf_order)>
      ready(edf_order);

  Time now = 0;
  std::size_t next = 0;
  bool missed = false;
  while (next < pending.size() || !ready.empty()) {
    if (ready.empty()) {
      now = std::max(now, pending[next]->release);
    }
    while (next < pending.size() && pending[next]->release <= now) {
      ready.push(pending[next]);
      ++next;
    }
    TransferJob* job = ready.top();
    ready.pop();
    job->scheduled_at = now;
    now += job->length;
    if (now > job->deadline) {
      missed = true;
      break;
    }
  }

  if (!missed) {
    report.verdict = BusVerdict::Fits;
    report.detail = "EDF schedules all transfers within their windows";
    return report;
  }

  if (find_overload_window(report.jobs, &report.window_begin,
                           &report.window_end)) {
    report.verdict = BusVerdict::Overloaded;
    report.detail =
        "window [" + std::to_string(report.window_begin) + ", " +
        std::to_string(report.window_end) + ") demands more bus time than " +
        "its length — no single-bus schedule exists";
    return report;
  }

  report.verdict = BusVerdict::Unknown;
  report.detail = "EDF missed a deadline but no overload witness was found";
  return report;
}

}  // namespace lbmem
