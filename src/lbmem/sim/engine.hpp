#pragma once
/// \file engine.hpp
/// \brief Discrete-event execution of a distributed strict-periodic
/// schedule over several hyper-periods, optionally under perturbation.
///
/// The executor dispatches every instance at its static start time across
/// \p hyperperiods repetitions of the schedule and checks, independently of
/// the validator, that
///   * no two instances overlap on a processor, and
///   * every instance's input data has arrived when it starts
/// (violations are collected, not thrown, so tests can assert on them).
///
/// It also measures what the static analysis cannot: the evolution of
/// communication-buffer occupancy over time. Per Figure 1 of the paper, a
/// datum crossing processors occupies the consumer's memory from its
/// arrival until the consuming instance completes; slow consumers of fast
/// producers therefore hold n data at once, and memory reuse is impossible.
/// Locally produced data is held from production to consumption likewise.
///
/// simulate_perturbed() executes the same time-triggered dispatch under a
/// seeded PerturbSpec (WCET overruns, stalls, message-delay inflation, FIFO
/// bus contention, a processor failure) and additionally reports deadline
/// misses, lost instances, and span inflation vs. the static prediction.
/// simulate() is the inert-spec special case and performs no random draws.

#include "lbmem/sched/schedule.hpp"
#include "lbmem/sim/metrics.hpp"
#include "lbmem/sim/perturb.hpp"

namespace lbmem::obs {
class Registry;
}

namespace lbmem {

/// Simulation options.
struct SimOptions {
  /// Number of hyper-period repetitions to execute (>= 1).
  int hyperperiods = 2;
  /// Include same-processor producer->consumer data in buffer occupancy.
  bool count_local_buffers = true;
  /// Observability sink (DESIGN.md F25): when set, each run folds its
  /// SimMetrics into this registry once on return — dispatch/violation/
  /// miss counters (Deterministic class). The registry must outlive the
  /// call; it is shared-safe, so parallel replications may point here.
  obs::Registry* metrics = nullptr;
};

/// Execute \p sched and return the collected metrics.
SimMetrics simulate(const Schedule& sched, const SimOptions& options = {});

/// Execute \p sched under \p perturb. \p first_hyperperiod shifts the
/// window: repetition w runs at absolute time offset
/// (first_hyperperiod + w) * H, draws its noise from the absolute
/// repetition index, and compares dispatches against the absolute
/// perturb.fail_at — so a run stitched from consecutive windows (the
/// robustness harness swaps in a repaired schedule mid-run) perturbs each
/// instance exactly as one continuous run would.
SimMetrics simulate_perturbed(const Schedule& sched, const SimOptions& options,
                              const PerturbSpec& perturb,
                              int first_hyperperiod = 0);

}  // namespace lbmem
