#pragma once
/// \file engine.hpp
/// \brief Discrete-event execution of a distributed strict-periodic
/// schedule over several hyper-periods.
///
/// The executor dispatches every instance at its static start time across
/// \p hyperperiods repetitions of the schedule and checks, independently of
/// the validator, that
///   * no two instances overlap on a processor, and
///   * every instance's input data has arrived when it starts
/// (violations are collected, not thrown, so tests can assert on them).
///
/// It also measures what the static analysis cannot: the evolution of
/// communication-buffer occupancy over time. Per Figure 1 of the paper, a
/// datum crossing processors occupies the consumer's memory from its
/// arrival until the consuming instance completes; slow consumers of fast
/// producers therefore hold n data at once, and memory reuse is impossible.
/// Locally produced data is held from production to consumption likewise.

#include "lbmem/sched/schedule.hpp"
#include "lbmem/sim/metrics.hpp"

namespace lbmem {

/// Simulation options.
struct SimOptions {
  /// Number of hyper-period repetitions to execute (>= 1).
  int hyperperiods = 2;
  /// Include same-processor producer->consumer data in buffer occupancy.
  bool count_local_buffers = true;
};

/// Execute \p sched and return the collected metrics.
SimMetrics simulate(const Schedule& sched, const SimOptions& options = {});

}  // namespace lbmem
