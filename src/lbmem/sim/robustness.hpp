#pragma once
/// \file robustness.hpp
/// \brief The perturbed-execution robustness harness (DESIGN.md Section
/// 11): seeded replications of simulate_perturbed over one schedule, with
/// the failure -> online-repair handoff and aggregate miss-rate statistics.
///
/// Each replication executes the schedule for sim.hyperperiods windows
/// under the spec's noise with a replication-derived seed. Injected
/// ProcessorFailures (any number, independent fail times) split the run
/// into *phases* at hyper-period boundaries:
///
///   * a failure at tick `at` (window w_f = at / H) is live from `at` to
///     the end of window w_f — every dispatch on the dead processor in
///     that span is lost;
///   * at the boundary (w_f+1)*H the failure is handed to the
///     online/Rebalancer once per report (noise never changes what repair
///     does). If the repair — possibly escalated through the degraded
///     ladder, DESIGN.md F28 — is accepted, the repaired table takes over
///     for the following phase: recovery_latency = (w_f+1)*H - at, the
///     table-swap discipline of strict-periodic dispatchers. If it is
///     rejected (Rebalancer rolls back, F14), the processor stays dead for
///     the rest of the run, losing every dispatch placed on it.
///
/// Dependences crossing a swap boundary are not tracked across windows
/// (each window re-derives its producers); the boundary hyper-period is
/// where the miss-rate-before figure already charges the damage.
///
/// The harness is *phase-major*: each phase is simulated for every
/// replication before the next repair is decided. That ordering is what
/// lets the adaptive mode (DESIGN.md F30) pick the rung-3 resolver with
/// the best pooled perturbed miss rate observed so far — the pool is real
/// history, not a separate calibration pass.
///
/// Determinism: replication seeds are derived by value
/// (PerturbSpec::replication), draws and burst-chain states are keyed by
/// absolute window coordinates (stitched phases see exactly what an
/// unsplit run sees), repairs run once per report, and the selector is a
/// pure fold of the phase history — so the report is bit-identical
/// however replications are ordered or distributed over threads.

#include <memory>
#include <string>
#include <vector>

#include "lbmem/online/rebalancer.hpp"
#include "lbmem/sim/engine.hpp"

namespace lbmem {

/// Harness configuration.
struct RobustnessOptions {
  /// Window shape per replication (hyperperiods >= 1).
  SimOptions sim;
  /// Noise model + optional failure injection; seed is the root seed.
  PerturbSpec perturb;
  /// Seeded replications to run (>= 1).
  int replications = 3;
  /// Online-engine configuration for the failure repair.
  RebalancerOptions repair;
  /// Miss-rate-driven solver selection (DESIGN.md F30): rung-3 resolver
  /// candidates. When non-empty, each failure repair first installs the
  /// candidate with the best pooled perturbed miss rate observed so far
  /// (unobserved candidates explored first in registration order; ties to
  /// the earlier candidate) via Rebalancer::set_degraded_resolver. Only
  /// phases governed by a candidate's own resolved table feed its pool —
  /// the selection is solver-fair (F24): candidates never score each
  /// other's noise. Requires repair.degraded.enabled for the rung to be
  /// reachable.
  std::vector<std::shared_ptr<const Solver>> adaptive_resolvers;
};

/// Deterministic miss-rate-driven candidate selection (DESIGN.md F30).
/// pick() returns the first never-observed candidate (exploration in
/// registration order), else the candidate with the lowest pooled mean
/// observed miss rate, ties to the earlier registration. A pure fold of
/// the observation sequence — thread-count invariant by construction.
class MissRateSelector {
 public:
  explicit MissRateSelector(std::vector<std::string> names);

  /// Index of the candidate the next decision should use.
  int pick() const;
  /// Pool one miss-rate observation for candidate \p index.
  void observe(int index, double miss_rate);

  const std::string& name(int index) const;
  int size() const { return static_cast<int>(entries_.size()); }
  /// Pooled mean for \p index (0 when never observed).
  double pooled(int index) const;
  int observations(int index) const;

 private:
  struct Entry {
    std::string name;
    double sum = 0.0;
    int count = 0;
  };
  std::vector<Entry> entries_;
};

/// One replication's outcome.
struct RobustnessReplication {
  SimMetrics metrics;  ///< merged across windows when a failure split them
  double miss_rate = 0.0;
  double span_inflation = 1.0;
  /// Failure runs only: miss rate of the failure window [0, w_f] and of
  /// the post-handoff tail (0 when there is no tail).
  double miss_rate_before = 0.0;
  double miss_rate_after = 0.0;
};

/// One injected processor failure's fate.
struct FailureOutcome {
  ProcId proc = kNoProc;
  Time at = 0;
  /// The repair (ladder included) was accepted.
  bool repaired = false;
  /// Failure to repaired-table activation: (w_f+1)*H - at (0 on reject).
  Time recovery_latency = 0;
  /// Degraded-mode rung that produced the accepted table (0 = plain).
  int degraded_rung = 0;
  /// Adaptive mode only: name of the rung-3 candidate installed for this
  /// repair (empty outside adaptive mode).
  std::string resolver;
  /// Tasks dropped by the shed rung for this repair.
  std::vector<std::string> shed;
  /// Repair summary, or the Rebalancer's rejection reason.
  std::string detail;
};

/// The aggregate robustness report.
struct RobustnessReport {
  std::vector<RobustnessReplication> replications;
  /// The spec configured at least one ProcessorFailure inside the window.
  bool failure_injected = false;
  /// Every injected failure's repair was accepted (false: at least one
  /// hard failure, rollback).
  bool recovered = false;
  /// Worst failure-to-repaired-table-activation latency over the repaired
  /// failures: max of (w_f+1)*H - fail_at.
  Time recovery_latency = 0;
  /// Repair summary, or the Rebalancer's rejection reason (the first
  /// failure's detail; see `failures` for the rest).
  std::string repair_detail;
  /// Per-failure outcomes, in injection (fail-time) order.
  std::vector<FailureOutcome> failures;
  /// Nearest-rank percentiles of the per-replication miss rates.
  double miss_p50 = 0.0;
  double miss_p99 = 0.0;
  double mean_span_inflation = 1.0;
  /// Means of the per-replication before/after-recovery miss rates
  /// (failure runs only; 0 otherwise).
  double mean_miss_before = 0.0;
  double mean_miss_after = 0.0;
  /// Sums over the replications.
  std::int64_t total_violations = 0;
  std::int64_t total_deadline_misses = 0;
  std::int64_t total_lost_instances = 0;
};

/// Nearest-rank percentile (pct in [0, 100]) of \p values; 0 when empty.
/// Exposed for the scenario summary's pooled percentiles.
double robustness_percentile(std::vector<double> values, double pct);

/// Run the harness on \p schedule. Requires a complete schedule,
/// replications >= 1, and every configured failure's fail time inside
/// [0, hyperperiods * H).
RobustnessReport run_robustness(const Schedule& schedule,
                                const RobustnessOptions& options);

}  // namespace lbmem
