#pragma once
/// \file robustness.hpp
/// \brief The perturbed-execution robustness harness (DESIGN.md Section
/// 11): seeded replications of simulate_perturbed over one schedule, with
/// the failure -> online-repair handoff and aggregate miss-rate statistics.
///
/// Each replication executes the schedule for sim.hyperperiods windows
/// under the spec's noise with a replication-derived seed. When the spec
/// injects a ProcessorFailure, the run is stitched from two windows:
///
///   * [0, w_f]: the original schedule with the failure active — every
///     dispatch on the dead processor from fail_at on is lost (w_f is the
///     hyper-period containing fail_at);
///   * [w_f+1, end): the failure is handed to online/Rebalancer once per
///     report (noise never changes what repair does). If the repair is
///     accepted, the repaired schedule takes over at the next hyper-period
///     boundary — recovery_latency = (w_f+1)*H - fail_at, the table-swap
///     discipline of strict-periodic dispatchers — and the tail runs
///     clean. If the repair is rejected (Rebalancer rolls back, DESIGN.md
///     F14), the system degrades hard: the tail keeps the original
///     schedule with everything on the dead processor lost.
///
/// Dependences crossing the swap boundary are not tracked across windows
/// (each window re-derives its producers); the boundary hyper-period is
/// where the miss-rate-before figure already charges the damage.
///
/// Determinism: replication seeds are derived by value
/// (PerturbSpec::replication), repair runs once, and each replication is
/// self-contained — so the report is bit-identical however replications
/// are ordered or distributed over threads.

#include <string>
#include <vector>

#include "lbmem/online/rebalancer.hpp"
#include "lbmem/sim/engine.hpp"

namespace lbmem {

/// Harness configuration.
struct RobustnessOptions {
  /// Window shape per replication (hyperperiods >= 1).
  SimOptions sim;
  /// Noise model + optional failure injection; seed is the root seed.
  PerturbSpec perturb;
  /// Seeded replications to run (>= 1).
  int replications = 3;
  /// Online-engine configuration for the failure repair.
  RebalancerOptions repair;
};

/// One replication's outcome.
struct RobustnessReplication {
  SimMetrics metrics;  ///< merged across windows when a failure split them
  double miss_rate = 0.0;
  double span_inflation = 1.0;
  /// Failure runs only: miss rate of the failure window [0, w_f] and of
  /// the post-handoff tail (0 when there is no tail).
  double miss_rate_before = 0.0;
  double miss_rate_after = 0.0;
};

/// The aggregate robustness report.
struct RobustnessReport {
  std::vector<RobustnessReplication> replications;
  /// The spec configured a ProcessorFailure inside the window.
  bool failure_injected = false;
  /// The Rebalancer accepted the repair (false: hard failure, rollback).
  bool recovered = false;
  /// Failure detection to repaired-table activation: (w_f+1)*H - fail_at.
  Time recovery_latency = 0;
  /// Repair summary, or the Rebalancer's rejection reason.
  std::string repair_detail;
  /// Nearest-rank percentiles of the per-replication miss rates.
  double miss_p50 = 0.0;
  double miss_p99 = 0.0;
  double mean_span_inflation = 1.0;
  /// Means of the per-replication before/after-recovery miss rates
  /// (failure runs only; 0 otherwise).
  double mean_miss_before = 0.0;
  double mean_miss_after = 0.0;
  /// Sums over the replications.
  std::int64_t total_violations = 0;
  std::int64_t total_deadline_misses = 0;
  std::int64_t total_lost_instances = 0;
};

/// Nearest-rank percentile (pct in [0, 100]) of \p values; 0 when empty.
/// Exposed for the scenario summary's pooled percentiles.
double robustness_percentile(std::vector<double> values, double pct);

/// Run the harness on \p schedule. Requires a complete schedule,
/// replications >= 1, and — when a failure is configured — fail_at inside
/// [0, hyperperiods * H).
RobustnessReport run_robustness(const Schedule& schedule,
                                const RobustnessOptions& options);

}  // namespace lbmem
