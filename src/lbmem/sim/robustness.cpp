#include "lbmem/sim/robustness.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "lbmem/api/solver.hpp"
#include "lbmem/obs/metrics.hpp"
#include "lbmem/obs/trace.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem {

namespace {

/// Stitch the metrics of two consecutive windows into one run's figures.
/// Counters add; spans and peaks take the max (all times are absolute, so
/// the later window's figures already include its offset); idle fractions
/// are re-derived from the merged busy over the full run.
SimMetrics merge_windows(const SimMetrics& a, const SimMetrics& b, Time h,
                         int total_reps) {
  SimMetrics m;
  m.span = std::max(a.span, b.span);
  m.predicted_span = std::max(a.predicted_span, b.predicted_span);
  m.violations = a.violations + b.violations;
  m.overlap_violations = a.overlap_violations + b.overlap_violations;
  m.data_violations = a.data_violations + b.data_violations;
  m.deadline_misses = a.deadline_misses + b.deadline_misses;
  m.lost_instances = a.lost_instances + b.lost_instances;
  m.total_instances = a.total_instances + b.total_instances;
  m.violation_details = a.violation_details;
  m.violation_details.insert(m.violation_details.end(),
                             b.violation_details.begin(),
                             b.violation_details.end());
  m.violation_records = a.violation_records;
  m.violation_records.insert(m.violation_records.end(),
                             b.violation_records.begin(),
                             b.violation_records.end());
  m.procs.resize(a.procs.size());
  const double window = static_cast<double>(h * static_cast<Time>(total_reps));
  for (std::size_t p = 0; p < a.procs.size(); ++p) {
    ProcMetrics& pm = m.procs[p];
    pm.busy = a.procs[p].busy + b.procs[p].busy;
    pm.idle_fraction = 1.0 - static_cast<double>(pm.busy) / window;
    pm.static_memory = std::max(a.procs[p].static_memory,
                                b.procs[p].static_memory);
    pm.peak_buffer = std::max(a.procs[p].peak_buffer, b.procs[p].peak_buffer);
    pm.peak_total = std::max(a.procs[p].peak_total, b.procs[p].peak_total);
  }
  return m;
}

/// Deep-copy the engine's running table (graph + rebound schedule) so the
/// phase simulations can keep reading it after a later repair rebuilds or
/// retires the engine's own graph (shed and epoch events do).
const Schedule* snapshot_table(
    const TaskGraph& graph, const Schedule& sched,
    std::vector<std::unique_ptr<TaskGraph>>& graphs,
    std::vector<std::unique_ptr<Schedule>>& scheds) {
  auto g = std::make_unique<TaskGraph>(graph);
  auto s = std::make_unique<Schedule>(*g, sched.architecture(), sched.comm());
  for (TaskId t = 0; t < static_cast<TaskId>(g->task_count()); ++t) {
    s->set_first_start(t, sched.first_start(t));
    const InstanceIdx n = g->instance_count(t);
    for (InstanceIdx k = 0; k < n; ++k) {
      s->assign(TaskInstance{t, k}, sched.proc(TaskInstance{t, k}));
    }
  }
  graphs.push_back(std::move(g));
  scheds.push_back(std::move(s));
  return scheds.back().get();
}

}  // namespace

MissRateSelector::MissRateSelector(std::vector<std::string> names) {
  entries_.reserve(names.size());
  for (std::string& name : names) {
    Entry entry;
    entry.name = std::move(name);
    entries_.push_back(std::move(entry));
  }
}

int MissRateSelector::pick() const {
  LBMEM_REQUIRE(!entries_.empty(),
                "miss-rate selection needs at least one candidate");
  // Exploration first: every candidate gets observed before any pooled
  // comparison happens (registration order keeps it deterministic).
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].count == 0) return static_cast<int>(i);
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (pooled(static_cast<int>(i)) < pooled(static_cast<int>(best))) {
      best = i;
    }
  }
  return static_cast<int>(best);
}

void MissRateSelector::observe(int index, double miss_rate) {
  LBMEM_REQUIRE(index >= 0 && index < size(),
                "miss-rate observation names an unknown candidate");
  Entry& entry = entries_[static_cast<std::size_t>(index)];
  entry.sum += miss_rate;
  ++entry.count;
}

const std::string& MissRateSelector::name(int index) const {
  LBMEM_REQUIRE(index >= 0 && index < size(),
                "candidate index out of range");
  return entries_[static_cast<std::size_t>(index)].name;
}

double MissRateSelector::pooled(int index) const {
  LBMEM_REQUIRE(index >= 0 && index < size(),
                "candidate index out of range");
  const Entry& entry = entries_[static_cast<std::size_t>(index)];
  return entry.count > 0 ? entry.sum / static_cast<double>(entry.count) : 0.0;
}

int MissRateSelector::observations(int index) const {
  LBMEM_REQUIRE(index >= 0 && index < size(),
                "candidate index out of range");
  return entries_[static_cast<std::size_t>(index)].count;
}

double robustness_percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;  // nearest-rank is 1-based
  if (idx >= values.size()) idx = values.size() - 1;
  return values[idx];
}

RobustnessReport run_robustness(const Schedule& schedule,
                                const RobustnessOptions& options) {
  LBMEM_REQUIRE(schedule.complete(),
                "robustness harness requires a complete schedule");
  LBMEM_REQUIRE(options.replications >= 1, "need at least one replication");
  const TaskGraph& graph = schedule.graph();
  const Time h = graph.hyperperiod();
  const int reps = options.sim.hyperperiods;
  const PerturbSpec& base = options.perturb;

  const std::vector<ProcessorFault> faults = base.all_failures();
  for (const ProcessorFault& f : faults) {
    LBMEM_REQUIRE(f.at >= 0 && f.at < h * static_cast<Time>(reps),
                  "every fail time must fall inside the simulated window");
  }

  RobustnessReport report;
  report.failure_injected = !faults.empty();
  report.replications.reserve(static_cast<std::size_t>(options.replications));

  // Phase boundaries: the hyper-period after each failure's window, where
  // the repaired table (if any) swaps in; the run's end closes the list.
  std::vector<int> cuts;
  cuts.reserve(faults.size() + 1);
  for (const ProcessorFault& f : faults) {
    cuts.push_back(static_cast<int>(f.at / h) + 1);
  }
  cuts.push_back(reps);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Failure handoff: each repair runs once per report — the decision
  // depends on the schedule and the failed processor, never on the noise
  // draws, so re-running it per replication would only duplicate work.
  std::optional<Rebalancer> system;
  if (!faults.empty()) {
    system.emplace(Rebalancer::adopt(graph, schedule, options.repair));
  }

  // Adaptive mode (DESIGN.md F30): miss-rate-driven rung-3 selection.
  const bool adaptive = !options.adaptive_resolvers.empty();
  std::vector<std::string> candidate_names;
  candidate_names.reserve(options.adaptive_resolvers.size());
  for (const auto& solver : options.adaptive_resolvers) {
    LBMEM_REQUIRE(solver != nullptr, "adaptive candidate must be non-null");
    candidate_names.push_back(solver->name());
  }
  MissRateSelector selector(std::move(candidate_names));

  // Tables the phases execute. Snapshots keep repaired tables alive after
  // later repairs mutate the engine; `active` is the table in force.
  std::vector<std::unique_ptr<TaskGraph>> snap_graphs;
  std::vector<std::unique_ptr<Schedule>> snap_scheds;
  const Schedule* active = &schedule;

  // Rejected failures: those processors stay dead for the rest of the run
  // (at = 0 loses every dispatch placed on them in later phases).
  std::vector<ProcessorFault> dead;

  struct Accum {
    SimMetrics metrics;
    bool any = false;
    double before = 0.0;
    double after = 0.0;
  };
  std::vector<Accum> acc(static_cast<std::size_t>(options.replications));

  // Phase-major sweep: simulate each phase for every replication, then
  // decide the repairs at its closing boundary. The adaptive pool only
  // ever contains phases that already ran — "observed so far" is literal.
  std::size_t fault_idx = 0;
  int governing = -1;  // selector index whose resolved table is in force
  int seg_start = 0;
  for (const int cut : cuts) {
    if (cut > seg_start) {
      SimOptions seg = options.sim;
      seg.hyperperiods = cut - seg_start;
      // Failures live in this phase: permanently dead processors plus
      // every not-yet-repaired failure at its absolute fail time (ones
      // beyond this phase's window never trigger — times are absolute).
      std::vector<ProcessorFault> live = dead;
      for (std::size_t i = fault_idx; i < faults.size(); ++i) {
        live.push_back(faults[i]);
      }
      double pooled = 0.0;
      for (int r = 0; r < options.replications; ++r) {
        LBMEM_TRACE_SPAN("robustness.replication");
        PerturbSpec spec = base.replication(r);
        spec.fail_proc = kNoProc;
        spec.fail_at = 0;
        spec.failures = live;
        const SimMetrics m = simulate_perturbed(*active, seg, spec, seg_start);
        Accum& a = acc[static_cast<std::size_t>(r)];
        if (report.failure_injected) {
          if (seg_start == 0) a.before = m.miss_rate();
          if (seg_start > 0) a.after = m.miss_rate();  // final phase wins
        }
        pooled += m.miss_rate();
        a.metrics = a.any ? merge_windows(a.metrics, m, h, reps) : m;
        a.any = true;
      }
      // Credit the phase to the candidate whose resolved table governed
      // it — and only to it (solver-fair, F24: candidates never pool
      // each other's phases).
      if (governing >= 0) {
        selector.observe(governing,
                         pooled / static_cast<double>(options.replications));
      }
    }

    // Repairs whose failure window closed at this boundary, in fail-time
    // order; each accepted repair's table governs from here on.
    while (fault_idx < faults.size() &&
           static_cast<int>(faults[fault_idx].at / h) + 1 == cut) {
      const ProcessorFault f = faults[fault_idx++];
      FailureOutcome fo;
      fo.proc = f.proc;
      fo.at = f.at;
      int pick = -1;
      if (adaptive) {
        pick = selector.pick();
        fo.resolver = selector.name(pick);
        system->set_degraded_resolver(options.adaptive_resolvers
                                          [static_cast<std::size_t>(pick)]);
      }
      const EventOutcome out = system->fail_processor(f.proc, f.at);
      fo.repaired = out.applied;
      fo.degraded_rung = out.degraded_rung;
      fo.shed = out.shed;
      if (out.applied) {
        fo.recovery_latency = h * static_cast<Time>(cut) - f.at;
        fo.detail =
            "repaired " + std::to_string(out.repaired_tasks) + " tasks, " +
            std::to_string(out.migrated_instances) + " instances migrated";
        active = snapshot_table(system->graph(), system->schedule(),
                                snap_graphs, snap_scheds);
        governing = (out.degraded_rung == 3) ? pick : -1;
      } else {
        dead.push_back(ProcessorFault{f.proc, 0});
        fo.detail = out.reject_reason;
        governing = -1;
      }
      report.failures.push_back(std::move(fo));
    }
    seg_start = cut;
  }

  // Report-level aggregates over the per-failure outcomes.
  if (!report.failures.empty()) {
    report.recovered = std::all_of(
        report.failures.begin(), report.failures.end(),
        [](const FailureOutcome& fo) { return fo.repaired; });
    for (const FailureOutcome& fo : report.failures) {
      report.recovery_latency =
          std::max(report.recovery_latency, fo.recovery_latency);
    }
    if (report.failures.size() == 1) {
      report.repair_detail = report.failures.front().detail;
    } else {
      for (const FailureOutcome& fo : report.failures) {
        if (!report.repair_detail.empty()) report.repair_detail += "; ";
        report.repair_detail += "P" + std::to_string(fo.proc + 1) + "@t=" +
                                std::to_string(fo.at) + ": " + fo.detail;
      }
    }
  }

  for (const Accum& a : acc) {
    RobustnessReplication rep;
    rep.metrics = a.metrics;
    rep.miss_rate = rep.metrics.miss_rate();
    rep.span_inflation = rep.metrics.span_inflation();
    rep.miss_rate_before = a.before;
    rep.miss_rate_after = a.after;
    report.replications.push_back(std::move(rep));
  }

  std::vector<double> miss_rates;
  miss_rates.reserve(report.replications.size());
  double inflation_sum = 0.0;
  double before_sum = 0.0;
  double after_sum = 0.0;
  for (const RobustnessReplication& rep : report.replications) {
    miss_rates.push_back(rep.miss_rate);
    inflation_sum += rep.span_inflation;
    before_sum += rep.miss_rate_before;
    after_sum += rep.miss_rate_after;
    report.total_violations += rep.metrics.violations;
    report.total_deadline_misses += rep.metrics.deadline_misses;
    report.total_lost_instances += rep.metrics.lost_instances;
  }
  const double n = static_cast<double>(report.replications.size());
  report.miss_p50 = robustness_percentile(miss_rates, 50.0);
  report.miss_p99 = robustness_percentile(miss_rates, 99.0);
  report.mean_span_inflation = inflation_sum / n;
  report.mean_miss_before = before_sum / n;
  report.mean_miss_after = after_sum / n;

  // Fold the harness-level figures once per report (the executor already
  // folded its own counts per run through options.sim.metrics).
  if (options.sim.metrics != nullptr) {
    obs::Registry& reg = *options.sim.metrics;
    const auto reports = reg.counter("robustness.reports",
                                     obs::MetricClass::Deterministic);
    const auto failures_id = reg.counter("robustness.failures_injected",
                                         obs::MetricClass::Deterministic);
    const auto recoveries = reg.counter("robustness.recoveries",
                                        obs::MetricClass::Deterministic);
    const auto latency = reg.histogram("robustness.recovery_latency",
                                       obs::MetricClass::Deterministic);
    reg.add(reports, 1);
    reg.add(failures_id, static_cast<std::int64_t>(report.failures.size()));
    // Ticks, not wall clock: each latency is h*(w+1) - fail_at, a schedule
    // property — deterministic by construction.
    for (const FailureOutcome& fo : report.failures) {
      if (!fo.repaired) continue;
      reg.add(recoveries, 1);
      reg.record(latency, fo.recovery_latency);
    }
  }
  return report;
}

}  // namespace lbmem
