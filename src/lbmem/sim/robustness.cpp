#include "lbmem/sim/robustness.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "lbmem/obs/metrics.hpp"
#include "lbmem/obs/trace.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem {

namespace {

/// Stitch the metrics of two consecutive windows into one run's figures.
/// Counters add; spans and peaks take the max (all times are absolute, so
/// the later window's figures already include its offset); idle fractions
/// are re-derived from the merged busy over the full run.
SimMetrics merge_windows(const SimMetrics& a, const SimMetrics& b, Time h,
                         int total_reps) {
  SimMetrics m;
  m.span = std::max(a.span, b.span);
  m.predicted_span = std::max(a.predicted_span, b.predicted_span);
  m.violations = a.violations + b.violations;
  m.overlap_violations = a.overlap_violations + b.overlap_violations;
  m.data_violations = a.data_violations + b.data_violations;
  m.deadline_misses = a.deadline_misses + b.deadline_misses;
  m.lost_instances = a.lost_instances + b.lost_instances;
  m.total_instances = a.total_instances + b.total_instances;
  m.violation_details = a.violation_details;
  m.violation_details.insert(m.violation_details.end(),
                             b.violation_details.begin(),
                             b.violation_details.end());
  m.violation_records = a.violation_records;
  m.violation_records.insert(m.violation_records.end(),
                             b.violation_records.begin(),
                             b.violation_records.end());
  m.procs.resize(a.procs.size());
  const double window = static_cast<double>(h * static_cast<Time>(total_reps));
  for (std::size_t p = 0; p < a.procs.size(); ++p) {
    ProcMetrics& pm = m.procs[p];
    pm.busy = a.procs[p].busy + b.procs[p].busy;
    pm.idle_fraction = 1.0 - static_cast<double>(pm.busy) / window;
    pm.static_memory = std::max(a.procs[p].static_memory,
                                b.procs[p].static_memory);
    pm.peak_buffer = std::max(a.procs[p].peak_buffer, b.procs[p].peak_buffer);
    pm.peak_total = std::max(a.procs[p].peak_total, b.procs[p].peak_total);
  }
  return m;
}

}  // namespace

double robustness_percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;  // nearest-rank is 1-based
  if (idx >= values.size()) idx = values.size() - 1;
  return values[idx];
}

RobustnessReport run_robustness(const Schedule& schedule,
                                const RobustnessOptions& options) {
  LBMEM_REQUIRE(schedule.complete(),
                "robustness harness requires a complete schedule");
  LBMEM_REQUIRE(options.replications >= 1, "need at least one replication");
  const TaskGraph& graph = schedule.graph();
  const Time h = graph.hyperperiod();
  const int reps = options.sim.hyperperiods;
  const PerturbSpec& base = options.perturb;

  RobustnessReport report;
  report.replications.reserve(static_cast<std::size_t>(options.replications));

  // Failure handoff: repair once per report — the repair decision depends
  // on the schedule and the failed processor, never on the noise draws, so
  // re-running it per replication would only duplicate work.
  int fail_window = 0;
  std::optional<Rebalancer> system;
  const Schedule* repaired = nullptr;
  if (base.fail_proc != kNoProc) {
    LBMEM_REQUIRE(base.fail_at >= 0 &&
                      base.fail_at < h * static_cast<Time>(reps),
                  "fail_at must fall inside the simulated window");
    report.failure_injected = true;
    fail_window = static_cast<int>(base.fail_at / h);
    system.emplace(Rebalancer::adopt(graph, schedule, options.repair));
    const EventOutcome out =
        system->fail_processor(base.fail_proc, base.fail_at);
    report.recovered = out.applied;
    if (out.applied) {
      repaired = &system->schedule();
      report.recovery_latency =
          h * static_cast<Time>(fail_window + 1) - base.fail_at;
      report.repair_detail =
          "repaired " + std::to_string(out.repaired_tasks) + " tasks, " +
          std::to_string(out.migrated_instances) + " instances migrated";
    } else {
      report.repair_detail = out.reject_reason;
    }
  }

  for (int r = 0; r < options.replications; ++r) {
    LBMEM_TRACE_SPAN("robustness.replication");
    const PerturbSpec spec = base.replication(r);
    RobustnessReplication rep;
    if (!report.failure_injected) {
      rep.metrics = simulate_perturbed(schedule, options.sim, spec, 0);
    } else {
      SimOptions pre = options.sim;
      pre.hyperperiods = fail_window + 1;
      const SimMetrics before = simulate_perturbed(schedule, pre, spec, 0);
      rep.miss_rate_before = before.miss_rate();
      const int tail = reps - fail_window - 1;
      if (tail > 0) {
        SimOptions post = options.sim;
        post.hyperperiods = tail;
        PerturbSpec tail_spec = spec;
        SimMetrics after;
        if (report.recovered) {
          // The repaired schedule hosts nothing on the dead processor;
          // drop the failure so the executor needs no special casing.
          tail_spec.fail_proc = kNoProc;
          tail_spec.fail_at = 0;
          after = simulate_perturbed(*repaired, post, tail_spec,
                                     fail_window + 1);
        } else {
          // Hard failure: the dead processor stays dead for the whole
          // tail (fail_at = 0 loses every dispatch placed on it).
          tail_spec.fail_at = 0;
          after = simulate_perturbed(schedule, post, tail_spec,
                                     fail_window + 1);
        }
        rep.miss_rate_after = after.miss_rate();
        rep.metrics = merge_windows(before, after, h, reps);
      } else {
        rep.metrics = before;
      }
    }
    rep.miss_rate = rep.metrics.miss_rate();
    rep.span_inflation = rep.metrics.span_inflation();
    report.replications.push_back(std::move(rep));
  }

  std::vector<double> miss_rates;
  miss_rates.reserve(report.replications.size());
  double inflation_sum = 0.0;
  double before_sum = 0.0;
  double after_sum = 0.0;
  for (const RobustnessReplication& rep : report.replications) {
    miss_rates.push_back(rep.miss_rate);
    inflation_sum += rep.span_inflation;
    before_sum += rep.miss_rate_before;
    after_sum += rep.miss_rate_after;
    report.total_violations += rep.metrics.violations;
    report.total_deadline_misses += rep.metrics.deadline_misses;
    report.total_lost_instances += rep.metrics.lost_instances;
  }
  const double n = static_cast<double>(report.replications.size());
  report.miss_p50 = robustness_percentile(miss_rates, 50.0);
  report.miss_p99 = robustness_percentile(miss_rates, 99.0);
  report.mean_span_inflation = inflation_sum / n;
  report.mean_miss_before = before_sum / n;
  report.mean_miss_after = after_sum / n;

  // Fold the harness-level figures once per report (the executor already
  // folded its own counts per run through options.sim.metrics).
  if (options.sim.metrics != nullptr) {
    obs::Registry& reg = *options.sim.metrics;
    const auto reports = reg.counter("robustness.reports",
                                     obs::MetricClass::Deterministic);
    const auto failures = reg.counter("robustness.failures_injected",
                                      obs::MetricClass::Deterministic);
    const auto recoveries = reg.counter("robustness.recoveries",
                                        obs::MetricClass::Deterministic);
    const auto latency = reg.histogram("robustness.recovery_latency",
                                       obs::MetricClass::Deterministic);
    reg.add(reports, 1);
    reg.add(failures, report.failure_injected ? 1 : 0);
    reg.add(recoveries, report.recovered ? 1 : 0);
    // Ticks, not wall clock: the latency is h*(w+1) - fail_at, a schedule
    // property — deterministic by construction.
    if (report.recovered) reg.record(latency, report.recovery_latency);
  }
  return report;
}

}  // namespace lbmem
