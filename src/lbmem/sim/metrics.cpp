#include "lbmem/sim/metrics.hpp"

#include <algorithm>

namespace lbmem {

double SimMetrics::mean_idle_fraction() const {
  if (procs.empty()) return 0.0;
  double sum = 0.0;
  for (const ProcMetrics& p : procs) sum += p.idle_fraction;
  return sum / static_cast<double>(procs.size());
}

Mem SimMetrics::max_peak_buffer() const {
  Mem peak = 0;
  for (const ProcMetrics& p : procs) peak = std::max(peak, p.peak_buffer);
  return peak;
}

Mem SimMetrics::max_peak_total() const {
  Mem peak = 0;
  for (const ProcMetrics& p : procs) peak = std::max(peak, p.peak_total);
  return peak;
}

double SimMetrics::miss_rate() const {
  if (total_instances <= 0) return 0.0;
  return static_cast<double>(deadline_misses + lost_instances) /
         static_cast<double>(total_instances);
}

double SimMetrics::span_inflation() const {
  if (predicted_span <= 0) return 1.0;
  return static_cast<double>(span) / static_cast<double>(predicted_span);
}

}  // namespace lbmem
