#include "lbmem/sim/metrics.hpp"

#include <algorithm>

namespace lbmem {

double SimMetrics::mean_idle_fraction() const {
  if (procs.empty()) return 0.0;
  double sum = 0.0;
  for (const ProcMetrics& p : procs) sum += p.idle_fraction;
  return sum / static_cast<double>(procs.size());
}

Mem SimMetrics::max_peak_buffer() const {
  Mem peak = 0;
  for (const ProcMetrics& p : procs) peak = std::max(peak, p.peak_buffer);
  return peak;
}

Mem SimMetrics::max_peak_total() const {
  Mem peak = 0;
  for (const ProcMetrics& p : procs) peak = std::max(peak, p.peak_total);
  return peak;
}

}  // namespace lbmem
