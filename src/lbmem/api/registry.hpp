#pragma once
/// \file registry.hpp
/// \brief Name-keyed solver registry (DESIGN.md F18): the single lookup
/// table drivers iterate over, so "run every algorithm on this workload"
/// is a loop instead of a hand-maintained call list.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lbmem/api/solver.hpp"

namespace lbmem {

/// An ordered, name-keyed set of solvers. Registration order is the
/// iteration (and report) order. Value type: start from builtin() and
/// add experiment-specific configurations freely.
class SolverRegistry {
 public:
  SolverRegistry() = default;

  /// Register \p solver under solver->name(). Throws Error on a duplicate
  /// name (names are the CLI vocabulary; silently shadowing one would make
  /// `--algo=` ambiguous).
  void add(std::shared_ptr<const Solver> solver);

  /// The solver registered under \p name, or nullptr.
  std::shared_ptr<const Solver> find(std::string_view name) const;

  /// find() or throw Error("unknown solver ...") listing the known names —
  /// the CLI surfaces that message verbatim (exit 1).
  std::shared_ptr<const Solver> require(std::string_view name) const;

  /// Registered solvers, in registration order.
  const std::vector<std::shared_ptr<const Solver>>& solvers() const {
    return solvers_;
  }

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  std::size_t size() const { return solvers_.size(); }

  /// A registry populated with every built-in adapter: "initial", the five
  /// "heuristic-<policy>" configurations, "round-robin", "memory-greedy",
  /// "ga", "bnb-partition", "dp-partition".
  static SolverRegistry with_builtins();

  /// Shared immutable instance of with_builtins() (the common case for
  /// drivers that only read).
  static const SolverRegistry& builtin();

 private:
  std::vector<std::shared_ptr<const Solver>> solvers_;
};

}  // namespace lbmem
