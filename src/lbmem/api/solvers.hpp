#pragma once
/// \file solvers.hpp
/// \brief The built-in Solver adapters (DESIGN.md F18): the paper's block
/// heuristic (one adapter per CostPolicy configuration), the GA and the
/// whole-task greedy baselines, the exact min-max partitioners lifted
/// through the task memory-weight abstraction, and the no-op "initial"
/// anchor. SolverRegistry::builtin() registers one instance of each.

#include <cstdint>

#include "lbmem/api/solver.hpp"
#include "lbmem/baseline/ga_balancer.hpp"
#include "lbmem/lb/load_balancer.hpp"

namespace lbmem {

/// "initial" — returns the Problem's initial schedule untouched: the
/// no-balancing anchor every comparison table needs.
class InitialSolver : public Solver {
 public:
  const std::string& name() const override;
  SolverCaps capabilities() const override;
  Outcome solve(const Problem& problem) const override;
};

/// "heuristic-<policy>" — the paper's load-balancing heuristic behind the
/// facade. Behavior-preserving over LoadBalancer: the adapter runs
/// LoadBalancer::balance on the initial schedule with the configured
/// options (capacity enforcement is additionally switched on whenever the
/// Problem's architecture declares a finite capacity) and translates
/// BalanceStats 1:1 into the SolveStats balance family.
class HeuristicSolver : public Solver {
 public:
  /// Name derived from the policy: heuristic_solver_name(options.policy).
  explicit HeuristicSolver(BalanceOptions options = {});
  /// Custom registry key for ablation configs (e.g. a migration-penalty
  /// or max-gain variant of the same policy).
  HeuristicSolver(std::string name, BalanceOptions options);

  const std::string& name() const override;
  SolverCaps capabilities() const override;
  Outcome solve(const Problem& problem) const override;

  const BalanceOptions& options() const { return options_; }

 private:
  std::string name_;
  BalanceOptions options_;
};

/// The canonical registry key of the heuristic under \p policy
/// ("heuristic-lex", "heuristic-formula", "heuristic-literal",
/// "heuristic-gain", "heuristic-memory" — the CLI's --policy vocabulary).
std::string heuristic_solver_name(CostPolicy policy);

/// "ga" — the genetic-algorithm baseline (whole-task assignments).
class GaSolver : public Solver {
 public:
  explicit GaSolver(GaOptions options = {});
  GaSolver(std::string name, GaOptions options);

  const std::string& name() const override;
  SolverCaps capabilities() const override;
  Outcome solve(const Problem& problem) const override;

  const GaOptions& options() const { return options_; }

 private:
  std::string name_;
  GaOptions options_;
};

/// "round-robin" — task i (topological order) on processor i mod M.
class RoundRobinSolver : public Solver {
 public:
  const std::string& name() const override;
  SolverCaps capabilities() const override;
  Outcome solve(const Problem& problem) const override;
};

/// "memory-greedy" — tasks by decreasing memory, least-loaded processor
/// first (the paper's refs [10-12] memory balancing).
class MemoryGreedySolver : public Solver {
 public:
  const std::string& name() const override;
  SolverCaps capabilities() const override;
  Outcome solve(const Problem& problem) const override;
};

/// "bnb-partition" — exact (budget-bounded) min-max partition of the
/// whole-task memory weights (memory × instance count) by branch and
/// bound; the assignment is then scheduled with the earliest-start forced
/// scheduler. Reports the partition-only stats family (DESIGN.md F18).
class BnbPartitionSolver : public Solver {
 public:
  /// \p node_budget bounds the search (see bnb_partition); the registry
  /// default keeps `compare --algo=all` responsive on hundreds of tasks.
  explicit BnbPartitionSolver(std::uint64_t node_budget = 5'000'000);

  const std::string& name() const override;
  SolverCaps capabilities() const override;
  Outcome solve(const Problem& problem) const override;

 private:
  std::uint64_t node_budget_;
};

/// "dp-partition" — the exact two-machine subset-sum DP cross-check;
/// infeasible (with a clean detail) for M != 2 or oversized totals.
class DpPartitionSolver : public Solver {
 public:
  const std::string& name() const override;
  SolverCaps capabilities() const override;
  Outcome solve(const Problem& problem) const override;
};

/// SolveStats view of a BalanceStats: common block copied 1:1, the
/// heuristic family filled, wall time carried over. Shared by the
/// HeuristicSolver adapter and summarize(BalanceStats), so the facade's
/// stats can never drift from the balancer's own.
SolveStats to_solve_stats(const BalanceStats& stats);

/// The whole-task memory weights the partition baselines optimize:
/// weight(t) = memory(t) × instance_count(t) — the resident memory task t
/// costs whichever single processor hosts all of its instances.
std::vector<Mem> task_memory_weights(const TaskGraph& graph);

}  // namespace lbmem
