#pragma once
/// \file scenario.hpp
/// \brief Head-to-head scenario runner (DESIGN.md F18): sweep a registry
/// subset across a generator suite and collect a comparison report. The
/// rendering (table / JSON) lives in report/solve.hpp; this module only
/// produces the structured result, so other drivers (benches, notebooks)
/// can consume the same data.

#include <cstdint>
#include <string>
#include <vector>

#include "lbmem/api/registry.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/sim/engine.hpp"

namespace lbmem {

/// What to sweep: a generator suite and the solver subset to race on it.
struct ScenarioSpec {
  /// Workloads: spec.count instances from seeds base_seed, base_seed+1, …
  /// (unschedulable seeds are skipped and counted).
  SuiteSpec suite;
  /// Registry names to run, in this order; empty = every registered
  /// solver in registration order.
  std::vector<std::string> solvers;
  /// Worker threads for the (instance x solver) sweep (DESIGN.md F19/F20):
  /// 1 (the default) runs the cells sequentially, 0 resolves to the
  /// hardware concurrency. Every cell solves its own Problem and writes
  /// its own pre-sized slot, so the report — cell order, summary, JSON —
  /// is identical for every thread count (wall-clock fields aside, which
  /// are never deterministic). Solvers keep their own registered `threads`
  /// configuration; the registry defaults are single-threaded, so sweeping
  /// them in parallel does not oversubscribe.
  int threads = 1;
  /// Robustness mode: run this many seeded perturbed replications of the
  /// discrete-event executor per *feasible* cell, under suite.perturb's
  /// noise model (0 = off, the static comparison). Every instance derives
  /// one noise stream from (suite.perturb.seed, instance seed) — shared by
  /// all solvers racing on it, so a task draws the same overrun whichever
  /// schedule hosts it and the comparison is apples-to-apples — and
  /// replication seeds are derived by value, so the report is bit-identical
  /// across thread counts and replication order.
  int replications = 0;
  /// Executor window per replication (hyper-periods, local buffers).
  SimOptions sim;
  /// Miss-rate-driven solver selection (DESIGN.md F30): adds a virtual
  /// "adaptive" summary row that, per instance (in suite order), mirrors
  /// the cell of the candidate with the best pooled perturbed miss rate
  /// observed on the *previous* instances — unobserved candidates are
  /// explored first in spec order, an infeasible pick observes the
  /// worst-case rate of 1.0 (an infeasible schedule misses everything).
  /// A sequential post-pass over already-solved cells, so the row is
  /// byte-identical for every thread count. Requires replications > 0.
  bool adaptive = false;
  /// Observability sink (DESIGN.md F25): when set, the sweep counts its
  /// cells (Deterministic class) and records one per-solver wall-time
  /// histogram sample per cell (`compare.wall_us.<solver>`, Timing class).
  /// Inherited into sim.metrics for the robustness replications unless
  /// that pointer was already set. The registry is shard-per-thread, so
  /// the parallel sweep records contention-free; it must outlive run().
  obs::Registry* metrics = nullptr;
};

/// One solver's outcome on one suite instance.
struct ScenarioCell {
  std::string solver;
  std::uint64_t seed = 0;
  bool feasible = false;
  Time makespan = 0;
  Mem max_memory = 0;
  Time gain = 0;  ///< initial-schedule makespan minus the solver's
  double wall_seconds = 0.0;
  std::string detail;  ///< configuration echo or the infeasibility reason
  // Robustness mode (ScenarioSpec::replications > 0), feasible cells only:
  bool perturbed = false;
  /// Per-replication miss rates, in replication order.
  std::vector<double> rep_miss_rates;
  double miss_p50 = 0.0;
  double miss_p99 = 0.0;
  double mean_span_inflation = 1.0;
  /// Executor invariant violations summed over the replications.
  std::int64_t sim_violations = 0;
};

/// Per-solver aggregates. Quality means (makespan, memory, gain) average
/// over the *solved* instances — an infeasible run has no makespan to
/// average. Wall time averages over *all* instances: a solver that burns
/// seconds before declaring infeasible pays for them in the timing
/// column, and `solved` sits next to it so the two denominators are
/// always visible together.
struct ScenarioSolverSummary {
  std::string solver;
  int solved = 0;  ///< instances with a feasible outcome
  double mean_makespan = 0.0;
  double mean_max_memory = 0.0;
  double mean_gain = 0.0;
  double mean_wall_seconds = 0.0;  ///< over all instances, solved or not
  // Robustness mode: percentiles pooled over every replication of every
  // solved instance (miss rates are comparable across instances — they are
  // already normalized by instance size), inflation averaged over them.
  double miss_p50 = 0.0;
  double miss_p99 = 0.0;
  double mean_span_inflation = 1.0;
};

/// The full sweep result.
struct ScenarioReport {
  int instances = 0;      ///< suite instances actually generated
  int skipped_seeds = 0;  ///< unschedulable seeds the generator skipped
  /// Echo of ScenarioSpec::replications (> 0: robustness columns present).
  int replications = 0;
  /// instance-major: all solvers on instance 0, then instance 1, …
  std::vector<ScenarioCell> cells;
  /// solver order of the spec (summary row even when nothing solved).
  std::vector<ScenarioSolverSummary> summary;
  /// Adaptive mode (ScenarioSpec::adaptive): present when true.
  bool adaptive = false;
  /// Per instance, the candidate the adaptive policy ran (suite order).
  std::vector<std::string> adaptive_picks;
  /// The virtual policy's aggregates (solver == "adaptive").
  ScenarioSolverSummary adaptive_summary;
};

/// Runs registry subsets over generator suites.
class ScenarioRunner {
 public:
  /// \p registry must outlive the runner.
  explicit ScenarioRunner(const SolverRegistry& registry =
                              SolverRegistry::builtin());

  /// Run the sweep. Throws Error on an unknown solver name (before any
  /// workload is generated); ScheduleError never escapes — per-instance
  /// infeasibility is data, not failure.
  ScenarioReport run(const ScenarioSpec& spec) const;

 private:
  const SolverRegistry* registry_;
};

}  // namespace lbmem
