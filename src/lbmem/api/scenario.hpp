#pragma once
/// \file scenario.hpp
/// \brief Head-to-head scenario runner (DESIGN.md F18): sweep a registry
/// subset across a generator suite and collect a comparison report. The
/// rendering (table / JSON) lives in report/solve.hpp; this module only
/// produces the structured result, so other drivers (benches, notebooks)
/// can consume the same data.

#include <cstdint>
#include <string>
#include <vector>

#include "lbmem/api/registry.hpp"
#include "lbmem/gen/suites.hpp"

namespace lbmem {

/// What to sweep: a generator suite and the solver subset to race on it.
struct ScenarioSpec {
  /// Workloads: spec.count instances from seeds base_seed, base_seed+1, …
  /// (unschedulable seeds are skipped and counted).
  SuiteSpec suite;
  /// Registry names to run, in this order; empty = every registered
  /// solver in registration order.
  std::vector<std::string> solvers;
};

/// One solver's outcome on one suite instance.
struct ScenarioCell {
  std::string solver;
  std::uint64_t seed = 0;
  bool feasible = false;
  Time makespan = 0;
  Mem max_memory = 0;
  Time gain = 0;  ///< initial-schedule makespan minus the solver's
  double wall_seconds = 0.0;
  std::string detail;  ///< configuration echo or the infeasibility reason
};

/// Per-solver aggregates over the solved instances.
struct ScenarioSolverSummary {
  std::string solver;
  int solved = 0;  ///< instances with a feasible outcome
  double mean_makespan = 0.0;
  double mean_max_memory = 0.0;
  double mean_gain = 0.0;
  double mean_wall_seconds = 0.0;
};

/// The full sweep result.
struct ScenarioReport {
  int instances = 0;      ///< suite instances actually generated
  int skipped_seeds = 0;  ///< unschedulable seeds the generator skipped
  /// instance-major: all solvers on instance 0, then instance 1, …
  std::vector<ScenarioCell> cells;
  /// solver order of the spec (summary row even when nothing solved).
  std::vector<ScenarioSolverSummary> summary;
};

/// Runs registry subsets over generator suites.
class ScenarioRunner {
 public:
  /// \p registry must outlive the runner.
  explicit ScenarioRunner(const SolverRegistry& registry =
                              SolverRegistry::builtin());

  /// Run the sweep. Throws Error on an unknown solver name (before any
  /// workload is generated); ScheduleError never escapes — per-instance
  /// infeasibility is data, not failure.
  ScenarioReport run(const ScenarioSpec& spec) const;

 private:
  const SolverRegistry* registry_;
};

}  // namespace lbmem
