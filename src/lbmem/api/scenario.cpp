#include "lbmem/api/scenario.hpp"

#include "lbmem/obs/metrics.hpp"
#include "lbmem/obs/trace.hpp"
#include "lbmem/sim/robustness.hpp"
#include "lbmem/util/thread_pool.hpp"

namespace lbmem {

ScenarioRunner::ScenarioRunner(const SolverRegistry& registry)
    : registry_(&registry) {}

ScenarioReport ScenarioRunner::run(const ScenarioSpec& spec) const {
  // Resolve the subset up front: an unknown name is a caller error and
  // must fail before minutes of workload generation, not after.
  std::vector<std::shared_ptr<const Solver>> solvers;
  if (spec.solvers.empty()) {
    solvers = registry_->solvers();
  } else {
    solvers.reserve(spec.solvers.size());
    for (const std::string& name : spec.solvers) {
      solvers.push_back(registry_->require(name));
    }
  }

  ScenarioReport report;
  report.summary.resize(solvers.size());
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    report.summary[s].solver = solvers[s]->name();
  }

  int skipped = 0;
  const std::vector<SuiteInstance> suite = make_suite(spec.suite, &skipped);
  report.instances = static_cast<int>(suite.size());
  report.skipped_seeds = skipped;
  report.replications = spec.replications;

  // The (instance x solver) cells are independent units of work: each
  // builds its own Problem from the shared-immutable suite instance,
  // solves it, and fills exactly its own pre-sized slot — so the cell
  // order (instance-major) and everything derived from it are identical
  // for every thread count (DESIGN.md F19/F20). push_back would be both
  // a data race and an ordering leak under the pool.
  const std::size_t width = solvers.size();
  report.cells.assign(suite.size() * width, ScenarioCell{});

  // Metric ids are resolved once, on this thread, before the sweep: the
  // pool workers then only shard-record, and the emitted name set is fixed
  // up front (one wall-time histogram per racing solver — Timing class,
  // wall clock is never deterministic; the cell counters are).
  obs::MetricId cells_id, feasible_id;
  std::vector<obs::MetricId> wall_ids(width);
  if (spec.metrics != nullptr) {
    cells_id = spec.metrics->counter("compare.cells",
                                     obs::MetricClass::Deterministic);
    feasible_id = spec.metrics->counter("compare.cells_feasible",
                                        obs::MetricClass::Deterministic);
    for (std::size_t s = 0; s < width; ++s) {
      wall_ids[s] = spec.metrics->histogram(
          "compare.wall_us." + solvers[s]->name(), obs::MetricClass::Timing);
    }
  }

  const auto solve_cell = [&](std::size_t idx) {
    obs::ScopedSpan cell_span("compare.cell", "compare");
    const SuiteInstance& instance = suite[idx / width];
    const std::shared_ptr<const Solver>& solver = solvers[idx % width];
    const Problem problem(instance.graph, instance.schedule);
    const Outcome outcome = solver->solve(problem);
    ScenarioCell& cell = report.cells[idx];
    cell.solver = solver->name();
    cell.seed = instance.seed;
    cell.feasible = outcome.feasible();
    cell.makespan = outcome.stats.makespan_after;
    cell.max_memory = outcome.stats.max_memory_after;
    cell.gain = outcome.stats.gain_total;
    cell.wall_seconds = outcome.stats.wall_seconds;
    cell.detail = outcome.detail;
    if (spec.metrics != nullptr) {
      spec.metrics->add(cells_id, 1);
      if (cell.feasible) spec.metrics->add(feasible_id, 1);
      spec.metrics->record(
          wall_ids[idx % width],
          static_cast<std::int64_t>(cell.wall_seconds * 1e6));
    }
    if (spec.replications > 0 && outcome.feasible()) {
      // Robustness replications: the instance's noise stream is shared by
      // every solver racing on it (seeded from the workload seed, not the
      // solver), so a task overruns identically under each schedule and
      // the miss-rate column compares schedules, not luck.
      RobustnessOptions rob;
      rob.sim = spec.sim;
      if (rob.sim.metrics == nullptr) rob.sim.metrics = spec.metrics;
      rob.perturb = spec.suite.perturb;
      rob.perturb.seed = perturb_hash(spec.suite.perturb.seed,
                                      kPerturbScenario, instance.seed);
      rob.replications = spec.replications;
      const RobustnessReport r = run_robustness(*outcome.schedule, rob);
      cell.perturbed = true;
      cell.rep_miss_rates.reserve(r.replications.size());
      for (const RobustnessReplication& rep : r.replications) {
        cell.rep_miss_rates.push_back(rep.miss_rate);
      }
      cell.miss_p50 = r.miss_p50;
      cell.miss_p99 = r.miss_p99;
      cell.mean_span_inflation = r.mean_span_inflation;
      cell.sim_violations = r.total_violations;
    }
  };
  const int threads = ThreadPool::resolve(spec.threads);
  if (threads > 1 && report.cells.size() > 1) {
    ThreadPool pool(threads);
    pool.parallel_for(report.cells.size(), solve_cell);
  } else {
    for (std::size_t idx = 0; idx < report.cells.size(); ++idx) {
      solve_cell(idx);
    }
  }

  // Summary post-pass on this thread, in cell order. Quality means
  // aggregate over the solved instances; wall time over all of them (a
  // solver that burns seconds before declaring infeasible must not look
  // free in the timing column).
  for (std::size_t idx = 0; idx < report.cells.size(); ++idx) {
    const ScenarioCell& cell = report.cells[idx];
    ScenarioSolverSummary& row = report.summary[idx % width];
    row.mean_wall_seconds += cell.wall_seconds;
    if (!cell.feasible) continue;
    ++row.solved;
    row.mean_makespan += static_cast<double>(cell.makespan);
    row.mean_max_memory += static_cast<double>(cell.max_memory);
    row.mean_gain += static_cast<double>(cell.gain);
  }
  for (ScenarioSolverSummary& row : report.summary) {
    if (row.solved > 0) {
      const double n = row.solved;
      row.mean_makespan /= n;
      row.mean_max_memory /= n;
      row.mean_gain /= n;
    }
    if (report.instances > 0) {
      row.mean_wall_seconds /= report.instances;
    }
  }

  // Robustness post-pass (sequential, cell order): pool every replication
  // of every solved instance per solver and take nearest-rank percentiles
  // — deterministic because the pooled order is the cell order.
  if (spec.replications > 0) {
    for (std::size_t s = 0; s < width; ++s) {
      std::vector<double> pooled;
      double inflation_sum = 0.0;
      int perturbed_cells = 0;
      for (std::size_t idx = s; idx < report.cells.size(); idx += width) {
        const ScenarioCell& cell = report.cells[idx];
        if (!cell.perturbed) continue;
        pooled.insert(pooled.end(), cell.rep_miss_rates.begin(),
                      cell.rep_miss_rates.end());
        inflation_sum += cell.mean_span_inflation;
        ++perturbed_cells;
      }
      ScenarioSolverSummary& row = report.summary[s];
      row.miss_p50 = robustness_percentile(pooled, 50.0);
      row.miss_p99 = robustness_percentile(pooled, 99.0);
      if (perturbed_cells > 0) {
        row.mean_span_inflation = inflation_sum / perturbed_cells;
      }
    }
  }

  // Adaptive post-pass (DESIGN.md F30), sequential and in suite order: a
  // virtual policy that, per instance, mirrors the cell of the candidate
  // with the best pooled miss rate observed on the previous instances.
  // Pure fold over already-solved cells — thread-count invariant, and the
  // per-instance noise streams are solver-fair (F24), so the pool compares
  // schedules, not luck.
  if (spec.adaptive && spec.replications > 0 && width > 0) {
    report.adaptive = true;
    std::vector<std::string> names;
    names.reserve(width);
    for (const auto& solver : solvers) names.push_back(solver->name());
    MissRateSelector selector(std::move(names));
    ScenarioSolverSummary& row = report.adaptive_summary;
    row.solver = "adaptive";
    report.adaptive_picks.reserve(suite.size());
    std::vector<double> pooled;
    double inflation_sum = 0.0;
    int perturbed_cells = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      const int pick = selector.pick();
      const ScenarioCell& cell =
          report.cells[i * width + static_cast<std::size_t>(pick)];
      report.adaptive_picks.push_back(cell.solver);
      row.mean_wall_seconds += cell.wall_seconds;
      if (cell.feasible) {
        ++row.solved;
        row.mean_makespan += static_cast<double>(cell.makespan);
        row.mean_max_memory += static_cast<double>(cell.max_memory);
        row.mean_gain += static_cast<double>(cell.gain);
      }
      if (cell.perturbed) {
        double sum = 0.0;
        for (const double m : cell.rep_miss_rates) sum += m;
        selector.observe(pick, cell.rep_miss_rates.empty()
                                   ? 0.0
                                   : sum / cell.rep_miss_rates.size());
        pooled.insert(pooled.end(), cell.rep_miss_rates.begin(),
                      cell.rep_miss_rates.end());
        inflation_sum += cell.mean_span_inflation;
        ++perturbed_cells;
      } else {
        // An infeasible pick still teaches the policy: a schedule that
        // does not exist misses every deadline.
        selector.observe(pick, 1.0);
      }
    }
    if (row.solved > 0) {
      const double n = row.solved;
      row.mean_makespan /= n;
      row.mean_max_memory /= n;
      row.mean_gain /= n;
    }
    if (report.instances > 0) {
      row.mean_wall_seconds /= report.instances;
    }
    row.miss_p50 = robustness_percentile(pooled, 50.0);
    row.miss_p99 = robustness_percentile(pooled, 99.0);
    if (perturbed_cells > 0) {
      row.mean_span_inflation = inflation_sum / perturbed_cells;
    }
  }
  return report;
}

}  // namespace lbmem
