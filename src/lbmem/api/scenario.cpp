#include "lbmem/api/scenario.hpp"

#include <utility>

namespace lbmem {

ScenarioRunner::ScenarioRunner(const SolverRegistry& registry)
    : registry_(&registry) {}

ScenarioReport ScenarioRunner::run(const ScenarioSpec& spec) const {
  // Resolve the subset up front: an unknown name is a caller error and
  // must fail before minutes of workload generation, not after.
  std::vector<std::shared_ptr<const Solver>> solvers;
  if (spec.solvers.empty()) {
    solvers = registry_->solvers();
  } else {
    solvers.reserve(spec.solvers.size());
    for (const std::string& name : spec.solvers) {
      solvers.push_back(registry_->require(name));
    }
  }

  ScenarioReport report;
  report.summary.resize(solvers.size());
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    report.summary[s].solver = solvers[s]->name();
  }

  int skipped = 0;
  const std::vector<SuiteInstance> suite = make_suite(spec.suite, &skipped);
  report.instances = static_cast<int>(suite.size());
  report.skipped_seeds = skipped;

  for (const SuiteInstance& instance : suite) {
    const Problem problem(instance.graph, instance.schedule);
    for (std::size_t s = 0; s < solvers.size(); ++s) {
      const Outcome outcome = solvers[s]->solve(problem);
      ScenarioCell cell;
      cell.solver = solvers[s]->name();
      cell.seed = instance.seed;
      cell.feasible = outcome.feasible();
      cell.makespan = outcome.stats.makespan_after;
      cell.max_memory = outcome.stats.max_memory_after;
      cell.gain = outcome.stats.gain_total;
      cell.wall_seconds = outcome.stats.wall_seconds;
      cell.detail = outcome.detail;
      report.cells.push_back(std::move(cell));

      if (outcome.feasible()) {
        ScenarioSolverSummary& row = report.summary[s];
        ++row.solved;
        row.mean_makespan += static_cast<double>(outcome.stats.makespan_after);
        row.mean_max_memory +=
            static_cast<double>(outcome.stats.max_memory_after);
        row.mean_gain += static_cast<double>(outcome.stats.gain_total);
        row.mean_wall_seconds += outcome.stats.wall_seconds;
      }
    }
  }

  for (ScenarioSolverSummary& row : report.summary) {
    if (row.solved == 0) continue;
    const double n = row.solved;
    row.mean_makespan /= n;
    row.mean_max_memory /= n;
    row.mean_gain /= n;
    row.mean_wall_seconds /= n;
  }
  return report;
}

}  // namespace lbmem
