#include "lbmem/api/solver.hpp"

#include <utility>

#include "lbmem/validate/validator.hpp"

namespace lbmem::detail {

void fill_before(SolveStats& stats, const Schedule& initial) {
  stats.makespan_before = initial.makespan();
  stats.max_memory_before = initial.max_memory();
  const int procs = initial.architecture().processor_count();
  stats.memory_before.resize(static_cast<std::size_t>(procs));
  for (ProcId p = 0; p < procs; ++p) {
    stats.memory_before[static_cast<std::size_t>(p)] = initial.memory_on(p);
  }
}

void fill_after(SolveStats& stats, const Schedule& result) {
  stats.makespan_after = result.makespan();
  stats.gain_total = stats.makespan_before - stats.makespan_after;
  stats.max_memory_after = result.max_memory();
  const int procs = result.architecture().processor_count();
  stats.memory_after.resize(static_cast<std::size_t>(procs));
  for (ProcId p = 0; p < procs; ++p) {
    stats.memory_after[static_cast<std::size_t>(p)] = result.memory_on(p);
  }
}

Outcome finish_outcome(const Problem& problem, SolveStats stats,
                       Schedule schedule, std::string detail) {
  const ValidationReport report = validate(schedule);
  if (!report.ok()) {
    return infeasible_outcome(problem, std::move(stats),
                              "invalid schedule:\n" + report.to_string());
  }
  fill_after(stats, schedule);
  Outcome outcome;
  outcome.schedule = std::move(schedule);
  outcome.stats = std::move(stats);
  outcome.detail = std::move(detail);
  outcome.graph = problem.shared_graph();
  return outcome;
}

Outcome infeasible_outcome(const Problem& problem, SolveStats stats,
                           std::string detail) {
  // Mirror "before" so reports never show uninitialized after-figures.
  stats.makespan_after = stats.makespan_before;
  stats.gain_total = 0;
  stats.max_memory_after = stats.max_memory_before;
  stats.memory_after = stats.memory_before;
  Outcome outcome;
  outcome.stats = std::move(stats);
  outcome.detail = std::move(detail);
  outcome.graph = problem.shared_graph();
  return outcome;
}

}  // namespace lbmem::detail
