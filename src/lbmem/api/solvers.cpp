#include "lbmem/api/solvers.hpp"

#include <sstream>
#include <utility>

#include "lbmem/baseline/bnb_partitioner.hpp"
#include "lbmem/baseline/dp_partitioner.hpp"
#include "lbmem/baseline/partition.hpp"
#include "lbmem/baseline/simple_balancers.hpp"
#include "lbmem/util/stopwatch.hpp"

namespace lbmem {

namespace {

/// Common tail of the from-scratch whole-task adapters: time the run,
/// translate "no schedule" into an infeasible Outcome, validate the rest.
Outcome finish_optional(const Problem& problem, SolveStats stats,
                        std::optional<Schedule> schedule,
                        const Stopwatch& watch, std::string detail,
                        const char* infeasible_reason) {
  stats.wall_seconds = watch.seconds();
  if (!schedule) {
    return detail::infeasible_outcome(problem, std::move(stats),
                                      infeasible_reason);
  }
  return detail::finish_outcome(problem, std::move(stats),
                                std::move(*schedule), std::move(detail));
}

}  // namespace

SolveStats to_solve_stats(const BalanceStats& stats) {
  SolveStats out;
  out.makespan_before = stats.makespan_before;
  out.makespan_after = stats.makespan_after;
  out.gain_total = stats.gain_total;
  out.max_memory_before = stats.max_memory_before;
  out.max_memory_after = stats.max_memory_after;
  out.memory_before = stats.memory_before;
  out.memory_after = stats.memory_after;
  out.wall_seconds = stats.wall_seconds;
  out.has_balance = true;
  out.blocks_total = stats.blocks_total;
  out.blocks_category1 = stats.blocks_category1;
  out.moves_off_home = stats.moves_off_home;
  out.gains_applied = stats.gains_applied;
  out.forced_stays = stats.forced_stays;
  out.attempts_used = stats.attempts_used;
  out.fell_back = stats.fell_back;
  out.dest_evaluated = stats.dest_evaluated;
  out.dest_skipped_by_bound = stats.dest_skipped_by_bound;
  out.dest_cut_by_incumbent = stats.dest_cut_by_incumbent;
  return out;
}

std::vector<Mem> task_memory_weights(const TaskGraph& graph) {
  std::vector<Mem> weights(graph.task_count());
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    weights[static_cast<std::size_t>(t)] =
        graph.task(t).memory * static_cast<Mem>(graph.instance_count(t));
  }
  return weights;
}

// ---- InitialSolver --------------------------------------------------------

const std::string& InitialSolver::name() const {
  static const std::string kName = "initial";
  return kName;
}

SolverCaps InitialSolver::capabilities() const {
  SolverCaps caps;
  caps.refines_initial = true;  // "refines" by the identity transform
  return caps;
}

Outcome InitialSolver::solve(const Problem& problem) const {
  SolveStats stats;
  detail::fill_before(stats, problem.initial_schedule());
  return detail::finish_outcome(problem, std::move(stats),
                                problem.initial_schedule(),
                                "the initial schedule, no balancing");
}

// ---- HeuristicSolver ------------------------------------------------------

HeuristicSolver::HeuristicSolver(BalanceOptions options)
    : HeuristicSolver(heuristic_solver_name(options.policy),
                      std::move(options)) {}

HeuristicSolver::HeuristicSolver(std::string name, BalanceOptions options)
    : name_(std::move(name)), options_(std::move(options)) {}

const std::string& HeuristicSolver::name() const { return name_; }

SolverCaps HeuristicSolver::capabilities() const {
  SolverCaps caps;
  caps.splits_instances = true;
  caps.refines_initial = true;
  caps.respects_capacity = true;
  return caps;
}

Outcome HeuristicSolver::solve(const Problem& problem) const {
  BalanceOptions options = options_;
  // A Problem with a finite capacity means the capacity is part of the
  // instance; the heuristic is the one solver that can actively respect it.
  if (problem.architecture().has_memory_limit()) {
    options.enforce_memory_capacity = true;
  }
  Stopwatch watch;
  BalanceResult result =
      LoadBalancer(options).balance(problem.initial_schedule());
  SolveStats stats = to_solve_stats(result.stats);
  stats.wall_seconds = watch.seconds();
  return detail::finish_outcome(problem, std::move(stats),
                                std::move(result.schedule),
                                "policy=" + to_string(options_.policy));
}

std::string heuristic_solver_name(CostPolicy policy) {
  switch (policy) {
    case CostPolicy::Lexicographic: return "heuristic-lex";
    case CostPolicy::PaperFormula: return "heuristic-formula";
    case CostPolicy::PaperLiteral: return "heuristic-literal";
    case CostPolicy::GainOnly: return "heuristic-gain";
    case CostPolicy::MemoryOnly: return "heuristic-memory";
  }
  return "heuristic";
}

// ---- GaSolver -------------------------------------------------------------

GaSolver::GaSolver(GaOptions options) : GaSolver("ga", std::move(options)) {}

GaSolver::GaSolver(std::string name, GaOptions options)
    : name_(std::move(name)), options_(std::move(options)) {}

const std::string& GaSolver::name() const { return name_; }

SolverCaps GaSolver::capabilities() const {
  return SolverCaps{};  // whole-task, from scratch, capacity-oblivious
}

Outcome GaSolver::solve(const Problem& problem) const {
  SolveStats stats;
  detail::fill_before(stats, problem.initial_schedule());

  Stopwatch watch;
  std::optional<GaResult> result = ga_balance(
      problem.graph(), problem.architecture(), problem.comm(), options_);
  stats.wall_seconds = watch.seconds();
  if (!result) {
    return detail::infeasible_outcome(
        problem, std::move(stats),
        "no feasible assignment found in the GA run");
  }

  stats.has_ga = true;
  stats.fitness = result->fitness;
  stats.evaluations = result->evaluations;
  stats.infeasible_evaluations = result->infeasible_evaluations;

  std::ostringstream detail_line;
  detail_line << "population=" << options_.population << " generations="
              << options_.generations << " seed=" << options_.seed;
  return detail::finish_outcome(problem, std::move(stats),
                                std::move(result->schedule),
                                detail_line.str());
}

// ---- simple whole-task greedies -------------------------------------------

const std::string& RoundRobinSolver::name() const {
  static const std::string kName = "round-robin";
  return kName;
}

SolverCaps RoundRobinSolver::capabilities() const { return SolverCaps{}; }

Outcome RoundRobinSolver::solve(const Problem& problem) const {
  SolveStats stats;
  detail::fill_before(stats, problem.initial_schedule());
  Stopwatch watch;
  std::optional<Schedule> schedule = round_robin_schedule(
      problem.graph(), problem.architecture(), problem.comm());
  return finish_optional(problem, std::move(stats), std::move(schedule),
                         watch,
                         "task i on processor i mod M, topological order",
                         "the round-robin assignment is unschedulable");
}

const std::string& MemoryGreedySolver::name() const {
  static const std::string kName = "memory-greedy";
  return kName;
}

SolverCaps MemoryGreedySolver::capabilities() const { return SolverCaps{}; }

Outcome MemoryGreedySolver::solve(const Problem& problem) const {
  SolveStats stats;
  detail::fill_before(stats, problem.initial_schedule());
  Stopwatch watch;
  std::optional<Schedule> schedule = memory_greedy_schedule(
      problem.graph(), problem.architecture(), problem.comm());
  return finish_optional(problem, std::move(stats), std::move(schedule),
                         watch,
                         "decreasing memory, least-loaded processor first",
                         "the memory-greedy assignment is unschedulable");
}

// ---- partition baselines --------------------------------------------------

namespace {

/// Shared tail of the partition adapters: schedule the whole-task
/// assignment with the forced earliest-start scheduler and validate.
Outcome schedule_partition(SolveStats stats, const Problem& problem,
                           const PartitionResult& partition,
                           const Stopwatch& watch, std::string detail_line) {
  std::vector<ProcId> assignment(partition.assignment.begin(),
                                 partition.assignment.end());
  std::optional<Schedule> schedule;
  std::string reason;
  try {
    schedule = build_forced_schedule(problem.graph(), problem.architecture(),
                                     problem.comm(), assignment);
  } catch (const ScheduleError& e) {
    reason = std::string("the partition assignment is unschedulable: ") +
             e.what();
  }
  stats.wall_seconds = watch.seconds();
  if (!schedule) {
    return detail::infeasible_outcome(problem, std::move(stats),
                                      std::move(reason));
  }
  return detail::finish_outcome(problem, std::move(stats),
                                std::move(*schedule),
                                std::move(detail_line));
}

}  // namespace

BnbPartitionSolver::BnbPartitionSolver(std::uint64_t node_budget)
    : node_budget_(node_budget) {}

const std::string& BnbPartitionSolver::name() const {
  static const std::string kName = "bnb-partition";
  return kName;
}

SolverCaps BnbPartitionSolver::capabilities() const {
  SolverCaps caps;
  caps.partition_only = true;
  return caps;
}

Outcome BnbPartitionSolver::solve(const Problem& problem) const {
  const std::vector<Mem> weights = task_memory_weights(problem.graph());
  const int machines = problem.architecture().processor_count();

  SolveStats stats;
  detail::fill_before(stats, problem.initial_schedule());

  Stopwatch watch;
  const BnbResult result = bnb_partition(weights, machines, node_budget_);
  stats.has_partition = true;
  stats.partition_max_load = result.partition.max_load;
  stats.partition_lower_bound = partition_lower_bound(weights, machines);
  stats.partition_proven_optimal = result.proven_optimal;
  stats.partition_nodes = result.nodes_explored;

  std::ostringstream detail_line;
  detail_line << "min-max memory partition, "
              << (result.proven_optimal ? "optimal proven"
                                        : "node budget exhausted")
              << ", nodes=" << result.nodes_explored;
  return schedule_partition(std::move(stats), problem, result.partition,
                            watch, detail_line.str());
}

const std::string& DpPartitionSolver::name() const {
  static const std::string kName = "dp-partition";
  return kName;
}

SolverCaps DpPartitionSolver::capabilities() const {
  SolverCaps caps;
  caps.partition_only = true;
  caps.machines_exact = 2;
  return caps;
}

Outcome DpPartitionSolver::solve(const Problem& problem) const {
  SolveStats stats;
  detail::fill_before(stats, problem.initial_schedule());

  const int machines = problem.architecture().processor_count();
  if (machines != 2) {
    return detail::infeasible_outcome(
        problem, std::move(stats),
        "the subset-sum DP handles exactly 2 processors (M=" +
            std::to_string(machines) + ")");
  }
  const std::vector<Mem> weights = task_memory_weights(problem.graph());
  Mem total = 0;
  for (const Mem w : weights) total += w;
  // dp_partition_two's documented precondition; report it as an instance
  // limitation instead of tripping the PreconditionError.
  if (total > (Mem{1} << 22)) {
    return detail::infeasible_outcome(
        problem, std::move(stats),
        "total memory weight " + std::to_string(total) +
            " exceeds the DP's 2^22 bound");
  }

  Stopwatch watch;
  const PartitionResult partition = dp_partition_two(weights);
  stats.has_partition = true;
  stats.partition_max_load = partition.max_load;
  stats.partition_lower_bound = partition_lower_bound(weights, machines);
  stats.partition_proven_optimal = true;

  return schedule_partition(std::move(stats), problem, partition, watch,
                            "exact two-machine subset-sum DP");
}

}  // namespace lbmem
