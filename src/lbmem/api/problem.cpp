#include "lbmem/api/problem.hpp"

#include <utility>

#include "lbmem/util/check.hpp"

namespace lbmem {

Problem::Problem(std::shared_ptr<const TaskGraph> graph, Schedule initial)
    : graph_(std::move(graph)), initial_(std::move(initial)) {
  LBMEM_REQUIRE(graph_ != nullptr, "Problem needs a task graph");
  LBMEM_REQUIRE(&initial_.graph() == graph_.get(),
                "the initial schedule must reference the Problem's graph");
  LBMEM_REQUIRE(initial_.complete(),
                "the initial schedule must be complete");
}

Problem Problem::generate(const WorkloadSpec& spec) {
  auto graph = std::make_shared<const TaskGraph>(
      random_task_graph(spec.graph, spec.seed));
  Schedule initial = build_initial_schedule(
      *graph, Architecture(spec.processors, spec.memory_capacity),
      CommModel::flat(spec.comm_cost), spec.scheduler);
  return Problem(std::move(graph), std::move(initial));
}

Problem Problem::adopt(const Schedule& initial) {
  // Aliasing shared_ptr with no control block: non-owning by design — the
  // caller owns the graph (see the class comment).
  std::shared_ptr<const TaskGraph> alias(std::shared_ptr<const TaskGraph>(),
                                         &initial.graph());
  return Problem(std::move(alias), initial);
}

}  // namespace lbmem
