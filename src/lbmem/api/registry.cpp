#include "lbmem/api/registry.hpp"

#include <utility>

#include "lbmem/api/solvers.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem {

void SolverRegistry::add(std::shared_ptr<const Solver> solver) {
  LBMEM_REQUIRE(solver != nullptr, "cannot register a null solver");
  if (find(solver->name()) != nullptr) {
    throw Error("solver '" + solver->name() + "' is already registered");
  }
  solvers_.push_back(std::move(solver));
}

std::shared_ptr<const Solver> SolverRegistry::find(
    std::string_view name) const {
  for (const auto& solver : solvers_) {
    if (solver->name() == name) return solver;
  }
  return nullptr;
}

std::shared_ptr<const Solver> SolverRegistry::require(
    std::string_view name) const {
  if (auto solver = find(name)) return solver;
  std::string known;
  for (const auto& solver : solvers_) {
    if (!known.empty()) known += ", ";
    known += solver->name();
  }
  throw Error("unknown solver '" + std::string(name) + "' (known: " + known +
              ")");
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.push_back(solver->name());
  return out;
}

SolverRegistry SolverRegistry::with_builtins() {
  SolverRegistry registry;
  registry.add(std::make_shared<InitialSolver>());
  for (const CostPolicy policy :
       {CostPolicy::Lexicographic, CostPolicy::PaperFormula,
        CostPolicy::PaperLiteral, CostPolicy::GainOnly,
        CostPolicy::MemoryOnly}) {
    BalanceOptions options;
    options.policy = policy;
    registry.add(std::make_shared<HeuristicSolver>(options));
  }
  registry.add(std::make_shared<RoundRobinSolver>());
  registry.add(std::make_shared<MemoryGreedySolver>());
  registry.add(std::make_shared<GaSolver>());
  registry.add(std::make_shared<BnbPartitionSolver>());
  registry.add(std::make_shared<DpPartitionSolver>());
  return registry;
}

const SolverRegistry& SolverRegistry::builtin() {
  static const SolverRegistry kRegistry = with_builtins();
  return kRegistry;
}

}  // namespace lbmem
