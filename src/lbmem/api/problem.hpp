#pragma once
/// \file problem.hpp
/// \brief The one problem spec every solver consumes (DESIGN.md F18).
///
/// A Problem bundles what the paper's comparison varies over: an
/// application graph, a homogeneous architecture, a communication model,
/// and a complete initial schedule (the output of the paper's ref-[4]
/// scheduling stage). Solvers that refine an existing distribution (the
/// block heuristic) start from the initial schedule; solvers that place
/// from scratch (GA, round-robin, the partition baselines) read only the
/// graph/architecture/comm triple but still report their result against
/// the initial schedule's makespan and memory, so every Outcome is
/// comparable to every other.
///
/// Problems are built three ways:
///  * generate() — seeded random workload + initial schedule (WorkloadSpec
///    mirrors the CLI's workload flags and gen/suites' SuiteSpec);
///  * the owning constructor — share a graph with an existing schedule
///    (gen/suites' SuiteInstance plugs in directly);
///  * adopt() — alias a schedule whose graph the *caller* keeps alive
///    (non-owning; used by the online engine's full-resolve mode).

#include <cstdint>
#include <memory>

#include "lbmem/gen/random_graph.hpp"
#include "lbmem/sched/scheduler.hpp"

namespace lbmem {

/// Generator-built problem description: the workload shape plus the
/// architecture and schedule-construction knobs. Mirrors the CLI's
/// workload flags one to one.
struct WorkloadSpec {
  RandomGraphParams graph;
  std::uint64_t seed = 1;
  int processors = 4;
  Time comm_cost = 2;  ///< flat communication time C
  Mem memory_capacity = kUnlimitedMemory;
  SchedulerOptions scheduler;
};

/// One solvable instance: graph + architecture + comm + initial schedule.
class Problem {
 public:
  /// Wrap an existing scheduled system. \p initial must be complete and
  /// reference \p graph.
  Problem(std::shared_ptr<const TaskGraph> graph, Schedule initial);

  /// Generate a workload, schedule it, and wrap the result. Throws
  /// ScheduleError when the seed is unschedulable under the spec's policy.
  static Problem generate(const WorkloadSpec& spec);

  /// Alias \p initial without taking ownership of its graph: the caller
  /// guarantees the graph outlives the Problem and every Outcome solved
  /// from it. Used where the graph's owner is the caller itself (the
  /// online engine hands its own running schedule to a full-resolve
  /// solver).
  static Problem adopt(const Schedule& initial);

  const TaskGraph& graph() const { return *graph_; }
  std::shared_ptr<const TaskGraph> shared_graph() const { return graph_; }
  const Architecture& architecture() const {
    return initial_.architecture();
  }
  const CommModel& comm() const { return initial_.comm(); }

  /// The complete, valid-by-construction initial schedule the solvers
  /// refine or compare against.
  const Schedule& initial_schedule() const { return initial_; }

 private:
  std::shared_ptr<const TaskGraph> graph_;
  Schedule initial_;
};

}  // namespace lbmem
