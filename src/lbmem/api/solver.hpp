#pragma once
/// \file solver.hpp
/// \brief The polymorphic solver facade (DESIGN.md F18): one interface
/// over the paper heuristic, the GA and greedy baselines, and the exact
/// partitioners, so drivers (CLI, examples, benches, scenario suites) can
/// iterate over algorithms instead of hard-coding call shapes.
///
/// Contracts:
///  * solve() never throws for "this solver cannot handle this instance";
///    it returns an infeasible Outcome with the reason in `detail`.
///    Programming errors (precondition violations) still throw.
///  * An engaged Outcome::schedule always passes validate/ — every adapter
///    runs the independent validator before handing a schedule out, so an
///    algorithm that silently produces an over-capacity or conflicting
///    placement surfaces as infeasible, not as a bad schedule.
///  * SolveStats is the unified superset of BalanceStats / GaResult /
///    the partition results: the common block is always filled (before
///    figures come from the Problem's initial schedule, so every solver is
///    measured against the same anchor); family blocks are guarded by
///    has_* flags (a partition baseline has no block counters to report —
///    see DESIGN.md F18 on why partition-only stats exist at all).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lbmem/api/problem.hpp"

namespace lbmem {

/// What a solver can and cannot do — drivers use these to pick subsets
/// and to build instances a solver accepts (DESIGN.md F18).
struct SolverCaps {
  /// Can place the instances of one task on different processors (the
  /// paper heuristic's block granularity); whole-task solvers cannot.
  bool splits_instances = false;
  /// Refines Problem::initial_schedule() (vs. placing from scratch using
  /// only graph + architecture + comm).
  bool refines_initial = false;
  /// Honors a finite per-processor memory capacity during the search (any
  /// solver may still *return* infeasible when the result busts it).
  bool respects_capacity = false;
  /// Optimizes only the min-max memory partition (Theorem 2's objective);
  /// timing comes from the forced earliest-start schedule afterwards.
  bool partition_only = false;
  /// 0 = any processor count; otherwise the exact M required (the
  /// two-machine DP).
  int machines_exact = 0;
  /// Same Problem, same Outcome, every run (all built-ins are; the GA is
  /// deterministic per configured seed).
  bool deterministic = true;
};

/// Unified outcome metrics (superset of BalanceStats / GaResult / the
/// partition results). The common block is always valid; family blocks
/// only when their has_* flag is set.
struct SolveStats {
  // -- common (always filled; "before" = the Problem's initial schedule) --
  Time makespan_before = 0;
  Time makespan_after = 0;
  /// makespan_before - makespan_after. Signed: the heuristic guarantees
  /// >= 0 (Theorem 1), from-scratch solvers may regress.
  Time gain_total = 0;
  Mem max_memory_before = 0;
  Mem max_memory_after = 0;
  std::vector<Mem> memory_before;  ///< per processor
  std::vector<Mem> memory_after;   ///< per processor
  double wall_seconds = 0.0;

  // -- paper-heuristic family (BalanceStats) ------------------------------
  bool has_balance = false;
  int blocks_total = 0;
  int blocks_category1 = 0;
  int moves_off_home = 0;
  int gains_applied = 0;
  int forced_stays = 0;
  int attempts_used = 0;
  bool fell_back = false;
  std::int64_t dest_evaluated = 0;
  std::int64_t dest_skipped_by_bound = 0;
  std::int64_t dest_cut_by_incumbent = 0;

  // -- GA family (GaResult) -----------------------------------------------
  bool has_ga = false;
  double fitness = 0.0;
  int evaluations = 0;
  int infeasible_evaluations = 0;

  // -- partition family (PartitionResult / BnbResult) ---------------------
  bool has_partition = false;
  Mem partition_max_load = 0;      ///< the paper's ω over memory weights
  Mem partition_lower_bound = 0;   ///< max(ceil(total/M), max weight)
  bool partition_proven_optimal = false;
  std::uint64_t partition_nodes = 0;  ///< B&B nodes explored (0 for DP)
};

/// What one solve produced: a valid schedule (when feasible), the unified
/// stats, and a per-solver detail line (configuration echo, or the reason
/// the instance was infeasible for this solver).
struct Outcome {
  /// Engaged iff the solver found a schedule; valid by contract.
  std::optional<Schedule> schedule;
  SolveStats stats;
  std::string detail;
  /// Shares the Problem's graph ownership: a Schedule holds a raw pointer
  /// to its TaskGraph, so an Outcome must keep the graph alive even after
  /// the (possibly temporary) Problem it was solved from is gone. For
  /// Problems built with adopt() this is the same non-owning alias — the
  /// caller-guarantees-lifetime caveat carries over.
  std::shared_ptr<const TaskGraph> graph;

  bool feasible() const { return schedule.has_value(); }
};

/// The facade every algorithm implements.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Stable registry key (e.g. "heuristic-lex", "ga", "bnb-partition").
  virtual const std::string& name() const = 0;

  virtual SolverCaps capabilities() const = 0;

  /// Solve \p problem. Never throws for unsupported/unschedulable
  /// instances — see the file comment for the Outcome contract.
  virtual Outcome solve(const Problem& problem) const = 0;
};

namespace detail {

/// Fill the common "before" block of \p stats from the problem's initial
/// schedule (the shared comparison anchor).
void fill_before(SolveStats& stats, const Schedule& initial);

/// Fill the common "after" block (and gain_total) from \p result.
void fill_after(SolveStats& stats, const Schedule& result);

/// Validate \p schedule and build the Outcome: engaged on success,
/// infeasible with the validator's report as detail otherwise. The
/// "after" block is filled from the schedule on success, and the
/// problem's graph ownership is carried into the Outcome.
Outcome finish_outcome(const Problem& problem, SolveStats stats,
                       Schedule schedule, std::string detail);

/// An infeasible Outcome (no schedule; "after" mirrors "before").
Outcome infeasible_outcome(const Problem& problem, SolveStats stats,
                           std::string detail);

}  // namespace detail

}  // namespace lbmem
