#pragma once
/// \file trace.hpp
/// \brief Scoped-span tracer emitting Chrome trace-event / Perfetto
/// compatible JSON (load the file in chrome://tracing or ui.perfetto.dev).
///
/// Cost model (DESIGN.md F26):
///  * Disabled (the default): a ScopedSpan is one relaxed atomic load and
///    a branch — nothing is recorded, nothing allocates, and
///    `test_alloc_hotpath` plus the bit-identical-across-thread-counts
///    guarantees are untouched. There is no compile-time knob; the
///    instrumentation is always compiled in and the branch is the cost.
///  * Enabled (`Tracer::install`): each recording thread gets one span
///    buffer whose full capacity is reserved up front on the thread's
///    first span — after that, recording a span is two steady_clock reads
///    and a push into preallocated memory. When a buffer fills, further
///    spans on that thread are *dropped and counted* (never reallocate,
///    never block).
///
/// Spans are stored at begin time, so each thread's buffer is in span
/// *begin* order; at `--threads=1` the whole file is a deterministic
/// transcript of the control flow (the golden test ObsTrace.GoldenSpanNames
/// pins it). Span names and categories must be string literals (or
/// otherwise outlive the tracer): only the pointer is stored.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lbmem::obs {

/// One completed (or still-open) span. ts/dur are nanoseconds since the
/// tracer's construction; dur == UINT64_MAX marks a span whose ScopedSpan
/// has not closed yet (skipped on emit).
struct Span {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = UINT64_MAX;
};

class Tracer {
 public:
  /// \p capacity_per_thread is the fixed span capacity of each thread's
  /// buffer (reserved on the thread's first span; never grown).
  explicit Tracer(std::size_t capacity_per_thread = 1 << 15);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Make \p tracer the process-wide recording target (nullptr disables).
  /// Not meant for concurrent flipping mid-run: install before spawning
  /// recording work, uninstall after joining it.
  static void install(Tracer* tracer);

  /// The recording target, or nullptr when tracing is disabled. Relaxed
  /// load — this is the whole disabled-path cost.
  static Tracer* current() {
    return g_current.load(std::memory_order_relaxed);
  }

  /// Begin a span on the calling thread. Returns the slot to close, or
  /// nullptr if the thread's buffer is full (the drop is counted).
  Span* begin(const char* name, const char* category);

  /// Close a span returned by begin().
  void end(Span* span);

  /// Total spans dropped across all threads because a buffer was full.
  std::uint64_t dropped() const;

  /// Span names in emission order (per-thread buffers in registration
  /// order, each in begin order) — the golden-transcript view. Only
  /// closed spans are included, matching write_json().
  std::vector<std::string> span_names() const;

  /// Number of closed spans across all threads.
  std::size_t span_count() const;

  /// Emit Chrome trace-event JSON ({"traceEvents": [...]}; ph "X"
  /// complete events, ts/dur in microseconds, build-info provenance under
  /// "otherData"). Quiesce recording first.
  void write_json(std::ostream& out) const;

 private:
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();

  static std::atomic<Tracer*> g_current;

  const std::size_t capacity_;
  const std::uint64_t serial_;  ///< distinguishes tracers in the TLS cache
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: opens on construction when tracing is enabled, closes on
/// destruction. Safe (and nearly free) to construct when disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "lbmem") {
    Tracer* tracer = Tracer::current();
    if (tracer) {
      tracer_ = tracer;
      span_ = tracer->begin(name, category);
    }
  }
  ~ScopedSpan() {
    if (tracer_ && span_) tracer_->end(span_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  Span* span_ = nullptr;
};

/// Install/uninstall a tracer for a lexical scope.
class TracerScope {
 public:
  explicit TracerScope(Tracer* tracer) { Tracer::install(tracer); }
  ~TracerScope() { Tracer::install(nullptr); }
  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;
};

}  // namespace lbmem::obs

#define LBMEM_OBS_CONCAT_INNER(a, b) a##b
#define LBMEM_OBS_CONCAT(a, b) LBMEM_OBS_CONCAT_INNER(a, b)

/// Open a span for the rest of the enclosing scope.
#define LBMEM_TRACE_SPAN(name) \
  ::lbmem::obs::ScopedSpan LBMEM_OBS_CONCAT(lbmem_scoped_span_, __LINE__){name}
