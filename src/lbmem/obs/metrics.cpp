#include "lbmem/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>

#include "lbmem/util/check.hpp"

namespace lbmem::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

// ---- LatencyHistogram -----------------------------------------------------
//
// Bucket layout: indices 0..63 hold the exact values 0..63 (width 1).
// Above that, each power-of-two range [2^e, 2^(e+1)) for e >= 6 is split
// into 32 equal sub-buckets of width 2^(e-5). The index is derived from
// the bit width alone — no loops, no floating point — and the upper edge
// reconstructs exactly.

std::size_t LatencyHistogram::bucket_index(std::int64_t value) {
  if (value < 64) return static_cast<std::size_t>(value);
  const auto v = static_cast<std::uint64_t>(value);
  const int msb = std::bit_width(v) - 1;       // >= 6
  const int shift = msb - 5;                   // sub-bucket width = 2^shift
  const auto sub = static_cast<std::size_t>(v >> shift);  // in [32, 64)
  return 64 + static_cast<std::size_t>(msb - 6) * 32 + (sub - 32);
}

std::int64_t LatencyHistogram::bucket_upper_edge(std::size_t index) {
  if (index < 64) return static_cast<std::int64_t>(index);
  const std::size_t rel = index - 64;
  const int msb = static_cast<int>(rel / 32) + 6;
  const std::size_t sub = rel % 32 + 32;
  const int shift = msb - 5;
  // Highest value mapping to this bucket: ((sub + 1) << shift) - 1.
  return static_cast<std::int64_t>(
      ((static_cast<std::uint64_t>(sub) + 1) << shift) - 1);
}

void LatencyHistogram::record(std::int64_t value) {
  if (value < 0) value = 0;  // sizes/latencies are non-negative; clamp
  const std::size_t index = bucket_index(value);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  ++counts_[index];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t LatencyHistogram::percentile(double pct) const {
  if (count_ == 0) return 0;
  pct = std::min(pct, 100.0);
  // Nearest rank: the smallest rank r with r/count >= pct/100, at least 1.
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(pct / 100.0 * static_cast<double>(count_))));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // The max is exact; never report a bucket edge beyond it.
      return std::min(bucket_upper_edge(i), max_);
    }
  }
  return max_;
}

std::vector<std::pair<std::int64_t, std::int64_t>> LatencyHistogram::buckets()
    const {
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) out.emplace_back(bucket_upper_edge(i), counts_[i]);
  }
  return out;
}

// ---- Registry shards ------------------------------------------------------

struct Registry::Shard {
  std::vector<std::int64_t> scalars;        // counters: sum; gauges: max
  std::vector<LatencyHistogram> histograms;
};

namespace {

std::atomic<std::uint64_t> g_registry_serial{1};

/// Per-thread shard cache: one entry per registry this thread has recorded
/// into. Serial numbers (never reused) guard against a stale pointer when
/// a registry at the same address was destroyed and another constructed.
struct TlsEntry {
  std::uint64_t serial;
  void* shard;
};
thread_local std::vector<TlsEntry> t_shards;

/// Entries for destroyed registries can never match again (serials are
/// not reused), so bound the scan: once the cache is full, evict the
/// entry with the smallest serial. Evicting a still-live registry is
/// harmless — the thread re-registers on its next write and the new
/// shard merges like any other at snapshot time.
constexpr std::size_t kTlsCacheCap = 16;

void evict_oldest(std::vector<TlsEntry>& cache) {
  if (cache.size() <= kTlsCacheCap) return;
  auto oldest = cache.begin();
  for (auto it = cache.begin() + 1; it != cache.end(); ++it) {
    if (it->serial < oldest->serial) oldest = it;
  }
  cache.erase(oldest);
}

}  // namespace

Registry::Registry() : serial_(g_registry_serial.fetch_add(1)) {}
Registry::~Registry() = default;

MetricId Registry::register_metric(const std::string& name, MetricKind kind,
                                   MetricClass cls) {
  LBMEM_REQUIRE(!name.empty(), "metric names must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Desc& d : descs_) {
    if (d.name == name) {
      LBMEM_REQUIRE(d.kind == kind && d.cls == cls,
                    "metric re-registered with a different kind or class: " +
                        name);
      return MetricId{d.slot, d.kind};
    }
  }
  const std::uint32_t slot = (kind == MetricKind::Histogram)
                                 ? histogram_slots_++
                                 : scalar_slots_++;
  descs_.push_back(Desc{name, kind, cls, slot});
  return MetricId{slot, kind};
}

MetricId Registry::counter(const std::string& name, MetricClass cls) {
  return register_metric(name, MetricKind::Counter, cls);
}
MetricId Registry::gauge(const std::string& name, MetricClass cls) {
  return register_metric(name, MetricKind::Gauge, cls);
}
MetricId Registry::histogram(const std::string& name, MetricClass cls) {
  return register_metric(name, MetricKind::Histogram, cls);
}

Registry::Shard& Registry::local_shard() {
  for (const TlsEntry& entry : t_shards) {
    if (entry.serial == serial_) return *static_cast<Shard*>(entry.shard);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  t_shards.push_back(TlsEntry{serial_, shard});
  evict_oldest(t_shards);
  return *shard;
}

void Registry::add(MetricId id, std::int64_t delta) {
  LBMEM_REQUIRE(id.valid() && id.kind == MetricKind::Counter,
                "add() takes a counter id");
  Shard& shard = local_shard();
  // Metrics registered after this shard's first touch extend it lazily;
  // only the owning thread ever writes, so the growth is race-free.
  if (id.slot >= shard.scalars.size()) shard.scalars.resize(id.slot + 1, 0);
  shard.scalars[id.slot] += delta;
}

void Registry::raise(MetricId id, std::int64_t value) {
  LBMEM_REQUIRE(id.valid() && id.kind == MetricKind::Gauge,
                "raise() takes a gauge id");
  Shard& shard = local_shard();
  if (id.slot >= shard.scalars.size()) shard.scalars.resize(id.slot + 1, 0);
  shard.scalars[id.slot] = std::max(shard.scalars[id.slot], value);
}

void Registry::record(MetricId id, std::int64_t value) {
  LBMEM_REQUIRE(id.valid() && id.kind == MetricKind::Histogram,
                "record() takes a histogram id");
  Shard& shard = local_shard();
  if (id.slot >= shard.histograms.size()) shard.histograms.resize(id.slot + 1);
  shard.histograms[id.slot].record(value);
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return descs_.size();
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.entries.reserve(descs_.size());
  for (const Desc& d : descs_) {
    SnapshotEntry entry;
    entry.name = d.name;
    entry.kind = d.kind;
    entry.cls = d.cls;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (d.kind == MetricKind::Histogram) {
        if (d.slot < shard->histograms.size()) {
          entry.histogram.merge(shard->histograms[d.slot]);
        }
      } else if (d.slot < shard->scalars.size()) {
        const std::int64_t v = shard->scalars[d.slot];
        entry.value = (d.kind == MetricKind::Gauge)
                          ? std::max(entry.value, v)
                          : entry.value + v;
      }
    }
    snap.entries.push_back(std::move(entry));
  }
  // Name-sorted: the emitted order must not depend on which thread
  // registered first (registration can happen from pool workers).
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.name < b.name;
            });
  return snap;
}

const SnapshotEntry* Snapshot::find(const std::string& name) const {
  for (const SnapshotEntry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace lbmem::obs
