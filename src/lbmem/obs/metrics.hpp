#pragma once
/// \file metrics.hpp
/// \brief The metrics registry: named counters, high-watermark gauges and
/// log-bucketed latency histograms, recorded through per-thread shards so
/// the PR-6 pool paths (parallel destination scan, parallel scenario
/// sweep) stay contention-free and merge-deterministic.
///
/// Determinism contract (DESIGN.md F25): every metric carries a class.
///  * `Deterministic` metrics depend only on the inputs (workload, seeds,
///    options) — identical for every thread count and execution schedule.
///    They are emitted under the top-level "metrics" key.
///  * `Timing` metrics depend on the wall clock or on the scan schedule
///    (e.g. the bound-and-prune counters, whose split between
///    evaluated/skipped/cut is a property of the incumbent schedule — see
///    BalanceStats). They are emitted under the top-level "timing" key,
///    mirroring PR 5's `--timing=off` discipline: stripping that one
///    subtree leaves a byte-deterministic artifact.
///
/// Shards: each recording thread owns a private shard (counters add,
/// gauges max, histograms bucket-count add); snapshot() merges them with
/// associative + commutative operations, so the merged result is
/// independent of the thread count and of which thread recorded what.
/// Recording is wait-free after the first touch per thread (a thread_local
/// lookup plus a plain store into thread-private memory). snapshot() and
/// reset() must not race with recording — callers quiesce first (the pool
/// paths join before reporting, which is the natural order anyway).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lbmem::obs {

/// What a metric is.
enum class MetricKind { Counter, Gauge, Histogram };

/// Determinism class (see the file comment).
enum class MetricClass { Deterministic, Timing };

const char* to_string(MetricKind kind);

/// Log-bucketed value histogram (HDR-style) with an exact nearest-rank
/// percentile contract at bucket resolution:
///  * values 0..63 land in width-1 buckets, so percentiles over them are
///    *exact* nearest-rank order statistics;
///  * larger values share power-of-two ranges split into 32 sub-buckets,
///    so a reported percentile is the upper edge of the bucket holding the
///    nearest-rank sample — an overestimate by at most a factor 1/32
///    (3.125%) of the value;
///  * negative inputs clamp to 0 (latencies and sizes are non-negative by
///    construction; a clamped record still counts).
/// merge() adds bucket counts, so it is associative and commutative —
/// cross-shard and cross-thread merges produce identical histograms in any
/// order (tested by ObsMetrics.MergeIsAssociative).
class LatencyHistogram {
 public:
  /// Record one value.
  void record(std::int64_t value);

  /// Fold \p other into this histogram (bucket-count addition).
  void merge(const LatencyHistogram& other);

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  /// Smallest / largest recorded value, exact (0 when empty).
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Nearest-rank percentile: the value at rank ceil(pct/100 * count),
  /// reported as the upper edge of its bucket (exact below 64; see the
  /// class comment). Returns 0 on an empty histogram; pct is clamped to
  /// (0, 100].
  std::int64_t percentile(double pct) const;

  /// Non-empty buckets in ascending value order, as (upper edge, count)
  /// pairs — the run-deterministic serialization of the distribution.
  std::vector<std::pair<std::int64_t, std::int64_t>> buckets() const;

  bool operator==(const LatencyHistogram& other) const {
    return count_ == other.count_ && sum_ == other.sum_ &&
           min_ == other.min_ && max_ == other.max_ &&
           counts_ == other.counts_;
  }

 private:
  static std::size_t bucket_index(std::int64_t value);
  static std::int64_t bucket_upper_edge(std::size_t index);

  std::vector<std::int64_t> counts_;  ///< grown lazily to the top bucket
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Handle to a registered metric (index into the registry's slot tables).
struct MetricId {
  std::uint32_t slot = UINT32_MAX;
  MetricKind kind = MetricKind::Counter;
  bool valid() const { return slot != UINT32_MAX; }
};

/// One merged metric in a Snapshot.
struct SnapshotEntry {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  MetricClass cls = MetricClass::Deterministic;
  std::int64_t value = 0;       ///< counters: sum; gauges: max over shards
  LatencyHistogram histogram;   ///< histograms only
};

/// A merged, name-sorted view of a registry at one quiesced point.
struct Snapshot {
  std::vector<SnapshotEntry> entries;
  /// Entry by name, or nullptr. Linear scan — snapshots are small.
  const SnapshotEntry* find(const std::string& name) const;
};

/// The registry. Registration is by name and idempotent: re-registering a
/// name returns the existing id (the kind and class must match — a
/// mismatch throws), so layers that are constructed per call (a
/// LoadBalancer per event, say) can register their ids unconditionally.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  MetricId counter(const std::string& name,
                   MetricClass cls = MetricClass::Deterministic);
  MetricId gauge(const std::string& name,
                 MetricClass cls = MetricClass::Deterministic);
  MetricId histogram(const std::string& name,
                     MetricClass cls = MetricClass::Deterministic);

  /// Add \p delta to a counter (thread-safe, shard-local).
  void add(MetricId id, std::int64_t delta = 1);
  /// Raise a high-watermark gauge to at least \p value (max semantics:
  /// the only scalar merge that is order-free across shards).
  void raise(MetricId id, std::int64_t value);
  /// Record \p value into a histogram.
  void record(MetricId id, std::int64_t value);

  /// Merge every shard into a name-sorted snapshot. Must not race with
  /// recording (quiesce first).
  Snapshot snapshot() const;

  /// Number of registered metrics.
  std::size_t size() const;

 private:
  struct Shard;
  struct Desc {
    std::string name;
    MetricKind kind;
    MetricClass cls;
    std::uint32_t slot;  ///< scalar or histogram slot, by kind
  };

  MetricId register_metric(const std::string& name, MetricKind kind,
                           MetricClass cls);
  Shard& local_shard();

  mutable std::mutex mutex_;
  std::vector<Desc> descs_;
  std::uint32_t scalar_slots_ = 0;
  std::uint32_t histogram_slots_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t serial_;  ///< distinguishes registries in the TLS cache
};

}  // namespace lbmem::obs
