#include "lbmem/obs/trace.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "lbmem/util/build_info.hpp"

namespace lbmem::obs {

struct Tracer::ThreadBuffer {
  std::vector<Span> spans;  ///< reserved to capacity; never reallocates
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

std::atomic<Tracer*> Tracer::g_current{nullptr};

namespace {

std::atomic<std::uint64_t> g_tracer_serial{1};

struct TlsEntry {
  std::uint64_t serial;
  void* buffer;
};
thread_local std::vector<TlsEntry> t_buffers;

/// Entries for destroyed tracers can never match again (serials are not
/// reused), so bound the scan: once the cache is full, evict the entry
/// with the smallest serial. Evicting a still-live tracer is harmless —
/// the thread re-registers on its next span and gets a fresh buffer.
constexpr std::size_t kTlsCacheCap = 16;

void evict_oldest(std::vector<TlsEntry>& cache) {
  if (cache.size() <= kTlsCacheCap) return;
  auto oldest = cache.begin();
  for (auto it = cache.begin() + 1; it != cache.end(); ++it) {
    if (it->serial < oldest->serial) oldest = it;
  }
  cache.erase(oldest);
}

}  // namespace

Tracer::Tracer(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread),
      serial_(g_tracer_serial.fetch_add(1)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  // Never destroy a tracer while it is installed and threads may record.
  if (g_current.load(std::memory_order_relaxed) == this) {
    g_current.store(nullptr, std::memory_order_relaxed);
  }
}

void Tracer::install(Tracer* tracer) {
  g_current.store(tracer, std::memory_order_release);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  for (const TlsEntry& entry : t_buffers) {
    if (entry.serial == serial_) {
      return *static_cast<ThreadBuffer*>(entry.buffer);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->spans.reserve(capacity_);  // the one allocation, per thread
  buffer->tid = static_cast<std::uint32_t>(buffers_.size());
  buffers_.push_back(std::move(buffer));
  ThreadBuffer* raw = buffers_.back().get();
  t_buffers.push_back(TlsEntry{serial_, raw});
  evict_oldest(t_buffers);
  return *raw;
}

Span* Tracer::begin(const char* name, const char* category) {
  ThreadBuffer& buffer = local_buffer();
  if (buffer.spans.size() >= capacity_) {
    ++buffer.dropped;
    return nullptr;
  }
  const auto now = std::chrono::steady_clock::now();
  buffer.spans.push_back(Span{
      name, category,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
              .count()),
      UINT64_MAX});
  return &buffer.spans.back();
}

void Tracer::end(Span* span) {
  const auto now = std::chrono::steady_clock::now();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());
  span->dur_ns = ns >= span->ts_ns ? ns - span->ts_ns : 0;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->dropped;
  return total;
}

std::vector<std::string> Tracer::span_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& buffer : buffers_) {
    for (const Span& span : buffer->spans) {
      if (span.dur_ns != UINT64_MAX) names.emplace_back(span.name);
    }
  }
  return names;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) {
    for (const Span& span : buffer->spans) {
      if (span.dur_ns != UINT64_MAX) ++count;
    }
  }
  return count;
}

void Tracer::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"traceEvents\": [";
  bool first = true;
  char line[256];
  for (const auto& buffer : buffers_) {
    for (const Span& span : buffer->spans) {
      if (span.dur_ns == UINT64_MAX) continue;  // still open: skip
      // ts/dur are microseconds in the trace-event format; keep the
      // nanosecond precision as a fraction. Names and categories are
      // compile-time literals (identifier-ish), safe to emit verbatim.
      std::snprintf(line, sizeof line,
                    "%s\n    {\"name\": \"%s\", \"cat\": \"%s\", "
                    "\"ph\": \"X\", \"ts\": %" PRIu64 ".%03u, "
                    "\"dur\": %" PRIu64 ".%03u, \"pid\": 1, \"tid\": %u}",
                    first ? "" : ",", span.name, span.category,
                    span.ts_ns / 1000,
                    static_cast<unsigned>(span.ts_ns % 1000),
                    span.dur_ns / 1000,
                    static_cast<unsigned>(span.dur_ns % 1000), buffer->tid);
      out << line;
      first = false;
    }
  }
  std::uint64_t total_dropped = 0;
  for (const auto& buffer : buffers_) total_dropped += buffer->dropped;
  out << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {"
      << build_info_json_members() << ", \"dropped_spans\": " << total_dropped
      << "}\n}\n";
}

}  // namespace lbmem::obs
