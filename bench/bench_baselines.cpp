/// \file bench_baselines.cpp
/// \brief E9 — the paper's heuristic against the related-work baselines,
/// driven entirely through the solver facade: a custom registry (the
/// built-ins plus a bench-sized GA) swept over a generated suite by
/// ScenarioRunner, rendered by the same summarize_scenario that backs
/// `lbmem_cli compare` — one aggregation path, no drift.

#include <iostream>
#include <memory>

#include "lbmem/api/scenario.hpp"
#include "lbmem/api/solvers.hpp"
#include "lbmem/report/solve.hpp"

int main() {
  using namespace lbmem;

  std::cout << "=== E9: heuristic vs baselines (M=4, C=2) ===\n\n";

  // The comparison set: registry solvers plus a bench-sized GA (the
  // registry default is a quality setting; this keeps E9 quick).
  SolverRegistry registry;
  const SolverRegistry& builtin = SolverRegistry::builtin();
  for (const char* name :
       {"initial", "heuristic-lex", "round-robin", "memory-greedy"}) {
    registry.add(builtin.require(name));
  }
  GaOptions ga_options;
  ga_options.population = 24;
  ga_options.generations = 25;
  registry.add(std::make_shared<GaSolver>("ga (24x25)", ga_options));

  ScenarioSpec spec;
  spec.suite.params.tasks = 40;
  spec.suite.params.edge_probability = 0.3;
  spec.suite.processors = 4;
  spec.suite.comm_cost = 2;
  spec.suite.count = 15;
  spec.suite.base_seed = 60'000;

  const ScenarioReport report = ScenarioRunner(registry).run(spec);
  std::cout << "suite: " << report.instances << " systems of "
            << spec.suite.params.tasks << " tasks\n\n"
            << summarize_scenario(report)
            << "\nreading: the block heuristic matches or improves the "
               "initial makespan by construction and balances memory at "
               "orders-of-magnitude lower cost than the GA; whole-task "
               "baselines cannot split a task's instances, so their max "
               "memory stays lumpy.\n";
  return 0;
}
