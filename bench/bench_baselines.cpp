/// \file bench_baselines.cpp
/// \brief E9 — the paper's heuristic against the related-work baselines:
/// no balancing, round-robin, memory-greedy task assignment (refs
/// [10-12]'s memory balancing), a genetic algorithm (ref [9]), and the
/// paper's block heuristic. Reports makespan, max per-processor memory and
/// wall time per system.

#include <iostream>
#include <optional>

#include "lbmem/baseline/ga_balancer.hpp"
#include "lbmem/baseline/simple_balancers.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/util/stopwatch.hpp"
#include "lbmem/util/table.hpp"

namespace {

using namespace lbmem;

struct Row {
  double makespan = 0;
  double max_mem = 0;
  double seconds = 0;
  int solved = 0;
};

}  // namespace

int main() {
  std::cout << "=== E9: heuristic vs baselines (M=4, C=2) ===\n\n";

  SuiteSpec spec;
  spec.params.tasks = 40;
  spec.params.edge_probability = 0.3;
  spec.processors = 4;
  spec.comm_cost = 2;
  spec.count = 15;
  spec.base_seed = 60'000;
  const auto suite = make_suite(spec);
  std::cout << "suite: " << suite.size() << " systems of "
            << spec.params.tasks << " tasks\n\n";

  Row none, block_lb, rrobin, memgreedy, ga;
  const LoadBalancer balancer;
  GaOptions ga_options;
  ga_options.population = 24;
  ga_options.generations = 25;

  for (const SuiteInstance& instance : suite) {
    const TaskGraph& graph = *instance.graph;
    const Architecture arch(spec.processors);
    const CommModel comm = CommModel::flat(spec.comm_cost);

    // No balancing: the initial schedule itself.
    none.makespan += static_cast<double>(instance.schedule.makespan());
    none.max_mem += static_cast<double>(instance.schedule.max_memory());
    ++none.solved;

    {  // The paper's block heuristic.
      Stopwatch watch;
      const BalanceResult r = balancer.balance(instance.schedule);
      block_lb.seconds += watch.seconds();
      block_lb.makespan += static_cast<double>(r.schedule.makespan());
      block_lb.max_mem += static_cast<double>(r.schedule.max_memory());
      ++block_lb.solved;
    }
    {  // Round-robin whole-task assignment.
      Stopwatch watch;
      const auto s = round_robin_schedule(graph, arch, comm);
      rrobin.seconds += watch.seconds();
      if (s) {
        rrobin.makespan += static_cast<double>(s->makespan());
        rrobin.max_mem += static_cast<double>(s->max_memory());
        ++rrobin.solved;
      }
    }
    {  // Memory-greedy whole-task assignment (memory balancing only).
      Stopwatch watch;
      const auto s = memory_greedy_schedule(graph, arch, comm);
      memgreedy.seconds += watch.seconds();
      if (s) {
        memgreedy.makespan += static_cast<double>(s->makespan());
        memgreedy.max_mem += static_cast<double>(s->max_memory());
        ++memgreedy.solved;
      }
    }
    {  // Genetic algorithm (Greene-style).
      Stopwatch watch;
      const auto r = ga_balance(graph, arch, comm, ga_options);
      ga.seconds += watch.seconds();
      if (r) {
        ga.makespan += static_cast<double>(r->schedule.makespan());
        ga.max_mem += static_cast<double>(r->schedule.max_memory());
        ++ga.solved;
      }
    }
  }

  Table table({"method", "solved", "mean makespan", "mean max-mem",
               "mean wall (ms)"});
  auto emit = [&table](const std::string& name, const Row& row) {
    const double n = row.solved ? row.solved : 1;
    table.add_row({name, std::to_string(row.solved),
                   format_double(row.makespan / n, 1),
                   format_double(row.max_mem / n, 1),
                   format_double(1e3 * row.seconds / n, 3)});
  };
  emit("initial schedule (no balancing)", none);
  emit("paper heuristic (blocks)", block_lb);
  emit("round-robin tasks", rrobin);
  emit("memory-greedy tasks (refs 10-12)", memgreedy);
  emit("genetic algorithm (ref 9)", ga);

  std::cout << table.to_string()
            << "\nreading: the block heuristic matches or improves the "
               "initial makespan by construction and balances memory at "
               "orders-of-magnitude lower cost than the GA; whole-task "
               "baselines cannot split a task's instances, so their max "
               "memory stays lumpy.\n";
  return 0;
}
