/// \file bench_degraded.cpp
/// \brief Cost of the degraded-mode machinery (DESIGN.md F27/F28):
/// correlated-burst noise derivation on top of the perturbed executor,
/// the concurrent-failure robustness harness with the repair ladder on,
/// the full shed-rung escalation on a capacity-starved system, and the
/// miss-rate selector's pick/observe fold. The executor benchmarks share
/// bench_robustness's balanced N=400 / M=6 workload so the numbers
/// compare the burst machinery, not different schedules.
/// Recorded into BENCH_degraded.json by tools/bench_record.sh.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "lbmem/api/problem.hpp"
#include "lbmem/api/solvers.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/online/rebalancer.hpp"
#include "lbmem/sim/robustness.hpp"

namespace {

using namespace lbmem;

constexpr int kTasks = 400;
constexpr int kProcs = 6;
constexpr int kHyperperiods = 2;

const Schedule& bench_schedule() {
  static const Outcome outcome = [] {
    SuiteSpec spec;
    spec.params.tasks = kTasks;
    spec.params.period_levels = 3;
    spec.params.edge_probability = 0.15;
    spec.params.max_in_degree = 2;
    spec.processors = kProcs;
    spec.comm_cost = 2;
    spec.count = 1;
    spec.base_seed = 77'000 + static_cast<std::uint64_t>(kTasks) * 31 +
                     static_cast<std::uint64_t>(kProcs);
    spec.max_seed_attempts = 400;
    auto suite = make_suite(spec);
    if (suite.empty()) {
      throw std::runtime_error("no schedulable N=400/M=6 instance");
    }
    const Problem problem(suite.front().graph,
                          std::move(suite.front().schedule));
    Outcome solved = HeuristicSolver().solve(problem);
    if (!solved.feasible()) {
      throw std::runtime_error("bench workload did not balance");
    }
    return solved;
  }();
  return *outcome.schedule;
}

PerturbSpec noisy_spec() {
  PerturbSpec spec;
  spec.seed = 12345;
  spec.wcet_jitter = 0.25;
  spec.comm_jitter = 0.5;
  spec.stall_prob = 0.05;
  spec.stall_ticks = 3;
  return spec;
}

void BM_SimulateBursty(benchmark::State& state) {
  // The i.i.d. noise of bench_robustness's BM_SimulatePerturbed plus a
  // Gilbert–Elliott chain on every channel: the delta is the per-window
  // storm derivation and the intensity scaling.
  const Schedule& sched = bench_schedule();
  PerturbSpec spec = noisy_spec();
  spec.wcet_burst = GilbertElliott{0.2, 0.3, 3.0};
  spec.comm_burst = GilbertElliott{0.2, 0.3, 3.0};
  spec.stall_burst = GilbertElliott{0.2, 0.3, 3.0};
  std::int64_t misses = 0;
  for (auto _ : state) {
    const SimMetrics m = simulate_perturbed(
        sched, SimOptions{kHyperperiods, true}, spec, 0);
    misses = m.deadline_misses;
    benchmark::DoNotOptimize(m.span);
  }
  state.counters["deadline_misses"] = static_cast<double>(misses);
}

void BM_ConcurrentFailureRecovery(benchmark::State& state) {
  // Two processors die at different ticks; the harness repairs both
  // through the ladder and stitches three schedule tables per
  // replication.
  const Schedule& sched = bench_schedule();
  const Time h = sched.graph().hyperperiod();
  RobustnessOptions rob;
  rob.sim.hyperperiods = kHyperperiods;
  rob.replications = 1;
  rob.perturb = noisy_spec();
  rob.perturb.failures = {{0, h / 2}, {1, h + h / 2}};
  rob.repair.degraded.enabled = true;
  int recovered = 0;
  for (auto _ : state) {
    const RobustnessReport report = run_robustness(sched, rob);
    recovered = report.recovered ? 1 : 0;
    benchmark::DoNotOptimize(report.recovery_latency);
  }
  state.counters["recovered"] = recovered;
}

void BM_DegradedShedLadder(benchmark::State& state) {
  // Worst-case ladder walk: one fat task per processor, capacity that
  // fits exactly one — every rung fails until the shed rung drops the
  // orphan, so the iteration prices the full escalation.
  TaskGraph g;
  const int procs = 8;
  for (int t = 0; t < procs; ++t) {
    g.add_task("t" + std::to_string(t), 4, 1, 60);
  }
  g.freeze();
  Schedule s(g, Architecture(procs, /*memory_capacity=*/100),
             CommModel::flat(1));
  for (TaskId t = 0; t < static_cast<TaskId>(procs); ++t) {
    s.set_first_start(t, 0);
    s.assign_all(t, static_cast<ProcId>(t));
  }
  RebalancerOptions opts;
  opts.balance.enforce_memory_capacity = true;
  opts.degraded.enabled = true;
  std::size_t shed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rebalancer system = Rebalancer::adopt(g, s, opts);
    state.ResumeTiming();
    const EventOutcome out = system.fail_processor(procs - 1, 2);
    shed = out.shed.size();
    benchmark::DoNotOptimize(out.degraded_rung);
  }
  state.counters["shed"] = static_cast<double>(shed);
}

void BM_MissRateSelector(benchmark::State& state) {
  // The adaptive fold itself: pick + observe across a candidate panel,
  // once per decision — must stay negligible next to a single repair.
  const int candidates = static_cast<int>(state.range(0));
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(candidates));
  for (int c = 0; c < candidates; ++c) {
    names.push_back("solver-" + std::to_string(c));
  }
  for (auto _ : state) {
    MissRateSelector sel(names);
    for (int round = 0; round < 64; ++round) {
      const int pick = sel.pick();
      sel.observe(pick, 0.01 * ((round + pick) % 7));
    }
    benchmark::DoNotOptimize(sel.pick());
  }
}

BENCHMARK(BM_SimulateBursty)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConcurrentFailureRecovery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DegradedShedLadder)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MissRateSelector)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return lbmem_bench::run_benchmarks(argc, argv);
}
