/// \file bench_ablation.cpp
/// \brief E8 — cost-policy ablation (DESIGN.md F1).
///
/// Runs the balancer under every selectable decision rule over common
/// random suites and reports makespan gain, memory balance and robustness
/// counters. Demonstrates why the lexicographic reading is the right
/// reconstruction of the paper: the literal Eq. (5) and its smoothed
/// variant throw gains away by over-prioritising empty processors.

#include <iostream>
#include <vector>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/util/table.hpp"

int main() {
  using namespace lbmem;

  std::cout << "=== E8: cost-policy ablation ===\n\n";

  SuiteSpec spec;
  spec.params.tasks = 60;
  spec.params.edge_probability = 0.3;
  spec.processors = 4;
  spec.comm_cost = 3;
  spec.count = 40;
  spec.base_seed = 50'000;
  const auto suite = make_suite(spec);
  std::cout << "suite: " << suite.size() << " systems, M=4, C=3\n\n";

  Table table({"policy", "mean Gtotal", "improved (%)", "mean max-mem",
               "mean mem spread", "off-home moves", "forced stays",
               "fallbacks"});

  for (const CostPolicy policy :
       {CostPolicy::Lexicographic, CostPolicy::PaperFormula,
        CostPolicy::PaperLiteral, CostPolicy::GainOnly,
        CostPolicy::MemoryOnly}) {
    BalanceOptions options;
    options.policy = policy;
    const LoadBalancer balancer(options);

    double mean_gain = 0;
    int improved = 0;
    double mean_maxmem = 0;
    double mean_spread = 0;
    int off_home = 0;
    int forced = 0;
    int fallbacks = 0;
    for (const SuiteInstance& instance : suite) {
      const BalanceResult r = balancer.balance(instance.schedule);
      mean_gain += static_cast<double>(r.stats.gain_total);
      if (r.stats.gain_total > 0) ++improved;
      mean_maxmem += static_cast<double>(r.stats.max_memory_after);
      Mem lo = r.stats.memory_after.front();
      Mem hi = lo;
      for (const Mem m : r.stats.memory_after) {
        lo = std::min(lo, m);
        hi = std::max(hi, m);
      }
      mean_spread += static_cast<double>(hi - lo);
      off_home += r.stats.moves_off_home;
      forced += r.stats.forced_stays;
      if (r.stats.fell_back) ++fallbacks;
    }
    const auto n = static_cast<double>(suite.size());
    table.add_row({to_string(policy), format_double(mean_gain / n, 2),
                   format_double(100.0 * improved / n, 1),
                   format_double(mean_maxmem / n, 1),
                   format_double(mean_spread / n, 1),
                   std::to_string(off_home), std::to_string(forced),
                   std::to_string(fallbacks)});
  }

  std::cout << table.to_string()
            << "\nreading: GainOnly maximizes Gtotal but ignores memory "
               "spread; MemoryOnly flattens memory at zero gain; the "
               "paper's combined objective (Lexicographic) captures most "
               "of both. PaperFormula/PaperLiteral lose gains whenever an "
               "empty processor outbids a gainful move (F1).\n";

  std::cout << "\n--- overlap-rule ablation (DESIGN.md F8, Lexicographic) "
               "---\n";
  Table t2({"overlap rule", "mean Gtotal", "mean max-mem", "forced stays",
            "fallbacks"});
  for (const OverlapRule rule :
       {OverlapRule::AllInstances, OverlapRule::MovedOnly}) {
    BalanceOptions options;
    options.overlap_rule = rule;
    const LoadBalancer balancer(options);
    double mean_gain = 0;
    double mean_maxmem = 0;
    int forced = 0;
    int fallbacks = 0;
    for (const SuiteInstance& instance : suite) {
      const BalanceResult r = balancer.balance(instance.schedule);
      mean_gain += static_cast<double>(r.stats.gain_total);
      mean_maxmem += static_cast<double>(r.stats.max_memory_after);
      forced += r.stats.forced_stays;
      if (r.stats.fell_back) ++fallbacks;
    }
    const auto n = static_cast<double>(suite.size());
    t2.add_row({rule == OverlapRule::AllInstances ? "AllInstances (default)"
                                                  : "MovedOnly (paper)",
                format_double(mean_gain / n, 2),
                format_double(mean_maxmem / n, 1), std::to_string(forced),
                std::to_string(fallbacks)});
  }
  std::cout << t2.to_string()
            << "\nreading: the paper's moved-only optimism usually dead-ends "
               "(fallback to the\ninput schedule); constraining moves by "
               "every instance keeps runs valid and\nactually realizes the "
               "gains and memory spreading.\n";
  return 0;
}
