/// \file bench_theorem2.cpp
/// \brief E4 — empirical study of Theorem 2 (Section 5.2): the memory-only
/// heuristic is a (2 - 1/M)-approximation of the optimal maximum memory.
///
/// Three experiments per processor count M:
///  1. the pure greedy (the paper's memory-only cost function) on block
///     weights from random systems, against the exact branch-and-bound
///     optimum — mean/max ratio vs the bound;
///  2. Graham's adversarial family, where the bound is tight (ratio
///     exactly 2 - 1/M);
///  3. the full load balancer in MemoryOnly mode end-to-end (timing
///     feasibility included, which the theorem's analysis ignores),
///     measured against the same block-weight optimum.

#include <algorithm>
#include <iostream>
#include <vector>

#include "lbmem/baseline/bnb_partitioner.hpp"
#include "lbmem/baseline/partition.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/util/table.hpp"

int main() {
  using namespace lbmem;

  std::cout << "=== E4: Theorem 2 — omega/omega_opt <= 2 - 1/M ===\n\n";

  std::cout << "--- (1) pure greedy on block weights vs exact optimum ---\n";
  Table t1({"M", "samples", "mean ratio", "max ratio", "bound 2-1/M",
            "violations"});
  for (const int m : {2, 3, 4, 5, 6, 8}) {
    SuiteSpec spec;
    spec.params.tasks = 10;
    spec.params.period_levels = 2;
    spec.params.mem_max = 40;
    spec.processors = m;
    spec.count = 25;
    spec.base_seed = 20'000 + static_cast<std::uint64_t>(m);
    const auto suite = make_suite(spec);

    double mean_ratio = 0;
    double max_ratio = 0;
    int samples = 0;
    int violations = 0;
    const double bound = 2.0 - 1.0 / m;
    for (const SuiteInstance& instance : suite) {
      std::vector<Mem> weights;
      for (const Block& b : build_blocks(instance.schedule).blocks) {
        weights.push_back(b.mem_sum);
      }
      if (weights.size() > 24) continue;  // keep B&B provably exact
      const BnbResult exact = bnb_partition(weights, m);
      if (!exact.proven_optimal || exact.partition.max_load == 0) continue;
      const PartitionResult greedy = greedy_min_load(weights, m);
      const double ratio = static_cast<double>(greedy.max_load) /
                           static_cast<double>(exact.partition.max_load);
      mean_ratio += ratio;
      max_ratio = std::max(max_ratio, ratio);
      if (ratio > bound + 1e-12) ++violations;
      ++samples;
    }
    if (samples) mean_ratio /= samples;
    t1.add_row({std::to_string(m), std::to_string(samples),
                format_double(mean_ratio, 4), format_double(max_ratio, 4),
                format_double(bound, 4), std::to_string(violations)});
  }
  std::cout << t1.to_string() << "\n";

  std::cout << "--- (2) Graham's adversarial family: bound tight ---\n";
  Table t2({"M", "greedy omega", "omega_opt", "ratio", "2-1/M"});
  for (const int m : {2, 3, 4, 5, 6, 8}) {
    std::vector<Mem> weights(static_cast<std::size_t>(m * (m - 1)), Mem{1});
    weights.push_back(m);
    const PartitionResult greedy = greedy_min_load(weights, m);
    const BnbResult exact = bnb_partition(weights, m);
    t2.add_row({std::to_string(m), std::to_string(greedy.max_load),
                std::to_string(exact.partition.max_load),
                format_double(static_cast<double>(greedy.max_load) /
                                  static_cast<double>(
                                      exact.partition.max_load),
                              4),
                format_double(2.0 - 1.0 / m, 4)});
  }
  std::cout << t2.to_string() << "\n";

  std::cout << "--- (3) full balancer (MemoryOnly policy, timing "
               "constraints active) vs block-weight optimum ---\n";
  Table t3({"M", "samples", "mean ratio", "max ratio", "bound 2-1/M",
            "over bound"});
  for (const int m : {2, 3, 4, 6}) {
    SuiteSpec spec;
    spec.params.tasks = 10;
    spec.params.period_levels = 2;
    spec.params.mem_max = 40;
    spec.processors = m;
    spec.count = 20;
    spec.base_seed = 30'000 + static_cast<std::uint64_t>(m);
    const auto suite = make_suite(spec);

    BalanceOptions options;
    options.policy = CostPolicy::MemoryOnly;
    const LoadBalancer balancer(options);

    double mean_ratio = 0;
    double max_ratio = 0;
    int samples = 0;
    int over = 0;
    const double bound = 2.0 - 1.0 / m;
    for (const SuiteInstance& instance : suite) {
      std::vector<Mem> weights;
      for (const Block& b : build_blocks(instance.schedule).blocks) {
        weights.push_back(b.mem_sum);
      }
      if (weights.size() > 24) continue;
      const BnbResult exact = bnb_partition(weights, m);
      if (!exact.proven_optimal || exact.partition.max_load == 0) continue;
      const BalanceResult r = balancer.balance(instance.schedule);
      const double ratio = static_cast<double>(r.schedule.max_memory()) /
                           static_cast<double>(exact.partition.max_load);
      mean_ratio += ratio;
      max_ratio = std::max(max_ratio, ratio);
      if (ratio > bound + 1e-12) ++over;
      ++samples;
    }
    if (samples) mean_ratio /= samples;
    t3.add_row({std::to_string(m), std::to_string(samples),
                format_double(mean_ratio, 4), format_double(max_ratio, 4),
                format_double(bound, 4), std::to_string(over)});
  }
  std::cout << t3.to_string()
            << "\npaper claim: the memory-only heuristic is (2-1/M)-"
               "approximated. (1) and (2) verify the theorem exactly; (3) "
               "shows the end-to-end balancer, whose timing/eligibility "
               "constraints are outside the theorem's model, may exceed "
               "the bound on instances where feasible destinations are "
               "restricted.\n";
  return 0;
}
