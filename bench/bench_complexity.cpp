/// \file bench_complexity.cpp
/// \brief E5 — the Section-4 complexity study: the heuristic runs in
/// O(M * Nblocks) and stays fast at "several thousands of tasks and tens
/// of processors".
///
/// Google-benchmark timings of LoadBalancer::balance() over generated
/// systems; the counters report Nblocks so the O(M*Nblocks) fit can be
/// checked from the output (time / (M*Nblocks) should stay near-constant
/// per column). Scheduling time is excluded — only the balancing heuristic
/// is measured, matching the paper's complexity claim.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <map>
#include <memory>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/load_balancer.hpp"

namespace {

using namespace lbmem;

/// Cache of prepared instances, keyed by (tasks, processors).
const SuiteInstance& prepared(int tasks, int processors) {
  static std::map<std::pair<int, int>, std::unique_ptr<SuiteInstance>> cache;
  auto& slot = cache[{tasks, processors}];
  if (!slot) {
    SuiteSpec spec;
    spec.params.tasks = tasks;
    // Keep per-task structure constant while scaling: same edge density,
    // same period set.
    spec.params.period_levels = 3;
    spec.params.edge_probability = 0.15;
    spec.params.max_in_degree = 2;
    spec.processors = processors;
    spec.comm_cost = 2;
    spec.count = 1;
    spec.base_seed = 99'000 + static_cast<std::uint64_t>(tasks) * 31 +
                     static_cast<std::uint64_t>(processors);
    spec.max_seed_attempts = 400;
    auto suite = make_suite(spec);
    if (suite.empty()) {
      throw std::runtime_error("no schedulable instance for N=" +
                               std::to_string(tasks) +
                               " M=" + std::to_string(processors));
    }
    slot = std::make_unique<SuiteInstance>(std::move(suite.front()));
  }
  return *slot;
}

void BM_Balance(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const int processors = static_cast<int>(state.range(1));
  const SuiteInstance& instance = prepared(tasks, processors);
  const LoadBalancer balancer;

  std::int64_t blocks = 0;
  for (auto _ : state) {
    const BalanceResult r = balancer.balance(instance.schedule);
    blocks = r.stats.blocks_total;
    benchmark::DoNotOptimize(r.schedule);
  }
  state.counters["tasks"] = tasks;
  state.counters["procs"] = processors;
  state.counters["blocks"] = static_cast<double>(blocks);
  state.counters["instances"] =
      static_cast<double>(instance.schedule.graph().total_instances());
  // The Section-4 fit: wall time per M*Nblocks unit of work.
  state.counters["ns_per_M*Nblocks"] = benchmark::Counter(
      static_cast<double>(processors) * static_cast<double>(blocks),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void BM_BuildBlocks(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const SuiteInstance& instance = prepared(tasks, 8);
  for (auto _ : state) {
    const BlockDecomposition dec = build_blocks(instance.schedule);
    benchmark::DoNotOptimize(dec.blocks.data());
  }
  state.counters["tasks"] = tasks;
}

}  // namespace

// Task-count sweep at fixed M (paper: "several thousands of tasks").
BENCHMARK(BM_Balance)
    ->ArgsProduct({{250, 500, 1000, 2000, 4000}, {8}})
    ->Unit(benchmark::kMillisecond);
// Processor sweep at fixed N (paper: "tens of processors").
BENCHMARK(BM_Balance)
    ->ArgsProduct({{1000}, {4, 8, 16, 32, 64}})
    ->Unit(benchmark::kMillisecond);
// Processor sweep at the largest task count: the scheduler-excluded
// O(M*Nblocks) fit from the file header — ns_per_M*Nblocks should stay
// near-constant down this column. (M=8 is covered by the task sweep.)
BENCHMARK(BM_Balance)
    ->ArgsProduct({{4000}, {4, 16, 32, 64}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildBlocks)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

LBMEM_BENCHMARK_MAIN()
