/// \file bench_buffers.cpp
/// \brief E7 — Figure 1: multi-rate communication forbids memory reuse.
///
/// A fast producer a (period T) feeds a slow consumer b (period n*T) on a
/// different processor: all n data produced within one consumer period
/// must be buffered simultaneously on the consumer's processor, so the
/// peak buffer grows linearly with the rate ratio n. The discrete-event
/// executor measures the peak; this bench sweeps n and the datum size.

#include <iostream>
#include <memory>

#include "lbmem/model/task_graph.hpp"
#include "lbmem/sim/engine.hpp"
#include "lbmem/util/table.hpp"
#include "lbmem/validate/validator.hpp"

namespace {

using namespace lbmem;

/// Build the Figure-1 system for rate ratio n and datum size s.
struct Fig1 {
  Fig1(InstanceIdx n, Mem datum, Time base_period, Time comm)
      : graph_ptr(std::make_unique<TaskGraph>()) {
    TaskGraph& g = *graph_ptr;
    const TaskId a = g.add_task("a", base_period, 1, 1);
    const TaskId b =
        g.add_task("b", base_period * static_cast<Time>(n), 1, 1);
    g.add_dependence(a, b, datum);
    g.freeze();
    sched = std::make_unique<Schedule>(g, Architecture(2),
                                       CommModel::flat(comm));
    sched->set_first_start(a, 0);
    sched->assign_all(a, 0);
    // b starts once the last datum arrived: a[n-1] ends at
    // (n-1)*T + 1, plus comm.
    sched->set_first_start(
        b, (static_cast<Time>(n) - 1) * base_period + 1 + comm);
    sched->assign_all(b, 1);
    validate_or_throw(*sched);
  }
  std::unique_ptr<TaskGraph> graph_ptr;
  std::unique_ptr<Schedule> sched;
};

}  // namespace

int main() {
  std::cout << "=== E7: Figure 1 — multi-rate buffers, no memory reuse "
               "===\n\n";

  Table table({"rate ratio n", "datum size", "expected peak n*size",
               "measured peak (consumer proc)", "producer-side peak",
               "match"});
  for (const InstanceIdx n : {2, 4, 8, 16}) {
    for (const Mem datum : {1, 5}) {
      const Fig1 system(n, datum, /*base_period=*/3, /*comm=*/1);
      const SimMetrics metrics = simulate(*system.sched, SimOptions{3, true});
      const Mem expected = static_cast<Mem>(n) * datum;
      const Mem measured = metrics.procs[1].peak_buffer;
      table.add_row({std::to_string(n), std::to_string(datum),
                     std::to_string(expected), std::to_string(measured),
                     std::to_string(metrics.procs[0].peak_buffer),
                     expected == measured ? "yes" : "NO"});
    }
  }
  std::cout << table.to_string()
            << "\npaper claim (Fig. 1, n=4): the memory used by the first "
               "datum cannot be reused for the second/third/fourth — the "
               "consumer holds all n data at once. Measured peaks equal "
               "n*size exactly.\n";
  return 0;
}
