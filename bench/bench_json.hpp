#pragma once
/// \file bench_json.hpp
/// \brief Shared main + JSON file reporter for the google-benchmark benches
/// (bench_complexity, bench_online).
///
/// Why not BENCHMARK_MAIN(): the checked-in BENCH_*.json files are the
/// repo's performance history, and their "context" block must describe the
/// *harness that produced the numbers*. Distribution packages of
/// google-benchmark (e.g. Debian's) are compiled with their own flag set —
/// without NDEBUG — so the stock JSONReporter stamps every recording with
/// "library_build_type": "debug" even when the bench binary itself is a
/// full-Release build, poisoning the history with a warning that does not
/// describe the measured code. The timed region of every benchmark here
/// (the State loop and the code under test) is header-inline and compiled
/// into THIS binary with THIS build's flags, so this reporter stamps
/// library_build_type from this translation unit's NDEBUG and records how
/// the benchmark library was obtained in a separate "harness" key. When
/// CMake builds google-benchmark from source (LBMEM_BENCHMARK_SOURCE_DIR,
/// used by CI), the library genuinely matches the stamp as well.
/// tools/bench_record.sh refuses to record JSONs whose stamp says "debug",
/// so Debug-configured recordings fail loudly instead of being checked in.
///
/// The file reporter is engaged only when --benchmark_out= is present; the
/// emitted JSON keeps the upstream context keys (date, host_name,
/// executable, num_cpus, mhz_per_cpu, cpu_scaling_enabled, caches,
/// load_avg, library_build_type) so existing consumers keep parsing. The
/// output format is always JSON regardless of --benchmark_out_format.

#include <benchmark/benchmark.h>

#include <ctime>
#include <ostream>
#include <string>
#include <string_view>

#include "lbmem/util/build_info.hpp"
#include "lbmem/util/json.hpp"

namespace lbmem_bench {

using lbmem::json_escape;

inline std::string local_date() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &now);
#else
  localtime_r(&now, &tm_buf);
#endif
  char buf[64];
  if (std::strftime(buf, sizeof buf, "%FT%T%z", &tm_buf) == 0) return "";
  const std::string s = buf;
  if (s.size() < 5) return s;
  // +0000 -> +00:00, matching the stock reporter's RFC-3339 offsets.
  return s.substr(0, s.size() - 2) + ":" + s.substr(s.size() - 2);
}

/// JSONReporter whose context block describes the recording harness (see
/// file comment). Runs and the closing brace come from the base class.
class HarnessStampedJSONReporter : public benchmark::JSONReporter {
 public:
  bool ReportContext(const Context& context) override {
    std::ostream& out = GetOutputStream();
    out << "{\n  \"context\": {\n";
    out << "    \"date\": \"" << local_date() << "\",\n";
    out << "    \"host_name\": \"" << json_escape(context.sys_info.name)
        << "\",\n";
    out << "    \"executable\": \""
        << json_escape(Context::executable_name ? Context::executable_name
                                                : "")
        << "\",\n";
    out << "    \"num_cpus\": " << context.cpu_info.num_cpus << ",\n";
    out << "    \"mhz_per_cpu\": "
        << static_cast<long long>(context.cpu_info.cycles_per_second * 1e-6)
        << ",\n";
    out << "    \"cpu_scaling_enabled\": "
        << (context.cpu_info.scaling == benchmark::CPUInfo::ENABLED
                ? "true"
                : "false")
        << ",\n";
    out << "    \"caches\": [\n";
    for (std::size_t i = 0; i < context.cpu_info.caches.size(); ++i) {
      const auto& cache = context.cpu_info.caches[i];
      out << "      {\n";
      out << "        \"type\": \"" << json_escape(cache.type) << "\",\n";
      out << "        \"level\": " << cache.level << ",\n";
      out << "        \"size\": " << cache.size << ",\n";
      out << "        \"num_sharing\": " << cache.num_sharing << "\n";
      out << "      }" << (i + 1 < context.cpu_info.caches.size() ? "," : "")
          << "\n";
    }
    out << "    ],\n";
    out << "    \"load_avg\": [";
    for (std::size_t i = 0; i < context.cpu_info.load_avg.size(); ++i) {
      if (i) out << ",";
      out << context.cpu_info.load_avg[i];
    }
    out << "],\n";
    // Library build provenance (git SHA, compiler, build type) — the same
    // stamp every --metrics-out / --trace-spans artifact carries, so a
    // recorded number traces back to the exact build that produced it.
    out << "    \"build\": {" << lbmem::build_info_json_members() << "},\n";
#if defined(LBMEM_BENCHMARK_FROM_SOURCE)
    out << "    \"harness\": \"lbmem bench_json; google-benchmark built "
           "from source with this build's flags\",\n";
#else
    out << "    \"harness\": \"lbmem bench_json; google-benchmark from the "
           "system package (timed loops are header-inline in this "
           "binary)\",\n";
#endif
#ifdef NDEBUG
    out << "    \"library_build_type\": \"release\"\n";
#else
    out << "    \"library_build_type\": \"debug\"\n";
#endif
    out << "  },\n  \"benchmarks\": [\n";
    return true;
  }
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: stock console output,
/// harness-stamped JSON when --benchmark_out= is given.
inline int run_benchmarks(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (has_out) {
    benchmark::ConsoleReporter display;
    HarnessStampedJSONReporter file_reporter;
    benchmark::RunSpecifiedBenchmarks(&display, &file_reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace lbmem_bench

/// Replaces BENCHMARK_MAIN() for the lbmem benches.
#define LBMEM_BENCHMARK_MAIN()                 \
  int main(int argc, char** argv) {            \
    return lbmem_bench::run_benchmarks(argc, argv); \
  }
