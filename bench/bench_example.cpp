/// \file bench_example.cpp
/// \brief E1/E2 — regenerates the paper's worked example: Figure 3 (input
/// schedule), the seven balancing steps of Section 3.3, and Figure 4
/// (balanced schedule). Prints paper-vs-measured for every number the
/// paper states.

#include <iostream>

#include "lbmem/gen/paper_example.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/report/gantt.hpp"
#include "lbmem/report/summary.hpp"
#include "lbmem/util/table.hpp"
#include "lbmem/validate/validator.hpp"

int main() {
  using namespace lbmem;

  std::cout << "=== E1/E2: paper Section 3.3 worked example ===\n\n";

  const TaskGraph graph = paper_example_graph();
  const Schedule before = paper_example_schedule(graph);
  validate_or_throw(before);

  std::cout << "--- Figure 3: schedule produced by the initial distributed "
               "scheduling heuristic ---\n"
            << render_gantt(before) << "\n";

  BalanceOptions options;
  options.policy = CostPolicy::Lexicographic;
  options.record_trace = true;
  const BalanceResult result = LoadBalancer(options).balance(before);
  validate_or_throw(result.schedule);

  std::cout << "--- Section 3.3 steps ---\n";
  const BlockDecomposition dec = build_blocks(before);
  for (const StepRecord& step : result.trace) {
    std::cout << describe_step(before, step, dec) << "\n";
  }

  std::cout << "\n--- Figure 4: schedule after load balancing ---\n"
            << render_gantt(result.schedule) << "\n";

  Table table({"quantity", "paper", "measured", "match"});
  auto row = [&table](const std::string& name, long long paper,
                      long long measured) {
    table.add_row({name, std::to_string(paper), std::to_string(measured),
                   paper == measured ? "yes" : "NO"});
  };
  row("makespan before (Fig. 3)", 15, before.makespan());
  row("memory P1 before", 16, before.memory_on(0));
  row("memory P2 before", 4, before.memory_on(1));
  row("memory P3 before", 4, before.memory_on(2));
  row("blocks built", 7, result.stats.blocks_total);
  row("makespan after (Fig. 4)", 14, result.schedule.makespan());
  row("Gtotal", 1, result.stats.gain_total);
  row("memory P1 after", 10, result.schedule.memory_on(0));
  row("memory P2 after", 6, result.schedule.memory_on(1));
  row("memory P3 after", 8, result.schedule.memory_on(2));
  std::cout << table.to_string() << "\n" << summarize(result.stats);

  std::cout << "\nNote: step 7 applies gain 1 (d runs at 12) — the paper "
               "prints stale start times there (DESIGN.md F6); the chosen "
               "processor and the Figure-4 totals are identical.\n";
  return 0;
}
