/// \file bench_online.cpp
/// \brief Online-rebalancing latency: event-driven incremental repair
/// versus re-running the offline heuristic from scratch.
///
/// The headline comparison (recorded in BENCH_online.json by
/// tools/bench_record.sh) is BM_OnlineWcet vs BM_FullWcet at N=4000/M=8:
/// both apply the *same* alternating WcetChange events through the
/// Rebalancer; the first uses the warm-start incremental balance (partial
/// block decomposition + warm occupancy), the second re-runs a full
/// LoadBalancer::balance after the identical patch. The subsystem's
/// acceptance bar is a >= 5x advantage for the incremental path.
///
/// BM_OnlineArrivalRemoval measures the graph-rebuild event class
/// (admission + removal pairs, steady state), BM_OnlineFailure the
/// heaviest event (evacuating one of M processors; system rebuilt outside
/// the timed region).

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/online/rebalancer.hpp"

namespace {

using namespace lbmem;

/// Balanced steady-state system per (tasks, processors), built once.
struct PristineSystem {
  std::shared_ptr<const TaskGraph> graph;
  std::unique_ptr<Schedule> balanced;
  TaskId flip_task = -1;   ///< task whose WCET the wcet benches toggle
  Time flip_high = 0;      ///< its original WCET (>= 2)
};

const PristineSystem& pristine(int tasks, int processors) {
  static std::map<std::pair<int, int>, std::unique_ptr<PristineSystem>>
      cache;
  auto& slot = cache[{tasks, processors}];
  if (!slot) {
    SuiteSpec spec;
    spec.params.tasks = tasks;
    spec.params.period_levels = 3;
    spec.params.edge_probability = 0.15;
    spec.params.max_in_degree = 2;
    spec.processors = processors;
    spec.comm_cost = 2;
    spec.count = 1;
    spec.base_seed = 77'000 + static_cast<std::uint64_t>(tasks) * 31 +
                     static_cast<std::uint64_t>(processors);
    spec.max_seed_attempts = 400;
    auto suite = make_suite(spec);
    if (suite.empty()) {
      throw std::runtime_error("no schedulable instance for N=" +
                               std::to_string(tasks) +
                               " M=" + std::to_string(processors));
    }
    auto system = std::make_unique<PristineSystem>();
    system->graph = suite.front().graph;
    system->balanced = std::make_unique<Schedule>(
        LoadBalancer().balance(suite.front().schedule).schedule);
    for (TaskId t = 0;
         t < static_cast<TaskId>(system->graph->task_count()); ++t) {
      const Time wcet = system->graph->task(t).wcet;
      if (wcet >= 2 && wcet > system->flip_high) {
        system->flip_task = t;
        system->flip_high = wcet;
      }
    }
    if (system->flip_task < 0) {
      throw std::runtime_error("no task with wcet >= 2 to toggle");
    }
    slot = std::move(system);
  }
  return *slot;
}

Rebalancer make_engine(const PristineSystem& system, bool incremental) {
  RebalancerOptions options;
  options.incremental = incremental;
  return Rebalancer::adopt(*system.graph, *system.balanced, options);
}

/// Alternating WcetChange events (E, E-1, E, ...) applied in steady state;
/// one apply() per benchmark iteration.
void wcet_flip_loop(benchmark::State& state, bool incremental) {
  const int tasks = static_cast<int>(state.range(0));
  const int processors = static_cast<int>(state.range(1));
  const PristineSystem& system = pristine(tasks, processors);
  Rebalancer engine = make_engine(system, incremental);
  const std::string name = system.graph->task(system.flip_task).name;

  std::int64_t rejected = 0;
  bool low = true;
  for (auto _ : state) {
    Event event;
    event.at = 1;
    event.payload =
        WcetChange{name, low ? system.flip_high - 1 : system.flip_high};
    low = !low;
    const EventOutcome outcome = engine.apply(event);
    if (!outcome.applied) ++rejected;
    benchmark::DoNotOptimize(outcome.makespan);
  }
  state.counters["tasks"] = tasks;
  state.counters["procs"] = processors;
  state.counters["rejected"] = static_cast<double>(rejected);
}

void BM_OnlineWcet(benchmark::State& state) {
  wcet_flip_loop(state, /*incremental=*/true);
}

void BM_FullWcet(benchmark::State& state) {
  wcet_flip_loop(state, /*incremental=*/false);
}

/// Steady-state admission + removal: each iteration admits one task wired
/// to an existing producer, then removes it again (two apply() calls).
void BM_OnlineArrivalRemoval(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const int processors = static_cast<int>(state.range(1));
  const PristineSystem& system = pristine(tasks, processors);
  Rebalancer engine = make_engine(system, /*incremental=*/true);
  const std::string producer = system.graph->task(0).name;
  const Time period = system.graph->task(0).period;

  std::int64_t rejected = 0;
  for (auto _ : state) {
    NewTaskSpec spec;
    spec.name = "bench_dyn";
    spec.period = period;
    spec.wcet = 1;
    spec.memory = 4;
    spec.producers.push_back(NewTaskSpec::Producer{producer, 2});
    Event arrive;
    arrive.at = 1;
    arrive.payload = TaskArrival{spec};
    if (!engine.apply(arrive).applied) ++rejected;
    Event remove;
    remove.at = 2;
    remove.payload = TaskRemoval{"bench_dyn"};
    if (!engine.apply(remove).applied) ++rejected;
  }
  state.counters["tasks"] = tasks;
  state.counters["procs"] = processors;
  state.counters["rejected"] = static_cast<double>(rejected);
  state.counters["events_per_iter"] = 2;
}

/// One processor failure per iteration; the engine is rebuilt from the
/// pristine state outside the timed region.
void BM_OnlineFailure(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const int processors = static_cast<int>(state.range(1));
  const PristineSystem& system = pristine(tasks, processors);

  std::int64_t rejected = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rebalancer engine = make_engine(system, /*incremental=*/true);
    Event event;
    event.at = 1;
    event.payload = ProcessorFailure{static_cast<ProcId>(processors - 1)};
    state.ResumeTiming();
    if (!engine.apply(event).applied) ++rejected;
  }
  state.counters["tasks"] = tasks;
  state.counters["procs"] = processors;
  state.counters["rejected"] = static_cast<double>(rejected);
}

}  // namespace

// The latency sweep: incremental event handling across system sizes, plus
// the from-scratch comparator at the acceptance point N=4000/M=8.
BENCHMARK(BM_OnlineWcet)
    ->ArgsProduct({{250, 1000, 4000}, {8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullWcet)
    ->ArgsProduct({{250, 1000, 4000}, {8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineArrivalRemoval)
    ->Args({1000, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineFailure)
    ->Args({1000, 8})
    ->Args({4000, 8})
    ->Unit(benchmark::kMillisecond);

LBMEM_BENCHMARK_MAIN()
