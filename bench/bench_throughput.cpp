/// \file bench_throughput.cpp
/// \brief Sustained-traffic throughput of the streaming event service
/// (stream/service.hpp): events/sec plus p50/p99 queueing delay and
/// per-batch repair latency over large seeded Poisson traces.
///
/// The headline recording (BENCH_throughput.json via tools/bench_record.sh)
/// is BM_ServeSustained at N=4000/10000/20000 tasks on M=8 processors: a
/// wcet-heavy Poisson trace is admitted, coalesced and drained through a
/// fresh Rebalancer per iteration, and the service's own report supplies
/// the counters — `events_per_sec` uses the serve loop's internal wall
/// clock (final validation excluded), the latency percentiles come from
/// the queue-delay and batch-repair histograms merged across iterations.
/// BM_ServeCoalesceOff is the comparator that prices the coalescer: the
/// identical trace with coalescing disabled.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "lbmem/gen/event_trace.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/online/rebalancer.hpp"
#include "lbmem/stream/service.hpp"

namespace {

using namespace lbmem;

/// Balanced steady-state system plus a seeded traffic trace per
/// (tasks, processors), built once and reused across iterations.
struct PristineSystem {
  std::shared_ptr<const TaskGraph> graph;
  std::unique_ptr<Schedule> balanced;
  EventTrace trace;
};

/// Events per serve() call. Large enough that queue dynamics (windows,
/// batching, coalescing opportunities) dominate over setup effects while
/// keeping one serve() tens of seconds, not minutes — repair cost per
/// event is ~100 ms at N=4000 on a single-core Release box, and the CTest
/// smoke also runs this binary under the sanitizer presets.
constexpr int kTraceEvents = 800;

const PristineSystem& pristine(int tasks, int processors) {
  static std::map<std::pair<int, int>, std::unique_ptr<PristineSystem>>
      cache;
  auto& slot = cache[{tasks, processors}];
  if (!slot) {
    SuiteSpec spec;
    spec.params.tasks = tasks;
    spec.params.period_levels = 3;
    spec.params.edge_probability = 0.15;
    spec.params.max_in_degree = 2;
    spec.processors = processors;
    spec.comm_cost = 2;
    spec.count = 1;
    spec.base_seed = 88'000 + static_cast<std::uint64_t>(tasks) * 31 +
                     static_cast<std::uint64_t>(processors);
    spec.max_seed_attempts = 400;
    auto suite = make_suite(spec);
    if (suite.empty()) {
      throw std::runtime_error("no schedulable instance for N=" +
                               std::to_string(tasks) +
                               " M=" + std::to_string(processors));
    }
    auto system = std::make_unique<PristineSystem>();
    system->graph = suite.front().graph;
    system->balanced = std::make_unique<Schedule>(
        LoadBalancer().balance(suite.front().schedule).schedule);

    // Wcet-heavy Poisson traffic: mode changes dominate (the common case
    // a deployed balancer amortizes), with a trickle of software updates;
    // a tight mean gap keeps several events per admission window so the
    // coalescer and the batch drain actually engage.
    EventTraceParams traffic;
    traffic.events = kTraceEvents;
    traffic.arrival = ArrivalModel::Poisson;
    traffic.mean_gap = 8.0;
    traffic.wcet_weight = 0.8;
    traffic.arrival_weight = 0.1;
    traffic.removal_weight = 0.08;
    traffic.failure_weight = 0.02;
    traffic.max_failures = 1;
    system->trace = random_event_trace(*system->graph,
                                       Architecture(processors), traffic,
                                       spec.base_seed + 1);
    slot = std::move(system);
  }
  return *slot;
}

/// One serve() of the cached trace per iteration against a fresh engine;
/// the engine rebuild is untimed. Counters aggregate the service reports.
void serve_loop(benchmark::State& state, bool coalesce) {
  const int tasks = static_cast<int>(state.range(0));
  const int processors = static_cast<int>(state.range(1));
  const PristineSystem& system = pristine(tasks, processors);

  StreamOptions options;
  options.queue_capacity = 8192;  // roomy: measure latency, not shedding
  options.coalesce = coalesce;
  const StreamService service(options);

  obs::LatencyHistogram queue_delay_us;
  obs::LatencyHistogram batch_repair_us;
  double wall_seconds = 0.0;
  std::int64_t drained = 0, coalesced = 0, shed = 0, violations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Ladder off: the study prices the serve loop (admission, coalescing,
    // budget drain, plain repair/reject), not degraded-mode recovery —
    // with the ladder armed every infeasible re-estimate would walk a
    // full re-placement, drowning the queueing signal (bench_degraded
    // already prices the ladder itself).
    Rebalancer engine = Rebalancer::adopt(*system.graph, *system.balanced);
    state.ResumeTiming();

    const StreamReport report = service.serve(engine, system.trace);
    queue_delay_us.merge(report.queue_delay_us);
    batch_repair_us.merge(report.batch_repair_us);
    wall_seconds += report.wall_seconds;
    drained += report.applied + report.rejected + report.deferred;
    coalesced += report.coalesced;
    shed += report.shed_overflow;
    if (report.final_violations > 0) ++violations;
    benchmark::DoNotOptimize(report.final_makespan);
  }
  state.counters["tasks"] = tasks;
  state.counters["procs"] = processors;
  state.counters["trace_events"] = kTraceEvents;
  state.counters["events_per_sec"] =
      wall_seconds > 0.0 ? static_cast<double>(drained) / wall_seconds : 0.0;
  state.counters["queue_delay_p50_us"] =
      static_cast<double>(queue_delay_us.percentile(50));
  state.counters["queue_delay_p99_us"] =
      static_cast<double>(queue_delay_us.percentile(99));
  state.counters["batch_repair_p50_us"] =
      static_cast<double>(batch_repair_us.percentile(50));
  state.counters["batch_repair_p99_us"] =
      static_cast<double>(batch_repair_us.percentile(99));
  state.counters["coalesced_per_iter"] = benchmark::Counter(
      static_cast<double>(coalesced),
      benchmark::Counter::kAvgIterations);
  state.counters["shed"] = static_cast<double>(shed);
  state.counters["violations"] = static_cast<double>(violations);
}

void BM_ServeSustained(benchmark::State& state) {
  serve_loop(state, /*coalesce=*/true);
}

void BM_ServeCoalesceOff(benchmark::State& state) {
  serve_loop(state, /*coalesce=*/false);
}

}  // namespace

// The throughput sweep across system sizes, plus the coalescer-off
// comparator at the acceptance point N=4000/M=8.
BENCHMARK(BM_ServeSustained)
    ->ArgsProduct({{4000, 10000, 20000}, {8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeCoalesceOff)
    ->Args({4000, 8})
    ->Unit(benchmark::kMillisecond);

LBMEM_BENCHMARK_MAIN()
