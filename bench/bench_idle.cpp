/// \file bench_idle.cpp
/// \brief E6 — the Section-1 motivation: "over 65% of processors are idle
/// at any given time" (ref [3]), worse under periodicity constraints.
///
/// Measures per-processor idle fractions of initial schedules across
/// random suites (confirming the high idleness the paper argues from) and
/// shows that balancing redistributes work without increasing the
/// makespan — idle time is a property of the workload's utilization, so
/// the mean idle fraction is conserved while its spread tightens.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/sim/engine.hpp"
#include "lbmem/util/table.hpp"

namespace {

using namespace lbmem;

struct IdleStats {
  double mean = 0;
  double stddev = 0;
  double max_minus_min = 0;
};

IdleStats idle_stats(const Schedule& sched) {
  const int m = sched.architecture().processor_count();
  std::vector<double> idle;
  for (ProcId p = 0; p < m; ++p) idle.push_back(sched.idle_fraction(p));
  IdleStats out;
  for (const double x : idle) out.mean += x;
  out.mean /= m;
  for (const double x : idle) out.stddev += (x - out.mean) * (x - out.mean);
  out.stddev = std::sqrt(out.stddev / m);
  out.max_minus_min = *std::max_element(idle.begin(), idle.end()) -
                      *std::min_element(idle.begin(), idle.end());
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E6: processor idleness (Section 1 motivation) ===\n\n";

  Table table({"M", "util/proc", "mean idle before", "mean idle after",
               "idle spread before", "idle spread after", "Gtotal>0 (%)"});

  for (const double util : {0.25, 0.45, 0.65}) {
    for (const int m : {4, 8}) {
      SuiteSpec spec;
      spec.params.tasks = 60;
      spec.params.target_utilization_per_proc = util;
      spec.processors = m;
      spec.comm_cost = 2;
      spec.count = 20;
      spec.base_seed = 40'000 + static_cast<std::uint64_t>(m) +
                       static_cast<std::uint64_t>(util * 100);
      const auto suite = make_suite(spec);

      const LoadBalancer balancer;
      double idle_before = 0;
      double idle_after = 0;
      double spread_before = 0;
      double spread_after = 0;
      int improved = 0;
      for (const SuiteInstance& instance : suite) {
        const IdleStats before = idle_stats(instance.schedule);
        const BalanceResult r = balancer.balance(instance.schedule);
        const IdleStats after = idle_stats(r.schedule);
        idle_before += before.mean;
        idle_after += after.mean;
        spread_before += before.max_minus_min;
        spread_after += after.max_minus_min;
        if (r.stats.gain_total > 0) ++improved;
      }
      const auto n = static_cast<double>(suite.size());
      table.add_row(
          {std::to_string(m), format_double(util, 2),
           format_double(idle_before / n, 3), format_double(idle_after / n, 3),
           format_double(spread_before / n, 3),
           format_double(spread_after / n, 3),
           format_double(100.0 * improved / n, 1)});
    }
  }

  std::cout << table.to_string()
            << "\npaper claim (via ref [3]): >65% of processors idle at any "
               "time for general workloads, more under periodicity — "
               "matches the low-utilization rows. Balancing conserves total "
               "work (mean idle unchanged) while the per-processor spread "
               "tightens and the makespan never grows.\n";
  return 0;
}
