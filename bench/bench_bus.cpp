/// \file bench_bus.cpp
/// \brief E10 (ours) — validity of the contention-free medium assumption.
///
/// The paper's timing model charges each remote dependence a fixed C and
/// never queues transfers (Theorem 1 assumes a medium per processor pair),
/// yet its own Figure-2 architecture shows a single medium "Med". This
/// bench measures, before and after balancing, whether each schedule's
/// transfers can actually serialize on one bus (EDF analysis,
/// lbmem/sim/bus.hpp), how many remote transfers the balancer removes,
/// and the bus utilization.

#include <iostream>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/sim/bus.hpp"
#include "lbmem/util/table.hpp"

int main() {
  using namespace lbmem;

  std::cout << "=== E10: single shared medium (Fig. 2 'Med') vs the "
               "contention-free model ===\n\n";

  Table table({"M", "C", "fits before", "fits after", "overloaded after",
               "mean transfers before", "mean transfers after",
               "mean bus util before", "mean bus util after"});

  for (const int m : {3, 4, 6}) {
    for (const Time comm : {1, 3}) {
      SuiteSpec spec;
      spec.params.tasks = 40;
      spec.params.edge_probability = 0.3;
      spec.processors = m;
      spec.comm_cost = comm;
      spec.count = 20;
      spec.base_seed = 70'000 + static_cast<std::uint64_t>(m * 10) +
                       static_cast<std::uint64_t>(comm);
      const auto suite = make_suite(spec);

      const LoadBalancer balancer;
      int fits_before = 0;
      int fits_after = 0;
      int overloaded_after = 0;
      double transfers_before = 0;
      double transfers_after = 0;
      double util_before = 0;
      double util_after = 0;
      for (const SuiteInstance& instance : suite) {
        const BusReport before = analyze_single_bus(instance.schedule);
        const BalanceResult r = balancer.balance(instance.schedule);
        const BusReport after = analyze_single_bus(r.schedule);
        if (before.verdict == BusVerdict::Fits) ++fits_before;
        if (after.verdict == BusVerdict::Fits) ++fits_after;
        if (after.verdict == BusVerdict::Overloaded) ++overloaded_after;
        transfers_before += static_cast<double>(before.jobs.size());
        transfers_after += static_cast<double>(after.jobs.size());
        util_before += before.utilization;
        util_after += after.utilization;
      }
      const auto n = static_cast<double>(suite.size());
      table.add_row({std::to_string(m), std::to_string(comm),
                     std::to_string(fits_before) + "/" +
                         std::to_string(suite.size()),
                     std::to_string(fits_after) + "/" +
                         std::to_string(suite.size()),
                     std::to_string(overloaded_after),
                     format_double(transfers_before / n, 1),
                     format_double(transfers_after / n, 1),
                     format_double(util_before / n, 3),
                     format_double(util_after / n, 3)});
    }
  }

  std::cout << table.to_string()
            << "\nreading: on dense random workloads the single medium of "
               "the paper's Figure 2\nis usually overloaded (utilization "
               "can exceed 1), so the contention-free\nflat-C model the "
               "heuristic relies on implicitly assumes per-pair links\n"
               "(Theorem 1's architecture) or sparse communication. "
               "Balancing with the\ncombined objective can even *add* "
               "transfers when memory spreading separates\ncommunicating "
               "blocks — a real cost the paper's model never charges.\n";
  return 0;
}
