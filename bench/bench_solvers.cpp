/// \file bench_solvers.cpp
/// \brief Head-to-head solver latency through the facade: every registered
/// (or bench-configured) Solver on the same N=1000 / M=8 workload, timed
/// as the user would call it — Problem in, validated Outcome out. The
/// per-iteration cost therefore includes the independent validation every
/// adapter runs (identical across solvers, so rankings are unaffected).
///
/// Search-based solvers run with bench-sized budgets (the registry
/// defaults target `compare` responsiveness, not benchmarking): the GA is
/// registered here as "ga-small" so the recorded name states the budget.
/// Recorded into BENCH_solvers.json by tools/bench_record.sh.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>
#include <vector>

#include "lbmem/api/problem.hpp"
#include "lbmem/api/registry.hpp"
#include "lbmem/api/solvers.hpp"
#include "lbmem/gen/suites.hpp"

namespace {

using namespace lbmem;

constexpr int kTasks = 1000;
constexpr int kProcs = 8;

const Problem& bench_problem() {
  static const Problem problem = [] {
    SuiteSpec spec;
    spec.params.tasks = kTasks;
    spec.params.period_levels = 3;
    spec.params.edge_probability = 0.15;
    spec.params.max_in_degree = 2;
    spec.processors = kProcs;
    spec.comm_cost = 2;
    spec.count = 1;
    spec.base_seed = 99'000 + static_cast<std::uint64_t>(kTasks) * 31 +
                     static_cast<std::uint64_t>(kProcs);
    spec.max_seed_attempts = 400;
    auto suite = make_suite(spec);
    if (suite.empty()) {
      throw std::runtime_error("no schedulable N=1000/M=8 instance");
    }
    return Problem(suite.front().graph, std::move(suite.front().schedule));
  }();
  return problem;
}

void run_solver(benchmark::State& state,
                const std::shared_ptr<const Solver>& solver) {
  const Problem& problem = bench_problem();
  Time makespan = 0;
  Mem max_memory = 0;
  int solved = 0;
  for (auto _ : state) {
    const Outcome outcome = solver->solve(problem);
    benchmark::DoNotOptimize(outcome.stats.makespan_after);
    if (outcome.feasible()) {
      ++solved;
      makespan = outcome.stats.makespan_after;
      max_memory = outcome.stats.max_memory_after;
    }
  }
  state.counters["makespan"] = static_cast<double>(makespan);
  state.counters["max_memory"] = static_cast<double>(max_memory);
  state.counters["solved"] = solved > 0 ? 1 : 0;
}

void register_benchmarks() {
  const SolverRegistry& builtin = SolverRegistry::builtin();
  std::vector<std::shared_ptr<const Solver>> solvers = {
      builtin.require("heuristic-lex"),
      builtin.require("heuristic-memory"),
      builtin.require("round-robin"),
      builtin.require("memory-greedy"),
      builtin.require("bnb-partition"),
  };
  // Bench-sized GA: the registry default (population 40 x 60 generations)
  // is a quality setting; at N=1000 each evaluation builds a forced
  // 1000-task schedule, so the bench states its reduced budget in the name.
  GaOptions ga;
  ga.population = 8;
  ga.generations = 10;
  solvers.push_back(std::make_shared<GaSolver>("ga-small", ga));

  for (const auto& solver : solvers) {
    benchmark::RegisterBenchmark(
        ("BM_Solver/" + solver->name()).c_str(),
        [solver](benchmark::State& state) { run_solver(state, solver); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return lbmem_bench::run_benchmarks(argc, argv);
}
