/// \file bench_optimality.cpp
/// \brief E11 (ours) — the heuristic's gap from exhaustive optima.
///
/// The paper's Section-6 conclusion concedes the heuristic "was not yet
/// applied on a realistic application" and relies on the α-approximation
/// argument alone. This bench supplies the missing measurement on small
/// systems where the whole-task placement space can be enumerated:
///  * makespan: balanced schedule vs the optimal whole-task assignment;
///  * max memory: balanced schedule vs both the optimal whole-task
///    assignment and the exact block-weight partition (the heuristic can
///    beat the former because it splits a task's instances).

#include <iostream>

#include "lbmem/baseline/bnb_partitioner.hpp"
#include "lbmem/baseline/exhaustive.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/util/table.hpp"

int main() {
  using namespace lbmem;

  std::cout << "=== E11: heuristic vs exhaustive optima (small systems) "
               "===\n\n";

  Table table({"M", "samples", "makespan/opt (mean)", "makespan/opt (max)",
               "mem/task-opt (mean)", "mem beats task-opt (%)",
               "mem/block-opt (mean)"});

  for (const int m : {2, 3}) {
    SuiteSpec spec;
    spec.params.tasks = 7;
    spec.params.period_levels = 2;
    spec.params.edge_probability = 0.4;
    spec.processors = m;
    spec.comm_cost = 2;
    spec.count = 15;
    spec.base_seed = 80'000 + static_cast<std::uint64_t>(m);
    const auto suite = make_suite(spec);

    const LoadBalancer balancer;
    double mk_ratio_sum = 0;
    double mk_ratio_max = 0;
    double mem_ratio_sum = 0;
    double mem_block_ratio_sum = 0;
    int beats = 0;
    int samples = 0;
    for (const SuiteInstance& instance : suite) {
      const auto opt = exhaustive_optimal(*instance.graph, Architecture(m),
                                          CommModel::flat(spec.comm_cost));
      if (!opt) continue;
      const BalanceResult r = balancer.balance(instance.schedule);

      const double mk_ratio = static_cast<double>(r.schedule.makespan()) /
                              static_cast<double>(opt->opt_makespan);
      mk_ratio_sum += mk_ratio;
      mk_ratio_max = std::max(mk_ratio_max, mk_ratio);

      const double mem_ratio =
          static_cast<double>(r.schedule.max_memory()) /
          static_cast<double>(opt->opt_max_memory);
      mem_ratio_sum += mem_ratio;
      if (r.schedule.max_memory() < opt->opt_max_memory) ++beats;

      std::vector<Mem> weights;
      for (const Block& b : build_blocks(instance.schedule).blocks) {
        weights.push_back(b.mem_sum);
      }
      const BnbResult block_opt = bnb_partition(weights, m);
      if (block_opt.partition.max_load > 0) {
        mem_block_ratio_sum +=
            static_cast<double>(r.schedule.max_memory()) /
            static_cast<double>(block_opt.partition.max_load);
      }
      ++samples;
    }
    if (samples == 0) continue;
    table.add_row(
        {std::to_string(m), std::to_string(samples),
         format_double(mk_ratio_sum / samples, 3),
         format_double(mk_ratio_max, 3),
         format_double(mem_ratio_sum / samples, 3),
         format_double(100.0 * beats / samples, 1),
         format_double(mem_block_ratio_sum / samples, 3)});
  }

  std::cout << table.to_string()
            << "\nreading: makespan/opt > 1 is expected — the balancer may "
               "only relocate\nblocks of an existing schedule and never "
               "delays a task, while the exhaustive\noptimum redesigns the "
               "whole placement; the observed gap stays small (<35%).\n"
               "On memory these tiny low-rate systems rarely exercise "
               "instance splitting, so\nthe whole-task optimum is seldom "
               "beaten here; the paper's own example (where\nsplitting a's "
               "four instances wins, 10 vs 16) is covered by the "
               "Exhaustive\nHeuristicWithinWholeTaskOptimumBounds test.\n";
  return 0;
}
