/// \file bench_theorem1.cpp
/// \brief E3 — empirical study of Theorem 1 (Section 5.1):
/// 0 <= Gtotal <= γ(M-1)!.
///
/// For each processor count M, a suite of random multi-rate systems is
/// scheduled and balanced; the observed Gtotal distribution is compared
/// against the paper's bound γ(M-1)! and against the combinatorially
/// correct pair count γ·M(M-1)/2 (the proof equates the two, see
/// DESIGN.md F3). The lower bound Gtotal >= 0 is also tallied.

#include <algorithm>
#include <iostream>
#include <vector>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/util/table.hpp"

int main() {
  using namespace lbmem;

  std::cout << "=== E3: Theorem 1 — 0 <= Gtotal <= gamma*(M-1)! ===\n\n";

  const Time comm_cost = 3;  // flat C, so gamma = C
  Table table({"M", "instances", "mean Gtotal", "max Gtotal",
               "gamma*(M-1)!", "gamma*M(M-1)/2", "G<0", "G>paper bound",
               "G>pair bound"});

  for (const int m : {2, 3, 4, 5, 6, 8}) {
    SuiteSpec spec;
    spec.params.tasks = 60;
    spec.params.edge_probability = 0.3;
    spec.processors = m;
    spec.comm_cost = comm_cost;
    spec.count = 30;
    spec.base_seed = 10'000 + static_cast<std::uint64_t>(m);
    const auto suite = make_suite(spec);

    const LoadBalancer balancer;
    std::vector<Time> gains;
    int below_zero = 0;
    int above_paper = 0;
    int above_pairs = 0;
    const Architecture arch(m);
    const Time paper_bound = comm_cost * arch.paper_pair_count();
    const Time pair_bound = comm_cost * arch.processor_pairs();
    for (const SuiteInstance& instance : suite) {
      const BalanceResult r = balancer.balance(instance.schedule);
      gains.push_back(r.stats.gain_total);
      if (r.stats.gain_total < 0) ++below_zero;
      if (r.stats.gain_total > paper_bound) ++above_paper;
      if (r.stats.gain_total > pair_bound) ++above_pairs;
    }
    double mean = 0;
    Time max_gain = 0;
    for (const Time g : gains) {
      mean += static_cast<double>(g);
      max_gain = std::max(max_gain, g);
    }
    if (!gains.empty()) mean /= static_cast<double>(gains.size());

    table.add_row({std::to_string(m), std::to_string(gains.size()),
                   format_double(mean, 2), std::to_string(max_gain),
                   std::to_string(paper_bound), std::to_string(pair_bound),
                   std::to_string(below_zero), std::to_string(above_paper),
                   std::to_string(above_pairs)});
  }

  std::cout << table.to_string()
            << "\npaper claim: 0 <= Gtotal <= gamma*(M-1)!.\n"
               "measured: the lower bound holds in every instance (the "
               "heuristic never\nincreases the total execution time, by "
               "construction). The upper bound is\nviolated for small M "
               "(DESIGN.md F7): gains also come from relocating blocks\n"
               "delayed by processor contention, and a chain of blocks can "
               "delete several\ncommunications between the same processor "
               "pair — both effects are outside\nthe theorem's proof "
               "model.\n";
  return 0;
}
