/// \file bench_parallel.cpp
/// \brief Threading scaling sweep behind the `threads` knobs (DESIGN.md
/// F19/F20), recorded into BENCH_parallel.json by tools/bench_record.sh.
///
/// Two independent layers, each swept over thread counts 1/2/4/8:
///  - BM_SweepThreads: ScenarioRunner farming (instance x solver) cells
///    onto the pool — the embarrassingly parallel layer, expected to scale
///    near-linearly up to the core count;
///  - BM_BalancerThreads: one LoadBalancer::balance with parallel
///    destination-candidate evaluation on a wide architecture — the
///    fine-grained layer, whose per-block fan-out is bounded by M, so the
///    useful thread count tracks the processor count, not the core count.
/// Both layers produce bit-identical results for every thread count
/// (enforced by tests/test_parallel_equivalence.cpp); each benchmark
/// exports its result signature as counters so a scaling run doubles as a
/// cross-thread-count consistency check in the recorded JSON.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <stdexcept>

#include "lbmem/api/scenario.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"

namespace {

using namespace lbmem;

SuiteSpec sweep_suite() {
  SuiteSpec spec;
  spec.params.tasks = 300;
  spec.params.period_levels = 3;
  spec.params.edge_probability = 0.15;
  spec.params.max_in_degree = 2;
  spec.params.intended_processors = 8;
  spec.processors = 8;
  spec.comm_cost = 2;
  spec.count = 4;
  spec.base_seed = 77'000;
  spec.max_seed_attempts = 200;
  return spec;
}

/// The sweep layer: instances x solvers cells on the pool.
void BM_SweepThreads(benchmark::State& state) {
  ScenarioSpec spec;
  spec.suite = sweep_suite();
  spec.solvers = {"heuristic-lex", "heuristic-memory", "round-robin",
                  "memory-greedy"};
  spec.threads = static_cast<int>(state.range(0));
  const ScenarioRunner runner;
  double makespan_sum = 0;
  for (auto _ : state) {
    const ScenarioReport report = runner.run(spec);
    benchmark::DoNotOptimize(report.cells.data());
    makespan_sum = 0;
    for (const ScenarioSolverSummary& row : report.summary) {
      makespan_sum += row.mean_makespan * row.solved;
    }
  }
  // Identical across thread counts by the determinism contract; recorded
  // so a scaling sweep's JSON carries its own consistency evidence.
  state.counters["makespan_sum"] = makespan_sum;
}

const Schedule& wide_input() {
  // The instance (not just its Schedule) must stay alive: the schedule
  // references the suite-owned TaskGraph.
  static const SuiteInstance input = [] {
    SuiteSpec spec;
    spec.params.tasks = 800;
    spec.params.period_levels = 3;
    spec.params.edge_probability = 0.1;
    spec.params.max_in_degree = 2;
    spec.params.intended_processors = 24;
    spec.processors = 24;
    spec.comm_cost = 2;
    spec.count = 1;
    spec.base_seed = 78'000;
    spec.max_seed_attempts = 400;
    auto suite = make_suite(spec);
    if (suite.empty()) {
      throw std::runtime_error("no schedulable N=800/M=24 instance");
    }
    return std::move(suite.front());
  }();
  return input.schedule;
}

/// The balancer layer: parallel destination-candidate evaluation inside
/// bound-and-prune selection, on an architecture wide enough that the
/// per-block candidate list (M-1 destinations) keeps the pool busy.
void BM_BalancerThreads(benchmark::State& state) {
  const Schedule& input = wide_input();
  BalanceOptions options;
  options.threads = static_cast<int>(state.range(0));
  const LoadBalancer balancer(options);
  Time makespan = 0;
  for (auto _ : state) {
    const BalanceResult result = balancer.balance(input);
    benchmark::DoNotOptimize(result.stats.gain_total);
    makespan = result.stats.makespan_after;
  }
  state.counters["makespan"] = static_cast<double>(makespan);
}

BENCHMARK(BM_SweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BalancerThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LBMEM_BENCHMARK_MAIN()
