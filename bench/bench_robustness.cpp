/// \file bench_robustness.cpp
/// \brief Cost of the perturbed-execution robustness harness: the plain
/// executor vs. simulate_perturbed under each noise channel, the FIFO bus
/// contention pass, the full replication harness, and the mid-run
/// ProcessorFailure -> Rebalancer repair handoff. One balanced N=400 / M=6
/// workload is shared by every benchmark so the numbers compare the
/// perturbation machinery, not different schedules.
/// Recorded into BENCH_robustness.json by tools/bench_record.sh.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <stdexcept>

#include "lbmem/api/problem.hpp"
#include "lbmem/api/solvers.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/sim/robustness.hpp"

namespace {

using namespace lbmem;

constexpr int kTasks = 400;
constexpr int kProcs = 6;
constexpr int kHyperperiods = 2;

const Schedule& bench_schedule() {
  static const Outcome outcome = [] {
    SuiteSpec spec;
    spec.params.tasks = kTasks;
    spec.params.period_levels = 3;
    spec.params.edge_probability = 0.15;
    spec.params.max_in_degree = 2;
    spec.processors = kProcs;
    spec.comm_cost = 2;
    spec.count = 1;
    spec.base_seed = 77'000 + static_cast<std::uint64_t>(kTasks) * 31 +
                     static_cast<std::uint64_t>(kProcs);
    spec.max_seed_attempts = 400;
    auto suite = make_suite(spec);
    if (suite.empty()) {
      throw std::runtime_error("no schedulable N=400/M=6 instance");
    }
    const Problem problem(suite.front().graph,
                          std::move(suite.front().schedule));
    Outcome solved = HeuristicSolver().solve(problem);
    if (!solved.feasible()) {
      throw std::runtime_error("bench workload did not balance");
    }
    return solved;
  }();
  return *outcome.schedule;
}

PerturbSpec noisy_spec() {
  PerturbSpec spec;
  spec.seed = 12345;
  spec.wcet_jitter = 0.25;
  spec.comm_jitter = 0.5;
  spec.stall_prob = 0.05;
  spec.stall_ticks = 3;
  return spec;
}

void BM_SimulateBaseline(benchmark::State& state) {
  const Schedule& sched = bench_schedule();
  for (auto _ : state) {
    const SimMetrics m = simulate(sched, SimOptions{kHyperperiods, true});
    benchmark::DoNotOptimize(m.span);
  }
}

void BM_SimulatePerturbed(benchmark::State& state) {
  const Schedule& sched = bench_schedule();
  const PerturbSpec spec = noisy_spec();
  std::int64_t violations = 0;
  for (auto _ : state) {
    const SimMetrics m = simulate_perturbed(
        sched, SimOptions{kHyperperiods, true}, spec, 0);
    violations = m.violations;
    benchmark::DoNotOptimize(m.span);
  }
  state.counters["violations"] = static_cast<double>(violations);
}

void BM_SimulatePerturbedFifoBus(benchmark::State& state) {
  const Schedule& sched = bench_schedule();
  PerturbSpec spec = noisy_spec();
  spec.bus_fifo = true;
  std::int64_t violations = 0;
  for (auto _ : state) {
    const SimMetrics m = simulate_perturbed(
        sched, SimOptions{kHyperperiods, true}, spec, 0);
    violations = m.violations;
    benchmark::DoNotOptimize(m.span);
  }
  state.counters["violations"] = static_cast<double>(violations);
}

void BM_RobustnessHarness(benchmark::State& state) {
  const Schedule& sched = bench_schedule();
  RobustnessOptions rob;
  rob.sim.hyperperiods = kHyperperiods;
  rob.replications = static_cast<int>(state.range(0));
  rob.perturb = noisy_spec();
  rob.perturb.bus_fifo = true;
  double miss_p99 = 0;
  for (auto _ : state) {
    const RobustnessReport report = run_robustness(sched, rob);
    miss_p99 = report.miss_p99;
    benchmark::DoNotOptimize(report.total_violations);
  }
  state.counters["miss_p99"] = miss_p99;
}

void BM_FailureRecovery(benchmark::State& state) {
  // The full graceful-degradation path: failure window, one Rebalancer
  // repair, stitched tail on the repaired schedule.
  const Schedule& sched = bench_schedule();
  const Time h = sched.graph().hyperperiod();
  RobustnessOptions rob;
  rob.sim.hyperperiods = kHyperperiods;
  rob.replications = 1;
  rob.perturb = noisy_spec();
  rob.perturb.fail_proc = 0;
  rob.perturb.fail_at = h / 2;
  int recovered = 0;
  for (auto _ : state) {
    const RobustnessReport report = run_robustness(sched, rob);
    recovered = report.recovered ? 1 : 0;
    benchmark::DoNotOptimize(report.recovery_latency);
  }
  state.counters["recovered"] = recovered;
}

BENCHMARK(BM_SimulateBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatePerturbed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatePerturbedFifoBus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RobustnessHarness)->Arg(3)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FailureRecovery)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lbmem_bench::run_benchmarks(argc, argv);
}
