/// \file bench_observability.cpp
/// \brief Overhead of the instrumentation layer (obs/): the balancer and
/// the online event loop, each measured with instrumentation off, with a
/// metrics registry attached, and with metrics plus span tracing.
///
/// The Off variants reuse the exact workloads of BM_Balance/4000/8
/// (bench_complexity.cpp, seed base 99'000) and BM_OnlineWcet/4000/8
/// (bench_online.cpp, seed base 77'000), so their times are directly
/// comparable across the recorded JSON files: Off must sit within noise
/// of the uninstrumented benches — the disabled tracer is one relaxed
/// atomic load plus a branch, and a null metrics pointer skips the
/// end-of-run fold entirely.
///
/// Tracer lifecycle differs by shape on purpose. A 4000-task balance
/// emits ~70k spans, so the balance bench builds a fresh, generously
/// sized tracer per iteration (outside the timed region) to avoid
/// measuring the full-buffer drop path. The online loop emits a handful of spans per
/// event, so one generously-sized tracer spans the whole run and the
/// dropped-span count is reported as a counter (expected 0).

#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/obs/metrics.hpp"
#include "lbmem/obs/trace.hpp"
#include "lbmem/online/rebalancer.hpp"

namespace {

using namespace lbmem;

enum class Mode { Off, Metrics, Trace };

/// Cache of prepared instances, keyed by (tasks, processors). Same spec
/// and seed base as bench_complexity.cpp so the Off numbers line up with
/// BM_Balance on the identical instance.
const SuiteInstance& prepared(int tasks, int processors) {
  static std::map<std::pair<int, int>, std::unique_ptr<SuiteInstance>> cache;
  auto& slot = cache[{tasks, processors}];
  if (!slot) {
    SuiteSpec spec;
    spec.params.tasks = tasks;
    spec.params.period_levels = 3;
    spec.params.edge_probability = 0.15;
    spec.params.max_in_degree = 2;
    spec.processors = processors;
    spec.comm_cost = 2;
    spec.count = 1;
    spec.base_seed = 99'000 + static_cast<std::uint64_t>(tasks) * 31 +
                     static_cast<std::uint64_t>(processors);
    spec.max_seed_attempts = 400;
    auto suite = make_suite(spec);
    if (suite.empty()) {
      throw std::runtime_error("no schedulable instance for N=" +
                               std::to_string(tasks) +
                               " M=" + std::to_string(processors));
    }
    slot = std::make_unique<SuiteInstance>(std::move(suite.front()));
  }
  return *slot;
}

void balance_obs_loop(benchmark::State& state, Mode mode) {
  const int tasks = static_cast<int>(state.range(0));
  const int processors = static_cast<int>(state.range(1));
  const SuiteInstance& instance = prepared(tasks, processors);

  obs::Registry registry;
  BalanceOptions options;
  if (mode != Mode::Off) options.metrics = &registry;
  const LoadBalancer balancer(options);

  std::uint64_t spans = 0;
  std::uint64_t dropped = 0;
  for (auto _ : state) {
    std::optional<obs::Tracer> tracer;
    std::optional<obs::TracerScope> scope;
    if (mode == Mode::Trace) {
      state.PauseTiming();
      // A 4000-task balance emits ~70k spans; size the buffer so the
      // measured cost is the live record path, never the drop path.
      tracer.emplace(/*capacity_per_thread=*/std::size_t{1} << 17);
      scope.emplace(&*tracer);
      state.ResumeTiming();
    }
    const BalanceResult r = balancer.balance(instance.schedule);
    benchmark::DoNotOptimize(r.schedule);
    if (mode == Mode::Trace) {
      state.PauseTiming();
      scope.reset();
      spans = static_cast<std::uint64_t>(tracer->span_count());
      dropped = tracer->dropped();
      tracer.reset();
      state.ResumeTiming();
    }
  }
  state.counters["tasks"] = tasks;
  state.counters["procs"] = processors;
  state.counters["metrics"] = static_cast<double>(registry.size());
  state.counters["spans_per_iter"] = static_cast<double>(spans);
  state.counters["dropped"] = static_cast<double>(dropped);
}

void BM_BalanceObsOff(benchmark::State& state) {
  balance_obs_loop(state, Mode::Off);
}
void BM_BalanceObsMetrics(benchmark::State& state) {
  balance_obs_loop(state, Mode::Metrics);
}
void BM_BalanceObsTrace(benchmark::State& state) {
  balance_obs_loop(state, Mode::Trace);
}

/// Balanced steady-state system per (tasks, processors), built once.
/// Mirrors bench_online.cpp (seed base 77'000) so the Off numbers line up
/// with BM_OnlineWcet on the identical system.
struct PristineSystem {
  std::shared_ptr<const TaskGraph> graph;
  std::unique_ptr<Schedule> balanced;
  TaskId flip_task = -1;
  Time flip_high = 0;
};

const PristineSystem& pristine(int tasks, int processors) {
  static std::map<std::pair<int, int>, std::unique_ptr<PristineSystem>>
      cache;
  auto& slot = cache[{tasks, processors}];
  if (!slot) {
    SuiteSpec spec;
    spec.params.tasks = tasks;
    spec.params.period_levels = 3;
    spec.params.edge_probability = 0.15;
    spec.params.max_in_degree = 2;
    spec.processors = processors;
    spec.comm_cost = 2;
    spec.count = 1;
    spec.base_seed = 77'000 + static_cast<std::uint64_t>(tasks) * 31 +
                     static_cast<std::uint64_t>(processors);
    spec.max_seed_attempts = 400;
    auto suite = make_suite(spec);
    if (suite.empty()) {
      throw std::runtime_error("no schedulable instance for N=" +
                               std::to_string(tasks) +
                               " M=" + std::to_string(processors));
    }
    auto system = std::make_unique<PristineSystem>();
    system->graph = suite.front().graph;
    system->balanced = std::make_unique<Schedule>(
        LoadBalancer().balance(suite.front().schedule).schedule);
    for (TaskId t = 0;
         t < static_cast<TaskId>(system->graph->task_count()); ++t) {
      const Time wcet = system->graph->task(t).wcet;
      if (wcet >= 2 && wcet > system->flip_high) {
        system->flip_task = t;
        system->flip_high = wcet;
      }
    }
    if (system->flip_task < 0) {
      throw std::runtime_error("no task with wcet >= 2 to toggle");
    }
    slot = std::move(system);
  }
  return *slot;
}

/// Alternating WcetChange events through the incremental engine — the
/// same loop as BM_OnlineWcet — with the obs hooks toggled by mode.
void online_obs_loop(benchmark::State& state, Mode mode) {
  const int tasks = static_cast<int>(state.range(0));
  const int processors = static_cast<int>(state.range(1));
  const PristineSystem& system = pristine(tasks, processors);

  obs::Registry registry;
  RebalancerOptions options;
  options.incremental = true;
  if (mode != Mode::Off) options.metrics = &registry;
  Rebalancer engine =
      Rebalancer::adopt(*system.graph, *system.balanced, options);
  const std::string name = system.graph->task(system.flip_task).name;

  // One tracer for the whole run: an online event records a handful of
  // spans, so a 1M-span buffer comfortably outlasts the iteration budget
  // and the measured cost is the live record path, not the drop path.
  std::optional<obs::Tracer> tracer;
  std::optional<obs::TracerScope> scope;
  if (mode == Mode::Trace) {
    tracer.emplace(/*capacity_per_thread=*/std::size_t{1} << 20);
    scope.emplace(&*tracer);
  }

  std::int64_t rejected = 0;
  bool low = true;
  for (auto _ : state) {
    Event event;
    event.at = 1;
    event.payload =
        WcetChange{name, low ? system.flip_high - 1 : system.flip_high};
    low = !low;
    const EventOutcome outcome = engine.apply(event);
    if (!outcome.applied) ++rejected;
    benchmark::DoNotOptimize(outcome.makespan);
  }
  scope.reset();

  state.counters["tasks"] = tasks;
  state.counters["procs"] = processors;
  state.counters["rejected"] = static_cast<double>(rejected);
  state.counters["metrics"] = static_cast<double>(registry.size());
  state.counters["spans"] =
      tracer ? static_cast<double>(tracer->span_count()) : 0.0;
  state.counters["dropped"] =
      tracer ? static_cast<double>(tracer->dropped()) : 0.0;
}

void BM_OnlineObsOff(benchmark::State& state) {
  online_obs_loop(state, Mode::Off);
}
void BM_OnlineObsMetrics(benchmark::State& state) {
  online_obs_loop(state, Mode::Metrics);
}
void BM_OnlineObsTrace(benchmark::State& state) {
  online_obs_loop(state, Mode::Trace);
}

}  // namespace

// The acceptance point from the complexity study: N=4000, M=8.
BENCHMARK(BM_BalanceObsOff)->Args({4000, 8})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BalanceObsMetrics)
    ->Args({4000, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BalanceObsTrace)->Args({4000, 8})->Unit(benchmark::kMillisecond);

// The online latency point from the incremental-vs-full comparison.
BENCHMARK(BM_OnlineObsOff)->Args({4000, 8})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineObsMetrics)
    ->Args({4000, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineObsTrace)->Args({4000, 8})->Unit(benchmark::kMillisecond);

LBMEM_BENCHMARK_MAIN()
