/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the library on the paper's own
/// example (Section 3.3): build a multi-rate task graph, schedule it,
/// balance it, inspect the result.
///
/// Expected output: the Figure-3 schedule (makespan 15, memory [16,4,4]),
/// the seven balancing steps, and the Figure-4 schedule (makespan 14,
/// memory [10,6,8]).

#include <cstdio>
#include <iostream>

#include "lbmem/gen/paper_example.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/report/gantt.hpp"
#include "lbmem/report/summary.hpp"
#include "lbmem/validate/validator.hpp"

int main() {
  using namespace lbmem;

  // 1. The application: five strict-periodic tasks, multi-rate dependences
  //    (see paper_example_graph for the construction with add_task /
  //    add_dependence / freeze).
  const TaskGraph graph = paper_example_graph();
  std::cout << "Application: " << graph.task_count() << " tasks, "
            << graph.dependence_count() << " dependences, hyper-period "
            << graph.hyperperiod() << "\n\n";

  // 2. Initial distributed schedule (the paper's ref-[4] stage).
  const Schedule before = paper_example_schedule(graph);
  validate_or_throw(before);
  std::cout << "=== Initial schedule (paper Figure 3) ===\n"
            << render_gantt(before) << "makespan: " << before.makespan()
            << "\n\n";

  // 3. Load balancing with efficient memory usage (the paper's heuristic).
  BalanceOptions options;
  options.policy = CostPolicy::Lexicographic;  // reproduces the paper
  options.record_trace = true;
  const BalanceResult result = LoadBalancer(options).balance(before);
  validate_or_throw(result.schedule);

  const BlockDecomposition dec = build_blocks(before);
  std::cout << "=== Balancing steps (paper Section 3.3) ===\n";
  for (const StepRecord& step : result.trace) {
    std::cout << describe_step(before, step, dec) << "\n";
  }

  std::cout << "\n=== Balanced schedule (paper Figure 4) ===\n"
            << render_gantt(result.schedule) << "\n"
            << summarize(result.stats);
  return 0;
}
