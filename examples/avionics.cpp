/// \file avionics.cpp
/// \brief A multi-rate flight-control pipeline (the paper's Section-1
/// avionics motivation) balanced with the library.
///
/// Topology (periods in ms-as-ticks):
///   IMU sensors (5 ms) and air-data sensors (10 ms) feed a state
///   estimator (10 ms); the estimator feeds the inner control loop (10 ms)
///   and a guidance layer (40 ms); guidance feeds the outer loop (40 ms)
///   and a telemetry/logging stage (80 ms) that also drains raw IMU data.
///
/// The example shows the full pipeline: model construction, initial
/// scheduling, balancing, validation, execution metrics (idle fractions,
/// multi-rate buffer peaks), and a memory-capacity check against a typical
/// small embedded memory budget.

#include <iostream>

#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/report/gantt.hpp"
#include "lbmem/report/summary.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/sim/engine.hpp"
#include "lbmem/validate/validator.hpp"

int main() {
  using namespace lbmem;

  TaskGraph g;
  const TaskId imu = g.add_task("imu", 5, 1, 6);
  const TaskId airdata = g.add_task("airdata", 10, 2, 4);
  const TaskId estimator = g.add_task("estimator", 10, 3, 12);
  const TaskId inner = g.add_task("inner_loop", 10, 2, 8);
  const TaskId guidance = g.add_task("guidance", 40, 6, 16);
  const TaskId outer = g.add_task("outer_loop", 40, 4, 10);
  const TaskId telemetry = g.add_task("telemetry", 80, 8, 20);

  g.add_dependence(imu, estimator, /*data_size=*/3);
  g.add_dependence(airdata, estimator, 2);
  g.add_dependence(estimator, inner, 2);
  g.add_dependence(estimator, guidance, 4);  // 4:1 rate
  g.add_dependence(guidance, outer, 3);
  g.add_dependence(imu, telemetry, 1);       // 16:1 rate!
  g.add_dependence(guidance, telemetry, 2);
  g.freeze();
  (void)inner;
  (void)outer;

  std::cout << "avionics pipeline: " << g.task_count() << " tasks, "
            << g.dependence_count() << " dependences, hyper-period "
            << g.hyperperiod() << ", utilization " << g.utilization()
            << "\n\n";

  const Architecture arch(/*processors=*/3, /*memory_capacity=*/160);
  const CommModel comm = CommModel::affine(/*latency=*/1, /*bandwidth=*/4);

  SchedulerOptions sched_options;
  sched_options.policy = PlacementPolicy::PeriodCluster;
  const Schedule before = build_initial_schedule(g, arch, comm, sched_options);
  // The initial scheduler satisfies only dependence and strict periodicity;
  // it is free to overload a processor's memory (the paper's Section-1
  // problem statement). Expect a capacity violation here.
  const ValidationReport before_report = validate(before);
  std::cout << "--- initial schedule ---\n" << render_gantt(before);
  if (!before_report.ok()) {
    std::cout << "initial schedule violates the memory budget:\n"
              << before_report.to_string();
  }
  std::cout << "\n";

  BalanceOptions options;
  options.enforce_memory_capacity = true;
  const BalanceResult result = LoadBalancer(options).balance(before);
  validate_or_throw(result.schedule);
  std::cout << "--- balanced schedule ---\n"
            << render_gantt(result.schedule) << "\n"
            << summarize(result.stats) << "\n";

  // Execution check: two hyper-periods through the discrete-event engine.
  const SimMetrics metrics = simulate(result.schedule, SimOptions{2, true});
  std::cout << "execution over 2 hyper-periods: " << metrics.violations
            << " violations\n";
  for (ProcId p = 0; p < arch.processor_count(); ++p) {
    const auto& pm = metrics.procs[static_cast<std::size_t>(p)];
    std::cout << "  " << arch.processor_name(p) << ": idle "
              << static_cast<int>(100 * pm.idle_fraction)
              << "%, static mem " << pm.static_memory << "/"
              << arch.memory_capacity() << ", peak buffers "
              << pm.peak_buffer << " (worst total " << pm.peak_total
              << ")\n";
  }
  // The 16:1 imu->telemetry edge forces 16 samples to be buffered: the
  // Figure-1 effect on a realistic workload.
  std::cout << "\nnote: telemetry consumes 16 imu samples per run — its "
               "processor must hold all of them at once (paper Fig. 1).\n";
  return 0;
}
