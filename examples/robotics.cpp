/// \file robotics.cpp
/// \brief An autonomous-robot sensor-fusion/actuation graph (the paper's
/// "autonomous robotics" domain) raced across the solver facade.
///
/// Pipeline: lidar + camera + odometry feed a fusion stage; fusion feeds a
/// local planner and a mapper; the planner drives two actuator tasks.
/// Demonstrates the lbmem/api/ surface: wrap a hand-built system in a
/// Problem, iterate registered solvers by name, and — for the heuristic —
/// drop down to the LoadBalancer API when the per-block decision trace is
/// wanted (the facade reports outcomes, not traces).

#include <iostream>
#include <memory>

#include "lbmem/api/problem.hpp"
#include "lbmem/api/registry.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/report/summary.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/util/table.hpp"
#include "lbmem/validate/validator.hpp"

int main() {
  using namespace lbmem;

  auto g = std::make_shared<TaskGraph>();
  const TaskId lidar = g->add_task("lidar", 8, 2, 24);
  const TaskId camera = g->add_task("camera", 16, 4, 32);
  const TaskId odom = g->add_task("odom", 4, 1, 2);
  const TaskId fusion = g->add_task("fusion", 16, 3, 16);
  const TaskId planner = g->add_task("planner", 16, 3, 8);
  const TaskId mapper = g->add_task("mapper", 32, 6, 40);
  const TaskId left = g->add_task("wheel_left", 16, 1, 2);
  const TaskId right = g->add_task("wheel_right", 16, 1, 2);

  g->add_dependence(lidar, fusion, 8);
  g->add_dependence(camera, fusion, 12);
  g->add_dependence(odom, fusion, 1);
  g->add_dependence(fusion, planner, 4);
  g->add_dependence(fusion, mapper, 6);
  g->add_dependence(planner, left, 1);
  g->add_dependence(planner, right, 1);
  g->freeze();

  const Architecture arch(4);
  const CommModel comm = CommModel::flat(2);
  Schedule before = build_initial_schedule(*g, arch, comm, {});
  validate_or_throw(before);

  std::cout << "robot graph: " << g->task_count() << " tasks, hyper-period "
            << g->hyperperiod() << ", initial makespan " << before.makespan()
            << ", initial max memory " << before.max_memory() << "\n\n";

  // One Problem, many solvers: the facade makes the policy comparison a
  // loop over registry names.
  const Problem problem(g, std::move(before));
  const SolverRegistry& registry = SolverRegistry::builtin();

  Table table({"solver", "makespan", "Gtotal", "max mem", "mem layout",
               "feasible"});
  for (const char* name :
       {"heuristic-lex", "heuristic-formula", "heuristic-gain",
        "heuristic-memory", "round-robin", "memory-greedy",
        "bnb-partition"}) {
    const Outcome r = registry.require(name)->solve(problem);
    std::string layout = "-";
    if (r.feasible()) {
      layout = "[";
      for (std::size_t p = 0; p < r.stats.memory_after.size(); ++p) {
        if (p) layout += ",";
        layout += std::to_string(r.stats.memory_after[p]);
      }
      layout += "]";
    }
    table.add_row({name, std::to_string(r.stats.makespan_after),
                   std::to_string(r.stats.gain_total),
                   std::to_string(r.stats.max_memory_after), layout,
                   r.feasible() ? "yes" : "no"});
  }
  std::cout << table.to_string();

  // The decision trace is a LoadBalancer feature (the facade trades it
  // for uniformity): drop one level down when the evidence is wanted.
  BalanceOptions options;
  options.record_trace = true;
  const BalanceResult traced =
      LoadBalancer(options).balance(problem.initial_schedule());
  const BlockDecomposition dec = build_blocks(problem.initial_schedule());
  std::cout << "\ndecision trace (default policy):\n";
  for (const StepRecord& step : traced.trace) {
    std::cout << "  " << describe_step(problem.initial_schedule(), step, dec)
              << "\n";
  }
  return 0;
}
