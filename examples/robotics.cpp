/// \file robotics.cpp
/// \brief An autonomous-robot sensor-fusion/actuation graph (the paper's
/// "autonomous robotics" domain) with a comparison of all cost policies.
///
/// Pipeline: lidar + camera + odometry feed a fusion stage; fusion feeds a
/// local planner and a mapper; the planner drives two actuator tasks.
/// Demonstrates selecting cost policies and reading the decision trace
/// programmatically.

#include <iostream>

#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/report/summary.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/util/table.hpp"
#include "lbmem/validate/validator.hpp"

int main() {
  using namespace lbmem;

  TaskGraph g;
  const TaskId lidar = g.add_task("lidar", 8, 2, 24);
  const TaskId camera = g.add_task("camera", 16, 4, 32);
  const TaskId odom = g.add_task("odom", 4, 1, 2);
  const TaskId fusion = g.add_task("fusion", 16, 3, 16);
  const TaskId planner = g.add_task("planner", 16, 3, 8);
  const TaskId mapper = g.add_task("mapper", 32, 6, 40);
  const TaskId left = g.add_task("wheel_left", 16, 1, 2);
  const TaskId right = g.add_task("wheel_right", 16, 1, 2);

  g.add_dependence(lidar, fusion, 8);
  g.add_dependence(camera, fusion, 12);
  g.add_dependence(odom, fusion, 1);
  g.add_dependence(fusion, planner, 4);
  g.add_dependence(fusion, mapper, 6);
  g.add_dependence(planner, left, 1);
  g.add_dependence(planner, right, 1);
  g.freeze();

  const Architecture arch(4);
  const CommModel comm = CommModel::flat(2);
  const Schedule before = build_initial_schedule(g, arch, comm, {});
  validate_or_throw(before);

  std::cout << "robot graph: " << g.task_count() << " tasks, hyper-period "
            << g.hyperperiod() << ", initial makespan " << before.makespan()
            << ", initial max memory " << before.max_memory() << "\n\n";

  Table table({"policy", "makespan", "Gtotal", "max mem", "mem layout",
               "off-home moves"});
  for (const CostPolicy policy :
       {CostPolicy::Lexicographic, CostPolicy::PaperFormula,
        CostPolicy::GainOnly, CostPolicy::MemoryOnly}) {
    BalanceOptions options;
    options.policy = policy;
    options.record_trace = true;
    const BalanceResult r = LoadBalancer(options).balance(before);
    validate_or_throw(r.schedule);
    std::string layout = "[";
    for (ProcId p = 0; p < arch.processor_count(); ++p) {
      if (p) layout += ",";
      layout += std::to_string(r.schedule.memory_on(p));
    }
    layout += "]";
    table.add_row({to_string(policy), std::to_string(r.schedule.makespan()),
                   std::to_string(r.stats.gain_total),
                   std::to_string(r.schedule.max_memory()), layout,
                   std::to_string(r.stats.moves_off_home)});
  }
  std::cout << table.to_string();

  // Inspect the decision trace of the default policy for the fusion block.
  BalanceOptions options;
  options.record_trace = true;
  const BalanceResult traced = LoadBalancer(options).balance(before);
  const BlockDecomposition dec = build_blocks(before);
  std::cout << "\ndecision trace (default policy):\n";
  for (const StepRecord& step : traced.trace) {
    std::cout << "  " << describe_step(before, step, dec) << "\n";
  }
  return 0;
}
