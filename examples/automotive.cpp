/// \file automotive.cpp
/// \brief The paper's own motivating scenario (Section 3.1), scaled up:
/// engine sensors sampled fast, averaged slow.
///
/// "Let a be a sensor which measures the temperature of an engine, and let
/// b be the task which computes the average temperature of the same engine
/// (period of b is equal to n times the period of a)."
///
/// We build an engine-control unit with four cylinder-temperature sensors
/// (fast), per-cylinder averagers (n = 4 slower), a knock-control task
/// fusing the averages, and an actuator stage; then compare the memory
/// placement before/after balancing and show the effect of the
/// communication-time model on the averagers' start times.

#include <iostream>

#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/report/gantt.hpp"
#include "lbmem/report/summary.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/sim/engine.hpp"
#include "lbmem/util/table.hpp"
#include "lbmem/validate/validator.hpp"

int main() {
  using namespace lbmem;

  constexpr int kCylinders = 4;
  TaskGraph g;
  std::vector<TaskId> sensors;
  std::vector<TaskId> averagers;
  for (int c = 0; c < kCylinders; ++c) {
    // Sensor: period 4, short conversion, sample buffer.
    sensors.push_back(
        g.add_task("temp" + std::to_string(c + 1), 4, 1, 3));
    // Averager: period 16 = 4 * sensor period -> consumes 4 samples.
    averagers.push_back(
        g.add_task("avg" + std::to_string(c + 1), 16, 2, 5));
    g.add_dependence(sensors.back(), averagers.back(), /*data_size=*/2);
  }
  const TaskId knock = g.add_task("knock_ctrl", 16, 3, 9);
  for (const TaskId avg : averagers) {
    g.add_dependence(avg, knock, 1);
  }
  const TaskId actuate = g.add_task("ignition", 16, 2, 4);
  g.add_dependence(knock, actuate, 1);
  g.freeze();

  std::cout << "engine control unit: " << g.task_count() << " tasks, "
            << "hyper-period " << g.hyperperiod() << "\n\n";

  const Architecture arch(3);
  const CommModel comm = CommModel::flat(1);
  const Schedule before = build_initial_schedule(g, arch, comm, {});
  validate_or_throw(before);

  BalanceOptions options;
  options.record_trace = true;
  const BalanceResult result = LoadBalancer(options).balance(before);
  validate_or_throw(result.schedule);

  std::cout << "--- before ---\n" << render_gantt(before)
            << "\n--- after ---\n" << render_gantt(result.schedule) << "\n"
            << summarize(result.stats) << "\n";

  // Per-averager view of the paper's n-samples rule.
  Table table({"averager", "consumes", "samples ready at", "starts at"});
  for (int c = 0; c < kCylinders; ++c) {
    const TaskInstance avg{averagers[static_cast<std::size_t>(c)], 0};
    table.add_row({g.task(avg.task).name,
                   "4 x " + g.task(sensors[static_cast<std::size_t>(c)]).name,
                   std::to_string(result.schedule.data_ready(
                       avg, result.schedule.proc(avg))),
                   std::to_string(result.schedule.start(avg))});
  }
  std::cout << table.to_string();

  const SimMetrics metrics = simulate(result.schedule, SimOptions{2, true});
  std::cout << "\nexecution: " << metrics.violations
            << " violations; worst per-processor buffer peak "
            << metrics.max_peak_buffer() << " units\n";
  return 0;
}
