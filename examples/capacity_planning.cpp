/// \file capacity_planning.cpp
/// \brief Using the library as a design-space explorer: find the smallest
/// homogeneous architecture (processor count x per-processor memory) that
/// hosts a workload — the embedded-systems sizing question the paper's
/// memory-usage objective ultimately serves.
///
/// Each candidate (M, capacity) becomes a Problem with a finite-capacity
/// architecture; the memory-spreading heuristic runs through the solver
/// facade, which enforces the capacity during the search and returns an
/// infeasible Outcome (rather than an over-budget schedule) when the
/// workload does not fit. Prints the feasibility frontier.

#include <iostream>
#include <memory>
#include <optional>

#include "lbmem/api/problem.hpp"
#include "lbmem/api/solvers.hpp"
#include "lbmem/gen/random_graph.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/util/table.hpp"

namespace {

using namespace lbmem;

/// Try to host the workload on (processors, capacity); returns the
/// balanced max memory when it fits.
std::optional<Mem> fits(const std::shared_ptr<const TaskGraph>& g,
                        int processors, Mem capacity) {
  try {
    const Problem problem(
        g, build_initial_schedule(*g, Architecture(processors, capacity),
                                  CommModel::flat(2), {}));
    BalanceOptions options;
    options.policy = CostPolicy::MemoryOnly;
    const HeuristicSolver solver(options);
    const Outcome r = solver.solve(problem);
    // An engaged outcome passed the validator, capacity rule included —
    // no separate over-budget check is needed.
    if (!r.feasible()) return std::nullopt;
    return r.stats.max_memory_after;
  } catch (const ScheduleError&) {
    return std::nullopt;  // not even an initial schedule exists
  }
}

}  // namespace

int main() {
  // A mid-size synthetic workload (fixed seed: reproducible sizing).
  RandomGraphParams params;
  params.tasks = 40;
  params.period_levels = 3;
  params.mem_min = 2;
  params.mem_max = 12;
  params.intended_processors = 4;
  const auto g = std::make_shared<const TaskGraph>(
      random_task_graph(params, /*seed=*/2026));

  Mem total_memory = 0;
  for (TaskId t = 0; t < static_cast<TaskId>(g->task_count()); ++t) {
    total_memory += g->task(t).memory * g->instance_count(t);
  }
  std::cout << "workload: " << g->task_count() << " tasks, utilization "
            << g->utilization() << ", total resident memory " << total_memory
            << "\n\n";

  Table table({"M \\ capacity", "64", "96", "128", "192", "256"});
  for (const int m : {2, 3, 4, 6, 8}) {
    std::vector<std::string> row = {std::to_string(m)};
    for (const Mem cap : {64, 96, 128, 192, 256}) {
      const auto result = fits(g, m, cap);
      row.push_back(result ? ("ok(" + std::to_string(*result) + ")") : "-");
    }
    table.add_row(row);
  }
  std::cout << table.to_string()
            << "\ncells: ok(max-memory-after-balancing) when the workload "
               "is schedulable\nand fits the per-processor budget; '-' "
               "otherwise. The frontier shows the\nmemory/processor-count "
               "trade-off the balancing heuristic unlocks.\n";
  return 0;
}
