/// \file capacity_planning.cpp
/// \brief Using the library as a design-space explorer: find the smallest
/// homogeneous architecture (processor count x per-processor memory) that
/// hosts a workload — the embedded-systems sizing question the paper's
/// memory-usage objective ultimately serves.
///
/// For each candidate (M, capacity) the workload is scheduled, balanced
/// with capacity enforcement, and accepted iff the result validates and
/// every processor fits its budget. Prints the feasibility frontier.

#include <iostream>
#include <optional>

#include "lbmem/gen/random_graph.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/util/table.hpp"
#include "lbmem/validate/validator.hpp"

namespace {

using namespace lbmem;

/// Try to host the workload on (processors, capacity); returns the
/// balanced max memory when it fits.
std::optional<Mem> fits(const TaskGraph& g, int processors, Mem capacity) {
  const Architecture arch(processors, capacity);
  const CommModel comm = CommModel::flat(2);
  try {
    const Schedule before = build_initial_schedule(g, arch, comm, {});
    BalanceOptions options;
    options.policy = CostPolicy::MemoryOnly;
    options.enforce_memory_capacity = true;
    const BalanceResult r = LoadBalancer(options).balance(before);
    if (!validate(r.schedule).ok()) return std::nullopt;
    if (r.schedule.max_memory() > capacity) return std::nullopt;
    return r.schedule.max_memory();
  } catch (const ScheduleError&) {
    return std::nullopt;
  }
}

}  // namespace

int main() {
  // A mid-size synthetic workload (fixed seed: reproducible sizing).
  RandomGraphParams params;
  params.tasks = 40;
  params.period_levels = 3;
  params.mem_min = 2;
  params.mem_max = 12;
  params.intended_processors = 4;
  const TaskGraph g = random_task_graph(params, /*seed=*/2026);

  Mem total_memory = 0;
  for (TaskId t = 0; t < static_cast<TaskId>(g.task_count()); ++t) {
    total_memory += g.task(t).memory * g.instance_count(t);
  }
  std::cout << "workload: " << g.task_count() << " tasks, utilization "
            << g.utilization() << ", total resident memory " << total_memory
            << "\n\n";

  Table table({"M \\ capacity", "64", "96", "128", "192", "256"});
  for (const int m : {2, 3, 4, 6, 8}) {
    std::vector<std::string> row = {std::to_string(m)};
    for (const Mem cap : {64, 96, 128, 192, 256}) {
      const auto result = fits(g, m, cap);
      row.push_back(result ? ("ok(" + std::to_string(*result) + ")") : "-");
    }
    table.add_row(row);
  }
  std::cout << table.to_string()
            << "\ncells: ok(max-memory-after-balancing) when the workload "
               "is schedulable\nand fits the per-processor budget; '-' "
               "otherwise. The frontier shows the\nmemory/processor-count "
               "trade-off the balancing heuristic unlocks.\n";
  return 0;
}
