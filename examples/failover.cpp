/// \file failover.cpp
/// \brief Online rebalancing on the avionics workload: a processor fails
/// mid-mission, a diagnostics task is hot-added, and a mode change bumps a
/// WCET — the event-driven engine repairs and rebalances after each event
/// while every intermediate schedule stays valid.
///
/// This is the avionics.cpp pipeline (IMU/air-data sensors -> estimator ->
/// control loops -> telemetry) run through src/lbmem/online/ instead of a
/// single offline balance.

#include <iostream>
#include <memory>

#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/online/runner.hpp"
#include "lbmem/report/gantt.hpp"
#include "lbmem/report/online.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/validate/validator.hpp"

int main() {
  using namespace lbmem;

  auto g = std::make_unique<TaskGraph>();
  const TaskId imu = g->add_task("imu", 5, 1, 6);
  const TaskId airdata = g->add_task("airdata", 10, 2, 4);
  const TaskId estimator = g->add_task("estimator", 10, 3, 12);
  const TaskId inner = g->add_task("inner_loop", 10, 2, 8);
  const TaskId guidance = g->add_task("guidance", 40, 6, 16);
  const TaskId outer = g->add_task("outer_loop", 40, 4, 10);
  const TaskId telemetry = g->add_task("telemetry", 80, 8, 20);
  g->add_dependence(imu, estimator, 3);
  g->add_dependence(airdata, estimator, 2);
  g->add_dependence(estimator, inner, 2);
  g->add_dependence(estimator, guidance, 4);
  g->add_dependence(guidance, outer, 3);
  g->add_dependence(imu, telemetry, 1);
  g->add_dependence(guidance, telemetry, 2);
  g->freeze();
  (void)inner;
  (void)outer;

  const Architecture arch(/*processors=*/3);
  const CommModel comm = CommModel::affine(/*latency=*/1, /*bandwidth=*/4);
  const Schedule before = build_initial_schedule(*g, arch, comm);
  const BalanceResult balanced = LoadBalancer().balance(before);
  std::cout << "--- steady state (balanced) ---\n"
            << render_gantt(balanced.schedule) << "\n";

  // Price migrations: after a repair, blocks only move for real gains.
  RebalancerOptions options;
  options.balance.migration_penalty = 1;
  Rebalancer system(std::move(g), Schedule(balanced.schedule), options);

  // The mission events: P2 dies, a diagnostics task is hot-added to drain
  // estimator data, and the estimator's WCET is re-estimated upward.
  EventTrace trace;
  Event failure;
  failure.at = 40;
  failure.payload = ProcessorFailure{1};
  trace.push_back(failure);

  NewTaskSpec diag;
  diag.name = "diagnostics";
  diag.period = 80;
  diag.wcet = 4;
  diag.memory = 6;
  diag.producers.push_back(NewTaskSpec::Producer{"estimator", 2});
  Event arrival;
  arrival.at = 120;
  arrival.payload = TaskArrival{diag};
  trace.push_back(arrival);

  Event mode_change;
  mode_change.at = 200;
  mode_change.payload = WcetChange{"estimator", 4};
  trace.push_back(mode_change);

  const OnlineRunner runner;
  const OnlineReport report = runner.replay(system, trace);
  std::cout << "--- mission events ---\n" << summarize_online(report);

  std::cout << "\n--- after failover (P2 dark, diagnostics admitted) ---\n"
            << render_gantt(system.schedule());
  validate_or_throw(system.schedule());
  std::cout << "\nfinal schedule valid; " << system.alive_processor_count()
            << " of " << arch.processor_count()
            << " processors alive; total migrations "
            << report.total_migrations << ".\n";
  return report.total_violations == 0 ? 0 : 1;
}
