# Runs CMD with ARGS (space-separated), captures stdout, and fails unless it
# matches the GOLDEN reference file byte for byte.
#
# Usage:
#   cmake -DCMD=<exe> -DARGS="<args>" -DGOLDEN=<file> -P RunAndDiff.cmake
if(NOT CMD OR NOT GOLDEN)
  message(FATAL_ERROR "RunAndDiff.cmake requires -DCMD=... and -DGOLDEN=...")
endif()

separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND ${CMD} ${arg_list}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE stderr_text
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR
    "${CMD} ${ARGS} exited with ${status}\nstderr:\n${stderr_text}")
endif()

if(NOT EXISTS "${GOLDEN}")
  message(FATAL_ERROR "golden file missing: ${GOLDEN}")
endif()
file(READ "${GOLDEN}" expected)

if(NOT actual STREQUAL expected)
  file(WRITE "${CMAKE_BINARY_DIR}/rundiff_actual.txt" "${actual}")
  message(FATAL_ERROR
    "output of `${CMD} ${ARGS}` differs from ${GOLDEN}\n"
    "--- expected ---\n${expected}\n--- actual ---\n${actual}")
endif()
