#!/usr/bin/env bash
# Record the performance trajectory: build the Release bench preset, run
# bench_complexity, bench_online and bench_solvers with JSON output, and
# write BENCH_complexity.json / BENCH_online.json / BENCH_solvers.json at
# the repo root (override the destinations with $1 / $2 / $3). Check the
# results in so the perf history stays non-empty; see README.md,
# "Performance", "Online rebalancing" and "Choosing a solver".
#
# The recorded context must describe a release-built harness: benchmarks
# measure header-inline hot paths compiled into the bench binary, and a
# Debug recording is a meaningless data point in the perf history. The
# benches stamp "library_build_type" from their own build (bench_json.hpp);
# this script refuses to overwrite the checked-in JSONs when a recording
# still says "debug" — e.g. when someone points it at a Debug build tree.
# Optionally set LBMEM_BENCHMARK_SOURCE_DIR to a google-benchmark checkout
# to also build the benchmark library itself in Release (CI does this).
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
complexity_out="${1:-${repo}/BENCH_complexity.json}"
online_out="${2:-${repo}/BENCH_online.json}"
solvers_out="${3:-${repo}/BENCH_solvers.json}"

cd "${repo}"
config_args=()
if [[ -n "${LBMEM_BENCHMARK_SOURCE_DIR:-}" ]]; then
  config_args+=("-DLBMEM_BENCHMARK_SOURCE_DIR=${LBMEM_BENCHMARK_SOURCE_DIR}")
fi
cmake --preset bench "${config_args[@]}"
cmake --build --preset bench -j "$(nproc)" \
  --target bench_complexity bench_online bench_solvers

# Fail loudly if a recording claims a debug-built harness; never leave a
# debug recording at the destination path.
check_release() {
  local json="$1"
  if ! grep -q '"library_build_type": "release"' "${json}"; then
    echo "error: ${json} does not report a release-built benchmark harness" >&2
    grep '"library_build_type"' "${json}" >&2 || true
    rm -f "${json}"
    exit 1
  fi
}

"${repo}/build-bench/bench/bench_complexity" \
  --benchmark_out="${complexity_out}" \
  --benchmark_out_format=json
check_release "${complexity_out}"
echo "wrote ${complexity_out}"

"${repo}/build-bench/bench/bench_online" \
  --benchmark_out="${online_out}" \
  --benchmark_out_format=json
check_release "${online_out}"
echo "wrote ${online_out}"

"${repo}/build-bench/bench/bench_solvers" \
  --benchmark_out="${solvers_out}" \
  --benchmark_out_format=json
check_release "${solvers_out}"
echo "wrote ${solvers_out}"
