#!/usr/bin/env bash
# Record the performance trajectory: build the Release bench preset, run
# bench_complexity, bench_online, bench_solvers, bench_parallel,
# bench_robustness, bench_observability, bench_degraded and
# bench_throughput with JSON output, and write BENCH_complexity.json /
# BENCH_online.json / BENCH_solvers.json / BENCH_parallel.json /
# BENCH_robustness.json / BENCH_observability.json / BENCH_degraded.json /
# BENCH_throughput.json at the repo root (override the destinations with
# $1..$8). Check the results in so the perf history stays non-empty; see
# README.md, "Performance", "Online rebalancing", "Choosing a solver",
# "Parallelism", "Robustness", "Observability" and "Serving".
#
# The recorded context must describe a release-built harness: benchmarks
# measure header-inline hot paths compiled into the bench binary, and a
# Debug recording is a meaningless data point in the perf history. The
# benches stamp "library_build_type" from their own build (bench_json.hpp);
# this script refuses to overwrite the checked-in JSONs when a recording
# still says "debug" — e.g. when someone points it at a Debug build tree.
# Optionally set LBMEM_BENCHMARK_SOURCE_DIR to a google-benchmark checkout
# to also build the benchmark library itself in Release (CI does this).
#
# `bench_record.sh --selftest` exercises the release guard itself against
# synthetic recordings (spacing variants and the debug negative path) and
# exits without building anything; CI runs it so a formatting change in
# bench_json.hpp can never silently disarm the guard.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# Fail loudly if a recording claims a debug-built harness; never leave a
# debug recording at the destination path. Whitespace-tolerant on purpose:
# the stamp is JSON, and "key": "value" spacing is a serializer detail the
# guard must not depend on (a compact writer once turned this grep into a
# false failure).
check_release() {
  local json="$1"
  if ! grep -Eq '"library_build_type"[[:space:]]*:[[:space:]]*"release"' \
      "${json}"; then
    echo "error: ${json} does not report a release-built benchmark harness" >&2
    grep '"library_build_type"' "${json}" >&2 || true
    rm -f "${json}"
    exit 1
  fi
}

if [[ "${1:-}" == "--selftest" ]]; then
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' EXIT
  printf '{"library_build_type": "release"}\n' > "${tmp}/spaced.json"
  printf '{"library_build_type":"release"}\n' > "${tmp}/compact.json"
  printf '{"library_build_type" : "release"}\n' > "${tmp}/padded.json"
  printf '{"library_build_type": "debug"}\n' > "${tmp}/debug.json"
  check_release "${tmp}/spaced.json"
  check_release "${tmp}/compact.json"
  check_release "${tmp}/padded.json"
  # Negative path: a debug recording must fail the guard and be removed
  # (subshell: check_release exits, the selftest carries on).
  if (check_release "${tmp}/debug.json") 2>/dev/null; then
    echo "selftest FAILED: a debug recording passed the release guard" >&2
    exit 1
  fi
  if [[ -e "${tmp}/debug.json" ]]; then
    echo "selftest FAILED: the rejected debug recording was not removed" >&2
    exit 1
  fi
  echo "bench_record.sh selftest passed"
  exit 0
fi

complexity_out="${1:-${repo}/BENCH_complexity.json}"
online_out="${2:-${repo}/BENCH_online.json}"
solvers_out="${3:-${repo}/BENCH_solvers.json}"
parallel_out="${4:-${repo}/BENCH_parallel.json}"
robustness_out="${5:-${repo}/BENCH_robustness.json}"
observability_out="${6:-${repo}/BENCH_observability.json}"
degraded_out="${7:-${repo}/BENCH_degraded.json}"
throughput_out="${8:-${repo}/BENCH_throughput.json}"

cd "${repo}"
config_args=()
if [[ -n "${LBMEM_BENCHMARK_SOURCE_DIR:-}" ]]; then
  config_args+=("-DLBMEM_BENCHMARK_SOURCE_DIR=${LBMEM_BENCHMARK_SOURCE_DIR}")
fi
cmake --preset bench "${config_args[@]}"
cmake --build --preset bench -j "$(nproc)" \
  --target bench_complexity bench_online bench_solvers bench_parallel \
    bench_robustness bench_observability bench_degraded bench_throughput

"${repo}/build-bench/bench/bench_complexity" \
  --benchmark_out="${complexity_out}" \
  --benchmark_out_format=json
check_release "${complexity_out}"
echo "wrote ${complexity_out}"

"${repo}/build-bench/bench/bench_online" \
  --benchmark_out="${online_out}" \
  --benchmark_out_format=json
check_release "${online_out}"
echo "wrote ${online_out}"

"${repo}/build-bench/bench/bench_solvers" \
  --benchmark_out="${solvers_out}" \
  --benchmark_out_format=json
check_release "${solvers_out}"
echo "wrote ${solvers_out}"

"${repo}/build-bench/bench/bench_parallel" \
  --benchmark_out="${parallel_out}" \
  --benchmark_out_format=json
check_release "${parallel_out}"
echo "wrote ${parallel_out}"

"${repo}/build-bench/bench/bench_robustness" \
  --benchmark_out="${robustness_out}" \
  --benchmark_out_format=json
check_release "${robustness_out}"
echo "wrote ${robustness_out}"

"${repo}/build-bench/bench/bench_observability" \
  --benchmark_out="${observability_out}" \
  --benchmark_out_format=json
check_release "${observability_out}"
echo "wrote ${observability_out}"

"${repo}/build-bench/bench/bench_degraded" \
  --benchmark_out="${degraded_out}" \
  --benchmark_out_format=json
check_release "${degraded_out}"
echo "wrote ${degraded_out}"

"${repo}/build-bench/bench/bench_throughput" \
  --benchmark_out="${throughput_out}" \
  --benchmark_out_format=json
check_release "${throughput_out}"
echo "wrote ${throughput_out}"
