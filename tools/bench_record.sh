#!/usr/bin/env bash
# Record the performance trajectory: build the Release bench preset, run
# bench_complexity and bench_online with JSON output, and write
# BENCH_complexity.json / BENCH_online.json at the repo root (override the
# destinations with $1 / $2). Check the results in so the perf history
# stays non-empty; see README.md, "Performance" and "Online rebalancing".
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
complexity_out="${1:-${repo}/BENCH_complexity.json}"
online_out="${2:-${repo}/BENCH_online.json}"

cd "${repo}"
cmake --preset bench
cmake --build --preset bench -j "$(nproc)" --target bench_complexity bench_online

"${repo}/build-bench/bench/bench_complexity" \
  --benchmark_out="${complexity_out}" \
  --benchmark_out_format=json
echo "wrote ${complexity_out}"

"${repo}/build-bench/bench/bench_online" \
  --benchmark_out="${online_out}" \
  --benchmark_out_format=json
echo "wrote ${online_out}"
