#!/usr/bin/env bash
# Record the performance trajectory: build the Release bench preset, run
# bench_complexity with JSON output, and write BENCH_complexity.json at the
# repo root (override the destination with $1). Check the result in so the
# perf history stays non-empty; see README.md, "Performance".
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out="${1:-${repo}/BENCH_complexity.json}"

cd "${repo}"
cmake --preset bench
cmake --build --preset bench -j "$(nproc)" --target bench_complexity

"${repo}/build-bench/bench/bench_complexity" \
  --benchmark_out="${out}" \
  --benchmark_out_format=json

echo "wrote ${out}"
