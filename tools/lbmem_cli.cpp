/// \file lbmem_cli.cpp
/// \brief Command-line front end to the library.
///
/// Subcommands:
///   example                         run the paper's worked example
///   balance  [workload flags]       generate, schedule, balance, report
///   simulate [workload flags]       balance + discrete-event execution
///   bus      [workload flags]       balance + single-medium analysis
///   export   [workload flags]       emit DOT/JSON artifacts
///   replay   [workload flags]       online: replay a random event trace
///
/// Workload flags (all optional):
///   --tasks=N --procs=M --seed=S --comm=C --period-levels=L
///   --edge-prob=P --capacity=MEM --policy=lex|formula|literal|gain|memory
///   --placement=cluster|minstart --hyperperiods=K --out=PREFIX
///   --trace=on|off (off = pruned hot path; summary shows prune counters)
///
/// Replay flags (replay only):
///   --events=N --event-seed=S --migration-penalty=P --mode=incremental|full
///
/// Exit code 0 on success, 1 on bad usage, 2 when the workload is
/// unschedulable (for replay: when any post-event schedule is invalid).

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "lbmem/gen/event_trace.hpp"
#include "lbmem/gen/paper_example.hpp"
#include "lbmem/gen/random_graph.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/online/runner.hpp"
#include "lbmem/report/export.hpp"
#include "lbmem/report/gantt.hpp"
#include "lbmem/report/online.hpp"
#include "lbmem/report/summary.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/sim/bus.hpp"
#include "lbmem/sim/engine.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/validate/validator.hpp"

namespace {

using namespace lbmem;

struct CliOptions {
  int tasks = 40;
  int procs = 4;
  std::uint64_t seed = 1;
  Time comm = 2;
  int period_levels = 3;
  double edge_prob = 0.25;
  Mem capacity = kUnlimitedMemory;
  CostPolicy policy = CostPolicy::Lexicographic;
  PlacementPolicy placement = PlacementPolicy::PeriodCluster;
  int hyperperiods = 2;
  std::string out_prefix;
  // replay subcommand:
  int events = 16;
  std::uint64_t event_seed = 1;
  Time migration_penalty = 0;
  bool incremental = true;
  /// --trace=on (default) records the full per-block decision trace, which
  /// evaluates every destination exhaustively; --trace=off runs the pruned
  /// production path (bound-and-prune selection) — decisions are identical,
  /// and the summary then reports the pruning counters.
  bool trace = true;
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: lbmem_cli <example|balance|simulate|bus|export|replay> "
      "[flags]\n"
      "flags: --tasks=N --procs=M --seed=S --comm=C --period-levels=L\n"
      "       --edge-prob=P --capacity=MEM\n"
      "       --policy=lex|formula|literal|gain|memory\n"
      "       --placement=cluster|minstart --hyperperiods=K --out=PREFIX\n"
      "       --trace=on|off (off runs the pruned hot path; the summary\n"
      "       then reports destinations evaluated/skipped by bound)\n"
      "replay flags: --events=N --event-seed=S --migration-penalty=P\n"
      "       --mode=incremental|full\n";
  std::exit(1);
}

CliOptions parse_flags(int argc, char** argv, int first) {
  CliOptions options;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      usage("malformed flag: " + arg);
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    try {
      if (key == "tasks") {
        options.tasks = std::stoi(value);
      } else if (key == "procs") {
        options.procs = std::stoi(value);
      } else if (key == "seed") {
        options.seed = std::stoull(value);
      } else if (key == "comm") {
        options.comm = std::stoll(value);
      } else if (key == "period-levels") {
        options.period_levels = std::stoi(value);
      } else if (key == "edge-prob") {
        options.edge_prob = std::stod(value);
      } else if (key == "capacity") {
        options.capacity = std::stoll(value);
      } else if (key == "hyperperiods") {
        options.hyperperiods = std::stoi(value);
      } else if (key == "events") {
        options.events = std::stoi(value);
      } else if (key == "event-seed") {
        options.event_seed = std::stoull(value);
      } else if (key == "migration-penalty") {
        options.migration_penalty = std::stoll(value);
      } else if (key == "mode") {
        if (value == "incremental") options.incremental = true;
        else if (value == "full") options.incremental = false;
        else usage("unknown mode: " + value);
      } else if (key == "trace") {
        if (value == "on") options.trace = true;
        else if (value == "off") options.trace = false;
        else usage("unknown trace mode: " + value);
      } else if (key == "out") {
        options.out_prefix = value;
      } else if (key == "policy") {
        if (value == "lex") options.policy = CostPolicy::Lexicographic;
        else if (value == "formula") options.policy = CostPolicy::PaperFormula;
        else if (value == "literal") options.policy = CostPolicy::PaperLiteral;
        else if (value == "gain") options.policy = CostPolicy::GainOnly;
        else if (value == "memory") options.policy = CostPolicy::MemoryOnly;
        else usage("unknown policy: " + value);
      } else if (key == "placement") {
        if (value == "cluster") {
          options.placement = PlacementPolicy::PeriodCluster;
        } else if (value == "minstart") {
          options.placement = PlacementPolicy::MinStartTime;
        } else {
          usage("unknown placement: " + value);
        }
      } else {
        usage("unknown flag: --" + key);
      }
    } catch (const std::exception&) {
      usage("bad value for --" + key + ": " + value);
    }
  }
  return options;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  out << content;
  std::cout << "wrote " << path << "\n";
}

struct Prepared {
  // Heap-allocated: schedules hold a pointer to the graph, so its address
  // must survive the moves below.
  std::unique_ptr<TaskGraph> graph;
  Schedule before;
  BalanceResult result;
};

Prepared prepare(const CliOptions& options) {
  RandomGraphParams params;
  params.tasks = options.tasks;
  params.period_levels = options.period_levels;
  params.edge_probability = options.edge_prob;
  params.intended_processors = options.procs;
  auto graph =
      std::make_unique<TaskGraph>(random_task_graph(params, options.seed));

  SchedulerOptions sched_options;
  sched_options.policy = options.placement;
  Schedule before = build_initial_schedule(
      *graph, Architecture(options.procs, options.capacity),
      CommModel::flat(options.comm), sched_options);

  BalanceOptions balance_options;
  balance_options.policy = options.policy;
  balance_options.enforce_memory_capacity =
      options.capacity != kUnlimitedMemory;
  balance_options.record_trace = options.trace;
  BalanceResult result = LoadBalancer(balance_options).balance(before);
  return Prepared{std::move(graph), std::move(before), std::move(result)};
}

int cmd_example() {
  const TaskGraph graph = paper_example_graph();
  const Schedule before = paper_example_schedule(graph);
  BalanceOptions options;
  options.record_trace = true;
  const BalanceResult result = LoadBalancer(options).balance(before);
  std::cout << "--- before (paper Fig. 3) ---\n" << render_gantt(before)
            << "\n--- after (paper Fig. 4) ---\n"
            << render_gantt(result.schedule) << "\n"
            << summarize(result.stats);
  return 0;
}

int cmd_balance(const CliOptions& options) {
  const Prepared p = prepare(options);
  std::cout << "--- initial ---\n" << render_gantt(p.before)
            << "\n--- balanced (" << to_string(options.policy) << ") ---\n"
            << render_gantt(p.result.schedule) << "\n"
            << summarize(p.result.stats);
  validate_or_throw(p.result.schedule);
  return 0;
}

int cmd_simulate(const CliOptions& options) {
  const Prepared p = prepare(options);
  std::cout << summarize(p.result.stats) << "\n";
  const SimMetrics metrics =
      simulate(p.result.schedule, SimOptions{options.hyperperiods, true});
  std::cout << "simulated " << options.hyperperiods << " hyper-periods ("
            << metrics.span << " ticks): " << metrics.violations
            << " violations\n";
  for (std::size_t i = 0; i < metrics.procs.size(); ++i) {
    const ProcMetrics& pm = metrics.procs[i];
    std::cout << "  P" << i + 1 << ": idle "
              << static_cast<int>(100 * pm.idle_fraction) << "%, static mem "
              << pm.static_memory << ", peak buffers " << pm.peak_buffer
              << "\n";
  }
  return metrics.violations == 0 ? 0 : 2;
}

int cmd_bus(const CliOptions& options) {
  const Prepared p = prepare(options);
  const BusReport before = analyze_single_bus(p.before);
  const BusReport after = analyze_single_bus(p.result.schedule);
  auto show = [](const char* label, const BusReport& report) {
    std::cout << label << ": " << report.jobs.size() << " transfers, busy "
              << report.bus_busy << ", utilization "
              << report.utilization << " — " << report.detail << "\n";
  };
  show("before", before);
  show("after ", after);
  return 0;
}

int cmd_replay(const CliOptions& options) {
  Prepared p = prepare(options);
  // Same contract as `balance`: an invalid starting point (e.g. the
  // balancer fell back on a workload that busts a finite capacity) is
  // "unschedulable", not a baseline to replay events against.
  validate_or_throw(p.result.schedule);
  std::cout << "--- balanced starting point ---\n"
            << summarize(p.result.stats) << "\n";

  EventTraceParams trace_params;
  trace_params.events = options.events;
  const EventTrace trace =
      random_event_trace(*p.graph, p.result.schedule.architecture(),
                         trace_params, options.event_seed);

  RebalancerOptions online_options;
  online_options.balance.policy = options.policy;
  online_options.balance.enforce_memory_capacity =
      options.capacity != kUnlimitedMemory;
  online_options.balance.migration_penalty = options.migration_penalty;
  online_options.incremental = options.incremental;
  Rebalancer system(std::move(p.graph), std::move(p.result.schedule),
                    online_options);

  const OnlineRunner runner;
  const OnlineReport report = runner.replay(system, trace);
  std::cout << "--- replay (" << options.events << " events, seed "
            << options.event_seed << ", "
            << (options.incremental ? "incremental" : "full")
            << " mode) ---\n"
            << summarize_online(report);

  if (!options.out_prefix.empty()) {
    write_file(options.out_prefix + "_online.json",
               online_report_to_json(report));
  }
  return report.total_violations == 0 ? 0 : 2;
}

int cmd_export(const CliOptions& options) {
  const Prepared p = prepare(options);
  const std::string prefix =
      options.out_prefix.empty() ? "lbmem" : options.out_prefix;
  write_file(prefix + "_graph.dot", graph_to_dot(*p.graph));
  write_file(prefix + "_before.dot", schedule_to_dot(p.before));
  write_file(prefix + "_after.dot", schedule_to_dot(p.result.schedule));
  write_file(prefix + "_before.json", schedule_to_json(p.before));
  write_file(prefix + "_after.json", schedule_to_json(p.result.schedule));
  write_file(prefix + "_stats.json", stats_to_json(p.result.stats));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    if (command == "example") return cmd_example();
    const CliOptions options = parse_flags(argc, argv, 2);
    if (command == "balance") return cmd_balance(options);
    if (command == "simulate") return cmd_simulate(options);
    if (command == "bus") return cmd_bus(options);
    if (command == "export") return cmd_export(options);
    if (command == "replay") return cmd_replay(options);
    usage("unknown command: " + command);
  } catch (const ScheduleError& e) {
    std::cerr << "unschedulable: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
