/// \file lbmem_cli.cpp
/// \brief Command-line front end to the library, built on the solver
/// facade (lbmem/api/).
///
/// Subcommands, flags, and the per-subcommand flag vocabulary are defined
/// once in kCommands/kFlags below; the usage text is generated from those
/// tables, so `lbmem_cli --help` (or `<command> --help`) is always the
/// authoritative reference and this comment never drifts from it.
///
/// Exit code 0 on success (including --help), 1 on bad usage or an
/// unknown solver name, 2 when the workload is unschedulable (for
/// replay: when any post-event schedule is invalid; for compare: when no
/// schedulable instance could be generated; for simulate: when the
/// unperturbed execution reports violations — under --perturb violations
/// are the measurement, and exit 2 instead means at least one injected
/// processor failure could not be repaired; for serve: when the final
/// post-trace schedule is invalid).

#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lbmem/api/problem.hpp"
#include "lbmem/api/registry.hpp"
#include "lbmem/api/scenario.hpp"
#include "lbmem/api/solvers.hpp"
#include "lbmem/gen/event_trace.hpp"
#include "lbmem/gen/paper_example.hpp"
#include "lbmem/obs/metrics.hpp"
#include "lbmem/obs/trace.hpp"
#include "lbmem/online/runner.hpp"
#include "lbmem/report/export.hpp"
#include "lbmem/report/gantt.hpp"
#include "lbmem/report/online.hpp"
#include "lbmem/report/sim.hpp"
#include "lbmem/report/solve.hpp"
#include "lbmem/report/stats.hpp"
#include "lbmem/report/stream.hpp"
#include "lbmem/report/summary.hpp"
#include "lbmem/sim/bus.hpp"
#include "lbmem/sim/engine.hpp"
#include "lbmem/sim/robustness.hpp"
#include "lbmem/stream/service.hpp"
#include "lbmem/stream/trace_io.hpp"
#include "lbmem/util/build_info.hpp"
#include "lbmem/util/check.hpp"

namespace {

using namespace lbmem;

// ---- the one table usage() and the parser are generated from --------------

enum : unsigned {
  kExample = 1u << 0,
  kBalance = 1u << 1,
  kSimulate = 1u << 2,
  kBus = 1u << 3,
  kExport = 1u << 4,
  kReplay = 1u << 5,
  kCompare = 1u << 6,
  kServe = 1u << 7,
  kAllCommands = (1u << 8) - 1,
};

/// Flags shared by every workload-generating subcommand.
constexpr unsigned kWorkload =
    kBalance | kSimulate | kBus | kExport | kReplay | kCompare | kServe;
/// Subcommands whose balance stage is the configured heuristic.
constexpr unsigned kHeuristicDriven =
    kBalance | kSimulate | kBus | kExport | kReplay | kServe;
/// Subcommands carrying the observability flag family (--metrics-out,
/// --trace-spans, --timing; DESIGN.md F25/F26).
constexpr unsigned kObserved =
    kBalance | kSimulate | kReplay | kCompare | kServe;

struct CommandSpec {
  const char* name;
  unsigned bit;
  const char* help;
};

constexpr CommandSpec kCommands[] = {
    {"example", kExample, "run the paper's worked example"},
    {"balance", kBalance,
     "generate, schedule, solve, report (--algo picks any solver)"},
    {"compare", kCompare,
     "race registered solvers on a generated workload suite"},
    {"simulate", kSimulate, "balance + discrete-event execution"},
    {"bus", kBus, "balance + single-medium analysis"},
    {"export", kExport, "emit DOT/JSON artifacts"},
    {"replay", kReplay, "online: replay a random event trace"},
    {"serve", kServe,
     "online: stream a timestamped event trace through the batching "
     "repair-queue service"},
};

struct FlagSpec {
  const char* name;
  const char* value;   ///< value hint shown as --name=<value>
  const char* help;
  unsigned commands;   ///< subcommands that accept the flag
};

constexpr FlagSpec kFlags[] = {
    {"tasks", "N", "tasks in the generated workload", kWorkload},
    {"procs", "M", "processors", kWorkload},
    {"seed", "S", "workload seed (compare: base seed of the suite)",
     kWorkload},
    {"comm", "C", "flat communication time", kWorkload},
    {"period-levels", "L", "distinct periods (base * 2^0 .. 2^(L-1))",
     kWorkload},
    {"edge-prob", "P", "dependence probability", kWorkload},
    {"capacity", "MEM", "per-processor memory capacity (enforced when set)",
     kWorkload},
    {"placement", "cluster|minstart", "initial placement policy", kWorkload},
    {"policy", "lex|formula|literal|gain|memory", "heuristic cost policy",
     kHeuristicDriven},
    {"algo", "NAME|all",
     "registered solver(s): balance/simulate take one name, compare a "
     "comma list or 'all' (the default there)",
     kBalance | kSimulate | kCompare},
    {"trace", "on|off",
     "record the full decision trace; off runs the pruned hot path and the "
     "summary reports destinations evaluated/skipped by bound",
     kHeuristicDriven},
    {"threads", "N",
     "worker threads, 0 = hardware concurrency; compare parallelizes the "
     "(instance x solver) sweep, balance and serve the destination scan "
     "(balance implies --trace=off) — results are identical for every N",
     kBalance | kCompare | kServe},
    {"hyperperiods", "K", "hyper-periods to simulate", kSimulate},
    {"local-buffers", "on|off",
     "count same-processor producer->consumer data in buffer occupancy",
     kSimulate},
    {"perturb", "on|off",
     "seeded perturbed execution (bare --perturb = on): simulate runs the "
     "robustness harness, compare adds robustness columns",
     kSimulate | kCompare},
    {"replications", "K",
     "perturbed replications (per instance x solver cell for compare)",
     kSimulate | kCompare},
    {"jitter", "F", "max multiplicative wcet overrun (default 0.25)",
     kSimulate | kCompare},
    {"comm-jitter", "F",
     "max multiplicative message-delay inflation (default 0.5)",
     kSimulate | kCompare},
    {"stall-prob", "F", "per-instance transient-stall probability",
     kSimulate | kCompare},
    {"stall-ticks", "T", "transient stall length in ticks",
     kSimulate | kCompare},
    {"bus-fifo", "on|off",
     "serialize remote transfers through one FIFO bus (default on)",
     kSimulate | kCompare},
    {"perturb-seed", "S", "perturbation noise seed", kSimulate | kCompare},
    {"burst-p", "F",
     "Gilbert-Elliott storm entry probability per hyper-period (correlated "
     "fault bursts; applies to the wcet/comm/stall channels)",
     kSimulate | kCompare},
    {"burst-q", "F", "storm exit probability per hyper-period (default 0.5)",
     kSimulate | kCompare},
    {"burst-factor", "F",
     "noise-intensity multiplier while a channel is in its storm state "
     "(default 4)",
     kSimulate | kCompare},
    {"fail-proc", "P[,P...]",
     "inject permanent failures of these processors (1-based, comma list); "
     "the online engine repairs the schedule mid-run",
     kSimulate},
    {"fail-at", "T[,T...]",
     "failure ticks, one per --fail-proc entry (default: half a "
     "hyper-period in)",
     kSimulate},
    {"degraded", "on|off",
     "degraded-mode repair ladder (bare --degraded = on): widened retries, "
     "full re-place, solver resolve, load shedding instead of hard reject; "
     "serve arms it automatically past --overload even when off",
     kSimulate | kReplay | kServe},
    {"staleness", "K",
     "freeze the repair path's per-processor load view for K events "
     "(stale-information mode; 0 = live)",
     kReplay},
    {"adaptive", "on|off",
     "miss-rate-driven solver selection (bare --adaptive = on): adds the "
     "virtual 'adaptive' row that per instance mirrors the candidate with "
     "the best pooled perturbed miss rate so far; needs --perturb",
     kCompare},
    {"out", "PREFIX", "write JSON/DOT artifacts under this path prefix",
     kExport | kReplay | kCompare | kSimulate | kServe},
    {"count", "K", "workload instances in the comparison suite", kCompare},
    {"timing", "on|off",
     "include wall-clock columns/fields in the output (off: byte-stable "
     "across runs and thread counts)",
     kObserved},
    {"metrics-out", "FILE",
     "write the run's metrics-registry snapshot as JSON; wall-clock "
     "figures sit under a separate 'timing' subtree that --timing=off "
     "strips, leaving the file byte-identical across thread counts",
     kObserved},
    {"trace-spans", "FILE",
     "record scoped spans and write Chrome trace-event JSON (open in "
     "chrome://tracing or ui.perfetto.dev)",
     kObserved},
    {"events", "N", "events in the random trace", kReplay | kServe},
    {"event-seed", "S", "event-trace seed", kReplay | kServe},
    {"migration-penalty", "P", "price of moving a block off its processor",
     kReplay | kServe},
    {"mode", "incremental|full", "balance-stage strategy", kReplay},
    {"resolver", "NAME",
     "full-resolve each event through this registered solver (implies "
     "--mode=full)",
     kReplay},
    {"arrivals", "uniform|poisson|bursty",
     "inter-arrival model stamping the generated trace's event ticks",
     kServe},
    {"mean-gap", "F", "mean inter-arrival gap in ticks (--arrivals=poisson)",
     kServe},
    {"cycle-ticks", "T", "width of one admission window in virtual ticks",
     kServe},
    {"queue-cap", "N",
     "pending-queue bound; overflow sheds the incoming event (failures "
     "exempt), 0 = unbounded",
     kServe},
    {"batch-max", "N", "most events drained per cycle", kServe},
    {"budget-us", "U",
     "per-cycle repair budget in microseconds (0 = unbounded; min one "
     "event per cycle, queued failures always flush)",
     kServe},
    {"coalesce", "on|off",
     "collapse the pending queue (last-write-wins, annihilation, fold) "
     "before each drain (default on)",
     kServe},
    {"overload", "N",
     "backlog high-water mark arming the degraded repair ladder "
     "(disarmed at half the mark; 0 = never)",
     kServe},
    {"stats-every", "K", "print a stats line every K cycles (0 = off)",
     kServe},
    {"trace-in", "FILE",
     "serve this trace file instead of generating one ('-' = stdin)",
     kServe},
    {"emit-trace", "FILE",
     "write the generated trace ('-' = stdout) and exit without serving",
     kServe},
};

std::string command_list(unsigned mask) {
  std::string out;
  for (const CommandSpec& cmd : kCommands) {
    if (!(cmd.bit & mask)) continue;
    if (!out.empty()) out += " ";
    out += cmd.name;
  }
  return out;
}

/// Usage text for the subcommands in \p mask (kAllCommands = the full
/// reference). Generated from kCommands/kFlags — the single source of
/// truth for the flag vocabulary.
std::string usage_text(unsigned mask) {
  std::ostringstream out;
  out << "usage: lbmem_cli <" << [] {
    std::string names;
    for (const CommandSpec& cmd : kCommands) {
      if (!names.empty()) names += "|";
      names += cmd.name;
    }
    return names;
  }() << "> [--flag=value ...]\n";
  out << "\ncommands:\n";
  for (const CommandSpec& cmd : kCommands) {
    if (!(cmd.bit & mask)) continue;
    const std::size_t width = std::string(cmd.name).size();
    out << "  " << cmd.name << std::string(width < 10 ? 10 - width : 1, ' ')
        << cmd.help << "\n";
  }
  bool any_flag = false;
  for (const FlagSpec& flag : kFlags) any_flag |= (flag.commands & mask) != 0;
  if (!any_flag) {
    out << "\n(no flags beyond --help)\n";
    return out.str();
  }
  out << "\nflags (the commands each flag applies to in brackets):\n";
  for (const FlagSpec& flag : kFlags) {
    if (!(flag.commands & mask)) continue;
    std::string head = std::string("  --") + flag.name + "=" + flag.value;
    if (head.size() < 30) head += std::string(30 - head.size(), ' ');
    out << head << " " << flag.help << "  [" << command_list(flag.commands)
        << "]\n";
  }
  out << "\n--help/-h (anywhere) prints this text and exits 0.\n";
  return out.str();
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << usage_text(kAllCommands);
  std::exit(1);
}

[[noreturn]] void help(unsigned mask) {
  std::cout << usage_text(mask);
  std::exit(0);
}

const CommandSpec* find_command(const std::string& name) {
  for (const CommandSpec& cmd : kCommands) {
    if (name == cmd.name) return &cmd;
  }
  return nullptr;
}

const FlagSpec* find_flag(const std::string& name) {
  for (const FlagSpec& flag : kFlags) {
    if (name == flag.name) return &flag;
  }
  return nullptr;
}

// ---- options --------------------------------------------------------------

struct CliOptions {
  int tasks = 40;
  int procs = 4;
  std::uint64_t seed = 1;
  Time comm = 2;
  int period_levels = 3;
  double edge_prob = 0.25;
  Mem capacity = kUnlimitedMemory;
  CostPolicy policy = CostPolicy::Lexicographic;
  PlacementPolicy placement = PlacementPolicy::PeriodCluster;
  int hyperperiods = 2;
  std::string out_prefix;
  // simulate / perturbed execution:
  bool local_buffers = true;
  bool perturb = false;
  int replications = 3;
  double jitter = 0.25;        ///< wcet overrun fraction when --perturb
  double comm_jitter = 0.5;    ///< message-delay inflation when --perturb
  double stall_prob = 0.0;
  Time stall_ticks = 0;
  bool bus_fifo = true;
  std::uint64_t perturb_seed = 1;
  double burst_p = 0.0;        ///< Gilbert-Elliott storm entry probability
  double burst_q = 0.5;        ///< storm exit probability
  double burst_factor = 4.0;   ///< storm noise multiplier
  std::vector<int> fail_procs;  ///< 1-based; empty = no injected failure
  std::vector<Time> fail_ats;   ///< one per fail_procs entry (or defaulted)
  // balance / compare:
  std::string algo;    ///< empty = the heuristic under --policy
  int count = 1;       ///< compare suite size
  bool timing = true;  ///< wall-clock columns/fields in reports
  // observability:
  std::string metrics_out;  ///< --metrics-out=FILE (empty = off)
  std::string trace_spans;  ///< --trace-spans=FILE (empty = off)
  // replay / serve:
  int events = 16;
  std::uint64_t event_seed = 1;
  Time migration_penalty = 0;
  bool incremental = true;
  std::string resolver;
  // serve (streaming service):
  ArrivalModel arrivals = ArrivalModel::UniformGap;
  double mean_gap = 16.0;
  Time cycle_ticks = 64;
  int queue_cap = 4096;
  int batch_max = 256;
  std::int64_t budget_us = 0;
  bool coalesce = true;
  int overload = 0;
  std::int64_t stats_every = 0;
  std::string trace_in;    ///< --trace-in=FILE|- (empty = generate)
  std::string emit_trace;  ///< --emit-trace=FILE|- (write trace, exit)
  /// --degraded: escalate rejected repairs through the ladder (F28).
  bool degraded = false;
  /// --staleness=K: frozen load view for the repair path (F29).
  int staleness = 0;
  /// --adaptive: miss-rate-driven compare row (F30).
  bool adaptive = false;
  /// --trace=on (default) records the full per-block decision trace, which
  /// evaluates every destination exhaustively; --trace=off runs the pruned
  /// production path (bound-and-prune selection) — decisions are identical.
  bool trace = true;
  /// --threads=N for compare (sweep-level) and balance (balancer-level);
  /// 0 resolves to the hardware concurrency.
  int threads = 1;
  // set-tracking for cross-flag validation:
  bool policy_set = false;
  bool trace_set = false;
  bool mode_set = false;
  bool penalty_set = false;
  bool threads_set = false;
  bool perturb_knob_set = false;  ///< any perturbation knob besides --perturb
  bool fail_proc_set = false;
  bool fail_at_set = false;
  bool trace_gen_set = false;  ///< any trace-generation knob (serve)
  bool mean_gap_set = false;
};

CliOptions parse_flags(const CommandSpec& cmd, int argc, char** argv,
                       int first) {
  CliOptions options;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") help(cmd.bit);
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 ||
        (eq == std::string::npos && arg != "--perturb" &&
         arg != "--degraded" && arg != "--adaptive")) {
      usage("malformed flag: " + arg);
    }
    // `--perturb`, `--degraded` and `--adaptive` are usable bare
    // (== --flag=on): they are mode switches, and "run it perturbed /
    // degraded / adaptive" should not need a value.
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    const std::string value =
        eq == std::string::npos ? "on" : arg.substr(eq + 1);
    const FlagSpec* spec = find_flag(key);
    if (spec == nullptr) usage("unknown flag: --" + key);
    if (!(spec->commands & cmd.bit)) {
      usage("flag --" + key + " does not apply to '" + cmd.name +
            "' (applies to: " + command_list(spec->commands) + ")");
    }
    try {
      if (key == "tasks") {
        options.tasks = std::stoi(value);
      } else if (key == "procs") {
        options.procs = std::stoi(value);
      } else if (key == "seed") {
        options.seed = std::stoull(value);
      } else if (key == "comm") {
        options.comm = std::stoll(value);
      } else if (key == "period-levels") {
        options.period_levels = std::stoi(value);
      } else if (key == "edge-prob") {
        options.edge_prob = std::stod(value);
      } else if (key == "capacity") {
        options.capacity = std::stoll(value);
      } else if (key == "hyperperiods") {
        options.hyperperiods = std::stoi(value);
      } else if (key == "local-buffers") {
        if (value == "on") options.local_buffers = true;
        else if (value == "off") options.local_buffers = false;
        else usage("unknown local-buffers mode: " + value);
      } else if (key == "perturb") {
        if (value == "on") options.perturb = true;
        else if (value == "off") options.perturb = false;
        else usage("unknown perturb mode: " + value);
      } else if (key == "replications") {
        options.perturb_knob_set = true;
        options.replications = std::stoi(value);
        if (options.replications < 1) {
          usage("--replications takes a count >= 1");
        }
      } else if (key == "jitter") {
        options.perturb_knob_set = true;
        options.jitter = std::stod(value);
        if (options.jitter < 0) usage("--jitter takes a fraction >= 0");
      } else if (key == "comm-jitter") {
        options.perturb_knob_set = true;
        options.comm_jitter = std::stod(value);
        if (options.comm_jitter < 0) {
          usage("--comm-jitter takes a fraction >= 0");
        }
      } else if (key == "stall-prob") {
        options.perturb_knob_set = true;
        options.stall_prob = std::stod(value);
        if (options.stall_prob < 0 || options.stall_prob > 1) {
          usage("--stall-prob takes a probability in [0, 1]");
        }
      } else if (key == "stall-ticks") {
        options.perturb_knob_set = true;
        options.stall_ticks = std::stoll(value);
        if (options.stall_ticks < 0) usage("--stall-ticks takes ticks >= 0");
      } else if (key == "bus-fifo") {
        options.perturb_knob_set = true;
        if (value == "on") options.bus_fifo = true;
        else if (value == "off") options.bus_fifo = false;
        else usage("unknown bus-fifo mode: " + value);
      } else if (key == "perturb-seed") {
        options.perturb_knob_set = true;
        options.perturb_seed = std::stoull(value);
      } else if (key == "burst-p") {
        options.perturb_knob_set = true;
        options.burst_p = std::stod(value);
        if (options.burst_p < 0 || options.burst_p > 1) {
          usage("--burst-p takes a probability in [0, 1]");
        }
      } else if (key == "burst-q") {
        options.perturb_knob_set = true;
        options.burst_q = std::stod(value);
        if (options.burst_q <= 0 || options.burst_q > 1) {
          usage("--burst-q takes a probability in (0, 1]");
        }
      } else if (key == "burst-factor") {
        options.perturb_knob_set = true;
        options.burst_factor = std::stod(value);
        if (options.burst_factor <= 0) {
          usage("--burst-factor takes a multiplier > 0");
        }
      } else if (key == "fail-proc") {
        options.fail_proc_set = true;
        std::string item;
        std::istringstream list(value);
        while (std::getline(list, item, ',')) {
          if (!item.empty()) options.fail_procs.push_back(std::stoi(item));
        }
        if (options.fail_procs.empty()) {
          usage("--fail-proc takes a comma list of processors");
        }
      } else if (key == "fail-at") {
        options.fail_at_set = true;
        std::string item;
        std::istringstream list(value);
        while (std::getline(list, item, ',')) {
          if (item.empty()) continue;
          const Time at = std::stoll(item);
          if (at < 0) usage("--fail-at takes ticks >= 0");
          options.fail_ats.push_back(at);
        }
      } else if (key == "degraded") {
        if (value == "on") options.degraded = true;
        else if (value == "off") options.degraded = false;
        else usage("unknown degraded mode: " + value);
      } else if (key == "staleness") {
        options.staleness = std::stoi(value);
        if (options.staleness < 0) usage("--staleness takes events >= 0");
      } else if (key == "adaptive") {
        if (value == "on") options.adaptive = true;
        else if (value == "off") options.adaptive = false;
        else usage("unknown adaptive mode: " + value);
      } else if (key == "events") {
        options.trace_gen_set = true;
        options.events = std::stoi(value);
      } else if (key == "event-seed") {
        options.trace_gen_set = true;
        options.event_seed = std::stoull(value);
      } else if (key == "arrivals") {
        options.trace_gen_set = true;
        if (value == "uniform") options.arrivals = ArrivalModel::UniformGap;
        else if (value == "poisson") options.arrivals = ArrivalModel::Poisson;
        else if (value == "bursty") options.arrivals = ArrivalModel::Bursty;
        else usage("unknown arrivals model: " + value);
      } else if (key == "mean-gap") {
        options.trace_gen_set = true;
        options.mean_gap_set = true;
        options.mean_gap = std::stod(value);
        if (options.mean_gap <= 0) usage("--mean-gap takes ticks > 0");
      } else if (key == "cycle-ticks") {
        options.cycle_ticks = std::stoll(value);
        if (options.cycle_ticks < 1) usage("--cycle-ticks takes ticks >= 1");
      } else if (key == "queue-cap") {
        options.queue_cap = std::stoi(value);
        if (options.queue_cap < 0) {
          usage("--queue-cap takes a bound >= 1, or 0 for unbounded");
        }
      } else if (key == "batch-max") {
        options.batch_max = std::stoi(value);
        if (options.batch_max < 1) usage("--batch-max takes a count >= 1");
      } else if (key == "budget-us") {
        options.budget_us = std::stoll(value);
        if (options.budget_us < 0) {
          usage("--budget-us takes microseconds >= 0");
        }
      } else if (key == "coalesce") {
        if (value == "on") options.coalesce = true;
        else if (value == "off") options.coalesce = false;
        else usage("unknown coalesce mode: " + value);
      } else if (key == "overload") {
        options.overload = std::stoi(value);
        if (options.overload < 0) usage("--overload takes a backlog >= 0");
      } else if (key == "stats-every") {
        options.stats_every = std::stoll(value);
        if (options.stats_every < 0) {
          usage("--stats-every takes cycles >= 0");
        }
      } else if (key == "trace-in") {
        if (value.empty()) usage("--trace-in takes a file path or '-'");
        options.trace_in = value;
      } else if (key == "emit-trace") {
        if (value.empty()) usage("--emit-trace takes a file path or '-'");
        options.emit_trace = value;
      } else if (key == "migration-penalty") {
        options.penalty_set = true;
        options.migration_penalty = std::stoll(value);
      } else if (key == "count") {
        options.count = std::stoi(value);
      } else if (key == "threads") {
        options.threads_set = true;
        options.threads = std::stoi(value);
        if (options.threads < 0) {
          usage("--threads takes a count >= 1, or 0 for the hardware "
                "concurrency");
        }
      } else if (key == "algo") {
        options.algo = value;
      } else if (key == "resolver") {
        options.resolver = value;
      } else if (key == "mode") {
        options.mode_set = true;
        if (value == "incremental") options.incremental = true;
        else if (value == "full") options.incremental = false;
        else usage("unknown mode: " + value);
      } else if (key == "trace") {
        options.trace_set = true;
        if (value == "on") options.trace = true;
        else if (value == "off") options.trace = false;
        else usage("unknown trace mode: " + value);
      } else if (key == "timing") {
        if (value == "on") options.timing = true;
        else if (value == "off") options.timing = false;
        else usage("unknown timing mode: " + value);
      } else if (key == "metrics-out") {
        if (value.empty()) usage("--metrics-out takes a file path");
        options.metrics_out = value;
      } else if (key == "trace-spans") {
        if (value.empty()) usage("--trace-spans takes a file path");
        options.trace_spans = value;
      } else if (key == "out") {
        options.out_prefix = value;
      } else if (key == "policy") {
        options.policy_set = true;
        if (value == "lex") options.policy = CostPolicy::Lexicographic;
        else if (value == "formula") options.policy = CostPolicy::PaperFormula;
        else if (value == "literal") options.policy = CostPolicy::PaperLiteral;
        else if (value == "gain") options.policy = CostPolicy::GainOnly;
        else if (value == "memory") options.policy = CostPolicy::MemoryOnly;
        else usage("unknown policy: " + value);
      } else if (key == "placement") {
        if (value == "cluster") {
          options.placement = PlacementPolicy::PeriodCluster;
        } else if (value == "minstart") {
          options.placement = PlacementPolicy::MinStartTime;
        } else {
          usage("unknown placement: " + value);
        }
      } else {
        usage("unknown flag: --" + key);
      }
    } catch (const std::invalid_argument&) {
      usage("bad value for --" + key + ": " + value);
    } catch (const std::out_of_range&) {
      usage("bad value for --" + key + ": " + value);
    }
  }

  // Cross-flag validation (per subcommand).
  if ((cmd.bit == kBalance || cmd.bit == kSimulate) && !options.algo.empty()) {
    if (options.algo == "all") {
      usage(std::string("--algo=all is only valid for 'compare'; ") +
            cmd.name + " takes one name");
    }
    if (options.policy_set) {
      usage("--policy configures the default heuristic run; with --algo, "
            "name a heuristic-<policy> solver instead");
    }
    if (options.trace_set) {
      usage("--trace applies to the heuristic path only, not to --algo runs");
    }
    if (options.threads_set) {
      usage("--threads configures the heuristic's destination scan; --algo "
            "runs use the solver's registered configuration");
    }
  }
  // Perturbation knobs only mean something under --perturb: a silent
  // no-op --jitter would read as "I measured robustness" when nothing
  // was perturbed.
  if ((options.perturb_knob_set || options.fail_proc_set) &&
      !options.perturb) {
    usage("perturbation knobs (--replications/--jitter/--comm-jitter/"
          "--stall-prob/--stall-ticks/--bus-fifo/--perturb-seed/"
          "--fail-proc) configure the perturbed executor; add --perturb");
  }
  if (options.fail_at_set && !options.fail_proc_set) {
    usage("--fail-at sets when the failures strike; name the victims with "
          "--fail-proc");
  }
  if (options.fail_at_set &&
      options.fail_ats.size() != options.fail_procs.size()) {
    usage("--fail-at needs one tick per --fail-proc entry (" +
          std::to_string(options.fail_procs.size()) + " given)");
  }
  for (const int proc : options.fail_procs) {
    if (proc < 1 || proc > options.procs) {
      usage("--fail-proc is 1-based and must name one of the " +
            std::to_string(options.procs) + " processors");
    }
  }
  if (options.adaptive && !options.perturb) {
    usage("--adaptive ranks candidates by perturbed miss rate; add "
          "--perturb");
  }
  if (cmd.bit == kBalance && options.threads_set && options.trace_set &&
      options.trace) {
    usage("--trace=on records the full decision trace, which evaluates "
          "destinations exhaustively on one thread; drop it or use "
          "--trace=off with --threads");
  }
  if (cmd.bit == kReplay && !options.resolver.empty()) {
    if (options.mode_set && options.incremental) {
      usage("--resolver implies --mode=full");
    }
    // The resolver runs with its own registered configuration; the
    // built-in balance stage (and its penalty) is bypassed entirely.
    if (options.penalty_set) {
      usage("--migration-penalty configures the built-in balance stage, "
            "which --resolver bypasses");
    }
  }
  if (cmd.bit == kServe) {
    if (!options.trace_in.empty() && options.trace_gen_set) {
      usage("--trace-in serves a recorded trace; the generation knobs "
            "(--events/--event-seed/--arrivals/--mean-gap) do not apply");
    }
    if (!options.trace_in.empty() && !options.emit_trace.empty()) {
      usage("--emit-trace writes the generated trace; it cannot be "
            "combined with --trace-in");
    }
    if (options.mean_gap_set && options.arrivals != ArrivalModel::Poisson) {
      usage("--mean-gap parameterizes --arrivals=poisson");
    }
  }
  return options;
}

// ---- shared helpers -------------------------------------------------------

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  out << content;
  std::cout << "wrote " << path << "\n";
}

/// Per-run observability session (DESIGN.md F25/F26): owns the metrics
/// registry and — under --trace-spans — the installed tracer. Construct
/// before the work, call finish() at each exit: it renders the stats
/// block, writes --metrics-out, uninstalls the tracer and writes the span
/// file. registry() is null when --metrics-out was not asked for, so the
/// commands wire it through unconditionally and the library layers skip
/// the fold.
class ObsSession {
 public:
  explicit ObsSession(const CliOptions& options)
      : metrics_path_(options.metrics_out),
        spans_path_(options.trace_spans),
        include_timing_(options.timing) {
    if (!spans_path_.empty()) {
      tracer_.emplace();
      scope_.emplace(&*tracer_);
    }
  }

  obs::Registry* registry() {
    return metrics_path_.empty() ? nullptr : &registry_;
  }

  void finish() {
    if (!metrics_path_.empty()) {
      const obs::Snapshot snap = registry_.snapshot();
      std::cout << summarize_stats(snap, include_timing_);
      write_file(metrics_path_, metrics_to_json(snap, include_timing_));
      metrics_path_.clear();
    }
    if (!spans_path_.empty()) {
      scope_.reset();  // quiesce recording before serializing
      std::ofstream out(spans_path_);
      if (!out) {
        std::cerr << "cannot write " << spans_path_ << "\n";
        std::exit(1);
      }
      tracer_->write_json(out);
      std::cout << "wrote " << spans_path_ << " (" << tracer_->span_count()
                << " spans";
      if (tracer_->dropped() > 0) {
        std::cout << ", " << tracer_->dropped() << " dropped";
      }
      std::cout << ")\n";
      spans_path_.clear();
    }
  }

 private:
  obs::Registry registry_;
  std::optional<obs::Tracer> tracer_;
  std::optional<obs::TracerScope> scope_;
  std::string metrics_path_;
  std::string spans_path_;
  bool include_timing_ = true;
};

WorkloadSpec make_workload_spec(const CliOptions& options) {
  WorkloadSpec spec;
  spec.graph.tasks = options.tasks;
  spec.graph.period_levels = options.period_levels;
  spec.graph.edge_probability = options.edge_prob;
  spec.graph.intended_processors = options.procs;
  spec.seed = options.seed;
  spec.processors = options.procs;
  spec.comm_cost = options.comm;
  spec.memory_capacity = options.capacity;
  spec.scheduler.policy = options.placement;
  return spec;
}

/// The compare suite is the same workload vocabulary swept over
/// base_seed .. base_seed+count-1: one conversion, so a flag wired into
/// make_workload_spec can never silently not apply to `compare`.
SuiteSpec make_suite_spec(const CliOptions& options) {
  const WorkloadSpec workload = make_workload_spec(options);
  SuiteSpec suite;
  suite.params = workload.graph;
  suite.processors = workload.processors;
  suite.comm_cost = workload.comm_cost;
  suite.memory_capacity = workload.memory_capacity;
  suite.policy = workload.scheduler.policy;
  suite.base_seed = workload.seed;
  suite.count = options.count;
  return suite;
}

/// Perturbation spec from the flag family. \p hyperperiod sizes the
/// default failure tick (half a hyper-period in); pass 0 when no failure
/// can be injected (compare).
PerturbSpec make_perturb(const CliOptions& options, Time hyperperiod) {
  PerturbSpec perturb;
  perturb.seed = options.perturb_seed;
  perturb.wcet_jitter = options.jitter;
  perturb.comm_jitter = options.comm_jitter;
  perturb.stall_prob = options.stall_prob;
  perturb.stall_ticks = options.stall_ticks;
  perturb.bus_fifo = options.bus_fifo;
  if (options.burst_p > 0.0) {
    GilbertElliott chain;
    chain.p = options.burst_p;
    chain.q = options.burst_q;
    chain.factor = options.burst_factor;
    perturb.wcet_burst = chain;
    perturb.comm_burst = chain;
    perturb.stall_burst = chain;
  }
  for (std::size_t i = 0; i < options.fail_procs.size(); ++i) {
    ProcessorFault fault;
    fault.proc = static_cast<ProcId>(options.fail_procs[i] - 1);
    fault.at =
        i < options.fail_ats.size() ? options.fail_ats[i] : hyperperiod / 2;
    perturb.failures.push_back(fault);
  }
  return perturb;
}

BalanceOptions make_balance_options(const CliOptions& options,
                                    obs::Registry* metrics = nullptr) {
  BalanceOptions balance;
  balance.policy = options.policy;
  balance.enforce_memory_capacity = options.capacity != kUnlimitedMemory;
  balance.record_trace = options.trace;
  balance.threads = options.threads;
  balance.metrics = metrics;
  if (options.threads_set && !options.trace_set) {
    // Tracing evaluates every destination exhaustively on one thread;
    // asking for threads without an explicit --trace choice means "run
    // the parallel scan", so the trace default flips off (decisions are
    // identical either way). --trace=on --threads is rejected upstream.
    balance.record_trace = false;
  }
  return balance;
}

/// Generated workload + the heuristic solved through the facade (the
/// balance stage every heuristic-driven subcommand shares).
struct Prepared {
  Problem problem;
  Outcome outcome;
};

Prepared prepare(const CliOptions& options,
                 obs::Registry* metrics = nullptr) {
  Problem problem = Problem::generate(make_workload_spec(options));
  const HeuristicSolver solver(make_balance_options(options, metrics));
  Outcome outcome = solver.solve(problem);
  return Prepared{std::move(problem), std::move(outcome)};
}

/// The facade reports an invalid result (e.g. the balancer fell back on a
/// workload that busts a finite capacity) as an infeasible Outcome; the
/// CLI contract for that is "unschedulable", exit 2.
const Schedule& solved_or_throw(const Outcome& outcome) {
  if (!outcome.feasible()) throw ScheduleError(outcome.detail);
  return *outcome.schedule;
}

// ---- subcommands ----------------------------------------------------------

int cmd_example() {
  const TaskGraph graph = paper_example_graph();
  const Schedule before = paper_example_schedule(graph);
  BalanceOptions options;
  options.record_trace = true;
  const BalanceResult result = LoadBalancer(options).balance(before);
  std::cout << "--- before (paper Fig. 3) ---\n" << render_gantt(before)
            << "\n--- after (paper Fig. 4) ---\n"
            << render_gantt(result.schedule) << "\n"
            << summarize(result.stats);
  return 0;
}

int cmd_balance(const CliOptions& options) {
  ObsSession obs(options);
  if (!options.algo.empty()) {
    const auto solver = SolverRegistry::builtin().require(options.algo);
    // A machine-count mismatch is a usage error (exit 1), not an
    // unschedulable workload: fail before generating anything.
    const int machines_exact = solver->capabilities().machines_exact;
    if (machines_exact != 0 && machines_exact != options.procs) {
      usage("solver '" + solver->name() + "' handles exactly " +
            std::to_string(machines_exact) + " processors (--procs=" +
            std::to_string(options.procs) + ")");
    }
    const Problem problem = Problem::generate(make_workload_spec(options));
    const Outcome outcome = solver->solve(problem);
    // Feasibility first: the transcript must not print a solved header
    // for a run that then reports "unschedulable".
    const Schedule& solved = solved_or_throw(outcome);
    std::cout << "--- initial ---\n" << render_gantt(problem.initial_schedule())
              << "\n--- solved (" << solver->name() << ") ---\n"
              << render_gantt(solved) << "\n"
              << summarize_solve(outcome.stats);
    if (!outcome.detail.empty()) {
      std::cout << "detail: " << outcome.detail << "\n";
    }
    obs.finish();
    return 0;
  }
  const Prepared p = prepare(options, obs.registry());
  const Schedule& solved = solved_or_throw(p.outcome);
  std::cout << "--- initial ---\n" << render_gantt(p.problem.initial_schedule())
            << "\n--- balanced (" << to_string(options.policy) << ") ---\n"
            << render_gantt(solved) << "\n" << summarize_solve(p.outcome.stats);
  obs.finish();
  return 0;
}

int cmd_compare(const CliOptions& options) {
  ObsSession obs(options);
  ScenarioSpec spec;
  spec.suite = make_suite_spec(options);
  spec.threads = options.threads;
  spec.metrics = obs.registry();
  if (options.perturb) {
    // No failure injection in compare (fail-proc is simulate-only), so
    // the hyper-period sizing the default failure tick is irrelevant.
    spec.suite.perturb = make_perturb(options, 0);
    spec.replications = options.replications;
    spec.adaptive = options.adaptive;
  }
  if (!options.algo.empty() && options.algo != "all") {
    std::string name;
    std::istringstream list(options.algo);
    while (std::getline(list, name, ',')) {
      if (!name.empty()) spec.solvers.push_back(name);
    }
  }

  const ScenarioRunner runner(SolverRegistry::builtin());
  const ScenarioReport report = runner.run(spec);
  std::cout << "=== compare: " << options.count << " x (N=" << options.tasks
            << ", M=" << options.procs << ", base seed " << options.seed
            << ") ===\n"
            << summarize_scenario(report, options.timing);
  if (!options.out_prefix.empty()) {
    write_file(options.out_prefix + "_compare.json",
               scenario_report_to_json(report, options.timing));
  }
  obs.finish();
  if (report.instances == 0) {
    std::cerr << "unschedulable: no workload instance could be generated ("
              << report.skipped_seeds << " seeds skipped)\n";
    return 2;
  }
  return 0;
}

int cmd_simulate(const CliOptions& options) {
  ObsSession obs(options);
  std::shared_ptr<const Solver> named;
  if (!options.algo.empty()) {
    named = SolverRegistry::builtin().require(options.algo);
    // Same contract as `balance`: a machine-count mismatch is a usage
    // error, caught before any workload is generated.
    const int machines_exact = named->capabilities().machines_exact;
    if (machines_exact != 0 && machines_exact != options.procs) {
      usage("solver '" + named->name() + "' handles exactly " +
            std::to_string(machines_exact) + " processors (--procs=" +
            std::to_string(options.procs) + ")");
    }
  }
  const Problem problem = Problem::generate(make_workload_spec(options));
  const Outcome outcome =
      named ? named->solve(problem)
            : HeuristicSolver(make_balance_options(options, obs.registry()))
                  .solve(problem);
  const Schedule& solved = solved_or_throw(outcome);
  if (named) std::cout << "solver: " << named->name() << "\n";
  std::cout << summarize_solve(outcome.stats) << "\n";

  SimOptions sim{options.hyperperiods, options.local_buffers};
  sim.metrics = obs.registry();
  if (!options.perturb) {
    const SimMetrics metrics = simulate(solved, sim);
    std::cout << summarize_sim(metrics, options.hyperperiods);
    if (!options.out_prefix.empty()) {
      write_file(options.out_prefix + "_sim.json",
                 sim_report_to_json(metrics, options.hyperperiods));
    }
    obs.finish();
    return metrics.violations == 0 ? 0 : 2;
  }

  RobustnessOptions rob;
  rob.sim = sim;
  rob.replications = options.replications;
  rob.perturb = make_perturb(options, solved.graph().hyperperiod());
  // The repair stage (taken when a failure is injected) runs the same
  // heuristic configuration the schedule was built with.
  rob.repair.balance.policy = options.policy;
  rob.repair.balance.enforce_memory_capacity =
      options.capacity != kUnlimitedMemory;
  rob.repair.degraded.enabled = options.degraded;
  rob.repair.metrics = obs.registry();
  const RobustnessReport report = run_robustness(solved, rob);
  std::cout << summarize_robustness(report, rob);
  if (!options.out_prefix.empty()) {
    write_file(options.out_prefix + "_sim.json",
               robustness_report_to_json(report, rob));
  }
  obs.finish();
  // Perturbed violations/misses are the measurement, not a failure of the
  // tool; the run only "fails" when an injected processor failure could
  // not be repaired.
  return report.failure_injected && !report.recovered ? 2 : 0;
}

int cmd_bus(const CliOptions& options) {
  const Prepared p = prepare(options);
  const Schedule& solved = solved_or_throw(p.outcome);
  const BusReport before = analyze_single_bus(p.problem.initial_schedule());
  const BusReport after = analyze_single_bus(solved);
  auto show = [](const char* label, const BusReport& report) {
    std::cout << label << ": " << report.jobs.size() << " transfers, busy "
              << report.bus_busy << ", utilization "
              << report.utilization << " — " << report.detail << "\n";
  };
  show("before", before);
  show("after ", after);
  return 0;
}

int cmd_replay(const CliOptions& options) {
  ObsSession obs(options);
  Prepared p = prepare(options, obs.registry());
  // Same contract as `balance`: an invalid starting point (e.g. the
  // balancer fell back on a workload that busts a finite capacity) is
  // "unschedulable", not a baseline to replay events against.
  solved_or_throw(p.outcome);
  std::cout << "--- balanced starting point ---\n"
            << summarize_solve(p.outcome.stats) << "\n";

  EventTraceParams trace_params;
  trace_params.events = options.events;
  const EventTrace trace =
      random_event_trace(p.problem.graph(), p.outcome.schedule->architecture(),
                         trace_params, options.event_seed);

  RebalancerOptions online_options;
  online_options.balance.policy = options.policy;
  online_options.balance.enforce_memory_capacity =
      options.capacity != kUnlimitedMemory;
  online_options.balance.migration_penalty = options.migration_penalty;
  online_options.incremental = options.incremental;
  online_options.metrics = obs.registry();
  online_options.degraded.enabled = options.degraded;
  online_options.staleness_events = options.staleness;
  std::string mode = options.incremental ? "incremental" : "full";
  if (!options.resolver.empty()) {
    online_options.incremental = false;
    online_options.full_resolver =
        SolverRegistry::builtin().require(options.resolver);
    mode = "full (resolver " + options.resolver + ")";
  }
  if (options.degraded) mode += ", degraded ladder";
  Rebalancer system = Rebalancer::adopt(
      p.problem.graph(), *p.outcome.schedule, online_options);

  const OnlineRunner runner;
  const OnlineReport report = runner.replay(system, trace);
  std::cout << "--- replay (" << options.events << " events, seed "
            << options.event_seed << ", " << mode << " mode) ---\n"
            << summarize_online(report, options.timing);

  if (!options.out_prefix.empty()) {
    write_file(options.out_prefix + "_online.json",
               online_report_to_json(report, options.timing));
  }
  obs.finish();
  return report.total_violations == 0 ? 0 : 2;
}

int cmd_serve(const CliOptions& options) {
  ObsSession obs(options);
  Prepared p = prepare(options, obs.registry());
  // Same contract as `replay`: an invalid starting point is
  // "unschedulable", not a baseline to stream events against.
  solved_or_throw(p.outcome);

  EventTrace trace;
  std::string source;
  if (!options.trace_in.empty()) {
    if (options.trace_in == "-") {
      trace = parse_trace(std::cin);
      source = "stdin";
    } else {
      std::ifstream in(options.trace_in);
      if (!in) {
        std::cerr << "cannot read " << options.trace_in << "\n";
        return 1;
      }
      trace = parse_trace(in);
      source = options.trace_in;
    }
  } else {
    EventTraceParams trace_params;
    trace_params.events = options.events;
    trace_params.arrival = options.arrivals;
    trace_params.mean_gap = options.mean_gap;
    trace = random_event_trace(p.problem.graph(),
                               p.outcome.schedule->architecture(),
                               trace_params, options.event_seed);
    source = "generated, seed " + std::to_string(options.event_seed);
  }

  if (!options.emit_trace.empty()) {
    // Emit mode: the trace is the deliverable. For '-' the trace is the
    // *only* stdout content, so `serve --emit-trace=- | serve --trace-in=-`
    // round-trips without a scraper.
    if (options.emit_trace == "-") {
      write_trace(std::cout, trace);
    } else {
      write_file(options.emit_trace, trace_to_string(trace));
    }
    obs.finish();
    return 0;
  }

  std::cout << "--- balanced starting point ---\n"
            << summarize_solve(p.outcome.stats) << "\n";

  RebalancerOptions online_options;
  online_options.balance.policy = options.policy;
  online_options.balance.enforce_memory_capacity =
      options.capacity != kUnlimitedMemory;
  online_options.balance.migration_penalty = options.migration_penalty;
  online_options.balance.threads = options.threads;
  online_options.metrics = obs.registry();
  online_options.degraded.enabled = options.degraded;
  Rebalancer system = Rebalancer::adopt(
      p.problem.graph(), *p.outcome.schedule, online_options);

  StreamOptions stream;
  stream.cycle_ticks = options.cycle_ticks;
  stream.queue_capacity = options.queue_cap;
  stream.batch_max = options.batch_max;
  stream.budget_us = options.budget_us;
  stream.coalesce = options.coalesce;
  stream.overload_backlog = options.overload;
  stream.metrics = obs.registry();

  const bool timing = options.timing;
  StreamService::ProgressFn progress;
  if (options.stats_every > 0) {
    progress = [timing](const StreamProgress& snap) {
      std::cout << progress_line(snap, timing) << "\n";
    };
  }

  const StreamService service(stream);
  const StreamReport report =
      service.serve(system, trace, progress, options.stats_every);
  std::cout << "--- serve (" << trace.size() << " events, " << source
            << ", cycle " << options.cycle_ticks << " ticks) ---\n"
            << summarize_stream(report, options.timing);

  if (!options.out_prefix.empty()) {
    write_file(options.out_prefix + "_serve.json",
               stream_report_to_json(report, options.timing));
  }
  obs.finish();
  return report.final_violations > 0 ? 2 : 0;
}

int cmd_export(const CliOptions& options) {
  const Prepared p = prepare(options);
  const Schedule& solved = solved_or_throw(p.outcome);
  const std::string prefix =
      options.out_prefix.empty() ? "lbmem" : options.out_prefix;
  write_file(prefix + "_graph.dot", graph_to_dot(p.problem.graph()));
  write_file(prefix + "_before.dot",
             schedule_to_dot(p.problem.initial_schedule()));
  write_file(prefix + "_after.dot", schedule_to_dot(solved));
  write_file(prefix + "_before.json",
             schedule_to_json(p.problem.initial_schedule()));
  write_file(prefix + "_after.json", schedule_to_json(solved));
  write_file(prefix + "_stats.json", solve_stats_to_json(p.outcome.stats));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") help(kAllCommands);
  if (command == "--version") {
    std::cout << build_info_line() << "\n";
    return 0;
  }
  const CommandSpec* cmd = find_command(command);
  if (cmd == nullptr) usage("unknown command: " + command);
  try {
    const CliOptions options = parse_flags(*cmd, argc, argv, 2);
    switch (cmd->bit) {
      case kExample: return cmd_example();
      case kBalance: return cmd_balance(options);
      case kCompare: return cmd_compare(options);
      case kSimulate: return cmd_simulate(options);
      case kBus: return cmd_bus(options);
      case kExport: return cmd_export(options);
      case kReplay: return cmd_replay(options);
      case kServe: return cmd_serve(options);
    }
    usage("unknown command: " + command);
  } catch (const ScheduleError& e) {
    std::cerr << "unschedulable: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
