/// SolverRegistry semantics: name lookup, the unknown-name error contract
/// the CLI surfaces verbatim (exit 1), duplicate rejection, registration
/// order, and extension with custom-configured adapters.

#include <gtest/gtest.h>

#include <algorithm>

#include "lbmem/api/registry.hpp"
#include "lbmem/api/solvers.hpp"

namespace lbmem {
namespace {

TEST(ApiRegistry, BuiltinRegistersEveryAdapterInOrder) {
  const SolverRegistry& registry = SolverRegistry::builtin();
  const std::vector<std::string> names = registry.names();
  const std::vector<std::string> expected = {
      "initial",          "heuristic-lex",  "heuristic-formula",
      "heuristic-literal", "heuristic-gain", "heuristic-memory",
      "round-robin",      "memory-greedy",  "ga",
      "bnb-partition",    "dp-partition"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(registry.size(), expected.size());
}

TEST(ApiRegistry, FindReturnsNullForUnknownNames) {
  const SolverRegistry& registry = SolverRegistry::builtin();
  EXPECT_EQ(registry.find("does-not-exist"), nullptr);
  ASSERT_NE(registry.find("ga"), nullptr);
  EXPECT_EQ(registry.find("ga")->name(), "ga");
}

TEST(ApiRegistry, RequireThrowsACleanErrorListingKnownNames) {
  const SolverRegistry& registry = SolverRegistry::builtin();
  try {
    registry.require("does-not-exist");
    FAIL() << "require() should have thrown";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown solver 'does-not-exist'"),
              std::string::npos)
        << message;
    // The message teaches the vocabulary: every known name is listed.
    for (const std::string& name : registry.names()) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(ApiRegistry, DuplicateRegistrationThrows) {
  SolverRegistry registry = SolverRegistry::with_builtins();
  EXPECT_THROW(registry.add(std::make_shared<InitialSolver>()), Error);
}

TEST(ApiRegistry, CustomConfigurationsExtendTheBuiltins) {
  SolverRegistry registry = SolverRegistry::with_builtins();
  BalanceOptions options;
  options.migration_penalty = 3;
  registry.add(
      std::make_shared<HeuristicSolver>("heuristic-penalty3", options));
  const auto solver = registry.require("heuristic-penalty3");
  EXPECT_EQ(solver->name(), "heuristic-penalty3");
  EXPECT_EQ(registry.size(), SolverRegistry::builtin().size() + 1);
}

TEST(ApiRegistry, HeuristicNamesFollowThePolicyVocabulary) {
  EXPECT_EQ(heuristic_solver_name(CostPolicy::Lexicographic),
            "heuristic-lex");
  EXPECT_EQ(heuristic_solver_name(CostPolicy::PaperFormula),
            "heuristic-formula");
  EXPECT_EQ(heuristic_solver_name(CostPolicy::PaperLiteral),
            "heuristic-literal");
  EXPECT_EQ(heuristic_solver_name(CostPolicy::GainOnly), "heuristic-gain");
  EXPECT_EQ(heuristic_solver_name(CostPolicy::MemoryOnly),
            "heuristic-memory");
}

TEST(ApiRegistry, CapabilityFlagsDescribeTheAdapters) {
  const SolverRegistry& registry = SolverRegistry::builtin();
  EXPECT_TRUE(registry.require("heuristic-lex")->capabilities()
                  .splits_instances);
  EXPECT_TRUE(registry.require("heuristic-lex")->capabilities()
                  .respects_capacity);
  EXPECT_FALSE(registry.require("ga")->capabilities().splits_instances);
  EXPECT_TRUE(registry.require("bnb-partition")->capabilities()
                  .partition_only);
  EXPECT_EQ(registry.require("dp-partition")->capabilities().machines_exact,
            2);
  for (const auto& solver : registry.solvers()) {
    EXPECT_TRUE(solver->capabilities().deterministic) << solver->name();
  }
}

}  // namespace
}  // namespace lbmem
