/// Unit tests for the Schedule container (lbmem/sched/schedule.hpp).

#include <gtest/gtest.h>

#include "lbmem/gen/paper_example.hpp"
#include "lbmem/sched/schedule.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  ScheduleTest() : graph_(paper_example_graph()) {}

  Schedule empty_schedule() {
    return Schedule(graph_, paper_example_architecture(),
                    paper_example_comm());
  }

  TaskGraph graph_;
};

TEST_F(ScheduleTest, StartsDeriveFromFirstInstance) {
  Schedule s = empty_schedule();
  const TaskId a = graph_.find("a");
  s.set_first_start(a, 2);
  EXPECT_EQ(s.start(TaskInstance{a, 0}), 2);
  EXPECT_EQ(s.start(TaskInstance{a, 3}), 2 + 3 * 3);
  EXPECT_EQ(s.end(TaskInstance{a, 1}), 2 + 3 + 1);
}

TEST_F(ScheduleTest, CompletenessTracking) {
  Schedule s = empty_schedule();
  EXPECT_FALSE(s.complete());
  for (TaskId t = 0; t < static_cast<TaskId>(graph_.task_count()); ++t) {
    s.set_first_start(t, 0);
    s.assign_all(t, 0);
  }
  EXPECT_TRUE(s.complete());
}

TEST_F(ScheduleTest, PerInstanceAssignment) {
  Schedule s = empty_schedule();
  const TaskId a = graph_.find("a");
  s.set_first_start(a, 0);
  s.assign(TaskInstance{a, 0}, 0);
  s.assign(TaskInstance{a, 1}, 1);
  EXPECT_EQ(s.proc(TaskInstance{a, 0}), 0);
  EXPECT_EQ(s.proc(TaskInstance{a, 1}), 1);
  EXPECT_EQ(s.proc(TaskInstance{a, 2}), kNoProc);
}

TEST_F(ScheduleTest, AssignValidation) {
  Schedule s = empty_schedule();
  const TaskId a = graph_.find("a");
  EXPECT_THROW(s.assign(TaskInstance{a, 99}, 0), PreconditionError);
  EXPECT_THROW(s.assign(TaskInstance{a, 0}, 7), PreconditionError);
  EXPECT_THROW(s.assign(TaskInstance{99, 0}, 0), PreconditionError);
  EXPECT_THROW(s.set_first_start(a, -1), PreconditionError);
}

TEST_F(ScheduleTest, MemoryCountsInstances) {
  Schedule s = empty_schedule();
  const TaskId a = graph_.find("a");  // m=4, 4 instances
  s.set_first_start(a, 0);
  s.assign(TaskInstance{a, 0}, 0);
  s.assign(TaskInstance{a, 1}, 0);
  s.assign(TaskInstance{a, 2}, 1);
  s.assign(TaskInstance{a, 3}, 1);
  EXPECT_EQ(s.memory_on(0), 8);
  EXPECT_EQ(s.memory_on(1), 8);
  EXPECT_EQ(s.memory_on(2), 0);
}

TEST_F(ScheduleTest, DataReadyLocalVsRemote) {
  Schedule s = empty_schedule();
  const TaskId a = graph_.find("a");
  const TaskId b = graph_.find("b");
  s.set_first_start(a, 0);
  s.assign_all(a, 0);
  // b instance 0 consumes a0 (end 1) and a1 (end 4); C = 1.
  EXPECT_EQ(s.data_ready(TaskInstance{b, 0}, 0), 4);  // local to a
  EXPECT_EQ(s.data_ready(TaskInstance{b, 0}, 1), 5);  // + comm
  EXPECT_EQ(s.min_data_ready(TaskInstance{b, 0}), 4);
}

TEST_F(ScheduleTest, DataReadyMixedProducers) {
  Schedule s = empty_schedule();
  const TaskId a = graph_.find("a");
  const TaskId b = graph_.find("b");
  s.set_first_start(a, 0);
  s.assign(TaskInstance{a, 0}, 0);
  s.assign(TaskInstance{a, 1}, 1);  // a1 on P2
  s.assign(TaskInstance{a, 2}, 0);
  s.assign(TaskInstance{a, 3}, 0);
  // On P2: a0 arrives 1+1=2, a1 local at 4 -> ready 4.
  EXPECT_EQ(s.data_ready(TaskInstance{b, 0}, 1), 4);
  // On P1: a0 local 1, a1 arrives 4+1=5 -> ready 5.
  EXPECT_EQ(s.data_ready(TaskInstance{b, 0}, 0), 5);
}

TEST_F(ScheduleTest, MakespanIsLastCompletion) {
  const Schedule s = paper_example_schedule(graph_);
  EXPECT_EQ(s.makespan(), 15);
}

TEST_F(ScheduleTest, InstancesOnSortedByStart) {
  const Schedule s = paper_example_schedule(graph_);
  const auto on_p2 = s.instances_on(1);
  for (std::size_t i = 1; i < on_p2.size(); ++i) {
    EXPECT_LE(s.start(on_p2[i - 1]), s.start(on_p2[i]));
  }
}

TEST_F(ScheduleTest, BusyAndIdle) {
  const Schedule s = paper_example_schedule(graph_);
  EXPECT_EQ(s.busy_on(0), 4);  // four a instances of wcet 1
  EXPECT_EQ(s.busy_on(1), 4);  // b0,b1,c0,c1
  EXPECT_EQ(s.busy_on(2), 2);  // d,e
  EXPECT_DOUBLE_EQ(s.idle_fraction(0), 1.0 - 4.0 / 12.0);
  EXPECT_DOUBLE_EQ(s.idle_fraction(2), 1.0 - 2.0 / 12.0);
}

TEST_F(ScheduleTest, MaxMemory) {
  const Schedule s = paper_example_schedule(graph_);
  EXPECT_EQ(s.max_memory(), 16);
}

TEST_F(ScheduleTest, CopyIsIndependent) {
  Schedule s = paper_example_schedule(graph_);
  Schedule copy = s;
  copy.set_first_start(graph_.find("b"), 4);
  EXPECT_EQ(s.first_start(graph_.find("b")), 5);
  EXPECT_EQ(copy.first_start(graph_.find("b")), 4);
}

}  // namespace
}  // namespace lbmem
