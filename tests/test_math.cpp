/// Unit tests for exact integer helpers (lbmem/util/math.hpp).

#include <gtest/gtest.h>

#include <limits>

#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"

namespace lbmem {
namespace {

TEST(Gcd64, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(48, 48), 48);
}

TEST(Gcd64, RejectsNegative) {
  EXPECT_THROW(gcd64(-1, 3), PreconditionError);
  EXPECT_THROW(gcd64(3, -1), PreconditionError);
}

TEST(Lcm64, Basics) {
  EXPECT_EQ(lcm64(3, 4), 12);
  EXPECT_EQ(lcm64(6, 4), 12);
  EXPECT_EQ(lcm64(5, 5), 5);
  EXPECT_EQ(lcm64(1, 9), 9);
}

TEST(Lcm64, PaperExamplePeriods) {
  // Ta=3, Tb=Tc=6, Td=Te=12 -> hyper-period 12.
  EXPECT_EQ(lcm64(lcm64(3, 6), 12), 12);
}

TEST(Lcm64, RejectsNonPositive) {
  EXPECT_THROW(lcm64(0, 4), ModelError);
  EXPECT_THROW(lcm64(4, 0), ModelError);
  EXPECT_THROW(lcm64(-2, 4), ModelError);
}

TEST(Lcm64, DetectsOverflow) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() - 1;
  EXPECT_THROW(lcm64(big, big - 1), ModelError);
}

TEST(LcmAll, Sequence) {
  const std::int64_t values[] = {3, 6, 12};
  EXPECT_EQ(lcm_all(values), 12);
  const std::int64_t primes[] = {2, 3, 5, 7};
  EXPECT_EQ(lcm_all(primes), 210);
}

TEST(LcmAll, RejectsEmpty) {
  EXPECT_THROW(lcm_all({}), ModelError);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 100), 1);
}

TEST(CeilDiv, NegativeNumerator) {
  EXPECT_EQ(ceil_div(-1, 3), 0);
  EXPECT_EQ(ceil_div(-3, 3), -1);
  EXPECT_EQ(ceil_div(-4, 3), -1);
}

TEST(ModFloor, CanonicalRange) {
  EXPECT_EQ(mod_floor(7, 12), 7);
  EXPECT_EQ(mod_floor(12, 12), 0);
  EXPECT_EQ(mod_floor(13, 12), 1);
  EXPECT_EQ(mod_floor(-1, 12), 11);
  EXPECT_EQ(mod_floor(-12, 12), 0);
  EXPECT_EQ(mod_floor(-13, 12), 11);
}

TEST(CompareFractions, Ordering) {
  EXPECT_EQ(compare_fractions(1, 2, 1, 3), 1);   // 1/2 > 1/3
  EXPECT_EQ(compare_fractions(1, 3, 1, 2), -1);
  EXPECT_EQ(compare_fractions(2, 4, 1, 2), 0);   // equal
  EXPECT_EQ(compare_fractions(0, 5, 0, 9), 0);
}

TEST(CompareFractions, PaperStep3Values) {
  // λ(P2) = 2/4 vs λ(P1) = 1/4 vs "1/1" for the empty P3.
  EXPECT_EQ(compare_fractions(2, 4, 1, 4), 1);
  EXPECT_EQ(compare_fractions(2, 4, 1, 1), -1);  // the F1 inconsistency
}

TEST(CompareFractions, NoIntermediateOverflow) {
  const std::int64_t big = std::int64_t{1} << 62;
  EXPECT_EQ(compare_fractions(big, 1, big - 1, 1), 1);
  EXPECT_EQ(compare_fractions(big, big, big - 1, big - 1), 0);  // both 1
}

}  // namespace
}  // namespace lbmem
