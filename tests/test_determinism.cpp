/// Determinism guards: fixed seeds must produce bit-identical workloads and
/// suites across independent runs. Future parallelization of generation or
/// scheduling must not break this — goldens, benches, and paper-figure
/// reproduction all depend on it.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "lbmem/gen/random_graph.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/report/export.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {
namespace {

TEST(RngDeterminism, EqualSeedsGiveEqualStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at draw " << i;
  }
}

TEST(RngDeterminism, DifferentSeedsDiverge) {
  Rng a(42);
  Rng b(43);
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) {
    differs = a.next_u64() != b.next_u64();
  }
  EXPECT_TRUE(differs);
}

TEST(RandomGraphDeterminism, SameSeedSameGraph) {
  RandomGraphParams params;
  params.tasks = 60;
  params.period_levels = 4;
  params.edge_probability = 0.3;
  for (const std::uint64_t seed : {1ULL, 7ULL, 12345ULL}) {
    const TaskGraph first = random_task_graph(params, seed);
    const TaskGraph second = random_task_graph(params, seed);
    // DOT carries every generated attribute (periods, WCETs, memory,
    // edges, data sizes), so equal DOT means equal graphs.
    EXPECT_EQ(graph_to_dot(first), graph_to_dot(second))
        << "seed " << seed << " is not reproducible";
  }
}

TEST(RandomGraphDeterminism, DifferentSeedsGiveDifferentGraphs) {
  RandomGraphParams params;
  params.tasks = 60;
  const TaskGraph first = random_task_graph(params, 1);
  const TaskGraph second = random_task_graph(params, 2);
  EXPECT_NE(graph_to_dot(first), graph_to_dot(second));
}

TEST(SuiteDeterminism, SameSpecSameSuite) {
  SuiteSpec spec;
  spec.params.tasks = 24;
  spec.processors = 4;
  spec.count = 6;
  spec.base_seed = 11;

  int skipped_first = 0;
  int skipped_second = 0;
  const std::vector<SuiteInstance> first = make_suite(spec, &skipped_first);
  const std::vector<SuiteInstance> second = make_suite(spec, &skipped_second);

  EXPECT_EQ(skipped_first, skipped_second);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].seed, second[i].seed) << "instance " << i;
    EXPECT_EQ(graph_to_dot(*first[i].graph), graph_to_dot(*second[i].graph))
        << "instance " << i;
    // Initial schedules (placements + start times) must match too: the
    // scheduler substrate is part of the reproducibility contract.
    EXPECT_EQ(schedule_to_json(first[i].schedule),
              schedule_to_json(second[i].schedule))
        << "instance " << i;
  }
}

}  // namespace
}  // namespace lbmem
