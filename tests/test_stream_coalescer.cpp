/// Unit tests for the streaming coalescer (stream/coalescer.hpp): the
/// last-write-wins / fold / annihilation / subsumption rules, the
/// producer-reference veto, the failure barrier, order preservation, and
/// the drop-count bookkeeping.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <variant>

#include "lbmem/stream/coalescer.hpp"

namespace lbmem {
namespace {

Event at(Time when,
         std::variant<TaskArrival, TaskRemoval, WcetChange, ProcessorFailure>
             payload) {
  Event event;
  event.at = when;
  event.payload = std::move(payload);
  return event;
}

Event arrival(Time when, const std::string& name,
              std::vector<NewTaskSpec::Producer> producers = {}) {
  NewTaskSpec spec;
  spec.name = name;
  spec.period = 12;
  spec.wcet = 1;
  spec.memory = 2;
  spec.producers = std::move(producers);
  return at(when, TaskArrival{std::move(spec)});
}

TEST(StreamCoalescer, EmptyAndSingletonPassThrough) {
  CoalesceStats stats;
  EXPECT_TRUE(coalesce_events({}, &stats).empty());
  EXPECT_EQ(stats.in, 0);
  EXPECT_EQ(stats.out, 0);

  std::vector<Event> one{at(3, WcetChange{"a", 2})};
  const std::vector<Event> out = coalesce_events(one, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.dropped(), 0);
}

TEST(StreamCoalescer, LastWriteWinsKeepsOnlyTheNewestEstimate) {
  std::vector<Event> batch{
      at(1, WcetChange{"a", 2}),
      at(2, WcetChange{"b", 3}),
      at(3, WcetChange{"a", 4}),
      at(4, WcetChange{"a", 5}),
  };
  CoalesceStats stats;
  const std::vector<Event> out = coalesce_events(batch, &stats);
  ASSERT_EQ(out.size(), 2u);
  // Order preserved: b's change (position 2) before a's last (position 4).
  EXPECT_EQ(std::get<WcetChange>(out[0].payload).task, "b");
  EXPECT_EQ(std::get<WcetChange>(out[1].payload).task, "a");
  EXPECT_EQ(std::get<WcetChange>(out[1].payload).wcet, 5);
  EXPECT_EQ(stats.last_write_wins, 2);
  EXPECT_EQ(stats.dropped(), 2);
}

TEST(StreamCoalescer, WcetChangeFoldsIntoQueuedArrival) {
  std::vector<Event> batch{
      arrival(1, "dyn0"),
      at(2, WcetChange{"dyn0", 4}),
  };
  CoalesceStats stats;
  const std::vector<Event> out = coalesce_events(batch, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<TaskArrival>(out[0].payload).spec.wcet, 4);
  EXPECT_EQ(stats.folded, 1);
}

TEST(StreamCoalescer, ArrivalRemovalPairAnnihilates) {
  std::vector<Event> batch{
      at(1, WcetChange{"a", 2}),
      arrival(2, "dyn0"),
      at(3, WcetChange{"dyn0", 4}),  // folds into the arrival first...
      at(4, TaskRemoval{"dyn0"}),    // ...then the pair annihilates
  };
  CoalesceStats stats;
  const std::vector<Event> out = coalesce_events(batch, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<WcetChange>(out[0].payload).task, "a");
  EXPECT_EQ(stats.folded, 1);
  EXPECT_EQ(stats.annihilated, 2);
  EXPECT_EQ(stats.dropped(), 3);
}

TEST(StreamCoalescer, AnnihilationVetoedWhenAQueuedArrivalReferences) {
  // dyn1 names dyn0 as producer between dyn0's arrival and removal: the
  // pair must NOT cancel, or dyn1's admission would see a dead producer.
  std::vector<Event> batch{
      arrival(1, "dyn0"),
      arrival(2, "dyn1", {NewTaskSpec::Producer{"dyn0", 1}}),
      at(3, TaskRemoval{"dyn0"}),
  };
  CoalesceStats stats;
  const std::vector<Event> out = coalesce_events(batch, &stats);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(stats.dropped(), 0);
  EXPECT_EQ(out[0].kind(), EventKind::TaskArrival);
  EXPECT_EQ(out[2].kind(), EventKind::TaskRemoval);
}

TEST(StreamCoalescer, RemovalSubsumesQueuedWcetChange) {
  // "a" pre-exists (no queued arrival): its queued re-estimate is dead
  // weight once the removal is also queued.
  std::vector<Event> batch{
      at(1, WcetChange{"a", 2}),
      at(2, TaskRemoval{"a"}),
  };
  CoalesceStats stats;
  const std::vector<Event> out = coalesce_events(batch, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind(), EventKind::TaskRemoval);
  EXPECT_EQ(stats.subsumed, 1);
}

TEST(StreamCoalescer, FailureIsABarrier) {
  // The same WcetChange pair that would coalesce in one segment survives
  // when a failure sits between them; the failure itself always survives.
  std::vector<Event> batch{
      at(1, WcetChange{"a", 2}),
      at(2, ProcessorFailure{1}),
      at(3, WcetChange{"a", 4}),
  };
  CoalesceStats stats;
  const std::vector<Event> out = coalesce_events(batch, &stats);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(stats.dropped(), 0);
  EXPECT_EQ(out[1].kind(), EventKind::ProcessorFailure);

  // Arrival/removal pairs do not annihilate across a failure either.
  std::vector<Event> split{
      arrival(1, "dyn0"),
      at(2, ProcessorFailure{0}),
      at(3, TaskRemoval{"dyn0"}),
  };
  EXPECT_EQ(coalesce_events(split, &stats).size(), 3u);
  EXPECT_EQ(stats.dropped(), 0);
}

TEST(StreamCoalescer, IsDeterministicAndIdempotent) {
  std::vector<Event> batch{
      at(1, WcetChange{"a", 2}),  at(2, WcetChange{"a", 3}),
      arrival(3, "dyn0"),         at(4, WcetChange{"dyn0", 9}),
      at(5, ProcessorFailure{2}), at(6, WcetChange{"a", 4}),
      at(7, TaskRemoval{"dyn0"}),
  };
  const std::vector<Event> once = coalesce_events(batch);
  const std::vector<Event> again = coalesce_events(batch);
  ASSERT_EQ(once.size(), again.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(to_string(once[i]), to_string(again[i]));
  }
  // A coalesced batch is a fixpoint: running it through again drops
  // nothing (survivors are pairwise non-redundant by construction).
  CoalesceStats stats;
  const std::vector<Event> twice = coalesce_events(once, &stats);
  EXPECT_EQ(stats.dropped(), 0);
  ASSERT_EQ(twice.size(), once.size());
}

TEST(StreamCoalescer, KeptIndicesIdentifySurvivors) {
  std::vector<Event> batch{
      at(1, WcetChange{"a", 2}),
      at(2, WcetChange{"a", 3}),
      at(3, WcetChange{"b", 4}),
  };
  std::vector<std::size_t> kept;
  const std::vector<Event> out = coalesce_events(batch, nullptr, &kept);
  ASSERT_EQ(out.size(), 2u);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 1u);  // a's last write
  EXPECT_EQ(kept[1], 2u);  // b's only write
}

}  // namespace
}  // namespace lbmem
