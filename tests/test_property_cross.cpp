/// Cross-module property tests: the analytic feasibility predicates
/// (Korst's gcd condition) against the circular-timeline machinery, and
/// the bus analyzer's internal consistency, over randomized inputs.

#include <gtest/gtest.h>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/model/hyperperiod.hpp"
#include "lbmem/sched/feasibility.hpp"
#include "lbmem/sched/timeline.hpp"
#include "lbmem/sim/bus.hpp"
#include "lbmem/util/math.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {
namespace {

/// The gcd condition and the instance-level circular timeline must agree
/// on whole-task placements: place task A's instances on a timeline, then
/// compare pairwise_compatible(A, B) with the timeline accepting all of
/// B's instances.
TEST(FeasibilityVsTimeline, WholeTaskPlacementsAgree) {
  Rng rng(606060);
  const Time periods[] = {4, 6, 8, 12, 24};
  for (int iter = 0; iter < 500; ++iter) {
    const Time ta = periods[rng.uniform(0, 4)];
    const Time tb = periods[rng.uniform(0, 4)];
    const Time h = lcm64(ta, tb);
    PlacedTask a{rng.uniform(0, 11), rng.uniform(1, std::min<Time>(3, ta)),
                 ta};
    PlacedTask b{rng.uniform(0, 11), rng.uniform(1, std::min<Time>(3, tb)),
                 tb};

    ProcTimeline timeline(h);
    for (InstanceIdx k = 0; k < static_cast<InstanceIdx>(h / ta); ++k) {
      timeline.add(instance_start(a.start, ta, k), a.wcet,
                   TaskInstance{0, k});
    }
    bool timeline_ok = true;
    for (InstanceIdx k = 0; k < static_cast<InstanceIdx>(h / tb); ++k) {
      if (!timeline.fits(instance_start(b.start, tb, k), b.wcet)) {
        timeline_ok = false;
        break;
      }
    }
    EXPECT_EQ(pairwise_compatible(a, b), timeline_ok)
        << "a={" << a.start << "," << a.wcet << "," << a.period << "} b={"
        << b.start << "," << b.wcet << "," << b.period << "} h=" << h;
  }
}

/// earliest_compatible_start must agree with ProcTimeline::earliest_fit
/// when the timeline hosts whole tasks.
TEST(FeasibilityVsTimeline, EarliestStartsAgree) {
  Rng rng(707070);
  const Time periods[] = {4, 8, 16};
  for (int iter = 0; iter < 300; ++iter) {
    const Time h = 16;
    std::vector<PlacedTask> placed;
    ProcTimeline timeline(h);
    for (int i = 0; i < 3; ++i) {
      PlacedTask t{rng.uniform(0, 7), rng.uniform(1, 2),
                   periods[rng.uniform(0, 2)]};
      bool ok = true;
      for (const PlacedTask& other : placed) {
        if (!pairwise_compatible(other, t)) ok = false;
      }
      if (!ok) continue;
      placed.push_back(t);
      for (InstanceIdx k = 0; k < static_cast<InstanceIdx>(h / t.period);
           ++k) {
        timeline.add(instance_start(t.start, t.period, k), t.wcet,
                     TaskInstance{static_cast<TaskId>(i), k});
      }
    }
    const Time wcet = rng.uniform(1, 2);
    const Time period = periods[rng.uniform(0, 2)];
    const Time lb = rng.uniform(0, 10);
    const auto analytic =
        earliest_compatible_start(placed, wcet, period, lb);
    const auto via_timeline = timeline.earliest_fit(
        lb, period, wcet, static_cast<InstanceIdx>(h / period));
    EXPECT_EQ(analytic, via_timeline) << "iter " << iter;
  }
}

/// Bus analyzer consistency on balanced random systems: Fits implies an
/// explicit witness schedule; Overloaded implies a demand window
/// exceeding its length; transfer counts match the schedule's remote
/// dependences.
TEST(BusConsistency, VerdictsCarryWitnesses) {
  SuiteSpec spec;
  spec.params.tasks = 30;
  spec.processors = 4;
  spec.comm_cost = 2;
  spec.count = 8;
  spec.base_seed = 818181;
  const LoadBalancer balancer;
  for (const SuiteInstance& instance : make_suite(spec)) {
    const BalanceResult balanced = balancer.balance(instance.schedule);
    for (const Schedule* sched : {&instance.schedule, &balanced.schedule}) {
      const BusReport report = analyze_single_bus(*sched);
      EXPECT_EQ(report.jobs.size(), count_remote_transfers(*sched));
      switch (report.verdict) {
        case BusVerdict::Fits: {
          // Witness: every job scheduled inside its window, and the bus
          // never double-booked.
          std::vector<std::pair<Time, Time>> busy;
          for (const TransferJob& job : report.jobs) {
            EXPECT_GE(job.scheduled_at, job.release);
            EXPECT_LE(job.scheduled_at + job.length, job.deadline);
            busy.emplace_back(job.scheduled_at,
                              job.scheduled_at + job.length);
          }
          std::sort(busy.begin(), busy.end());
          for (std::size_t i = 1; i < busy.size(); ++i) {
            EXPECT_LE(busy[i - 1].second, busy[i].first)
                << "bus double-booked";
          }
          break;
        }
        case BusVerdict::Overloaded: {
          Time demand = 0;
          for (const TransferJob& job : report.jobs) {
            if (job.release >= report.window_begin &&
                job.deadline <= report.window_end) {
              demand += job.length;
            }
          }
          EXPECT_GT(demand, report.window_end - report.window_begin);
          break;
        }
        case BusVerdict::Unknown:
          break;  // allowed: EDF is a heuristic for unequal lengths
      }
    }
  }
}

/// The balancer's decisions are invariant under uniformly scaling all
/// memory amounts (only relative memory matters to the cost function).
TEST(ScaleInvariance, MemoryUnitsDoNotChangeDecisions) {
  for (const Mem scale : {Mem{1}, Mem{10}, Mem{1000}}) {
    TaskGraph g;
    const TaskId a = g.add_task("a", 3, 1, 4 * scale);
    const TaskId b = g.add_task("b", 6, 1, 1 * scale);
    const TaskId c = g.add_task("c", 6, 1, 1 * scale);
    const TaskId d = g.add_task("d", 12, 1, 2 * scale);
    const TaskId e = g.add_task("e", 12, 1, 2 * scale);
    g.add_dependence(a, b);
    g.add_dependence(b, c);
    g.add_dependence(b, d);
    g.add_dependence(c, e);
    g.add_dependence(d, e);
    g.freeze();
    SchedulerOptions so;
    so.policy = PlacementPolicy::PeriodCluster;
    const Schedule before =
        build_initial_schedule(g, Architecture(3), CommModel::flat(1), so);
    const BalanceResult r = LoadBalancer().balance(before);
    EXPECT_EQ(r.schedule.makespan(), 14) << "scale " << scale;
    EXPECT_EQ(r.schedule.memory_on(0), 10 * scale);
    EXPECT_EQ(r.schedule.memory_on(1), 6 * scale);
    EXPECT_EQ(r.schedule.memory_on(2), 8 * scale);
  }
}

}  // namespace
}  // namespace lbmem
