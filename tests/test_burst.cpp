/// Tests for the correlated-burst noise model (DESIGN.md F27): the
/// Gilbert–Elliott chain's statelessness (stitched windows agree with
/// unsplit runs), its stationary storm fraction, per-channel independence,
/// and the storm factor's effect on the executed timeline.

#include <gtest/gtest.h>

#include <cstdint>

#include "lbmem/gen/paper_example.hpp"
#include "lbmem/sim/engine.hpp"
#include "lbmem/sim/perturb.hpp"

namespace lbmem {
namespace {

Time total_busy(const SimMetrics& m) {
  Time sum = 0;
  for (const ProcMetrics& pm : m.procs) sum += pm.busy;
  return sum;
}

/// The chain walked incrementally with the same per-window draws
/// burst_storm re-derives — the O(1)-per-step mirror the tests use to
/// cover thousands of windows without the O(window^2) re-derivation.
class ChainWalker {
 public:
  ChainWalker(std::uint64_t seed, std::uint64_t channel,
              const GilbertElliott& chain)
      : seed_(seed), channel_(channel), chain_(chain) {}

  /// Advance to window `next_` and return the storm state there.
  bool step() {
    const double u = perturb_unit(seed_, kPerturbBurst, channel_, next_++);
    storm_ = storm_ ? !(u < chain_.q) : (u < chain_.p);
    return storm_;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t channel_;
  GilbertElliott chain_;
  std::uint64_t next_ = 0;
  bool storm_ = false;
};

TEST(Burst, InactiveChainNeverStorms) {
  // p == 0 never leaves quiet; factor == 1 is declared inert up front so
  // the engine can skip the per-window derivation entirely.
  GilbertElliott off;
  EXPECT_FALSE(off.active());
  for (std::uint64_t w : {0ull, 1ull, 17ull, 400ull}) {
    EXPECT_FALSE(burst_storm(3, kPerturbWcet, w, off));
  }
  GilbertElliott unit{0.5, 0.5, 1.0};
  EXPECT_FALSE(unit.active());
  GilbertElliott live{0.5, 0.5, 2.0};
  EXPECT_TRUE(live.active());
}

TEST(Burst, StateIsPureFunctionOfAbsoluteWindow) {
  // burst_storm(w) must equal the incremental walk at w for any w — the
  // statelessness that makes stitched phases agree with unsplit runs.
  const GilbertElliott chain{0.25, 0.3, 4.0};
  ChainWalker walk(9, kPerturbWcet, chain);
  for (std::uint64_t w = 0; w <= 300; ++w) {
    EXPECT_EQ(burst_storm(9, kPerturbWcet, w, chain), walk.step())
        << "window " << w;
  }
}

TEST(Burst, StationaryStormFractionIsPOverPPlusQ) {
  // Long-run storm occupancy approaches p / (p + q) — the Gilbert–Elliott
  // stationary distribution. 20000 windows of a p+q = 0.5 chain mix fast
  // enough that the empirical fraction lands within a few percent.
  const GilbertElliott chain{0.2, 0.3, 4.0};
  const int kWindows = 20000;
  ChainWalker walk(123, kPerturbStall, chain);
  int storms = 0;
  for (int w = 0; w < kWindows; ++w) {
    if (walk.step()) ++storms;
  }
  const double fraction = static_cast<double>(storms) / kWindows;
  EXPECT_NEAR(fraction, 0.2 / (0.2 + 0.3), 0.03);
}

TEST(Burst, ChannelsEvolveIndependently) {
  // Distinct channels draw distinct transition streams: the WCET chain
  // storming says nothing about the comm chain.
  const GilbertElliott chain{0.3, 0.3, 4.0};
  bool differed = false;
  for (std::uint64_t w = 0; w < 200 && !differed; ++w) {
    differed = burst_storm(5, kPerturbWcet, w, chain) !=
               burst_storm(5, kPerturbComm, w, chain);
  }
  EXPECT_TRUE(differed);
}

TEST(Burst, StitchedWindowsEqualUnsplitRun) {
  // The engine keys the chain by the *absolute* window index, so a run
  // stitched from consecutive windows (the robustness harness's
  // table-swap discipline) sees exactly the storms an unsplit run sees —
  // the burst extension of PerturbSim.WindowStitchingUsesAbsoluteRepIndex.
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  PerturbSpec spec;
  spec.seed = 11;
  spec.wcet_jitter = 0.5;
  spec.wcet_burst = GilbertElliott{0.4, 0.3, 3.0};
  const SimMetrics full = simulate_perturbed(s, SimOptions{4, true}, spec, 0);
  SimMetrics stitched;
  Time busy = 0;
  std::int64_t misses = 0;
  for (int w = 0; w < 4; ++w) {
    const SimMetrics m = simulate_perturbed(s, SimOptions{1, true}, spec, w);
    busy += total_busy(m);
    misses += m.deadline_misses;
  }
  EXPECT_EQ(total_busy(full), busy);
  EXPECT_EQ(full.deadline_misses, misses);
}

TEST(Burst, StormsRaiseExecutedLoad) {
  // A storm multiplies the WCET-overrun intensity, so the always-storming
  // chain must execute strictly more work than the identically seeded
  // i.i.d. baseline (overruns only ever add ticks).
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  PerturbSpec base;
  base.seed = 21;
  base.wcet_jitter = 0.5;
  PerturbSpec stormy = base;
  stormy.wcet_burst = GilbertElliott{1.0, 1e-9, 3.0};
  const SimMetrics quiet = simulate_perturbed(s, SimOptions{3, true}, base, 0);
  const SimMetrics storm =
      simulate_perturbed(s, SimOptions{3, true}, stormy, 0);
  EXPECT_GT(total_busy(storm), total_busy(quiet));
}

TEST(Burst, BurstWithoutBaseNoiseIsInert) {
  // A storm scales the channel's base intensity; with zero base jitter
  // there is nothing to scale and the execution stays nominal.
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  PerturbSpec spec;
  spec.seed = 13;
  spec.wcet_burst = GilbertElliott{1.0, 0.1, 8.0};
  EXPECT_FALSE(spec.any_burst());
  const SimMetrics plain = simulate(s, SimOptions{2, true});
  const SimMetrics m = simulate_perturbed(s, SimOptions{2, true}, spec, 0);
  EXPECT_EQ(m.span, plain.span);
  EXPECT_EQ(total_busy(m), total_busy(plain));
  EXPECT_EQ(m.deadline_misses, 0);
}

}  // namespace
}  // namespace lbmem
