/// Unit tests for the GA baseline and the simple balancers
/// (lbmem/baseline/ga_balancer.hpp, simple_balancers.hpp).

#include <gtest/gtest.h>

#include "lbmem/util/check.hpp"
#include "lbmem/baseline/ga_balancer.hpp"
#include "lbmem/baseline/simple_balancers.hpp"
#include "lbmem/gen/paper_example.hpp"
#include <algorithm>
#include <vector>

#include "lbmem/gen/random_graph.hpp"
#include "lbmem/validate/validator.hpp"

namespace lbmem {
namespace {

GaOptions fast_ga() {
  GaOptions options;
  options.population = 16;
  options.generations = 12;
  options.seed = 7;
  return options;
}

TEST(Ga, FindsFeasibleScheduleOnPaperExample) {
  const TaskGraph g = paper_example_graph();
  const auto result = ga_balance(g, paper_example_architecture(),
                                 paper_example_comm(), fast_ga());
  ASSERT_TRUE(result.has_value());
  validate_or_throw(result->schedule);
  EXPECT_GT(result->evaluations, 0);
  // The seeded individual guarantees feasibility, so the GA result is at
  // least as good as some feasible schedule.
  EXPECT_LE(result->schedule.makespan(), 30);
}

TEST(Ga, DeterministicPerSeed) {
  const TaskGraph g = paper_example_graph();
  const auto a = ga_balance(g, paper_example_architecture(),
                            paper_example_comm(), fast_ga());
  const auto b = ga_balance(g, paper_example_architecture(),
                            paper_example_comm(), fast_ga());
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->fitness, b->fitness);
}

TEST(Ga, MoreGenerationsNeverWorse) {
  const TaskGraph g = random_task_graph({}, 11);
  GaOptions small = fast_ga();
  GaOptions large = fast_ga();
  large.generations = 40;
  const Architecture arch(4);
  const CommModel comm = CommModel::flat(2);
  const auto a = ga_balance(g, arch, comm, small);
  const auto b = ga_balance(g, arch, comm, large);
  if (a && b) {
    EXPECT_LE(b->fitness, a->fitness) << "elitism keeps the best";
  }
}

TEST(Ga, RejectsBadOptions) {
  const TaskGraph g = paper_example_graph();
  GaOptions bad = fast_ga();
  bad.population = 2;
  EXPECT_THROW(ga_balance(g, paper_example_architecture(),
                          paper_example_comm(), bad),
               PreconditionError);
}

TEST(RoundRobin, ValidOnPaperExample) {
  const TaskGraph g = paper_example_graph();
  const auto s = round_robin_schedule(g, paper_example_architecture(),
                                      paper_example_comm());
  ASSERT_TRUE(s.has_value());
  validate_or_throw(*s);
}

TEST(RoundRobin, ReturnsNulloptWhenImpossible) {
  TaskGraph g;
  g.add_task("a", 4, 4, 1);
  g.add_task("b", 4, 4, 1);
  g.add_task("c", 4, 4, 1);
  g.freeze();
  // 3 full-period tasks, 1 processor (round-robin hits P1 for all).
  EXPECT_EQ(round_robin_schedule(g, Architecture(1), CommModel::flat(1)),
            std::nullopt);
}

TEST(MemoryGreedy, BalancesMemoryOnPaperExample) {
  const TaskGraph g = paper_example_graph();
  const auto s = memory_greedy_schedule(g, paper_example_architecture(),
                                        paper_example_comm());
  ASSERT_TRUE(s.has_value());
  validate_or_throw(*s);
  // Task granularity cannot split the four instances of a (4*4 = 16), so
  // 16 is the best any whole-task balancer can do — exactly the limitation
  // the paper's block-level moves overcome (the heuristic reaches 10).
  EXPECT_EQ(s->max_memory(), 16);
  // The remaining 8 units spread evenly over the other two processors.
  std::vector<Mem> mems;
  for (ProcId p = 0; p < 3; ++p) mems.push_back(s->memory_on(p));
  std::sort(mems.begin(), mems.end());
  EXPECT_EQ(mems[0], 4);
  EXPECT_EQ(mems[1], 4);
}

TEST(MemoryGreedy, WeighsInstancesNotTasks) {
  // One task with many instances outweighs a single big-memory task.
  TaskGraph g;
  g.add_task("fast", 2, 1, 3);   // 4 instances à 3 = 12 total
  g.add_task("slow", 8, 1, 8);   // 1 instance à 8
  g.freeze();
  const auto s = memory_greedy_schedule(g, Architecture(2),
                                        CommModel::flat(1));
  ASSERT_TRUE(s.has_value());
  // fast (12) and slow (8) must land on different processors.
  EXPECT_NE(s->proc(TaskInstance{0, 0}), s->proc(TaskInstance{1, 0}));
}

}  // namespace
}  // namespace lbmem
