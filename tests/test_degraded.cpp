/// Tests for the degraded-mode repair ladder (DESIGN.md F28), concurrent
/// failure streams, retry backoff, and the miss-rate-driven selector
/// (DESIGN.md F30): rung escalation order, per-rung rollback (F14), load
/// shedding determinism, and the harness-level multi-failure recovery.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lbmem/api/problem.hpp"
#include "lbmem/api/solvers.hpp"
#include "lbmem/online/rebalancer.hpp"
#include "lbmem/sim/robustness.hpp"

namespace lbmem {
namespace {

/// The capacity-starved pair: one fat task per processor, capacity that
/// fits exactly one — any failure makes the survivor's memory bust, so
/// without the ladder the event rejects (test_robustness pins that).
struct FatPair {
  TaskGraph graph;
  TaskId t1;
  TaskId t2;
  Schedule make_schedule() const {
    Schedule s(graph, Architecture(2, /*memory_capacity=*/100),
               CommModel::flat(1));
    s.set_first_start(t1, 0);
    s.assign_all(t1, 0);
    s.set_first_start(t2, 0);
    s.assign_all(t2, 1);
    return s;
  }
};

FatPair fat_pair() {
  FatPair f;
  f.t1 = f.graph.add_task("t1", 4, 1, 60);
  f.t2 = f.graph.add_task("t2", 4, 1, 60);
  f.graph.freeze();
  return f;
}

RebalancerOptions degraded_options() {
  RebalancerOptions opts;
  opts.balance.enforce_memory_capacity = true;
  opts.degraded.enabled = true;
  return opts;
}

/// A balanced 12-task / 3-processor workload (the CLI smoke scenario):
/// known schedulable, and known repairable when one processor dies.
Outcome solved_workload() {
  WorkloadSpec spec;
  spec.graph.tasks = 12;
  spec.graph.intended_processors = 3;
  spec.processors = 3;
  spec.seed = 7;
  const Problem problem = Problem::generate(spec);
  Outcome outcome = HeuristicSolver().solve(problem);
  EXPECT_TRUE(outcome.feasible());
  return outcome;
}

TEST(Degraded, AllFailuresMergesLegacyAndList) {
  // The legacy pair and the list merge into one stream sorted by
  // (at, proc); a processor only dies once — the earliest time wins.
  PerturbSpec spec;
  spec.fail_proc = 1;
  spec.fail_at = 9;
  spec.failures = {{0, 3}, {1, 5}};
  EXPECT_TRUE(spec.any_failure());
  const std::vector<ProcessorFault> all = spec.all_failures();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].proc, 0);
  EXPECT_EQ(all[0].at, 3);
  EXPECT_EQ(all[1].proc, 1);
  EXPECT_EQ(all[1].at, 5);  // the legacy t=9 entry deduplicated away
}

TEST(Degraded, FailureListAloneActivatesTheSpec) {
  PerturbSpec spec;
  EXPECT_FALSE(spec.any_failure());
  spec.failures = {{0, 0}};
  EXPECT_TRUE(spec.any_failure());
  EXPECT_TRUE(spec.active());
  const std::vector<ProcessorFault> all = spec.all_failures();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].proc, 0);
}

TEST(Degraded, SelectorExploresUnobservedCandidatesFirst) {
  MissRateSelector sel({"x", "y", "z"});
  EXPECT_EQ(sel.size(), 3);
  EXPECT_EQ(sel.pick(), 0);
  sel.observe(0, 0.5);
  EXPECT_EQ(sel.pick(), 1);
  sel.observe(1, 0.1);
  EXPECT_EQ(sel.pick(), 2);
  sel.observe(2, 0.3);
  // All observed: exploit the lowest pooled mean.
  EXPECT_EQ(sel.pick(), 1);
  EXPECT_EQ(sel.name(sel.pick()), "y");
}

TEST(Degraded, SelectorPoolsObservationsAndBreaksTiesEarlier) {
  MissRateSelector sel({"x", "y"});
  sel.observe(0, 0.2);
  sel.observe(1, 0.2);
  EXPECT_EQ(sel.pick(), 0);  // equal pooled means -> earlier candidate
  sel.observe(0, 0.8);       // pools to 0.5, y now strictly better
  EXPECT_EQ(sel.pick(), 1);
  EXPECT_DOUBLE_EQ(sel.pooled(0), 0.5);
  EXPECT_EQ(sel.observations(0), 2);
  EXPECT_EQ(sel.observations(1), 1);
}

TEST(DegradedLadder, ShedRungRecoversCapacityStarvedFailure) {
  // The whole ladder fails until rung 4: the survivor cannot host both
  // fat tasks, so the lowest-priority one is explicitly dropped and the
  // event applies instead of rejecting.
  const FatPair f = fat_pair();
  Rebalancer system =
      Rebalancer::adopt(f.graph, f.make_schedule(), degraded_options());
  const EventOutcome out = system.fail_processor(1, 2);
  EXPECT_TRUE(out.applied);
  EXPECT_EQ(out.degraded_rung, 4);
  ASSERT_EQ(out.shed.size(), 1u);
  EXPECT_EQ(out.shed[0], "t1");  // period/memory tie -> name order
  EXPECT_EQ(system.shed_tasks(), out.shed);
  EXPECT_EQ(system.graph().task_count(), 1);
  EXPECT_EQ(system.graph().task(0).name, "t2");
  EXPECT_EQ(system.alive_processor_count(), 1);
  EXPECT_LE(system.schedule().memory_on(0), 100);
}

TEST(DegradedLadder, ShedSetIsDeterministic) {
  const FatPair f = fat_pair();
  std::vector<std::string> first;
  for (int run = 0; run < 2; ++run) {
    Rebalancer system =
        Rebalancer::adopt(f.graph, f.make_schedule(), degraded_options());
    const EventOutcome out = system.fail_processor(1, 2);
    EXPECT_TRUE(out.applied);
    if (run == 0) {
      first = out.shed;
    } else {
      EXPECT_EQ(out.shed, first);
    }
  }
}

TEST(DegradedLadder, ExhaustedLadderRollsBackCompletely) {
  // max_shed = 0 removes the last rung, so the whole ladder fails — and
  // per DESIGN.md F14 the reject must leave no trace: schedule, graph,
  // failed-processor set all exactly as before.
  const FatPair f = fat_pair();
  RebalancerOptions opts = degraded_options();
  opts.degraded.max_shed = 0;
  Rebalancer system = Rebalancer::adopt(f.graph, f.make_schedule(), opts);
  const EventOutcome out = system.fail_processor(1, 2);
  EXPECT_FALSE(out.applied);
  EXPECT_FALSE(out.reject_reason.empty());
  EXPECT_EQ(out.degraded_rung, 0);
  EXPECT_EQ(system.graph().task_count(), 2);
  EXPECT_EQ(system.schedule().proc(TaskInstance{f.t2, 0}), 1);
  EXPECT_EQ(system.alive_processor_count(), 2);
  EXPECT_TRUE(system.shed_tasks().empty());
}

TEST(DegradedLadder, BackToBackFailuresKeepEveryRollbackContract) {
  // Two ProcessorFailures at the same timestamp, applied back to back:
  // each runs the full ladder against the state the previous one left —
  // the first sheds t1, the second (on the shrunken graph) sheds t2 —
  // and nothing leaks between the rungs (the regression the per-rung
  // pre-event snapshots exist for).
  TaskGraph g;
  const TaskId t1 = g.add_task("t1", 4, 1, 60);
  const TaskId t2 = g.add_task("t2", 4, 1, 60);
  const TaskId t3 = g.add_task("t3", 4, 1, 60);
  g.freeze();
  Schedule s(g, Architecture(3, /*memory_capacity=*/100), CommModel::flat(1));
  s.set_first_start(t1, 0);
  s.assign_all(t1, 0);
  s.set_first_start(t2, 0);
  s.assign_all(t2, 1);
  s.set_first_start(t3, 0);
  s.assign_all(t3, 2);

  Rebalancer system = Rebalancer::adopt(g, s, degraded_options());
  const EventOutcome first = system.fail_processor(1, 2);
  EXPECT_TRUE(first.applied);
  EXPECT_EQ(first.degraded_rung, 4);
  ASSERT_EQ(first.shed.size(), 1u);
  EXPECT_EQ(first.shed[0], "t1");
  EXPECT_EQ(system.graph().task_count(), 2);

  const EventOutcome second = system.fail_processor(2, 2);
  EXPECT_TRUE(second.applied);
  EXPECT_EQ(second.degraded_rung, 4);
  ASSERT_EQ(second.shed.size(), 1u);
  EXPECT_EQ(second.shed[0], "t2");
  // Accumulated across events, in shed order.
  EXPECT_EQ(system.shed_tasks(),
            (std::vector<std::string>{"t1", "t2"}));
  EXPECT_EQ(system.graph().task_count(), 1);
  EXPECT_EQ(system.graph().task(0).name, "t3");
  EXPECT_EQ(system.alive_processor_count(), 1);
  EXPECT_LE(system.schedule().memory_on(0), 100);
}

TEST(DegradedLadder, BackoffParksTheEventAndRetriesLater) {
  // backoff_events = 1: the infeasible repair defers instead of running
  // the ladder inline — the system is untouched while the event is
  // parked — and the re-attempt (ladder and all) resolves during the
  // next apply(), surfacing in its resolved_pending.
  const FatPair f = fat_pair();
  RebalancerOptions opts = degraded_options();
  opts.degraded.backoff_events = 1;
  Rebalancer system = Rebalancer::adopt(f.graph, f.make_schedule(), opts);

  const EventOutcome parked = system.fail_processor(1, 2);
  EXPECT_TRUE(parked.deferred);
  EXPECT_FALSE(parked.applied);
  EXPECT_FALSE(parked.reject_reason.empty());
  EXPECT_EQ(system.pending_retries(), 1);
  // Parked means untouched: the processor is not even marked failed yet.
  EXPECT_EQ(system.alive_processor_count(), 2);
  EXPECT_EQ(system.schedule().proc(TaskInstance{f.t2, 0}), 1);

  // Any subsequent event ages the queue; this benign change applies and
  // carries the expired re-attempt's outcome.
  const EventOutcome next = system.apply(
      Event{3, WcetChange{"t2", 2}});
  EXPECT_TRUE(next.applied);
  ASSERT_EQ(next.resolved_pending.size(), 1u);
  const EventOutcome& retried = next.resolved_pending[0];
  EXPECT_TRUE(retried.applied);
  EXPECT_EQ(retried.degraded_rung, 4);
  ASSERT_EQ(retried.shed.size(), 1u);
  EXPECT_EQ(retried.shed[0], "t1");
  EXPECT_EQ(system.pending_retries(), 0);
  EXPECT_EQ(system.alive_processor_count(), 1);
  EXPECT_EQ(system.graph().task_count(), 1);
}

/// Hand-built exact packing for the rung-3 scenario below: the greedy
/// whole-task repair (earliest start, then preference, then memory)
/// cannot find it, but it exists — the kind of gap a real solver closes.
class ExactPackingSolver : public Solver {
 public:
  const std::string& name() const override {
    static const std::string n = "exact-packing-stub";
    return n;
  }
  SolverCaps capabilities() const override { return {}; }
  Outcome solve(const Problem& problem) const override {
    const TaskGraph& g = problem.graph();
    Schedule sched(g, problem.architecture(), problem.comm());
    struct Slot {
      const char* task;
      ProcId proc;
      Time start;
    };
    for (const Slot& slot :
         {Slot{"a", 0, 0}, Slot{"c", 0, 1}, Slot{"b", 1, 0}, Slot{"d", 1, 1},
          Slot{"e", 1, 2}, Slot{"f", 1, 3}}) {
      const TaskId t = g.find(slot.task);
      sched.set_first_start(t, slot.start);
      sched.assign_all(t, slot.proc);
    }
    SolveStats stats;
    detail::fill_before(stats, problem.initial_schedule());
    return detail::finish_outcome(problem, std::move(stats), std::move(sched),
                                  "hand-built exact packing");
  }
};

TEST(DegradedLadder, ResolveRungCommitsTheConfiguredSolver) {
  // Memory bin-packing where the greedy rungs all fail: after P3 dies,
  // {60,40,40,30,15,15} must pack into two 100-capacity bins. Greedy
  // (earliest start, memory tie-break) strands the last 15 on both
  // processors at 105/110, but the exact packing {60,40} / {40,30,15,15}
  // exists — rung 3 adopts it from the configured solver.
  TaskGraph g;
  const TaskId a = g.add_task("a", 4, 1, 60);
  const TaskId b = g.add_task("b", 4, 1, 40);
  const TaskId c = g.add_task("c", 4, 1, 40);
  const TaskId d = g.add_task("d", 4, 1, 30);
  const TaskId e = g.add_task("e", 4, 1, 15);
  const TaskId fr = g.add_task("f", 4, 1, 15);
  g.freeze();
  Schedule s(g, Architecture(3, /*memory_capacity=*/100), CommModel::flat(1));
  s.set_first_start(a, 0);
  s.assign_all(a, 0);
  s.set_first_start(d, 1);
  s.assign_all(d, 0);
  s.set_first_start(b, 0);
  s.assign_all(b, 1);
  s.set_first_start(c, 1);
  s.assign_all(c, 1);
  s.set_first_start(e, 0);
  s.assign_all(e, 2);
  s.set_first_start(fr, 1);
  s.assign_all(fr, 2);

  RebalancerOptions opts = degraded_options();
  opts.degraded.resolver = std::make_shared<ExactPackingSolver>();
  Rebalancer system = Rebalancer::adopt(g, s, opts);
  const EventOutcome out = system.fail_processor(2, 1);
  EXPECT_TRUE(out.applied);
  EXPECT_EQ(out.degraded_rung, 3);
  EXPECT_TRUE(out.shed.empty());
  EXPECT_EQ(system.graph().task_count(), 6);
  EXPECT_EQ(system.schedule().memory_on(0), 100);
  EXPECT_EQ(system.schedule().memory_on(1), 100);
  EXPECT_EQ(system.schedule().memory_on(2), 0);
  // Without the resolver the same event must shed instead.
  Rebalancer bare = Rebalancer::adopt(g, s, degraded_options());
  const EventOutcome fallback = bare.fail_processor(2, 1);
  EXPECT_TRUE(fallback.applied);
  EXPECT_EQ(fallback.degraded_rung, 4);
  EXPECT_FALSE(fallback.shed.empty());
}

TEST(DegradedLadder, HarnessRecoversConcurrentFailuresThroughTheLadder) {
  // End to end: two concurrent failures on the solved workload, degraded
  // mode on — every failure repairs (one through a deep rung), the
  // per-failure outcomes are reported in injection order, and the run is
  // deterministic.
  const Outcome outcome = solved_workload();
  RobustnessOptions rob;
  rob.sim.hyperperiods = 4;
  rob.replications = 2;
  rob.perturb.failures = {{0, 3}, {1, 9}};
  rob.repair.degraded.enabled = true;
  const RobustnessReport report = run_robustness(*outcome.schedule, rob);
  EXPECT_TRUE(report.failure_injected);
  EXPECT_TRUE(report.recovered);
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_EQ(report.failures[0].proc, 0);
  EXPECT_EQ(report.failures[0].at, 3);
  EXPECT_TRUE(report.failures[0].repaired);
  EXPECT_EQ(report.failures[1].proc, 1);
  EXPECT_EQ(report.failures[1].at, 9);
  EXPECT_TRUE(report.failures[1].repaired);
  // The second failure leaves one survivor: deep-rung recovery.
  EXPECT_GT(report.failures[1].degraded_rung, 0);
  EXPECT_GT(report.recovery_latency, 0);
  // recovery_latency rolls up the slowest repair.
  Time worst = 0;
  for (const FailureOutcome& fo : report.failures) {
    if (fo.recovery_latency > worst) worst = fo.recovery_latency;
  }
  EXPECT_EQ(report.recovery_latency, worst);

  const RobustnessReport again = run_robustness(*outcome.schedule, rob);
  ASSERT_EQ(again.failures.size(), report.failures.size());
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    EXPECT_EQ(again.failures[i].repaired, report.failures[i].repaired);
    EXPECT_EQ(again.failures[i].degraded_rung,
              report.failures[i].degraded_rung);
    EXPECT_EQ(again.failures[i].shed, report.failures[i].shed);
  }
  ASSERT_EQ(again.replications.size(), report.replications.size());
  for (std::size_t r = 0; r < report.replications.size(); ++r) {
    EXPECT_DOUBLE_EQ(again.replications[r].miss_rate,
                     report.replications[r].miss_rate);
  }
}

TEST(DegradedLadder, UnrepairedFailureLeavesRecoveredFalse) {
  // Multi-failure semantics: recovered means *every* failure repaired.
  // The fat pair cannot survive a failure without shedding, and the
  // harness's repair has the ladder off — so the report must say so.
  const FatPair f = fat_pair();
  const Schedule s = f.make_schedule();
  RobustnessOptions rob;
  rob.sim.hyperperiods = 2;
  rob.replications = 1;
  rob.perturb.failures = {{1, 2}};
  rob.repair.balance.enforce_memory_capacity = true;
  const RobustnessReport report = run_robustness(s, rob);
  EXPECT_TRUE(report.failure_injected);
  EXPECT_FALSE(report.recovered);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_FALSE(report.failures[0].repaired);
  EXPECT_EQ(report.failures[0].recovery_latency, 0);
  EXPECT_FALSE(report.failures[0].detail.empty());
}

TEST(DegradedLadder, StalenessPreservesFeasibilityDecisions) {
  // F29: frozen memory aggregates may only change placement *quality* —
  // the degraded run with staleness must still recover every failure.
  const Outcome outcome = solved_workload();
  RobustnessOptions rob;
  rob.sim.hyperperiods = 4;
  rob.replications = 1;
  rob.perturb.failures = {{0, 3}};
  rob.repair.degraded.enabled = true;
  rob.repair.staleness_events = 3;
  const RobustnessReport report = run_robustness(*outcome.schedule, rob);
  EXPECT_TRUE(report.recovered);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_TRUE(report.failures[0].repaired);
}

}  // namespace
}  // namespace lbmem
