/// ScenarioRunner + report/solve rendering + the online engine's
/// Solver-backed full-resolve mode: sweeps are deterministic modulo wall
/// time, aggregates match the cells, unknown names fail before generation,
/// and a facade solver driving the Rebalancer's full resolve keeps every
/// post-event schedule valid.

#include <gtest/gtest.h>

#include <memory>

#include "lbmem/api/scenario.hpp"
#include "lbmem/api/solvers.hpp"
#include "lbmem/gen/event_trace.hpp"
#include "lbmem/online/runner.hpp"
#include "lbmem/report/solve.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/validate/validator.hpp"

namespace lbmem {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.suite.params.tasks = 12;
  spec.suite.params.intended_processors = 2;
  spec.suite.processors = 2;
  spec.suite.comm_cost = 2;
  spec.suite.count = 2;
  spec.suite.base_seed = 7;
  return spec;
}

TEST(ApiScenario, SweepIsDeterministicModuloWallTime) {
  ScenarioSpec spec = small_spec();
  spec.solvers = {"initial", "heuristic-lex", "memory-greedy", "ga",
                  "dp-partition"};
  const ScenarioRunner runner;
  const ScenarioReport first = runner.run(spec);
  const ScenarioReport second = runner.run(spec);
  ASSERT_EQ(first.cells.size(), second.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_EQ(first.cells[i].solver, second.cells[i].solver);
    EXPECT_EQ(first.cells[i].seed, second.cells[i].seed);
    EXPECT_EQ(first.cells[i].feasible, second.cells[i].feasible);
    EXPECT_EQ(first.cells[i].makespan, second.cells[i].makespan);
    EXPECT_EQ(first.cells[i].max_memory, second.cells[i].max_memory);
    EXPECT_EQ(first.cells[i].gain, second.cells[i].gain);
    EXPECT_EQ(first.cells[i].detail, second.cells[i].detail);
  }
  // The timing-free renderings are byte-identical across runs.
  EXPECT_EQ(summarize_scenario(first, /*include_timing=*/false),
            summarize_scenario(second, /*include_timing=*/false));
  EXPECT_EQ(scenario_report_to_json(first, /*include_timing=*/false),
            scenario_report_to_json(second, /*include_timing=*/false));
}

TEST(ApiScenario, SummaryAggregatesMatchTheCells) {
  ScenarioSpec spec = small_spec();
  spec.solvers = {"heuristic-lex", "round-robin"};
  const ScenarioReport report = ScenarioRunner().run(spec);
  ASSERT_EQ(report.summary.size(), 2u);
  for (const ScenarioSolverSummary& row : report.summary) {
    double makespan = 0;
    int solved = 0;
    for (const ScenarioCell& cell : report.cells) {
      if (cell.solver != row.solver || !cell.feasible) continue;
      makespan += static_cast<double>(cell.makespan);
      ++solved;
    }
    EXPECT_EQ(row.solved, solved) << row.solver;
    if (solved > 0) {
      EXPECT_DOUBLE_EQ(row.mean_makespan, makespan / solved) << row.solver;
    }
  }
}

TEST(ApiScenario, SummaryWallTimeAveragesOverAllInstances) {
  // Wall time is averaged over every instance, solved or not: a solver
  // that burns time before declaring infeasible must not look free. The
  // 3-processor suite makes dp-partition (machines_exact = 2) infeasible
  // on every instance, so its summary row has solved == 0 but still a
  // wall mean backed by all of its cells.
  ScenarioSpec spec = small_spec();
  spec.suite.params.intended_processors = 3;
  spec.suite.processors = 3;
  spec.solvers = {"heuristic-lex", "dp-partition"};
  const ScenarioReport report = ScenarioRunner().run(spec);
  ASSERT_GT(report.instances, 0);
  ASSERT_EQ(report.summary.size(), 2u);
  for (const ScenarioSolverSummary& row : report.summary) {
    double wall = 0;
    int cells = 0;
    for (const ScenarioCell& cell : report.cells) {
      if (cell.solver != row.solver) continue;
      wall += cell.wall_seconds;
      ++cells;
    }
    EXPECT_EQ(cells, report.instances) << row.solver;
    EXPECT_DOUBLE_EQ(row.mean_wall_seconds, wall / report.instances)
        << row.solver;
  }
  EXPECT_EQ(report.summary[1].solver, "dp-partition");
  EXPECT_EQ(report.summary[1].solved, 0);
}

TEST(ApiScenario, CellsAreInstanceMajorOverTheSolverSubset) {
  ScenarioSpec spec = small_spec();
  spec.solvers = {"initial", "heuristic-lex"};
  const ScenarioReport report = ScenarioRunner().run(spec);
  ASSERT_EQ(report.instances, 2);
  ASSERT_EQ(report.cells.size(), 4u);
  EXPECT_EQ(report.cells[0].solver, "initial");
  EXPECT_EQ(report.cells[1].solver, "heuristic-lex");
  EXPECT_EQ(report.cells[0].seed, report.cells[1].seed);
  EXPECT_EQ(report.cells[2].solver, "initial");
}

TEST(ApiScenario, EmptySubsetRunsEveryRegisteredSolver) {
  const ScenarioSpec spec = small_spec();
  const ScenarioReport report = ScenarioRunner().run(spec);
  EXPECT_EQ(report.cells.size(),
            static_cast<std::size_t>(report.instances) *
                SolverRegistry::builtin().size());
}

TEST(ApiScenario, PerturbedSweepIsThreadCountInvariant) {
  // Robustness replications attach to each feasible cell; the rendered
  // report (timing off) must be byte-identical for every thread count —
  // the PR-6 determinism contract extended to the perturbed sweep.
  ScenarioSpec spec = small_spec();
  spec.solvers = {"initial", "heuristic-lex", "memory-greedy"};
  spec.replications = 3;
  spec.suite.perturb.wcet_jitter = 0.5;
  spec.suite.perturb.comm_jitter = 0.5;
  spec.suite.perturb.bus_fifo = true;
  spec.threads = 1;
  const ScenarioReport sequential = ScenarioRunner().run(spec);
  spec.threads = 8;
  const ScenarioReport threaded = ScenarioRunner().run(spec);
  EXPECT_EQ(scenario_report_to_json(sequential, /*include_timing=*/false),
            scenario_report_to_json(threaded, /*include_timing=*/false));
  // The robustness columns are populated, not vacuously equal.
  bool any_perturbed = false;
  for (const ScenarioCell& cell : sequential.cells) {
    if (!cell.perturbed) continue;
    any_perturbed = true;
    EXPECT_EQ(cell.rep_miss_rates.size(), 3u);
  }
  EXPECT_TRUE(any_perturbed);
}

TEST(ApiScenario, SharedNoiseStreamIsSolverFair) {
  // The noise seed derives from the workload seed, not the solver, so the
  // same (instance, replication) draws identical overruns under every
  // solver: a pure re-labeling of the same schedule must score the same.
  ScenarioSpec spec = small_spec();
  spec.solvers = {"initial", "initial"};
  spec.replications = 2;
  spec.suite.perturb.wcet_jitter = 1.0;
  const ScenarioReport report = ScenarioRunner().run(spec);
  ASSERT_EQ(report.summary.size(), 2u);
  EXPECT_DOUBLE_EQ(report.summary[0].miss_p50, report.summary[1].miss_p50);
  EXPECT_DOUBLE_EQ(report.summary[0].mean_span_inflation,
                   report.summary[1].mean_span_inflation);
}

TEST(ApiScenario, AdaptiveRowExploresThenMirrorsTheBestCandidate) {
  // DESIGN.md F30: the virtual policy explores unobserved candidates in
  // spec order, then exploits the best pooled miss rate; every pick
  // mirrors an existing cell, so its aggregates are reachable outcomes.
  ScenarioSpec spec = small_spec();
  spec.suite.count = 4;
  spec.solvers = {"initial", "heuristic-lex", "memory-greedy"};
  spec.replications = 2;
  spec.suite.perturb.wcet_jitter = 0.75;
  spec.adaptive = true;
  const ScenarioReport report = ScenarioRunner().run(spec);
  ASSERT_TRUE(report.adaptive);
  EXPECT_EQ(report.adaptive_summary.solver, "adaptive");
  ASSERT_EQ(report.adaptive_picks.size(),
            static_cast<std::size_t>(report.instances));
  // Exploration first: the opening picks walk the spec order.
  EXPECT_EQ(report.adaptive_picks[0], "initial");
  EXPECT_EQ(report.adaptive_picks[1], "heuristic-lex");
  EXPECT_EQ(report.adaptive_picks[2], "memory-greedy");
  // Every pick names a configured candidate.
  for (const std::string& pick : report.adaptive_picks) {
    EXPECT_TRUE(pick == "initial" || pick == "heuristic-lex" ||
                pick == "memory-greedy")
        << pick;
  }
  EXPECT_LE(report.adaptive_summary.solved, report.instances);
}

TEST(ApiScenario, AdaptiveRowIsThreadCountInvariant) {
  // The adaptive post-pass is a sequential fold over already-solved
  // cells: picks, summary row, and JSON must not depend on thread count.
  ScenarioSpec spec = small_spec();
  spec.suite.count = 3;
  spec.solvers = {"initial", "heuristic-lex", "memory-greedy"};
  spec.replications = 2;
  spec.suite.perturb.wcet_jitter = 0.5;
  spec.adaptive = true;
  spec.threads = 1;
  const ScenarioReport sequential = ScenarioRunner().run(spec);
  spec.threads = 8;
  const ScenarioReport threaded = ScenarioRunner().run(spec);
  EXPECT_EQ(sequential.adaptive_picks, threaded.adaptive_picks);
  EXPECT_EQ(scenario_report_to_json(sequential, /*include_timing=*/false),
            scenario_report_to_json(threaded, /*include_timing=*/false));
}

TEST(ApiScenario, UnknownSolverNameFailsBeforeGeneration) {
  ScenarioSpec spec = small_spec();
  spec.solvers = {"heuristic-lex", "does-not-exist"};
  EXPECT_THROW(ScenarioRunner().run(spec), Error);
}

TEST(ApiFullResolve, FacadeSolverDrivesTheFullResolveValidly) {
  // Generated system + trace replayed with the balance stage delegated to
  // a facade heuristic: the online acceptance bar (zero violations after
  // every applied event) must hold in this mode too.
  RandomGraphParams params;
  params.tasks = 24;
  params.intended_processors = 3;
  auto graph = std::make_unique<TaskGraph>(random_task_graph(params, 5));
  const Architecture arch(3);
  Schedule before =
      build_initial_schedule(*graph, arch, CommModel::flat(2));

  RebalancerOptions options;
  options.incremental = false;
  options.full_resolver = SolverRegistry::builtin().require("heuristic-lex");

  EventTraceParams trace_params;
  trace_params.events = 12;
  trace_params.max_failures = 1;
  const EventTrace trace = random_event_trace(*graph, arch, trace_params, 9);

  Rebalancer system(std::move(graph), std::move(before), options);
  const OnlineReport report = OnlineRunner().replay(system, trace);
  EXPECT_EQ(report.total_violations, 0);
  EXPECT_GE(report.applied, static_cast<int>(trace.size()) / 2);
}

TEST(ApiFullResolve, DiscardedResolverOutcomesAreObservable) {
  // A from-scratch whole-task resolver re-places everything, so after a
  // ProcessorFailure its outcomes re-populate the failed processor and
  // are discarded — visibly (resolver_discarded), not as ordinary
  // infeasibility.
  RandomGraphParams params;
  params.tasks = 16;
  params.intended_processors = 3;
  auto graph = std::make_unique<TaskGraph>(random_task_graph(params, 11));
  Schedule before =
      build_initial_schedule(*graph, Architecture(3), CommModel::flat(2));
  const std::string victim = graph->task(0).name;
  const Time old_wcet = graph->task(0).wcet;

  RebalancerOptions options;
  options.incremental = false;
  options.full_resolver = SolverRegistry::builtin().require("round-robin");
  Rebalancer system(std::move(graph), std::move(before), options);

  Event failure;
  failure.payload = ProcessorFailure{2};
  const EventOutcome failed = system.apply(failure);
  ASSERT_TRUE(failed.applied) << failed.reject_reason;

  Event wcet;
  wcet.payload = WcetChange{victim, old_wcet + 1};
  const EventOutcome outcome = system.apply(wcet);
  ASSERT_TRUE(outcome.applied) << outcome.reject_reason;
  EXPECT_TRUE(outcome.resolver_discarded);
  EXPECT_TRUE(outcome.balance_fell_back);
  EXPECT_TRUE(validate(system.schedule()).ok());
  // The failed processor hosts nothing despite the resolver's attempts.
  EXPECT_TRUE(system.schedule().instances_on(2).empty());
}

TEST(ApiFullResolve, InstanceGranularResolverCanMoveInstances) {
  // A WcetChange resolved through the facade heuristic leaves a valid
  // schedule whose makespan the resolver has had a chance to improve.
  RandomGraphParams params;
  params.tasks = 16;
  params.intended_processors = 3;
  auto graph = std::make_unique<TaskGraph>(random_task_graph(params, 11));
  Schedule before =
      build_initial_schedule(*graph, Architecture(3), CommModel::flat(2));
  const std::string victim = graph->task(0).name;
  const Time old_wcet = graph->task(0).wcet;

  RebalancerOptions options;
  options.incremental = false;
  options.full_resolver = SolverRegistry::builtin().require("heuristic-lex");
  Rebalancer system(std::move(graph), std::move(before), options);

  Event event;
  event.payload = WcetChange{victim, old_wcet + 1};
  const EventOutcome outcome = system.apply(event);
  ASSERT_TRUE(outcome.applied) << outcome.reject_reason;
  EXPECT_TRUE(validate(system.schedule()).ok());
}

}  // namespace
}  // namespace lbmem
