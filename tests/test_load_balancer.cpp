/// Unit tests for the load balancer beyond the paper walkthrough
/// (lbmem/lb/load_balancer.hpp): options, degenerate systems, memory
/// capacity enforcement, policy variants.

#include <gtest/gtest.h>

#include "lbmem/util/check.hpp"
#include "lbmem/gen/paper_example.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/validate/validator.hpp"

namespace lbmem {
namespace {

TEST(LoadBalancer, SingleTaskSingleProcessor) {
  TaskGraph g;
  g.add_task("solo", 8, 2, 5);
  g.freeze();
  Schedule s(g, Architecture(1), CommModel::flat(1));
  s.set_first_start(0, 0);
  s.assign_all(0, 0);
  const BalanceResult result = LoadBalancer().balance(s);
  validate_or_throw(result.schedule);
  EXPECT_EQ(result.stats.gain_total, 0);
  EXPECT_EQ(result.schedule.proc(TaskInstance{0, 0}), 0);
}

TEST(LoadBalancer, IndependentTasksSpreadByMemory) {
  // Four independent equal tasks initially crammed onto P1 spread across
  // both processors (memory-usage goal).
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task("t" + std::to_string(i), 8, 1, 4);
  }
  g.freeze();
  Schedule s(g, Architecture(2), CommModel::flat(1));
  for (TaskId t = 0; t < 4; ++t) {
    s.set_first_start(t, 2 * t);
    s.assign_all(t, 0);
  }
  validate_or_throw(s);
  const BalanceResult result = LoadBalancer().balance(s);
  validate_or_throw(result.schedule);
  EXPECT_EQ(result.schedule.memory_on(0), 8);
  EXPECT_EQ(result.schedule.memory_on(1), 8);
  EXPECT_LE(result.schedule.makespan(), s.makespan());
}

TEST(LoadBalancer, GainPullsLateTaskEarlier) {
  // u on P1 feeds v on P2 with slack >= C; moving v's block to P1 removes
  // the communication and lets v start earlier.
  TaskGraph g;
  const TaskId u = g.add_task("u", 12, 1, 1);
  const TaskId v = g.add_task("v", 12, 1, 1);
  g.add_dependence(u, v);
  g.freeze();
  Schedule s(g, Architecture(2), CommModel::flat(3));
  s.set_first_start(u, 0);
  s.set_first_start(v, 4);  // 1 (end of u) + 3 (comm)
  s.assign_all(u, 0);
  s.assign_all(v, 1);
  validate_or_throw(s);

  BalanceOptions options;
  options.policy = CostPolicy::GainOnly;
  const BalanceResult result = LoadBalancer(options).balance(s);
  validate_or_throw(result.schedule);
  EXPECT_EQ(result.schedule.proc(TaskInstance{v, 0}), 0);
  EXPECT_EQ(result.schedule.first_start(v), 1);
  EXPECT_EQ(result.stats.gain_total, 3);
}

TEST(LoadBalancer, MaxGainZeroKeepsStarts) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  BalanceOptions options;
  options.max_gain = 0;
  const BalanceResult result = LoadBalancer(options).balance(s);
  validate_or_throw(result.schedule);
  EXPECT_EQ(result.stats.gain_total, 0);
  EXPECT_EQ(result.schedule.makespan(), 15);
  // Memory spreading still happens.
  EXPECT_LT(result.schedule.max_memory(), 16);
}

TEST(LoadBalancer, MemoryCapacityRespected) {
  // Capacity 8 on each processor: the balancer must not move more than
  // 8 units of block memory anywhere.
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task("t" + std::to_string(i), 8, 1, 4);
  }
  g.freeze();
  Schedule s(g, Architecture(2, /*memory_capacity=*/8), CommModel::flat(1));
  for (TaskId t = 0; t < 4; ++t) {
    s.set_first_start(t, 2 * t);
    s.assign_all(t, 0);
  }
  BalanceOptions options;
  options.enforce_memory_capacity = true;
  const BalanceResult result = LoadBalancer(options).balance(s);
  for (ProcId p = 0; p < 2; ++p) {
    EXPECT_LE(result.schedule.memory_on(p), 8);
  }
}

TEST(LoadBalancer, BlockConditionCanBeDisabled) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  BalanceOptions options;
  options.enforce_block_condition = false;
  options.record_trace = true;
  const BalanceResult result = LoadBalancer(options).balance(s);
  validate_or_throw(result.schedule);
  // Without Eq. (4), P1 becomes feasible for [d-e] in step 7.
  const StepRecord& step7 = result.trace.back();
  EXPECT_TRUE(step7.candidates[0].feasible);
}

TEST(LoadBalancer, PaperFormulaDivergesFromExample) {
  // Under the smoothed Eq. (5), step 3 sends [b1-c1] to the empty P3 and
  // the gain is lost — the makespan stays 15 (DESIGN.md F1).
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  BalanceOptions options;
  options.policy = CostPolicy::PaperFormula;
  const BalanceResult result = LoadBalancer(options).balance(s);
  validate_or_throw(result.schedule);
  EXPECT_EQ(result.schedule.makespan(), 15);
}

TEST(LoadBalancer, MemoryOnlyPolicySpreadsBestMemory) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  BalanceOptions options;
  options.policy = CostPolicy::MemoryOnly;
  const BalanceResult result = LoadBalancer(options).balance(s);
  validate_or_throw(result.schedule);
  EXPECT_LE(result.schedule.max_memory(), s.max_memory());
}

TEST(LoadBalancer, StatsAreConsistent) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  const BalanceResult r = LoadBalancer().balance(s);
  EXPECT_EQ(r.stats.makespan_before, 15);
  EXPECT_EQ(r.stats.makespan_after, r.schedule.makespan());
  EXPECT_EQ(r.stats.gain_total,
            r.stats.makespan_before - r.stats.makespan_after);
  EXPECT_EQ(r.stats.memory_before.size(), 3u);
  EXPECT_EQ(r.stats.memory_after.size(), 3u);
  Mem total_before = 0;
  Mem total_after = 0;
  for (const Mem m : r.stats.memory_before) total_before += m;
  for (const Mem m : r.stats.memory_after) total_after += m;
  EXPECT_EQ(total_before, total_after) << "memory is conserved";
  EXPECT_EQ(r.stats.blocks_total, 7);
  EXPECT_EQ(r.stats.blocks_category1, 3);
  EXPECT_GE(r.stats.wall_seconds, 0.0);
}

TEST(LoadBalancer, TraceOnlyWhenRequested) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  EXPECT_TRUE(LoadBalancer().balance(s).trace.empty());
  BalanceOptions options;
  options.record_trace = true;
  EXPECT_FALSE(LoadBalancer(options).balance(s).trace.empty());
}

TEST(LoadBalancer, RejectsIncompleteSchedule) {
  const TaskGraph g = paper_example_graph();
  Schedule s(g, paper_example_architecture(), paper_example_comm());
  EXPECT_THROW(LoadBalancer().balance(s), PreconditionError);
}

TEST(LoadBalancer, IdleFractionNeverWorseOnAverage) {
  // Balancing never increases the makespan, so the same work in a shorter
  // span cannot increase total idle time within the hyper-period.
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  const BalanceResult r = LoadBalancer().balance(s);
  Time busy_before = 0;
  Time busy_after = 0;
  for (ProcId p = 0; p < 3; ++p) {
    busy_before += s.busy_on(p);
    busy_after += r.schedule.busy_on(p);
  }
  EXPECT_EQ(busy_before, busy_after);
}

}  // namespace
}  // namespace lbmem
