/// Determinism contract of the metrics pipeline (DESIGN.md F25): with the
/// "timing" subtree stripped, the emitted metrics JSON is byte-identical
/// across thread counts and across repeated runs — for the balancer's
/// parallel destination scan, the scenario sweep, and the online engine.

#include <gtest/gtest.h>

#include <string>

#include "lbmem/api/problem.hpp"
#include "lbmem/api/scenario.hpp"
#include "lbmem/api/solvers.hpp"
#include "lbmem/gen/event_trace.hpp"
#include "lbmem/obs/metrics.hpp"
#include "lbmem/online/runner.hpp"
#include "lbmem/report/stats.hpp"

namespace lbmem {
namespace {

WorkloadSpec small_workload() {
  WorkloadSpec spec;
  spec.graph.tasks = 16;
  spec.graph.intended_processors = 3;
  spec.processors = 3;
  spec.seed = 7;
  return spec;
}

/// Deterministic-class view of a run: the timing subtree is exactly what
/// the contract excludes.
std::string deterministic_json(const obs::Registry& reg) {
  return metrics_to_json(reg.snapshot(), /*include_timing=*/false);
}

TEST(ObsDeterminism, BalancerMetricsIdenticalAcrossThreadCounts) {
  const Problem problem = Problem::generate(small_workload());

  std::string reference;
  for (int threads : {1, 2, 8}) {
    obs::Registry reg;
    BalanceOptions options;
    options.record_trace = false;
    options.threads = threads;
    options.metrics = &reg;
    const Outcome outcome = HeuristicSolver(options).solve(problem);
    ASSERT_TRUE(outcome.feasible());
    const std::string json = deterministic_json(reg);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "threads=" << threads;
    }
  }
  // The timing subtree exists and is allowed to differ — but the
  // deterministic view above must not contain it.
  EXPECT_EQ(reference.find("\"timing\""), std::string::npos);
  EXPECT_NE(reference.find("lb.balance_runs"), std::string::npos);
}

TEST(ObsDeterminism, ScenarioMetricsIdenticalAcrossThreadCounts) {
  std::string reference;
  for (int threads : {1, 4}) {
    obs::Registry reg;
    ScenarioSpec spec;
    spec.suite.params.tasks = 12;
    spec.suite.params.intended_processors = 2;
    spec.suite.processors = 2;
    spec.suite.base_seed = 7;
    spec.suite.count = 2;
    spec.solvers = {"heuristic-lex", "memory-greedy"};
    spec.threads = threads;
    spec.metrics = &reg;
    const ScenarioReport report = ScenarioRunner().run(spec);
    ASSERT_GT(report.instances, 0);
    const std::string json = deterministic_json(reg);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "threads=" << threads;
    }
  }
  EXPECT_NE(reference.find("compare.cells"), std::string::npos);
}

TEST(ObsDeterminism, OnlineMetricsIdenticalAcrossRuns) {
  const Problem problem = Problem::generate(small_workload());
  const Outcome outcome = HeuristicSolver().solve(problem);
  ASSERT_TRUE(outcome.feasible());

  EventTraceParams params;
  params.events = 8;
  const EventTrace trace = random_event_trace(
      problem.graph(), outcome.schedule->architecture(), params, 5);

  std::string reference;
  for (int run = 0; run < 2; ++run) {
    obs::Registry reg;
    RebalancerOptions options;
    options.metrics = &reg;
    Rebalancer system =
        Rebalancer::adopt(problem.graph(), *outcome.schedule, options);
    const OnlineReport report = OnlineRunner().replay(system, trace);
    ASSERT_EQ(report.total_violations, 0);
    const std::string json = deterministic_json(reg);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "run=" << run;
    }
  }
  EXPECT_NE(reference.find("online.events_applied"), std::string::npos);
  // The per-event latency histogram is wall clock: it must sit in the
  // stripped timing subtree, never in the deterministic view.
  EXPECT_EQ(reference.find("online.repair_latency_us"), std::string::npos);
}

}  // namespace
}  // namespace lbmem
