/// Tests for obs/metrics.hpp: the histogram's nearest-rank percentile
/// contract (exact below 64, bounded overestimate above), merge
/// associativity, and the registry's shard semantics (counter sum, gauge
/// max, idempotent name-keyed registration, cross-thread merging).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "lbmem/obs/metrics.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem::obs {
namespace {

TEST(ObsMetrics, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.percentile(100), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(ObsMetrics, OneSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.percentile(1), 42);
  EXPECT_EQ(h.percentile(50), 42);
  EXPECT_EQ(h.percentile(99), 42);
  EXPECT_EQ(h.percentile(100), 42);
}

TEST(ObsMetrics, PercentilesAreExactNearestRankBelow64) {
  // Values 0..63 land in width-1 buckets, so the reported percentile IS
  // the nearest-rank order statistic.
  LatencyHistogram h;
  std::vector<std::int64_t> values;
  for (std::int64_t v = 1; v <= 50; ++v) values.push_back(v);
  for (std::int64_t v : values) h.record(v);
  // Nearest rank: the value at 1-based rank ceil(pct/100 * n).
  const auto nearest_rank = [&](double pct) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(pct / 100.0 * values.size())));
    return values[rank - 1];  // values are sorted 1..50
  };
  for (double pct : {1.0, 10.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(pct), nearest_rank(pct)) << "pct=" << pct;
  }
}

TEST(ObsMetrics, LargeValuePercentileOverestimatesByAtMostOneSubBucket) {
  // One big sample: the reported p100 must be >= the sample and within a
  // 1/32 relative overestimate (the sub-bucket width), capped at max().
  for (std::int64_t v : {100LL, 1000LL, 123456LL, 1LL << 40}) {
    LatencyHistogram h;
    h.record(v);
    const std::int64_t p = h.percentile(100);
    EXPECT_GE(p, 0);
    EXPECT_LE(p, v);  // percentile() caps at the exact max
    EXPECT_EQ(h.max(), v);
    // Without the cap the bucket edge overestimates by <= v/32; with the
    // cap the answer is exact here.
    EXPECT_EQ(p, v);
  }
  // Two samples in distinct buckets: p50 reports the lower sample's bucket
  // edge, still within 1/32 of the true value.
  LatencyHistogram h;
  h.record(1000);
  h.record(1000000);
  const std::int64_t p50 = h.percentile(50);
  EXPECT_GE(p50, 1000);
  EXPECT_LE(p50, 1000 + 1000 / 32 + 1);
}

TEST(ObsMetrics, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(100), 0);
}

TEST(ObsMetrics, MergeIsAssociativeAndCommutative) {
  const auto fill = [](LatencyHistogram& h, std::int64_t seed) {
    for (std::int64_t i = 0; i < 100; ++i) {
      h.record((seed * 2654435761LL + i * 97) % 100000);
    }
  };
  LatencyHistogram a, b, c;
  fill(a, 1);
  fill(b, 2);
  fill(c, 3);

  // (a + b) + c
  LatencyHistogram left = a;
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  LatencyHistogram right = b;
  right.merge(c);
  LatencyHistogram right2 = a;
  right2.merge(right);
  // c + b + a (commuted)
  LatencyHistogram commuted = c;
  commuted.merge(b);
  commuted.merge(a);

  EXPECT_TRUE(left == right2);
  EXPECT_TRUE(left == commuted);
  EXPECT_EQ(left.count(), 300);
}

TEST(ObsMetrics, MergeWithEmptyIsIdentity) {
  LatencyHistogram a;
  a.record(7);
  a.record(70000);
  LatencyHistogram empty;
  LatencyHistogram merged = a;
  merged.merge(empty);
  EXPECT_TRUE(merged == a);
  LatencyHistogram other;
  other.merge(a);
  EXPECT_TRUE(other == a);
}

TEST(ObsMetrics, RegistryCountsGaugesAndRecords) {
  Registry reg;
  const MetricId hits = reg.counter("hits");
  const MetricId peak = reg.gauge("peak");
  const MetricId lat = reg.histogram("latency");
  reg.add(hits);
  reg.add(hits, 4);
  reg.raise(peak, 10);
  reg.raise(peak, 3);  // lower: the high watermark stays
  reg.record(lat, 5);
  reg.record(lat, 15);

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  // Snapshot is name-sorted.
  EXPECT_EQ(snap.entries[0].name, "hits");
  EXPECT_EQ(snap.entries[1].name, "latency");
  EXPECT_EQ(snap.entries[2].name, "peak");
  EXPECT_EQ(snap.find("hits")->value, 5);
  EXPECT_EQ(snap.find("peak")->value, 10);
  EXPECT_EQ(snap.find("latency")->histogram.count(), 2);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(ObsMetrics, RegistrationIsIdempotentByName) {
  Registry reg;
  const MetricId first = reg.counter("lb.runs");
  const MetricId again = reg.counter("lb.runs");
  EXPECT_EQ(first.slot, again.slot);
  reg.add(first);
  reg.add(again);
  EXPECT_EQ(reg.snapshot().find("lb.runs")->value, 2);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsMetrics, KindOrClassMismatchThrows) {
  Registry reg;
  reg.counter("x", MetricClass::Deterministic);
  EXPECT_THROW(reg.histogram("x"), PreconditionError);
  EXPECT_THROW(reg.counter("x", MetricClass::Timing), PreconditionError);
}

TEST(ObsMetrics, CrossThreadShardsMergeDeterministically) {
  Registry reg;
  const MetricId total = reg.counter("total");
  const MetricId high = reg.gauge("high");
  const MetricId lat = reg.histogram("lat");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add(total);
        reg.raise(high, t * kPerThread + i);
        reg.record(lat, i % 128);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("total")->value, kThreads * kPerThread);
  EXPECT_EQ(snap.find("high")->value, kThreads * kPerThread - 1);
  EXPECT_EQ(snap.find("lat")->histogram.count(), kThreads * kPerThread);

  // The merged histogram equals a sequential recording of the same
  // multiset — shard merging is order-free.
  LatencyHistogram expected;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) expected.record(i % 128);
  }
  EXPECT_TRUE(snap.find("lat")->histogram == expected);
}

}  // namespace
}  // namespace lbmem::obs
