/// Unit tests for destination-selection policies (lbmem/lb/cost_policy.hpp),
/// including the Eq.-(5) inconsistency cases from DESIGN.md F1.

#include <gtest/gtest.h>

#include "lbmem/util/check.hpp"
#include "lbmem/lb/cost_policy.hpp"

namespace lbmem {
namespace {

DestinationScore candidate(ProcId proc, Time gain, Mem moved_mem,
                           bool is_home, CostPolicy policy) {
  DestinationScore s;
  s.proc = proc;
  s.feasible = true;
  s.gain = gain;
  s.moved_mem = moved_mem;
  s.is_home = is_home;
  s.lambda = lambda_value(policy, gain, moved_mem);
  return s;
}

TEST(LambdaValue, PaperLiteralFirstCase) {
  // Eq. (5): λ = G when nothing was moved to the processor.
  const Lambda l = lambda_value(CostPolicy::PaperLiteral, 2, 0);
  EXPECT_EQ(l.num, 2);
  EXPECT_EQ(l.den, 1);
}

TEST(LambdaValue, PaperLiteralSecondCase) {
  const Lambda l = lambda_value(CostPolicy::PaperLiteral, 1, 4);
  EXPECT_EQ(l.num, 2);
  EXPECT_EQ(l.den, 4);
}

TEST(LambdaValue, SmoothedFormula) {
  // (G+1)/max(Σm,1): the reading matching the example's arithmetic.
  const Lambda empty = lambda_value(CostPolicy::PaperFormula, 0, 0);
  EXPECT_EQ(empty.num, 1);
  EXPECT_EQ(empty.den, 1);
  const Lambda loaded = lambda_value(CostPolicy::PaperFormula, 0, 4);
  EXPECT_EQ(loaded.num, 1);
  EXPECT_EQ(loaded.den, 4);
}

TEST(BetterCandidate, LexicographicPrefersGain) {
  const auto p2 = candidate(1, 1, 4, true, CostPolicy::Lexicographic);
  const auto p3 = candidate(2, 0, 0, false, CostPolicy::Lexicographic);
  // Paper step 3: P2 (gain 1, memory 4) must beat the empty P3 (gain 0) —
  // the case where Eq. (5) contradicts the walkthrough.
  EXPECT_TRUE(better_candidate(CostPolicy::Lexicographic, p2, p3));
  EXPECT_FALSE(better_candidate(CostPolicy::Lexicographic, p3, p2));
}

TEST(BetterCandidate, PaperFormulaPrefersEmptyProcessor) {
  const auto p2 = candidate(1, 1, 4, true, CostPolicy::PaperFormula);
  const auto p3 = candidate(2, 0, 0, false, CostPolicy::PaperFormula);
  // Under the smoothed formula 1/1 > 2/4: the empty processor wins —
  // demonstrating F1.
  EXPECT_TRUE(better_candidate(CostPolicy::PaperFormula, p3, p2));
}

TEST(BetterCandidate, LexicographicMemoryTieBreak) {
  const auto p1 = candidate(0, 0, 4, false, CostPolicy::Lexicographic);
  const auto p3 = candidate(2, 0, 0, false, CostPolicy::Lexicographic);
  // Paper step 4: equal gains -> least moved memory (empty P3) wins.
  EXPECT_TRUE(better_candidate(CostPolicy::Lexicographic, p3, p1));
}

TEST(BetterCandidate, HomePreferenceOnFullTie) {
  const auto home = candidate(0, 0, 4, true, CostPolicy::Lexicographic);
  const auto away = candidate(2, 0, 4, false, CostPolicy::Lexicographic);
  // Paper step 5: P1 (home) and P3 tie on gain and memory -> stay home.
  EXPECT_TRUE(better_candidate(CostPolicy::Lexicographic, home, away));
  EXPECT_FALSE(better_candidate(CostPolicy::Lexicographic, away, home));
}

TEST(BetterCandidate, IndexTieBreak) {
  const auto p2 = candidate(1, 0, 0, false, CostPolicy::Lexicographic);
  const auto p3 = candidate(2, 0, 0, false, CostPolicy::Lexicographic);
  // Paper step 2: "P3 could be chosen also" — we pick the lower index.
  EXPECT_TRUE(better_candidate(CostPolicy::Lexicographic, p2, p3));
}

TEST(BetterCandidate, GainOnlyIgnoresMemory) {
  const auto heavy = candidate(0, 2, 100, false, CostPolicy::GainOnly);
  const auto light = candidate(1, 1, 0, false, CostPolicy::GainOnly);
  EXPECT_TRUE(better_candidate(CostPolicy::GainOnly, heavy, light));
}

TEST(BetterCandidate, MemoryOnlyIgnoresGain) {
  const auto fast = candidate(0, 5, 10, false, CostPolicy::MemoryOnly);
  const auto light = candidate(1, 0, 2, false, CostPolicy::MemoryOnly);
  EXPECT_TRUE(better_candidate(CostPolicy::MemoryOnly, light, fast));
}

TEST(BetterCandidate, FormulaExactFractions) {
  // 2/6 vs 1/3 are equal: the tie-break (lower index) must decide, and
  // no floating-point wobble may flip it.
  const auto a = candidate(0, 1, 6, false, CostPolicy::PaperFormula);
  const auto b = candidate(1, 0, 3, false, CostPolicy::PaperFormula);
  EXPECT_TRUE(better_candidate(CostPolicy::PaperFormula, a, b));
  EXPECT_FALSE(better_candidate(CostPolicy::PaperFormula, b, a));
}

TEST(BetterCandidate, RequiresFeasible) {
  auto ok = candidate(0, 0, 0, false, CostPolicy::Lexicographic);
  auto bad = ok;
  bad.feasible = false;
  EXPECT_THROW(better_candidate(CostPolicy::Lexicographic, ok, bad),
               PreconditionError);
}

TEST(PolicyNames, AllDistinct) {
  EXPECT_EQ(to_string(CostPolicy::Lexicographic), "Lexicographic");
  EXPECT_EQ(to_string(CostPolicy::PaperFormula), "PaperFormula");
  EXPECT_EQ(to_string(CostPolicy::PaperLiteral), "PaperLiteral");
  EXPECT_EQ(to_string(CostPolicy::GainOnly), "GainOnly");
  EXPECT_EQ(to_string(CostPolicy::MemoryOnly), "MemoryOnly");
}

}  // namespace
}  // namespace lbmem
