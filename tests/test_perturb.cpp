/// Unit tests for the seeded perturbation layer (lbmem/sim/perturb.hpp)
/// driving the discrete-event executor: zero-noise equivalence, the
/// determinism contract, noise-channel effects, FIFO bus contention, and
/// the window-stitching / failure accounting of simulate_perturbed.

#include <gtest/gtest.h>

#include "lbmem/gen/paper_example.hpp"
#include "lbmem/sim/engine.hpp"
#include "lbmem/sim/perturb.hpp"

namespace lbmem {
namespace {

/// The Figure-1 system: fast producer a (period T) feeding slow consumer
/// b (period 4T) across the medium; b starts exactly when a3's datum
/// lands, so any communication delay breaks it.
TaskGraph figure1_graph() {
  TaskGraph g;
  const TaskId a = g.add_task("a", 3, 1, 1);
  const TaskId b = g.add_task("b", 12, 1, 1);
  g.add_dependence(a, b, /*data_size=*/5);
  g.freeze();
  return g;
}

Schedule figure1_system(const TaskGraph& g) {
  Schedule s(g, Architecture(2), CommModel::flat(1));
  s.set_first_start(g.find("a"), 0);
  s.assign_all(g.find("a"), 0);
  s.set_first_start(g.find("b"), 11);  // a3 ends 10, +1 comm -> 11
  s.assign_all(g.find("b"), 1);
  return s;
}

Time total_busy(const SimMetrics& m) {
  Time sum = 0;
  for (const ProcMetrics& pm : m.procs) sum += pm.busy;
  return sum;
}

TEST(PerturbSim, ZeroNoiseMatchesUnperturbed) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  const SimOptions options{3, true};
  const SimMetrics plain = simulate(s, options);
  const SimMetrics perturbed =
      simulate_perturbed(s, options, PerturbSpec{}, 0);
  EXPECT_EQ(perturbed.span, plain.span);
  EXPECT_EQ(perturbed.predicted_span, plain.predicted_span);
  EXPECT_EQ(perturbed.violations, plain.violations);
  EXPECT_EQ(perturbed.deadline_misses, 0);
  EXPECT_EQ(perturbed.total_instances, plain.total_instances);
  ASSERT_EQ(perturbed.procs.size(), plain.procs.size());
  for (std::size_t p = 0; p < plain.procs.size(); ++p) {
    EXPECT_EQ(perturbed.procs[p].busy, plain.procs[p].busy);
    EXPECT_EQ(perturbed.procs[p].peak_buffer, plain.procs[p].peak_buffer);
  }
}

TEST(PerturbSim, FixedSeedIsReproducible) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  PerturbSpec spec;
  spec.seed = 42;
  spec.wcet_jitter = 1.0;
  spec.comm_jitter = 1.0;
  spec.stall_prob = 0.5;
  spec.stall_ticks = 3;
  spec.bus_fifo = true;
  const SimMetrics a = simulate_perturbed(s, SimOptions{2, true}, spec, 0);
  const SimMetrics b = simulate_perturbed(s, SimOptions{2, true}, spec, 0);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.violation_records.size(), b.violation_records.size());
  for (std::size_t p = 0; p < a.procs.size(); ++p) {
    EXPECT_EQ(a.procs[p].busy, b.procs[p].busy);
  }
}

TEST(PerturbSim, DifferentSeedsChangeTheDraws) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  PerturbSpec spec;
  spec.wcet_jitter = 1.0;
  spec.seed = 1;
  const SimMetrics a = simulate_perturbed(s, SimOptions{2, true}, spec, 0);
  spec.seed = 2;
  const SimMetrics b = simulate_perturbed(s, SimOptions{2, true}, spec, 0);
  EXPECT_NE(total_busy(a), total_busy(b));
}

TEST(PerturbSim, JitterOnlyInflates) {
  // Overruns only: the perturbed execution can never finish earlier than
  // the static schedule predicts (WCETs are worst-case *bounds*).
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  const SimMetrics plain = simulate(s, SimOptions{2, true});
  PerturbSpec spec;
  spec.wcet_jitter = 0.75;
  const SimMetrics m = simulate_perturbed(s, SimOptions{2, true}, spec, 0);
  EXPECT_GE(m.span, m.predicted_span);
  EXPECT_EQ(m.predicted_span, plain.span);
  for (std::size_t p = 0; p < m.procs.size(); ++p) {
    EXPECT_GE(m.procs[p].busy, plain.procs[p].busy);
  }
}

TEST(PerturbSim, OverrunBeyondPeriodIsADeadlineMiss) {
  // A task whose wcet fills its whole period misses on any overrun.
  TaskGraph g;
  g.add_task("t", 10, 10, 1);
  g.freeze();
  Schedule s(g, Architecture(1), CommModel::flat(1));
  s.set_first_start(0, 0);
  s.assign_all(0, 0);
  PerturbSpec spec;
  spec.wcet_jitter = 1.0;
  spec.seed = 7;
  const SimMetrics m = simulate_perturbed(s, SimOptions{4, true}, spec, 0);
  EXPECT_GT(m.deadline_misses, 0);
  EXPECT_GT(m.miss_rate(), 0.0);
  EXPECT_GT(m.span, m.predicted_span);
}

TEST(PerturbSim, StallsAddExactly) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  const SimMetrics plain = simulate(s, SimOptions{2, true});
  PerturbSpec spec;
  spec.stall_prob = 1.0;  // every instance stalls
  spec.stall_ticks = 7;
  const SimMetrics m = simulate_perturbed(s, SimOptions{2, true}, spec, 0);
  EXPECT_EQ(total_busy(m), total_busy(plain) + 7 * m.total_instances);
}

TEST(PerturbSim, CommJitterBreaksTightDataArrival) {
  const TaskGraph g = figure1_graph();
  const Schedule s = figure1_system(g);
  EXPECT_EQ(simulate(s, SimOptions{1, true}).violations, 0);
  PerturbSpec spec;
  spec.comm_jitter = 8.0;
  spec.seed = 3;
  const SimMetrics m = simulate_perturbed(s, SimOptions{1, true}, spec, 0);
  EXPECT_GT(m.data_violations, 0);
  EXPECT_EQ(m.overlap_violations, 0);  // starts are time-triggered
}

TEST(PerturbSim, FifoBusSerializesSimultaneousTransfers) {
  // Two transfers released at t=1, each 1 tick long, both consumers
  // dispatched at t=2: the fixed-delay model lands both at 2, the FIFO
  // bus can only land one — the second arrives at 3 and misses.
  TaskGraph g;
  const TaskId u = g.add_task("u", 8, 1, 1);
  const TaskId v = g.add_task("v", 8, 1, 1);
  const TaskId cu = g.add_task("cu", 8, 1, 1);
  const TaskId cv = g.add_task("cv", 8, 1, 1);
  g.add_dependence(u, cu, /*data_size=*/4);
  g.add_dependence(v, cv, /*data_size=*/4);
  g.freeze();
  Schedule s(g, Architecture(4), CommModel::flat(1));
  s.set_first_start(u, 0);
  s.assign_all(u, 0);
  s.set_first_start(v, 0);
  s.assign_all(v, 1);
  s.set_first_start(cu, 2);
  s.assign_all(cu, 2);
  s.set_first_start(cv, 2);
  s.assign_all(cv, 3);

  PerturbSpec spec;  // no noise: contention alone causes the miss
  EXPECT_EQ(simulate_perturbed(s, SimOptions{1, true}, spec, 0).violations,
            0);
  spec.bus_fifo = true;
  const SimMetrics m = simulate_perturbed(s, SimOptions{1, true}, spec, 0);
  ASSERT_EQ(m.data_violations, 1);
  ASSERT_EQ(m.violation_records.size(), 1u);
  // Transfers are served in (release, emission) order, so u->cu wins the
  // bus and v->cv is the late one.
  EXPECT_EQ(m.violation_records.front().victim.task, cv);
  EXPECT_EQ(m.violation_records.front().ready_at, 3);
}

TEST(PerturbSim, WindowStitchingUsesAbsoluteRepIndex) {
  // simulate_perturbed(…, first_hyperperiod=w) keys noise by the absolute
  // window index, so a 2-window run equals the sum of its windows run
  // separately — the property the failure harness stitches on.
  const TaskGraph g = paper_example_graph();
  const Schedule s = paper_example_schedule(g);
  PerturbSpec spec;
  spec.wcet_jitter = 1.0;
  spec.seed = 11;
  const SimMetrics full = simulate_perturbed(s, SimOptions{2, true}, spec, 0);
  const SimMetrics w0 = simulate_perturbed(s, SimOptions{1, true}, spec, 0);
  const SimMetrics w1 = simulate_perturbed(s, SimOptions{1, true}, spec, 1);
  EXPECT_EQ(full.deadline_misses, w0.deadline_misses + w1.deadline_misses);
  for (std::size_t p = 0; p < full.procs.size(); ++p) {
    EXPECT_EQ(full.procs[p].busy, w0.procs[p].busy + w1.procs[p].busy);
  }
  EXPECT_NE(total_busy(w0), 0);
  // The two windows draw different noise (different absolute index).
  EXPECT_NE(w0.span, w1.span - g.hyperperiod());
}

TEST(PerturbSim, ReplicationSeedsAreDerivedByValue) {
  PerturbSpec spec;
  spec.seed = 99;
  spec.wcet_jitter = 0.5;
  const PerturbSpec r0 = spec.replication(0);
  const PerturbSpec r1 = spec.replication(1);
  EXPECT_NE(r0.seed, r1.seed);
  EXPECT_EQ(r0.seed, perturb_hash(99, kPerturbReplication, 0));
  EXPECT_EQ(r1.seed, perturb_hash(99, kPerturbReplication, 1));
  EXPECT_EQ(r1.wcet_jitter, spec.wcet_jitter);  // knobs ride along
}

TEST(PerturbSim, FailedProcessorLosesItsDispatches) {
  const TaskGraph g = figure1_graph();
  const Schedule s = figure1_system(g);
  PerturbSpec spec;
  spec.fail_proc = 0;  // a's processor dies before anything runs
  spec.fail_at = 0;
  const SimMetrics m = simulate_perturbed(s, SimOptions{1, true}, spec, 0);
  EXPECT_EQ(m.lost_instances, 4);  // a0..a3
  EXPECT_EQ(m.data_violations, 4);  // b[0] waits for four data forever
  for (const SimViolation& v : m.violation_records) {
    EXPECT_EQ(v.kind, SimViolation::Kind::DataNotReady);
    EXPECT_EQ(v.victim.task, g.find("b"));
    EXPECT_EQ(v.ready_at, -1);  // the datum is never produced
  }
  // 4 of 5 instances lost: the miss rate charges every one of them.
  EXPECT_DOUBLE_EQ(m.miss_rate(), 4.0 / 5.0);
}

}  // namespace
}  // namespace lbmem
