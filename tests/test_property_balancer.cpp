/// Property tests for the load balancer: over random workloads and every
/// cost policy, the balanced schedule is always valid, the makespan never
/// increases (Theorem 1 lower bound), memory and work are conserved, and
/// start times never grow.

#include <gtest/gtest.h>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/validate/validator.hpp"

namespace lbmem {
namespace {

struct BalancerCase {
  CostPolicy policy;
  int processors;
  int tasks;
  Time comm_cost;
  std::uint64_t base_seed;
};

std::string case_name(const ::testing::TestParamInfo<BalancerCase>& info) {
  const BalancerCase& c = info.param;
  return to_string(c.policy) + "_M" + std::to_string(c.processors) + "_N" +
         std::to_string(c.tasks) + "_C" + std::to_string(c.comm_cost) +
         "_s" + std::to_string(c.base_seed);
}

class BalancerProperty : public ::testing::TestWithParam<BalancerCase> {};

TEST_P(BalancerProperty, InvariantsHoldOnRandomWorkloads) {
  const BalancerCase& param = GetParam();
  SuiteSpec spec;
  spec.params.tasks = param.tasks;
  spec.processors = param.processors;
  spec.comm_cost = param.comm_cost;
  spec.count = 6;
  spec.base_seed = param.base_seed;
  int skipped = 0;
  const auto suite = make_suite(spec, &skipped);
  ASSERT_FALSE(suite.empty()) << "no schedulable instance found";

  BalanceOptions options;
  options.policy = param.policy;
  const LoadBalancer balancer(options);

  for (const SuiteInstance& instance : suite) {
    const Schedule& before = instance.schedule;
    ASSERT_TRUE(validate(before).ok()) << "seed " << instance.seed;

    const BalanceResult result = balancer.balance(before);
    const ValidationReport report = validate(result.schedule);
    EXPECT_TRUE(report.ok())
        << "seed " << instance.seed << "\n" << report.to_string();

    // Theorem 1 lower bound: the heuristic never increases the makespan.
    EXPECT_GE(result.stats.gain_total, 0) << "seed " << instance.seed;
    EXPECT_LE(result.schedule.makespan(), before.makespan())
        << "seed " << instance.seed;

    // No task starts later than before (moves only shift earlier).
    if (!result.stats.fell_back) {
      for (TaskId t = 0;
           t < static_cast<TaskId>(before.graph().task_count()); ++t) {
        EXPECT_LE(result.schedule.first_start(t), before.first_start(t))
            << "seed " << instance.seed << " task " << t;
      }
    }

    // Conservation: total memory and total busy time are redistributed,
    // never created or lost.
    Mem mem_before = 0;
    Mem mem_after = 0;
    Time busy_before = 0;
    Time busy_after = 0;
    for (ProcId p = 0; p < param.processors; ++p) {
      mem_before += before.memory_on(p);
      mem_after += result.schedule.memory_on(p);
      busy_before += before.busy_on(p);
      busy_after += result.schedule.busy_on(p);
    }
    EXPECT_EQ(mem_before, mem_after) << "seed " << instance.seed;
    EXPECT_EQ(busy_before, busy_after) << "seed " << instance.seed;

    // Stats agree with the schedules they describe.
    EXPECT_EQ(result.stats.makespan_after, result.schedule.makespan());
    EXPECT_EQ(result.stats.max_memory_after, result.schedule.max_memory());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BalancerProperty,
    ::testing::Values(
        BalancerCase{CostPolicy::Lexicographic, 3, 30, 2, 100},
        BalancerCase{CostPolicy::Lexicographic, 4, 60, 1, 200},
        BalancerCase{CostPolicy::Lexicographic, 6, 90, 3, 300},
        BalancerCase{CostPolicy::PaperFormula, 3, 30, 2, 100},
        BalancerCase{CostPolicy::PaperFormula, 5, 70, 2, 400},
        BalancerCase{CostPolicy::PaperLiteral, 4, 50, 2, 500},
        BalancerCase{CostPolicy::GainOnly, 4, 60, 3, 600},
        BalancerCase{CostPolicy::MemoryOnly, 4, 60, 2, 700},
        BalancerCase{CostPolicy::MemoryOnly, 8, 120, 1, 800},
        BalancerCase{CostPolicy::Lexicographic, 2, 40, 4, 900}),
    case_name);

/// The balancer must behave identically on repeated runs (purity).
TEST(BalancerDeterminism, SameInputSameOutput) {
  SuiteSpec spec;
  spec.params.tasks = 50;
  spec.processors = 4;
  spec.count = 3;
  const auto suite = make_suite(spec);
  ASSERT_FALSE(suite.empty());
  const LoadBalancer balancer;
  for (const SuiteInstance& instance : suite) {
    const BalanceResult a = balancer.balance(instance.schedule);
    const BalanceResult b = balancer.balance(instance.schedule);
    EXPECT_EQ(a.schedule.makespan(), b.schedule.makespan());
    EXPECT_EQ(a.stats.moves_off_home, b.stats.moves_off_home);
    for (ProcId p = 0; p < spec.processors; ++p) {
      EXPECT_EQ(a.schedule.memory_on(p), b.schedule.memory_on(p));
    }
  }
}

/// Balancing a balanced schedule must stay valid and never regress.
TEST(BalancerIdempotence, SecondPassNeverRegresses) {
  SuiteSpec spec;
  spec.params.tasks = 40;
  spec.processors = 4;
  spec.count = 4;
  const auto suite = make_suite(spec);
  ASSERT_FALSE(suite.empty());
  const LoadBalancer balancer;
  for (const SuiteInstance& instance : suite) {
    const BalanceResult first = balancer.balance(instance.schedule);
    const BalanceResult second = balancer.balance(first.schedule);
    EXPECT_TRUE(validate(second.schedule).ok());
    EXPECT_LE(second.schedule.makespan(), first.schedule.makespan());
  }
}

}  // namespace
}  // namespace lbmem
