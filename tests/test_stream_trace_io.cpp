/// Tests for the trace text format (stream/trace_io.hpp): round-trips,
/// comment/blank handling, and loud failure on malformed input.

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "lbmem/gen/event_trace.hpp"
#include "lbmem/gen/paper_example.hpp"
#include "lbmem/stream/trace_io.hpp"
#include "lbmem/util/check.hpp"

namespace lbmem {
namespace {

TEST(StreamTraceIo, RoundTripsAGeneratedTrace) {
  const TaskGraph graph = paper_example_graph();
  const Architecture arch = paper_example_architecture();
  EventTraceParams params;
  params.events = 60;
  params.arrival = ArrivalModel::Poisson;
  const EventTrace trace = random_event_trace(graph, arch, params, 7);

  const std::string text = trace_to_string(trace);
  const EventTrace parsed = parse_trace(text);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].at, trace[i].at) << "event " << i;
    EXPECT_EQ(to_string(parsed[i]), to_string(trace[i])) << "event " << i;
  }
  // Producers survive the round trip (to_string only counts them).
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].kind() != EventKind::TaskArrival) continue;
    const auto& before = std::get<TaskArrival>(trace[i].payload).spec;
    const auto& after = std::get<TaskArrival>(parsed[i].payload).spec;
    ASSERT_EQ(after.producers.size(), before.producers.size());
    for (std::size_t d = 0; d < before.producers.size(); ++d) {
      EXPECT_EQ(after.producers[d].task, before.producers[d].task);
      EXPECT_EQ(after.producers[d].data_size, before.producers[d].data_size);
    }
  }
}

TEST(StreamTraceIo, SkipsCommentsAndBlankLines) {
  const EventTrace parsed = parse_trace(
      "# lbmem-trace v1\n"
      "\n"
      "3 wcet a 2\n"
      "   \n"
      "# interlude\n"
      "9 failure 1\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].at, 3);
  EXPECT_EQ(std::get<WcetChange>(parsed[0].payload).task, "a");
  EXPECT_EQ(std::get<ProcessorFailure>(parsed[1].payload).proc, 1);
}

TEST(StreamTraceIo, ParsesArrivalWithProducers) {
  const EventTrace parsed = parse_trace("5 arrival dyn0 12 2 5 a:3 b:1\n");
  ASSERT_EQ(parsed.size(), 1u);
  const NewTaskSpec& spec = std::get<TaskArrival>(parsed[0].payload).spec;
  EXPECT_EQ(spec.name, "dyn0");
  EXPECT_EQ(spec.period, 12);
  EXPECT_EQ(spec.wcet, 2);
  EXPECT_EQ(spec.memory, 5);
  ASSERT_EQ(spec.producers.size(), 2u);
  EXPECT_EQ(spec.producers[0].task, "a");
  EXPECT_EQ(spec.producers[0].data_size, 3);
  EXPECT_EQ(spec.producers[1].task, "b");
  EXPECT_EQ(spec.producers[1].data_size, 1);
}

TEST(StreamTraceIo, RejectsMalformedInputWithLineNumbers) {
  // Each bad input names its 1-based line in the error.
  const std::pair<const char*, const char*> cases[] = {
      {"x wcet a 2\n", "line 1"},
      {"3 wcet a\n", "line 1"},
      {"3 teleport a\n", "line 1"},
      {"3 wcet a 2\n1 wcet a 3\n", "line 2"},         // decreasing ticks
      {"-1 wcet a 2\n", "line 1"},                     // negative tick
      {"3 failure -2\n", "line 1"},                    // negative proc
      {"3 arrival dyn0 12 2 5 broken\n", "line 1"},    // producer sans ':'
      {"3 arrival dyn0 12 2\n", "line 1"},             // short arrival
  };
  for (const auto& [text, needle] : cases) {
    try {
      parse_trace(std::string(text));
      FAIL() << "accepted malformed trace: " << text;
    } catch (const ModelError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "error for '" << text << "' was: " << e.what();
    }
  }
}

TEST(StreamTraceIo, WriterRejectsUnrepresentableNames) {
  Event event;
  event.at = 1;
  event.payload = WcetChange{"has space", 2};
  EXPECT_THROW(trace_to_string({event}), ModelError);
  event.payload = TaskRemoval{"has:colon"};
  EXPECT_THROW(trace_to_string({event}), ModelError);
}

}  // namespace
}  // namespace lbmem
