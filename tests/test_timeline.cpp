/// Unit tests for the per-processor circular occupancy (lbmem/sched/timeline).

#include <gtest/gtest.h>

#include "lbmem/sched/timeline.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {
namespace {

TaskInstance inst(TaskId t, InstanceIdx k = 0) { return TaskInstance{t, k}; }

TEST(ProcTimeline, EmptyFitsEverything) {
  const ProcTimeline tl(12);
  EXPECT_TRUE(tl.fits(0, 1));
  EXPECT_TRUE(tl.fits(11, 1));
  EXPECT_TRUE(tl.fits(0, 12));
  EXPECT_TRUE(tl.fits(100, 5));
}

TEST(ProcTimeline, AddAndConflict) {
  ProcTimeline tl(12);
  tl.add(3, 2, inst(0));
  EXPECT_FALSE(tl.fits(3, 1));
  EXPECT_FALSE(tl.fits(4, 1));
  EXPECT_FALSE(tl.fits(2, 2));
  EXPECT_TRUE(tl.fits(5, 1));
  EXPECT_TRUE(tl.fits(1, 2));
  EXPECT_EQ(tl.conflicting_owner(4, 1), inst(0));
  EXPECT_EQ(tl.conflicting_owner(5, 1), std::nullopt);
}

TEST(ProcTimeline, WrappingIntervalSplits) {
  ProcTimeline tl(12);
  tl.add(10, 4, inst(1));  // covers [10,12) and [0,2)
  EXPECT_EQ(tl.piece_count(), 2u);
  EXPECT_FALSE(tl.fits(0, 1));
  EXPECT_FALSE(tl.fits(11, 1));
  EXPECT_TRUE(tl.fits(2, 8));
  EXPECT_EQ(tl.busy_time(), 4);
}

TEST(ProcTimeline, ModularPositions) {
  ProcTimeline tl(12);
  tl.add(13, 1, inst(2));  // the paper's d@13 occupies [1,2) mod 12
  EXPECT_FALSE(tl.fits(1, 1));
  EXPECT_FALSE(tl.fits(25, 1));
  EXPECT_TRUE(tl.fits(0, 1));
}

TEST(ProcTimeline, AddRejectsOverlap) {
  ProcTimeline tl(12);
  tl.add(0, 3, inst(0));
  EXPECT_THROW(tl.add(2, 2, inst(1)), PreconditionError);
}

TEST(ProcTimeline, RemoveReleases) {
  ProcTimeline tl(12);
  tl.add(10, 4, inst(0));
  tl.add(4, 2, inst(1));
  tl.remove(inst(0));
  EXPECT_TRUE(tl.fits(10, 4));
  EXPECT_FALSE(tl.fits(4, 1));
  EXPECT_EQ(tl.busy_time(), 2);
}

TEST(ProcTimeline, EarliestFitEmpty) {
  const ProcTimeline tl(12);
  EXPECT_EQ(tl.earliest_fit(0, 3, 1, 4), 0);
  EXPECT_EQ(tl.earliest_fit(5, 6, 1, 2), 5);
}

TEST(ProcTimeline, EarliestFitSkipsOccupied) {
  ProcTimeline tl(12);
  // Occupy the slots a strict-periodic task (T=3, E=1) would take at S=0.
  tl.add(0, 1, inst(0));
  const auto s = tl.earliest_fit(0, 3, 1, 4);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, 1);  // instances at 1,4,7,10 avoid [0,1)
}

TEST(ProcTimeline, EarliestFitDetectsInfeasible) {
  ProcTimeline tl(4);
  tl.add(0, 2, inst(0));  // [0,2)
  tl.add(2, 2, inst(1));  // [2,4): circle full
  EXPECT_EQ(tl.earliest_fit(0, 4, 1, 1), std::nullopt);
}

TEST(ProcTimeline, EarliestFitInterleavesPeriodicTasks) {
  // Two tasks with T=4, E=2 fill the circle of 8 exactly.
  ProcTimeline tl(8);
  tl.add(0, 2, inst(0, 0));
  tl.add(4, 2, inst(0, 1));
  const auto s = tl.earliest_fit(0, 4, 2, 2);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, 2);  // instances at 2,6
  tl.add(2, 2, inst(1, 0));
  tl.add(6, 2, inst(1, 1));
  EXPECT_EQ(tl.earliest_fit(0, 4, 1, 2), std::nullopt);
}

TEST(ProcTimeline, EarliestFitRespectsLowerBound) {
  const ProcTimeline tl(12);
  EXPECT_EQ(tl.earliest_fit(7, 12, 2, 1), 7);
}

TEST(ProcTimeline, EarliestFitPaperTaskB) {
  // P2 of the example: place b (T=6, E=1, 2 instances) from lb=5 on an
  // empty processor -> 5; then c from lb=6 -> 6.
  ProcTimeline tl(12);
  const auto sb = tl.earliest_fit(5, 6, 1, 2);
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(*sb, 5);
  tl.add(5, 1, inst(0, 0));
  tl.add(11, 1, inst(0, 1));
  const auto sc = tl.earliest_fit(6, 6, 1, 2);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(*sc, 6);
}

TEST(ProcTimelineChurn, RepeatedAddRemoveTracksReference) {
  // The balancer's detach/re-attach pattern: heavy add/remove churn with
  // owners coming and going. The owner index must keep pieces_ exact —
  // piece_count, busy_time and point queries are compared against a
  // per-tick reference occupancy after every operation.
  Rng rng(4242);
  const Time h = 48;
  ProcTimeline tl(h);
  struct Held {
    Time start;
    Time len;
  };
  std::vector<std::optional<Held>> held(20);  // owner slot -> interval

  for (int step = 0; step < 2000; ++step) {
    const auto slot = static_cast<std::size_t>(rng.uniform(0, 19));
    const TaskInstance owner = inst(static_cast<TaskId>(slot));
    if (held[slot]) {
      tl.remove(owner);
      held[slot].reset();
    } else {
      const Time start = rng.uniform(0, 2 * h);
      const Time len = rng.uniform(1, 6);
      if (tl.fits(start, len)) {
        tl.add(start, len, owner);
        held[slot] = Held{start, len};
      } else {
        // A rejected add must leave the timeline untouched.
        EXPECT_THROW(tl.add(start, len, owner), PreconditionError);
      }
    }

    // Reference occupancy, tick by tick.
    std::vector<char> occ(static_cast<std::size_t>(h), 0);
    std::size_t expected_pieces = 0;
    Time expected_busy = 0;
    for (const auto& hd : held) {
      if (!hd) continue;
      const Time s = ((hd->start % h) + h) % h;
      // Wrapping intervals are stored split in two pieces.
      expected_pieces += (s + hd->len <= h) ? 1u : 2u;
      expected_busy += hd->len;
      for (Time t = 0; t < hd->len; ++t) {
        occ[static_cast<std::size_t>((s + t) % h)] = 1;
      }
    }
    ASSERT_EQ(tl.piece_count(), expected_pieces) << "step " << step;
    ASSERT_EQ(tl.busy_time(), expected_busy) << "step " << step;
    for (Time t = 0; t < h; t += 3) {
      ASSERT_EQ(tl.fits(t, 1), occ[static_cast<std::size_t>(t)] == 0)
          << "step " << step << " t " << t;
    }
  }
}

TEST(ProcTimelineChurn, WrappingIntervalRemovesBothPieces) {
  ProcTimeline tl(12);
  tl.add(10, 4, inst(0));  // split into [10,12) and [0,2)
  tl.add(4, 2, inst(1));
  EXPECT_EQ(tl.piece_count(), 3u);
  tl.remove(inst(0));
  EXPECT_EQ(tl.piece_count(), 1u);
  EXPECT_TRUE(tl.fits(10, 4));
  EXPECT_TRUE(tl.fits(0, 2));
  // Re-add after removal: the owner slots must have been fully released.
  tl.add(11, 3, inst(0));
  EXPECT_EQ(tl.piece_count(), 3u);
  EXPECT_FALSE(tl.fits(0, 1));
  tl.remove(inst(0));
  EXPECT_EQ(tl.piece_count(), 1u);
  EXPECT_EQ(tl.busy_time(), 2);
}

TEST(ProcTimelineChurn, RemoveAbsentOwnerIsNoOp) {
  ProcTimeline tl(12);
  tl.add(0, 2, inst(0));
  tl.remove(inst(7));
  EXPECT_EQ(tl.piece_count(), 1u);
  tl.remove(inst(0));
  tl.remove(inst(0));  // second removal: still a no-op
  EXPECT_EQ(tl.piece_count(), 0u);
  EXPECT_EQ(tl.busy_time(), 0);
}

TEST(ProcTimelineChurn, ConflictingOwnerIfSkipsIgnoredOwners) {
  ProcTimeline tl(12);
  tl.add(3, 2, inst(0));
  tl.add(6, 2, inst(1));
  const auto ignore0 = [](TaskInstance owner) { return owner.task == 0; };
  // [3,5) only conflicts with the ignored owner -> no conflict reported.
  EXPECT_EQ(tl.conflicting_owner_if(3, 2, ignore0), std::nullopt);
  // [4,7) overlaps both; the non-ignored one must be found.
  EXPECT_EQ(tl.conflicting_owner_if(4, 3, ignore0), inst(1));
  // Wrap-around: [11,13) -> [11,12) + [0,1), both free.
  EXPECT_EQ(tl.conflicting_owner_if(11, 2, ignore0), std::nullopt);
  tl.add(11, 2, inst(2));
  EXPECT_EQ(tl.conflicting_owner_if(11, 2, ignore0), inst(2));
}

TEST(ProcTimeline, EarliestFitMatchesBruteForce) {
  Rng rng(99);
  for (int iter = 0; iter < 300; ++iter) {
    const Time h = 24;
    ProcTimeline tl(h);
    std::vector<char> occ(static_cast<std::size_t>(h), 0);
    // Random pre-occupation.
    for (int i = 0; i < 5; ++i) {
      const Time s = rng.uniform(0, h - 1);
      const Time len = rng.uniform(1, 3);
      bool free = true;
      for (Time t = 0; t < len; ++t) {
        if (occ[static_cast<std::size_t>((s + t) % h)]) free = false;
      }
      if (!free) continue;
      tl.add(s, len, inst(static_cast<TaskId>(i)));
      for (Time t = 0; t < len; ++t) {
        occ[static_cast<std::size_t>((s + t) % h)] = 1;
      }
    }
    const Time period = 8;
    const Time wcet = rng.uniform(1, 3);
    const Time lb = rng.uniform(0, 30);
    const InstanceIdx n = 3;  // 3 * 8 = 24 = h
    // Brute force earliest S in [lb, lb+period).
    std::optional<Time> expected;
    for (Time s = lb; s < lb + period && !expected; ++s) {
      bool ok = true;
      for (InstanceIdx k = 0; k < n && ok; ++k) {
        for (Time t = 0; t < wcet && ok; ++t) {
          const Time pos = (s + k * period + t) % h;
          if (occ[static_cast<std::size_t>(pos)]) ok = false;
        }
      }
      if (ok) expected = s;
    }
    EXPECT_EQ(tl.earliest_fit(lb, period, wcet, n), expected)
        << "iter " << iter << " lb=" << lb << " wcet=" << wcet;
  }
}

}  // namespace
}  // namespace lbmem
