/// Property tests for the paper's two theorems.
///
/// Theorem 1 (Section 5.1): 0 <= Gtotal <= γ(M-1)!. The lower bound is a
/// hard guarantee of the implementation; the upper bound is checked
/// empirically here and measured in bench_theorem1.
///
/// Theorem 2 (Section 5.2): the memory-only heuristic (greedy least-loaded
/// assignment) is a (2 - 1/M)-approximation of the optimal max memory.
/// This is Graham's bound; we verify it against the exact branch-and-bound
/// optimum on random block weights and confirm tightness on the
/// adversarial family.

#include <gtest/gtest.h>

#include "lbmem/baseline/bnb_partitioner.hpp"
#include "lbmem/baseline/partition.hpp"
#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {
namespace {

// ---------------------------------------------------------------- Theorem 1

class Theorem1Property : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Property, GainBounds) {
  const int processors = GetParam();
  SuiteSpec spec;
  spec.params.tasks = 40;
  spec.processors = processors;
  spec.comm_cost = 3;
  spec.count = 8;
  spec.base_seed = 42 + static_cast<std::uint64_t>(processors);
  const auto suite = make_suite(spec);
  ASSERT_FALSE(suite.empty());

  const LoadBalancer balancer;
  for (const SuiteInstance& instance : suite) {
    const BalanceResult result = balancer.balance(instance.schedule);
    // Hard lower bound (the heuristic never increases total execution
    // time).
    EXPECT_GE(result.stats.gain_total, 0) << "seed " << instance.seed;
    // Sanity upper bound: a gain can never exceed the initial makespan.
    EXPECT_LE(result.stats.gain_total, instance.schedule.makespan());
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessorSweep, Theorem1Property,
                         ::testing::Values(2, 3, 4, 5, 6, 8),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "M" + std::to_string(pinfo.param);
                         });

// ---------------------------------------------------------------- Theorem 2

class Theorem2Property : public ::testing::TestWithParam<int> {};

TEST_P(Theorem2Property, GreedyWithinGrahamBoundOfExactOptimum) {
  const int machines = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(machines));
  for (int iter = 0; iter < 25; ++iter) {
    const int n = static_cast<int>(rng.uniform(machines, 18));
    std::vector<Mem> weights;
    for (int i = 0; i < n; ++i) weights.push_back(rng.uniform(1, 40));

    const PartitionResult greedy = greedy_min_load(weights, machines);
    const BnbResult exact = bnb_partition(weights, machines);
    ASSERT_TRUE(exact.proven_optimal);
    ASSERT_GT(exact.partition.max_load, 0);

    // ω / ωopt <= 2 - 1/M  <=>  M*ω <= (2M - 1)*ωopt  (exact integers).
    EXPECT_LE(static_cast<std::int64_t>(machines) * greedy.max_load,
              (2 * static_cast<std::int64_t>(machines) - 1) *
                  exact.partition.max_load)
        << "iter " << iter << " M=" << machines;
  }
}

TEST_P(Theorem2Property, BoundIsTightOnAdversarialFamily) {
  // Graham's tight family: M(M-1) unit items followed by one item of
  // weight M. Greedy reaches (M-1) + M = 2M - 1 while OPT = M, hitting
  // the ratio 2 - 1/M exactly.
  const int m = GetParam();
  std::vector<Mem> weights(static_cast<std::size_t>(m * (m - 1)), Mem{1});
  weights.push_back(m);

  const PartitionResult greedy = greedy_min_load(weights, m);
  EXPECT_EQ(greedy.max_load, 2 * m - 1);

  const BnbResult exact = bnb_partition(weights, m);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_EQ(exact.partition.max_load, m);

  // The ratio equals 2 - 1/M exactly: M*ω == (2M-1)*ωopt.
  EXPECT_EQ(static_cast<std::int64_t>(m) * greedy.max_load,
            (2 * static_cast<std::int64_t>(m) - 1) *
                exact.partition.max_load);
}

INSTANTIATE_TEST_SUITE_P(MachineSweep, Theorem2Property,
                         ::testing::Values(2, 3, 4, 5, 6),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "M" + std::to_string(pinfo.param);
                         });

// The end-to-end variant measured on real block decompositions: the
// memory-only balancer's ω compared against the exact optimum over the
// same block weights. Time feasibility can keep the balancer above plain
// greedy, so this asserts validity plus a report-style measurement used by
// bench_theorem2; the pure-greedy bound above is the theorem proper.
TEST(Theorem2OnBlocks, BlockWeightsRatioMeasured) {
  SuiteSpec spec;
  spec.params.tasks = 24;
  spec.processors = 4;
  spec.count = 5;
  spec.base_seed = 77;
  const auto suite = make_suite(spec);
  ASSERT_FALSE(suite.empty());
  for (const SuiteInstance& instance : suite) {
    const BlockDecomposition dec = build_blocks(instance.schedule);
    std::vector<Mem> weights;
    for (const Block& b : dec.blocks) weights.push_back(b.mem_sum);
    if (weights.size() > 22) continue;  // keep B&B exact
    const BnbResult exact = bnb_partition(weights, spec.processors);
    if (!exact.proven_optimal || exact.partition.max_load == 0) continue;
    const PartitionResult greedy =
        greedy_min_load(weights, spec.processors);
    EXPECT_LE(static_cast<std::int64_t>(spec.processors) * greedy.max_load,
              (2 * static_cast<std::int64_t>(spec.processors) - 1) *
                  exact.partition.max_load)
        << "seed " << instance.seed;
  }
}

}  // namespace
}  // namespace lbmem
