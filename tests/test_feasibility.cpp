/// Unit + property tests for analytic strict-periodic feasibility
/// (lbmem/sched/feasibility.hpp), cross-checked against brute force.

#include <gtest/gtest.h>

#include "lbmem/sched/feasibility.hpp"
#include "lbmem/util/check.hpp"
#include "lbmem/util/math.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {
namespace {

/// Brute-force overlap over a long horizon (lcm * 2 + offsets).
bool brute_compatible(const PlacedTask& a, const PlacedTask& b) {
  const Time horizon =
      std::max(a.start, b.start) + 4 * lcm64(a.period, b.period);
  for (Time sa = a.start; sa < horizon; sa += a.period) {
    for (Time sb = b.start; sb < horizon; sb += b.period) {
      if (sa < sb + b.wcet && sb < sa + a.wcet) return true;
    }
  }
  return false;
}

TEST(PairwiseCompatible, DisjointSamePeriod) {
  EXPECT_TRUE(pairwise_compatible({0, 2, 8}, {2, 2, 8}));
  EXPECT_TRUE(pairwise_compatible({0, 2, 8}, {6, 2, 8}));
  EXPECT_FALSE(pairwise_compatible({0, 2, 8}, {1, 2, 8}));
}

TEST(PairwiseCompatible, HarmonicPeriods) {
  // T=4 vs T=8: g=4. a at offset 0 len 1; b at offset 1 len 2: 1 >= 1 and
  // 1+2 <= 4 -> compatible.
  EXPECT_TRUE(pairwise_compatible({0, 1, 4}, {1, 2, 8}));
  // b at offset 3 len 2 wraps into a's next slot: 3+2 > 4 -> incompatible.
  EXPECT_FALSE(pairwise_compatible({0, 1, 4}, {3, 2, 8}));
}

TEST(PairwiseCompatible, CoprimePeriodsAlwaysCollide) {
  // gcd(3,4)=1: two unit tasks can never share a processor.
  EXPECT_FALSE(pairwise_compatible({0, 1, 3}, {1, 1, 4}));
  EXPECT_FALSE(pairwise_compatible({0, 1, 3}, {2, 1, 4}));
}

TEST(PairwiseCompatible, SymmetricInArguments) {
  const PlacedTask a{2, 1, 6};
  const PlacedTask b{5, 2, 12};
  EXPECT_EQ(pairwise_compatible(a, b), pairwise_compatible(b, a));
}

TEST(PairwiseCompatible, MatchesBruteForce) {
  Rng rng(31337);
  for (int iter = 0; iter < 2000; ++iter) {
    const Time periods[] = {2, 3, 4, 6, 8, 12};
    PlacedTask a;
    a.period = periods[rng.uniform(0, 5)];
    a.wcet = rng.uniform(1, a.period);
    a.start = rng.uniform(0, 20);
    PlacedTask b;
    b.period = periods[rng.uniform(0, 5)];
    b.wcet = rng.uniform(1, b.period);
    b.start = rng.uniform(0, 20);
    EXPECT_EQ(pairwise_compatible(a, b), !brute_compatible(a, b))
        << "a={" << a.start << "," << a.wcet << "," << a.period << "} b={"
        << b.start << "," << b.wcet << "," << b.period << "}";
  }
}

TEST(AllCompatible, TriplesAndValidation) {
  const std::vector<PlacedTask> ok = {{0, 1, 4}, {1, 1, 4}, {2, 2, 4}};
  EXPECT_TRUE(all_compatible(ok));
  const std::vector<PlacedTask> bad = {{0, 1, 4}, {1, 1, 4}, {1, 1, 8}};
  EXPECT_FALSE(all_compatible(bad));
  EXPECT_THROW(pairwise_compatible({0, 0, 4}, {0, 1, 4}), PreconditionError);
  EXPECT_THROW(pairwise_compatible({0, 5, 4}, {0, 1, 4}), PreconditionError);
}

TEST(EarliestCompatibleStart, EmptyProcessor) {
  EXPECT_EQ(earliest_compatible_start({}, 2, 8, 0), 0);
  EXPECT_EQ(earliest_compatible_start({}, 2, 8, 5), 5);
}

TEST(EarliestCompatibleStart, SkipsOccupiedOffsets) {
  const std::vector<PlacedTask> placed = {{0, 2, 8}};
  // Candidate T=8,E=2 from lb=0: offsets 0 and 1 collide; 2 is free.
  EXPECT_EQ(earliest_compatible_start(placed, 2, 8, 0), 2);
}

TEST(EarliestCompatibleStart, DetectsImpossiblePair) {
  // g = gcd(8, 8) = 8; lengths 5 + 4 > 8: impossible forever.
  const std::vector<PlacedTask> placed = {{0, 5, 8}};
  EXPECT_EQ(earliest_compatible_start(placed, 4, 8, 0), std::nullopt);
}

TEST(EarliestCompatibleStart, AgreesWithPairwise) {
  Rng rng(999);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<PlacedTask> placed;
    const Time periods[] = {4, 8, 16};
    for (int i = 0; i < 3; ++i) {
      PlacedTask t;
      t.period = periods[rng.uniform(0, 2)];
      t.wcet = rng.uniform(1, 2);
      t.start = rng.uniform(0, 15);
      // keep the placed set self-consistent
      PlacedTask probe = t;
      bool ok = true;
      for (const PlacedTask& other : placed) {
        if (!pairwise_compatible(other, probe)) ok = false;
      }
      if (ok) placed.push_back(t);
    }
    const Time wcet = rng.uniform(1, 2);
    const Time period = periods[rng.uniform(0, 2)];
    const Time lb = rng.uniform(0, 10);
    const auto s = earliest_compatible_start(placed, wcet, period, lb);
    if (s) {
      EXPECT_GE(*s, lb);
      const PlacedTask candidate{*s, wcet, period};
      for (const PlacedTask& other : placed) {
        EXPECT_TRUE(pairwise_compatible(other, candidate));
      }
      // Minimality: every earlier start conflicts with someone.
      for (Time earlier = lb; earlier < *s; ++earlier) {
        const PlacedTask probe{earlier, wcet, period};
        bool conflict = false;
        for (const PlacedTask& other : placed) {
          if (!pairwise_compatible(other, probe)) conflict = true;
        }
        EXPECT_TRUE(conflict) << "missed earlier start " << earlier;
      }
    } else {
      // No start within [lb, lb+period) works.
      for (Time earlier = lb; earlier < lb + period; ++earlier) {
        const PlacedTask probe{earlier, wcet, period};
        bool conflict = false;
        for (const PlacedTask& other : placed) {
          if (!pairwise_compatible(other, probe)) conflict = true;
        }
        EXPECT_TRUE(conflict);
      }
    }
  }
}

TEST(GcdCapacity, NecessaryCondition) {
  // E sums exceeding the gcd make co-residence impossible.
  const std::vector<PlacedTask> bad = {{0, 3, 8}, {0, 6, 8}};
  EXPECT_FALSE(pairwise_gcd_capacity(bad));
  const std::vector<PlacedTask> ok = {{0, 3, 8}, {0, 5, 8}};
  EXPECT_TRUE(pairwise_gcd_capacity(ok));
}

TEST(CoResidence, ReportOnGraph) {
  TaskGraph g;
  const TaskId a = g.add_task("a", 4, 2, 1);
  const TaskId b = g.add_task("b", 8, 2, 1);
  const TaskId c = g.add_task("c", 8, 6, 1);
  g.freeze();
  {
    const TaskId set[] = {a, b};
    const CoResidenceReport r = co_residence_report(g, set);
    EXPECT_TRUE(r.gcd_capacity_ok);
    EXPECT_TRUE(r.utilization_ok);
    EXPECT_DOUBLE_EQ(r.utilization, 0.75);
  }
  {
    const TaskId set[] = {a, c};
    const CoResidenceReport r = co_residence_report(g, set);
    EXPECT_FALSE(r.gcd_capacity_ok);  // 2 + 6 > gcd(4,8) = 4
  }
}

TEST(Utilization, Sum) {
  const std::vector<PlacedTask> tasks = {{0, 1, 4}, {0, 2, 8}};
  EXPECT_DOUBLE_EQ(processor_utilization(tasks), 0.5);
}

}  // namespace
}  // namespace lbmem
