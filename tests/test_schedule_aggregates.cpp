/// Property test for Schedule's incrementally maintained per-processor
/// aggregates (memory_on / busy_on / max_memory / complete): after any
/// randomized sequence of assign and set_first_start calls — including
/// reassignments that move instances between processors — every aggregate
/// must equal the value recomputed from scratch through the public
/// per-instance API. Guards the cache-invalidation logic introduced with
/// the flat CSR storage.

#include <gtest/gtest.h>

#include <vector>

#include "lbmem/gen/random_graph.hpp"
#include "lbmem/sched/schedule.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {
namespace {

struct Recomputed {
  std::vector<Mem> memory;
  std::vector<Time> busy;
  Mem max_memory = 0;
};

/// Reference aggregates, rebuilt instance by instance.
Recomputed recompute(const Schedule& sched) {
  const TaskGraph& graph = sched.graph();
  const int procs = sched.architecture().processor_count();
  Recomputed out;
  out.memory.assign(static_cast<std::size_t>(procs), Mem{0});
  out.busy.assign(static_cast<std::size_t>(procs), Time{0});
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    const InstanceIdx n = graph.instance_count(t);
    for (InstanceIdx k = 0; k < n; ++k) {
      const ProcId p = sched.proc(TaskInstance{t, k});
      if (p == kNoProc) continue;
      out.memory[static_cast<std::size_t>(p)] += graph.task(t).memory;
      out.busy[static_cast<std::size_t>(p)] += graph.task(t).wcet;
    }
  }
  for (const Mem m : out.memory) out.max_memory = std::max(out.max_memory, m);
  return out;
}

void expect_aggregates_match(const Schedule& sched, std::uint64_t seed,
                             int step) {
  const Recomputed ref = recompute(sched);
  for (ProcId p = 0; p < sched.architecture().processor_count(); ++p) {
    EXPECT_EQ(sched.memory_on(p), ref.memory[static_cast<std::size_t>(p)])
        << "seed " << seed << " step " << step << " proc " << p;
    EXPECT_EQ(sched.busy_on(p), ref.busy[static_cast<std::size_t>(p)])
        << "seed " << seed << " step " << step << " proc " << p;
  }
  EXPECT_EQ(sched.max_memory(), ref.max_memory)
      << "seed " << seed << " step " << step;
}

TEST(ScheduleAggregates, MatchRecomputationUnderRandomizedMutation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomGraphParams params;
    params.tasks = 40;
    params.period_levels = 3;
    TaskGraph graph = random_task_graph(params, seed);

    const int procs = 5;
    Schedule sched(graph, Architecture(procs), CommModel::flat(1));
    Rng rng(seed * 7919);

    // Enumerate all instances once so random picks are uniform.
    std::vector<TaskInstance> instances = sched.all_instances();
    std::vector<bool> started(graph.task_count(), false);

    EXPECT_FALSE(sched.complete());
    for (int step = 0; step < 400; ++step) {
      if (rng.chance(0.2)) {
        const auto t = static_cast<TaskId>(
            rng.uniform(0, static_cast<std::int64_t>(graph.task_count()) - 1));
        sched.set_first_start(t, rng.uniform(0, 50));
        started[static_cast<std::size_t>(t)] = true;
      } else {
        const TaskInstance inst = instances[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(instances.size()) - 1))];
        sched.assign(inst,
                     static_cast<ProcId>(rng.uniform(0, procs - 1)));
      }
      if (step % 40 == 0) expect_aggregates_match(sched, seed, step);

      // complete() must agree with a brute-force scan at every point.
      bool all_assigned = true;
      for (const TaskInstance& inst : instances) {
        if (sched.proc(inst) == kNoProc) all_assigned = false;
      }
      bool all_started = true;
      for (const bool s : started) {
        if (!s) all_started = false;
      }
      ASSERT_EQ(sched.complete(), all_assigned && all_started)
          << "seed " << seed << " step " << step;
    }
    expect_aggregates_match(sched, seed, 400);

    // Drive to completion and check the aggregates one final time.
    for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
      if (!started[static_cast<std::size_t>(t)]) sched.set_first_start(t, 0);
      sched.assign_all(t, static_cast<ProcId>(rng.uniform(0, procs - 1)));
    }
    EXPECT_TRUE(sched.complete());
    expect_aggregates_match(sched, seed, -1);
  }
}

/// Copies must carry their aggregates along (the balancer works on copies).
TEST(ScheduleAggregates, CopiesPreserveAggregates) {
  RandomGraphParams params;
  params.tasks = 12;
  TaskGraph graph = random_task_graph(params, 42);
  Schedule sched(graph, Architecture(3), CommModel::flat(1));
  for (TaskId t = 0; t < static_cast<TaskId>(graph.task_count()); ++t) {
    sched.set_first_start(t, 0);
    sched.assign_all(t, static_cast<ProcId>(t % 3));
  }
  Schedule copy = sched;
  copy.assign(TaskInstance{0, 0}, 1);  // diverge the copy
  expect_aggregates_match(sched, 42, 0);
  expect_aggregates_match(copy, 42, 1);
  EXPECT_NE(copy.memory_on(0), sched.memory_on(0));
}

}  // namespace
}  // namespace lbmem
