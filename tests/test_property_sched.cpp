/// Property tests for the scheduler substrate and the block decomposition
/// over random workloads: every produced schedule validates, executes
/// cleanly in the simulator, and block boundaries respect the paper's
/// Eqs. (1)-(2) slack property.

#include <gtest/gtest.h>

#include "lbmem/gen/suites.hpp"
#include "lbmem/lb/block_builder.hpp"
#include "lbmem/sim/engine.hpp"
#include "lbmem/validate/validator.hpp"

namespace lbmem {
namespace {

struct SchedCase {
  PlacementPolicy policy;
  int processors;
  int tasks;
  int period_levels;
  std::uint64_t base_seed;
};

std::string sched_case_name(const ::testing::TestParamInfo<SchedCase>& info) {
  const SchedCase& c = info.param;
  return std::string(c.policy == PlacementPolicy::PeriodCluster ? "Cluster"
                                                                : "MinStart") +
         "_M" + std::to_string(c.processors) + "_N" +
         std::to_string(c.tasks) + "_L" + std::to_string(c.period_levels) +
         "_s" + std::to_string(c.base_seed);
}

class SchedulerProperty : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerProperty, SchedulesValidateAndExecute) {
  const SchedCase& param = GetParam();
  SuiteSpec spec;
  spec.params.tasks = param.tasks;
  spec.params.period_levels = param.period_levels;
  spec.processors = param.processors;
  spec.policy = param.policy;
  spec.count = 5;
  spec.base_seed = param.base_seed;
  const auto suite = make_suite(spec);
  ASSERT_FALSE(suite.empty());

  for (const SuiteInstance& instance : suite) {
    const ValidationReport report = validate(instance.schedule);
    EXPECT_TRUE(report.ok())
        << "seed " << instance.seed << "\n" << report.to_string();

    const SimMetrics metrics = simulate(instance.schedule, SimOptions{2});
    EXPECT_EQ(metrics.violations, 0)
        << "seed " << instance.seed << ": "
        << (metrics.violation_details.empty()
                ? ""
                : metrics.violation_details.front());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperty,
    ::testing::Values(
        SchedCase{PlacementPolicy::PeriodCluster, 3, 30, 3, 10},
        SchedCase{PlacementPolicy::PeriodCluster, 4, 60, 2, 20},
        SchedCase{PlacementPolicy::PeriodCluster, 8, 100, 4, 30},
        SchedCase{PlacementPolicy::MinStartTime, 3, 30, 3, 10},
        SchedCase{PlacementPolicy::MinStartTime, 4, 60, 2, 20},
        SchedCase{PlacementPolicy::MinStartTime, 6, 80, 3, 40}),
    sched_case_name);

/// Block decomposition invariants on random schedules.
class BlockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockProperty, DecompositionInvariants) {
  SuiteSpec spec;
  spec.params.tasks = 50;
  spec.processors = 4;
  spec.comm_cost = 2;
  spec.count = 4;
  spec.base_seed = GetParam();
  const auto suite = make_suite(spec);
  ASSERT_FALSE(suite.empty());

  for (const SuiteInstance& instance : suite) {
    const Schedule& sched = instance.schedule;
    const TaskGraph& graph = sched.graph();
    const BlockDecomposition dec = build_blocks(sched);

    // Every instance belongs to exactly one block on its own processor.
    std::size_t members_total = 0;
    for (const Block& block : dec.blocks) {
      members_total += block.members.size();
      for (const TaskInstance& inst : block.members) {
        EXPECT_EQ(sched.proc(inst), block.home);
        EXPECT_EQ(dec.block_containing(inst).id, block.id);
      }
      // Category rule: 1 iff all members are first instances.
      const bool all_first =
          std::all_of(block.members.begin(), block.members.end(),
                      [](const TaskInstance& i) { return i.k == 0; });
      EXPECT_EQ(block.category == 1, all_first);
    }
    EXPECT_EQ(members_total, graph.total_instances());

    // Paper Eqs. (1)-(2): any same-processor dependence crossing a block
    // boundary has slack >= its communication time, so separating the
    // blocks never breaks timing.
    for (std::int32_t e = 0;
         e < static_cast<std::int32_t>(graph.dependence_count()); ++e) {
      const Dependence& dep =
          graph.dependences()[static_cast<std::size_t>(e)];
      const Time comm = sched.comm().transfer_time(dep.data_size);
      for (InstanceIdx k = 0; k < graph.instance_count(dep.consumer); ++k) {
        const TaskInstance consumer{dep.consumer, k};
        for (const InstanceIdx pk : graph.consumed_instances(e, k)) {
          const TaskInstance producer{dep.producer, pk};
          if (sched.proc(producer) != sched.proc(consumer)) continue;
          const bool same_block = dec.block_containing(producer).id ==
                                  dec.block_containing(consumer).id;
          if (!same_block) {
            EXPECT_GE(sched.start(consumer) - sched.end(producer), comm)
                << "seed " << instance.seed;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockProperty,
                         ::testing::Values(1000, 2000, 3000, 4000),
                         [](const ::testing::TestParamInfo<std::uint64_t>& pinfo) {
                           return "s" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace lbmem
