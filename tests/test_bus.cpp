/// Unit tests for the shared-bus contention analyzer (lbmem/sim/bus.hpp).

#include <gtest/gtest.h>

#include "lbmem/gen/paper_example.hpp"
#include "lbmem/lb/load_balancer.hpp"
#include "lbmem/sched/scheduler.hpp"
#include "lbmem/sim/bus.hpp"

namespace lbmem {
namespace {

TEST(Bus, NoRemoteTransfersTriviallyFits) {
  TaskGraph g;
  const TaskId u = g.add_task("u", 8, 1, 1);
  const TaskId v = g.add_task("v", 8, 1, 1);
  g.add_dependence(u, v);
  g.freeze();
  Schedule s(g, Architecture(2), CommModel::flat(2));
  s.set_first_start(u, 0);
  s.set_first_start(v, 1);
  s.assign_all(u, 0);
  s.assign_all(v, 0);  // co-located: no transfer
  EXPECT_EQ(count_remote_transfers(s), 0u);
  const BusReport report = analyze_single_bus(s);
  EXPECT_EQ(report.verdict, BusVerdict::Fits);
  EXPECT_EQ(report.bus_busy, 0);
}

TEST(Bus, SingleTransferFits) {
  TaskGraph g;
  const TaskId u = g.add_task("u", 8, 1, 1);
  const TaskId v = g.add_task("v", 8, 1, 1);
  g.add_dependence(u, v);
  g.freeze();
  Schedule s(g, Architecture(2), CommModel::flat(2));
  s.set_first_start(u, 0);
  s.set_first_start(v, 3);  // window [1, 3): exactly length 2
  s.assign_all(u, 0);
  s.assign_all(v, 1);
  const BusReport report = analyze_single_bus(s);
  ASSERT_EQ(report.verdict, BusVerdict::Fits);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].release, 1);
  EXPECT_EQ(report.jobs[0].deadline, 3);
  EXPECT_EQ(report.jobs[0].length, 2);
  EXPECT_EQ(report.jobs[0].scheduled_at, 1);
  EXPECT_EQ(report.bus_busy, 2);
}

TEST(Bus, TwoTransfersInOneWindowOverload) {
  // Two producers complete at 1; both consumers start at 3; each transfer
  // needs 2 ticks: demand 4 > window 2.
  TaskGraph g;
  const TaskId u1 = g.add_task("u1", 8, 1, 1);
  const TaskId u2 = g.add_task("u2", 8, 1, 1);
  const TaskId v1 = g.add_task("v1", 8, 1, 1);
  const TaskId v2 = g.add_task("v2", 8, 1, 1);
  g.add_dependence(u1, v1);
  g.add_dependence(u2, v2);
  g.freeze();
  Schedule s(g, Architecture(4), CommModel::flat(2));
  s.set_first_start(u1, 0);
  s.set_first_start(u2, 0);
  s.set_first_start(v1, 3);
  s.set_first_start(v2, 3);
  s.assign_all(u1, 0);
  s.assign_all(u2, 1);
  s.assign_all(v1, 2);
  s.assign_all(v2, 3);
  const BusReport report = analyze_single_bus(s);
  EXPECT_EQ(report.verdict, BusVerdict::Overloaded);
  EXPECT_EQ(report.window_begin, 1);
  EXPECT_EQ(report.window_end, 3);
}

TEST(Bus, StaggeredTransfersSerialize) {
  // Same demand but consumers staggered: EDF fits both.
  TaskGraph g;
  const TaskId u1 = g.add_task("u1", 8, 1, 1);
  const TaskId u2 = g.add_task("u2", 8, 1, 1);
  const TaskId v1 = g.add_task("v1", 8, 1, 1);
  const TaskId v2 = g.add_task("v2", 8, 1, 1);
  g.add_dependence(u1, v1);
  g.add_dependence(u2, v2);
  g.freeze();
  Schedule s(g, Architecture(4), CommModel::flat(2));
  s.set_first_start(u1, 0);
  s.set_first_start(u2, 0);
  s.set_first_start(v1, 3);
  s.set_first_start(v2, 5);
  s.assign_all(u1, 0);
  s.assign_all(u2, 1);
  s.assign_all(v1, 2);
  s.assign_all(v2, 3);
  const BusReport report = analyze_single_bus(s);
  ASSERT_EQ(report.verdict, BusVerdict::Fits);
  // EDF picks the earlier deadline (v1) first.
  for (const TransferJob& job : report.jobs) {
    EXPECT_GE(job.scheduled_at, job.release);
    EXPECT_LE(job.scheduled_at + job.length, job.deadline);
  }
}

TEST(Bus, PaperExampleFitsOnOneMedium) {
  // Figure 2 shows a single medium; the Figure-3 schedule's transfers must
  // serialize on it (C = 1 each).
  const TaskGraph g = paper_example_graph();
  const Schedule before = paper_example_schedule(g);
  const BusReport report = analyze_single_bus(before);
  EXPECT_EQ(report.verdict, BusVerdict::Fits) << report.detail;
  EXPECT_GT(report.bus_busy, 0);
}

TEST(Bus, BalancingReducesBusLoad) {
  // Co-locating communicating blocks deletes transfers: the balanced
  // schedule uses the medium no more than the input.
  const TaskGraph g = paper_example_graph();
  const Schedule before = paper_example_schedule(g);
  const BalanceResult result = LoadBalancer().balance(before);
  EXPECT_LE(count_remote_transfers(result.schedule),
            count_remote_transfers(before));
  const BusReport after = analyze_single_bus(result.schedule);
  EXPECT_EQ(after.verdict, BusVerdict::Fits) << after.detail;
}

TEST(Bus, ZeroCostCommAlwaysFits) {
  const TaskGraph g = paper_example_graph();
  // Any placement with valid precedence: reuse the cluster scheduler.
  const Schedule sched = build_initial_schedule(
      g, Architecture(3), CommModel::flat(0), {});
  const BusReport report = analyze_single_bus(sched);
  EXPECT_EQ(report.verdict, BusVerdict::Fits);
  EXPECT_EQ(report.bus_busy, 0);
}

TEST(Bus, UtilizationComputed) {
  const TaskGraph g = paper_example_graph();
  const Schedule before = paper_example_schedule(g);
  const BusReport report = analyze_single_bus(before);
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.0);
}

}  // namespace
}  // namespace lbmem
