/// Unit tests for the deterministic RNG (lbmem/util/rng.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "lbmem/util/check.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform(42, 42), 42);
  }
}

TEST(Rng, UniformRejectsEmptyRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(3, 2), PreconditionError);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.uniform(0, 7));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, PickWeightedRespectsZeros) {
  Rng rng(9);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.pick_weighted(weights), 1u);
  }
}

TEST(Rng, PickWeightedRejectsAllZero) {
  Rng rng(9);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW(rng.pick_weighted(weights), PreconditionError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SplitIndependentStreams) {
  Rng parent(17);
  Rng child = parent.split();
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace lbmem
