/// Churn tests for ProcTimeline's bucketed piece storage (DESIGN.md F16):
/// random add/remove/query sequences are replayed against a naive
/// reference implementation (a flat list of intervals checked by brute
/// force), and the bucket index is audited with check_index_integrity()
/// after every mutation. Hyper-periods are chosen to exercise one-bucket
/// timelines, the kMaxBuckets ceiling, and sparse giant circles where most
/// buckets stay empty.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "lbmem/sched/timeline.hpp"
#include "lbmem/util/math.hpp"
#include "lbmem/util/rng.hpp"

namespace lbmem {
namespace {

/// Brute-force occupancy: every query scans every interval modulo H.
class NaiveTimeline {
 public:
  explicit NaiveTimeline(Time h) : h_(h) {}

  bool fits(Time start, Time len) const {
    return !conflicting_owner(start, len).has_value();
  }

  std::optional<TaskInstance> conflicting_owner(Time start, Time len) const {
    const Time pos = mod_floor(start, h_);
    // Match ProcTimeline's priority: the predecessor piece reaching into
    // the query first, then pieces by ascending start — realised here by
    // scanning pieces in sorted order per query segment.
    std::optional<TaskInstance> found;
    const std::vector<Entry> by_pos = sorted();
    auto scan = [&](Time a, Time b) {  // non-wrapping [a, b)
      if (found || a >= b) return;
      for (const Entry& e : by_pos) {
        if (e.pos < a && e.pos + e.len > a) {
          found = e.owner;
          return;
        }
      }
      for (const Entry& e : by_pos) {
        if (e.pos >= a && e.pos < b) {
          found = e.owner;
          return;
        }
      }
    };
    if (pos + len <= h_) {
      scan(pos, pos + len);
    } else {
      scan(pos, h_);
      scan(0, pos + len - h_);
    }
    return found;
  }

  void add(Time start, Time len, TaskInstance owner) {
    const Time pos = mod_floor(start, h_);
    if (pos + len <= h_) {
      entries_.push_back(Entry{pos, len, owner});
    } else {
      entries_.push_back(Entry{pos, h_ - pos, owner});
      entries_.push_back(Entry{0, pos + len - h_, owner});
    }
  }

  void remove(TaskInstance owner) {
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const Entry& e) {
                                    return e.owner == owner;
                                  }),
                   entries_.end());
  }

  std::optional<Time> earliest_fit(Time lb, Time period, Time wcet,
                                   InstanceIdx n) const {
    for (Time s = lb; s < lb + period; ++s) {
      bool ok = true;
      for (InstanceIdx k = 0; k < n && ok; ++k) {
        ok = fits(s + static_cast<Time>(k) * period, wcet);
      }
      if (ok) return s;
    }
    return std::nullopt;
  }

  Time busy_time() const {
    Time total = 0;
    for (const Entry& e : entries_) total += e.len;
    return total;
  }

  std::size_t piece_count() const { return entries_.size(); }

 private:
  struct Entry {
    Time pos;  // in [0, H)
    Time len;
    TaskInstance owner;
  };
  std::vector<Entry> sorted() const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return a.pos < b.pos; });
    return out;
  }

  Time h_;
  std::vector<Entry> entries_;
};

void churn(Time h, std::uint64_t seed, int steps) {
  SCOPED_TRACE("H=" + std::to_string(h) + " seed=" + std::to_string(seed));
  ProcTimeline timeline(h);
  NaiveTimeline naive(h);
  Rng rng(seed);
  std::vector<TaskInstance> live;
  TaskId next_task = 0;

  for (int step = 0; step < steps; ++step) {
    const std::int64_t action = rng.uniform(0, 9);
    if (action < 4 || live.empty()) {
      // Add a random interval if it fits (both sides must agree it does).
      const Time len = rng.uniform(1, std::min<Time>(h, 7));
      const Time start = rng.uniform(0, 2 * h - 1);  // exercises mod_floor
      const TaskInstance owner{next_task, 0};
      ASSERT_EQ(timeline.fits(start, len), naive.fits(start, len));
      if (timeline.fits(start, len)) {
        // Alternate the checked and unchecked insertion paths.
        if (step % 2 == 0) {
          timeline.add(start, len, owner);
        } else {
          timeline.add_unchecked(start, len, owner);
        }
        naive.add(start, len, owner);
        live.push_back(owner);
        ++next_task;
      }
    } else if (action < 7) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(live.size()) - 1));
      timeline.remove(live[idx]);
      naive.remove(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (action < 9) {
      const Time len = rng.uniform(1, std::min<Time>(h, 9));
      const Time start = rng.uniform(0, h - 1);
      ASSERT_EQ(timeline.conflicting_owner(start, len),
                naive.conflicting_owner(start, len));
    } else if (h >= 4 && h <= 4096) {
      // Whole strict-periodic task probe (n instances spaced T apart).
      // Skipped on giant circles: the reference scans start-by-start.
      const Time period = (h % 4 == 0) ? h / 4 : ((h % 2 == 0) ? h / 2 : h);
      const auto n = static_cast<InstanceIdx>(h / period);
      const Time wcet = rng.uniform(1, std::min<Time>(period, 5));
      const Time lb = rng.uniform(0, period - 1);
      ASSERT_EQ(timeline.earliest_fit(lb, period, wcet, n),
                naive.earliest_fit(lb, period, wcet, n));
    }
    ASSERT_TRUE(timeline.check_index_integrity());
    ASSERT_EQ(timeline.piece_count(), naive.piece_count());
    ASSERT_EQ(timeline.busy_time(), naive.busy_time());
  }
}

TEST(ProcTimelineBuckets, SingleBucketCircle) {
  // H small enough that every piece lands in bucket width 1.
  churn(/*h=*/12, /*seed=*/1, /*steps=*/400);
  churn(/*h=*/7, /*seed=*/2, /*steps=*/300);
}

TEST(ProcTimelineBuckets, AtTheBucketCeiling) {
  // H == kMaxBuckets and just past it: width-1 and width-2 buckets.
  churn(/*h=*/256, /*seed=*/3, /*steps=*/600);
  churn(/*h=*/257, /*seed=*/4, /*steps=*/600);
}

TEST(ProcTimelineBuckets, SparseGiantCircle) {
  // Most buckets empty: the bitmap walks dominate the queries.
  churn(/*h=*/1'000'000, /*seed=*/5, /*steps=*/250);
}

TEST(ProcTimelineBuckets, DenseSmallCircle) {
  // High occupancy forces long probe chains and frequent rejects.
  churn(/*h=*/48, /*seed=*/6, /*steps=*/800);
}

TEST(ProcTimelineBuckets, WrapHeavy) {
  ProcTimeline tl(100);
  NaiveTimeline naive(100);
  // Wrapping owners occupy two pieces (buckets at both ends of the circle).
  tl.add(95, 10, TaskInstance{0, 0});
  naive.add(95, 10, TaskInstance{0, 0});
  ASSERT_TRUE(tl.check_index_integrity());
  EXPECT_EQ(tl.piece_count(), 2u);
  for (Time t = 0; t < 100; ++t) {
    ASSERT_EQ(tl.fits(t, 3), naive.fits(t, 3)) << "t=" << t;
  }
  tl.remove(TaskInstance{0, 0});
  naive.remove(TaskInstance{0, 0});
  ASSERT_TRUE(tl.check_index_integrity());
  EXPECT_EQ(tl.piece_count(), 0u);
  EXPECT_TRUE(tl.fits(0, 100));
}

}  // namespace
}  // namespace lbmem
